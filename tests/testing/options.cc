#include "testing/options.h"

namespace tdmatch {
namespace testutil {

core::TDmatchOptions FastOptions() {
  core::TDmatchOptions o;
  o.walks.num_walks = 10;
  o.walks.walk_length = 10;
  o.walks.threads = 2;
  o.w2v.dim = 32;
  o.w2v.epochs = 3;
  o.w2v.threads = 2;
  return o;
}

core::TDmatchOptions SmallOptions(bool text_task) {
  core::TDmatchOptions o = text_task ? core::TDmatchOptions::TextTaskDefaults()
                                     : core::TDmatchOptions{};
  o.walks.num_walks = 18;
  o.walks.walk_length = 15;
  o.walks.threads = 4;
  o.w2v.dim = 48;
  o.w2v.epochs = 3;
  o.w2v.threads = 4;
  o.w2v.subsample = 1e-3;
  return o;
}

}  // namespace testutil
}  // namespace tdmatch
