#ifndef TDMATCH_TESTS_TESTING_SCENARIOS_H_
#define TDMATCH_TESTS_TESTING_SCENARIOS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "corpus/corpus.h"

namespace tdmatch {
namespace testutil {

/// Small but learnable text-vs-table scenario: a unique entity per
/// query/candidate pair, cities shared five ways. Deterministic — no RNG.
corpus::Scenario MiniScenario(size_t n);

/// Two-query, two-tuple movie scenario where lexical overlap decides the
/// match; the smallest input every matcher must get right.
corpus::Scenario TinyScenario();

/// Text-vs-text scenario of size n where lexical overlap is a perfect
/// signal, so any trained proxy must beat random. Deterministic.
corpus::Scenario TrainableScenario(size_t n);

/// The index vector [0, n) — the "train on everything" split.
std::vector<int32_t> AllQueries(size_t n);

/// Expected MRR of a uniformly random ranking with one gold among n
/// candidates; the baseline that learned methods must beat.
double RandomMrr(size_t n);

}  // namespace testutil
}  // namespace tdmatch

#endif  // TDMATCH_TESTS_TESTING_SCENARIOS_H_
