#ifndef TDMATCH_TESTS_TESTING_OPTIONS_H_
#define TDMATCH_TESTS_TESTING_OPTIONS_H_

#include "core/tdmatch.h"

namespace tdmatch {
namespace testutil {

/// TDmatch options tuned for unit-test speed: few short walks, a small
/// embedding, two threads. Strong enough to learn MiniScenario-scale tasks.
core::TDmatchOptions FastOptions();

/// Options for integration-scale scenarios (datagen outputs): more walks
/// and a bigger embedding than FastOptions, still seconds per run.
/// `text_task` switches to the CBOW text-task defaults of the paper.
core::TDmatchOptions SmallOptions(bool text_task);

}  // namespace testutil
}  // namespace tdmatch

#endif  // TDMATCH_TESTS_TESTING_OPTIONS_H_
