#include "testing/scenarios.h"

#include <string>
#include <utility>

#include "corpus/table.h"
#include "util/logging.h"

namespace tdmatch {
namespace testutil {

corpus::Scenario MiniScenario(size_t n) {
  corpus::Scenario s;
  s.name = "mini";
  std::vector<corpus::TextDoc> queries;
  corpus::Table table("facts", {"entity", "city", "year"});
  for (size_t i = 0; i < n; ++i) {
    std::string entity = "entity" + std::to_string(i);
    std::string city = "city" + std::to_string(i % 5);
    TDM_CHECK(table.AddRow({entity, city, std::to_string(1990 + i)}).ok());
    queries.push_back({"q" + std::to_string(i),
                       entity + " moved to " + city + " long ago"});
    s.gold.push_back({static_cast<int32_t>(i)});
  }
  s.first = corpus::Corpus::FromTexts("queries", std::move(queries));
  s.second = corpus::Corpus::FromTable(std::move(table));
  return s;
}

corpus::Scenario TinyScenario() {
  corpus::Scenario s;
  s.name = "tiny";
  s.first = corpus::Corpus::FromTexts(
      "q", {{"q0", "willis stars in a thriller"},
            {"q1", "a funny movie by tarantino"}});
  corpus::Table t("movies", {"title", "actor", "genre"});
  TDM_CHECK(t.AddRow({"Sixth Sense", "Willis", "thriller"}).ok());
  TDM_CHECK(t.AddRow({"Pulp Fiction", "Willis", "comedy"}).ok());
  s.second = corpus::Corpus::FromTable(t);
  s.gold = {{0}, {1}};
  return s;
}

corpus::Scenario TrainableScenario(size_t n) {
  corpus::Scenario s;
  s.name = "trainable";
  std::vector<corpus::TextDoc> queries;
  std::vector<corpus::TextDoc> facts;
  for (size_t i = 0; i < n; ++i) {
    std::string key = "entity" + std::to_string(i);
    facts.push_back({"f" + std::to_string(i),
                     key + " lives in city" + std::to_string(i % 7)});
    queries.push_back({"q" + std::to_string(i),
                       "where does " + key + " live exactly"});
    s.gold.push_back({static_cast<int32_t>(i)});
  }
  s.first = corpus::Corpus::FromTexts("q", std::move(queries));
  s.second = corpus::Corpus::FromTexts("f", std::move(facts));
  return s;
}

std::vector<int32_t> AllQueries(size_t n) {
  std::vector<int32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int32_t>(i);
  return idx;
}

double RandomMrr(size_t n) {
  double sum = 0;
  for (size_t r = 1; r <= n; ++r) sum += 1.0 / static_cast<double>(r);
  return sum / static_cast<double>(n);
}

}  // namespace testutil
}  // namespace tdmatch
