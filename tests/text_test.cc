#include <gtest/gtest.h>

#include <algorithm>

#include "text/ngram.h"
#include "text/preprocess.h"
#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace tdmatch {
namespace text {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerTest, BasicSplit) {
  Tokenizer t;
  auto toks = t.Tokenize("The Sixth Sense, directed by Shyamalan!");
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "sixth", "sense",
                                            "directed", "by", "shyamalan"}));
}

TEST(TokenizerTest, KeepsNumbersIntact) {
  Tokenizer t;
  auto toks = t.Tokenize("rating 8.6 from -2 to 1999");
  EXPECT_EQ(toks, (std::vector<std::string>{"rating", "8.6", "from", "-2",
                                            "to", "1999"}));
}

TEST(TokenizerTest, ApostropheCollapses) {
  Tokenizer t;
  auto toks = t.Tokenize("don't");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0], "dont");
}

TEST(TokenizerTest, DropNumbersOption) {
  TokenizerOptions opts;
  opts.keep_numbers = false;
  Tokenizer t(opts);
  auto toks = t.Tokenize("42 cases");
  EXPECT_EQ(toks, (std::vector<std::string>{"cases"}));
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions opts;
  opts.min_token_length = 3;
  Tokenizer t(opts);
  auto toks = t.Tokenize("a of the audit");
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "audit"}));
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions opts;
  opts.lowercase = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Bruce")[0], "Bruce");
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  ,.!  ").empty());
}

// ---------------------------------------------------------------------------
// StopWords
// ---------------------------------------------------------------------------

TEST(StopWordsTest, ContainsCommonWords) {
  StopWords sw;
  EXPECT_TRUE(sw.Contains("the"));
  EXPECT_TRUE(sw.Contains("and"));
  EXPECT_FALSE(sw.Contains("movie"));
}

TEST(StopWordsTest, FilterPreservesOrder) {
  StopWords sw;
  auto out = sw.Filter({"the", "sixth", "sense", "is", "a", "movie"});
  EXPECT_EQ(out, (std::vector<std::string>{"sixth", "sense", "movie"}));
}

TEST(StopWordsTest, AddCustom) {
  StopWords sw;
  sw.Add("movie");
  EXPECT_TRUE(sw.Contains("movie"));
}

// ---------------------------------------------------------------------------
// PorterStemmer
// ---------------------------------------------------------------------------

TEST(StemmerTest, ClassicExamples) {
  EXPECT_EQ(PorterStemmer::Stem("caresses"), "caress");
  EXPECT_EQ(PorterStemmer::Stem("ponies"), "poni");
  EXPECT_EQ(PorterStemmer::Stem("cats"), "cat");
  EXPECT_EQ(PorterStemmer::Stem("agreed"), "agre");
  EXPECT_EQ(PorterStemmer::Stem("plastered"), "plaster");
  EXPECT_EQ(PorterStemmer::Stem("motoring"), "motor");
  EXPECT_EQ(PorterStemmer::Stem("conflated"), "conflat");
  EXPECT_EQ(PorterStemmer::Stem("hopping"), "hop");
  EXPECT_EQ(PorterStemmer::Stem("relational"), "relat");
  EXPECT_EQ(PorterStemmer::Stem("conditional"), "condit");
  EXPECT_EQ(PorterStemmer::Stem("triplicate"), "triplic");
  EXPECT_EQ(PorterStemmer::Stem("hopeful"), "hope");
  EXPECT_EQ(PorterStemmer::Stem("goodness"), "good");
  EXPECT_EQ(PorterStemmer::Stem("adjustable"), "adjust");
  EXPECT_EQ(PorterStemmer::Stem("probate"), "probat");
  EXPECT_EQ(PorterStemmer::Stem("controlling"), "control");
}

TEST(StemmerTest, MergesInflections) {
  // The §II-C motivating case: planning and plan share a stem.
  EXPECT_EQ(PorterStemmer::Stem("planning"), PorterStemmer::Stem("plan"));
  EXPECT_EQ(PorterStemmer::Stem("audits"), PorterStemmer::Stem("audit"));
}

TEST(StemmerTest, ShortAndNonAlphaPassThrough) {
  EXPECT_EQ(PorterStemmer::Stem("at"), "at");
  EXPECT_EQ(PorterStemmer::Stem("42"), "42");
  EXPECT_EQ(PorterStemmer::Stem("8.6"), "8.6");
  EXPECT_EQ(PorterStemmer::Stem(""), "");
}

TEST(StemmerTest, StemAllMapsEveryToken) {
  auto out = PorterStemmer::StemAll({"running", "cats", "42"});
  EXPECT_EQ(out, (std::vector<std::string>{"run", "cat", "42"}));
}

TEST(StemmerTest, Idempotent) {
  // Stemming an already-stemmed token should be stable for common cases.
  for (const char* w : {"run", "cat", "audit", "plan", "control"}) {
    std::string once = PorterStemmer::Stem(w);
    EXPECT_EQ(PorterStemmer::Stem(once), once) << w;
  }
}

// ---------------------------------------------------------------------------
// NGramGenerator
// ---------------------------------------------------------------------------

TEST(NGramTest, PaperExampleFiveNodes) {
  // "The Sixth Sense" with n=3 → five terms (§II-D).
  NGramGenerator g(3);
  auto terms = g.Generate({"the", "sixth", "sense"});
  EXPECT_EQ(terms.size(), 6u);  // 3 unigrams + 2 bigrams + 1 trigram
  EXPECT_NE(std::find(terms.begin(), terms.end(), "the sixth sense"),
            terms.end());
  EXPECT_NE(std::find(terms.begin(), terms.end(), "sixth sense"),
            terms.end());
}

TEST(NGramTest, UnigramOnly) {
  NGramGenerator g(1);
  auto terms = g.Generate({"a", "b", "c"});
  EXPECT_EQ(terms, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(NGramTest, UniqueDedups) {
  NGramGenerator g(2);
  auto terms = g.GenerateUnique({"x", "x", "x"});
  EXPECT_EQ(terms, (std::vector<std::string>{"x", "x x"}));
}

TEST(NGramTest, ShorterThanN) {
  NGramGenerator g(3);
  auto terms = g.Generate({"solo"});
  EXPECT_EQ(terms, (std::vector<std::string>{"solo"}));
  EXPECT_TRUE(g.Generate({}).empty());
}

TEST(NGramTest, CountFormula) {
  // k tokens with max n: sum_{len=1..n} (k-len+1) terms.
  NGramGenerator g(3);
  EXPECT_EQ(g.Generate({"a", "b", "c", "d", "e"}).size(), 5u + 4u + 3u);
}

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

TEST(VocabularyTest, InterningAndCounts) {
  Vocabulary v;
  int32_t a = v.Add("x");
  int32_t b = v.Add("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Add("x"), a);
  EXPECT_EQ(v.CountOf(a), 2u);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.total_count(), 3u);
  EXPECT_EQ(v.TokenOf(b), "y");
}

TEST(VocabularyTest, LookupMissing) {
  Vocabulary v;
  EXPECT_EQ(v.Lookup("nope"), kInvalidTokenId);
  EXPECT_FALSE(v.Contains("nope"));
}

TEST(VocabularyTest, PruneRemapsIds) {
  Vocabulary v;
  v.AddCount("rare", 1);
  v.AddCount("common", 10);
  std::vector<int32_t> remap;
  Vocabulary pruned = v.Prune(2, &remap);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_EQ(remap[0], kInvalidTokenId);
  EXPECT_EQ(pruned.TokenOf(remap[1]), "common");
  EXPECT_EQ(pruned.CountOf(remap[1]), 10u);
}

// ---------------------------------------------------------------------------
// TfIdf
// ---------------------------------------------------------------------------

TEST(TfIdfTest, RareTokensScoreHigher) {
  TfIdf t;
  t.Fit({{"common", "rare"}, {"common"}, {"common"}});
  EXPECT_GT(t.Idf("rare"), t.Idf("common"));
  EXPECT_GT(t.Idf("unseen"), t.Idf("rare"));
}

TEST(TfIdfTest, TopKKeepsHighestScoring) {
  TfIdf t;
  t.Fit({{"a", "b"}, {"a", "c"}, {"a", "d"}});
  // With equal term frequency, the ubiquitous "a" is dropped first.
  auto kept = t.TopK({"a", "b"}, 1);
  EXPECT_EQ(kept, (std::vector<std::string>{"b"}));
}

TEST(TfIdfTest, TopKPreservesOrderAndDuplicates) {
  TfIdf t;
  t.Fit({{"x", "y", "z"}});
  auto kept = t.TopK({"z", "y", "z"}, 2);
  // z has tf 2 so scores highest; y second; order of appearance preserved.
  EXPECT_EQ(kept, (std::vector<std::string>{"z", "y", "z"}));
}

TEST(TfIdfTest, VectorizeNormalized) {
  TfIdf t;
  t.Fit({{"a", "b"}, {"b", "c"}});
  auto v = t.Vectorize({"a", "b"});
  double norm = 0;
  for (auto& [k, x] : v) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(TfIdfTest, CosineSparseIdenticalIsOne) {
  TfIdf t;
  t.Fit({{"a", "b", "c"}});
  auto v = t.Vectorize({"a", "b"});
  EXPECT_NEAR(TfIdf::CosineSparse(v, v), 1.0, 1e-9);
}

TEST(TfIdfTest, CosineSparseDisjointIsZero) {
  TfIdf t;
  t.Fit({{"a"}, {"b"}});
  EXPECT_DOUBLE_EQ(
      TfIdf::CosineSparse(t.Vectorize({"a"}), t.Vectorize({"b"})), 0.0);
}

// ---------------------------------------------------------------------------
// Preprocessor
// ---------------------------------------------------------------------------

TEST(PreprocessorTest, FullPipeline) {
  Preprocessor pp;
  auto toks = pp.Tokens("The auditors were planning carefully");
  // "the"/"were" are stop words; the rest is stemmed (classic Porter maps
  // adverbial -ly through step 1c: carefully -> carefulli).
  EXPECT_EQ(toks,
            (std::vector<std::string>{"auditor", "plan", "carefulli"}));
}

TEST(PreprocessorTest, TermsIncludeNGrams) {
  Preprocessor pp;
  auto terms = pp.Terms("sixth sense");
  EXPECT_NE(std::find(terms.begin(), terms.end(), "sixth sens"), terms.end());
}

TEST(PreprocessorTest, NoStemOption) {
  PreprocessOptions opts;
  opts.stem = false;
  Preprocessor pp(opts);
  auto toks = pp.Tokens("planning");
  EXPECT_EQ(toks, (std::vector<std::string>{"planning"}));
}

TEST(PreprocessorTest, NoStopwordOption) {
  PreprocessOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  Preprocessor pp(opts);
  auto toks = pp.Tokens("the movie");
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "movie"}));
}

// Property sweep: for any max_ngram, every generated term has at most that
// many tokens and every unigram survives.
class NGramPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(NGramPropertyTest, TermLengthBounded) {
  const size_t n = GetParam();
  PreprocessOptions opts;
  opts.max_ngram = n;
  Preprocessor pp(opts);
  auto terms =
      pp.Terms("brilliant thriller about a quiet detective in the city");
  ASSERT_FALSE(terms.empty());
  for (const auto& t : terms) {
    size_t words = 1 + static_cast<size_t>(
        std::count(t.begin(), t.end(), ' '));
    EXPECT_LE(words, n);
  }
  // All base tokens appear as unigram terms.
  for (const auto& tok :
       pp.Tokens("brilliant thriller about a quiet detective in the city")) {
    EXPECT_NE(std::find(terms.begin(), terms.end(), tok), terms.end());
  }
}

INSTANTIATE_TEST_SUITE_P(NGramSizes, NGramPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace text
}  // namespace tdmatch
