// Property-style sweeps (parameterized gtest) over the core invariants:
// metric bounds and orderings, walk statistics, compression subgraph
// properties, stemmer stability and CSV round-trips under many seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "embed/random_walk.h"
#include "eval/metrics.h"
#include "graph/compression.h"
#include "graph/graph.h"
#include "match/top_k.h"
#include "text/stemmer.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tdmatch {
namespace {

// ---------------------------------------------------------------------------
// Ranking-metric properties under random rankings/gold (seed sweep)
// ---------------------------------------------------------------------------

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, BoundsAndOrderings) {
  util::Rng rng(GetParam());
  const size_t queries = 20;
  const size_t candidates = 30;
  std::vector<eval::Ranking> rankings(queries);
  std::vector<eval::GoldSet> gold(queries);
  for (size_t q = 0; q < queries; ++q) {
    std::vector<int32_t> perm(candidates);
    for (size_t i = 0; i < candidates; ++i) perm[i] = static_cast<int32_t>(i);
    rng.Shuffle(&perm);
    rankings[q] = perm;
    const size_t ngold = 1 + static_cast<size_t>(rng.UniformInt(3ULL));
    for (size_t g = 0; g < ngold; ++g) {
      gold[q].push_back(static_cast<int32_t>(rng.UniformInt(candidates)));
    }
  }

  const double mrr = eval::RankingMetrics::MRR(rankings, gold);
  EXPECT_GE(mrr, 0.0);
  EXPECT_LE(mrr, 1.0);

  // MAP@k and HasPositive@k are monotone in k; MAP@k <= HasPositive@k.
  double prev_map = 0.0;
  double prev_hp = 0.0;
  for (size_t k : {1, 2, 5, 10, 20, 30}) {
    double map_k = eval::RankingMetrics::MAPAtK(rankings, gold, k);
    double hp_k = eval::RankingMetrics::HasPositiveAtK(rankings, gold, k);
    EXPECT_GE(map_k + 1e-12, 0.0);
    EXPECT_LE(map_k, 1.0 + 1e-12);
    EXPECT_GE(hp_k + 1e-12, prev_hp);
    EXPECT_LE(map_k, hp_k + 1e-12) << "a query with AP>0 has a positive";
    prev_map = map_k;
    prev_hp = hp_k;
  }
  (void)prev_map;

  // HasPositive@1 equals MAP@1 (both are precision at rank 1 for
  // single-relevance queries, and AP@1 = hit indicator in general).
  EXPECT_NEAR(eval::RankingMetrics::MAPAtK(rankings, gold, 1),
              eval::RankingMetrics::HasPositiveAtK(rankings, gold, 1), 1e-12);

  // A perfect ranking (gold first) has MRR/HP@1 of exactly 1.
  std::vector<eval::Ranking> perfect(queries);
  for (size_t q = 0; q < queries; ++q) {
    perfect[q] = rankings[q];
    auto it = std::find(perfect[q].begin(), perfect[q].end(), gold[q][0]);
    std::iter_swap(perfect[q].begin(), it);
  }
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MRR(perfect, gold), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// TopK consistency with FullRanking under random scores
// ---------------------------------------------------------------------------

class TopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKPropertyTest, SelectMatchesFullRankingPrefix) {
  util::Rng rng(GetParam());
  std::vector<double> scores(64);
  for (auto& s : scores) s = rng.Uniform(-1, 1);
  auto full = match::TopK::FullRanking(scores);
  for (size_t k : {1, 3, 10, 64}) {
    auto sel = match::TopK::Select(scores, k);
    ASSERT_EQ(sel.size(), std::min(k, scores.size()));
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_EQ(sel[i].index, full[i]) << "rank " << i;
      EXPECT_DOUBLE_EQ(sel[i].score,
                       scores[static_cast<size_t>(full[i])]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Random-walk statistics: on a regular graph, visit counts are near-uniform
// ---------------------------------------------------------------------------

class WalkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalkPropertyTest, RingVisitsNearUniform) {
  // A ring is 2-regular: the walk's stationary distribution is uniform.
  graph::Graph g;
  const size_t n = 24;
  for (size_t i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<graph::NodeId>(i),
              static_cast<graph::NodeId>((i + 1) % n));
  }
  embed::RandomWalkOptions o{.num_walks = 30, .walk_length = 20,
                             .seed = GetParam(), .threads = 4};
  std::vector<size_t> visits(n, 0);
  size_t total = 0;
  for (const auto& w : embed::RandomWalker::Generate(g, o)) {
    for (int32_t v : w) {
      ++visits[static_cast<size_t>(v)];
      ++total;
    }
  }
  const double expect = static_cast<double>(total) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(visits[i]), expect, 0.15 * expect)
        << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkPropertyTest,
                         ::testing::Values(3, 7, 31));

// ---------------------------------------------------------------------------
// Compression: MSP output is always a subgraph containing all metadata
// ---------------------------------------------------------------------------

class CompressionPropertyTest
    : public ::testing::TestWithParam<std::pair<uint64_t, double>> {};

TEST_P(CompressionPropertyTest, SubgraphAndMetadataInvariant) {
  auto [seed, beta] = GetParam();
  util::Rng build_rng(seed);
  graph::Graph g;
  std::vector<graph::NodeId> data;
  for (int i = 0; i < 60; ++i) {
    data.push_back(g.AddNode("d" + std::to_string(i)));
  }
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 8; ++i) {
      graph::NodeId m = g.AddNode(
          util::StrFormat("__D%d:%d__", c, i), graph::NodeType::kMetadataDoc,
          static_cast<graph::CorpusTag>(c), i);
      for (int e = 0; e < 3; ++e) g.AddEdge(m, build_rng.Choice(data));
    }
  }
  for (int e = 0; e < 40; ++e) {
    g.AddEdge(build_rng.Choice(data), build_rng.Choice(data));
  }

  util::Rng rng(seed ^ 0xbeef);
  graph::Graph cg = graph::MspCompress(g, beta, &rng);
  EXPECT_LE(cg.NumNodes(), g.NumNodes());
  EXPECT_LE(cg.NumEdges(), g.NumEdges());
  for (graph::NodeId m : g.MetadataDocNodes()) {
    EXPECT_NE(cg.FindNode(g.node(m).label), graph::kInvalidNode);
  }
  // Subgraph property: every compressed edge exists in the original.
  for (size_t i = 0; i < cg.NumNodes(); ++i) {
    graph::NodeId oi = g.FindNode(cg.node(static_cast<graph::NodeId>(i)).label);
    for (graph::NodeId nb : cg.Neighbors(static_cast<graph::NodeId>(i))) {
      graph::NodeId onb = g.FindNode(cg.node(nb).label);
      EXPECT_TRUE(g.HasEdge(oi, onb));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBetas, CompressionPropertyTest,
    ::testing::Values(std::make_pair(1ULL, 0.1), std::make_pair(2ULL, 0.3),
                      std::make_pair(3ULL, 0.7), std::make_pair(4ULL, 1.5)));

// ---------------------------------------------------------------------------
// Porter stemmer: idempotence and alpha-output over a vocabulary sweep
// ---------------------------------------------------------------------------

class StemmerPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StemmerPropertyTest, StableAndNonEmpty) {
  const std::string word = GetParam();
  const std::string once = text::PorterStemmer::Stem(word);
  EXPECT_FALSE(once.empty());
  EXPECT_LE(once.size(), word.size());
  // Porter is not strictly idempotent ("embeddings" → "embed" → "emb"),
  // but a second application must reach a fixed point.
  const std::string twice = text::PorterStemmer::Stem(once);
  EXPECT_EQ(text::PorterStemmer::Stem(twice), twice) << word;
}

INSTANTIATE_TEST_SUITE_P(
    Vocabulary, StemmerPropertyTest,
    ::testing::Values("running", "flies", "happiness", "organization",
                      "relational", "generalization", "oscillators",
                      "authorization", "connectivity", "electricity",
                      "formalize", "sensitivity", "probabilistic",
                      "matching", "embeddings", "compression"));

// ---------------------------------------------------------------------------
// CSV round-trip under adversarial field content
// ---------------------------------------------------------------------------

class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvPropertyTest, RoundTripRandomFields) {
  util::Rng rng(GetParam());
  const char alphabet[] = "ab,\"\n\r x";
  std::vector<std::string> fields;
  for (int f = 0; f < 6; ++f) {
    std::string s;
    const size_t len = static_cast<size_t>(rng.UniformInt(10ULL));
    for (size_t i = 0; i < len; ++i) {
      s.push_back(alphabet[rng.UniformInt(
          static_cast<uint64_t>(sizeof(alphabet) - 1))]);
    }
    fields.push_back(std::move(s));
  }
  // CR is the one character the line-based reader cannot round-trip
  // standalone; FormatLine/ParseLine must still agree.
  std::string line = util::Csv::FormatLine(fields);
  // Multi-line fields need the buffer parser.
  if (line.find('\n') == std::string::npos &&
      line.find('\r') == std::string::npos) {
    auto parsed = util::Csv::ParseLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(*parsed, fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace tdmatch
