#include <gtest/gtest.h>

#include <unordered_set>

#include "datagen/audit.h"
#include "datagen/claims.h"
#include "datagen/corona.h"
#include "datagen/generic_corpus.h"
#include "datagen/imdb.h"
#include "datagen/sts.h"
#include "datagen/word_bank.h"
#include "util/string_util.h"

namespace tdmatch {
namespace datagen {
namespace {

// ---------------------------------------------------------------------------
// WordBank
// ---------------------------------------------------------------------------

TEST(WordBankTest, AbbreviateName) {
  EXPECT_EQ(WordBank::AbbreviateName("Bruce Willis"), "B. Willis");
  EXPECT_EQ(WordBank::AbbreviateName("Cher"), "Cher");
}

TEST(WordBankTest, FakeWordsDeterministic) {
  WordBank bank;
  util::Rng r1(5), r2(5);
  EXPECT_EQ(bank.FakeWord(&r1), bank.FakeWord(&r2));
}

TEST(WordBankTest, TypoChangesWord) {
  util::Rng rng(7);
  int changed = 0;
  for (int i = 0; i < 20; ++i) {
    if (WordBank::Typo("united", &rng) != "united") ++changed;
  }
  EXPECT_GT(changed, 10);
}

TEST(WordBankTest, GenreSynonymsRecorded) {
  WordBank bank;
  EXPECT_EQ(bank.GenreSynonym("comedy"), "funny");
  EXPECT_EQ(bank.GenreSynonym("unknown"), "unknown");
  EXPECT_GE(bank.SynonymPairs().size(), 10u);
}

TEST(WordBankTest, AcronymFromPhrase) {
  WordBank bank;
  EXPECT_EQ(bank.MakeAcronym("plan do check act"), "pdca");
}

TEST(WordBankTest, MakeSynonymPairsAreFresh) {
  WordBank bank;
  util::Rng rng(9);
  auto pairs = bank.MakeSynonymPairs(10, &rng);
  EXPECT_EQ(pairs.size(), 10u);
  for (const auto& [a, b] : pairs) EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// GenericCorpus
// ---------------------------------------------------------------------------

TEST(GenericCorpusTest, SizeAndDeterminism) {
  WordBank bank;
  GenericCorpusOptions o;
  o.num_sentences = 100;
  auto a = GenericCorpusGenerator::Generate(bank, o);
  auto b = GenericCorpusGenerator::Generate(bank, o);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(GenericCorpusTest, SynonymPairsCooccur) {
  WordBank bank;
  GenericCorpusOptions o;
  o.num_sentences = 400;
  o.synonym_sentence_rate = 1.0;
  auto corpus = GenericCorpusGenerator::Generate(bank, o);
  // At rate 1.0 every sentence contains some synonym pair adjacent-ish.
  const auto& pairs = bank.SynonymPairs();
  size_t pair_hits = 0;
  for (const auto& sent : corpus) {
    std::unordered_set<std::string> words(sent.begin(), sent.end());
    for (const auto& [x, y] : pairs) {
      if (words.count(x) > 0 && words.count(y) > 0) {
        ++pair_hits;
        break;
      }
    }
  }
  EXPECT_GT(pair_hits, corpus.size() / 2);
}

// ---------------------------------------------------------------------------
// Scenario generators: structural invariants
// ---------------------------------------------------------------------------

void CheckScenarioInvariants(const GeneratedScenario& g) {
  const corpus::Scenario& s = g.scenario;
  EXPECT_FALSE(s.name.empty());
  EXPECT_GT(s.first.NumDocs(), 0u);
  EXPECT_GT(s.second.NumDocs(), 0u);
  ASSERT_EQ(s.gold.size(), s.first.NumDocs());
  for (const auto& gold : s.gold) {
    for (int32_t idx : gold) {
      EXPECT_GE(idx, 0);
      EXPECT_LT(static_cast<size_t>(idx), s.second.NumDocs());
    }
  }
  ASSERT_NE(g.kb, nullptr);
  EXPECT_GT(g.kb->NumRelations(), 0u);
}

TEST(ImdbTest, Invariants) {
  ImdbOptions o;
  o.num_reviewed_movies = 10;
  o.num_distractor_movies = 15;
  auto g = ImdbGenerator::Generate(o);
  CheckScenarioInvariants(g);
  EXPECT_EQ(g.scenario.first.NumDocs(), 20u);  // 2 reviews per movie
  EXPECT_EQ(g.scenario.second.NumDocs(), 25u);
  EXPECT_EQ(g.scenario.second.table()->NumColumns(), 13u);
}

TEST(ImdbTest, NtVariantDropsTitle) {
  ImdbOptions o;
  o.num_reviewed_movies = 5;
  o.num_distractor_movies = 5;
  o.with_title = false;
  auto g = ImdbGenerator::Generate(o);
  EXPECT_EQ(g.scenario.second.table()->NumColumns(), 12u);
  EXPECT_TRUE(
      g.scenario.second.table()->ColumnIndex("title").status().IsNotFound());
  EXPECT_EQ(g.scenario.name, "IMDb-NT");
}

TEST(ImdbTest, ReviewsMentionTheirMovie) {
  ImdbOptions o;
  o.num_reviewed_movies = 8;
  o.num_distractor_movies = 0;
  auto g = ImdbGenerator::Generate(o);
  // Each review should share at least one informative token with its gold
  // tuple (director last name is always mentioned).
  const auto* table = g.scenario.second.table();
  size_t ok = 0;
  for (size_t q = 0; q < g.scenario.first.NumDocs(); ++q) {
    const std::string review = g.scenario.first.DocText(q);
    const std::string tuple =
        table->TupleText(static_cast<size_t>(g.scenario.gold[q][0]));
    // crude check: any 6+-char token of the tuple inside the review
    bool found = false;
    for (const auto& tok : util::SplitWhitespace(tuple)) {
      if (tok.size() >= 6 && review.find(tok) != std::string::npos) {
        found = true;
        break;
      }
    }
    ok += found;
  }
  EXPECT_GT(ok, g.scenario.first.NumDocs() / 2);
}

TEST(ImdbTest, Deterministic) {
  ImdbOptions o;
  o.num_reviewed_movies = 5;
  o.num_distractor_movies = 5;
  auto a = ImdbGenerator::Generate(o);
  auto b = ImdbGenerator::Generate(o);
  EXPECT_EQ(a.scenario.first.DocText(0), b.scenario.first.DocText(0));
  EXPECT_EQ(a.scenario.second.DocText(3), b.scenario.second.DocText(3));
}

TEST(CoronaTest, Invariants) {
  CoronaOptions o;
  o.num_countries = 5;
  o.num_months = 4;
  o.days_per_month = 3;
  o.num_generated_claims = 30;
  auto g = CoronaGenerator::Generate(o);
  CheckScenarioInvariants(g);
  // countries x months x reporting days
  EXPECT_EQ(g.scenario.second.NumDocs(), 60u);
}

TEST(CoronaTest, RoundedClaimValuesStayNearRowValue) {
  CoronaOptions o;
  o.num_countries = 4;
  o.num_months = 3;
  o.days_per_month = 2;
  o.num_generated_claims = 40;
  o.approx_value_rate = 1.0;
  auto g = CoronaGenerator::Generate(o);
  // Every non-comparative claim quotes a value within 500 of some value in
  // its gold row (rounding to the nearest thousand).
  const auto* t = g.scenario.second.table();
  size_t checked = 0;
  for (size_t q = 0; q < g.scenario.first.NumDocs(); ++q) {
    const std::string text = g.scenario.first.DocText(q);
    if (text.find("higher") != std::string::npos ||
        text.find("lower") != std::string::npos) {
      continue;  // comparative claims quote no value
    }
    // Extract the quoted value: the last numeric token.
    long long quoted = -1;
    for (const auto& tok : util::SplitWhitespace(text)) {
      std::string clean = tok;
      if (!clean.empty() && clean.back() == '.') clean.pop_back();
      if (util::IsNumeric(clean)) quoted = std::stoll(clean);
    }
    ASSERT_GE(quoted, 0) << text;
    bool close = false;
    const size_t row = static_cast<size_t>(g.scenario.gold[q][0]);
    for (size_t col = 2; col < t->NumColumns(); ++col) {
      long long v = std::stoll(t->cell(row, col));
      if (std::llabs(v - quoted) <= 500) close = true;
    }
    EXPECT_TRUE(close) << text;
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(CoronaTest, UserVariantHasFewerClaims) {
  CoronaOptions o;
  o.num_countries = 5;
  o.num_months = 4;
  o.num_user_claims = 12;
  o.user_variant = true;
  auto g = CoronaGenerator::Generate(o);
  EXPECT_EQ(g.scenario.first.NumDocs(), 12u);
  EXPECT_EQ(g.scenario.name, "Corona-Usr");
}

TEST(CoronaTest, NumericCellsPresent) {
  CoronaOptions o;
  o.num_countries = 3;
  o.num_months = 3;
  auto g = CoronaGenerator::Generate(o);
  const auto* t = g.scenario.second.table();
  EXPECT_TRUE(util::IsNumeric(t->cell(0, 2)));
  EXPECT_TRUE(util::IsNumeric(t->cell(0, 5)));
}

TEST(AuditTest, Invariants) {
  AuditOptions o;
  o.num_concepts = 40;
  o.num_documents = 50;
  auto g = AuditGenerator::Generate(o);
  CheckScenarioInvariants(g);
  EXPECT_EQ(g.scenario.second.type(), corpus::CorpusType::kStructuredText);
  EXPECT_GE(g.scenario.second.NumDocs(), 40u);
}

TEST(AuditTest, TaxonomyDepthsWithinBounds) {
  AuditOptions o;
  o.num_concepts = 60;
  o.max_depth = 5;
  auto g = AuditGenerator::Generate(o);
  const auto* tax = g.scenario.second.taxonomy();
  for (size_t c = 0; c < tax->NumConcepts(); ++c) {
    EXPECT_LE(tax->Depth(static_cast<corpus::ConceptId>(c)), 5u + 1u);
  }
}

TEST(AuditTest, ConceptDistributionRoughlyMatchesPaper) {
  AuditOptions o;
  o.num_documents = 400;
  auto g = AuditGenerator::Generate(o);
  size_t one = 0;
  for (const auto& gold : g.scenario.gold) one += gold.size() == 1;
  const double frac =
      static_cast<double>(one) / static_cast<double>(g.scenario.gold.size());
  EXPECT_NEAR(frac, 0.4, 0.1);  // paper: ~40% single-concept docs
}

TEST(ClaimsTest, SnopesAndPolitifactPresets) {
  auto snopes = ClaimsGenerator::Generate(ClaimsGenerator::SnopesPreset());
  auto politi =
      ClaimsGenerator::Generate(ClaimsGenerator::PolitifactPreset());
  CheckScenarioInvariants(snopes);
  CheckScenarioInvariants(politi);
  EXPECT_EQ(snopes.scenario.name, "Snopes");
  EXPECT_EQ(politi.scenario.name, "Politifact");
  EXPECT_GT(politi.scenario.second.NumDocs(),
            snopes.scenario.second.NumDocs());
}

TEST(ClaimsTest, EveryQueryHasExactlyOneGold) {
  ClaimsOptions o;
  o.num_facts = 100;
  o.num_queries = 20;
  auto g = ClaimsGenerator::Generate(o);
  for (const auto& gold : g.scenario.gold) EXPECT_EQ(gold.size(), 1u);
}

TEST(StsTest, ThresholdControlsGoldDensity) {
  StsOptions o;
  o.num_pairs = 300;
  o.threshold = 2;
  auto k2 = StsGenerator::Generate(o);
  o.threshold = 3;
  auto k3 = StsGenerator::Generate(o);
  auto count_gold = [](const corpus::Scenario& s) {
    size_t n = 0;
    for (const auto& g : s.gold) n += !g.empty();
    return n;
  };
  EXPECT_GT(count_gold(k2.scenario), count_gold(k3.scenario));
}

TEST(StsTest, Score5PairsIdentical) {
  StsOptions o;
  o.num_pairs = 200;
  o.threshold = 0;
  auto scores = StsGenerator::PairScores(o);
  auto g = StsGenerator::Generate(o);
  for (size_t p = 0; p < scores.size(); ++p) {
    if (scores[p] == 5) {
      EXPECT_EQ(g.scenario.first.DocText(p), g.scenario.second.DocText(p));
    }
  }
}

TEST(StsTest, GoldIsAlwaysOwnPartner) {
  StsOptions o;
  o.num_pairs = 100;
  auto g = StsGenerator::Generate(o);
  for (size_t q = 0; q < g.scenario.gold.size(); ++q) {
    if (!g.scenario.gold[q].empty()) {
      EXPECT_EQ(g.scenario.gold[q][0], static_cast<int32_t>(q));
    }
  }
}

}  // namespace
}  // namespace datagen
}  // namespace tdmatch
