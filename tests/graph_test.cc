#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.h"
#include "graph/bucketing.h"
#include "graph/graph.h"

namespace tdmatch {
namespace graph {
namespace {

// ---------------------------------------------------------------------------
// Graph container
// ---------------------------------------------------------------------------

TEST(GraphTest, AddNodeInternsByLabel) {
  Graph g;
  NodeId a = g.AddNode("willis");
  NodeId b = g.AddNode("willis");
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.NumNodes(), 1u);
  EXPECT_TRUE(g.HasNode("willis"));
  EXPECT_FALSE(g.HasNode("murray"));
  EXPECT_EQ(g.FindNode("murray"), kInvalidNode);
}

TEST(GraphTest, EdgesAreUndirectedAndDeduped) {
  Graph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_FALSE(g.AddEdge(a, b));
  EXPECT_FALSE(g.AddEdge(b, a));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, a));
  EXPECT_EQ(g.Degree(a), 1u);
  EXPECT_EQ(g.Neighbors(b).ToVector(), std::vector<NodeId>{a});
}

TEST(GraphTest, SelfLoopsRejected) {
  Graph g;
  NodeId a = g.AddNode("a");
  EXPECT_FALSE(g.AddEdge(a, a));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(GraphTest, NodeInfoPreserved) {
  Graph g;
  NodeId m = g.AddNode("__D0:3__", NodeType::kMetadataDoc, 0, 3);
  EXPECT_EQ(g.node(m).type, NodeType::kMetadataDoc);
  EXPECT_EQ(g.node(m).corpus, 0);
  EXPECT_EQ(g.node(m).doc_index, 3);
}

TEST(GraphTest, MetadataDocNodesFilterByCorpus) {
  Graph g;
  g.AddNode("__D0:0__", NodeType::kMetadataDoc, 0, 0);
  g.AddNode("__D1:0__", NodeType::kMetadataDoc, 1, 0);
  g.AddNode("term", NodeType::kData);
  g.AddNode("__C0:x__", NodeType::kMetadataColumn, 0);
  EXPECT_EQ(g.MetadataDocNodes().size(), 2u);
  EXPECT_EQ(g.MetadataDocNodes(0).size(), 1u);
  EXPECT_EQ(g.DataNodes().size(), 1u);
  auto counts = g.CountByType();
  EXPECT_EQ(counts.data, 1u);
  EXPECT_EQ(counts.metadata_doc, 2u);
  EXPECT_EQ(counts.metadata_col, 1u);
}

TEST(GraphTest, InducedSubgraphRemaps) {
  Graph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  std::vector<bool> keep{true, false, true};
  Graph sub = g.InducedSubgraph(keep);
  EXPECT_EQ(sub.NumNodes(), 2u);
  EXPECT_EQ(sub.NumEdges(), 0u);  // the a-b and b-c edges died with b
  EXPECT_TRUE(sub.HasNode("a"));
  EXPECT_TRUE(sub.HasNode("c"));
}

TEST(GraphTest, RemoveSinkNodesPeelsChains) {
  // m - x - y where y is a degree-1 data node; x becomes degree-1 after y
  // is removed, so the whole chain peels back to the metadata node.
  Graph g;
  NodeId m = g.AddNode("__D0:0__", NodeType::kMetadataDoc, 0, 0);
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  g.AddEdge(m, x);
  g.AddEdge(x, y);
  Graph pruned = g.RemoveSinkNodes();
  EXPECT_TRUE(pruned.HasNode("__D0:0__"));
  EXPECT_FALSE(pruned.HasNode("y"));
  EXPECT_FALSE(pruned.HasNode("x"));
}

TEST(GraphTest, RemoveSinkNodesKeepsMetadata) {
  Graph g;
  NodeId m = g.AddNode("__D0:0__", NodeType::kMetadataDoc, 0, 0);
  NodeId t = g.AddNode("t");
  g.AddEdge(m, t);
  Graph pruned = g.RemoveSinkNodes();
  // The metadata node survives even at degree 1; the data node "t" has
  // degree 1 and is peeled.
  EXPECT_TRUE(pruned.HasNode("__D0:0__"));
  EXPECT_FALSE(pruned.HasNode("t"));
}

TEST(GraphTest, RemoveSinkKeepsCycles) {
  Graph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  Graph pruned = g.RemoveSinkNodes();
  EXPECT_EQ(pruned.NumNodes(), 3u);
  EXPECT_EQ(pruned.NumEdges(), 3u);
}

// ---------------------------------------------------------------------------
// CSR finalization
// ---------------------------------------------------------------------------

/// All per-node neighbor lists, materialized (representation-agnostic).
std::vector<std::vector<NodeId>> AllNeighbors(const Graph& g) {
  std::vector<std::vector<NodeId>> out(g.NumNodes());
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    out[i] = g.Neighbors(static_cast<NodeId>(i)).ToVector();
  }
  return out;
}

Graph StarPlusTriangle() {
  Graph g;
  for (const char* l : {"hub", "s1", "s2", "s3", "t1", "t2", "lone"}) {
    g.AddNode(l);
  }
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(0, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 0);
  return g;
}

TEST(GraphCsrTest, FinalizePreservesNeighborsAndIsIdempotent) {
  Graph g = StarPlusTriangle();
  const auto before = AllNeighbors(g);
  const size_t edges = g.NumEdges();
  EXPECT_FALSE(g.finalized());
  g.Finalize();
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(AllNeighbors(g), before);
  EXPECT_EQ(g.NumEdges(), edges);
  g.Finalize();  // idempotent
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(AllNeighbors(g), before);
  // Lookups and edge queries are unaffected by the representation.
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_EQ(g.FindNode("hub"), 0);
  EXPECT_EQ(g.Degree(0), 5u);
  EXPECT_EQ(g.Degree(6), 0u);
}

TEST(GraphCsrTest, EmptyAndEdgelessGraphsFinalize) {
  Graph empty;
  empty.Finalize();
  EXPECT_TRUE(empty.finalized());
  EXPECT_EQ(empty.NumNodes(), 0u);

  Graph isolated;
  isolated.AddNode("a");
  isolated.AddNode("b");
  isolated.Finalize();
  EXPECT_TRUE(isolated.Neighbors(0).empty());
  EXPECT_TRUE(isolated.Neighbors(1).empty());
  EXPECT_EQ(isolated.Degree(0), 0u);
}

TEST(GraphCsrTest, AddNodeAfterFinalizeKeepsCsr) {
  Graph g = StarPlusTriangle();
  g.Finalize();
  NodeId fresh = g.AddNode("fresh");
  EXPECT_TRUE(g.finalized());  // appending an isolated node is CSR-safe
  EXPECT_TRUE(g.Neighbors(fresh).empty());
  EXPECT_EQ(g.Degree(0), 5u);
}

TEST(GraphCsrTest, AddEdgeAfterFinalizeRevertsToBuildingState) {
  Graph g = StarPlusTriangle();
  g.Finalize();
  const auto before = AllNeighbors(g);
  // Duplicate edge: rejected without leaving CSR.
  EXPECT_FALSE(g.AddEdge(0, 1));
  EXPECT_TRUE(g.finalized());
  // New edge: graph transparently reverts to the mutable representation,
  // preserving all existing adjacency in order.
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.finalized());
  auto after = AllNeighbors(g);
  EXPECT_EQ(after[1].front(), before[1].front());
  EXPECT_EQ(after[1].back(), 2);
  EXPECT_EQ(g.NumEdges(), 7u);
  g.Finalize();
  EXPECT_EQ(AllNeighbors(g), after);
}

TEST(GraphCsrTest, InducedSubgraphOfFinalizedGraphIsFinalized) {
  Graph g = StarPlusTriangle();
  g.Finalize();
  std::vector<bool> keep(g.NumNodes(), true);
  keep[1] = false;
  Graph sub = g.InducedSubgraph(keep);
  EXPECT_TRUE(sub.finalized());
  EXPECT_EQ(sub.NumNodes(), 6u);
  EXPECT_EQ(sub.NumEdges(), 5u);

  // Round-trip: the subgraph keeps the same neighbor structure (modulo
  // the remap) as the building-state subgraph of the building-state graph.
  Graph g2 = StarPlusTriangle();
  Graph sub2 = g2.InducedSubgraph(keep);
  EXPECT_FALSE(sub2.finalized());
  EXPECT_EQ(AllNeighbors(sub), AllNeighbors(sub2));
  EXPECT_EQ(sub.NumEdges(), sub2.NumEdges());
}

TEST(GraphCsrTest, RemoveSinkNodesWorksOnFinalizedGraph) {
  Graph g;
  NodeId m = g.AddNode("__D0:0__", NodeType::kMetadataDoc, 0, 0);
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  g.AddEdge(m, x);
  g.AddEdge(x, y);
  g.Finalize();
  Graph pruned = g.RemoveSinkNodes();
  EXPECT_TRUE(pruned.finalized());
  EXPECT_TRUE(pruned.HasNode("__D0:0__"));
  EXPECT_FALSE(pruned.HasNode("x"));
  EXPECT_FALSE(pruned.HasNode("y"));
}

// ---------------------------------------------------------------------------
// Bfs
// ---------------------------------------------------------------------------

Graph PathGraph(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddNode("n" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = PathGraph(5);
  auto dist = Bfs::Distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[static_cast<size_t>(i)], i);
}

TEST(BfsTest, DistanceUnreachable) {
  Graph g;
  g.AddNode("a");
  g.AddNode("b");
  EXPECT_EQ(Bfs::Distance(g, 0, 1), kUnreachable);
  EXPECT_EQ(Bfs::Distance(g, 0, 0), 0);
}

TEST(BfsTest, ShortestPathReconstruction) {
  Graph g = PathGraph(4);
  auto path = Bfs::ShortestPath(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
}

TEST(BfsTest, ShortestPathDagCapturesAllShortestPaths) {
  // Diamond: s - {a, b} - t. Both 2-hop paths are shortest; the DAG must
  // contain all four edges.
  Graph g;
  NodeId s = g.AddNode("s");
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId t = g.AddNode("t");
  g.AddEdge(s, a);
  g.AddEdge(s, b);
  g.AddEdge(a, t);
  g.AddEdge(b, t);
  // Plus a longer detour that must NOT appear.
  NodeId d = g.AddNode("d");
  g.AddEdge(s, d);
  NodeId e = g.AddNode("e");
  g.AddEdge(d, e);
  g.AddEdge(e, t);

  auto edges = Bfs::ShortestPathDagEdges(g, s, t);
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) {
    EXPECT_NE(u, d);
    EXPECT_NE(v, d);
    EXPECT_NE(u, e);
    EXPECT_NE(v, e);
  }
}

TEST(BfsTest, ShortestPathDagDisconnected) {
  Graph g;
  g.AddNode("a");
  g.AddNode("b");
  EXPECT_TRUE(Bfs::ShortestPathDagEdges(g, 0, 1).empty());
  EXPECT_TRUE(Bfs::ShortestPath(g, 0, 1).empty());
}

// ---------------------------------------------------------------------------
// NumericBucketer
// ---------------------------------------------------------------------------

TEST(BucketingTest, NonNumericPassThrough) {
  NumericBucketer b;
  b.Fit({"1", "2", "3", "4", "hello"});
  EXPECT_EQ(b.BucketLabel("hello"), "hello");
}

TEST(BucketingTest, NearbyValuesShareBucket) {
  NumericBucketer b;
  std::vector<std::string> vals;
  for (int i = 0; i < 100; ++i) vals.push_back(std::to_string(i * 10));
  b.Fit(vals);
  ASSERT_TRUE(b.fitted());
  EXPECT_EQ(b.BucketLabel("501"), b.BucketLabel("502"));
  EXPECT_NE(b.BucketLabel("0"), b.BucketLabel("990"));
}

TEST(BucketingTest, FixedBucketCount) {
  NumericBucketer b;
  std::vector<std::string> vals;
  for (int i = 0; i <= 70; ++i) vals.push_back(std::to_string(i));
  b.FitFixedBuckets(vals, 7);
  ASSERT_TRUE(b.fitted());
  EXPECT_EQ(b.NumBuckets(), 8u);  // 7 interior + the max boundary bucket
  EXPECT_EQ(b.BucketLabel("0"), b.BucketLabel("5"));
  EXPECT_NE(b.BucketLabel("0"), b.BucketLabel("69"));
}

TEST(BucketingTest, OutOfRangeClamps) {
  NumericBucketer b;
  b.FitFixedBuckets({"0", "10", "20", "30"}, 3);
  EXPECT_EQ(b.BucketLabel("-100"), b.BucketLabel("0"));
  EXPECT_EQ(b.BucketLabel("999"), b.BucketLabel("30"));
}

TEST(BucketingTest, UnfittedPassThrough) {
  NumericBucketer b;
  EXPECT_EQ(b.BucketLabel("42"), "42");
  b.Fit({"no", "numbers", "here"});
  EXPECT_FALSE(b.fitted());
  EXPECT_EQ(b.BucketLabel("42"), "42");
}

TEST(BucketingTest, FreedmanDiaconisWidthPositive) {
  NumericBucketer b;
  std::vector<std::string> vals;
  for (int i = 0; i < 50; ++i) vals.push_back(std::to_string(i % 10));
  b.Fit(vals);
  EXPECT_GT(b.bucket_width(), 0.0);
}

}  // namespace
}  // namespace graph
}  // namespace tdmatch
