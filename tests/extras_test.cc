#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "corpus/loader.h"
#include "embed/io.h"
#include "graph/builder.h"
#include "graph/stats.h"
#include "match/blocking.h"
#include "util/csv.h"

namespace tdmatch {
namespace {

// ---------------------------------------------------------------------------
// graph::ComputeStatistics
// ---------------------------------------------------------------------------

graph::Graph StatsGraph() {
  graph::Graph g;
  graph::NodeId p = g.AddNode("__D0:0__", graph::NodeType::kMetadataDoc, 0, 0);
  graph::NodeId t = g.AddNode("__D1:0__", graph::NodeType::kMetadataDoc, 1, 0);
  graph::NodeId w = g.AddNode("willi");
  graph::NodeId c = g.AddNode("__C1:genre__",
                              graph::NodeType::kMetadataColumn, 1);
  g.AddNode("isolated");
  g.AddEdge(p, w);
  g.AddEdge(t, w);
  g.AddEdge(t, c);
  return g;
}

TEST(GraphStatsTest, CountsAndDegrees) {
  auto s = graph::ComputeStatistics(StatsGraph());
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_EQ(s.edges, 3u);
  EXPECT_EQ(s.data_nodes, 2u);  // willi + isolated
  EXPECT_EQ(s.metadata_doc_nodes, 2u);
  EXPECT_EQ(s.metadata_column_nodes, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_EQ(s.isolated_nodes, 1u);
  EXPECT_EQ(s.connected_components, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 6.0 / 5.0);
}

TEST(GraphStatsTest, MetadataDistance) {
  auto s = graph::ComputeStatistics(StatsGraph(), 16, 1);
  // The single cross-corpus pair is at distance 2 via "willi".
  EXPECT_DOUBLE_EQ(s.avg_metadata_distance, 2.0);
  EXPECT_DOUBLE_EQ(s.metadata_reachability, 1.0);
}

TEST(GraphStatsTest, FormatMentionsKeyNumbers) {
  std::string txt = graph::FormatStatistics(
      graph::ComputeStatistics(StatsGraph()));
  EXPECT_NE(txt.find("nodes=5"), std::string::npos);
  EXPECT_NE(txt.find("components=2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// corpus::Loader
// ---------------------------------------------------------------------------

TEST(LoaderTest, TableCsvRoundTrip) {
  corpus::Table t("movies", {"title", "genre"});
  ASSERT_TRUE(t.AddRow({"Pulp Fiction", "Drama, Crime"}).ok());
  ASSERT_TRUE(t.AddRow({"The \"Best\"", "Comedy"}).ok());
  std::string path = testing::TempDir() + "/tdm_loader_table.csv";
  ASSERT_TRUE(corpus::Loader::TableToCsv(t, path).ok());
  auto back = corpus::Loader::TableFromCsv(path, "movies");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumRows(), 2u);
  EXPECT_EQ(back->cell(0, 1), "Drama, Crime");
  EXPECT_EQ(back->cell(1, 0), "The \"Best\"");
  std::remove(path.c_str());
}

TEST(LoaderTest, TableFromCsvRejectsRaggedRows) {
  std::string path = testing::TempDir() + "/tdm_loader_ragged.csv";
  ASSERT_TRUE(util::Csv::WriteFile(path, {{"a", "b"}, {"only-one"}}).ok());
  EXPECT_FALSE(corpus::Loader::TableFromCsv(path, "x").ok());
  std::remove(path.c_str());
}

TEST(LoaderTest, TextsFromFileSkipsBlankLines) {
  std::string path = testing::TempDir() + "/tdm_loader_texts.txt";
  {
    std::ofstream out(path);
    out << "first paragraph\n\n  \nsecond paragraph\n";
  }
  auto corpus = corpus::Loader::TextsFromFile(path, "docs");
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->NumDocs(), 2u);
  EXPECT_EQ(corpus->DocText(1), "second paragraph");
  EXPECT_EQ(corpus->DocId(0), "docs:1");
  std::remove(path.c_str());
}

TEST(LoaderTest, TaxonomyFromCsv) {
  std::string path = testing::TempDir() + "/tdm_loader_tax.csv";
  ASSERT_TRUE(util::Csv::WriteFile(path, {{"label", "parent"},
                                          {"audit", ""},
                                          {"planning", "0"},
                                          {"execution", "0"},
                                          {"pdca", "1"}})
                  .ok());
  auto tax = corpus::Loader::TaxonomyFromCsv(path);
  ASSERT_TRUE(tax.ok()) << tax.status().ToString();
  EXPECT_EQ(tax->NumConcepts(), 4u);
  EXPECT_EQ(tax->parent(3), 1);
  EXPECT_EQ(tax->Depth(3), 3u);
  std::remove(path.c_str());
}

TEST(LoaderTest, TaxonomyRejectsForwardParent) {
  std::string path = testing::TempDir() + "/tdm_loader_tax_bad.csv";
  ASSERT_TRUE(util::Csv::WriteFile(
                  path, {{"label", "parent"}, {"a", "5"}})
                  .ok());
  EXPECT_FALSE(corpus::Loader::TaxonomyFromCsv(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// corpus::Loader — JSONL
// ---------------------------------------------------------------------------

std::string WriteTempFile(const std::string& name, const std::string& body) {
  std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(LoaderTest, TableFromJsonlUsesFirstRecordAsSchema) {
  std::string path = WriteTempFile(
      "tdm_loader_table.jsonl",
      "{\"title\": \"Pulp Fiction\", \"year\": 1994, \"seen\": true}\n"
      "\n"
      "{\"year\": 1999, \"title\": \"The Sixth \\\"Sense\\\"\"}\n");
  auto t = corpus::Loader::TableFromJsonl(path, "movies");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->column_names(),
            (std::vector<std::string>{"title", "year", "seen"}));
  EXPECT_EQ(t->NumRows(), 2u);
  EXPECT_EQ(t->cell(0, 1), "1994");
  EXPECT_EQ(t->cell(0, 2), "true");
  EXPECT_EQ(t->cell(1, 0), "The Sixth \"Sense\"");
  EXPECT_EQ(t->cell(1, 2), "");  // omitted field → empty cell, like CSV
  std::remove(path.c_str());
}

TEST(LoaderTest, TableFromJsonlRejectsUnknownFieldsAndNesting) {
  std::string path = WriteTempFile(
      "tdm_loader_table_bad.jsonl",
      "{\"a\": 1}\n{\"a\": 2, \"b\": 3}\n");
  auto t = corpus::Loader::TableFromJsonl(path, "x");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("'b'"), std::string::npos);

  path = WriteTempFile("tdm_loader_table_nested.jsonl",
                       "{\"a\": {\"nested\": 1}}\n");
  EXPECT_FALSE(corpus::Loader::TableFromJsonl(path, "x").ok());

  path = WriteTempFile("tdm_loader_table_garbage.jsonl", "not json\n");
  EXPECT_FALSE(corpus::Loader::TableFromJsonl(path, "x").ok());
  std::remove(path.c_str());
}

TEST(LoaderTest, TextsFromJsonlMapsFields) {
  std::string path = WriteTempFile(
      "tdm_loader_texts.jsonl",
      "{\"id\": \"r1\", \"text\": \"a comedy with Bruce Willis\"}\n"
      "{\"text\": \"escaped \\u0041 and\\nnewline\"}\n");
  auto c = corpus::Loader::TextsFromJsonl(path, "reviews");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->NumDocs(), 2u);
  EXPECT_EQ(c->DocId(0), "r1");
  EXPECT_EQ(c->DocId(1), "reviews:2");  // no id field → line-number id
  EXPECT_EQ(c->DocText(1), "escaped A and\nnewline");
  std::remove(path.c_str());
}

TEST(LoaderTest, TextsFromJsonlDecodesSurrogatePairs) {
  // json.dumps escapes non-BMP characters as UTF-16 surrogate pairs; the
  // loader must emit the real code point's UTF-8, not two lone
  // surrogates (CESU-8).
  std::string path = WriteTempFile(
      "tdm_loader_surrogate.jsonl",
      "{\"text\": \"grin \\ud83d\\ude00 end\"}\n");
  auto c = corpus::Loader::TextsFromJsonl(path, "emoji");
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->DocText(0), "grin \xF0\x9F\x98\x80 end");

  path = WriteTempFile("tdm_loader_lone_surrogate.jsonl",
                       "{\"text\": \"bad \\ud83d alone\"}\n");
  EXPECT_FALSE(corpus::Loader::TextsFromJsonl(path, "emoji").ok());
  path = WriteTempFile("tdm_loader_low_surrogate.jsonl",
                       "{\"text\": \"bad \\ude00 alone\"}\n");
  EXPECT_FALSE(corpus::Loader::TextsFromJsonl(path, "emoji").ok());
  std::remove(path.c_str());
}

TEST(LoaderTest, TextsFromJsonlCustomFieldMapping) {
  std::string path = WriteTempFile(
      "tdm_loader_texts_custom.jsonl",
      "{\"claim_id\": \"c9\", \"claim\": \"the moon is cheese\"}\n");
  corpus::JsonlTextOptions opts;
  opts.id_field = "claim_id";
  opts.text_field = "claim";
  auto c = corpus::Loader::TextsFromJsonl(path, "claims", opts);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(c->DocId(0), "c9");
  EXPECT_EQ(c->DocText(0), "the moon is cheese");

  // Records without the mapped text field are an error, not a skip.
  EXPECT_FALSE(corpus::Loader::TextsFromJsonl(path, "claims").ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// embed::EmbeddingIo
// ---------------------------------------------------------------------------

TEST(EmbeddingIoTest, RoundTripWithSpacedLabels) {
  embed::EmbeddingTable t(3);
  t.Put("plain", {1.0f, 2.0f, 3.0f});
  t.Put("bruce willi", {-0.5f, 0.0f, 0.25f});
  std::string path = testing::TempDir() + "/tdm_vectors.txt";
  ASSERT_TRUE(embed::EmbeddingIo::Save(t, path).ok());
  auto back = embed::EmbeddingIo::Load(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 2u);
  ASSERT_NE(back->Get("bruce willi"), nullptr);
  EXPECT_FLOAT_EQ((*back->Get("bruce willi"))[2], 0.25f);
  EXPECT_FLOAT_EQ((*back->Get("plain"))[0], 1.0f);
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, LoadRejectsTruncated) {
  std::string path = testing::TempDir() + "/tdm_vectors_bad.txt";
  {
    std::ofstream out(path);
    out << "2 3\nword 1 2 3\nshort 1\n";
  }
  EXPECT_FALSE(embed::EmbeddingIo::Load(path).ok());
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, LoadMissingFile) {
  EXPECT_TRUE(
      embed::EmbeddingIo::Load("/no/such/file.txt").status().IsIOError());
}

TEST(EmbeddingIoTest, LoadRejectsDimensionMismatch) {
  std::string path = testing::TempDir() + "/tdm_vectors_dim.txt";
  {
    std::ofstream out(path);
    // Header promises dim 2; the second row carries 3 values. The stream-
    // based reader used to absorb the extra value into the next label.
    out << "2 2\nalpha 1 2\nbeta 1 2 3\n";
  }
  auto r = embed::EmbeddingIo::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("dimension mismatch"),
            std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("beta"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, LoadRejectsVocabSizeMismatch) {
  std::string path = testing::TempDir() + "/tdm_vectors_vocab.txt";
  {
    std::ofstream out(path);
    out << "3 2\nalpha 1 2\nbeta 3 4\n";  // promises 3 entries, has 2
  }
  auto fewer = embed::EmbeddingIo::Load(path);
  ASSERT_FALSE(fewer.ok());
  EXPECT_TRUE(fewer.status().IsInvalidArgument());
  EXPECT_NE(fewer.status().message().find("vocab size mismatch"),
            std::string::npos)
      << fewer.status().ToString();

  {
    std::ofstream out(path);
    out << "1 2\nalpha 1 2\nbeta 3 4\n";  // promises 1 entry, has 2
  }
  auto more = embed::EmbeddingIo::Load(path);
  ASSERT_FALSE(more.ok());
  EXPECT_NE(more.status().message().find("vocab size mismatch"),
            std::string::npos)
      << more.status().ToString();
  std::remove(path.c_str());
}

TEST(EmbeddingIoTest, LoadRejectsNonNumericValue) {
  std::string path = testing::TempDir() + "/tdm_vectors_nan.txt";
  {
    std::ofstream out(path);
    out << "1 2\nalpha 1 bogus\n";
  }
  auto r = embed::EmbeddingIo::Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bogus"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// match::TokenBlocker
// ---------------------------------------------------------------------------

corpus::Corpus BlockCandidates() {
  corpus::Table t("movies", {"title", "actor"});
  EXPECT_TRUE(t.AddRow({"Sixth Sense", "Bruce Willis"}).ok());
  EXPECT_TRUE(t.AddRow({"Pulp Fiction", "Bruce Willis"}).ok());
  EXPECT_TRUE(t.AddRow({"Moonrise Kingdom", "Bill Murray"}).ok());
  return corpus::Corpus::FromTable(t);
}

TEST(BlockingTest, BlockContainsSharedTermCandidates) {
  match::TokenBlocker blocker;
  blocker.Index(BlockCandidates());
  auto block = blocker.Block("a film with bruce willis in it");
  // Both Willis movies share terms; the Murray one does not.
  EXPECT_EQ(block.size(), 2u);
  for (int32_t c : block) EXPECT_NE(c, 2);
}

TEST(BlockingTest, EmptyBlockForUnrelatedQuery) {
  match::TokenBlocker blocker;
  blocker.Index(BlockCandidates());
  EXPECT_TRUE(blocker.Block("completely unrelated words").empty());
}

TEST(BlockingTest, HubTermsIgnored) {
  // "bruce willis" appears in 2/3 of candidates; with a strict cap the
  // shared surname is treated as a hub and contributes nothing.
  match::TokenBlocker::Options opts;
  opts.max_term_frequency = 0.05;
  match::TokenBlocker blocker(opts);
  blocker.Index(BlockCandidates());
  auto block = blocker.Block("bruce willis");
  EXPECT_TRUE(block.empty());
}

TEST(BlockingTest, MinSharedTermsFilters) {
  match::TokenBlocker::Options opts;
  opts.min_shared_terms = 3;
  match::TokenBlocker blocker(opts);
  blocker.Index(BlockCandidates());
  // Shares "pulp", "fiction", "pulp fiction" (n-gram) with row 1 only.
  auto block = blocker.Block("the pulp fiction film");
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0], 1);
}

TEST(BlockingTest, AverageBlockFractionBounded) {
  match::TokenBlocker blocker;
  blocker.Index(BlockCandidates());
  corpus::Corpus queries = corpus::Corpus::FromTexts(
      "q", {{"q0", "bruce willis"}, {"q1", "nothing shared"}});
  double frac = blocker.AverageBlockFraction(queries);
  EXPECT_GT(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

}  // namespace
}  // namespace tdmatch
