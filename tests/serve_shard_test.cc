// Tests for the scatter-gather serving stack: the consistent-hash
// Sharder, exact-mode bit-identity of ShardedQueryEngine across shard
// counts, the AdmissionController + NprobeTuner front-door knobs, the
// striped LRU ResultCache, and the MatchService overload/caching behavior
// over HTTP.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/admission.h"
#include "serve/http/client.h"
#include "serve/http/server.h"
#include "serve/http/service.h"
#include "serve/mmap_snapshot.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/sharded_engine.h"
#include "serve/sharder.h"
#include "serve/snapshot.h"
#include "util/json.h"

namespace tdmatch {
namespace {

using serve::AdmissionController;
using serve::AdmissionOptions;
using serve::NprobeTuner;
using serve::NprobeTunerOptions;
using serve::QueryEngine;
using serve::QueryEngineOptions;
using serve::ResultCache;
using serve::ResultCacheOptions;
using serve::ScoredMatch;
using serve::SearchMode;
using serve::Sharder;
using serve::SharderOptions;
using serve::ShardedEngineOptions;
using serve::ShardedQueryEngine;
using serve::http::HttpClient;
using serve::http::HttpServer;
using serve::http::MatchService;
using serve::http::ServiceOptions;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Sharder
// ---------------------------------------------------------------------------

std::vector<std::string> DocLabels(size_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (size_t i = 0; i < n; ++i) labels.push_back("doc" + std::to_string(i));
  return labels;
}

TEST(SharderTest, AssignmentIsDeterministicAndInRange) {
  const Sharder a(4);
  const Sharder b(4);  // independently built ring, same parameters
  for (const std::string& label : DocLabels(512)) {
    const size_t shard = a.ShardFor(label);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, a.ShardFor(label));  // stable across calls
    EXPECT_EQ(shard, b.ShardFor(label));  // pure function of the inputs
  }
}

TEST(SharderTest, SingleShardOwnsEverything) {
  const Sharder one(1);
  for (const std::string& label : DocLabels(64)) {
    EXPECT_EQ(one.ShardFor(label), 0u);
  }
}

TEST(SharderTest, AssignmentIsRoughlyBalanced) {
  const size_t kShards = 4, kLabels = 4096;
  const Sharder sharder(kShards);
  std::vector<size_t> counts(kShards, 0);
  for (const std::string& label : DocLabels(kLabels)) {
    ++counts[sharder.ShardFor(label)];
  }
  const size_t mean = kLabels / kShards;
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], mean / 2) << "shard " << s << " starved";
    EXPECT_LT(counts[s], mean * 2) << "shard " << s << " overloaded";
  }
}

TEST(SharderTest, SeedSaltsTheRing) {
  SharderOptions salted;
  salted.seed = 987654321;
  const Sharder a(4);
  const Sharder b(4, salted);
  size_t moved = 0;
  for (const std::string& label : DocLabels(256)) {
    moved += a.ShardFor(label) != b.ShardFor(label) ? 1 : 0;
  }
  EXPECT_GT(moved, 0u);  // the salt must actually reach the ring hashes
}

TEST(SharderTest, GrowingTheRingMovesFewLabels) {
  // The consistent-hashing point: N -> N+1 shards relocates ~1/(N+1) of
  // the labels, not ~N/(N+1) like `hash % N` would.
  const Sharder four(4);
  const Sharder five(5);
  size_t moved = 0;
  const size_t total = 4096;
  for (const std::string& label : DocLabels(total)) {
    moved += four.ShardFor(label) != five.ShardFor(label) ? 1 : 0;
  }
  // Theoretical fraction is 0.2; anything under 0.45 proves we are not in
  // modulo-rehash territory (~0.8) while leaving variance headroom.
  EXPECT_LT(static_cast<double>(moved) / static_cast<double>(total), 0.45);
  EXPECT_GT(moved, 0u);
}

TEST(SharderTest, Hash64AvalanchesNeighboringLabels) {
  // Stable, seed-sensitive, and adjacent labels land far apart.
  EXPECT_EQ(Sharder::Hash64("doc1"), Sharder::Hash64("doc1"));
  EXPECT_NE(Sharder::Hash64("doc1"), Sharder::Hash64("doc2"));
  EXPECT_NE(Sharder::Hash64("doc1"), Sharder::Hash64("doc1", 7));
  EXPECT_NE(Sharder::Hash64(""), 0u);
  // The high bits must move too (a ring keyed on a 64-bit position needs
  // entropy at the top, not just the low byte).
  EXPECT_NE(Sharder::Hash64("doc1") >> 32, Sharder::Hash64("doc2") >> 32);
}

// ---------------------------------------------------------------------------
// ShardedQueryEngine: exact-mode bit-identity vs the unsharded engine
// ---------------------------------------------------------------------------

/// 2-d geometry: candidates c<i> fan around the circle, queries q<i> sit
/// exactly on candidate (i + shift) mod n.
serve::Snapshot GeometricSnapshot(size_t n, size_t shift = 0) {
  serve::Snapshot snap;
  snap.meta.scenario = "shard-geometry";
  snap.meta.Set("candidate_prefix", "c");
  snap.meta.Set("query_prefix", "q");
  snap.table = embed::EmbeddingTable(2);
  for (size_t i = 0; i < n; ++i) {
    const float angle =
        static_cast<float>(i) / static_cast<float>(n) * 3.1f;
    snap.table.Put("c" + std::to_string(i),
                   {std::cos(angle), std::sin(angle)});
  }
  for (size_t i = 0; i < n; ++i) {
    const float angle = static_cast<float>((i + shift) % n) /
                        static_cast<float>(n) * 3.1f;
    snap.table.Put("q" + std::to_string(i),
                   {std::cos(angle), std::sin(angle)});
  }
  return snap;
}

std::string WriteGeometricSnapshot(const std::string& name, size_t n,
                                   size_t shift) {
  const std::string path = TempPath(name);
  serve::Snapshot snap = GeometricSnapshot(n, shift);
  EXPECT_TRUE(serve::SnapshotIo::Write(snap.table, snap.meta, path).ok());
  return path;
}

QueryEngineOptions TestEngineOptions() {
  QueryEngineOptions opts;
  opts.threads = 2;  // exercise the scatter pool
  opts.ivf.seed = 4242;
  return opts;
}

void ExpectSameMatches(const std::vector<ScoredMatch>& want,
                       const std::vector<ScoredMatch>& got,
                       const std::string& context) {
  ASSERT_EQ(want.size(), got.size()) << context;
  for (size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(want[r].label, got[r].label) << context << " row " << r;
    EXPECT_EQ(want[r].candidate, got[r].candidate)
        << context << " row " << r;
    // Bitwise double equality — the whole point of the merge order.
    EXPECT_EQ(want[r].score, got[r].score) << context << " row " << r;
  }
}

TEST(ShardedEngineTest, ExactModeBitIdenticalAcrossShardCounts) {
  const size_t n = 64;
  auto reference = QueryEngine::BuildForPrefix(GeometricSnapshot(n), "c",
                                               TestEngineOptions());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ShardedEngineOptions opts;
    opts.shards = shards;
    opts.engine = TestEngineOptions();
    auto sharded =
        ShardedQueryEngine::Build(GeometricSnapshot(n), "c", opts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ(sharded->num_shards(), shards);
    EXPECT_EQ(sharded->num_candidates(), n);
    size_t partitioned = 0;
    for (size_t s = 0; s < sharded->active_shards(); ++s) {
      partitioned += sharded->shard_size(s);
    }
    EXPECT_EQ(partitioned, n);  // every candidate in exactly one shard

    for (size_t i = 0; i < n; ++i) {
      const std::string q = "q" + std::to_string(i);
      for (size_t k : {size_t{1}, size_t{5}, n}) {
        auto want = reference->Query(q, k, SearchMode::kExact);
        auto got = sharded->Query(q, k, SearchMode::kExact);
        ASSERT_TRUE(want.ok() && got.ok());
        ExpectSameMatches(*want, *got,
                          q + " k=" + std::to_string(k) + " shards=" +
                              std::to_string(shards));
      }
    }
  }
}

TEST(ShardedEngineTest, ViewPathBitIdenticalToCopyPath) {
  const std::string path = WriteGeometricSnapshot("shard_view.tds", 48, 3);
  for (size_t shards : {size_t{1}, size_t{4}}) {
    ShardedEngineOptions opts;
    opts.shards = shards;
    opts.engine = TestEngineOptions();

    auto snap = serve::SnapshotIo::Read(path);
    ASSERT_TRUE(snap.ok());
    auto copy = ShardedQueryEngine::Build(std::move(*snap), "c", opts);
    ASSERT_TRUE(copy.ok()) << copy.status().ToString();

    auto view = serve::SnapshotView::Open(path);
    ASSERT_TRUE(view.ok());
    auto mapped = ShardedQueryEngine::BuildFromView(*view, "c", opts);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

    for (size_t i = 0; i < 48; ++i) {
      const std::string q = "q" + std::to_string(i);
      auto a = copy->Query(q, 6, SearchMode::kExact);
      auto b = mapped->Query(q, 6, SearchMode::kExact);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectSameMatches(*a, *b,
                        q + " shards=" + std::to_string(shards));
    }
  }
  std::remove(path.c_str());
}

TEST(ShardedEngineTest, FilteredBatchAndVectorMatchUnsharded) {
  const size_t n = 40;
  auto reference = QueryEngine::BuildForPrefix(GeometricSnapshot(n), "c",
                                               TestEngineOptions());
  ASSERT_TRUE(reference.ok());
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.engine = TestEngineOptions();
  auto sharded =
      ShardedQueryEngine::Build(GeometricSnapshot(n), "c", opts);
  ASSERT_TRUE(sharded.ok());

  // Filtered: the allowed set straddles shards and contains an unknown.
  const std::vector<std::string> allowed = {"c1", "c9", "c17", "c33",
                                            "zz-missing"};
  for (size_t i = 0; i < n; i += 7) {
    const std::string q = "q" + std::to_string(i);
    auto want = reference->QueryFiltered(q, allowed, 3);
    auto got = sharded->QueryFiltered(q, allowed, 3);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameMatches(*want, *got, "filtered " + q);
  }

  // Raw vector, exact mode.
  auto vwant =
      reference->QueryVector({0.5f, 0.25f}, 4, SearchMode::kExact);
  auto vgot = sharded->QueryVector({0.5f, 0.25f}, 4, SearchMode::kExact);
  ASSERT_TRUE(vwant.ok() && vgot.ok());
  ExpectSameMatches(*vwant, *vgot, "vector");

  // Batch: slot-for-slot identity, including the error slot.
  std::vector<std::string> labels;
  for (size_t i = 0; i < n; ++i) labels.push_back("q" + std::to_string(i));
  labels.push_back("missing-query");
  auto want_batch = reference->QueryBatch(labels, 5, SearchMode::kExact);
  auto got_batch = sharded->QueryBatch(labels, 5, SearchMode::kExact);
  ASSERT_EQ(want_batch.size(), got_batch.size());
  for (size_t i = 0; i < want_batch.size(); ++i) {
    ASSERT_EQ(want_batch[i].ok(), got_batch[i].ok()) << "slot " << i;
    if (!want_batch[i].ok()) {
      EXPECT_EQ(want_batch[i].status().message(),
                got_batch[i].status().message());
      continue;
    }
    ExpectSameMatches(*want_batch[i], *got_batch[i],
                      "batch slot " + std::to_string(i));
  }
}

TEST(ShardedEngineTest, ErrorsMatchUnsharded) {
  const size_t n = 16;
  auto reference = QueryEngine::BuildForPrefix(GeometricSnapshot(n), "c",
                                               TestEngineOptions());
  ASSERT_TRUE(reference.ok());
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.engine = TestEngineOptions();
  auto sharded =
      ShardedQueryEngine::Build(GeometricSnapshot(n), "c", opts);
  ASSERT_TRUE(sharded.ok());

  auto want = reference->Query("nope", 5, SearchMode::kExact);
  auto got = sharded->Query("nope", 5, SearchMode::kExact);
  ASSERT_FALSE(want.ok());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(want.status().message(), got.status().message());

  auto vwant = reference->QueryVector({1.0f}, 3, SearchMode::kExact);
  auto vgot = sharded->QueryVector({1.0f}, 3, SearchMode::kExact);
  ASSERT_FALSE(vwant.ok());
  ASSERT_FALSE(vgot.ok());
  EXPECT_EQ(vwant.status().message(), vgot.status().message());
}

TEST(ShardedEngineTest, MoreShardsThanCandidatesCompactsEmptyOnes) {
  const size_t n = 4;
  auto reference = QueryEngine::BuildForPrefix(GeometricSnapshot(n), "c",
                                               TestEngineOptions());
  ASSERT_TRUE(reference.ok());
  ShardedEngineOptions opts;
  opts.shards = 8;
  opts.engine = TestEngineOptions();
  auto sharded =
      ShardedQueryEngine::Build(GeometricSnapshot(n), "c", opts);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->num_shards(), 8u);
  EXPECT_LE(sharded->active_shards(), n);
  EXPECT_GE(sharded->active_shards(), 1u);

  for (size_t i = 0; i < n; ++i) {
    const std::string q = "q" + std::to_string(i);
    auto want = reference->Query(q, n, SearchMode::kExact);
    auto got = sharded->Query(q, n, SearchMode::kExact);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameMatches(*want, *got, q);
  }
}

TEST(ShardedEngineTest, ApproxIsDeterministicAndFullProbeRecoversExact) {
  const size_t n = 64;
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.engine = TestEngineOptions();
  auto a = ShardedQueryEngine::Build(GeometricSnapshot(n), "c", opts);
  auto b = ShardedQueryEngine::Build(GeometricSnapshot(n), "c", opts);
  ASSERT_TRUE(a.ok() && b.ok());

  for (size_t i = 0; i < n; ++i) {
    const std::string q = "q" + std::to_string(i);
    // Determinism: two engines built from the same inputs agree bitwise,
    // approx mode included (per-shard k-means is seeded).
    auto ra = a->Query(q, 5, SearchMode::kApprox);
    auto rb = b->Query(q, 5, SearchMode::kApprox);
    ASSERT_TRUE(ra.ok() && rb.ok());
    ExpectSameMatches(*ra, *rb, "approx " + q);

    // Probing every cell degenerates to a full scan: the top-1 must be
    // the candidate the query sits on, exactly as in exact mode. (Approx
    // results are NOT bit-identical across shard counts — per-shard
    // k-means sees different slices — so the contract tested here is
    // determinism + recall, not cross-N identity.)
    const size_t full = a->max_nprobe();
    auto probe_all = a->Query(q, 1, SearchMode::kApprox, full);
    auto exact = a->Query(q, 1, SearchMode::kExact);
    ASSERT_TRUE(probe_all.ok() && exact.ok());
    ASSERT_EQ(probe_all->size(), 1u);
    EXPECT_EQ((*probe_all)[0].label, (*exact)[0].label) << q;
  }
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionTest, CapacityZeroShedsEverything) {
  AdmissionController gate(AdmissionOptions{0, 1, 30});
  EXPECT_FALSE(gate.TryAcquire());
  AdmissionController::Ticket ticket(&gate);
  EXPECT_FALSE(ticket.admitted());
  EXPECT_EQ(gate.shed(), 2u);
  EXPECT_EQ(gate.admitted(), 0u);
  EXPECT_EQ(gate.inflight(), 0u);
}

TEST(AdmissionTest, BurstExactlyAtTheLimit) {
  AdmissionController gate(AdmissionOptions{2, 1, 30});
  {
    AdmissionController::Ticket t1(&gate);
    AdmissionController::Ticket t2(&gate);
    EXPECT_TRUE(t1.admitted());
    EXPECT_TRUE(t2.admitted());
    EXPECT_EQ(gate.inflight(), 2u);

    // Exactly at the limit: the next request is shed, not queued.
    AdmissionController::Ticket t3(&gate);
    EXPECT_FALSE(t3.admitted());
    EXPECT_EQ(gate.shed(), 1u);
    EXPECT_EQ(gate.inflight(), 2u);
  }
  // RAII released both slots; capacity is back.
  EXPECT_EQ(gate.inflight(), 0u);
  AdmissionController::Ticket t4(&gate);
  EXPECT_TRUE(t4.admitted());
  EXPECT_EQ(gate.admitted(), 3u);
  EXPECT_EQ(gate.shed(), 1u);
}

TEST(AdmissionTest, TicketMoveTransfersTheSlot) {
  AdmissionController gate(AdmissionOptions{1, 1, 30});
  AdmissionController::Ticket a(&gate);
  EXPECT_TRUE(a.admitted());
  AdmissionController::Ticket b(std::move(a));
  EXPECT_TRUE(b.admitted());
  EXPECT_FALSE(a.admitted());  // NOLINT(bugprone-use-after-move): pinned
  EXPECT_EQ(gate.inflight(), 1u);  // exactly one slot, not two
}

TEST(AdmissionTest, DefaultIsUnlimited) {
  AdmissionController gate;
  EXPECT_TRUE(gate.unlimited());
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 100; ++i) tickets.emplace_back(&gate);
  for (const auto& t : tickets) EXPECT_TRUE(t.admitted());
  EXPECT_EQ(gate.shed(), 0u);
  EXPECT_EQ(gate.inflight(), 100u);
}

TEST(AdmissionTest, RetryAfterIsClampedWholeSeconds) {
  AdmissionController gate(AdmissionOptions{4, 1, 30});
  // Idle: the minimum applies.
  EXPECT_EQ(gate.RetryAfterSeconds(500.0), 1);
  EXPECT_EQ(gate.RetryAfterSeconds(0.0), 1);

  AdmissionController::Ticket t1(&gate);
  AdmissionController::Ticket t2(&gate);
  ASSERT_TRUE(t1.admitted() && t2.admitted());
  // 2 in flight at 700ms each = 1.4s backlog, rounded up to 2.
  EXPECT_EQ(gate.RetryAfterSeconds(700.0), 2);
  // Absurd per-query cost still clamps to the ceiling.
  EXPECT_EQ(gate.RetryAfterSeconds(1e9), 30);
  for (int i = 1; i <= 30; ++i) {
    const int s = gate.RetryAfterSeconds(static_cast<double>(i) * 997.0);
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 30);
  }
}

// ---------------------------------------------------------------------------
// NprobeTuner
// ---------------------------------------------------------------------------

TEST(NprobeTunerTest, DisabledWithoutBudget) {
  NprobeTuner tuner;  // budget_ms defaults to 0
  EXPECT_FALSE(tuner.enabled());
  for (int i = 0; i < 200; ++i) tuner.Observe(1e6);
  EXPECT_EQ(tuner.observed(), 0u);
  EXPECT_EQ(tuner.adjustments(), 0u);
}

TEST(NprobeTunerTest, MultiplicativeBackoffOverBudget) {
  NprobeTunerOptions opts;
  opts.budget_ms = 10.0;
  opts.min_nprobe = 2;
  opts.max_nprobe = 64;
  opts.initial_nprobe = 16;
  opts.window = 4;
  NprobeTuner tuner(opts);
  ASSERT_TRUE(tuner.enabled());
  EXPECT_EQ(tuner.nprobe(), 16u);

  auto window_over_budget = [&] {
    for (int i = 0; i < 4; ++i) tuner.Observe(50.0);
  };
  window_over_budget();
  EXPECT_EQ(tuner.nprobe(), 8u);
  window_over_budget();
  EXPECT_EQ(tuner.nprobe(), 4u);
  window_over_budget();
  EXPECT_EQ(tuner.nprobe(), 2u);
  window_over_budget();
  EXPECT_EQ(tuner.nprobe(), 2u);  // floored at min_nprobe
  EXPECT_EQ(tuner.adjustments(), 3u);  // the floor window changed nothing
}

TEST(NprobeTunerTest, AdditiveRecoveryUnderHalfBudget) {
  NprobeTunerOptions opts;
  opts.budget_ms = 10.0;
  opts.min_nprobe = 1;
  opts.max_nprobe = 6;
  opts.initial_nprobe = 4;
  opts.window = 2;
  NprobeTuner tuner(opts);
  tuner.Observe(1.0);
  EXPECT_EQ(tuner.nprobe(), 4u);  // mid-window: no change yet
  tuner.Observe(1.0);
  EXPECT_EQ(tuner.nprobe(), 5u);
  tuner.Observe(1.0);
  tuner.Observe(1.0);
  EXPECT_EQ(tuner.nprobe(), 6u);
  tuner.Observe(1.0);
  tuner.Observe(1.0);
  EXPECT_EQ(tuner.nprobe(), 6u);  // capped at max_nprobe
}

TEST(NprobeTunerTest, HoldsInsideTheDeadband) {
  NprobeTunerOptions opts;
  opts.budget_ms = 10.0;
  opts.initial_nprobe = 4;
  opts.window = 2;
  NprobeTuner tuner(opts);
  // Between half the budget and the budget: neither direction moves.
  for (int i = 0; i < 10; ++i) tuner.Observe(7.0);
  EXPECT_EQ(tuner.nprobe(), 4u);
  EXPECT_EQ(tuner.adjustments(), 0u);
  EXPECT_EQ(tuner.observed(), 10u);
}

TEST(NprobeTunerTest, ConstructorClampsDegenerateOptions) {
  NprobeTunerOptions opts;
  opts.budget_ms = 5.0;
  opts.min_nprobe = 0;   // -> 1
  opts.max_nprobe = 0;   // -> min
  opts.initial_nprobe = 99;  // -> clamped into [min, max]
  opts.window = 0;       // -> 1
  NprobeTuner tuner(opts);
  EXPECT_EQ(tuner.nprobe(), 1u);
  EXPECT_EQ(tuner.options().window, 1u);
  tuner.Observe(100.0);  // window 1: adjusts every observation, stays >= 1
  EXPECT_EQ(tuner.nprobe(), 1u);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, DisabledAtZeroCapacity) {
  ResultCache cache;  // capacity 0
  EXPECT_FALSE(cache.enabled());
  cache.Put("k", 1, "body");
  std::string out;
  EXPECT_FALSE(cache.Get("k", 1, &out));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);  // disabled Get doesn't even count
}

TEST(ResultCacheTest, LruEvictsTheColdestEntry) {
  // One stripe makes the LRU order global and the test deterministic.
  ResultCache cache(ResultCacheOptions{2, 1});
  cache.Put("a", 1, "A");
  cache.Put("b", 1, "B");
  std::string out;
  ASSERT_TRUE(cache.Get("a", 1, &out));  // "a" is now hottest
  EXPECT_EQ(out, "A");

  cache.Put("c", 1, "C");  // evicts "b", the LRU entry
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Get("b", 1, &out));
  ASSERT_TRUE(cache.Get("a", 1, &out));
  ASSERT_TRUE(cache.Get("c", 1, &out));
  EXPECT_EQ(out, "C");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ResultCacheTest, VersionMismatchErasesTheStaleEntry) {
  ResultCache cache(ResultCacheOptions{4, 1});
  cache.Put("q", 1, "old epoch");
  std::string out;
  EXPECT_FALSE(cache.Get("q", 2, &out));  // stale stamp: miss + erase
  EXPECT_EQ(cache.size(), 0u);
  // Even the original version can't resurrect it.
  EXPECT_FALSE(cache.Get("q", 1, &out));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ResultCacheTest, PutRefreshesInPlace) {
  ResultCache cache(ResultCacheOptions{2, 1});
  cache.Put("k", 1, "v1");
  cache.Put("k", 2, "v2");  // refresh, not a second entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  std::string out;
  EXPECT_FALSE(cache.Get("k", 1, &out));  // old stamp is gone
  cache.Put("k", 2, "v2");
  ASSERT_TRUE(cache.Get("k", 2, &out));
  EXPECT_EQ(out, "v2");
}

TEST(ResultCacheTest, ClearDropsEverything) {
  ResultCache cache(ResultCacheOptions{16, 4});
  for (int i = 0; i < 12; ++i) {
    cache.Put("key" + std::to_string(i), 1, "v");
  }
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  std::string out;
  EXPECT_FALSE(cache.Get("key3", 1, &out));
}

TEST(ResultCacheTest, StripesNeverExceedCapacity) {
  // capacity 4 with 8 requested stripes: the ctor clamps to one entry per
  // stripe rather than silently growing the budget to 8.
  ResultCache cache(ResultCacheOptions{4, 8});
  EXPECT_EQ(cache.options().stripes, 4u);
  for (int i = 0; i < 64; ++i) {
    cache.Put("key" + std::to_string(i), 1, "v");
  }
  EXPECT_LE(cache.size(), 4u);
}

// ---------------------------------------------------------------------------
// MatchService: sharded serving, shedding, cache-on-reload (over HTTP)
// ---------------------------------------------------------------------------

struct ServiceFixture {
  explicit ServiceFixture(const std::string& snapshot_path,
                          ServiceOptions sopts = {}) : service(sopts) {
    util::Status st = service.LoadInitial(snapshot_path);
    EXPECT_TRUE(st.ok()) << st.ToString();
    service.Register(&server);
    st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ServiceFixture() { server.Stop(); }

  MatchService service;
  HttpServer server;
};

using Matches = std::vector<std::pair<std::string, double>>;

Matches ParseMatches(const util::JsonValue& container) {
  Matches out;
  const util::JsonValue* matches = container.Find("matches");
  EXPECT_NE(matches, nullptr);
  if (matches == nullptr) return out;
  for (const auto& m : matches->items()) {
    out.emplace_back(m.Find("label")->string_value(),
                     m.Find("score")->number_value());
  }
  return out;
}

TEST(ShardedServiceTest, ShardedHttpResponsesMatchUnsharded) {
  const std::string path = WriteGeometricSnapshot("svc_shards.tds", 32, 2);
  ServiceOptions unsharded;
  ServiceOptions sharded;
  sharded.shards = 4;
  ServiceFixture fx1(path, unsharded);
  ServiceFixture fx4(path, sharded);

  auto c1 = HttpClient::Connect("127.0.0.1", fx1.server.port());
  auto c4 = HttpClient::Connect("127.0.0.1", fx4.server.port());
  ASSERT_TRUE(c1.ok() && c4.ok());

  for (size_t i = 0; i < 32; ++i) {
    const std::string body = "{\"label\": \"q" + std::to_string(i) +
                             "\", \"k\": 5, \"mode\": \"exact\"}";
    auto r1 = c1->Post("/v1/query", body);
    auto r4 = c4->Post("/v1/query", body);
    ASSERT_TRUE(r1.ok() && r4.ok());
    ASSERT_EQ(r1->status, 200) << r1->body;
    ASSERT_EQ(r4->status, 200) << r4->body;
    // The rendered bodies are byte-identical: same matches, same
    // round-trippable score spellings, same snapshot_version. This is the invariant the
    // CI sharded smoke diffs from outside the process.
    EXPECT_EQ(r1->body, r4->body) << "q" << i;
  }

  auto stats = c4->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto doc = util::JsonParse(stats->body);
  ASSERT_TRUE(doc.ok()) << stats->body;
  const util::JsonValue* shards = doc->Find("shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(shards->Find("configured")->number_value(), 4.0);
  EXPECT_GE(shards->Find("active")->number_value(), 1.0);
  std::remove(path.c_str());
}

TEST(ShardedServiceTest, MaxInflightZeroShedsWith429AndRetryAfter) {
  const std::string path = WriteGeometricSnapshot("svc_shed.tds", 8, 0);
  ServiceOptions sopts;
  sopts.max_inflight = 0;  // drain mode: every query is shed
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  for (int i = 0; i < 3; ++i) {
    auto r = client->Post("/v1/query", "{\"label\": \"q0\"}");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 429) << r->body;
    // RFC 9110 delta-seconds: a bare integer in [1, 30].
    const std::string& retry = r->Header("retry-after");
    ASSERT_FALSE(retry.empty());
    EXPECT_EQ(retry.find_first_not_of("0123456789"), std::string::npos);
    const int seconds = std::stoi(retry);
    EXPECT_GE(seconds, 1);
    EXPECT_LE(seconds, 30);
    auto doc = util::JsonParse(r->body);
    ASSERT_TRUE(doc.ok()) << r->body;
    EXPECT_NE(doc->Find("error"), nullptr);
    EXPECT_EQ(doc->Find("retry_after_seconds")->number_value(),
              static_cast<double>(seconds));
  }

  // Shedding is not an engine error, and health stays green at capacity 0
  // — the whole point of failing fast at the front door.
  auto health = client->Get("/v1/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(fx.service.admission().shed(), 3u);
  EXPECT_EQ(fx.service.admission().admitted(), 0u);

  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto doc = util::JsonParse(stats->body);
  ASSERT_TRUE(doc.ok());
  const util::JsonValue* admission = doc->Find("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_EQ(admission->Find("max_inflight")->number_value(), 0.0);
  EXPECT_EQ(admission->Find("shed")->number_value(), 3.0);
  std::remove(path.c_str());
}

TEST(ShardedServiceTest, OverlappingQueriesShedPastTheLimit) {
  const std::string path = WriteGeometricSnapshot("svc_burst.tds", 8, 0);
  ServiceOptions sopts;
  sopts.max_inflight = 1;
  sopts.allow_debug_delay = true;  // makes the in-flight overlap determinate
  ServiceFixture fx(path, sopts);

  // A slow query holds the only slot...
  std::thread slow([&] {
    auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
    ASSERT_TRUE(client.ok());
    auto r = client->Post("/v1/query",
                          "{\"label\": \"q0\", \"delay_ms\": 1500}");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, 200) << r->body;
  });
  // ...wait until it is inside the admission window, then collide.
  for (int i = 0; i < 200 && fx.service.admission().inflight() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(fx.service.admission().inflight(), 1u);

  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());
  auto shed = client->Post("/v1/query", "{\"label\": \"q1\"}");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 429) << shed->body;
  EXPECT_FALSE(shed->Header("retry-after").empty());
  slow.join();

  EXPECT_EQ(fx.service.admission().shed(), 1u);
  EXPECT_EQ(fx.service.admission().admitted(), 1u);
  EXPECT_EQ(fx.service.admission().inflight(), 0u);
  // Capacity is back after the slow query drains.
  auto ok = client->Post("/v1/query", "{\"label\": \"q1\"}");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->status, 200) << ok->body;
  std::remove(path.c_str());
}

TEST(ShardedServiceTest, CacheServesHitsAndInvalidatesOnReload) {
  // Two snapshots that disagree about every query's nearest neighbor: a
  // cached body surviving the reload would be visibly wrong.
  const std::string path_a = WriteGeometricSnapshot("svc_cache_a.tds", 12, 0);
  const std::string path_b = WriteGeometricSnapshot("svc_cache_b.tds", 12, 5);
  ServiceOptions sopts;
  sopts.cache_entries = 8;
  ServiceFixture fx(path_a, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  const std::string query =
      "{\"label\": \"q1\", \"k\": 1, \"mode\": \"exact\"}";
  auto first = client->Post("/v1/query", query);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->status, 200) << first->body;
  auto doc = util::JsonParse(first->body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(ParseMatches(*doc)[0].first, "c1");  // shift 0: q1 sits on c1
  EXPECT_EQ(fx.service.cache().hits(), 0u);
  EXPECT_EQ(fx.service.cache().misses(), 1u);

  // Identical repeat: served from the cache, body byte-identical.
  auto second = client->Post("/v1/query", query);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->body, first->body);
  EXPECT_EQ(fx.service.cache().hits(), 1u);

  // Reload swaps the snapshot and must drop the warm cache with it.
  auto reload =
      client->Post("/v1/reload", "{\"snapshot\": \"" + path_b + "\"}");
  ASSERT_TRUE(reload.ok());
  ASSERT_EQ(reload->status, 200) << reload->body;
  EXPECT_EQ(fx.service.cache().size(), 0u);

  auto third = client->Post("/v1/query", query);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(third->status, 200) << third->body;
  auto doc3 = util::JsonParse(third->body);
  ASSERT_TRUE(doc3.ok());
  EXPECT_EQ(ParseMatches(*doc3)[0].first, "c6");  // shift 5: q1 sits on c6
  EXPECT_EQ(fx.service.cache().hits(), 1u);  // that was a miss, not a hit
  EXPECT_EQ(fx.service.cache().misses(), 2u);

  // And the new epoch's answer is itself cacheable.
  auto fourth = client->Post("/v1/query", query);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(fourth->body, third->body);
  EXPECT_EQ(fx.service.cache().hits(), 2u);

  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto sdoc = util::JsonParse(stats->body);
  ASSERT_TRUE(sdoc.ok());
  const util::JsonValue* cache = sdoc->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->Find("enabled")->bool_value());
  EXPECT_EQ(cache->Find("hits")->number_value(), 2.0);
  EXPECT_EQ(cache->Find("misses")->number_value(), 2.0);
  EXPECT_EQ(cache->Find("hit_rate")->number_value(), 0.5);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(ShardedServiceTest, StatsExposeTheNewSubsystems) {
  const std::string path = WriteGeometricSnapshot("svc_stats.tds", 16, 0);
  ServiceOptions sopts;
  sopts.shards = 2;
  sopts.max_inflight = 7;
  sopts.latency_budget_ms = 50.0;
  sopts.cache_entries = 4;
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto doc = util::JsonParse(stats->body);
  ASSERT_TRUE(doc.ok()) << stats->body;

  EXPECT_EQ(doc->Find("shards")->Find("configured")->number_value(), 2.0);
  EXPECT_EQ(doc->Find("admission")->Find("max_inflight")->number_value(),
            7.0);
  EXPECT_EQ(doc->Find("admission")->Find("shed")->number_value(), 0.0);
  const util::JsonValue* autotune = doc->Find("autotune");
  ASSERT_NE(autotune, nullptr);
  EXPECT_TRUE(autotune->Find("enabled")->bool_value());
  EXPECT_EQ(autotune->Find("budget_ms")->number_value(), 50.0);
  EXPECT_GE(autotune->Find("nprobe")->number_value(), 1.0);
  EXPECT_TRUE(doc->Find("cache")->Find("enabled")->bool_value());

  // Unlimited admission encodes as -1, not SIZE_MAX.
  ServiceOptions defaults;
  ServiceFixture unlimited(path, defaults);
  auto c2 = HttpClient::Connect("127.0.0.1", unlimited.server.port());
  ASSERT_TRUE(c2.ok());
  auto s2 = c2->Get("/v1/stats");
  ASSERT_TRUE(s2.ok());
  auto d2 = util::JsonParse(s2->body);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->Find("admission")->Find("max_inflight")->number_value(),
            -1.0);
  EXPECT_FALSE(d2->Find("autotune")->Find("enabled")->bool_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdmatch
