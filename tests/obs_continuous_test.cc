// Tests for the continuous-observability layer (PR 10): the sampling CPU
// profiler and its folded/JSON renderings, Registry::Collect, the
// time-series metric history (ring wrap, retention, rate math), the SLO
// burn-rate tracker (healthy -> fast-burn -> recovery on a fake clock),
// and the JSONL logger's file sink with keep-one rotation.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/json.h"
#include "util/obs/jsonlog.h"
#include "util/obs/metrics.h"
#include "util/obs/profiler.h"
#include "util/obs/slo.h"
#include "util/obs/timeseries.h"

// The profiler's SIGPROF handler walks raw frame pointers; sanitizer
// runtimes intercept signals and object to reads the handler knows are
// safe. Capture tests are skipped under TSan/ASan (the pure aggregation
// and rendering tests still run).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TDMATCH_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TDMATCH_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef TDMATCH_TEST_UNDER_SANITIZER
#define TDMATCH_TEST_UNDER_SANITIZER 0
#endif

// A recognizable hot function for the capture test. extern "C" +
// noinline: the symbol survives mangling and inlining, so `dladdr`
// (via -rdynamic) must be able to name it in the folded stacks.
extern "C" __attribute__((noinline)) double TdmatchObsTestSpinHot(
    uint64_t rounds) {
  volatile double acc = 0.0;
  for (uint64_t i = 0; i < rounds; ++i) {
    acc = acc + static_cast<double>(i % 1000) * 1e-9;
  }
  return acc;
}

namespace tdmatch {
namespace {

using util::obs::CpuProfile;
using util::obs::CpuProfiler;
using util::obs::JsonLogger;
using util::obs::MetricType;
using util::obs::Registry;
using util::obs::SloOptions;
using util::obs::SloTracker;
using util::obs::TimeSeriesOptions;
using util::obs::TimeSeriesSampler;
using util::obs::TimeSeriesStore;

// ---------------------------------------------------------------------------
// CpuProfile rendering (pure; no capture involved)
// ---------------------------------------------------------------------------

CpuProfile MakeProfile() {
  CpuProfile p;
  p.hz = 99;
  p.seconds = 2.0;
  p.samples = 10;
  p.dropped = 1;
  p.stacks = {{"main;Run;HotLoop", 6},
              {"main;Run;ColdPath", 3},
              {"main;Idle", 1}};
  return p;
}

TEST(CpuProfileTest, FoldedTextIsFlamegraphInput) {
  const CpuProfile p = MakeProfile();
  EXPECT_EQ(p.FoldedText(),
            "main;Run;HotLoop 6\n"
            "main;Run;ColdPath 3\n"
            "main;Idle 1\n");
}

TEST(CpuProfileTest, ToJsonRanksBySelfSamples) {
  const CpuProfile p = MakeProfile();
  auto doc = util::JsonParse(p.ToJson(2));
  ASSERT_TRUE(doc.ok()) << p.ToJson(2);
  EXPECT_EQ(doc->Find("hz")->number_value(), 99.0);
  EXPECT_EQ(doc->Find("samples")->number_value(), 10.0);
  EXPECT_EQ(doc->Find("dropped")->number_value(), 1.0);
  EXPECT_EQ(doc->Find("distinct_stacks")->number_value(), 3.0);
  const util::JsonValue* top = doc->Find("top");
  ASSERT_NE(top, nullptr);
  ASSERT_EQ(top->items().size(), 2u);  // top_n honored
  // HotLoop leads: 6 of its samples are leaf ("self") samples.
  const util::JsonValue& first = top->items()[0];
  EXPECT_EQ(first.Find("function")->string_value(), "HotLoop");
  EXPECT_EQ(first.Find("self")->number_value(), 6.0);
  const util::JsonValue& second = top->items()[1];
  EXPECT_EQ(second.Find("function")->string_value(), "ColdPath");
  EXPECT_EQ(second.Find("self")->number_value(), 3.0);
}

TEST(CpuProfileTest, EmptyProfileRendersEmpty) {
  CpuProfile p;
  EXPECT_EQ(p.FoldedText(), "");
  auto doc = util::JsonParse(p.ToJson());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("samples")->number_value(), 0.0);
}

// ---------------------------------------------------------------------------
// CPU profiler capture
// ---------------------------------------------------------------------------

TEST(CpuProfilerTest, SecondStartIsAlreadyExists) {
  if (!CpuProfiler::Supported() || TDMATCH_TEST_UNDER_SANITIZER) {
    GTEST_SKIP() << "profiler capture not supported in this build";
  }
  CpuProfiler& prof = CpuProfiler::Global();
  ASSERT_TRUE(prof.Start(99).ok());
  EXPECT_TRUE(prof.running());
  EXPECT_TRUE(prof.Start(99).IsAlreadyExists());
  const CpuProfile p = prof.Stop();
  EXPECT_FALSE(prof.running());
  EXPECT_EQ(p.hz, 99);
}

TEST(CpuProfilerTest, CapturesSpinWorkloadWithNamedHotFrame) {
  if (!CpuProfiler::Supported() || TDMATCH_TEST_UNDER_SANITIZER) {
    GTEST_SKIP() << "profiler capture not supported in this build";
  }
  // Burn CPU in a recognizable function on background threads while the
  // profiler samples process CPU time at 500 Hz.
  std::atomic<bool> stop{false};
  std::vector<std::thread> spinners;
  for (int t = 0; t < 2; ++t) {
    spinners.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        TdmatchObsTestSpinHot(200000);
      }
    });
  }
  auto profile = CpuProfiler::Global().ProfileFor(0.8, 500);
  stop.store(true);
  for (auto& t : spinners) t.join();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_GT(profile->samples, 10u)
      << "spin workload yielded almost no samples";
  EXPECT_NE(profile->FoldedText().find("TdmatchObsTestSpinHot"),
            std::string::npos)
      << profile->FoldedText().substr(0, 2000);
  // The hot function dominates: it must appear in the JSON top table.
  EXPECT_NE(profile->ToJson(5).find("TdmatchObsTestSpinHot"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry::Collect
// ---------------------------------------------------------------------------

TEST(RegistryCollectTest, EmitsScalarsAndFlattensHistograms) {
  Registry reg;
  reg.GetCounter("c_total", "h")->Inc(7);
  reg.GetGauge("g", "h", {{"shard", "0"}})->Set(2.5);
  reg.RegisterCallback(MetricType::kGauge, "cb", "h", {}, [] { return 4.0; });
  auto* hist = reg.GetHistogram("lat_ms", "h", {1.0, 10.0});
  hist->Observe(0.5);
  hist->Observe(5.0);

  const std::vector<Registry::Sample> samples = reg.Collect();
  auto find = [&](const std::string& name) -> const Registry::Sample* {
    for (const auto& s : samples) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  ASSERT_NE(find("c_total"), nullptr);
  EXPECT_EQ(find("c_total")->value, 7.0);
  EXPECT_EQ(find("c_total")->type, MetricType::kCounter);
  ASSERT_NE(find("g"), nullptr);
  EXPECT_EQ(find("g")->value, 2.5);
  EXPECT_EQ(find("g")->labels, "{shard=\"0\"}");
  ASSERT_NE(find("cb"), nullptr);
  EXPECT_EQ(find("cb")->value, 4.0);
  // Histogram flattens to _count (counter) + _sum (gauge).
  ASSERT_NE(find("lat_ms_count"), nullptr);
  EXPECT_EQ(find("lat_ms_count")->value, 2.0);
  EXPECT_EQ(find("lat_ms_count")->type, MetricType::kCounter);
  ASSERT_NE(find("lat_ms_sum"), nullptr);
  EXPECT_EQ(find("lat_ms_sum")->value, 5.5);
}

// ---------------------------------------------------------------------------
// Time-series history
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, WindowComputesDeltaAndRate) {
  Registry reg;
  auto* queries = reg.GetCounter("q_total", "h");
  TimeSeriesOptions opts;
  opts.interval_seconds = 1.0;
  opts.capacity = 10;
  TimeSeriesStore store(&reg, opts);

  // 10 qps for 5 fake seconds.
  for (int t = 0; t <= 5; ++t) {
    queries->Inc(t == 0 ? 0 : 10);
    store.SampleOnce(100.0 + t);
  }
  const auto window = store.Window(5.0, 105.0);
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].name, "q_total");
  EXPECT_EQ(window[0].points.size(), 5u);  // (100, 105] excludes t=100
  EXPECT_EQ(window[0].last, 50.0);
  EXPECT_EQ(window[0].delta, 40.0);  // 10 -> 50 across the window
  EXPECT_NEAR(window[0].rate_per_sec, 10.0, 1e-9);
}

TEST(TimeSeriesTest, RingWrapsAndRetainsNewestPoints) {
  Registry reg;
  auto* g = reg.GetGauge("v", "h");
  TimeSeriesOptions opts;
  opts.capacity = 4;
  TimeSeriesStore store(&reg, opts);
  for (int t = 0; t < 10; ++t) {
    g->Set(static_cast<double>(t));
    store.SampleOnce(static_cast<double>(t));
  }
  // Only the newest `capacity` points survive, oldest first.
  const auto window = store.Window(100.0, 9.0);
  ASSERT_EQ(window.size(), 1u);
  ASSERT_EQ(window[0].points.size(), 4u);
  EXPECT_EQ(window[0].points.front().value, 6.0);
  EXPECT_EQ(window[0].points.back().value, 9.0);
  EXPECT_EQ(window[0].delta, 3.0);  // gauge delta = last - first
  EXPECT_EQ(store.samples_taken(), 10u);
}

TEST(TimeSeriesTest, CounterResetClampsDeltaToLastValue) {
  Registry reg;
  TimeSeriesOptions opts;
  opts.capacity = 8;
  TimeSeriesStore store(&reg, opts);
  // Simulate a counter reset (process restart behind the same series
  // key) with a counter-typed callback that drops from 100 to 5: a raw
  // first-to-last delta would be negative.
  double value = 100.0;
  reg.RegisterCallback(MetricType::kCounter, "r_total", "h", {},
                       [&value] { return value; });
  store.SampleOnce(1.0);
  value = 5.0;
  store.SampleOnce(2.0);
  const auto w = store.Window(10.0, 2.0);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].last, 5.0);
  EXPECT_EQ(w[0].delta, 5.0);  // clamped to the post-reset value
  EXPECT_NEAR(w[0].rate_per_sec, 5.0, 1e-9);
}

TEST(TimeSeriesTest, PrefixFiltersBothAtSampleAndQueryTime) {
  Registry reg;
  reg.GetCounter("tdmatch_a_total", "h")->Inc(1);
  reg.GetCounter("other_b_total", "h")->Inc(1);
  TimeSeriesOptions opts;
  opts.name_prefix = "tdmatch_";
  TimeSeriesStore store(&reg, opts);
  store.SampleOnce(1.0);
  EXPECT_EQ(store.series_count(), 1u);
  const auto all = store.Window(10.0, 1.0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].name, "tdmatch_a_total");
  EXPECT_TRUE(store.Window(10.0, 1.0, "other_").empty());
}

TEST(TimeSeriesTest, MemoryBytesIsCapacityDeterministic) {
  Registry reg;
  reg.GetCounter("a_total", "h")->Inc(1);
  reg.GetCounter("b_total", "h")->Inc(1);
  TimeSeriesOptions opts;
  opts.capacity = 100;
  TimeSeriesStore store(&reg, opts);
  store.SampleOnce(1.0);
  const size_t two_series = store.MemoryBytes();
  EXPECT_GE(two_series, 2 * 100 * sizeof(TimeSeriesStore::Point));
  // More samples do not grow the rings.
  for (int t = 2; t < 50; ++t) store.SampleOnce(static_cast<double>(t));
  EXPECT_EQ(store.MemoryBytes(), two_series);
}

TEST(TimeSeriesTest, BackgroundSamplerTakesSamples) {
  Registry reg;
  reg.GetCounter("x_total", "h")->Inc(1);
  TimeSeriesOptions opts;
  opts.interval_seconds = 0.01;
  TimeSeriesStore store(&reg, opts);
  TimeSeriesSampler sampler(&store);
  sampler.Start();
  sampler.Start();  // idempotent
  EXPECT_TRUE(sampler.running());
  for (int i = 0; i < 200 && store.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(store.samples_taken(), 3u);
  const uint64_t after_stop = store.samples_taken();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(store.samples_taken(), after_stop);
}

// ---------------------------------------------------------------------------
// SLO burn-rate tracking
// ---------------------------------------------------------------------------

SloOptions TestSloOptions() {
  SloOptions o;
  o.availability_target = 0.999;
  o.latency_target = 0.999;
  o.latency_budget_ms = 50.0;
  o.fast = {10.0, 60.0, 14.4};
  o.slow = {60.0, 300.0, 6.0};
  o.bucket_seconds = 1.0;
  o.buckets = 400;
  return o;
}

TEST(SloTrackerTest, HealthyTrafficDoesNotBurn) {
  SloTracker slo(TestSloOptions());
  for (int t = 0; t < 120; ++t) {
    for (int i = 0; i < 10; ++i) {
      slo.Record(static_cast<double>(t), true, true);
    }
  }
  EXPECT_FALSE(slo.Degraded(120.0));
  const auto status = slo.Evaluate(120.0);
  ASSERT_EQ(status.size(), 2u);  // availability + latency (budget > 0)
  EXPECT_EQ(status[0].name, "availability");
  EXPECT_EQ(status[1].name, "latency");
  for (const auto& obj : status) {
    EXPECT_FALSE(obj.fast_burning);
    EXPECT_FALSE(obj.slow_burning);
    EXPECT_EQ(obj.fast_short.bad, 0u);
    EXPECT_NEAR(obj.budget_remaining, 1.0, 1e-9);
  }
}

TEST(SloTrackerTest, FastBurnFiresAndRecovers) {
  SloTracker slo(TestSloOptions());
  double now = 0.0;
  // Phase 1: 120 s of clean traffic.
  for (; now < 120.0; now += 1.0) {
    for (int i = 0; i < 10; ++i) slo.Record(now, true, true);
  }
  EXPECT_FALSE(slo.Degraded(now));

  // Phase 2: a 5xx storm — 50% errors is a burn rate of 500x the 0.1%
  // budget, far past the 14.4 fast threshold on both fast windows.
  for (; now < 180.0; now += 1.0) {
    for (int i = 0; i < 10; ++i) slo.Record(now, i % 2 == 0, true);
  }
  EXPECT_TRUE(slo.Degraded(now));
  auto status = slo.Evaluate(now);
  EXPECT_TRUE(status[0].fast_burning);
  EXPECT_GT(status[0].fast_short.burn_rate, 14.4);
  EXPECT_GT(status[0].fast_long.burn_rate, 14.4);
  EXPECT_LT(status[0].budget_remaining, 1.0);
  // The latency objective saw only good latency events.
  EXPECT_FALSE(status[1].fast_burning);

  // Phase 3: recovery. The short fast window (10 s) clears quickly even
  // though the 60 s long window still remembers the storm — then both do.
  for (; now < 260.0; now += 1.0) {
    for (int i = 0; i < 10; ++i) slo.Record(now, true, true);
  }
  EXPECT_FALSE(slo.Degraded(now));
  status = slo.Evaluate(now);
  EXPECT_FALSE(status[0].fast_burning);
}

TEST(SloTrackerTest, LatencyObjectiveBurnsIndependently) {
  SloTracker slo(TestSloOptions());
  double now = 0.0;
  for (; now < 60.0; now += 1.0) {
    // Available but slow: every request misses the latency budget.
    for (int i = 0; i < 10; ++i) slo.Record(now, true, false);
  }
  EXPECT_TRUE(slo.Degraded(now));
  const auto status = slo.Evaluate(now);
  EXPECT_FALSE(status[0].fast_burning) << "availability is clean";
  EXPECT_TRUE(status[1].fast_burning) << "latency should burn";
}

TEST(SloTrackerTest, NoLatencyBudgetMeansAvailabilityOnly) {
  SloOptions o = TestSloOptions();
  o.latency_budget_ms = 0.0;
  SloTracker slo(o);
  slo.Record(1.0, true, true);
  const auto status = slo.Evaluate(1.0);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].name, "availability");
}

TEST(SloTrackerTest, StaleBucketsDoNotLeakAcrossRingRevolutions) {
  SloOptions o = TestSloOptions();
  o.bucket_seconds = 1.0;
  o.buckets = 400;
  SloTracker slo(o);
  // Write a bad burst, then jump the clock far past one full ring
  // revolution: the old tallies' epochs no longer match any window.
  for (int i = 0; i < 100; ++i) slo.Record(5.0, false, false);
  EXPECT_TRUE(slo.Degraded(6.0));
  const double later = 5.0 + 400.0 * 3;
  slo.Record(later, true, true);
  EXPECT_FALSE(slo.Degraded(later));
  const auto status = slo.Evaluate(later);
  EXPECT_EQ(status[0].fast_short.bad, 0u);
  EXPECT_EQ(status[0].slow_long.bad, 0u);
}

// ---------------------------------------------------------------------------
// JSONL file sink + rotation
// ---------------------------------------------------------------------------

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(JsonLogFileTest, WritesLinesAndRotatesKeepOne) {
  const std::string path = ::testing::TempDir() + "/obs_cont_log.jsonl";
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());
  {
    JsonLogger log;
    // Each line is ~60 bytes; rotate every ~4 lines.
    ASSERT_TRUE(log.OpenFile(path, 256).ok());
    for (int i = 0; i < 20; ++i) {
      log.Log(util::obs::LogLevel::kInfo, "tick").Int("i", i);
    }
    EXPECT_GE(log.rotations(), 2u);
    log.CloseFile();
  }
  const std::string current = ReadFileOrEmpty(path);
  const std::string previous = ReadFileOrEmpty(rotated);
  ASSERT_FALSE(current.empty());
  ASSERT_FALSE(previous.empty());
  EXPECT_LE(previous.size(), 256u + 128u);  // one line of slack
  // Every retained line is valid JSON with the expected event.
  int lines = 0;
  for (const std::string& blob : {current, previous}) {
    std::istringstream in(blob);
    std::string line;
    while (std::getline(in, line)) {
      auto doc = util::JsonParse(line);
      ASSERT_TRUE(doc.ok()) << line;
      EXPECT_EQ(doc->Find("event")->string_value(), "tick");
      ++lines;
    }
  }
  EXPECT_GT(lines, 4);
  std::remove(path.c_str());
  std::remove(rotated.c_str());
}

TEST(JsonLogFileTest, AppendsAndResumesByteAccounting) {
  const std::string path = ::testing::TempDir() + "/obs_cont_append.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  {
    JsonLogger log;
    ASSERT_TRUE(log.OpenFile(path).ok());  // max_bytes 0: never rotate
    log.Log(util::obs::LogLevel::kInfo, "first");
  }  // destructor closes the file
  {
    JsonLogger log;
    ASSERT_TRUE(log.OpenFile(path).ok());
    log.Log(util::obs::LogLevel::kInfo, "second");
    EXPECT_EQ(log.rotations(), 0u);
    log.CloseFile();
  }
  const std::string blob = ReadFileOrEmpty(path);
  EXPECT_NE(blob.find("\"event\":\"first\""), std::string::npos);
  EXPECT_NE(blob.find("\"event\":\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(JsonLogFileTest, ExplicitSinkStillWinsOverFile) {
  const std::string path = ::testing::TempDir() + "/obs_cont_sink.jsonl";
  std::remove(path.c_str());
  JsonLogger log;
  ASSERT_TRUE(log.OpenFile(path).ok());
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  log.Log(util::obs::LogLevel::kInfo, "routed");
  EXPECT_EQ(lines.size(), 1u);
  log.CloseFile();
  EXPECT_EQ(ReadFileOrEmpty(path), "");
  std::remove(path.c_str());
}

TEST(JsonLogFileTest, OpenFileOnBadPathFails) {
  JsonLogger log;
  EXPECT_FALSE(log.OpenFile("/nonexistent-dir-xyz/log.jsonl").ok());
  // The logger stays usable (falls back to stderr/sink).
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  log.Log(util::obs::LogLevel::kInfo, "still_alive");
  EXPECT_EQ(lines.size(), 1u);
}

}  // namespace
}  // namespace tdmatch
