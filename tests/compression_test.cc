#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/compression.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace tdmatch {
namespace graph {
namespace {

/// Bipartite-ish test graph: n0 metadata docs in corpus 0, n1 in corpus 1,
/// connected through a layer of shared data nodes plus noise chains.
Graph MakeTestGraph(size_t n0, size_t n1, size_t terms, uint64_t seed) {
  Graph g;
  util::Rng rng(seed);
  std::vector<NodeId> meta0, meta1, data;
  for (size_t i = 0; i < n0; ++i) {
    meta0.push_back(g.AddNode(util::StrFormat("__D0:%zu__", i),
                              NodeType::kMetadataDoc, 0,
                              static_cast<int32_t>(i)));
  }
  for (size_t i = 0; i < n1; ++i) {
    meta1.push_back(g.AddNode(util::StrFormat("__D1:%zu__", i),
                              NodeType::kMetadataDoc, 1,
                              static_cast<int32_t>(i)));
  }
  for (size_t i = 0; i < terms; ++i) {
    data.push_back(g.AddNode("term" + std::to_string(i)));
  }
  for (NodeId m : meta0) {
    for (int e = 0; e < 3; ++e) g.AddEdge(m, rng.Choice(data));
  }
  for (NodeId m : meta1) {
    for (int e = 0; e < 3; ++e) g.AddEdge(m, rng.Choice(data));
  }
  // Noise: data-data chains that rarely matter for metadata paths.
  for (size_t i = 0; i + 1 < terms; i += 2) {
    g.AddEdge(data[i], data[i + 1]);
  }
  return g;
}

TEST(MspTest, OutputSmallerOnSparseSampling) {
  Graph g = MakeTestGraph(20, 20, 120, 1);
  util::Rng rng(2);
  Graph cg = MspCompress(g, 0.25, &rng);
  EXPECT_LT(cg.NumNodes(), g.NumNodes());
  EXPECT_LT(cg.NumEdges(), g.NumEdges());
  EXPECT_GT(cg.NumNodes(), 0u);
}

TEST(MspTest, AllMetadataNodesPresentAndConnected) {
  Graph g = MakeTestGraph(15, 15, 80, 3);
  util::Rng rng(4);
  Graph cg = MspCompress(g, 0.1, &rng);
  for (int ci = 0; ci < 2; ++ci) {
    for (NodeId m : g.MetadataDocNodes(static_cast<CorpusTag>(ci))) {
      NodeId in_cg = cg.FindNode(g.node(m).label);
      ASSERT_NE(in_cg, kInvalidNode) << g.node(m).label;
      EXPECT_GT(cg.Degree(in_cg), 0u) << g.node(m).label;
    }
  }
}

TEST(MspTest, PreservesShortestDistanceForSampledPairs) {
  Graph g = MakeTestGraph(10, 10, 50, 5);
  util::Rng rng(6);
  Graph cg = MspCompress(g, 2.0, &rng);  // generous sampling
  // With beta=2 virtually every pair is sampled; distances in CG must not
  // exceed the original distances for connected metadata pairs.
  auto meta0 = g.MetadataDocNodes(0);
  auto meta1 = g.MetadataDocNodes(1);
  int checked = 0;
  for (NodeId a : meta0) {
    for (NodeId b : meta1) {
      int32_t d_full = Bfs::Distance(g, a, b);
      if (d_full == kUnreachable) continue;
      NodeId ca = cg.FindNode(g.node(a).label);
      NodeId cb = cg.FindNode(g.node(b).label);
      ASSERT_NE(ca, kInvalidNode);
      ASSERT_NE(cb, kInvalidNode);
      int32_t d_cg = Bfs::Distance(cg, ca, cb);
      if (d_cg != kUnreachable) {
        EXPECT_GE(d_cg, d_full);  // CG is a subgraph: can't be shorter
      }
      ++checked;
      if (checked > 30) return;
    }
  }
}

TEST(MspTest, SubgraphProperty) {
  // Every edge of the compressed graph must exist in the original.
  Graph g = MakeTestGraph(8, 8, 40, 7);
  util::Rng rng(8);
  Graph cg = MspCompress(g, 0.5, &rng);
  for (size_t i = 0; i < cg.NumNodes(); ++i) {
    NodeId orig_i = g.FindNode(cg.node(static_cast<NodeId>(i)).label);
    ASSERT_NE(orig_i, kInvalidNode);
    for (NodeId nb : cg.Neighbors(static_cast<NodeId>(i))) {
      NodeId orig_nb = g.FindNode(cg.node(nb).label);
      ASSERT_NE(orig_nb, kInvalidNode);
      EXPECT_TRUE(g.HasEdge(orig_i, orig_nb));
    }
  }
}

TEST(SspTest, ProducesConnectedMetadata) {
  Graph g = MakeTestGraph(10, 10, 60, 9);
  util::Rng rng(10);
  Graph cg = SspCompress(g, 0.3, &rng);
  EXPECT_GT(cg.NumNodes(), 0u);
  for (NodeId m : g.MetadataDocNodes()) {
    EXPECT_NE(cg.FindNode(g.node(m).label), kInvalidNode);
  }
}

TEST(SsummTest, HitsTargetRatioApproximately) {
  Graph g = MakeTestGraph(10, 10, 200, 11);
  util::Rng rng(12);
  Graph cg = SsummCompress(g, 0.3, &rng);
  EXPECT_LE(cg.NumNodes(),
            static_cast<size_t>(0.4 * static_cast<double>(g.NumNodes())));
  // Metadata nodes are never merged away.
  for (NodeId m : g.MetadataDocNodes()) {
    EXPECT_NE(cg.FindNode(g.node(m).label), kInvalidNode);
  }
}

TEST(RandomNodeSampleTest, KeepsMetadataDropsData) {
  Graph g = MakeTestGraph(10, 10, 100, 13);
  util::Rng rng(14);
  Graph cg = RandomNodeSample(g, 0.2, &rng);
  for (NodeId m : g.MetadataDocNodes()) {
    EXPECT_NE(cg.FindNode(g.node(m).label), kInvalidNode);
  }
  EXPECT_LT(cg.DataNodes().size(), g.DataNodes().size());
}

TEST(ConnectAllMetadataTest, RepairsEmptyCompressedGraph) {
  Graph g = MakeTestGraph(5, 5, 30, 15);
  Graph cg;  // start empty
  util::Rng rng(16);
  ConnectAllMetadata(g, &cg, &rng);
  for (NodeId m : g.MetadataDocNodes()) {
    EXPECT_NE(cg.FindNode(g.node(m).label), kInvalidNode);
  }
}

// Property sweep over beta: node count grows (weakly) with beta and never
// exceeds the original.
class MspBetaTest : public ::testing::TestWithParam<double> {};

TEST_P(MspBetaTest, SizeBounded) {
  Graph g = MakeTestGraph(12, 12, 90, 17);
  util::Rng rng(18);
  Graph cg = MspCompress(g, GetParam(), &rng);
  EXPECT_LE(cg.NumNodes(), g.NumNodes());
  EXPECT_LE(cg.NumEdges(), g.NumEdges());
  EXPECT_GE(cg.NumNodes(), g.MetadataDocNodes().size());
}

INSTANTIATE_TEST_SUITE_P(Betas, MspBetaTest,
                         ::testing::Values(0.05, 0.25, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace graph
}  // namespace tdmatch
