// Tests for the shared bench runner: CLI parsing (bench_cli), JSON row
// formatting (bench_reporter), and scale/seed/filter-aware scenario
// generation (bench_common).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_cli.h"
#include "bench_common.h"
#include "bench_reporter.h"

namespace tdmatch {
namespace bench {
namespace {

// ---------------------------------------------------------------- CLI ----

TEST(BenchCliTest, DefaultsWhenNoFlags) {
  auto opts = ParseBenchArgs({});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts->table());
  EXPECT_FALSE(opts->json());
  EXPECT_EQ(opts->scale, Scale::kSweep);
  EXPECT_EQ(opts->seed, 0u);
  EXPECT_TRUE(opts->out_path.empty());
  EXPECT_TRUE(opts->filter.empty());
  EXPECT_FALSE(opts->help);
}

TEST(BenchCliTest, ParsesAllFlagsTogether) {
  auto opts = ParseBenchArgs({"--json", "--scale", "smoke", "--seed", "123",
                              "--out", "rows.jsonl", "--filter", "IMDb|Coro"});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts->json());
  EXPECT_EQ(opts->scale, Scale::kSmoke);
  EXPECT_EQ(opts->seed, 123u);
  EXPECT_EQ(opts->out_path, "rows.jsonl");
  EXPECT_EQ(opts->filter, "IMDb|Coro");
}

TEST(BenchCliTest, ParsesEqualsSyntax) {
  auto opts = ParseBenchArgs({"--scale=full", "--seed=7", "--out=x.jsonl",
                              "--filter=Audit"});
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts->scale, Scale::kFull);
  EXPECT_EQ(opts->seed, 7u);
  EXPECT_EQ(opts->out_path, "x.jsonl");
  EXPECT_EQ(opts->filter, "Audit");
}

TEST(BenchCliTest, TableOverridesJson) {
  auto opts = ParseBenchArgs({"--json", "--table"});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts->table());
}

TEST(BenchCliTest, ParsesHelp) {
  auto opts = ParseBenchArgs({"-h"});
  ASSERT_TRUE(opts.ok());
  EXPECT_TRUE(opts->help);
}

TEST(BenchCliTest, RejectsUnknownFlag) {
  auto opts = ParseBenchArgs({"--bogus"});
  ASSERT_FALSE(opts.ok());
  EXPECT_TRUE(opts.status().IsInvalidArgument());
}

TEST(BenchCliTest, RejectsBadScale) {
  auto opts = ParseBenchArgs({"--scale", "gigantic"});
  ASSERT_FALSE(opts.ok());
  EXPECT_TRUE(opts.status().IsInvalidArgument());
}

TEST(BenchCliTest, RejectsMissingValue) {
  EXPECT_FALSE(ParseBenchArgs({"--scale"}).ok());
  EXPECT_FALSE(ParseBenchArgs({"--seed"}).ok());
  EXPECT_FALSE(ParseBenchArgs({"--out"}).ok());
  EXPECT_FALSE(ParseBenchArgs({"--filter"}).ok());
}

TEST(BenchCliTest, RejectsBadSeed) {
  EXPECT_FALSE(ParseBenchArgs({"--seed", "abc"}).ok());
  EXPECT_FALSE(ParseBenchArgs({"--seed", "-1"}).ok());
  EXPECT_FALSE(ParseBenchArgs({"--seed", "12x"}).ok());
  EXPECT_FALSE(ParseBenchArgs({"--seed", ""}).ok());
}

TEST(BenchCliTest, RejectsInvalidFilterRegex) {
  auto opts = ParseBenchArgs({"--filter", "["});
  ASSERT_FALSE(opts.ok());
  EXPECT_TRUE(opts.status().IsInvalidArgument());
}

TEST(BenchCliTest, RejectsValueOnBooleanFlag) {
  EXPECT_FALSE(ParseBenchArgs({"--json=1"}).ok());
}

TEST(BenchCliTest, FilterMatchesAsUnanchoredRegex) {
  BenchOptions opts;
  EXPECT_TRUE(opts.Matches("anything"));  // empty filter matches all
  opts.filter = "IMDb|Audit";
  EXPECT_TRUE(opts.Matches("IMDb-WT"));
  EXPECT_TRUE(opts.Matches("Audit"));
  EXPECT_FALSE(opts.Matches("Snopes"));
}

TEST(BenchCliDeathTest, BadInputExitsNonzero) {
  char prog[] = "bench";
  char flag[] = "--definitely-not-a-flag";
  char* argv[] = {prog, flag};
  EXPECT_EXIT(ParseArgsOrExit(2, argv), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(BenchCliDeathTest, HelpExitsZero) {
  char prog[] = "bench";
  char flag[] = "--help";
  char* argv[] = {prog, flag};
  EXPECT_EXIT(ParseArgsOrExit(2, argv), ::testing::ExitedWithCode(0), "");
}

// --------------------------------------------------------------- JSON ----

TEST(BenchJsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(BenchJsonTest, FormatsRow) {
  BenchRow row{"IMDb", "walk_length=20", "map@5", 0.5, 0.25};
  EXPECT_EQ(FormatJsonRow("fig6_walk_length", row),
            "{\"bench\":\"fig6_walk_length\",\"scenario\":\"IMDb\","
            "\"parameter\":\"walk_length=20\",\"metric\":\"map@5\","
            "\"value\":0.5,\"wall_seconds\":0.25}");
}

TEST(BenchJsonTest, NonFiniteValuesSerialiseAsNull) {
  BenchRow row{"s", "p", "m", std::numeric_limits<double>::quiet_NaN(), 0.5};
  const std::string json = FormatJsonRow("b", row);
  EXPECT_NE(json.find("\"value\":null"), std::string::npos);
  row.value = std::numeric_limits<double>::infinity();
  EXPECT_NE(FormatJsonRow("b", row).find("\"value\":null"),
            std::string::npos);
}

TEST(BenchReporterTest, WritesJsonLinesToOutFile) {
  const std::string path =
      ::testing::TempDir() + "/bench_reporter_test_rows.jsonl";
  BenchOptions opts;
  opts.out_path = path;
  {
    BenchReporter rep("unit_bench", opts);
    rep.Add("S1", "p=1", "m", 1.0, 0.1);
    rep.Add("S2", "p=2", "m", 2.0, 0.2);
    EXPECT_TRUE(rep.Finish());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"scenario\":\"S1\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchReporterTest, FinishFailsOnUnwritablePath) {
  BenchOptions opts;
  opts.out_path = "/nonexistent-dir-tdmatch/rows.jsonl";
  BenchReporter rep("unit_bench", opts);
  rep.Add("S", "p", "m", 1.0, 0.0);
  EXPECT_FALSE(rep.Finish());
}

TEST(BenchReporterTest, SuppressesHumanTextInJsonMode) {
  BenchOptions opts;
  opts.format = OutputFormat::kJson;
  BenchReporter rep("unit_bench", opts);
  ::testing::internal::CaptureStdout();
  rep.Note("human text");
  rep.Title("a title");
  rep.Print("a table row\n");
  EXPECT_EQ(::testing::internal::GetCapturedStdout(), "");
  ::testing::internal::CaptureStdout();
  rep.Add("S", "p", "m", 1.0, 0.0);
  EXPECT_TRUE(rep.Finish());
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("\"metric\":\"m\""), std::string::npos);
}

// -------------------------------------------------------------- scale ----

TEST(BenchScaleTest, SmokeTrimsSweepGrids) {
  BenchOptions smoke;
  smoke.scale = Scale::kSmoke;
  EXPECT_EQ(ScaledPoints(smoke, {5, 10, 20, 30, 40, 50}),
            (std::vector<size_t>{5, 30}));
  // Two points or fewer are kept as-is.
  EXPECT_EQ(ScaledPoints(smoke, {1, 2}), (std::vector<size_t>{1, 2}));
  BenchOptions sweep;
  EXPECT_EQ(ScaledPoints(sweep, {5, 10, 20}),
            (std::vector<size_t>{5, 10, 20}));
}

TEST(BenchScaleTest, SmokeShrinksScenariosAndOptions) {
  BenchOptions smoke;
  smoke.scale = Scale::kSmoke;
  BenchOptions full;
  full.scale = Scale::kFull;
  EXPECT_LT(ScaledImdbOptions(smoke).num_reviewed_movies,
            ScaledImdbOptions(full).num_reviewed_movies);
  EXPECT_LT(ScaledAuditOptions(smoke).num_documents,
            ScaledAuditOptions(full).num_documents);
  EXPECT_LT(ScaledSnopesOptions(smoke).num_facts,
            ScaledSnopesOptions(full).num_facts);
  EXPECT_LT(DataTaskOptions(smoke).walks.num_walks,
            DataTaskOptions(full).walks.num_walks);
}

TEST(BenchScaleTest, SeedFlagOverridesPipelineSeeds) {
  BenchOptions opts;
  opts.seed = 99;
  core::TDmatchOptions o = DataTaskOptions(opts);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_EQ(o.walks.seed, 99u);
  EXPECT_EQ(o.w2v.seed, 99u);
  // Scenario seeds are offset per generator so scenarios stay distinct.
  EXPECT_NE(ScaledImdbOptions(opts).seed, ScaledCoronaOptions(opts).seed);
}

// ---------------------------------------------------- sweep scenarios ----

TEST(BenchScenarioTest, SmokeGenerationIsDeterministicUnderFixedSeed) {
  BenchOptions opts;
  opts.scale = Scale::kSmoke;
  opts.seed = 123;
  auto a = MakeSweepScenarios(opts);
  auto b = MakeSweepScenarios(opts);
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].data.scenario.first.NumDocs(),
              b[i].data.scenario.first.NumDocs());
    ASSERT_EQ(a[i].data.scenario.second.NumDocs(),
              b[i].data.scenario.second.NumDocs());
    ASSERT_GT(a[i].data.scenario.first.NumDocs(), 0u);
    EXPECT_EQ(a[i].data.scenario.first.DocText(0),
              b[i].data.scenario.first.DocText(0));
    EXPECT_EQ(a[i].data.scenario.gold, b[i].data.scenario.gold);
  }
}

TEST(BenchScenarioTest, FilterSelectsScenarioSubset) {
  BenchOptions opts;
  opts.scale = Scale::kSmoke;
  opts.filter = "IMDb|Audit";
  auto scenarios = MakeSweepScenarios(opts);
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].name, "IMDb");
  EXPECT_EQ(scenarios[1].name, "Audit");
}

TEST(BenchScenarioTest, SmokeIsSmallerThanSweep) {
  BenchOptions smoke;
  smoke.scale = Scale::kSmoke;
  smoke.filter = "IMDb";
  BenchOptions sweep;
  sweep.filter = "IMDb";
  auto small = MakeSweepScenarios(smoke);
  auto medium = MakeSweepScenarios(sweep);
  ASSERT_EQ(small.size(), 1u);
  ASSERT_EQ(medium.size(), 1u);
  EXPECT_LT(small[0].data.scenario.second.NumDocs(),
            medium[0].data.scenario.second.NumDocs());
}

}  // namespace
}  // namespace bench
}  // namespace tdmatch
