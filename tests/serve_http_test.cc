// Tests for the HTTP serving front end and its substrate: the shared JSON
// util, the mmap zero-copy SnapshotView, the HTTP/1.1 parser/server/client,
// the MatchService endpoints, and the RCU hot-reload scheme.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http/client.h"
#include "serve/http/http.h"
#include "serve/http/server.h"
#include "serve/http/service.h"
#include "serve/mmap_snapshot.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/crc32.h"
#include "util/json.h"
#include "util/obs/jsonlog.h"
#include "util/obs/profiler.h"
#include "util/string_util.h"

// The CPU profiler's SIGPROF handler is incompatible with sanitizer
// signal interception; its endpoint test is skipped under TSan/ASan.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define TDMATCH_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TDMATCH_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef TDMATCH_TEST_UNDER_SANITIZER
#define TDMATCH_TEST_UNDER_SANITIZER 0
#endif

namespace tdmatch {
namespace {

using serve::http::HttpClient;
using serve::http::HttpParser;
using serve::http::HttpRequest;
using serve::http::HttpResponse;
using serve::http::HttpServer;
using serve::http::HttpServerOptions;
using serve::http::MatchService;
using serve::http::ServiceOptions;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// util/json
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesNestedValues) {
  auto v = util::JsonParse(
      " {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"x\\ny\"} ");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const util::JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].number_value(), 1.0);
  EXPECT_EQ(a->items()[0].string_value(), "1");  // source spelling kept
  EXPECT_EQ(a->items()[2].number_value(), -300.0);
  const util::JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->Find("c")->bool_value());
  EXPECT_TRUE(b->Find("d")->is_null());
  EXPECT_EQ(v->Find("s")->string_value(), "x\ny");
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(util::JsonParse("{\"a\": 1,}").ok());
  EXPECT_FALSE(util::JsonParse("{\"a\" 1}").ok());
  EXPECT_FALSE(util::JsonParse("[1, 2").ok());
  EXPECT_FALSE(util::JsonParse("{} trailing").ok());
  EXPECT_FALSE(util::JsonParse("\"bad \\ud800 surrogate\"").ok());
  EXPECT_FALSE(util::JsonParse("nope").ok());
  EXPECT_FALSE(util::JsonParse("").ok());
  // Nesting depth is bounded; hostile input cannot blow the stack.
  std::string deep(200, '[');
  EXPECT_FALSE(util::JsonParse(deep).ok());
}

TEST(JsonTest, FlatRecordContractIsPreserved) {
  util::JsonFlatRecord record;
  ASSERT_TRUE(util::JsonParseFlatRecord(
                  "{\"t\": \"x\", \"n\": 1994, \"b\": true, \"z\": null}",
                  &record)
                  .ok());
  ASSERT_EQ(record.size(), 4u);
  EXPECT_EQ(record[1].first, "n");
  EXPECT_EQ(record[1].second, "1994");  // numbers keep their spelling
  EXPECT_EQ(record[2].second, "true");
  EXPECT_EQ(record[3].second, "");  // null → empty, like CSV

  record.clear();
  util::Status st =
      util::JsonParseFlatRecord("{\"a\": {\"nested\": 1}}", &record);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("records must be flat"), std::string::npos);
}

TEST(JsonTest, WriterRoundTripsDoublesBitExact) {
  util::JsonWriter w;
  w.BeginObject()
      .Key("third").Value(1.0 / 3.0)
      .Key("neg").Value(-0.47423878312110901)
      .Key("nan").Value(std::nan(""))
      .Key("list").BeginArray().Value(1).Value("two\n\"quoted\"")
      .Value(false).Null().EndArray()
      .EndObject();
  auto v = util::JsonParse(w.str());
  ASSERT_TRUE(v.ok()) << w.str();
  // Shortest round-trip spelling → strtod must reproduce the exact bits.
  EXPECT_EQ(v->Find("third")->number_value(), 1.0 / 3.0);
  EXPECT_EQ(v->Find("neg")->number_value(), -0.47423878312110901);
  EXPECT_TRUE(v->Find("nan")->is_null());  // JSON has no NaN
  const auto& list = v->Find("list")->items();
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[1].string_value(), "two\n\"quoted\"");
}

// ---------------------------------------------------------------------------
// serve::SnapshotView (mmap) vs SnapshotIo (copy)
// ---------------------------------------------------------------------------

embed::EmbeddingTable AwkwardTable() {
  embed::EmbeddingTable t(3);
  t.Put("plain", {1.0f, 2.0f, 3.0f});
  t.Put("label with spaces", {-0.0f, 1e-42f, 0.1f});
  t.Put("thirds", {1.0f / 3.0f, -2.0f / 3.0f, 1e20f});
  return t;
}

serve::SnapshotMeta DemoMeta() {
  serve::SnapshotMeta meta;
  meta.scenario = "unit-test";
  meta.Set("seed", "4242");
  meta.Set("candidate_prefix", "__D1:");
  return meta;
}

TEST(SnapshotViewTest, MatchesCopyingLoaderBitExact) {
  const std::string path = TempPath("view_roundtrip.tds");
  const embed::EmbeddingTable table = AwkwardTable();
  ASSERT_TRUE(serve::SnapshotIo::Write(table, DemoMeta(), path).ok());

  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto view = serve::SnapshotView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  // Identical metadata (no internal pad pair leaks through either path).
  EXPECT_EQ((*view)->meta().scenario, snap->meta.scenario);
  EXPECT_EQ((*view)->meta().extra, snap->meta.extra);
  EXPECT_EQ((*view)->meta().extra, DemoMeta().extra);
  EXPECT_EQ((*view)->dim(), snap->table.dim());
  ASSERT_EQ((*view)->size(), snap->table.size());

  // Labels in written order, payload bit-identical, both through CopyRow
  // and the in-place aligned pointer.
  EXPECT_TRUE((*view)->aligned());
  const std::vector<std::string> labels = snap->table.Labels();
  for (size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ((*view)->label(i), labels[i]);
    ASSERT_EQ((*view)->FindRow(labels[i]), static_cast<int64_t>(i));
    const std::vector<float>* want = snap->table.Get(labels[i]);
    std::vector<float> got(3);
    (*view)->CopyRow(i, got.data());
    EXPECT_EQ(std::memcmp(got.data(), want->data(), 3 * sizeof(float)), 0)
        << labels[i];
    EXPECT_EQ(std::memcmp((*view)->row(i), want->data(), 3 * sizeof(float)),
              0);
  }
  EXPECT_EQ((*view)->FindRow("missing"), -1);
  std::remove(path.c_str());
}

TEST(SnapshotViewTest, PayloadIsAlignedForEveryStringResidue) {
  // The writer pads the pre-payload bytes to a multiple of 4 whatever the
  // accumulated label/meta string lengths are; sweep the residues.
  for (int residue = 0; residue < 8; ++residue) {
    const std::string path = TempPath("view_align.tds");
    embed::EmbeddingTable t(2);
    t.Put(std::string(static_cast<size_t>(residue + 1), 'x'), {1.0f, 2.0f});
    serve::SnapshotMeta meta;
    meta.scenario = std::string(static_cast<size_t>(residue), 's');
    ASSERT_TRUE(serve::SnapshotIo::Write(t, meta, path).ok());
    auto view = serve::SnapshotView::Open(path);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_TRUE((*view)->aligned()) << "residue " << residue;
    EXPECT_EQ((*view)->row(0)[1], 2.0f);
    std::remove(path.c_str());
  }
}

TEST(SnapshotViewTest, RejectionMatrixMatchesCopyingLoader) {
  const std::string path = TempPath("view_reject.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), path).ok());
  const std::string good = ReadFileBytes(path);

  // Truncation at every interesting point fails in both loaders.
  for (size_t keep : {size_t{0}, size_t{5}, size_t{14}, good.size() / 2,
                      good.size() - 1}) {
    WriteFileBytes(path, good.substr(0, keep));
    EXPECT_FALSE(serve::SnapshotIo::Read(path).ok()) << "copy kept " << keep;
    EXPECT_FALSE(serve::SnapshotView::Open(path).ok()) << "mmap kept "
                                                       << keep;
  }

  // One flipped payload byte: CRC mismatch in both.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x40);
  WriteFileBytes(path, corrupt);
  auto v1 = serve::SnapshotView::Open(path);
  ASSERT_FALSE(v1.ok());
  EXPECT_NE(v1.status().message().find("CRC"), std::string::npos);
  EXPECT_FALSE(serve::SnapshotIo::Read(path).ok());

  // Header damage: magic, version, endianness.
  std::string bad = good;
  bad[0] = 'X';
  WriteFileBytes(path, bad);
  EXPECT_NE(serve::SnapshotView::Open(path).status().message().find("magic"),
            std::string::npos);
  bad = good;
  bad[4] = 99;
  WriteFileBytes(path, bad);
  EXPECT_NE(
      serve::SnapshotView::Open(path).status().message().find("version"),
      std::string::npos);
  bad = good;
  std::swap(bad[8], bad[11]);
  WriteFileBytes(path, bad);
  EXPECT_NE(
      serve::SnapshotView::Open(path).status().message().find("endian"),
      std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotViewTest, RejectsOverflowingGeometryInBothLoaders) {
  // A count whose payload byte size overflows 64-bit (and a fortiori any
  // 32-bit) arithmetic, behind a valid CRC: both loaders must call out the
  // overflow instead of computing a wrapped size.
  const std::string path = TempPath("view_overflow.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), path).ok());
  std::string bytes = ReadFileBytes(path);
  const uint64_t absurd = uint64_t{1} << 62;  // * 12 bytes/row overflows
  std::memcpy(&bytes[16], &absurd, sizeof(absurd));
  const uint32_t crc = util::Crc32(bytes.data() + 12, bytes.size() - 16);
  std::memcpy(&bytes[bytes.size() - 4], &crc, sizeof(crc));
  WriteFileBytes(path, bytes);

  for (const util::Status& st :
       {serve::SnapshotIo::Read(path).status(),
        serve::SnapshotView::Open(path).status()}) {
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_NE(st.message().find("overflows"), std::string::npos)
        << st.ToString();
  }

  // A merely-absurd count (fits 64-bit math, not the file) still fails
  // with the fit check in both.
  const uint64_t large = uint64_t{1} << 40;
  std::memcpy(&bytes[16], &large, sizeof(large));
  const uint32_t crc2 = util::Crc32(bytes.data() + 12, bytes.size() - 16);
  std::memcpy(&bytes[bytes.size() - 4], &crc2, sizeof(crc2));
  WriteFileBytes(path, bytes);
  EXPECT_NE(serve::SnapshotIo::Read(path).status().message().find(
                "cannot fit"),
            std::string::npos);
  EXPECT_NE(serve::SnapshotView::Open(path).status().message().find(
                "cannot fit"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotViewTest, RewritingTheFileNeverTearsALiveMapping) {
  // SnapshotIo::Write replaces via temp-file + rename, so regenerating a
  // snapshot in place (the documented reload workflow) leaves a serving
  // process's mmap on the old inode — old bytes stay intact, a fresh
  // Open sees the new ones.
  const std::string path = TempPath("view_rewrite.tds");
  embed::EmbeddingTable old_table(2);
  old_table.Put("c0", {1.0f, 2.0f});
  ASSERT_TRUE(
      serve::SnapshotIo::Write(old_table, serve::SnapshotMeta{}, path).ok());
  auto view = serve::SnapshotView::Open(path);
  ASSERT_TRUE(view.ok());

  embed::EmbeddingTable new_table(2);
  new_table.Put("c0", {9.0f, 8.0f});
  ASSERT_TRUE(
      serve::SnapshotIo::Write(new_table, serve::SnapshotMeta{}, path).ok());

  EXPECT_EQ((*view)->row(0)[0], 1.0f);  // the live mapping is untouched
  auto fresh = serve::SnapshotView::Open(path);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->row(0)[0], 9.0f);
  std::remove(path.c_str());
}

/// Snapshot with 2-d geometry: candidates c<i> fan around the circle,
/// queries q<i> on top of candidate (i + shift) mod n — shift lets two
/// snapshot files disagree about every query's nearest neighbor.
serve::Snapshot GeometricSnapshot(size_t n, size_t shift = 0) {
  serve::Snapshot snap;
  snap.meta.scenario = shift == 0 ? "geometry" : "geometry-shifted";
  snap.meta.Set("candidate_prefix", "c");
  snap.meta.Set("query_prefix", "q");
  snap.table = embed::EmbeddingTable(2);
  for (size_t i = 0; i < n; ++i) {
    const float angle =
        static_cast<float>(i) / static_cast<float>(n) * 3.1f;
    snap.table.Put("c" + std::to_string(i),
                   {std::cos(angle), std::sin(angle)});
  }
  for (size_t i = 0; i < n; ++i) {
    const float angle = static_cast<float>((i + shift) % n) /
                        static_cast<float>(n) * 3.1f;
    snap.table.Put("q" + std::to_string(i),
                   {std::cos(angle), std::sin(angle)});
  }
  return snap;
}

std::string WriteGeometricSnapshot(const std::string& name, size_t n,
                                   size_t shift) {
  const std::string path = TempPath(name);
  serve::Snapshot snap = GeometricSnapshot(n, shift);
  EXPECT_TRUE(
      serve::SnapshotIo::Write(snap.table, snap.meta, path).ok());
  return path;
}

TEST(SnapshotViewTest, EngineFromViewMatchesCopyingEngineBitExact) {
  const std::string path = WriteGeometricSnapshot("view_engine.tds", 24, 0);

  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap.ok());
  serve::QueryEngineOptions opts;
  opts.ivf.seed = 4242;
  auto copy_engine =
      serve::QueryEngine::BuildForPrefix(std::move(*snap), "c", opts);
  ASSERT_TRUE(copy_engine.ok()) << copy_engine.status().ToString();

  auto view = serve::SnapshotView::Open(path);
  ASSERT_TRUE(view.ok());
  auto view_engine = serve::QueryEngine::BuildFromView(*view, "c", opts);
  ASSERT_TRUE(view_engine.ok()) << view_engine.status().ToString();
  EXPECT_EQ(view_engine->num_candidates(), copy_engine->num_candidates());

  for (size_t i = 0; i < 24; ++i) {
    const std::string q = "q" + std::to_string(i);
    for (auto mode : {serve::SearchMode::kApprox, serve::SearchMode::kExact}) {
      auto a = copy_engine->Query(q, 5, mode);
      auto b = view_engine->Query(q, 5, mode);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(a->size(), b->size());
      for (size_t r = 0; r < a->size(); ++r) {
        EXPECT_EQ((*a)[r].label, (*b)[r].label);
        EXPECT_EQ((*a)[r].score, (*b)[r].score);  // bit-identical
      }
    }
    auto fa = copy_engine->QueryFiltered(q, {"c3", "c17", "zz"}, 4);
    auto fb = view_engine->QueryFiltered(q, {"c3", "c17", "zz"}, 4);
    ASSERT_TRUE(fa.ok() && fb.ok());
    ASSERT_EQ(fa->size(), fb->size());
    for (size_t r = 0; r < fa->size(); ++r) {
      EXPECT_EQ((*fa)[r].label, (*fb)[r].label);
      EXPECT_EQ((*fa)[r].score, (*fb)[r].score);
    }
  }
  EXPECT_TRUE(view_engine->Query("nope").status().IsNotFound());

  // Several engines can share one mapping.
  auto second = serve::QueryEngine::BuildFromView(*view, "q", opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->num_candidates(), 24u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// HttpParser
// ---------------------------------------------------------------------------

TEST(HttpParserTest, ParsesRequestIncrementally) {
  HttpParser p(HttpParser::Mode::kRequest);
  const std::string wire =
      "POST /v1/query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n"
      "X-Custom: v\r\n\r\nbodyLEFTOVER";
  // Feed byte by byte: framing must not depend on chunk boundaries.
  for (size_t i = 0; i + 8 < wire.size(); ++i) {
    ASSERT_TRUE(p.Feed(wire.substr(i, 1)).ok()) << i;
  }
  ASSERT_TRUE(p.Feed(wire.substr(wire.size() - 8)).ok());
  ASSERT_TRUE(p.Done());
  EXPECT_EQ(p.request().method, "POST");
  EXPECT_EQ(p.request().path, "/v1/query");
  EXPECT_EQ(p.request().query, "x=1");
  EXPECT_EQ(p.request().body, "body");
  EXPECT_EQ(p.request().Header("x-custom"), "v");
  EXPECT_TRUE(p.request().KeepAlive());
  EXPECT_EQ(p.leftover(), "LEFTOVER");
}

TEST(HttpParserTest, RejectsMalformedStartLines) {
  struct Case {
    const char* wire;
    int status;
  };
  const Case cases[] = {
      {"GARBAGE\r\n\r\n", 400},
      {"GET /x HTTP/1.1 extra\r\n\r\n", 400},
      {"G<>T / HTTP/1.1\r\n\r\n", 400},
      {"GET noslash HTTP/1.1\r\n\r\n", 400},
      {"GET / HTTP/2.0\r\n\r\n", 505},
      {"GET / HTTP/1.1\r\nno colon here\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nbad name: v\r\n\r\n", 400},
      {"GET / HTTP/1.1\r\nA: 1\r\n  folded\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 400},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      // Conflicting repeated Content-Length is a smuggling vector.
      {"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n",
       400},
  };
  for (const Case& c : cases) {
    HttpParser p(HttpParser::Mode::kRequest);
    EXPECT_FALSE(p.Feed(c.wire).ok()) << c.wire;
    EXPECT_EQ(p.http_status(), c.status) << c.wire;
  }
}

TEST(HttpParserTest, EnforcesSizeLimits) {
  serve::http::HttpLimits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 64;

  HttpParser headers(HttpParser::Mode::kRequest, limits);
  const std::string big_header =
      "GET / HTTP/1.1\r\nX-Big: " + std::string(300, 'a');
  EXPECT_FALSE(headers.Feed(big_header).ok());
  EXPECT_EQ(headers.http_status(), 431);

  HttpParser body(HttpParser::Mode::kRequest, limits);
  EXPECT_FALSE(
      body.Feed("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n").ok());
  EXPECT_EQ(body.http_status(), 413);

  HttpParser overflow(HttpParser::Mode::kRequest, limits);
  EXPECT_FALSE(overflow
                   .Feed("POST / HTTP/1.1\r\nContent-Length: "
                         "99999999999999999999999999\r\n\r\n")
                   .ok());
  EXPECT_EQ(overflow.http_status(), 413);
}

TEST(HttpParserTest, AcceptsIdenticalRepeatedContentLength) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.Feed("POST / HTTP/1.1\r\nContent-Length: 2\r\n"
                     "Content-Length: 2\r\n\r\nok")
                  .ok());
  ASSERT_TRUE(p.Done());
  EXPECT_EQ(p.request().body, "ok");
}

TEST(HttpParserTest, ParsesPipelinedRequestsAcrossReset) {
  HttpParser p(HttpParser::Mode::kRequest);
  ASSERT_TRUE(p.Feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n").ok());
  ASSERT_TRUE(p.Done());
  EXPECT_EQ(p.request().path, "/a");
  p.Reset();
  ASSERT_TRUE(p.Feed("").ok());
  ASSERT_TRUE(p.Done());
  EXPECT_EQ(p.request().path, "/b");
}

TEST(HttpParserTest, ParsesResponses) {
  HttpParser p(HttpParser::Mode::kResponse);
  ASSERT_TRUE(p.Feed("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n"
                     "Content-Type: application/json\r\n\r\n{}")
                  .ok());
  ASSERT_TRUE(p.Done());
  EXPECT_EQ(p.response_status(), 404);
  EXPECT_EQ(p.request().body, "{}");
}

// ---------------------------------------------------------------------------
// HttpServer + HttpClient
// ---------------------------------------------------------------------------

/// Opens a raw TCP connection, sends `wire`, reads until the peer closes.
std::string RawRoundTrip(uint16_t port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(HttpServerTest, RoutesAndKeepsConnectionsAlive) {
  HttpServerOptions opts;
  opts.threads = 2;
  HttpServer server(opts);
  std::atomic<int> hits{0};
  server.Handle("GET", "/ping", [&hits](const HttpRequest&) {
    ++hits;
    return HttpResponse::Json(200, "{\"pong\":true}");
  });
  server.Handle("POST", "/echo", [](const HttpRequest& r) {
    return HttpResponse::Json(200, r.body);
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Several requests over one keep-alive connection.
  for (int i = 0; i < 3; ++i) {
    auto r = client->Get("/ping");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status, 200);
    EXPECT_EQ(r->body, "{\"pong\":true}");
  }
  EXPECT_EQ(hits.load(), 3);

  auto echo = client->Post("/echo", "{\"x\":1}");
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo->body, "{\"x\":1}");

  auto missing = client->Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto wrong_method = client->Get("/echo");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  EXPECT_GE(server.requests_served(), 6u);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, MalformedInputGetsErrorResponsesNeverACrash) {
  HttpServer server;
  server.Handle("GET", "/", [](const HttpRequest&) {
    return HttpResponse::Json(200, "{}");
  });
  ASSERT_TRUE(server.Start().ok());

  EXPECT_NE(RawRoundTrip(server.port(), "GARBAGE\r\n\r\n").find("400"),
            std::string::npos);
  EXPECT_NE(RawRoundTrip(server.port(),
                         "GET / HTTP/9.9\r\n\r\n")
                .find("505"),
            std::string::npos);
  EXPECT_NE(RawRoundTrip(server.port(),
                         "POST / HTTP/1.1\r\nContent-Length: "
                         "999999999999\r\n\r\n")
                .find("413"),
            std::string::npos);
  const std::string huge_header =
      "GET / HTTP/1.1\r\nX: " + std::string(64 * 1024, 'a') + "\r\n\r\n";
  EXPECT_NE(RawRoundTrip(server.port(), huge_header).find("431"),
            std::string::npos);
  // The server must still answer well-formed requests afterwards.
  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto r = client->Get("/");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 200);
  server.Stop();
}

TEST(HttpServerTest, ClientSurvivesServerSideIdleClose) {
  HttpServerOptions opts;
  opts.idle_timeout_ms = 150;
  HttpServer server(opts);
  server.Handle("GET", "/", [](const HttpRequest&) {
    return HttpResponse::Json(200, "{}");
  });
  ASSERT_TRUE(server.Start().ok());

  auto client = HttpClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Get("/").ok());
  // Let the server reap the idle connection, then reuse the client: the
  // single-retry reconnect must hide the stale socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  auto r = client->Get("/");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status, 200);
  server.Stop();
}

// ---------------------------------------------------------------------------
// MatchService over HTTP
// ---------------------------------------------------------------------------

struct ServiceFixture {
  explicit ServiceFixture(const std::string& snapshot_path,
                          ServiceOptions sopts = {},
                          HttpServerOptions hopts = {})
      : service(sopts), server(hopts) {
    util::Status st = service.LoadInitial(snapshot_path);
    EXPECT_TRUE(st.ok()) << st.ToString();
    service.Register(&server);
    st = server.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~ServiceFixture() { server.Stop(); }

  MatchService service;
  HttpServer server;
};

/// (label, score) rows parsed from a response's "matches" array.
using Matches = std::vector<std::pair<std::string, double>>;

Matches ParseMatches(const util::JsonValue& container) {
  Matches out;
  const util::JsonValue* matches = container.Find("matches");
  EXPECT_NE(matches, nullptr);
  if (matches == nullptr) return out;
  for (const auto& m : matches->items()) {
    out.emplace_back(m.Find("label")->string_value(),
                     m.Find("score")->number_value());
  }
  return out;
}

Matches ToMatches(const std::vector<serve::ScoredMatch>& scored) {
  Matches out;
  for (const auto& m : scored) out.emplace_back(m.label, m.score);
  return out;
}

TEST(MatchServiceTest, HttpResponsesAreBitIdenticalToInProcessResults) {
  const std::string path = WriteGeometricSnapshot("svc_bits.tds", 16, 0);
  ServiceFixture fx(path);

  // The in-process reference: the same mmap path the service uses.
  auto view = serve::SnapshotView::Open(path);
  ASSERT_TRUE(view.ok());
  auto engine = serve::QueryEngine::BuildFromView(*view, "c");
  ASSERT_TRUE(engine.ok());

  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());
  for (size_t i = 0; i < 16; ++i) {
    const std::string label = "q" + std::to_string(i);
    auto r = client->Post("/v1/query",
                          "{\"label\": \"" + label + "\", \"k\": 5}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200) << r->body;
    auto doc = util::JsonParse(r->body);
    ASSERT_TRUE(doc.ok()) << r->body;
    EXPECT_EQ(doc->Find("snapshot_version")->number_value(), 1.0);

    auto want = engine->Query(label, 5);
    ASSERT_TRUE(want.ok());
    // Round-trippable spelling over the wire → strtod back: exact
    // double equality.
    EXPECT_EQ(ParseMatches(*doc), ToMatches(*want)) << label;
  }

  // Filtered (blocking-aware) and raw-vector queries, same contract.
  auto filtered = client->Post(
      "/v1/query", "{\"label\": \"q2\", \"allowed\": [\"c9\", \"c3\"]}");
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->status, 200) << filtered->body;
  auto fdoc = util::JsonParse(filtered->body);
  ASSERT_TRUE(fdoc.ok());
  auto fwant = engine->QueryFiltered("q2", {"c9", "c3"}, 0);
  ASSERT_TRUE(fwant.ok());
  EXPECT_EQ(ParseMatches(*fdoc), ToMatches(*fwant));

  auto vec = client->Post("/v1/query",
                          "{\"vector\": [0.5, 0.25], \"k\": 3, "
                          "\"mode\": \"exact\"}");
  ASSERT_TRUE(vec.ok());
  ASSERT_EQ(vec->status, 200) << vec->body;
  auto vdoc = util::JsonParse(vec->body);
  ASSERT_TRUE(vdoc.ok());
  auto vwant =
      engine->QueryVector({0.5f, 0.25f}, 3, serve::SearchMode::kExact);
  ASSERT_TRUE(vwant.ok());
  EXPECT_EQ(ParseMatches(*vdoc), ToMatches(*vwant));

  // Batch matches per-query results slot by slot.
  auto batch = client->Post("/v1/query",
                            "{\"labels\": [\"q0\", \"missing\", \"q5\"]}");
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->status, 200) << batch->body;
  auto bdoc = util::JsonParse(batch->body);
  ASSERT_TRUE(bdoc.ok());
  const auto& results = bdoc->Find("results")->items();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(ParseMatches(results[0]), ToMatches(*engine->Query("q0")));
  EXPECT_NE(results[1].Find("error"), nullptr);
  EXPECT_EQ(ParseMatches(results[2]), ToMatches(*engine->Query("q5")));
  std::remove(path.c_str());
}

TEST(MatchServiceTest, RejectsBadRequests) {
  const std::string path = WriteGeometricSnapshot("svc_bad.tds", 6, 0);
  ServiceOptions sopts;
  sopts.max_batch = 4;
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  const std::pair<const char*, int> cases[] = {
      {"", 400},
      {"not json", 400},
      {"[1,2]", 400},
      {"{}", 400},                                     // no selector
      {"{\"label\": \"q0\", \"labels\": []}", 400},    // two selectors
      {"{\"label\": \"q0\", \"k\": -1}", 400},
      {"{\"label\": \"q0\", \"k\": 2.5}", 400},
      {"{\"label\": \"q0\", \"mode\": \"warp\"}", 400},
      {"{\"labels\": [\"a\",\"b\",\"c\",\"d\",\"e\"]}", 400},  // > max_batch
      {"{\"labels\": [1]}", 400},
      {"{\"labels\": \"q0\"}", 400},
      {"{\"vector\": []}", 400},
      {"{\"vector\": [\"x\"]}", 400},
      {"{\"vector\": [1.0]}", 400},                    // wrong dim
      {"{\"labels\": [\"q0\"], \"allowed\": [\"c1\"]}", 400},
      {"{\"label\": \"unknown\"}", 404},
  };
  for (const auto& c : cases) {
    auto r = client->Post("/v1/query", c.first);
    ASSERT_TRUE(r.ok()) << c.first;
    EXPECT_EQ(r->status, c.second) << c.first << " -> " << r->body;
    auto doc = util::JsonParse(r->body);
    ASSERT_TRUE(doc.ok());
    EXPECT_NE(doc->Find("error"), nullptr) << c.first;
  }
  std::remove(path.c_str());
}

TEST(MatchServiceTest, HealthStatsAndReloadEndpoints) {
  const std::string path_a = WriteGeometricSnapshot("svc_a.tds", 12, 0);
  const std::string path_b = WriteGeometricSnapshot("svc_b.tds", 12, 5);
  ServiceFixture fx(path_a);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  auto health = client->Get("/v1/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  auto hdoc = util::JsonParse(health->body);
  ASSERT_TRUE(hdoc.ok());
  EXPECT_EQ(hdoc->Find("status")->string_value(), "ok");
  EXPECT_EQ(hdoc->Find("snapshot_version")->number_value(), 1.0);

  ASSERT_EQ(client->Post("/v1/query", "{\"label\": \"q0\"}")->status, 200);

  // Swap in B: version increments, answers change to B's geometry (q0's
  // nearest candidate is c5 there), and a reload back restores A.
  auto reload = client->Post("/v1/reload",
                             "{\"snapshot\": \"" + path_b + "\"}");
  ASSERT_TRUE(reload.ok());
  ASSERT_EQ(reload->status, 200) << reload->body;
  auto rdoc = util::JsonParse(reload->body);
  ASSERT_TRUE(rdoc.ok());
  EXPECT_EQ(rdoc->Find("snapshot_version")->number_value(), 2.0);
  EXPECT_EQ(rdoc->Find("previous_version")->number_value(), 1.0);
  EXPECT_EQ(rdoc->Find("scenario")->string_value(), "geometry-shifted");

  auto q = client->Post("/v1/query", "{\"label\": \"q0\", \"k\": 1}");
  ASSERT_TRUE(q.ok());
  auto qdoc = util::JsonParse(q->body);
  ASSERT_TRUE(qdoc.ok());
  EXPECT_EQ(qdoc->Find("snapshot_version")->number_value(), 2.0);
  ASSERT_EQ(ParseMatches(*qdoc).size(), 1u);
  EXPECT_EQ(ParseMatches(*qdoc)[0].first, "c5");

  // A failed reload keeps the current snapshot serving.
  auto bad = client->Post("/v1/reload",
                          "{\"snapshot\": \"/no/such/file.tds\"}");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 500) << bad->body;
  auto still = client->Post("/v1/query", "{\"label\": \"q0\", \"k\": 1}");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(util::JsonParse(still->body)
                ->Find("snapshot_version")
                ->number_value(),
            2.0);

  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto sdoc = util::JsonParse(stats->body);
  ASSERT_TRUE(sdoc.ok()) << stats->body;
  EXPECT_EQ(sdoc->Find("snapshot_version")->number_value(), 2.0);
  EXPECT_EQ(sdoc->Find("reloads")->number_value(), 1.0);
  EXPECT_GE(sdoc->Find("queries")->number_value(), 3.0);
  EXPECT_GE(sdoc->Find("errors")->number_value(), 1.0);
  EXPECT_EQ(sdoc->Find("snapshot_loader")->string_value(), "mmap");
  EXPECT_NE(sdoc->Find("latency_ms"), nullptr);
  EXPECT_GE(sdoc->Find("latency_ms")->Find("p99")->number_value(),
            sdoc->Find("latency_ms")->Find("p50")->number_value());

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(MatchServiceTest, MetricsExpositionTracingAndRequestIds) {
  // Snapshot carrying offline phase timers in its meta, the way
  // build-snapshot records them.
  serve::Snapshot snap = GeometricSnapshot(64);
  snap.meta.Set("phase_train_seconds", "1.5");
  snap.meta.Set("phase_walks_seconds", "0.25");
  const std::string path = TempPath("svc_obs.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(snap.table, snap.meta, path).ok());

  ServiceOptions sopts;
  sopts.trace_sample = 1.0;  // trace every request
  util::obs::JsonLogger log;
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  sopts.logger = &log;
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  // A client-supplied request id echoes back on the response.
  auto echoed = client->Request("POST", "/v1/query", "{\"label\": \"q0\"}",
                                "application/json",
                                {{"X-Request-Id", "req-42"}});
  ASSERT_TRUE(echoed.ok());
  ASSERT_EQ(echoed->status, 200) << echoed->body;
  EXPECT_EQ(echoed->Header("x-request-id"), "req-42");

  // Without one the service generates a "t-" + 16-hex id.
  auto generated = client->Post("/v1/query", "{\"label\": \"q1\"}");
  ASSERT_TRUE(generated.ok());
  const std::string id = generated->Header("x-request-id");
  ASSERT_EQ(id.size(), 18u) << id;
  EXPECT_EQ(id.substr(0, 2), "t-");

  // Heavy exact batches: enough engine work that the recorded spans must
  // explain the end-to-end time.
  std::string body = "{\"mode\": \"exact\", \"k\": 5, \"labels\": [";
  for (int i = 0; i < 64; ++i) {
    body += i > 0 ? ", " : "";
    body += "\"q" + std::to_string(i) + "\"";
  }
  body += "]}";
  constexpr int kBatches = 8;
  for (int i = 0; i < kBatches; ++i) {
    auto r = client->Post("/v1/query", body);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, 200) << r->body;
  }

  // Every JSONL line parses back through util/json; the top-level span
  // sum never exceeds the end-to-end time (top-level spans are disjoint)
  // and, on the heavy batches, covers it to within 10% on the best sample.
  size_t trace_count = 0;
  double best_coverage = 0.0;
  for (const auto& line : lines) {
    auto doc = util::JsonParse(line);
    ASSERT_TRUE(doc.ok()) << line;
    if (doc->Find("event")->string_value() != "trace") continue;
    ++trace_count;
    EXPECT_EQ(doc->Find("endpoint")->string_value(), "/v1/query");
    EXPECT_EQ(doc->Find("status")->number_value(), 200.0);
    ASSERT_NE(doc->Find("trace_id"), nullptr);
    const double total = doc->Find("total_ms")->number_value();
    ASSERT_GT(total, 0.0) << line;
    const util::JsonValue* spans = doc->Find("spans");
    ASSERT_NE(spans, nullptr) << line;
    double span_sum = 0.0;
    for (const auto& s : spans->items()) {
      if (s.Find("depth")->number_value() == 0.0) {
        span_sum += s.Find("ms")->number_value();
      }
    }
    EXPECT_LE(span_sum, total * 1.000001) << line;
    best_coverage = std::max(best_coverage, span_sum / total);
  }
  EXPECT_EQ(trace_count, size_t{2 + kBatches});
  EXPECT_GE(best_coverage, 0.9);

  // The exposition endpoint: valid text format covering the owned
  // instruments, the component callbacks, build identity, and the
  // republished offline phase timers.
  auto m = client->Get("/v1/metrics");
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->status, 200);
  EXPECT_EQ(m->Header("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  const std::string& text = m->body;
  for (const char* needle : {
           "# TYPE tdmatch_queries_total counter",
           "# TYPE tdmatch_request_latency_ms histogram",
           "tdmatch_request_latency_ms_bucket{le=\"+Inf\"}",
           "tdmatch_request_stage_latency_ms_bucket{stage=\"scatter\",le=",
           "tdmatch_traces_total",
           "tdmatch_admission_admitted_total",
           "tdmatch_admission_shed_total",
           "tdmatch_cache_hits_total",
           "tdmatch_autotune_nprobe",
           "tdmatch_shards_active",
           "tdmatch_snapshot_version",
           "tdmatch_build_info{compiler=",
           "tdmatch_snapshot_phase_seconds{phase=\"train\"} 1.5",
           "tdmatch_snapshot_phase_seconds{phase=\"walks\"} 0.25",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // The query counter on the scrape covers all the traffic above.
  const std::string counter_needle = "\ntdmatch_queries_total ";
  const size_t pos = text.find(counter_needle);
  ASSERT_NE(pos, std::string::npos);
  const uint64_t queries = std::strtoull(
      text.c_str() + pos + counter_needle.size(), nullptr, 10);
  EXPECT_GE(queries, uint64_t{2 + kBatches * 64});

  // /v1/stats mirrors the tracing and build identity blocks.
  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto sdoc = util::JsonParse(stats->body);
  ASSERT_TRUE(sdoc.ok()) << stats->body;
  const util::JsonValue* tracing = sdoc->Find("tracing");
  ASSERT_NE(tracing, nullptr);
  EXPECT_EQ(tracing->Find("sample")->number_value(), 1.0);
  EXPECT_GE(tracing->Find("traced")->number_value(),
            static_cast<double>(kBatches));
  const util::JsonValue* build = sdoc->Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->Find("compiler")->string_value().empty());
  EXPECT_FALSE(build->Find("simd")->string_value().empty());

  std::remove(path.c_str());
}

TEST(MatchServiceTest, SlowQueryLogArmsWithoutSampling) {
  const std::string path = WriteGeometricSnapshot("svc_slow.tds", 12, 0);
  ServiceOptions sopts;
  sopts.trace_sample = 0.0;      // never sampled...
  sopts.slow_query_ms = 1e-6;    // ...but everything counts as slow
  util::obs::JsonLogger log;
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  sopts.logger = &log;
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_EQ(client->Post("/v1/query", "{\"label\": \"q0\"}")->status, 200);
  ASSERT_EQ(lines.size(), 1u);
  auto doc = util::JsonParse(lines[0]);
  ASSERT_TRUE(doc.ok()) << lines[0];
  EXPECT_EQ(doc->Find("event")->string_value(), "trace");
  EXPECT_TRUE(doc->Find("slow")->bool_value());
  EXPECT_FALSE(doc->Find("sampled")->bool_value());

  auto stats = client->Get("/v1/stats");
  ASSERT_TRUE(stats.ok());
  auto sdoc = util::JsonParse(stats->body);
  ASSERT_TRUE(sdoc.ok());
  EXPECT_EQ(sdoc->Find("tracing")->Find("slow")->number_value(), 1.0);

  std::remove(path.c_str());
}

TEST(MatchServiceTest, ReloadRouteCanBeDisabled) {
  const std::string path = WriteGeometricSnapshot("svc_noreload.tds", 6, 0);
  ServiceOptions sopts;
  sopts.allow_reload = false;
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());
  auto r = client->Post("/v1/reload", "{}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
  std::remove(path.c_str());
}

TEST(MatchServiceTest, CopyLoaderPathServesIdenticallyToMmap) {
  const std::string path = WriteGeometricSnapshot("svc_copy.tds", 10, 0);
  ServiceOptions mopts;
  mopts.use_mmap = true;
  ServiceOptions copts;
  copts.use_mmap = false;
  ServiceFixture mmap_fx(path, mopts);
  ServiceFixture copy_fx(path, copts);
  auto c1 = HttpClient::Connect("127.0.0.1", mmap_fx.server.port());
  auto c2 = HttpClient::Connect("127.0.0.1", copy_fx.server.port());
  ASSERT_TRUE(c1.ok() && c2.ok());
  for (size_t i = 0; i < 10; ++i) {
    const std::string body =
        "{\"label\": \"q" + std::to_string(i) + "\", \"k\": 4}";
    auto a = c1->Post("/v1/query", body);
    auto b = c2->Post("/v1/query", body);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->status, 200);
    ASSERT_EQ(b->status, 200);
    auto da = util::JsonParse(a->body);
    auto db = util::JsonParse(b->body);
    ASSERT_TRUE(da.ok() && db.ok());
    EXPECT_EQ(ParseMatches(*da), ParseMatches(*db)) << body;
  }
  std::remove(path.c_str());
}

TEST(MatchServiceTest, ConcurrentHotReloadSoak) {
  // N client threads hammer one label while the main thread swaps the
  // snapshot back and forth M times. Every response must parse, carry a
  // version, and be byte-for-byte consistent with the in-process answer of
  // exactly the snapshot that version denotes (odd = A, even = B): no torn
  // reads, no mixed-version responses. Under ASan this also proves the old
  // mapping is unmapped only after its last reader drained.
  const std::string path_a = WriteGeometricSnapshot("soak_a.tds", 20, 0);
  const std::string path_b = WriteGeometricSnapshot("soak_b.tds", 20, 7);

  // In-process references, bit-identical to what the service builds.
  ServiceOptions sopts;
  auto view_a = serve::SnapshotView::Open(path_a);
  auto view_b = serve::SnapshotView::Open(path_b);
  ASSERT_TRUE(view_a.ok() && view_b.ok());
  auto engine_a = serve::QueryEngine::BuildFromView(*view_a, "c",
                                                    sopts.engine);
  auto engine_b = serve::QueryEngine::BuildFromView(*view_b, "c",
                                                    sopts.engine);
  ASSERT_TRUE(engine_a.ok() && engine_b.ok());
  const Matches want_a = ToMatches(*engine_a->Query("q1", 5));
  const Matches want_b = ToMatches(*engine_b->Query("q1", 5));
  ASSERT_NE(want_a, want_b);  // the soak must be able to tell them apart

  constexpr size_t kClients = 4;
  constexpr size_t kReloads = 12;
  constexpr size_t kQueriesPerClient = 60;

  HttpServerOptions hopts;
  hopts.threads = kClients + 2;  // clients hold workers; reloads need one
  ServiceFixture fx(path_a, sopts, hopts);

  std::atomic<uint64_t> seen_a{0}, seen_b{0}, failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t i = 0; i < kQueriesPerClient; ++i) {
        auto r = client->Post("/v1/query", "{\"label\": \"q1\", \"k\": 5}");
        if (!r.ok() || r->status != 200) {
          ++failures;
          continue;
        }
        auto doc = util::JsonParse(r->body);
        if (!doc.ok() || doc->Find("snapshot_version") == nullptr) {
          ++failures;
          continue;
        }
        const auto version = static_cast<uint64_t>(
            doc->Find("snapshot_version")->number_value());
        const Matches got = ParseMatches(*doc);
        // Odd versions are A (initial load + every second reload), even
        // are B. The payload must match that snapshot exactly.
        const Matches& want = version % 2 == 1 ? want_a : want_b;
        (version % 2 == 1 ? seen_a : seen_b)++;
        if (got != want) {
          ++failures;
          ADD_FAILURE() << "version " << version
                        << " answered with the other snapshot's payload: "
                        << r->body;
        }
        if (t == 0 && i % 8 == 0) {
          std::this_thread::yield();
        }
      }
    });
  }

  auto reload_client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(reload_client.ok());
  for (size_t i = 1; i <= kReloads; ++i) {
    const std::string& target = i % 2 == 1 ? path_b : path_a;
    auto r = reload_client->Post("/v1/reload",
                                 "{\"snapshot\": \"" + target + "\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200) << r->body;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(seen_a.load() + seen_b.load(), 0u);
  // The final state is version 1 + kReloads, serving A (kReloads even).
  auto final_state = fx.service.state();
  EXPECT_EQ(final_state->version, 1 + kReloads);
  EXPECT_EQ(ToMatches(*final_state->engine->Query("q1", 5)), want_a);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------------
// Continuous observability: /v1/metrics/history, /v1/slo, degraded
// healthz, /v1/debug/profile
// ---------------------------------------------------------------------------

TEST(MatchServiceTest, HistoryEndpointTracksQueryCounter) {
  const std::string path = WriteGeometricSnapshot("svc_hist.tds", 16, 0);
  ServiceOptions sopts;
  sopts.history_interval_s = 0.05;
  ServiceFixture fx(path, sopts);

  // Let the sampler land at least one pre-traffic point, then serve a
  // known number of queries and let it sample again.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  HttpRequest query;
  query.body = "{\"label\": \"q1\", \"k\": 3}";
  constexpr int kQueries = 30;
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(fx.service.HandleQuery(query).status, 200);
  }
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    HttpRequest probe;
    probe.query = "window=60&series=tdmatch_queries";
    auto doc = util::JsonParse(fx.service.HandleHistory(probe).body);
    ASSERT_TRUE(doc.ok());
    const util::JsonValue* series = doc->Find("series");
    ASSERT_NE(series, nullptr);
    if (!series->items().empty() &&
        series->items()[0].Find("last")->number_value() >= kQueries) {
      break;
    }
  }

  HttpRequest req;
  req.query = "window=60&series=tdmatch_queries&points=1";
  const HttpResponse resp = fx.service.HandleHistory(req);
  ASSERT_EQ(resp.status, 200) << resp.body;
  auto doc = util::JsonParse(resp.body);
  ASSERT_TRUE(doc.ok()) << resp.body;
  EXPECT_EQ(doc->Find("window_seconds")->number_value(), 60.0);
  EXPECT_NEAR(doc->Find("interval_seconds")->number_value(), 0.05, 1e-9);
  EXPECT_GT(doc->Find("samples_taken")->number_value(), 1.0);
  const util::JsonValue* series = doc->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->items().empty()) << resp.body;
  const util::JsonValue& s = series->items()[0];
  EXPECT_EQ(s.Find("name")->string_value(), "tdmatch_queries_total");
  EXPECT_EQ(s.Find("type")->string_value(), "counter");
  EXPECT_EQ(s.Find("last")->number_value(), kQueries);
  // The window starts at a pre-traffic zero sample, so the delta is the
  // full query count.
  EXPECT_EQ(s.Find("delta")->number_value(), kQueries);
  EXPECT_GT(s.Find("rate_per_sec")->number_value(), 0.0);
  ASSERT_NE(s.Find("points"), nullptr);
  EXPECT_GE(s.Find("points")->items().size(), 2u);

  // Malformed window parameter.
  HttpRequest bad;
  bad.query = "window=nope";
  EXPECT_EQ(fx.service.HandleHistory(bad).status, 400);
  bad.query = "window=-5";
  EXPECT_EQ(fx.service.HandleHistory(bad).status, 400);
  std::remove(path.c_str());
}

TEST(MatchServiceTest, SloEndpointReportsObjectivesAndWindows) {
  const std::string path = WriteGeometricSnapshot("svc_slo.tds", 16, 0);
  ServiceOptions sopts;
  sopts.latency_budget_ms = 50.0;  // enables the latency objective
  ServiceFixture fx(path, sopts);

  HttpRequest query;
  query.body = "{\"label\": \"q1\", \"k\": 3}";
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fx.service.HandleQuery(query).status, 200);
  }
  auto doc = util::JsonParse(fx.service.HandleSlo(HttpRequest()).body);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc->Find("degraded")->bool_value());
  const util::JsonValue* objectives = doc->Find("objectives");
  ASSERT_NE(objectives, nullptr);
  ASSERT_EQ(objectives->items().size(), 2u);
  const util::JsonValue& avail = objectives->items()[0];
  EXPECT_EQ(avail.Find("name")->string_value(), "availability");
  EXPECT_EQ(avail.Find("target")->number_value(), 0.999);
  EXPECT_FALSE(avail.Find("fast_burning")->bool_value());
  EXPECT_NEAR(avail.Find("error_budget_remaining")->number_value(), 1.0,
              1e-9);
  ASSERT_EQ(avail.Find("windows")->items().size(), 4u);
  const util::JsonValue& w0 = avail.Find("windows")->items()[0];
  EXPECT_EQ(w0.Find("role")->string_value(), "fast_short");
  EXPECT_EQ(w0.Find("good")->number_value(), 10.0);
  EXPECT_EQ(w0.Find("bad")->number_value(), 0.0);
  EXPECT_EQ(objectives->items()[1].Find("name")->string_value(), "latency");
  std::remove(path.c_str());
}

TEST(MatchServiceTest, HealthzDegradesOnFastBurnAndRecovers) {
  const std::string path = WriteGeometricSnapshot("svc_burn.tds", 16, 0);
  ServiceOptions sopts;
  // Tiny windows so the trajectory runs in real time: every latency
  // breach counts (threshold 1 on a 99.9% target fires on any miss), the
  // short window forgets after 0.5 s and the long one after 1 s.
  sopts.allow_debug_delay = true;
  sopts.latency_budget_ms = 5.0;
  sopts.slo_fast = {0.5, 1.0, 1.0};
  sopts.slo_slow = {1.0, 2.0, 1.0};
  sopts.history_interval_s = 0.0;  // keep the sampler out of the timing
  ServiceFixture fx(path, sopts);

  // Phase 1: healthy.
  HttpRequest fast;
  fast.body = "{\"label\": \"q1\", \"k\": 3}";
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(fx.service.HandleQuery(fast).status, 200);
  }
  auto health = fx.service.HandleHealth(HttpRequest());
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos)
      << health.body;

  // Phase 2: every query blows the 5 ms budget -> latency fast-burn.
  HttpRequest slow;
  slow.body = "{\"label\": \"q1\", \"k\": 3, \"delay_ms\": 15}";
  for (int i = 0; i < 15; ++i) {
    ASSERT_EQ(fx.service.HandleQuery(slow).status, 200);
  }
  health = fx.service.HandleHealth(HttpRequest());
  EXPECT_EQ(health.status, 200) << "degraded stays 200 by default";
  EXPECT_NE(health.body.find("\"status\":\"degraded\""), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"burning_objectives\":[\"latency\"]"),
            std::string::npos)
      << health.body;
  HttpRequest strict;
  strict.query = "strict=1";
  EXPECT_EQ(fx.service.HandleHealth(strict).status, 503);

  // Phase 3: recovery — healthy traffic until the burst ages out of both
  // fast windows (~1 s; generous deadline for slow machines).
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    ASSERT_EQ(fx.service.HandleQuery(fast).status, 200);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    recovered = fx.service.HandleHealth(HttpRequest())
                    .body.find("\"status\":\"ok\"") != std::string::npos;
  }
  EXPECT_TRUE(recovered) << "healthz never flipped back to ok";
  EXPECT_EQ(fx.service.HandleHealth(strict).status, 200);
  std::remove(path.c_str());
}

TEST(MatchServiceTest, MetricsScrapeVersusReloadHammer) {
  // Regression test for the gauge-callback/reload race: /v1/metrics and
  // /v1/metrics/history evaluate registry callbacks (including the
  // build_info labels Reload re-registers) while reloads swap them out.
  // Under TSan this is the proof the callback swap is properly locked.
  const std::string path_a = WriteGeometricSnapshot("svc_race_a.tds", 16, 0);
  const std::string path_b = WriteGeometricSnapshot("svc_race_b.tds", 16, 7);
  ServiceOptions sopts;
  sopts.history_interval_s = 0.01;  // sampler scrapes concurrently too
  HttpServerOptions hopts;
  hopts.threads = 6;
  ServiceFixture fx(path_a, sopts, hopts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&, t] {
      auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      const std::string target =
          t == 0 ? "/v1/metrics" : "/v1/metrics/history?window=60";
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = client->Get(target);
        if (!r.ok() || r->status != 200) ++failures;
      }
    });
  }
  auto reloader = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(reloader.ok());
  for (int i = 1; i <= 10; ++i) {
    const std::string& target = i % 2 == 1 ? path_b : path_a;
    auto r = reloader->Post("/v1/reload",
                            "{\"snapshot\": \"" + target + "\"}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->status, 200) << r->body;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0u);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(MatchServiceTest, ProfileEndpointCapturesUnderLoad) {
  if (!util::obs::CpuProfiler::Supported() || TDMATCH_TEST_UNDER_SANITIZER) {
    GTEST_SKIP() << "profiler capture not supported in this build";
  }
  const std::string path = WriteGeometricSnapshot("svc_prof.tds", 64, 0);
  ServiceFixture fx(path);

  // Parameter validation happens before any capture.
  HttpRequest bad;
  bad.query = "seconds=nope";
  EXPECT_EQ(fx.service.HandleProfile(bad).status, 400);
  bad.query = "hz=0";
  EXPECT_EQ(fx.service.HandleProfile(bad).status, 400);
  bad.query = "format=xml";
  EXPECT_EQ(fx.service.HandleProfile(bad).status, 400);

  // Keep the engine busy while the capture runs.
  std::atomic<bool> stop{false};
  std::thread load([&] {
    HttpRequest query;
    query.body = "{\"k\": 5, \"labels\": [\"q1\", \"q2\", \"q3\", \"q4\"]}";
    while (!stop.load(std::memory_order_relaxed)) {
      fx.service.HandleQuery(query);
    }
  });
  HttpRequest req;
  req.query = "seconds=0.4&hz=500&format=json&top=10";
  const HttpResponse resp = fx.service.HandleProfile(req);
  stop.store(true);
  load.join();
  ASSERT_EQ(resp.status, 200) << resp.body;
  auto doc = util::JsonParse(resp.body);
  ASSERT_TRUE(doc.ok()) << resp.body;
  EXPECT_EQ(doc->Find("hz")->number_value(), 500.0);
  EXPECT_GT(doc->Find("samples")->number_value(), 0.0) << resp.body;

  // Folded format is the default and is flamegraph.pl input.
  std::atomic<bool> stop2{false};
  std::thread load2([&] {
    HttpRequest query;
    query.body = "{\"k\": 5, \"labels\": [\"q1\", \"q2\", \"q3\", \"q4\"]}";
    while (!stop2.load(std::memory_order_relaxed)) {
      fx.service.HandleQuery(query);
    }
  });
  HttpRequest folded_req;
  folded_req.query = "seconds=0.4&hz=500";
  const HttpResponse folded = fx.service.HandleProfile(folded_req);
  stop2.store(true);
  load2.join();
  ASSERT_EQ(folded.status, 200);
  EXPECT_NE(folded.content_type.find("text/plain"), std::string::npos);
  EXPECT_FALSE(folded.body.empty());
  // Each line is "stack count"; the busy query loop must put tdmatch
  // frames on the profile.
  EXPECT_NE(folded.body.find("tdmatch"), std::string::npos)
      << folded.body.substr(0, 2000);
  std::remove(path.c_str());
}

TEST(MatchServiceTest, ProfileRouteCanBeDisabled) {
  const std::string path = WriteGeometricSnapshot("svc_noprof.tds", 16, 0);
  ServiceOptions sopts;
  sopts.allow_profile = false;
  ServiceFixture fx(path, sopts);
  auto client = HttpClient::Connect("127.0.0.1", fx.server.port());
  ASSERT_TRUE(client.ok());
  auto r = client->Get("/v1/debug/profile?seconds=0.1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, 404);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tdmatch
