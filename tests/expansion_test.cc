#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/builder.h"
#include "graph/expansion.h"
#include "kb/synthetic_kb.h"
#include "text/preprocess.h"
#include "util/string_util.h"

namespace tdmatch {
namespace graph {
namespace {

text::Preprocessor& Pp() {
  static text::Preprocessor pp;
  return pp;
}

std::string Norm(const std::string& s) {
  return GraphBuilder::NormalizeLabel(Pp(), s);
}

/// p1 - willis - t2 plus a lonely director node on t2.
Graph PaperGraph() {
  Graph g;
  NodeId p1 = g.AddNode("__D0:0__", NodeType::kMetadataDoc, 0, 0);
  NodeId t2 = g.AddNode("__D1:1__", NodeType::kMetadataDoc, 1, 1);
  NodeId willis = g.AddNode("willi");
  NodeId tarantino = g.AddNode("tarantino");
  NodeId comedy = g.AddNode("comedi");
  g.AddEdge(p1, willis);
  g.AddEdge(t2, willis);
  g.AddEdge(t2, tarantino);
  g.AddEdge(p1, comedy);
  return g;
}

TEST(ExpansionTest, AddsKbBridges) {
  Graph g = PaperGraph();
  kb::SyntheticKB kb(Norm);
  // The paper's example: style(Tarantino, Comedy) creates a short path
  // p1 -> comedy -> tarantino -> t2.
  kb.AddRelation("Tarantino", "Comedy", "style");
  Graph out = ExpandGraph(g, kb, {}, Norm);
  NodeId tarantino = out.FindNode("tarantino");
  NodeId comedy = out.FindNode("comedi");
  ASSERT_NE(tarantino, kInvalidNode);
  ASSERT_NE(comedy, kInvalidNode);
  EXPECT_TRUE(out.HasEdge(tarantino, comedy));
}

TEST(ExpansionTest, RemovesSinkNodes) {
  Graph g = PaperGraph();
  kb::SyntheticKB kb(Norm);
  // spouse(Shyamalan, Bhavna Vaswani): Vaswani has degree 1 → removed.
  kb.AddRelation("Tarantino", "Uma Spouse", "spouse");
  Graph out = ExpandGraph(g, kb, {}, Norm);
  EXPECT_FALSE(out.HasNode(Norm("Uma Spouse")));
}

TEST(ExpansionTest, KeepSinksWhenDisabled) {
  Graph g = PaperGraph();
  kb::SyntheticKB kb(Norm);
  kb.AddRelation("Tarantino", "Uma Spouse", "spouse");
  ExpansionOptions opts;
  opts.remove_sinks = false;
  Graph out = ExpandGraph(g, kb, opts, Norm);
  EXPECT_TRUE(out.HasNode(Norm("Uma Spouse")));
}

TEST(ExpansionTest, CapsRelationsPerNode) {
  Graph g = PaperGraph();
  kb::SyntheticKB kb(Norm);
  for (int i = 0; i < 100; ++i) {
    kb.AddRelation("Tarantino", "Noise" + std::to_string(i) + " Hub",
                   "wikiPageLink");
  }
  ExpansionOptions opts;
  opts.max_relations_per_node = 10;
  opts.remove_sinks = false;
  Graph out = ExpandGraph(g, kb, opts, Norm);
  NodeId tarantino = out.FindNode("tarantino");
  // Original 1 edge (to t2) + at most 10 KB edges.
  EXPECT_LE(out.Degree(tarantino), 11u);
}

TEST(ExpansionTest, MetadataNodesNeverExpanded) {
  Graph g = PaperGraph();
  kb::SyntheticKB kb(Norm);
  // A malicious KB entry keyed like a metadata label must be ignored
  // because expansion only looks at data nodes.
  kb.AddRelation("__D0:0__", "Evil Node", "x");
  ExpansionOptions opts;
  opts.remove_sinks = false;
  Graph out = ExpandGraph(g, kb, opts, Norm);
  EXPECT_FALSE(out.HasNode(Norm("Evil Node")));
}

TEST(ExpansionTest, ShortensMetadataDistance) {
  // Two metadata nodes two different terms; KB relates the terms.
  Graph g;
  NodeId p = g.AddNode("__D0:0__", NodeType::kMetadataDoc, 0, 0);
  NodeId t = g.AddNode("__D1:0__", NodeType::kMetadataDoc, 1, 0);
  NodeId a = g.AddNode("manag");
  NodeId b = g.AddNode("plan");
  g.AddEdge(p, a);
  g.AddEdge(t, b);
  // Keep both terms at degree >= 2 via a helper edge each.
  NodeId x = g.AddNode("x1");
  NodeId y = g.AddNode("y1");
  g.AddEdge(a, x);
  g.AddEdge(b, y);
  g.AddEdge(x, y);

  kb::SyntheticKB kb(Norm);
  kb.AddRelation("management", "planning", "relatedTo");

  int32_t before = Bfs::Distance(g, p, t);
  Graph out = ExpandGraph(g, kb, {}, Norm);
  int32_t after = Bfs::Distance(out, out.FindNode("__D0:0__"),
                                out.FindNode("__D1:0__"));
  EXPECT_LT(after, before);
  EXPECT_EQ(after, 3);  // p - manag - plan - t
}

TEST(ExpansionTest, PreservesOriginalEdges) {
  Graph g = PaperGraph();
  kb::SyntheticKB kb(Norm);  // empty resource
  Graph out = ExpandGraph(g, kb, {}, Norm);
  NodeId p1 = out.FindNode("__D0:0__");
  NodeId willis = out.FindNode("willi");
  ASSERT_NE(p1, kInvalidNode);
  ASSERT_NE(willis, kInvalidNode);
  EXPECT_TRUE(out.HasEdge(p1, willis));
}

TEST(SyntheticKbTest, NormalizedLookup) {
  kb::SyntheticKB kb(Norm);
  kb.AddRelation("Bruce Willis", "Pulp Fiction", "starringOf");
  EXPECT_TRUE(kb.Knows("bruce willi"));
  auto related = kb.Related("bruce willi");
  ASSERT_EQ(related.size(), 1u);
  EXPECT_EQ(related[0], "Pulp Fiction");
  EXPECT_EQ(kb.NumRelations(), 1u);
}

TEST(SyntheticKbTest, DedupAndSelfLoop) {
  kb::SyntheticKB kb(Norm);
  kb.AddRelation("foo", "bar");
  kb.AddRelation("foo", "bar");
  kb.AddRelation("bar", "foo");
  kb.AddRelation("foo", "foo");
  EXPECT_EQ(kb.Related("foo").size(), 1u);
  EXPECT_EQ(kb.Related("bar").size(), 1u);
}

TEST(SyntheticKbTest, StopWordLabelsIgnored) {
  // The normalizer maps pure stop-words to the empty string; such
  // relations are dropped rather than creating empty-label entities.
  kb::SyntheticKB kb(Norm);
  kb.AddRelation("a", "b");
  EXPECT_EQ(kb.NumRelations(), 0u);
}

TEST(SyntheticKbTest, UnknownLabelEmpty) {
  kb::SyntheticKB kb(Norm);
  EXPECT_FALSE(kb.Knows("ghost"));
  EXPECT_TRUE(kb.Related("ghost").empty());
}

}  // namespace
}  // namespace graph
}  // namespace tdmatch
