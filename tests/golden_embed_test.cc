// Golden regression tests for the CSR/flat-corpus migration of the
// embedding hot path (random walks + Word2Vec).
//
// The expected values below were captured from the pre-CSR seed
// implementation (nested-vector walks, 4 MB unigram table, Hogwild
// trainer at threads=1). They pin down, bit for bit, that
//
//  * RandomWalker produces identical walks over the flat CSR layout,
//    for any thread count, via both the corpus and the nested API;
//  * Word2Vec training (Skip-gram and CBOW, with subsampling active so
//    the keep-probability table is exercised) reproduces the same
//    trained vectors — bit-exact on the capture toolchain, within a
//    libm-drift tolerance elsewhere (see ExpectGolden) — now
//    independent of the `threads` setting;
//  * the boundary-form negative sampler emits the same id sequence as
//    the classic materialized table it replaced.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "embed/negative_sampler.h"
#include "embed/random_walk.h"
#include "embed/sentence_corpus.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace tdmatch {
namespace embed {
namespace {

graph::Graph TriangleWithTail() {
  graph::Graph g;
  g.AddNode("a");
  g.AddNode("b");
  g.AddNode("c");
  g.AddNode("tail");
  g.AddNode("isolated");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  return g;
}

// Captured from the seed implementation: Generate(TriangleWithTail,
// {num_walks=3, walk_length=7, seed=99, threads=1}).
const std::vector<std::vector<int32_t>> kGoldenWalks = {
    {0, 1, 2, 3, 2, 3, 2}, {0, 2, 3, 2, 0, 1, 2}, {0, 1, 2, 0, 1, 0, 1},
    {1, 2, 1, 0, 2, 3, 2}, {1, 0, 1, 0, 2, 0, 2}, {1, 0, 1, 2, 0, 1, 2},
    {2, 3, 2, 1, 0, 1, 0}, {2, 1, 0, 2, 3, 2, 0}, {2, 0, 2, 3, 2, 0, 2},
    {3, 2, 1, 2, 1, 0, 1}, {3, 2, 1, 0, 2, 3, 2}, {3, 2, 1, 0, 1, 0, 1},
    {4},                   {4},                   {4}};

RandomWalkOptions GoldenWalkOptions(size_t threads) {
  return RandomWalkOptions{.num_walks = 3, .walk_length = 7, .seed = 99,
                           .threads = threads};
}

TEST(GoldenWalkTest, NestedApiMatchesSeedImplementationAcrossThreadCounts) {
  graph::Graph g = TriangleWithTail();
  for (size_t threads : {1u, 4u, 8u}) {
    EXPECT_EQ(RandomWalker::Generate(g, GoldenWalkOptions(threads)),
              kGoldenWalks)
        << "threads=" << threads;
  }
}

TEST(GoldenWalkTest, CorpusApiFlattensTheSameWalks) {
  graph::Graph g = TriangleWithTail();
  for (size_t threads : {1u, 4u, 8u}) {
    SentenceCorpus c = RandomWalker::GenerateCorpus(g,
                                                    GoldenWalkOptions(threads));
    EXPECT_EQ(c.ToNested(), kGoldenWalks) << "threads=" << threads;
  }
}

TEST(GoldenWalkTest, FinalizedAndBuildingGraphsWalkIdentically) {
  graph::Graph building = TriangleWithTail();
  graph::Graph finalized = TriangleWithTail();
  finalized.Finalize();
  ASSERT_FALSE(building.finalized());
  ASSERT_TRUE(finalized.finalized());
  EXPECT_EQ(RandomWalker::GenerateCorpus(building, GoldenWalkOptions(1)),
            RandomWalker::GenerateCorpus(finalized, GoldenWalkOptions(1)));
  EXPECT_EQ(RandomWalker::Generate(finalized, GoldenWalkOptions(1)),
            kGoldenWalks);
}

TEST(GoldenWalkTest, EdgelessAndEmptyGraphs) {
  graph::Graph empty;
  empty.Finalize();
  EXPECT_TRUE(
      RandomWalker::GenerateCorpus(empty, GoldenWalkOptions(4)).empty());

  graph::Graph isolated;
  isolated.AddNode("x");
  isolated.AddNode("y");
  isolated.Finalize();
  SentenceCorpus c = RandomWalker::GenerateCorpus(isolated,
                                                  GoldenWalkOptions(4));
  ASSERT_EQ(c.NumSentences(), 6u);  // 2 nodes x 3 walks
  for (size_t i = 0; i < c.NumSentences(); ++i) {
    ASSERT_EQ(c.sentence(i).size(), 1u);
    EXPECT_EQ(c.sentence(i)[0], static_cast<int32_t>(i / 3));
  }
}

// ---------------------------------------------------------------------------
// Word2Vec goldens
// ---------------------------------------------------------------------------

/// Two disjoint token clusters, as in embed_test.cc.
std::vector<std::vector<int32_t>> ClusteredSentences(size_t n) {
  std::vector<std::vector<int32_t>> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({0, 1, 2, 3, 4});
    out.push_back({5, 6, 7, 8, 9});
  }
  return out;
}

Word2VecOptions GoldenW2vOptions(size_t threads) {
  Word2VecOptions o;
  o.dim = 16;
  o.epochs = 2;
  o.threads = threads;
  o.seed = 42;
  o.subsample = 1e-3;  // exercises the keep-probability table
  return o;
}

// Captured from the seed implementation at threads=1 (hex bit patterns of
// the trained input vectors).
const uint32_t kGoldenSkipgramVec0[16] = {
    0xbcd50995u, 0xbbf6eac1u, 0x3c3892e7u, 0x3cd9a3d9u, 0x3cfbabc7u,
    0x3c89db9fu, 0x3c609c29u, 0x3cb32b82u, 0x3c85c50cu, 0x3baa8f96u,
    0x3c3a912cu, 0xbc55f99fu, 0x3c9a30deu, 0xbc370859u, 0x3c57e258u,
    0x3cc1a0d2u};
const uint32_t kGoldenSkipgramVec5[16] = {
    0xbbd1aed3u, 0xbb34197cu, 0x3c05f4bfu, 0x3a849f8cu, 0xbc22e32fu,
    0x3b927801u, 0x3b268477u, 0x3c984cc6u, 0xbccd7db9u, 0x3b6af256u,
    0xbc91f1bfu, 0x3c651dffu, 0xbb843a40u, 0xbc8e1a98u, 0x3cf4bd8au,
    0x3c983d96u};
const uint32_t kGoldenCbowVec0[16] = {
    0xbcd50693u, 0xbbf7206eu, 0x3c3871dbu, 0x3cd98b1eu, 0x3cfba730u,
    0x3c89ee37u, 0x3c607520u, 0x3cb326b1u, 0x3c85d2eau, 0x3baad8b4u,
    0x3c3ab27au, 0xbc561793u, 0x3c9a398cu, 0xbc36e839u, 0x3c57cdedu,
    0x3cc1a8a2u};

/// The trained vectors pass through std::exp (sigmoid table), whose
/// last-ulp results differ across libm implementations, so the goldens
/// are compared with a tolerance far above libm drift (~1e-7 relative)
/// and far below any algorithmic change (which scrambles the RNG stream
/// and flips signs wholesale). On the toolchain the goldens were
/// captured with, the match is in fact bit-exact — and the in-process
/// tests below assert true bit-identity across thread counts and input
/// representations, which is libm-independent.
void ExpectGolden(const float* v, const uint32_t (&expected)[16],
                  const std::string& what) {
  for (int d = 0; d < 16; ++d) {
    float e;
    std::memcpy(&e, &expected[d], sizeof(e));
    EXPECT_NEAR(v[d], e, 1e-5) << what << " dim " << d;
  }
}

TEST(GoldenWord2VecTest, SkipgramMatchesSeedImplementationAcrossThreadCounts) {
  auto sents = ClusteredSentences(20);
  for (size_t threads : {1u, 4u, 8u}) {
    Word2Vec w2v(GoldenW2vOptions(threads));
    ASSERT_TRUE(w2v.Train(sents, 10).ok());
    ExpectGolden(w2v.Vector(0), kGoldenSkipgramVec0,
               "skipgram vec0 threads=" + std::to_string(threads));
    ExpectGolden(w2v.Vector(5), kGoldenSkipgramVec5,
               "skipgram vec5 threads=" + std::to_string(threads));
  }
}

TEST(GoldenWord2VecTest, CbowMatchesSeedImplementationAcrossThreadCounts) {
  auto sents = ClusteredSentences(20);
  for (size_t threads : {1u, 4u, 8u}) {
    Word2VecOptions o = GoldenW2vOptions(threads);
    o.cbow = true;
    o.window = 4;
    Word2Vec w2v(o);
    ASSERT_TRUE(w2v.Train(sents, 10).ok());
    ExpectGolden(w2v.Vector(0), kGoldenCbowVec0,
               "cbow vec0 threads=" + std::to_string(threads));
  }
}

TEST(GoldenWord2VecTest, FlatCorpusTrainsIdenticallyToNestedVectors) {
  auto sents = ClusteredSentences(20);
  SentenceCorpus corpus = SentenceCorpus::FromNested(sents);
  Word2Vec nested(GoldenW2vOptions(1));
  Word2Vec flat(GoldenW2vOptions(8));
  ASSERT_TRUE(nested.Train(sents, 10).ok());
  ASSERT_TRUE(flat.Train(corpus, 10).ok());
  for (int32_t id = 0; id < 10; ++id) {
    EXPECT_EQ(nested.VectorCopy(id), flat.VectorCopy(id)) << "id " << id;
  }
  ExpectGolden(flat.Vector(0), kGoldenSkipgramVec0, "flat corpus vec0");
}

TEST(GoldenWord2VecTest, EndToEndWalkCorpusTrainingIsDeterministic) {
  graph::Graph g = TriangleWithTail();
  g.Finalize();
  RandomWalkOptions wo{.num_walks = 8, .walk_length = 10, .seed = 7,
                       .threads = 4};
  Word2VecOptions to;
  to.dim = 8;
  to.epochs = 2;
  to.seed = 7;
  auto train_once = [&](size_t threads) {
    SentenceCorpus walks = RandomWalker::GenerateCorpus(g, wo);
    Word2VecOptions o = to;
    o.threads = threads;
    Word2Vec w2v(o);
    EXPECT_TRUE(w2v.Train(walks, g.NumNodes()).ok());
    std::vector<float> all;
    for (size_t id = 0; id < g.NumNodes(); ++id) {
      auto v = w2v.VectorCopy(static_cast<int32_t>(id));
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  const auto base = train_once(1);
  EXPECT_EQ(base, train_once(4));
  EXPECT_EQ(base, train_once(8));
}

// ---------------------------------------------------------------------------
// Negative sampler vs the classic materialized table
// ---------------------------------------------------------------------------

/// Reference: the exact table construction the seed implementation used.
std::vector<int32_t> ClassicUnigramTable(const std::vector<uint64_t>& counts,
                                         size_t table_size) {
  std::vector<int32_t> table(table_size, 0);
  double norm = 0.0;
  for (uint64_t c : counts) norm += std::pow(static_cast<double>(c), 0.75);
  size_t i = 0;
  double cum = std::pow(static_cast<double>(counts[0]), 0.75) / norm;
  for (size_t t = 0; t < table_size; ++t) {
    table[t] = static_cast<int32_t>(i);
    if (static_cast<double>(t) / static_cast<double>(table_size) > cum &&
        i + 1 < counts.size()) {
      ++i;
      cum += std::pow(static_cast<double>(counts[i]), 0.75) / norm;
    }
  }
  return table;
}

TEST(NegativeSamplerTest, MatchesClassicTableSlotForSlot) {
  constexpr size_t kTable = 1 << 16;  // small enough to compare exhaustively
  // Skewed counts incl. zero-count words (never sampled) and a hub.
  std::vector<uint64_t> counts = {1000, 0, 3, 500, 1, 0, 42, 7, 7, 2000};
  auto table = ClassicUnigramTable(counts, kTable);
  NegativeSampler sampler;
  sampler.Build(counts, kTable);
  for (size_t t = 0; t < kTable; ++t) {
    ASSERT_EQ(sampler.Sample(t), table[t]) << "slot " << t;
  }
}

TEST(NegativeSamplerTest, UniformCountsCoverVocabulary) {
  constexpr size_t kTable = 1 << 14;
  std::vector<uint64_t> counts(37, 5);
  auto table = ClassicUnigramTable(counts, kTable);
  NegativeSampler sampler;
  sampler.Build(counts, kTable);
  for (size_t t = 0; t < kTable; ++t) {
    ASSERT_EQ(sampler.Sample(t), table[t]) << "slot " << t;
  }
  EXPECT_EQ(sampler.Sample(kTable - 1), 36);
}

TEST(NegativeSamplerTest, SingleWordVocab) {
  NegativeSampler sampler;
  sampler.Build({9}, 1 << 10);
  for (size_t t = 0; t < (1u << 10); t += 97) {
    EXPECT_EQ(sampler.Sample(t), 0);
  }
}

}  // namespace
}  // namespace embed
}  // namespace tdmatch
