// Golden regression tests for the embedding hot path (random walks +
// Word2Vec).
//
// The walk goldens were captured from the pre-CSR seed implementation;
// the Word2Vec goldens pin the deterministic *block-parallel* schedule
// (block_sharder.h): fixed sentence blocks, per-block seed-derived RNG
// streams, sparse deltas merged in canonical block order. They lock
// down, bit for bit, that
//
//  * RandomWalker produces identical walks over the flat CSR layout,
//    for any thread count, via both the corpus and the nested API;
//  * Word2Vec training (Skip-gram and CBOW, with subsampling active so
//    the keep-probability table is exercised) reproduces the captured
//    vectors — bit-exact on the capture toolchain, within a libm-drift
//    tolerance elsewhere (see ExpectGolden) — byte-identical for
//    threads ∈ {1, 2, 8}, including corpora spanning multiple merge
//    groups;
//  * the boundary-form negative sampler emits the same id sequence as
//    the classic materialized table it replaced.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "embed/negative_sampler.h"
#include "embed/random_walk.h"
#include "embed/sentence_corpus.h"
#include "embed/word2vec.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace tdmatch {
namespace embed {
namespace {

graph::Graph TriangleWithTail() {
  graph::Graph g;
  g.AddNode("a");
  g.AddNode("b");
  g.AddNode("c");
  g.AddNode("tail");
  g.AddNode("isolated");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  return g;
}

// Captured from the seed implementation: Generate(TriangleWithTail,
// {num_walks=3, walk_length=7, seed=99, threads=1}).
const std::vector<std::vector<int32_t>> kGoldenWalks = {
    {0, 1, 2, 3, 2, 3, 2}, {0, 2, 3, 2, 0, 1, 2}, {0, 1, 2, 0, 1, 0, 1},
    {1, 2, 1, 0, 2, 3, 2}, {1, 0, 1, 0, 2, 0, 2}, {1, 0, 1, 2, 0, 1, 2},
    {2, 3, 2, 1, 0, 1, 0}, {2, 1, 0, 2, 3, 2, 0}, {2, 0, 2, 3, 2, 0, 2},
    {3, 2, 1, 2, 1, 0, 1}, {3, 2, 1, 0, 2, 3, 2}, {3, 2, 1, 0, 1, 0, 1},
    {4},                   {4},                   {4}};

RandomWalkOptions GoldenWalkOptions(size_t threads) {
  return RandomWalkOptions{.num_walks = 3, .walk_length = 7, .seed = 99,
                           .threads = threads};
}

TEST(GoldenWalkTest, NestedApiMatchesSeedImplementationAcrossThreadCounts) {
  graph::Graph g = TriangleWithTail();
  for (size_t threads : {1u, 4u, 8u}) {
    EXPECT_EQ(RandomWalker::Generate(g, GoldenWalkOptions(threads)),
              kGoldenWalks)
        << "threads=" << threads;
  }
}

TEST(GoldenWalkTest, CorpusApiFlattensTheSameWalks) {
  graph::Graph g = TriangleWithTail();
  for (size_t threads : {1u, 4u, 8u}) {
    SentenceCorpus c = RandomWalker::GenerateCorpus(g,
                                                    GoldenWalkOptions(threads));
    EXPECT_EQ(c.ToNested(), kGoldenWalks) << "threads=" << threads;
  }
}

TEST(GoldenWalkTest, FinalizedAndBuildingGraphsWalkIdentically) {
  graph::Graph building = TriangleWithTail();
  graph::Graph finalized = TriangleWithTail();
  finalized.Finalize();
  ASSERT_FALSE(building.finalized());
  ASSERT_TRUE(finalized.finalized());
  EXPECT_EQ(RandomWalker::GenerateCorpus(building, GoldenWalkOptions(1)),
            RandomWalker::GenerateCorpus(finalized, GoldenWalkOptions(1)));
  EXPECT_EQ(RandomWalker::Generate(finalized, GoldenWalkOptions(1)),
            kGoldenWalks);
}

TEST(GoldenWalkTest, EdgelessAndEmptyGraphs) {
  graph::Graph empty;
  empty.Finalize();
  EXPECT_TRUE(
      RandomWalker::GenerateCorpus(empty, GoldenWalkOptions(4)).empty());

  graph::Graph isolated;
  isolated.AddNode("x");
  isolated.AddNode("y");
  isolated.Finalize();
  SentenceCorpus c = RandomWalker::GenerateCorpus(isolated,
                                                  GoldenWalkOptions(4));
  ASSERT_EQ(c.NumSentences(), 6u);  // 2 nodes x 3 walks
  for (size_t i = 0; i < c.NumSentences(); ++i) {
    ASSERT_EQ(c.sentence(i).size(), 1u);
    EXPECT_EQ(c.sentence(i)[0], static_cast<int32_t>(i / 3));
  }
}

// ---------------------------------------------------------------------------
// Word2Vec goldens
// ---------------------------------------------------------------------------

/// Two disjoint token clusters, as in embed_test.cc.
std::vector<std::vector<int32_t>> ClusteredSentences(size_t n) {
  std::vector<std::vector<int32_t>> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({0, 1, 2, 3, 4});
    out.push_back({5, 6, 7, 8, 9});
  }
  return out;
}

Word2VecOptions GoldenW2vOptions(size_t threads) {
  Word2VecOptions o;
  o.dim = 16;
  o.epochs = 2;
  o.threads = threads;
  o.seed = 42;
  o.subsample = 1e-3;  // exercises the keep-probability table
  return o;
}

// Captured from the block-schedule implementation at threads=1 (hex bit
// patterns of the trained input vectors). Regenerated when the
// deterministic parallel schedule landed — the block-ordered RNG
// consumption intentionally differs from the old single-stream sequence.
const uint32_t kGoldenSkipgramVec0[16] = {
    0xbcd513ceu, 0xbbf7ddbbu, 0x3c3860abu, 0x3cd97554u, 0x3cfbd253u,
    0x3c8a1dd0u, 0x3c60896cu, 0x3cb33795u, 0x3c85d54fu, 0x3baab629u,
    0x3c3ad857u, 0xbc565c7cu, 0x3c9a22acu, 0xbc36e335u, 0x3c583ba4u,
    0x3cc16e3eu};
const uint32_t kGoldenSkipgramVec5[16] = {
    0xbbd1ba41u, 0xbb33f1a5u, 0x3c060e74u, 0x3a852d03u, 0xbc22d65du,
    0x3b9290d5u, 0x3b2669a6u, 0x3c986540u, 0xbccd7f51u, 0x3b6ae52fu,
    0xbc91e638u, 0x3c65199cu, 0xbb841322u, 0xbc8e1c60u, 0x3cf4c32cu,
    0x3c9840bdu};
// Row 2 rather than row 0: under the golden config's aggressive
// subsampling, row 0 happens to receive near-identical updates in both
// CBOW and skip-gram mode, so it would not distinguish the two paths.
const uint32_t kGoldenCbowVec2[16] = {
    0x3cb9ea54u, 0x3ce3b426u, 0x3ca0e277u, 0x3c7cfc22u, 0x3c91bfacu,
    0xbce91105u, 0xbaff77f6u, 0x3cf1bfd3u, 0x3b16c47eu, 0x3c4d75cau,
    0x3c9b7347u, 0x3ca2e8fau, 0x3ccbf127u, 0xbcbfb6ddu, 0x3b852e1au,
    0x3b5e1545u};

/// The trained vectors pass through std::exp (sigmoid table), whose
/// last-ulp results differ across libm implementations, so the goldens
/// are compared with a tolerance far above libm drift (~1e-7 relative)
/// and far below any algorithmic change (which scrambles the RNG stream
/// and flips signs wholesale). On the toolchain the goldens were
/// captured with, the match is in fact bit-exact — and the in-process
/// tests below assert true bit-identity across thread counts and input
/// representations, which is libm-independent.
void ExpectGolden(const float* v, const uint32_t (&expected)[16],
                  const std::string& what) {
  for (int d = 0; d < 16; ++d) {
    float e;
    std::memcpy(&e, &expected[d], sizeof(e));
    EXPECT_NEAR(v[d], e, 1e-5) << what << " dim " << d;
  }
}

TEST(GoldenWord2VecTest, SkipgramMatchesGoldenAcrossThreadCounts) {
  auto sents = ClusteredSentences(20);
  for (size_t threads : {1u, 2u, 8u}) {
    Word2Vec w2v(GoldenW2vOptions(threads));
    ASSERT_TRUE(w2v.Train(sents, 10).ok());
    ExpectGolden(w2v.Vector(0), kGoldenSkipgramVec0,
               "skipgram vec0 threads=" + std::to_string(threads));
    ExpectGolden(w2v.Vector(5), kGoldenSkipgramVec5,
               "skipgram vec5 threads=" + std::to_string(threads));
  }
}

TEST(GoldenWord2VecTest, CbowMatchesGoldenAcrossThreadCounts) {
  auto sents = ClusteredSentences(20);
  for (size_t threads : {1u, 2u, 8u}) {
    Word2VecOptions o = GoldenW2vOptions(threads);
    o.cbow = true;
    o.window = 4;
    Word2Vec w2v(o);
    ASSERT_TRUE(w2v.Train(sents, 10).ok());
    ExpectGolden(w2v.Vector(2), kGoldenCbowVec2,
               "cbow vec2 threads=" + std::to_string(threads));
  }
}

/// Byte-identical trained vectors for threads ∈ {1, 2, 8} — the
/// thread-invariance half of the determinism contract, on a corpus large
/// enough to span multiple merge groups (kItemsPerBlock × kBlocksPerGroup
/// sentences per group), so cross-group merge ordering is exercised too.
TEST(GoldenWord2VecTest, MultiGroupCorpusIsThreadInvariant) {
  std::vector<std::vector<int32_t>> sents;
  for (size_t i = 0; i < 2500; ++i) {
    sents.push_back({static_cast<int32_t>(i % 7),
                     static_cast<int32_t>((i * 3) % 11),
                     static_cast<int32_t>((i * 5) % 13),
                     static_cast<int32_t>(i % 17),
                     static_cast<int32_t>((i + 1) % 19)});
  }
  auto train_once = [&](size_t threads) {
    Word2VecOptions o;
    o.dim = 8;
    o.epochs = 1;
    o.threads = threads;
    o.seed = 7;
    Word2Vec w2v(o);
    EXPECT_TRUE(w2v.Train(sents, 19).ok());
    std::vector<float> all;
    for (int32_t id = 0; id < 19; ++id) {
      auto v = w2v.VectorCopy(id);
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  const auto base = train_once(1);
  EXPECT_EQ(base, train_once(2));
  EXPECT_EQ(base, train_once(8));
}

TEST(GoldenWord2VecTest, FlatCorpusTrainsIdenticallyToNestedVectors) {
  auto sents = ClusteredSentences(20);
  SentenceCorpus corpus = SentenceCorpus::FromNested(sents);
  Word2Vec nested(GoldenW2vOptions(1));
  Word2Vec flat(GoldenW2vOptions(8));
  ASSERT_TRUE(nested.Train(sents, 10).ok());
  ASSERT_TRUE(flat.Train(corpus, 10).ok());
  for (int32_t id = 0; id < 10; ++id) {
    EXPECT_EQ(nested.VectorCopy(id), flat.VectorCopy(id)) << "id " << id;
  }
  ExpectGolden(flat.Vector(0), kGoldenSkipgramVec0, "flat corpus vec0");
}

TEST(GoldenWord2VecTest, EndToEndWalkCorpusTrainingIsDeterministic) {
  graph::Graph g = TriangleWithTail();
  g.Finalize();
  RandomWalkOptions wo{.num_walks = 8, .walk_length = 10, .seed = 7,
                       .threads = 4};
  Word2VecOptions to;
  to.dim = 8;
  to.epochs = 2;
  to.seed = 7;
  auto train_once = [&](size_t threads) {
    SentenceCorpus walks = RandomWalker::GenerateCorpus(g, wo);
    Word2VecOptions o = to;
    o.threads = threads;
    Word2Vec w2v(o);
    EXPECT_TRUE(w2v.Train(walks, g.NumNodes()).ok());
    std::vector<float> all;
    for (size_t id = 0; id < g.NumNodes(); ++id) {
      auto v = w2v.VectorCopy(static_cast<int32_t>(id));
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  const auto base = train_once(1);
  EXPECT_EQ(base, train_once(2));
  EXPECT_EQ(base, train_once(4));
  EXPECT_EQ(base, train_once(8));
}

// ---------------------------------------------------------------------------
// Negative sampler vs the classic materialized table
// ---------------------------------------------------------------------------

/// Reference: the exact table construction the seed implementation used.
std::vector<int32_t> ClassicUnigramTable(const std::vector<uint64_t>& counts,
                                         size_t table_size) {
  std::vector<int32_t> table(table_size, 0);
  double norm = 0.0;
  for (uint64_t c : counts) norm += std::pow(static_cast<double>(c), 0.75);
  size_t i = 0;
  double cum = std::pow(static_cast<double>(counts[0]), 0.75) / norm;
  for (size_t t = 0; t < table_size; ++t) {
    table[t] = static_cast<int32_t>(i);
    if (static_cast<double>(t) / static_cast<double>(table_size) > cum &&
        i + 1 < counts.size()) {
      ++i;
      cum += std::pow(static_cast<double>(counts[i]), 0.75) / norm;
    }
  }
  return table;
}

TEST(NegativeSamplerTest, MatchesClassicTableSlotForSlot) {
  constexpr size_t kTable = 1 << 16;  // small enough to compare exhaustively
  // Skewed counts incl. zero-count words (never sampled) and a hub.
  std::vector<uint64_t> counts = {1000, 0, 3, 500, 1, 0, 42, 7, 7, 2000};
  auto table = ClassicUnigramTable(counts, kTable);
  NegativeSampler sampler;
  sampler.Build(counts, kTable);
  for (size_t t = 0; t < kTable; ++t) {
    ASSERT_EQ(sampler.Sample(t), table[t]) << "slot " << t;
  }
}

TEST(NegativeSamplerTest, UniformCountsCoverVocabulary) {
  constexpr size_t kTable = 1 << 14;
  std::vector<uint64_t> counts(37, 5);
  auto table = ClassicUnigramTable(counts, kTable);
  NegativeSampler sampler;
  sampler.Build(counts, kTable);
  for (size_t t = 0; t < kTable; ++t) {
    ASSERT_EQ(sampler.Sample(t), table[t]) << "slot " << t;
  }
  EXPECT_EQ(sampler.Sample(kTable - 1), 36);
}

TEST(NegativeSamplerTest, SingleWordVocab) {
  NegativeSampler sampler;
  sampler.Build({9}, 1 << 10);
  for (size_t t = 0; t < (1u << 10); t += 97) {
    EXPECT_EQ(sampler.Sample(t), 0);
  }
}

}  // namespace
}  // namespace embed
}  // namespace tdmatch
