// End-to-end integration tests: every scenario generator feeds the full
// TDmatch pipeline (small configurations) and must beat a random ranker by
// a clear margin; the pipeline stages compose without errors.

#include <gtest/gtest.h>

#include "baselines/sbe.h"
#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/audit.h"
#include "datagen/claims.h"
#include "datagen/corona.h"
#include "datagen/imdb.h"
#include "datagen/sts.h"
#include "eval/metrics.h"
#include "eval/taxonomy_metrics.h"
#include "graph/stats.h"
#include "match/combine.h"
#include "match/top_k.h"
#include "testing/options.h"
#include "testing/scenarios.h"

namespace tdmatch {
namespace {

using testutil::RandomMrr;
using testutil::SmallOptions;

double RunMrr(const corpus::Scenario& s, const core::TDmatchOptions& o,
              const kb::ExternalResource* kb = nullptr) {
  core::TDmatchMethod m("W-RW", o, kb);
  auto run = core::Experiment::Run(&m, s);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  if (!run.ok()) return 0;
  return eval::RankingMetrics::MRR(run->rankings, s.gold);
}

TEST(IntegrationTest, ImdbPipelineBeatsRandom) {
  datagen::ImdbOptions gen;
  gen.num_reviewed_movies = 20;
  gen.num_distractor_movies = 30;
  auto data = datagen::ImdbGenerator::Generate(gen);
  double mrr = RunMrr(data.scenario, SmallOptions(false));
  EXPECT_GT(mrr, 4 * RandomMrr(data.scenario.second.NumDocs()));
}

TEST(IntegrationTest, ImdbExpansionRuns) {
  datagen::ImdbOptions gen;
  gen.num_reviewed_movies = 15;
  gen.num_distractor_movies = 20;
  auto data = datagen::ImdbGenerator::Generate(gen);
  core::TDmatchOptions o = SmallOptions(false);
  o.expand = true;
  double mrr = RunMrr(data.scenario, o, data.kb.get());
  EXPECT_GT(mrr, 2.5 * RandomMrr(data.scenario.second.NumDocs()));
}

TEST(IntegrationTest, CoronaBucketingBeatsRandom) {
  datagen::CoronaOptions gen;
  gen.num_countries = 8;
  gen.num_months = 5;
  gen.days_per_month = 4;
  gen.num_generated_claims = 60;
  auto data = datagen::CoronaGenerator::Generate(gen);
  core::TDmatchOptions o = SmallOptions(false);
  o.builder.bucket_numbers = true;
  double mrr = RunMrr(data.scenario, o);
  EXPECT_GT(mrr, 3 * RandomMrr(data.scenario.second.NumDocs()));
}

TEST(IntegrationTest, AuditTaxonomyScores) {
  datagen::AuditOptions gen;
  gen.num_concepts = 50;
  gen.num_documents = 80;
  auto data = datagen::AuditGenerator::Generate(gen);
  core::TDmatchMethod m("W-RW", SmallOptions(true));
  auto run = core::Experiment::Run(&m, data.scenario);
  ASSERT_TRUE(run.ok());
  const corpus::Taxonomy& tax = *data.scenario.second.taxonomy();
  auto node = eval::TaxonomyMetrics::NodeScores(tax, run->rankings,
                                                data.scenario.gold, 3);
  EXPECT_GT(node.f1, 0.2);
  auto exact = eval::TaxonomyMetrics::ExactScores(tax, run->rankings,
                                                  data.scenario.gold, 3);
  EXPECT_LE(exact.f1, node.f1 + 1e-9);  // node score is the soft upper set
}

TEST(IntegrationTest, ClaimsPipelineBeatsRandom) {
  datagen::ClaimsOptions gen;
  gen.num_facts = 200;
  gen.num_queries = 40;
  auto data = datagen::ClaimsGenerator::Generate(gen);
  double mrr = RunMrr(data.scenario, SmallOptions(true));
  EXPECT_GT(mrr, 10 * RandomMrr(data.scenario.second.NumDocs()));
}

TEST(IntegrationTest, StsThresholdMonotonic) {
  // The same configuration must score at least as well at k=3 (stricter
  // gold) as at k=2 — higher-similarity pairs share more surface.
  datagen::StsOptions gen;
  gen.num_pairs = 200;
  gen.threshold = 2;
  auto k2 = datagen::StsGenerator::Generate(gen);
  gen.threshold = 3;
  auto k3 = datagen::StsGenerator::Generate(gen);
  double mrr2 = RunMrr(k2.scenario, SmallOptions(true));
  double mrr3 = RunMrr(k3.scenario, SmallOptions(true));
  EXPECT_GT(mrr2, 0.3);
  EXPECT_GE(mrr3 + 0.1, mrr2);  // allow small noise, expect k3 >= k2 - eps
}

TEST(IntegrationTest, CompressedPipelineStillMatches) {
  datagen::ClaimsOptions gen;
  gen.num_facts = 150;
  gen.num_queries = 30;
  auto data = datagen::ClaimsGenerator::Generate(gen);
  core::TDmatchOptions o = SmallOptions(true);
  o.compression = core::CompressionMode::kMsp;
  o.compression_beta = 0.5;
  core::TDmatchMethod m("W-RW", o);
  auto run = core::Experiment::Run(&m, data.scenario);
  ASSERT_TRUE(run.ok());
  EXPECT_LT(m.last_result().compressed.nodes,
            m.last_result().expanded.nodes);
  double mrr = eval::RankingMetrics::MRR(run->rankings, data.scenario.gold);
  EXPECT_GT(mrr, 5 * RandomMrr(data.scenario.second.NumDocs()));
}

TEST(IntegrationTest, CombinationNotWorseThanWorstComponent) {
  datagen::ClaimsOptions gen;
  gen.num_facts = 150;
  gen.num_queries = 30;
  auto data = datagen::ClaimsGenerator::Generate(gen);
  const corpus::Scenario& s = data.scenario;

  core::TDmatchMethod wrw("W-RW", SmallOptions(true));
  auto wrw_run = core::Experiment::Run(&wrw, s);
  ASSERT_TRUE(wrw_run.ok());
  baselines::HashSentenceEncoder sbe;
  auto sbe_run = core::Experiment::Run(&sbe, s);
  ASSERT_TRUE(sbe_run.ok());

  std::vector<eval::Ranking> combined(s.first.NumDocs());
  for (size_t q = 0; q < s.first.NumDocs(); ++q) {
    combined[q] = match::TopK::FullRanking(
        match::ScoreCombiner::AverageNormalized(wrw_run->scores[q],
                                                sbe_run->scores[q]));
  }
  double mrr_wrw = eval::RankingMetrics::MRR(wrw_run->rankings, s.gold);
  double mrr_sbe = eval::RankingMetrics::MRR(sbe_run->rankings, s.gold);
  double mrr_comb = eval::RankingMetrics::MRR(combined, s.gold);
  EXPECT_GE(mrr_comb + 0.05, std::min(mrr_wrw, mrr_sbe));
}

TEST(IntegrationTest, GraphStatisticsOnRealScenario) {
  datagen::ClaimsOptions gen;
  gen.num_facts = 100;
  gen.num_queries = 20;
  auto data = datagen::ClaimsGenerator::Generate(gen);
  graph::GraphBuilder builder{graph::BuilderOptions{}};
  auto g = builder.Build(data.scenario.first, data.scenario.second);
  ASSERT_TRUE(g.ok());
  auto stats = graph::ComputeStatistics(*g, 32, 3);
  EXPECT_EQ(stats.metadata_doc_nodes, 120u);
  EXPECT_GT(stats.avg_degree, 1.0);
  EXPECT_GT(stats.metadata_reachability, 0.5);
}

}  // namespace
}  // namespace tdmatch
