#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/imdb.h"
#include "datagen/sts.h"
#include "eval/metrics.h"
#include "kb/synthetic_kb.h"
#include "match/top_k.h"
#include "testing/options.h"
#include "testing/scenarios.h"

namespace tdmatch {
namespace core {
namespace {

using testutil::FastOptions;
using testutil::MiniScenario;

TEST(TDmatchTest, EndToEndBeatsRandomByFar) {
  auto s = MiniScenario(20);
  TDmatch engine(FastOptions());
  auto result = engine.Run(s.first, s.second);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->scores.size(), 20u);
  std::vector<eval::Ranking> rankings;
  for (const auto& scores : result->scores) {
    EXPECT_EQ(scores.size(), 20u);
    rankings.push_back(match::TopK::FullRanking(scores));
  }
  // Random MRR over 20 candidates is ~0.18; the graph signal is strong.
  EXPECT_GT(eval::RankingMetrics::MRR(rankings, s.gold), 0.5);
}

TEST(TDmatchTest, ResultCarriesStatsAndTimings) {
  auto s = MiniScenario(10);
  TDmatch engine(FastOptions());
  auto result = engine.Run(s.first, s.second);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->original.nodes, 10u);
  EXPECT_GT(result->original.edges, 0u);
  EXPECT_EQ(result->original.nodes, result->expanded.nodes);  // no expand
  EXPECT_EQ(result->expanded.nodes, result->compressed.nodes);
  EXPECT_GE(result->train_seconds, 0.0);
}

TEST(TDmatchTest, DeterministicScores) {
  auto s = MiniScenario(8);
  TDmatchOptions o = FastOptions();
  o.walks.threads = 1;
  o.w2v.threads = 1;
  TDmatch a(o), b(o);
  auto ra = a.Run(s.first, s.second);
  auto rb = b.Run(s.first, s.second);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->scores, rb->scores);
}

TEST(TDmatchTest, ThreadsOverrideNeverChangesScores) {
  // The master `threads` override fans out to the walker and the
  // block-parallel trainer, both bit-deterministic in the thread count:
  // any override must reproduce the exact same scores.
  auto s = MiniScenario(8);
  std::vector<std::vector<std::vector<double>>> all;
  for (size_t threads : {1u, 2u, 8u}) {
    TDmatchOptions o = FastOptions();
    o.threads = threads;
    TDmatch engine(o);
    auto r = engine.Run(s.first, s.second);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    all.push_back(r->scores);
  }
  EXPECT_EQ(all[0], all[1]);
  EXPECT_EQ(all[0], all[2]);
}

TEST(TDmatchTest, ExpansionRequiresResource) {
  auto s = MiniScenario(5);
  TDmatchOptions o = FastOptions();
  o.expand = true;
  TDmatch engine(o);  // no resource passed
  EXPECT_TRUE(engine.Run(s.first, s.second).status().IsInvalidArgument());
}

TEST(TDmatchTest, SynonymMergeRequiresLexicon) {
  auto s = MiniScenario(5);
  TDmatchOptions o = FastOptions();
  o.use_synonym_merge = true;
  TDmatch engine(o);
  EXPECT_TRUE(engine.Run(s.first, s.second).status().IsInvalidArgument());
}

TEST(TDmatchTest, ExpansionChangesGraphSize) {
  auto s = MiniScenario(10);
  kb::SyntheticKB kb;
  // Relate every entity to two fresh labels; at least some expansion edges
  // must survive sink removal via shared neighbors.
  for (int i = 0; i < 10; ++i) {
    std::string e = "entity" + std::to_string(i);
    kb.AddRelation(e, "famous", "isA");
    kb.AddRelation(e, "person", "isA");
  }
  TDmatchOptions o = FastOptions();
  o.expand = true;
  // Without sink pruning the KB edges are strictly additive; with it, the
  // peeled degree-1 n-gram nodes can mask the additions.
  o.expansion.remove_sinks = false;
  TDmatch engine(o, &kb);
  auto result = engine.Run(s.first, s.second);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->expanded.edges, result->original.edges);
  EXPECT_GT(result->expanded.nodes, result->original.nodes);
}

TEST(TDmatchTest, CompressionShrinksGraph) {
  auto s = MiniScenario(15);
  TDmatchOptions o = FastOptions();
  o.compression = CompressionMode::kMsp;
  o.compression_beta = 0.2;
  TDmatch engine(o);
  auto result = engine.Run(s.first, s.second);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->compressed.nodes, result->expanded.nodes);
  // Matching still works on the compressed graph.
  std::vector<eval::Ranking> rankings;
  for (const auto& scores : result->scores) {
    rankings.push_back(match::TopK::FullRanking(scores));
  }
  EXPECT_GT(eval::RankingMetrics::MRR(rankings, s.gold), 0.2);
}

TEST(TDmatchTest, TextTaskDefaultsUseCbow) {
  TDmatchOptions o = TDmatchOptions::TextTaskDefaults();
  EXPECT_TRUE(o.w2v.cbow);
  EXPECT_EQ(o.w2v.window, 15);
}

// ---------------------------------------------------------------------------
// Experiment harness
// ---------------------------------------------------------------------------

TEST(ExperimentTest, UnsupervisedRunScoresEveryQuery) {
  auto s = MiniScenario(12);
  TDmatchMethod m("W-RW", FastOptions());
  auto run = Experiment::Run(&m, s);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->rankings.size(), 12u);
  for (const auto& r : run->rankings) EXPECT_EQ(r.size(), 12u);
  EXPECT_GT(run->train_seconds, 0.0);
}

TEST(ExperimentTest, ReportComputesAllMetrics) {
  auto s = MiniScenario(12);
  TDmatchMethod m("W-RW", FastOptions());
  auto run = Experiment::Run(&m, s);
  ASSERT_TRUE(run.ok());
  auto report = Experiment::Report("W-RW", *run, s);
  EXPECT_EQ(report.method, "W-RW");
  EXPECT_GE(report.mrr, 0.0);
  EXPECT_LE(report.mrr, 1.0);
  EXPECT_LE(report.map1, report.map20 + 1e-9);
  EXPECT_LE(report.hp1, report.hp20 + 1e-9);
  EXPECT_FALSE(Experiment::FormatRow(report).empty());
  EXPECT_FALSE(Experiment::Header().empty());
}

/// Oracle supervised method: perfect on any query, used to validate the
/// cross-validation plumbing.
class OracleMethod : public match::MatchMethod {
 public:
  util::Status Fit(const corpus::Scenario& scenario,
                   const std::vector<int32_t>& train) override {
    if (train.empty()) {
      return util::Status::InvalidArgument("supervised");
    }
    scenario_ = &scenario;
    return util::Status::OK();
  }
  std::vector<double> ScoreCandidates(size_t q) const override {
    std::vector<double> scores(scenario_->second.NumDocs(), 0.0);
    for (int32_t g : scenario_->gold[q]) {
      scores[static_cast<size_t>(g)] = 1.0;
    }
    return scores;
  }
  std::string name() const override { return "oracle"; }
  bool supervised() const override { return true; }

 private:
  const corpus::Scenario* scenario_ = nullptr;
};

TEST(ExperimentTest, SupervisedCvCoversAllQueries) {
  auto s = MiniScenario(15);
  OracleMethod oracle;
  auto run = Experiment::Run(&oracle, s, HarnessOptions{.folds = 5});
  ASSERT_TRUE(run.ok());
  auto report = Experiment::Report("oracle", *run, s);
  EXPECT_DOUBLE_EQ(report.mrr, 1.0);  // every query scored by some fold
  EXPECT_DOUBLE_EQ(report.hp1, 1.0);
}

}  // namespace
}  // namespace core
}  // namespace tdmatch
