// Tests for the online serving subsystem: snapshot persistence, the
// exact/IVF index pair, and the batched QueryEngine.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "embed/io.h"
#include "serve/index.h"
#include "serve/ivf_index.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace tdmatch {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A table whose floats exercise awkward bit patterns (subnormal, -0,
/// non-representable decimals) so round-trip equality is a real check.
embed::EmbeddingTable AwkwardTable() {
  embed::EmbeddingTable t(3);
  t.Put("plain", {1.0f, 2.0f, 3.0f});
  t.Put("label with spaces", {-0.0f, 1e-42f, 0.1f});
  t.Put("thirds", {1.0f / 3.0f, -2.0f / 3.0f, 1e20f});
  return t;
}

serve::SnapshotMeta DemoMeta() {
  serve::SnapshotMeta meta;
  meta.scenario = "unit-test";
  meta.Set("seed", "4242");
  meta.Set("candidate_prefix", "__D1:");
  return meta;
}

// ---------------------------------------------------------------------------
// serve::SnapshotIo
// ---------------------------------------------------------------------------

TEST(SnapshotTest, RoundTripIsBitExact) {
  const std::string path = TempPath("snap_roundtrip.tds");
  const embed::EmbeddingTable table = AwkwardTable();
  ASSERT_TRUE(serve::SnapshotIo::Write(table, DemoMeta(), path).ok());

  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->meta.scenario, "unit-test");
  EXPECT_EQ(snap->meta.Find("seed"), "4242");
  EXPECT_EQ(snap->meta.Find("candidate_prefix"), "__D1:");
  EXPECT_EQ(snap->meta.Find("missing-key"), "");
  EXPECT_EQ(snap->table.dim(), table.dim());
  // Labels keep their insertion order and every float keeps its bits.
  ASSERT_EQ(snap->table.Labels(), table.Labels());
  for (const auto& label : table.Labels()) {
    const std::vector<float>* a = table.Get(label);
    const std::vector<float>* b = snap->table.Get(label);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->size(), b->size());
    EXPECT_EQ(std::memcmp(a->data(), b->data(),
                          a->size() * sizeof(float)),
              0)
        << "float bits changed for " << label;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsCorruptedByte) {
  const std::string path = TempPath("snap_corrupt.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  WriteFileBytes(path, bytes);

  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsIOError());
  EXPECT_NE(snap.status().message().find("CRC"), std::string::npos)
      << snap.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  const std::string path = TempPath("snap_trunc.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), path).ok());
  const std::string bytes = ReadFileBytes(path);
  // Every truncation point must fail — either too small, or CRC mismatch.
  for (size_t keep : {size_t{0}, size_t{5}, size_t{14}, bytes.size() / 2,
                      bytes.size() - 1}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    EXPECT_FALSE(serve::SnapshotIo::Read(path).ok()) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsBadMagicVersionAndEndianness) {
  const std::string path = TempPath("snap_header.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), path).ok());
  const std::string good = ReadFileBytes(path);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  WriteFileBytes(path, bad_magic);
  auto r1 = serve::SnapshotIo::Read(path);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("magic"), std::string::npos);

  std::string bad_version = good;
  bad_version[4] = 99;  // version lives at offset 4
  WriteFileBytes(path, bad_version);
  auto r2 = serve::SnapshotIo::Read(path);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("version"), std::string::npos);

  std::string bad_endian = good;
  std::swap(bad_endian[8], bad_endian[11]);  // marker lives at offset 8
  WriteFileBytes(path, bad_endian);
  auto r3 = serve::SnapshotIo::Read(path);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("endian"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsAbsurdDeclaredCountsEvenWithValidCrc) {
  // A hostile file can carry a correct CRC over garbage counts; the reader
  // must bound-check the declared sizes before allocating from them
  // instead of dying on bad_alloc.
  const std::string path = TempPath("snap_hostile.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), path).ok());
  std::string bytes = ReadFileBytes(path);
  // Body layout: u32 dim at offset 12, u64 count at offset 16.
  const uint64_t absurd = uint64_t{1} << 60;
  std::memcpy(&bytes[16], &absurd, sizeof(absurd));
  const uint32_t crc = util::Crc32(bytes.data() + 12, bytes.size() - 16);
  std::memcpy(&bytes[bytes.size() - 4], &crc, sizeof(crc));
  WriteFileBytes(path, bytes);

  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_TRUE(snap.status().IsInvalidArgument()) << snap.status().ToString();
  EXPECT_NE(snap.status().message().find("cannot fit"), std::string::npos)
      << snap.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, ConvertsTextFormatBothWays) {
  const std::string text1 = TempPath("snap_conv1.txt");
  const std::string snap_path = TempPath("snap_conv.tds");
  const std::string text2 = TempPath("snap_conv2.txt");
  ASSERT_TRUE(embed::EmbeddingIo::Save(AwkwardTable(), text1).ok());

  ASSERT_TRUE(serve::SnapshotIo::ConvertTextToSnapshot(text1, DemoMeta(),
                                                       snap_path)
                  .ok());
  auto snap = serve::SnapshotIo::Read(snap_path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->table.size(), 3u);
  EXPECT_NE(snap->table.Get("label with spaces"), nullptr);

  ASSERT_TRUE(
      serve::SnapshotIo::ConvertSnapshotToText(snap_path, text2).ok());
  auto back = embed::EmbeddingIo::Load(text2);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 3u);
  std::remove(text1.c_str());
  std::remove(snap_path.c_str());
  std::remove(text2.c_str());
}

// ---------------------------------------------------------------------------
// serve::ExactIndex / serve::IvfIndex
// ---------------------------------------------------------------------------

/// `n` clustered unit-ish vectors around `centers` seeded anchors.
std::vector<std::vector<float>> ClusteredVectors(size_t n, int dim,
                                                 size_t centers,
                                                 uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> anchor(centers);
  for (auto& c : anchor) {
    c.resize(static_cast<size_t>(dim));
    for (auto& x : c) x = static_cast<float>(rng.Gaussian());
  }
  std::vector<std::vector<float>> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i].resize(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      out[i][static_cast<size_t>(d)] =
          anchor[i % centers][static_cast<size_t>(d)] +
          0.3f * static_cast<float>(rng.Gaussian());
    }
  }
  return out;
}

std::shared_ptr<const serve::VectorMatrix> MatrixOf(
    const std::vector<std::vector<float>>& vectors, int dim) {
  std::vector<const std::vector<float>*> rows;
  rows.reserve(vectors.size());
  for (const auto& v : vectors) rows.push_back(&v);
  return std::make_shared<const serve::VectorMatrix>(
      serve::VectorMatrix::FromRows(rows, dim));
}

TEST(ExactIndexTest, RanksByCosineWithTieBreak) {
  std::vector<std::vector<float>> vecs = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {1.0f, 1.0f}, {1.0f, 0.0f}};
  serve::ExactIndex index(MatrixOf(vecs, 2));
  auto top = index.SearchVec({1.0f, 0.0f}, 3);
  ASSERT_EQ(top.size(), 3u);
  // Ids 0 and 3 tie at cosine 1; the lower id wins.
  EXPECT_EQ(top[0].index, 0);
  EXPECT_EQ(top[1].index, 3);
  EXPECT_EQ(top[2].index, 2);
  EXPECT_NEAR(top[0].score, 1.0, 1e-6);
}

TEST(ExactIndexTest, FilterRestrictsCandidates) {
  std::vector<std::vector<float>> vecs = {
      {1.0f, 0.0f}, {0.9f, 0.1f}, {0.0f, 1.0f}};
  serve::ExactIndex index(MatrixOf(vecs, 2));
  std::vector<char> allowed = {0, 1, 1};
  auto top = index.SearchVec({1.0f, 0.0f}, 3, &allowed);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 1);
  EXPECT_EQ(top[1].index, 2);
}

TEST(IvfIndexTest, FullProbeMatchesExactExactly) {
  const int dim = 12;
  const auto vecs = ClusteredVectors(400, dim, 10, 99);
  auto matrix = MatrixOf(vecs, dim);
  serve::ExactIndex exact(matrix);
  serve::IvfOptions opts;
  opts.nlist = 16;
  opts.seed = 5;
  serve::IvfIndex ivf(matrix, opts);
  ivf.set_nprobe(ivf.nlist());  // probe everything ⇒ must equal exact

  util::Rng rng(123);
  for (int q = 0; q < 20; ++q) {
    const auto& query = vecs[rng.UniformInt(vecs.size())];
    const auto want = exact.SearchVec(query, 7);
    const auto got = ivf.SearchVec(query, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].index, want[i].index) << "query " << q << " rank "
                                             << i;
      EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
    }
  }
}

TEST(IvfIndexTest, RecallAt5IsAtLeast95Percent) {
  const int dim = 16;
  const auto vecs = ClusteredVectors(800, dim, 24, 4242);
  auto matrix = MatrixOf(vecs, dim);
  serve::ExactIndex exact(matrix);
  serve::IvfOptions opts;
  opts.seed = 4242;
  opts.nprobe = 8;
  serve::IvfIndex ivf(matrix, opts);

  util::Rng rng(7);
  std::vector<std::vector<float>> queries(60);
  for (auto& q : queries) {
    q = vecs[rng.UniformInt(vecs.size())];
    for (auto& x : q) x += 0.1f * static_cast<float>(rng.Gaussian());
  }
  const double recall = serve::MeasureRecallAtK(ivf, exact, queries, 5);
  EXPECT_GE(recall, 0.95) << "nlist=" << ivf.nlist()
                          << " nprobe=" << ivf.nprobe();
}

TEST(IvfPqTest, FullProbeFullRerankMatchesExact) {
  const int dim = 12;
  const auto vecs = ClusteredVectors(400, dim, 10, 99);
  auto matrix = MatrixOf(vecs, dim);
  serve::ExactIndex exact(matrix);
  serve::IvfOptions opts;
  opts.nlist = 16;
  opts.seed = 5;
  opts.pq_m = 4;
  opts.pq_rerank = 400;  // re-rank everything ⇒ ADC error cannot matter
  serve::IvfIndex pq(matrix, opts);
  ASSERT_TRUE(pq.pq_enabled());
  pq.set_nprobe(pq.nlist());

  util::Rng rng(123);
  for (int q = 0; q < 20; ++q) {
    const auto& query = vecs[rng.UniformInt(vecs.size())];
    const auto want = exact.SearchVec(query, 7);
    const auto got = pq.SearchVec(query, 7);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].index, want[i].index) << "query " << q << " rank "
                                             << i;
      EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
    }
  }
}

TEST(IvfPqTest, CompressedRecallClearsFloor) {
  const int dim = 16;
  const auto vecs = ClusteredVectors(800, dim, 24, 4242);
  auto matrix = MatrixOf(vecs, dim);
  serve::ExactIndex exact(matrix);
  serve::IvfOptions flat_opts;
  flat_opts.seed = 4242;
  flat_opts.nprobe = 8;
  serve::IvfIndex flat(matrix, flat_opts);
  serve::IvfOptions pq_opts = flat_opts;
  pq_opts.pq_m = 8;
  serve::IvfIndex pq(matrix, pq_opts);

  // The codes must actually be smaller than the f32 lists they replace
  // (codebook included), and the exact re-rank must hold the quality bar
  // the serving config promises.
  EXPECT_LT(pq.ListBytes(), flat.ListBytes());
  util::Rng rng(7);
  std::vector<std::vector<float>> queries(60);
  for (auto& q : queries) {
    q = vecs[rng.UniformInt(vecs.size())];
    for (auto& x : q) x += 0.1f * static_cast<float>(rng.Gaussian());
  }
  const double recall = serve::MeasureRecallAtK(pq, exact, queries, 5);
  EXPECT_GE(recall, 0.95) << "nlist=" << pq.nlist();
}

TEST(IvfPqTest, SerializeRoundTripSearchesIdentically) {
  const int dim = 16;
  const auto vecs = ClusteredVectors(500, dim, 16, 321);
  auto matrix = MatrixOf(vecs, dim);
  for (size_t pq_m : {size_t{0}, size_t{4}}) {  // flat and PQ wire paths
    serve::IvfOptions opts;
    opts.seed = 11;
    opts.nprobe = 4;
    opts.pq_m = pq_m;
    serve::IvfIndex trained(matrix, opts);
    const uint32_t crc = 0xfeedbeef;
    const std::string bytes = trained.Serialize(crc);

    auto loaded = serve::IvfIndex::Deserialize(bytes, matrix, crc, opts);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    util::Rng rng(55);
    for (int q = 0; q < 15; ++q) {
      const auto& query = vecs[rng.UniformInt(vecs.size())];
      const auto want = trained.SearchVec(query, 5);
      const auto got = (*loaded)->SearchVec(query, 5);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].index, want[i].index) << "pq_m=" << pq_m;
        EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
      }
    }
    // And the reloaded index re-serializes to the same bytes.
    EXPECT_EQ((*loaded)->Serialize(crc), bytes);
  }
}

TEST(IvfPqTest, DeserializeRejectsHostileSections) {
  const int dim = 8;
  const auto vecs = ClusteredVectors(100, dim, 6, 13);
  auto matrix = MatrixOf(vecs, dim);
  serve::IvfOptions opts;
  opts.seed = 3;
  serve::IvfIndex trained(matrix, opts);
  const uint32_t crc = 42;
  const std::string good = trained.Serialize(crc);
  auto reject = [&](const std::string& bytes, const char* what) {
    auto r = serve::IvfIndex::Deserialize(bytes, matrix, crc, opts);
    EXPECT_FALSE(r.ok()) << "accepted " << what;
  };

  // Stale fingerprint: section built over a different candidate set.
  EXPECT_FALSE(
      serve::IvfIndex::Deserialize(good, matrix, crc + 1, opts).ok());
  // Every truncation point must fail (no over-read, no partial adopt).
  for (size_t keep : {size_t{0}, size_t{3}, size_t{16}, good.size() / 2,
                      good.size() - 1}) {
    reject(good.substr(0, keep), "truncation");
  }
  reject(good + "x", "trailing garbage");

  // Corrupt each fixed header field in place. Layout: u32 version,
  // u32 labels_crc, u32 dim, u64 n, u64 nlist, u32 pq_m.
  auto with_u32 = [&](size_t off, uint32_t v) {
    std::string b = good;
    std::memcpy(&b[off], &v, sizeof(v));
    return b;
  };
  reject(with_u32(0, 999), "bad wire version");
  reject(with_u32(8, static_cast<uint32_t>(dim) + 1), "wrong dim");
  reject(with_u32(12, 101), "wrong n (low word)");
  reject(with_u32(28, 3), "pq_m not dividing dim");

  // Structural attacks on the id/offset arrays (flat layout, so offsets
  // start after the header + centroid block).
  const size_t centroids_off = 32;
  const size_t offsets_off =
      centroids_off + trained.nlist() * static_cast<size_t>(dim) * 4;
  const size_t ids_off = offsets_off + (trained.nlist() + 1) * 8;
  {
    std::string b = good;  // non-monotone offsets
    const uint64_t big = 1ull << 40;
    std::memcpy(&b[offsets_off + 8], &big, sizeof(big));
    reject(b, "non-monotone offsets");
  }
  {
    std::string b = good;  // id out of range
    const int32_t bad_id = 100;
    std::memcpy(&b[ids_off], &bad_id, sizeof(bad_id));
    reject(b, "out-of-range id");
  }
  {
    std::string b = good;  // duplicated id
    int32_t first;
    std::memcpy(&first, &b[ids_off], sizeof(first));
    std::memcpy(&b[ids_off + 4], &first, sizeof(first));
    reject(b, "duplicate id");
  }
}

TEST(IvfIndexTest, TrainingIsThreadCountInvariant) {
  const int dim = 8;
  const auto vecs = ClusteredVectors(300, dim, 12, 11);
  auto matrix = MatrixOf(vecs, dim);
  serve::IvfOptions opts;
  opts.seed = 31;
  opts.nprobe = 3;
  opts.threads = 1;
  serve::IvfIndex one(matrix, opts);
  opts.threads = 8;
  serve::IvfIndex eight(matrix, opts);

  ASSERT_EQ(one.nlist(), eight.nlist());
  for (size_t c = 0; c < one.nlist(); ++c) {
    EXPECT_EQ(one.ListSize(c), eight.ListSize(c)) << "cell " << c;
  }
  util::Rng rng(77);
  for (int q = 0; q < 15; ++q) {
    const auto& query = vecs[rng.UniformInt(vecs.size())];
    const auto a = one.SearchVec(query, 5);
    const auto b = eight.SearchVec(query, 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
    }
  }
}

// ---------------------------------------------------------------------------
// serve::QueryEngine
// ---------------------------------------------------------------------------

/// Snapshot with 2-d geometry: candidates c<i> fan around the circle,
/// queries q<i> sit on top of candidate i.
serve::Snapshot GeometricSnapshot(size_t num_candidates) {
  serve::Snapshot snap;
  snap.meta.scenario = "geometry";
  snap.table = embed::EmbeddingTable(2);
  for (size_t i = 0; i < num_candidates; ++i) {
    const float angle =
        static_cast<float>(i) / static_cast<float>(num_candidates) * 3.1f;
    const std::vector<float> v = {std::cos(angle), std::sin(angle)};
    snap.table.Put("c" + std::to_string(i), v);
    snap.table.Put("q" + std::to_string(i), v);
  }
  return snap;
}

TEST(QueryEngineTest, QueryFindsNearestCandidates) {
  auto engine = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(10),
                                                   "c");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->num_candidates(), 10u);

  auto top = engine->Query("q3", 3);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->size(), 3u);
  EXPECT_EQ((*top)[0].label, "c3");
  EXPECT_NEAR((*top)[0].score, 1.0, 1e-6);
  // Neighbors on the circle come next.
  EXPECT_TRUE((*top)[1].label == "c2" || (*top)[1].label == "c4");

  EXPECT_TRUE(engine->Query("no-such-label").status().IsNotFound());
}

TEST(QueryEngineTest, FilteredQueryHonorsBlock) {
  auto engine = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(10),
                                                   "c");
  ASSERT_TRUE(engine.ok());
  auto top = engine->QueryFiltered("q3", {"c7", "c8", "not-a-candidate"}, 5);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].label, "c7");  // nearer to q3 than c8
  EXPECT_EQ((*top)[1].label, "c8");

  auto none = engine->QueryFiltered("q3", {"not-a-candidate"}, 5);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(QueryEngineTest, FilteredQueryFindsAllowedOutsideProbedCells) {
  // With nprobe=1 an IVF scan would only see the query's own cell; the
  // filtered path must still return an allowed candidate on the far side
  // of the space, because it always runs on the exact index.
  serve::QueryEngineOptions opts;
  opts.ivf.nprobe = 1;
  opts.ivf.nlist = 8;
  auto engine = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(40),
                                                   "c", opts);
  ASSERT_TRUE(engine.ok());
  auto top = engine->QueryFiltered("q0", {"c39"}, 5);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->size(), 1u);
  EXPECT_EQ((*top)[0].label, "c39");
}

TEST(QueryEngineTest, BuildRejectsBadCandidateSets) {
  EXPECT_FALSE(
      serve::QueryEngine::Build(GeometricSnapshot(4), {}).ok());
  EXPECT_TRUE(serve::QueryEngine::Build(GeometricSnapshot(4),
                                        {"c0", "missing"})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(serve::QueryEngine::Build(GeometricSnapshot(4), {"c0", "c0"})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(serve::QueryEngine::BuildForPrefix(GeometricSnapshot(4), "zz")
                  .status()
                  .IsNotFound());
}

TEST(QueryEngineTest, BatchResultsAreThreadCountInvariant) {
  const size_t n = 40;
  std::vector<std::string> labels;
  for (size_t i = 0; i < n; ++i) labels.push_back("q" + std::to_string(i));
  labels.push_back("unknown-label");  // per-slot error, not batch failure

  std::vector<std::vector<std::pair<std::string, double>>> per_thread_runs;
  for (size_t threads : {1, 4, 8}) {
    serve::QueryEngineOptions opts;
    opts.threads = threads;
    opts.ivf.seed = 4242;
    auto engine = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(n),
                                                     "c", opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    auto results = engine->QueryBatch(labels, 5);
    ASSERT_EQ(results.size(), labels.size());

    // Flatten to (label, score) so runs compare exactly.
    std::vector<std::pair<std::string, double>> flat;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        ASSERT_EQ(labels[i], "unknown-label");
        flat.emplace_back("<error>", 0.0);
        continue;
      }
      for (const auto& m : *results[i]) {
        flat.emplace_back(m.label, m.score);
      }
    }
    per_thread_runs.push_back(std::move(flat));
  }
  ASSERT_EQ(per_thread_runs.size(), 3u);
  EXPECT_EQ(per_thread_runs[0], per_thread_runs[1]);
  EXPECT_EQ(per_thread_runs[0], per_thread_runs[2]);
}

TEST(QueryEngineTest, ExactModeAvailableWithoutIvf) {
  serve::QueryEngineOptions opts;
  opts.build_ivf = false;
  auto engine = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(6), "c",
                                                   opts);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->has_ivf());
  auto top = engine->Query("q2", 2);  // kApprox falls back to exact
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].label, "c2");
}

// ---------------------------------------------------------------------------
// Snapshot sections (format v2) + engine adoption of the "ivfpq" section
// ---------------------------------------------------------------------------

TEST(SnapshotSectionsTest, SectionFreeWriteStaysByteIdenticalV1) {
  const std::string p1 = TempPath("snap_v1.tds");
  const std::string p2 = TempPath("snap_v1_sections_overload.tds");
  const embed::EmbeddingTable table = AwkwardTable();
  ASSERT_TRUE(serve::SnapshotIo::Write(table, DemoMeta(), p1).ok());
  ASSERT_TRUE(serve::SnapshotIo::Write(table, DemoMeta(), {}, p2).ok());
  // No sections ⇒ the old v1 format, byte for byte: pre-existing
  // snapshots and tools notice nothing.
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(SnapshotSectionsTest, SectionsRoundTripThroughIoAndView) {
  const std::string path = TempPath("snap_v2.tds");
  const std::string payload("\x01\x00\xffraw bytes\x00tail", 17);
  const std::vector<std::pair<std::string, std::string>> sections = {
      {"ivfpq", payload}, {"notes", "hello"}};
  ASSERT_TRUE(
      serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(), sections, path)
          .ok());

  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_NE(snap->Section("ivfpq"), nullptr);
  EXPECT_EQ(*snap->Section("ivfpq"), payload);
  ASSERT_NE(snap->Section("notes"), nullptr);
  EXPECT_EQ(*snap->Section("notes"), "hello");
  EXPECT_EQ(snap->Section("missing"), nullptr);
  // The table payload itself is untouched by trailing sections.
  EXPECT_EQ(snap->table.Labels(), AwkwardTable().Labels());

  auto view = serve::SnapshotView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_NE((*view)->Section("ivfpq"), nullptr);
  EXPECT_EQ(*(*view)->Section("ivfpq"), payload);
  EXPECT_EQ((*view)->Section("missing"), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotSectionsTest, CorruptedSectionFailsCrc) {
  const std::string path = TempPath("snap_v2_corrupt.tds");
  ASSERT_TRUE(serve::SnapshotIo::Write(AwkwardTable(), DemoMeta(),
                                       {{"ivfpq", "payload-bytes"}}, path)
                  .ok());
  std::string bytes = ReadFileBytes(path);
  // Flip a bit inside the appended section region (near the end, before
  // the trailing CRC): sections sit inside the checksummed span.
  bytes[bytes.size() - 8] ^= 0x10;
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(serve::SnapshotIo::Read(path).ok());
  EXPECT_FALSE(serve::SnapshotView::Open(path).ok());
  std::remove(path.c_str());
}

TEST(QueryEngineTest, AdoptsIvfSectionFromSnapshot) {
  // Train once, persist the index as a section, rebuild from disk: the
  // second engine must adopt (no k-means) and answer identically.
  auto trained = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(10),
                                                    "c");
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_FALSE(trained->ivf_from_snapshot());
  const std::string section = trained->SerializeIvfSection();
  ASSERT_FALSE(section.empty());

  const std::string path = TempPath("snap_adopt.tds");
  serve::Snapshot src = GeometricSnapshot(10);
  ASSERT_TRUE(serve::SnapshotIo::Write(
                  src.table, src.meta,
                  {{serve::QueryEngine::kIvfSectionTag, section}}, path)
                  .ok());
  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap.ok());
  auto adopted = serve::QueryEngine::BuildForPrefix(std::move(*snap), "c");
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_TRUE(adopted->ivf_from_snapshot());

  for (int i = 0; i < 10; ++i) {
    const std::string q = "q" + std::to_string(i);
    auto want = trained->Query(q, 3);
    auto got = adopted->Query(q, 3);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(got->size(), want->size());
    for (size_t r = 0; r < want->size(); ++r) {
      EXPECT_EQ((*got)[r].label, (*want)[r].label) << q;
      EXPECT_DOUBLE_EQ((*got)[r].score, (*want)[r].score);
    }
  }

  // The mmap path adopts too.
  auto view = serve::SnapshotView::Open(path);
  ASSERT_TRUE(view.ok());
  auto from_view = serve::QueryEngine::BuildFromView(*view, "c");
  ASSERT_TRUE(from_view.ok()) << from_view.status().ToString();
  EXPECT_TRUE(from_view->ivf_from_snapshot());
  std::remove(path.c_str());
}

TEST(QueryEngineTest, FallsBackToTrainingOnStaleSection) {
  // Section built over the "c" candidates, engine built over "q": the
  // fingerprint mismatch must be detected and the engine must train its
  // own index instead of serving another candidate set's cells.
  auto trained = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(10),
                                                    "c");
  ASSERT_TRUE(trained.ok());
  const std::string path = TempPath("snap_stale.tds");
  serve::Snapshot src = GeometricSnapshot(10);
  ASSERT_TRUE(serve::SnapshotIo::Write(
                  src.table, src.meta,
                  {{serve::QueryEngine::kIvfSectionTag,
                    trained->SerializeIvfSection()}},
                  path)
                  .ok());
  auto snap = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap.ok());
  auto engine = serve::QueryEngine::BuildForPrefix(std::move(*snap), "q");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE(engine->ivf_from_snapshot());
  EXPECT_TRUE(engine->has_ivf());
  auto top = engine->Query("c3", 1);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].label, "q3");

  // An engine told not to adopt trains even when the section matches.
  auto snap2 = serve::SnapshotIo::Read(path);
  ASSERT_TRUE(snap2.ok());
  serve::QueryEngineOptions no_adopt;
  no_adopt.use_snapshot_index = false;
  auto opted_out = serve::QueryEngine::BuildForPrefix(std::move(*snap2), "c",
                                                      no_adopt);
  ASSERT_TRUE(opted_out.ok());
  EXPECT_FALSE(opted_out->ivf_from_snapshot());
  std::remove(path.c_str());
}

TEST(QueryEngineTest, QueryVectorValidatesDim) {
  auto engine = serve::QueryEngine::BuildForPrefix(GeometricSnapshot(4), "c");
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->QueryVector({1.0f, 0.0f, 0.0f})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tdmatch
