#include <gtest/gtest.h>

#include "baselines/embedding_baselines.h"
#include "baselines/features.h"
#include "baselines/lbert.h"
#include "baselines/linear_model.h"
#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "embed/embedding_table.h"
#include "eval/metrics.h"
#include "match/top_k.h"
#include "testing/scenarios.h"
#include "util/rng.h"

namespace tdmatch {
namespace baselines {
namespace {

using testutil::AllQueries;
using testutil::TinyScenario;
using testutil::TrainableScenario;

// ---------------------------------------------------------------------------
// LogisticRegression / MLP
// ---------------------------------------------------------------------------

std::vector<Example> LinearlySeparable(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Example> out;
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(-1, 1);
    double y = rng.Uniform(-1, 1);
    out.push_back({{x, y}, x + y > 0 ? 1.0 : 0.0});
  }
  return out;
}

TEST(LogRegTest, LearnsLinearBoundary) {
  LogisticRegression lr;
  ASSERT_TRUE(lr.Fit(LinearlySeparable(400, 1)).ok());
  EXPECT_GT(lr.Predict({0.8, 0.8}), 0.8);
  EXPECT_LT(lr.Predict({-0.8, -0.8}), 0.2);
}

TEST(LogRegTest, RejectsEmptyAndInconsistent) {
  LogisticRegression lr;
  EXPECT_TRUE(lr.Fit({}).IsInvalidArgument());
  EXPECT_TRUE(lr.Fit({{{1.0}, 1.0}, {{1.0, 2.0}, 0.0}}).IsInvalidArgument());
}

TEST(LogRegTest, PairwiseRanksPositivesAboveNegatives) {
  util::Rng rng(2);
  std::vector<std::pair<std::vector<double>, std::vector<double>>> pairs;
  for (int i = 0; i < 300; ++i) {
    // positive examples have larger first feature
    pairs.push_back({{rng.Uniform(0.5, 1.0), rng.Uniform()},
                     {rng.Uniform(0.0, 0.5), rng.Uniform()}});
  }
  LogisticRegression lr;
  ASSERT_TRUE(lr.FitPairwise(pairs).ok());
  EXPECT_GT(lr.Decision({0.9, 0.5}), lr.Decision({0.1, 0.5}));
}

TEST(MlpTest, LearnsXorLikeBoundary) {
  // XOR is not linearly separable: the MLP should beat chance.
  util::Rng rng(3);
  std::vector<Example> data;
  for (int i = 0; i < 800; ++i) {
    double x = rng.Uniform(-1, 1);
    double y = rng.Uniform(-1, 1);
    data.push_back({{x, y}, (x > 0) != (y > 0) ? 1.0 : 0.0});
  }
  MlpClassifier::Options o;
  o.hidden = 24;
  o.epochs = 120;
  MlpClassifier mlp(o);
  ASSERT_TRUE(mlp.Fit(data).ok());
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(-1, 1);
    double y = rng.Uniform(-1, 1);
    bool label = (x > 0) != (y > 0);
    correct += (mlp.Predict({x, y}) > 0.5) == label;
  }
  EXPECT_GT(correct, 140);  // well above the 100 of chance
}

// ---------------------------------------------------------------------------
// PairFeatures
// ---------------------------------------------------------------------------

TEST(PairFeaturesTest, MatchingPairScoresHigher) {
  auto s = TinyScenario();
  PairFeatures f;
  f.Fit(s);
  auto good = f.Extract(0, 0);
  auto bad = f.Extract(0, 1);
  ASSERT_EQ(good.size(), PairFeatures::kNumFeatures);
  // TF-IDF cosine and containment should favor the right tuple.
  EXPECT_GT(good[0], bad[0]);
  EXPECT_GT(good[2], bad[2]);
}

TEST(PairFeaturesTest, ColumnFeaturesAlignWithColumns) {
  auto s = TinyScenario();
  PairFeatures f;
  f.Fit(s);
  auto cols = f.ColumnFeatures(0, 0, 3);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_GT(cols[1], 0.0);  // "willis" hits the actor column
  EXPECT_GT(cols[2], 0.0);  // "thriller" hits the genre column
}

TEST(PairFeaturesTest, ColumnFeaturesZeroForTextCandidates) {
  corpus::Scenario s;
  s.first = corpus::Corpus::FromTexts("q", {{"q0", "abc"}});
  s.second = corpus::Corpus::FromTexts("c", {{"c0", "abc"}});
  s.gold = {{0}};
  PairFeatures f;
  f.Fit(s);
  auto cols = f.ColumnFeatures(0, 0, 4);
  for (double v : cols) EXPECT_DOUBLE_EQ(v, 0.0);
}

// ---------------------------------------------------------------------------
// HashSentenceEncoder (S-BE)
// ---------------------------------------------------------------------------

TEST(SbeTest, IdenticalSentencesScoreHighest) {
  auto s = TinyScenario();
  HashSentenceEncoder sbe;
  ASSERT_TRUE(sbe.Fit(s, {}).ok());
  auto v1 = sbe.Encode("willis stars in a thriller");
  auto v2 = sbe.Encode("willis stars in a thriller");
  EXPECT_NEAR(embed::EmbeddingTable::CosineVec(v1, v2), 1.0, 1e-6);
}

TEST(SbeTest, OverlapBeatsNoOverlap) {
  HashSentenceEncoder sbe;
  auto a = sbe.Encode("the quick brown fox");
  auto b = sbe.Encode("the quick brown wolf");
  auto c = sbe.Encode("completely unrelated words here");
  EXPECT_GT(embed::EmbeddingTable::CosineVec(a, b),
            embed::EmbeddingTable::CosineVec(a, c));
}

TEST(SbeTest, RanksGoldAboveRandomOnTinyScenario) {
  auto s = TinyScenario();
  HashSentenceEncoder sbe;
  ASSERT_TRUE(sbe.Fit(s, {}).ok());
  auto scores = sbe.ScoreCandidates(0);
  EXPECT_GT(scores[0], scores[1]);
}

// ---------------------------------------------------------------------------
// W2VEC / D2VEC baselines
// ---------------------------------------------------------------------------

TEST(SerializeDocTest, TableUsesColVal) {
  auto s = TinyScenario();
  std::string serialized = SerializeDoc(s.second, 0);
  EXPECT_NE(serialized.find("[COL] actor [VAL] Willis"), std::string::npos);
  EXPECT_EQ(SerializeDoc(s.first, 0), "willis stars in a thriller");
}

TEST(W2VecBaselineTest, ProducesFullScoreVectors) {
  auto s = TinyScenario();
  Word2VecBaseline m;
  ASSERT_TRUE(m.Fit(s, {}).ok());
  EXPECT_EQ(m.ScoreCandidates(0).size(), 2u);
  EXPECT_EQ(m.ScoreCandidates(1).size(), 2u);
}

TEST(D2VecBaselineTest, ProducesFullScoreVectors) {
  auto s = TinyScenario();
  Doc2VecBaseline m;
  ASSERT_TRUE(m.Fit(s, {}).ok());
  EXPECT_EQ(m.ScoreCandidates(0).size(), 2u);
}

// ---------------------------------------------------------------------------
// Supervised proxies
// ---------------------------------------------------------------------------

TEST(PairwiseRankerTest, RequiresSupervision) {
  auto s = TrainableScenario(10);
  PairwiseRanker r;
  EXPECT_TRUE(r.Fit(s, {}).IsInvalidArgument());
  EXPECT_TRUE(r.supervised());
}

TEST(PairwiseRankerTest, LearnsLexicalMatching) {
  auto s = TrainableScenario(30);
  PairwiseRanker r;
  ASSERT_TRUE(r.Fit(s, AllQueries(30)).ok());
  // On training-distribution queries the gold must rank near the top.
  std::vector<eval::Ranking> rankings;
  for (size_t q = 0; q < 30; ++q) {
    rankings.push_back(match::TopK::FullRanking(r.ScoreCandidates(q)));
  }
  EXPECT_GT(eval::RankingMetrics::MRR(rankings, s.gold), 0.8);
}

TEST(DittoProxyTest, LearnsLexicalMatching) {
  auto s = TrainableScenario(30);
  DittoProxy d;
  ASSERT_TRUE(d.Fit(s, AllQueries(30)).ok());
  std::vector<eval::Ranking> rankings;
  for (size_t q = 0; q < 30; ++q) {
    rankings.push_back(match::TopK::FullRanking(d.ScoreCandidates(q)));
  }
  EXPECT_GT(eval::RankingMetrics::MRR(rankings, s.gold), 0.5);
}

TEST(TapasProxyTest, WorksOnTableScenario) {
  auto s = TinyScenario();
  TapasProxy t(SupervisedOptions{}, 3);
  ASSERT_TRUE(t.Fit(s, {0, 1}).ok());
  EXPECT_EQ(t.ScoreCandidates(0).size(), 2u);
}

TEST(DeepMatcherProxyTest, WorksOnTableScenario) {
  auto s = TinyScenario();
  DeepMatcherProxy d(SupervisedOptions{}, 3);
  ASSERT_TRUE(d.Fit(s, {0, 1}).ok());
  EXPECT_EQ(d.ScoreCandidates(1).size(), 2u);
}

TEST(LBertProxyTest, LearnsFrequentConcepts) {
  // Multi-label: 3 concepts; documents mention the concept word directly.
  corpus::Scenario s;
  corpus::Taxonomy tax;
  auto root = tax.AddConcept("root");
  tax.AddConcept("alpha", root);
  tax.AddConcept("beta", root);
  tax.AddConcept("gamma", root);
  std::vector<corpus::TextDoc> docs;
  util::Rng rng(5);
  for (size_t i = 0; i < 60; ++i) {
    int cid = static_cast<int>(i % 3);
    const char* words[] = {"alpha", "beta", "gamma"};
    docs.push_back({"d" + std::to_string(i),
                    std::string(words[cid]) + " procedure item " +
                        std::to_string(rng.UniformInt(100ULL))});
    s.gold.push_back({cid + 1});
  }
  s.first = corpus::Corpus::FromTexts("docs", std::move(docs));
  s.second = corpus::Corpus::FromTaxonomy("tax", tax);
  LBertProxy m;
  ASSERT_TRUE(m.Fit(s, AllQueries(60)).ok());
  std::vector<eval::Ranking> rankings;
  for (size_t q = 0; q < 60; ++q) {
    rankings.push_back(match::TopK::FullRanking(m.ScoreCandidates(q)));
  }
  EXPECT_GT(eval::RankingMetrics::HasPositiveAtK(rankings, s.gold, 1), 0.8);
}

}  // namespace
}  // namespace baselines
}  // namespace tdmatch
