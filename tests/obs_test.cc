// Tests for the observability layer (util/obs): metrics registry +
// Prometheus exposition, histogram percentile math, request tracing, the
// JSONL logger, and pipeline phase profiling.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "util/json.h"
#include "util/obs/jsonlog.h"
#include "util/obs/metrics.h"
#include "util/obs/phase_profile.h"
#include "util/obs/trace.h"
#include "util/rng.h"

namespace tdmatch {
namespace {

using util::obs::Counter;
using util::obs::Gauge;
using util::obs::Histogram;
using util::obs::LabelSet;
using util::obs::MetricType;
using util::obs::PhaseProfile;
using util::obs::PhaseTimer;
using util::obs::Registry;
using util::obs::Trace;
using util::obs::TraceSampler;

// ---------------------------------------------------------------------------
// Counter / Gauge primitives
// ---------------------------------------------------------------------------

TEST(ObsCounterTest, ConcurrentBumpsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), uint64_t{kThreads} * kPerThread);

  c.Inc(41);
  EXPECT_EQ(c.Value(), uint64_t{kThreads} * kPerThread + 41);
}

TEST(ObsGaugeTest, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      // Small-integer increments are exact in double, so the CAS loop
      // must account for every one of them.
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.Value(), static_cast<double>(kThreads * kPerThread));

  g.Set(-3.25);
  EXPECT_EQ(g.Value(), -3.25);
}

// ---------------------------------------------------------------------------
// Histogram: bucket placement and percentile estimation
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, BucketPlacementAndCounts) {
  Histogram h({1.0, 2.5, 10.0});
  h.Observe(0.5);   // <= 1       -> bucket 0
  h.Observe(1.0);   // == bound   -> bucket 0 (le semantics)
  h.Observe(2.0);   // (1, 2.5]   -> bucket 1
  h.Observe(100.0); // > 10       -> overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // overflow
}

TEST(ObsHistogramTest, BoundsAreSortedAndDeduplicated) {
  Histogram h({10.0, 1.0, 2.5, 1.0});
  const std::vector<double> want = {1.0, 2.5, 10.0};
  EXPECT_EQ(h.bounds(), want);
}

TEST(ObsHistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0});
  // Ten observations uniformly filling (1, 2]: p50 rank 5 of 10 -> the
  // estimator assumes uniform density, so p50 lands mid-bucket.
  for (int i = 0; i < 10; ++i) h.Observe(1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 2.0);
  // Empty histogram reports 0.
  Histogram empty({1.0});
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
}

TEST(ObsHistogramTest, OverflowPercentileClampsToLastBound) {
  Histogram h({1.0, 8.0});
  for (int i = 0; i < 4; ++i) h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 8.0);
}

// Property test: against random data the interpolated estimate must always
// land in the same bucket as the exact sample quantile (the estimator can
// never leave the true quantile's bucket).
TEST(ObsHistogramTest, PercentileStaysInExactQuantilesBucket) {
  util::Rng rng(4242);
  const std::vector<double> bounds = Histogram::LatencyBoundsMs();
  for (int trial = 0; trial < 20; ++trial) {
    Histogram h(bounds);
    std::vector<double> data;
    const size_t n = 50 + rng.UniformInt(500);
    data.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Log-uniform over ~6 decades, the shape of real latency data.
      data.push_back(std::pow(10.0, rng.Uniform(-3.0, 3.0)));
      h.Observe(data.back());
    }
    std::sort(data.begin(), data.end());
    for (const double p : {0.5, 0.9, 0.95, 0.99}) {
      const size_t rank = std::max<size_t>(
          1, static_cast<size_t>(std::ceil(p * static_cast<double>(n))));
      const double exact = data[rank - 1];
      const double est = h.Percentile(p);
      // Bucket of the exact quantile: (lo, hi].
      const size_t bi = static_cast<size_t>(
          std::lower_bound(bounds.begin(), bounds.end(), exact) -
          bounds.begin());
      ASSERT_LT(bi, bounds.size()) << "exact quantile overflowed the grid";
      const double lo = bi == 0 ? 0.0 : bounds[bi - 1];
      const double hi = bounds[bi];
      EXPECT_GE(est, lo) << "p=" << p << " trial=" << trial;
      EXPECT_LE(est, hi) << "p=" << p << " trial=" << trial;
    }
  }
}

TEST(ObsHistogramTest, LatencyBoundsGridShape) {
  const std::vector<double> bounds = Histogram::LatencyBoundsMs();
  ASSERT_EQ(bounds.size(), 40u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.001);  // 1us
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], 2.0 * bounds[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Registry + exposition format
// ---------------------------------------------------------------------------

TEST(ObsRegistryTest, ExpositionGolden) {
  Registry reg;
  reg.GetCounter("tdmatch_test_requests_total", "Total requests",
                 {{"code", "200"}})
      ->Inc(2);
  reg.GetCounter("tdmatch_test_requests_total", "Total requests",
                 {{"code", "500"}})
      ->Inc();
  reg.GetGauge("tdmatch_test_temp", "Current temperature")->Set(2.5);
  reg.GetGauge("tdmatch_esc", "quote \" ok",
               {{"path", "a\\b\"c\nd"}})
      ->Set(7.0);
  Histogram* h = reg.GetHistogram("tdmatch_test_lat_ms", "Query latency",
                                  {1.0, 2.5, 10.0});
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(100.0);

  const std::string want =
      "# HELP tdmatch_esc quote \" ok\n"
      "# TYPE tdmatch_esc gauge\n"
      "tdmatch_esc{path=\"a\\\\b\\\"c\\nd\"} 7\n"
      "# HELP tdmatch_test_lat_ms Query latency\n"
      "# TYPE tdmatch_test_lat_ms histogram\n"
      "tdmatch_test_lat_ms_bucket{le=\"1\"} 1\n"
      "tdmatch_test_lat_ms_bucket{le=\"2.5\"} 2\n"
      "tdmatch_test_lat_ms_bucket{le=\"10\"} 2\n"
      "tdmatch_test_lat_ms_bucket{le=\"+Inf\"} 3\n"
      "tdmatch_test_lat_ms_sum 102.5\n"
      "tdmatch_test_lat_ms_count 3\n"
      "# HELP tdmatch_test_requests_total Total requests\n"
      "# TYPE tdmatch_test_requests_total counter\n"
      "tdmatch_test_requests_total{code=\"200\"} 2\n"
      "tdmatch_test_requests_total{code=\"500\"} 1\n"
      "# HELP tdmatch_test_temp Current temperature\n"
      "# TYPE tdmatch_test_temp gauge\n"
      "tdmatch_test_temp 2.5\n";
  EXPECT_EQ(reg.RenderPrometheus(), want);
}

TEST(ObsRegistryTest, GaugeValuesRoundTripBitExact) {
  Registry reg;
  const double v = 1.0 / 3.0;
  reg.GetGauge("tdmatch_third", "h")->Set(v);
  const std::string out = reg.RenderPrometheus();
  const std::string needle = "\ntdmatch_third ";  // the sample, not # HELP
  const size_t pos = out.find(needle);
  ASSERT_NE(pos, std::string::npos) << out;
  const double parsed =
      std::strtod(out.c_str() + pos + needle.size(), nullptr);
  EXPECT_EQ(parsed, v);  // %.17g -> strtod reproduces the exact bits
}

TEST(ObsRegistryTest, GetIsIdempotentPerLabelSet) {
  Registry reg;
  Counter* a = reg.GetCounter("c", "h", {{"k", "x"}});
  Counter* b = reg.GetCounter("c", "h", {{"k", "x"}});
  Counter* other = reg.GetCounter("c", "h", {{"k", "y"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(ObsRegistryTest, CallbacksRenderAndClear) {
  Registry reg;
  reg.RegisterCallback(MetricType::kGauge, "tdmatch_cb", "h",
                       {{"shard", "0"}}, [] { return 12.0; });
  EXPECT_NE(reg.RenderPrometheus().find("tdmatch_cb{shard=\"0\"} 12"),
            std::string::npos);
  // Re-registering the same (name, labels) replaces the callback.
  reg.RegisterCallback(MetricType::kGauge, "tdmatch_cb", "h",
                       {{"shard", "0"}}, [] { return 13.0; });
  EXPECT_NE(reg.RenderPrometheus().find("tdmatch_cb{shard=\"0\"} 13"),
            std::string::npos);
  reg.ClearCallbacks("tdmatch_cb");
  EXPECT_EQ(reg.RenderPrometheus().find("tdmatch_cb{"), std::string::npos);
}

// Threads hammer get-or-create, bumps, and scrapes concurrently; the final
// totals must still be exact. Runs under TSan in CI.
TEST(ObsRegistryTest, ConcurrentRegistrationAndScrape) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.GetCounter("tdmatch_conc_total", "h")->Inc();
        reg.GetHistogram("tdmatch_conc_ms", "h", {1.0, 10.0})
            ->Observe(static_cast<double>(t));
        if (i % 512 == 0) {
          const std::string out = reg.RenderPrometheus();
          EXPECT_NE(out.find("tdmatch_conc_total"), std::string::npos);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("tdmatch_conc_total", "h")->Value(),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(reg.GetHistogram("tdmatch_conc_ms", "h", {1.0, 10.0})->count(),
            uint64_t{kThreads} * kPerThread);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

// Busy-works long enough for the steady clock to tick.
double BurnCpu() {
  volatile double x = 1.0;
  for (int i = 0; i < 50000; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

TEST(ObsTraceTest, SpansNestAndRecordDepth) {
  Trace trace("t-test");
  {
    Trace::Span outer(&trace, "outer");
    BurnCpu();
    {
      Trace::Span inner(&trace, "inner");
      BurnCpu();
    }
  }
  trace.AddSpan("external", 1.5);
  const double total = trace.Finish();
  EXPECT_EQ(trace.Finish(), total);  // idempotent

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_STREQ(trace.spans()[0].name, "outer");
  EXPECT_EQ(trace.spans()[0].depth, 0);
  EXPECT_STREQ(trace.spans()[1].name, "inner");
  EXPECT_EQ(trace.spans()[1].depth, 1);
  EXPECT_STREQ(trace.spans()[2].name, "external");
  EXPECT_DOUBLE_EQ(trace.spans()[2].ms, 1.5);
  // Nesting: the inner span starts after and ends within the outer one.
  EXPECT_GE(trace.spans()[1].start_ms, trace.spans()[0].start_ms);
  EXPECT_LE(trace.spans()[1].ms, trace.spans()[0].ms);
  EXPECT_GT(trace.spans()[0].ms, 0.0);
  EXPECT_GE(total, trace.spans()[0].ms);
}

TEST(ObsTraceTest, SpanClosesOnEarlyReturn) {
  Trace trace("t-early");
  const auto shed = [&trace]() -> bool {
    Trace::Span span(&trace, "admission");
    BurnCpu();
    return true;  // early exit path: destructor must close the span
  };
  ASSERT_TRUE(shed());
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_GT(trace.spans()[0].ms, 0.0);
  // And an explicit Close() is safe to repeat via the destructor.
  {
    Trace::Span span(&trace, "closed-twice");
    span.Close();
  }
  ASSERT_EQ(trace.spans().size(), 2u);
}

TEST(ObsTraceTest, NullTraceIsANoOp) {
  Trace::Span span(nullptr, "ignored");
  span.Close();  // must not crash
}

TEST(ObsTraceTest, SamplerPeriods) {
  TraceSampler never(0.0);
  EXPECT_TRUE(never.never());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(never.ShouldSample());

  TraceSampler always(1.0);
  EXPECT_TRUE(always.always());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(always.ShouldSample());

  TraceSampler quarter(0.25);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) sampled += quarter.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 25);  // deterministic every-4th
}

TEST(ObsTraceTest, GeneratedIdsAreUniqueAndWellFormed) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::string id = util::obs::GenerateTraceId();
    ASSERT_EQ(id.size(), 18u) << id;
    ASSERT_EQ(id.substr(0, 2), "t-");
    for (char c : id.substr(2)) {
      ASSERT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << id;
    }
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

// ---------------------------------------------------------------------------
// JSONL logger
// ---------------------------------------------------------------------------

TEST(ObsJsonLogTest, EventsParseBackThroughUtilJson) {
  util::obs::JsonLogger log;
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  log.Log(util::obs::LogLevel::kInfo, "serve_start")
      .Str("snapshot", "/tmp/x \"quoted\"\n.tds")
      .Num("load_seconds", 0.125)
      .Int("signal", -2)
      .Uint("requests", 18446744073709551615ull)
      .Bool("mmap", true);
  ASSERT_EQ(lines.size(), 1u);

  auto doc = util::JsonParse(lines[0]);
  ASSERT_TRUE(doc.ok()) << lines[0];
  EXPECT_GT(doc->Find("ts")->number_value(), 1.7e9);  // sane epoch seconds
  EXPECT_EQ(doc->Find("level")->string_value(), "info");
  EXPECT_EQ(doc->Find("event")->string_value(), "serve_start");
  EXPECT_EQ(doc->Find("snapshot")->string_value(), "/tmp/x \"quoted\"\n.tds");
  EXPECT_EQ(doc->Find("load_seconds")->number_value(), 0.125);
  EXPECT_EQ(doc->Find("signal")->number_value(), -2.0);
  // uint64 max exceeds double precision; the spelling must be exact.
  EXPECT_EQ(doc->Find("requests")->string_value(), "18446744073709551615");
  EXPECT_TRUE(doc->Find("mmap")->bool_value());
}

TEST(ObsJsonLogTest, MinLevelSuppressesBelow) {
  util::obs::JsonLogger log;
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  log.set_min_level(util::obs::LogLevel::kWarn);
  log.Log(util::obs::LogLevel::kDebug, "d");
  log.Log(util::obs::LogLevel::kInfo, "i").Str("k", "v");
  log.Log(util::obs::LogLevel::kWarn, "w");
  log.Log(util::obs::LogLevel::kError, "e");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"w\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"e\""), std::string::npos);
}

TEST(ObsJsonLogTest, ParseLogLevelNames) {
  using util::obs::LogLevel;
  using util::obs::ParseLogLevel;
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("bogus"), LogLevel::kInfo);  // safe default
}

TEST(ObsJsonLogTest, ConcurrentEmitsStayLineAtomic) {
  util::obs::JsonLogger log;
  std::vector<std::string> lines;
  log.set_sink([&lines](const std::string& line) { lines.push_back(line); });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Log(util::obs::LogLevel::kInfo, "tick")
            .Int("thread", t)
            .Int("i", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(lines.size(), size_t{kThreads} * kPerThread);
  for (const auto& line : lines) {
    ASSERT_TRUE(util::JsonParse(line).ok()) << line;
  }
}

// ---------------------------------------------------------------------------
// Phase profiling
// ---------------------------------------------------------------------------

TEST(ObsPhaseProfileTest, RepeatedPhasesSumAndMergePrefixes) {
  PhaseProfile p;
  p.Add("train_epoch", 1.0);
  p.Add("train_epoch", 2.0);
  p.Add("match", 0.5);
  EXPECT_DOUBLE_EQ(p.Seconds("train_epoch"), 3.0);
  EXPECT_DOUBLE_EQ(p.Seconds("match"), 0.5);
  EXPECT_DOUBLE_EQ(p.Seconds("absent"), 0.0);
  EXPECT_DOUBLE_EQ(p.Total(), 3.5);

  PhaseProfile outer;
  outer.Add("load", 0.25);
  outer.Merge(p, "run.");
  ASSERT_EQ(outer.phases().size(), 4u);
  EXPECT_EQ(outer.phases()[1].name, "run.train_epoch");
  EXPECT_DOUBLE_EQ(outer.Seconds("run.match"), 0.5);

  p.clear();
  EXPECT_TRUE(p.empty());
}

TEST(ObsPhaseProfileTest, TimerRecordsOnScopeExitAndStopIsIdempotent) {
  PhaseProfile p;
  {
    PhaseTimer t(&p, "work");
    BurnCpu();
  }
  ASSERT_EQ(p.phases().size(), 1u);
  EXPECT_EQ(p.phases()[0].name, "work");
  EXPECT_GT(p.phases()[0].seconds, 0.0);

  PhaseTimer t2(&p, "stopped");
  const double s = t2.Stop();
  EXPECT_GE(s, 0.0);
  t2.Stop();  // second Stop must not append again
  EXPECT_EQ(p.phases().size(), 2u);

  PhaseTimer null_timer(nullptr, "ignored");  // tolerated, records nowhere
}

}  // namespace
}  // namespace tdmatch
