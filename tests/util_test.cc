#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>

#include "util/csv.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tdmatch {
namespace util {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, CopySemantics) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_TRUE(t.IsNotFound());
  EXPECT_EQ(t.message(), "x");
  t = Status::OK();
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(s.IsNotFound());  // copy did not alias
}

TEST(StatusTest, AllFactories) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("").IsIOError());
  EXPECT_TRUE(Status::Unimplemented("").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  TDM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_EQ(r.ValueOr(-1), 21);
}

TEST(ResultTest, ErrorPropagation) {
  Result<int> r = DoubleIt(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-7), -7);
}

TEST(ResultTest, AssignOrReturnPassesValue) {
  Result<int> r = DoubleIt(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 8);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10ULL), 10ULL);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5ULL));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(15);
  auto s = rng.SampleIndices(100, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (size_t i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsToN) {
  Rng rng(16);
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(19);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto v = Split("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "");
}

TEST(StringUtilTest, SplitSkipEmpty) {
  auto v = Split("a,,b,", ',', /*skip_empty=*/true);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[1], "b");
}

TEST(StringUtilTest, SplitWhitespaceCollapses) {
  auto v = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "foo");
  EXPECT_EQ(v[2], "baz");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric("42"));
  EXPECT_TRUE(IsNumeric("-3.14"));
  EXPECT_TRUE(IsNumeric("+7"));
  EXPECT_FALSE(IsNumeric(""));
  EXPECT_FALSE(IsNumeric("3.1.4"));
  EXPECT_FALSE(IsNumeric("12a"));
  EXPECT_FALSE(IsNumeric("-"));
  EXPECT_FALSE(IsNumeric("."));
}

TEST(StringUtilTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("x2", &d));
  EXPECT_FALSE(ParseDouble("2x", &d));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
}

// ---------------------------------------------------------------------------
// Csv
// ---------------------------------------------------------------------------

TEST(CsvTest, ParseSimpleLine) {
  auto r = Csv::ParseLine("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto r = Csv::ParseLine(R"("a,b",c,"say ""hi""")");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0], "a,b");
  EXPECT_EQ((*r)[2], "say \"hi\"");
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(Csv::ParseLine("\"abc").ok());
}

TEST(CsvTest, RejectsQuoteInsideUnquoted) {
  EXPECT_FALSE(Csv::ParseLine("ab\"c,d").ok());
}

TEST(CsvTest, EscapeRoundTrip) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                  "multi\nline"};
  std::string line = Csv::FormatLine(fields);
  auto parsed = Csv::ParseLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/tdmatch_csv_test.csv";
  std::vector<std::vector<std::string>> rows{{"h1", "h2"},
                                             {"a,b", "2"},
                                             {"x", "say \"hi\""}};
  ASSERT_TRUE(Csv::WriteFile(path, rows).ok());
  auto read = Csv::ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_TRUE(Csv::ReadFile("/nonexistent/nope.csv").status().IsIOError());
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<int> hits(1000, 0);
  ThreadPool::ParallelFor(hits.size(), 4,
                          [&](size_t b, size_t e, size_t) {
                            for (size_t i = b; i < e; ++i) hits[i]++;
                          });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(StopWatchTest, MeasuresElapsed) {
  StopWatch w;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace util
}  // namespace tdmatch
