// Unit tests for the runtime-dispatched SIMD kernel layer
// (util/simd/kernels.h). The parity contract under test:
//
//  * scalar is the bit-exact reference (sequential loops);
//  * AVX2 elementwise kernels (axpy/scale/scale_into/add) match scalar to
//    <= 1 ulp per element (FMA fuses one rounding);
//  * AVX2 reductions (dot/squared_norm/dot8/adc_scan) reassociate and are
//    bounded relative to the scalar value;
//  * odd lengths exercise every remainder-tail path (0..33);
//  * all kernels accept unaligned inputs (mmap payloads are only 4-byte
//    aligned);
//  * NaN propagates through reductions on both paths; denormals are
//    computed, not flushed.
//
// When the host CPU (or the build) has no AVX2+FMA, the dispatched table
// is the scalar table and the parity tests degenerate to exact equality —
// they still run, so the suite is meaningful on any machine.

#include "util/simd/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace tdmatch {
namespace simd {
namespace {

bool Avx2Active() { return ActiveIsa() == Isa::kAvx2; }

/// Fills with reproducible values in [-1, 1].
std::vector<float> RandomVec(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return v;
}

/// Relative tolerance for reassociated reductions over n elements.
double ReductionTol(size_t n) {
  return 1e-6 * static_cast<double>(n > 8 ? n : 8);
}

TEST(SimdDispatch, ScalarTableIsScalar) {
  EXPECT_STREQ(Scalar().name, "scalar");
}

TEST(SimdDispatch, ActiveMatchesProbeUnlessForced) {
  if (ForcedScalarByEnv()) {
    EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  } else if (BuildHasAvx2() && CpuHasAvx2Fma()) {
    EXPECT_EQ(ActiveIsa(), Isa::kAvx2);
  } else {
    EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  }
}

TEST(SimdDispatch, SetActiveIsaRoundTrips) {
  const Isa original = ActiveIsa();
  EXPECT_EQ(SetActiveIsa(Isa::kScalar), Isa::kScalar);
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  EXPECT_STREQ(Active().name, "scalar");
  const Isa granted = SetActiveIsa(Isa::kAvx2);
  if (BuildHasAvx2() && CpuHasAvx2Fma()) {
    EXPECT_EQ(granted, Isa::kAvx2);
    EXPECT_STREQ(Active().name, "avx2");
  } else {
    EXPECT_EQ(granted, Isa::kScalar);  // clamped
  }
  SetActiveIsa(original);
}

class SimdParityTest : public ::testing::Test {
 protected:
  void SetUp() override { original_ = ActiveIsa(); }
  void TearDown() override { SetActiveIsa(original_); }
  Isa original_;
};

TEST_F(SimdParityTest, DotAllLengthsIncludingTails) {
  // Offset by 1 float from a fresh allocation: deliberately not 32-byte
  // aligned, like a row in an mmap'd snapshot payload.
  const auto a_buf = RandomVec(64, 11);
  const auto b_buf = RandomVec(64, 22);
  const float* a = a_buf.data() + 1;
  const float* b = b_buf.data() + 3;
  for (size_t n = 0; n <= 33; ++n) {
    const float ref = scalar::Dot(a, b, n);
    const float got = Active().dot(a, b, n);
    EXPECT_NEAR(got, ref, ReductionTol(n)) << "n=" << n;
  }
}

TEST_F(SimdParityTest, DotLargeUnaligned) {
  const auto a = RandomVec(1001, 5);
  const auto b = RandomVec(1001, 6);
  const float ref = scalar::Dot(a.data() + 1, b.data() + 1, 1000);
  const float got = Active().dot(a.data() + 1, b.data() + 1, 1000);
  EXPECT_NEAR(got, ref, ReductionTol(1000) * std::abs(ref) + 1e-4);
}

TEST_F(SimdParityTest, AxpyElementwiseOneUlp) {
  const auto x = RandomVec(67, 7);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 67u}) {
    auto y_ref = RandomVec(67, 8);
    auto y_got = y_ref;
    scalar::Axpy(0.37f, x.data(), y_ref.data(), n);
    Active().axpy(0.37f, x.data(), y_got.data(), n);
    for (size_t i = 0; i < n; ++i) {
      // FMA differs from mul+add by at most one rounding of the product.
      EXPECT_NEAR(y_got[i], y_ref[i],
                  2.0f * std::abs(y_ref[i]) * 1.2e-7f + 1e-12f)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdParityTest, ScaleAndScaleIntoAndAddExact) {
  // No FMA in these kernels: lane ops perform the identical single
  // rounding as scalar, so results are bit-exact on every path.
  const auto x = RandomVec(41, 9);
  for (size_t n : {0u, 1u, 8u, 15u, 41u}) {
    auto a_ref = x, a_got = x;
    scalar::Scale(-1.7f, a_ref.data(), n);
    Active().scale(-1.7f, a_got.data(), n);
    EXPECT_EQ(0, std::memcmp(a_ref.data(), a_got.data(), n * 4)) << n;

    std::vector<float> b_ref(41, 0.f), b_got(41, 0.f);
    scalar::ScaleInto(2.5f, x.data(), b_ref.data(), n);
    Active().scale_into(2.5f, x.data(), b_got.data(), n);
    EXPECT_EQ(0, std::memcmp(b_ref.data(), b_got.data(), n * 4)) << n;

    auto c_ref = RandomVec(41, 10), c_got = c_ref;
    scalar::Add(x.data(), c_ref.data(), n);
    Active().add(x.data(), c_got.data(), n);
    EXPECT_EQ(0, std::memcmp(c_ref.data(), c_got.data(), n * 4)) << n;
  }
}

TEST_F(SimdParityTest, SquaredNormParity) {
  const auto x = RandomVec(100, 12);
  for (size_t n : {0u, 1u, 9u, 100u}) {
    EXPECT_NEAR(Active().squared_norm(x.data(), n),
                scalar::SquaredNorm(x.data(), n), ReductionTol(n))
        << n;
  }
}

TEST_F(SimdParityTest, Dot8MatchesEightDots) {
  const auto v = RandomVec(53, 13);
  std::vector<std::vector<float>> rows_store;
  const float* rows[8];
  for (int q = 0; q < 8; ++q) {
    rows_store.push_back(RandomVec(53, 100 + static_cast<uint64_t>(q)));
  }
  for (int q = 0; q < 8; ++q) rows[q] = rows_store[static_cast<size_t>(q)].data();
  for (size_t n : {0u, 1u, 8u, 17u, 53u}) {
    float ref[8], got[8];
    scalar::Dot8(rows, v.data(), n, ref);
    Active().dot8(rows, v.data(), n, got);
    for (int q = 0; q < 8; ++q) {
      // The scalar tile must equal eight independent dots bit-for-bit.
      EXPECT_EQ(ref[q], scalar::Dot(rows[q], v.data(), n)) << n << "/" << q;
      EXPECT_NEAR(got[q], ref[q], ReductionTol(n)) << n << "/" << q;
    }
  }
}

TEST_F(SimdParityTest, AdcScanParity) {
  util::Rng rng(77);
  for (size_t m : {1u, 4u, 8u, 12u, 16u}) {
    const size_t num_codes = 37;
    std::vector<uint8_t> codes(num_codes * m);
    for (auto& c : codes) c = static_cast<uint8_t>(rng.Next() & 0xff);
    const auto table = RandomVec(m * 256, 1000 + m);
    std::vector<float> ref(num_codes), got(num_codes);
    scalar::AdcScan(codes.data(), num_codes, m, table.data(), ref.data());
    Active().adc_scan(codes.data(), num_codes, m, table.data(), got.data());
    for (size_t i = 0; i < num_codes; ++i) {
      EXPECT_NEAR(got[i], ref[i], ReductionTol(m)) << "m=" << m << " i=" << i;
    }
  }
}

TEST_F(SimdParityTest, NanPropagatesThroughReductions) {
  auto a = RandomVec(19, 14);
  const auto b = RandomVec(19, 15);
  a[13] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(scalar::Dot(a.data(), b.data(), 19)));
  EXPECT_TRUE(std::isnan(Active().dot(a.data(), b.data(), 19)));
  EXPECT_TRUE(std::isnan(scalar::SquaredNorm(a.data(), 19)));
  EXPECT_TRUE(std::isnan(Active().squared_norm(a.data(), 19)));
}

TEST_F(SimdParityTest, DenormalsAreComputedNotFlushed) {
  // The library must never set DAZ/FTZ: a denormal times a power of two
  // is exact, so both paths must produce the identical (tiny) product.
  const float denorm = std::numeric_limits<float>::denorm_min() * 64;
  std::vector<float> a(8, denorm), b(8, 0.25f);
  const float ref = scalar::Dot(a.data(), b.data(), 8);
  const float got = Active().dot(a.data(), b.data(), 8);
  EXPECT_GT(ref, 0.0f);
  EXPECT_EQ(got, ref);
}

TEST_F(SimdParityTest, ForcedScalarDispatchIsBitExactWithReference) {
  SetActiveIsa(Isa::kScalar);
  const auto a = RandomVec(129, 16);
  const auto b = RandomVec(129, 17);
  EXPECT_EQ(Active().dot(a.data(), b.data(), 129),
            scalar::Dot(a.data(), b.data(), 129));
  EXPECT_EQ(&Active(), &Scalar());
}

TEST(SimdInfo, IsaNames) {
  EXPECT_STREQ(IsaName(Isa::kScalar), "scalar");
  EXPECT_STREQ(IsaName(Isa::kAvx2), "avx2");
  // Log the dispatch decision so CI output records the runner's ISA.
  ::testing::Test::RecordProperty("active_isa", IsaName(ActiveIsa()));
  std::printf("[simd] active ISA: %s (cpu avx2+fma: %d, build avx2: %d, "
              "TDMATCH_FORCE_SCALAR: %d)\n",
              IsaName(ActiveIsa()), CpuHasAvx2Fma() ? 1 : 0,
              BuildHasAvx2() ? 1 : 0, ForcedScalarByEnv() ? 1 : 0);
  (void)Avx2Active;
}

}  // namespace
}  // namespace simd
}  // namespace tdmatch
