// Extra coverage for the util layer every other layer leans on: Status /
// Result edge cases (propagation macros, move-only payloads, move
// semantics) and ThreadPool shutdown behaviour under load.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace util {
namespace {

// ---------------------------------------------------------------------------
// Status: move semantics
// ---------------------------------------------------------------------------

TEST(StatusExtraTest, MoveLeavesSourceOk) {
  Status s = Status::IOError("disk gone");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk gone");
  // The moved-from status holds a null state record, i.e. reads as OK.
  EXPECT_TRUE(s.ok());  // NOLINT(bugprone-use-after-move)
}

TEST(StatusExtraTest, MoveAssignOverwritesError) {
  Status dst = Status::Internal("old");
  dst = Status::NotFound("new");
  EXPECT_TRUE(dst.IsNotFound());
  EXPECT_EQ(dst.message(), "new");
}

TEST(StatusExtraTest, OkCodeDropsMessage) {
  Status s(StatusCode::kOk, "should be dropped");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusExtraTest, CopyAssignFromErrorToError) {
  Status a = Status::OutOfRange("a");
  Status b = Status::AlreadyExists("b");
  a = b;
  EXPECT_TRUE(a.IsAlreadyExists());
  EXPECT_EQ(a.message(), "b");
  EXPECT_TRUE(b.IsAlreadyExists());
}

// ---------------------------------------------------------------------------
// Error propagation macros
// ---------------------------------------------------------------------------

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative: " + std::to_string(x));
  return Status::OK();
}

Status CheckAll(const std::vector<int>& xs) {
  for (int x : xs) {
    TDM_RETURN_NOT_OK(FailIfNegative(x));
  }
  return Status::OK();
}

TEST(PropagationTest, ReturnNotOkPassesThroughFirstError) {
  EXPECT_TRUE(CheckAll({1, 2, 3}).ok());
  Status s = CheckAll({1, -2, -3});
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "negative: -2");  // stops at the first failure
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TDM_ASSIGN_OR_RETURN(int h, Half(x));
  TDM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(PropagationTest, AssignOrReturnChainsResults) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  // First stage fails.
  EXPECT_TRUE(Quarter(9).status().IsInvalidArgument());
  // Second stage fails (6/2 = 3 is odd).
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Result: move-only payloads and edge cases
// ---------------------------------------------------------------------------

Result<std::unique_ptr<int>> MakeBox(int x) {
  if (x < 0) return Status::OutOfRange("no negative boxes");
  return std::make_unique<int>(x);
}

TEST(ResultExtraTest, MoveOnlyPayloadRoundTrips) {
  auto r = MakeBox(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 7);
  std::unique_ptr<int> owned = std::move(r).ValueOrDie();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(ResultExtraTest, MoveOnlyPayloadThroughAssignOrReturn) {
  auto doubled = [](int x) -> Result<std::unique_ptr<int>> {
    TDM_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(x));
    *box *= 2;
    return Result<std::unique_ptr<int>>(std::move(box));
  };
  auto r = doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 42);
  EXPECT_TRUE(doubled(-1).status().IsOutOfRange());
}

TEST(ResultExtraTest, ErrorResultReportsStatus) {
  auto r = MakeBox(-3);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.status().message(), "no negative boxes");
}

TEST(ResultExtraTest, OkResultHasOkStatus) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultExtraTest, ConstructedFromOkStatusBecomesInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultExtraTest, ValueOrFallsBackOnError) {
  Result<std::string> err(Status::NotFound("gone"));
  EXPECT_EQ(err.ValueOr("fallback"), "fallback");
  Result<std::string> ok(std::string("present"));
  EXPECT_EQ(ok.ValueOr("fallback"), "present");
}

// ---------------------------------------------------------------------------
// ThreadPool: shutdown under load
// ---------------------------------------------------------------------------

TEST(ThreadPoolExtraTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): the destructor must run every queued task before joining.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolExtraTest, WaitThenReuse) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolExtraTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolExtraTest, SubmitFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    count.fetch_add(1);
    pool.Submit([&count] { count.fetch_add(1); });
  });
  // Give the nested submission time to land before waiting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolExtraTest, ParallelForCoversRangeExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ThreadPool::ParallelFor(n, 4, [&hits](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolExtraTest, ParallelForMoreThreadsThanWork) {
  std::atomic<int> total{0};
  ThreadPool::ParallelFor(3, 16, [&total](size_t begin, size_t end, size_t) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPoolExtraTest, ParallelForZeroItemsIsNoop) {
  bool called = false;
  ThreadPool::ParallelFor(0, 4,
                          [&called](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace util
}  // namespace tdmatch
