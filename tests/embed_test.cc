#include <gtest/gtest.h>

#include <cmath>

#include "embed/block_sharder.h"
#include "embed/doc2vec.h"
#include "embed/embedding_table.h"
#include "embed/pretrained_lexicon.h"
#include "embed/random_walk.h"
#include "embed/word2vec.h"
#include "graph/graph.h"

namespace tdmatch {
namespace embed {
namespace {

// ---------------------------------------------------------------------------
// Word2Vec
// ---------------------------------------------------------------------------

/// Two disjoint token "clusters": tokens 0-4 co-occur, tokens 5-9 co-occur.
std::vector<std::vector<int32_t>> ClusteredSentences(size_t n) {
  std::vector<std::vector<int32_t>> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({0, 1, 2, 3, 4});
    out.push_back({5, 6, 7, 8, 9});
  }
  return out;
}

/// Distributional-similarity corpus: tokens 0 and 1 are interchangeable
/// (identical contexts, never co-occurring); token 6 lives in a different
/// context. The classic word2vec invariant is vec(0) ≈ vec(1).
std::vector<std::vector<int32_t>> InterchangeableSentences(size_t n) {
  std::vector<std::vector<int32_t>> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<int32_t>(i % 2), 2, 3, 4, 5});
    out.push_back({6, 7, 8, 9, 10});
  }
  return out;
}

TEST(Word2VecTest, CooccurringTokensEndUpCloser) {
  Word2VecOptions o;
  o.dim = 32;
  o.epochs = 15;
  o.threads = 1;
  Word2Vec w2v(o);
  ASSERT_TRUE(w2v.Train(ClusteredSentences(200), 10).ok());
  // Same-cluster tokens share contexts; their input vectors must be closer
  // than tokens from the other cluster.
  double intra = w2v.CosineIds(0, 1);
  double inter = w2v.CosineIds(0, 5);
  EXPECT_GT(intra, inter);
}

TEST(Word2VecTest, InterchangeableTokensConverge) {
  Word2VecOptions o;
  o.dim = 32;
  o.epochs = 12;
  o.threads = 1;
  Word2Vec w2v(o);
  ASSERT_TRUE(w2v.Train(InterchangeableSentences(300), 11).ok());
  EXPECT_GT(w2v.CosineIds(0, 1), w2v.CosineIds(0, 6) + 0.2);
}

TEST(Word2VecTest, CbowAlsoLearnsClusters) {
  Word2VecOptions o;
  o.dim = 32;
  o.epochs = 12;
  o.cbow = true;
  o.window = 4;
  o.threads = 1;
  Word2Vec w2v(o);
  ASSERT_TRUE(w2v.Train(InterchangeableSentences(300), 11).ok());
  // Interchangeable tokens share contexts, so CBOW aligns their input
  // vectors far more than tokens from the other cluster.
  EXPECT_GT(w2v.CosineIds(0, 1), w2v.CosineIds(0, 6) + 0.2);
}

TEST(Word2VecTest, DeterministicRegardlessOfThreadSetting) {
  // Thread-invariance matrix: threads ∈ {1, 2, 8} must produce
  // byte-identical vectors (EXPECT_EQ on the float vectors is exact).
  auto sents = ClusteredSentences(20);
  Word2VecOptions o;
  o.dim = 16;
  o.epochs = 2;
  o.threads = 1;
  Word2Vec base(o);
  ASSERT_TRUE(base.Train(sents, 10).ok());
  for (size_t threads : {2u, 8u}) {
    Word2VecOptions ot = o;
    ot.threads = threads;
    Word2Vec b(ot);
    ASSERT_TRUE(b.Train(sents, 10).ok());
    for (int32_t id = 0; id < 10; ++id) {
      EXPECT_EQ(base.VectorCopy(id), b.VectorCopy(id))
          << "id " << id << " threads " << threads;
    }
  }
}

TEST(Word2VecTest, RejectsBadInput) {
  Word2Vec w2v{Word2VecOptions{}};
  EXPECT_TRUE(w2v.Train({{0, 1}}, 0).IsInvalidArgument());
  EXPECT_TRUE(w2v.Train({{0, 99}}, 10).IsOutOfRange());
  EXPECT_TRUE(w2v.Train(std::vector<std::vector<int32_t>>{}, 10)
                  .IsInvalidArgument());
  EXPECT_TRUE(w2v.Train(SentenceCorpus{}, 10).IsInvalidArgument());
}

TEST(Word2VecTest, CosineBounds) {
  Word2VecOptions o;
  o.dim = 16;
  o.epochs = 3;
  o.threads = 2;
  Word2Vec w2v(o);
  ASSERT_TRUE(w2v.Train(ClusteredSentences(50), 10).ok());
  for (int32_t a = 0; a < 10; ++a) {
    for (int32_t b = 0; b < 10; ++b) {
      double c = w2v.CosineIds(a, b);
      EXPECT_GE(c, -1.0001);
      EXPECT_LE(c, 1.0001);
    }
  }
  EXPECT_NEAR(w2v.CosineIds(3, 3), 1.0, 1e-6);
}

// ---------------------------------------------------------------------------
// RandomWalker
// ---------------------------------------------------------------------------

graph::Graph TriangleWithTail() {
  graph::Graph g;
  g.AddNode("a");
  g.AddNode("b");
  g.AddNode("c");
  g.AddNode("tail");
  g.AddNode("isolated");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  return g;
}

TEST(RandomWalkTest, WalkCountAndLength) {
  graph::Graph g = TriangleWithTail();
  RandomWalkOptions o{.num_walks = 4, .walk_length = 10, .seed = 1,
                      .threads = 2};
  auto walks = RandomWalker::Generate(g, o);
  EXPECT_EQ(walks.size(), g.NumNodes() * 4);
  for (const auto& w : walks) {
    EXPECT_GE(w.size(), 1u);
    EXPECT_LE(w.size(), 10u);
  }
}

TEST(RandomWalkTest, WalksFollowEdges) {
  graph::Graph g = TriangleWithTail();
  RandomWalkOptions o{.num_walks = 3, .walk_length = 8, .seed = 2,
                      .threads = 1};
  for (const auto& w : RandomWalker::Generate(g, o)) {
    for (size_t i = 0; i + 1 < w.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(w[i], w[i + 1]))
          << w[i] << " -> " << w[i + 1];
    }
  }
}

TEST(RandomWalkTest, IsolatedNodeSingleton) {
  graph::Graph g = TriangleWithTail();
  RandomWalkOptions o{.num_walks = 2, .walk_length = 6, .seed = 3,
                      .threads = 1};
  auto walks = RandomWalker::Generate(g, o);
  // Walks of node 4 (isolated) are the 2 entries starting at index 4*2.
  for (size_t i = 8; i < 10; ++i) {
    ASSERT_EQ(walks[i].size(), 1u);
    EXPECT_EQ(walks[i][0], 4);
  }
}

TEST(RandomWalkTest, ThreadCountDoesNotChangeOutput) {
  graph::Graph g = TriangleWithTail();
  RandomWalkOptions o1{.num_walks = 5, .walk_length = 12, .seed = 4,
                       .threads = 1};
  RandomWalkOptions o8 = o1;
  o8.threads = 8;
  EXPECT_EQ(RandomWalker::Generate(g, o1), RandomWalker::Generate(g, o8));
}

// ---------------------------------------------------------------------------
// EmbeddingTable
// ---------------------------------------------------------------------------

TEST(EmbeddingTableTest, PutGetOverwrite) {
  EmbeddingTable t;
  t.Put("a", {1.0f, 0.0f});
  t.Put("b", {0.0f, 1.0f});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dim(), 2);
  t.Put("a", {0.5f, 0.5f});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FLOAT_EQ((*t.Get("a"))[0], 0.5f);
  EXPECT_EQ(t.Get("ghost"), nullptr);
}

TEST(EmbeddingTableTest, CosineValues) {
  EmbeddingTable t;
  t.Put("x", {1.0f, 0.0f});
  t.Put("y", {0.0f, 2.0f});
  t.Put("x2", {3.0f, 0.0f});
  EXPECT_NEAR(*t.Cosine("x", "x2"), 1.0, 1e-9);
  EXPECT_NEAR(*t.Cosine("x", "y"), 0.0, 1e-9);
  EXPECT_TRUE(t.Cosine("x", "ghost").status().IsNotFound());
}

TEST(EmbeddingTableTest, ZeroVectorCosineIsZero) {
  EXPECT_DOUBLE_EQ(EmbeddingTable::CosineVec({0, 0}, {1, 1}), 0.0);
}

TEST(EmbeddingTableTest, NormalizeUnitLength) {
  std::vector<float> v{3.0f, 4.0f};
  EmbeddingTable::Normalize(&v);
  EXPECT_NEAR(v[0], 0.6f, 1e-6);
  EXPECT_NEAR(v[1], 0.8f, 1e-6);
  std::vector<float> zero{0.0f, 0.0f};
  EmbeddingTable::Normalize(&zero);  // must not NaN
  EXPECT_EQ(zero[0], 0.0f);
}

TEST(EmbeddingTableTest, MeanPooling) {
  std::vector<float> a{1.0f, 0.0f};
  std::vector<float> b{0.0f, 1.0f};
  auto m = EmbeddingTable::Mean({&a, &b}, 2);
  EXPECT_FLOAT_EQ(m[0], 0.5f);
  EXPECT_FLOAT_EQ(m[1], 0.5f);
  auto empty = EmbeddingTable::Mean({}, 2);
  EXPECT_EQ(empty, (std::vector<float>{0.0f, 0.0f}));
}

// ---------------------------------------------------------------------------
// Doc2Vec
// ---------------------------------------------------------------------------

TEST(Doc2VecTest, SimilarDocsCloserThanDissimilar) {
  // Docs 0/1 share vocabulary {0..4}; doc 2 uses {5..9}.
  std::vector<std::vector<int32_t>> docs;
  for (int rep = 0; rep < 30; ++rep) {
    // repetition via longer docs
  }
  docs.push_back(std::vector<int32_t>(60));
  docs.push_back(std::vector<int32_t>(60));
  docs.push_back(std::vector<int32_t>(60));
  for (size_t i = 0; i < 60; ++i) {
    docs[0][i] = static_cast<int32_t>(i % 5);
    docs[1][i] = static_cast<int32_t>((i + 2) % 5);
    docs[2][i] = static_cast<int32_t>(5 + i % 5);
  }
  Doc2VecOptions o;
  o.dim = 24;
  o.epochs = 40;
  o.threads = 1;
  Doc2Vec d2v(o);
  ASSERT_TRUE(d2v.Train(docs, 10).ok());
  double same = EmbeddingTable::CosineVec(d2v.DocVector(0), d2v.DocVector(1));
  double diff = EmbeddingTable::CosineVec(d2v.DocVector(0), d2v.DocVector(2));
  EXPECT_GT(same, diff);
}

TEST(Doc2VecTest, InferReturnsFiniteVector) {
  std::vector<std::vector<int32_t>> docs{{0, 1, 2}, {2, 3, 4}};
  Doc2VecOptions o;
  o.dim = 8;
  o.epochs = 5;
  o.threads = 1;
  Doc2Vec d2v(o);
  ASSERT_TRUE(d2v.Train(docs, 5).ok());
  auto v = d2v.Infer({0, 1});
  ASSERT_EQ(v.size(), 8u);
  for (float x : v) EXPECT_TRUE(std::isfinite(x));
}

TEST(Doc2VecTest, DeterministicRegardlessOfThreadSetting) {
  // Thread-invariance matrix over enough docs to span several blocks, so
  // the parallel schedule (not just one block) is exercised.
  std::vector<std::vector<int32_t>> docs;
  for (size_t i = 0; i < 50; ++i) {
    docs.push_back({static_cast<int32_t>(i % 5),
                    static_cast<int32_t>((i + 1) % 5),
                    static_cast<int32_t>((i + 2) % 7)});
  }
  Doc2VecOptions o;
  o.dim = 12;
  o.epochs = 4;
  o.threads = 1;
  Doc2Vec base(o);
  ASSERT_TRUE(base.Train(docs, 7).ok());
  for (size_t threads : {2u, 8u}) {
    Doc2VecOptions ot = o;
    ot.threads = threads;
    Doc2Vec b(ot);
    ASSERT_TRUE(b.Train(docs, 7).ok());
    for (size_t d = 0; d < docs.size(); ++d) {
      EXPECT_EQ(base.DocVector(d), b.DocVector(d))
          << "doc " << d << " threads " << threads;
    }
  }
}

TEST(Doc2VecTest, RejectsBadInput) {
  Doc2Vec d2v{Doc2VecOptions{}};
  EXPECT_TRUE(d2v.Train({{0}}, 0).IsInvalidArgument());
  EXPECT_TRUE(d2v.Train({{42}}, 10).IsOutOfRange());
}

// ---------------------------------------------------------------------------
// BlockSharder: LR schedule + sigmoid table
// ---------------------------------------------------------------------------

/// Regression for the LR decay stall: the old trainer only refreshed its
/// word counter on exact 1024-token multiples, so on a fixed-length walk
/// corpus (e.g. 30-token walks) the LR sat at the initial rate for
/// lcm(30, 1024) tokens. The fixed schedule decays strictly per sentence
/// until the 1e-4 floor.
TEST(BlockSharderTest, PerSentenceLrDecaysMonotonically) {
  const float initial = 0.025f;
  const uint64_t walk_length = 30;
  const uint64_t num_sentences = 500;
  const uint64_t total_steps = walk_length * num_sentences;
  float prev = initial + 1.0f;
  uint64_t words_done = 0;
  for (uint64_t s = 0; s < num_sentences; ++s) {
    const float lr = DecayedLr(initial, words_done, total_steps);
    EXPECT_LE(lr, prev) << "sentence " << s;
    EXPECT_GE(lr, initial * 1e-4f) << "sentence " << s;
    prev = lr;
    words_done += walk_length;
  }
  // The schedule actually decayed (the stalled schedule would still sit
  // at the initial rate after 15000 tokens — under lcm(30, 1024)).
  EXPECT_LT(prev, initial * 0.1f);
  // First sentence trains at the undecayed initial rate.
  EXPECT_EQ(DecayedLr(initial, 0, total_steps), initial);
  // The floor clamps instead of going negative.
  EXPECT_EQ(DecayedLr(initial, 10 * total_steps, total_steps),
            initial * 1e-4f);
}

TEST(BlockSharderTest, FastSigmoidMidpointAndEndpoints) {
  // The build/lookup grid mismatch made FastSigmoid(0) != 0.5; the table
  // now has an odd center count with the middle center exactly at 0.
  EXPECT_EQ(FastSigmoid(0.0f), 0.5f);
  EXPECT_EQ(FastSigmoid(kMaxExp), 1.0f);
  EXPECT_EQ(FastSigmoid(-kMaxExp), 0.0f);
  EXPECT_EQ(FastSigmoid(100.0f), 1.0f);
  EXPECT_EQ(FastSigmoid(-100.0f), 0.0f);
  // Just inside the clamp the table continues the true sigmoid.
  EXPECT_NEAR(FastSigmoid(5.999f), 1.0f / (1.0f + std::exp(-6.0f)), 1e-3);
  EXPECT_NEAR(FastSigmoid(-5.999f), 1.0f / (1.0f + std::exp(6.0f)), 1e-3);
  // Table ends are the grid-endpoint sigmoids (inclusive grid).
  EXPECT_FLOAT_EQ(SigmoidTable()[0], 1.0f / (1.0f + std::exp(6.0f)));
  EXPECT_FLOAT_EQ(SigmoidTable()[kSigmoidTableSize - 1],
                  1.0f / (1.0f + std::exp(-6.0f)));
}

TEST(BlockSharderTest, FastSigmoidTracksExactSigmoidAndIsSymmetric) {
  // Nearest-center lookup: error is bounded by half a grid cell's slope
  // (~1.5e-3 at the steepest point) inside the clamp range, and
  // f(x) + f(-x) == 1 up to the same grid error.
  for (float x = -5.993f; x <= 5.993f; x += 0.0137f) {
    const float exact = 1.0f / (1.0f + std::exp(-x));
    EXPECT_NEAR(FastSigmoid(x), exact, 2e-3) << "x=" << x;
    EXPECT_NEAR(FastSigmoid(x) + FastSigmoid(-x), 1.0f, 2e-3) << "x=" << x;
  }
  // Monotone non-decreasing over the grid.
  float prev = -1.0f;
  for (float x = -6.5f; x <= 6.5f; x += 0.003f) {
    const float y = FastSigmoid(x);
    EXPECT_GE(y, prev) << "x=" << x;
    prev = y;
  }
}

// ---------------------------------------------------------------------------
// PretrainedLexicon
// ---------------------------------------------------------------------------

PretrainedLexicon::Options DeterministicLexiconOptions() {
  PretrainedLexicon::Options o;
  o.w2v.threads = 1;
  o.w2v.epochs = 10;
  return o;
}

std::vector<std::vector<std::string>> SynonymCorpus() {
  // "car" and "auto" are used interchangeably (same contexts) and also
  // co-occur, like the synonym sentences of the generic corpus generator.
  std::vector<std::vector<std::string>> out;
  for (int i = 0; i < 100; ++i) {
    out.push_back({"the", "car", "drives", "fast"});
    out.push_back({"the", "auto", "drives", "fast"});
    out.push_back({"red", "car", "auto", "parked", "outside"});
    out.push_back({"the", "tree", "grows", "tall", "green"});
  }
  return out;
}

TEST(PretrainedLexiconTest, SynonymsScoreHigherThanUnrelated) {
  PretrainedLexicon lex(DeterministicLexiconOptions());
  ASSERT_TRUE(lex.Train(SynonymCorpus()).ok());
  EXPECT_GT(lex.Cosine("car", "auto"), lex.Cosine("car", "tree"));
}

TEST(PretrainedLexiconTest, TyposLandNearOriginal) {
  PretrainedLexicon lex(DeterministicLexiconOptions());
  ASSERT_TRUE(lex.Train(SynonymCorpus()).ok());
  // "crar" is OOV: the char-ngram component must carry the similarity.
  EXPECT_GT(lex.Cosine("parked", "parkde"), lex.Cosine("parked", "tree"));
}

TEST(PretrainedLexiconTest, GammaCalibration) {
  PretrainedLexicon lex(DeterministicLexiconOptions());
  ASSERT_TRUE(lex.Train(SynonymCorpus()).ok());
  double gamma = lex.CalibrateGamma({{"car", "auto"}});
  EXPECT_GT(gamma, 0.0);
  EXPECT_LE(gamma, 1.0);
  // Empty pair list falls back to the paper's constant.
  EXPECT_DOUBLE_EQ(lex.CalibrateGamma({}), 0.57);
}

TEST(PretrainedLexiconTest, MergeMapMergesVariantsNotStrangers) {
  PretrainedLexicon lex(DeterministicLexiconOptions());
  ASSERT_TRUE(lex.Train(SynonymCorpus()).ok());
  // Name-variant style labels share the surname token.
  std::vector<std::string> labels{"bruce willi", "b willi", "tree",
                                  "parked"};
  auto map = lex.BuildMergeMap(labels, 0.5);
  // The variants merge to one canonical label...
  ASSERT_TRUE(map.count("b willi") > 0 || map.count("bruce willi") > 0);
  // ...but unrelated labels stay untouched.
  EXPECT_EQ(map.count("tree"), 0u);
  EXPECT_EQ(map.count("parked"), 0u);
}

TEST(PretrainedLexiconTest, MergeMapCanonicalIsStable) {
  PretrainedLexicon lex(DeterministicLexiconOptions());
  ASSERT_TRUE(lex.Train(SynonymCorpus()).ok());
  std::vector<std::string> labels{"b willi", "bruce willi"};
  auto map = lex.BuildMergeMap(labels, 0.4);
  for (const auto& [from, to] : map) {
    // Canonical labels never map further (no chains).
    EXPECT_EQ(map.count(to), 0u);
  }
}

TEST(PretrainedLexiconTest, UntrainedUsesCharComponentOnly) {
  PretrainedLexicon lex;
  // Without Train the word component is zero; char n-grams still work.
  EXPECT_GT(lex.Cosine("willis", "willi"), lex.Cosine("willis", "zebra"));
}

}  // namespace
}  // namespace embed
}  // namespace tdmatch
