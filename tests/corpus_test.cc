#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "corpus/table.h"
#include "corpus/taxonomy.h"

namespace tdmatch {
namespace corpus {
namespace {

Table MakeMovies() {
  Table t("movies", {"title", "director", "genre"});
  EXPECT_TRUE(t.AddRow({"The Sixth Sense", "Shyamalan", "Thriller"}).ok());
  EXPECT_TRUE(t.AddRow({"Pulp Fiction", "Tarantino", "Drama"}).ok());
  return t;
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableTest, BasicAccessors) {
  Table t = MakeMovies();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.cell(0, 1), "Shyamalan");
  EXPECT_EQ(t.name(), "movies");
}

TEST(TableTest, RejectsWrongArity) {
  Table t("x", {"a", "b"});
  EXPECT_TRUE(t.AddRow({"only one"}).IsInvalidArgument());
  EXPECT_TRUE(t.AddRow({"1", "2", "3"}).IsInvalidArgument());
}

TEST(TableTest, ColumnIndex) {
  Table t = MakeMovies();
  auto idx = t.ColumnIndex("genre");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_TRUE(t.ColumnIndex("nope").status().IsNotFound());
}

TEST(TableTest, DropColumnsBuildsNtVariant) {
  Table t = MakeMovies();
  auto nt = t.DropColumns({"title"});
  ASSERT_TRUE(nt.ok());
  EXPECT_EQ(nt->NumColumns(), 2u);
  EXPECT_EQ(nt->NumRows(), 2u);
  EXPECT_EQ(nt->cell(0, 0), "Shyamalan");
  EXPECT_TRUE(t.DropColumns({"ghost"}).status().IsNotFound());
}

TEST(TableTest, TupleText) {
  Table t = MakeMovies();
  EXPECT_EQ(t.TupleText(1), "Pulp Fiction Tarantino Drama");
}

TEST(TableTest, SerializeTupleUsesColValMarkup) {
  Table t = MakeMovies();
  std::string s = t.SerializeTuple(0);
  EXPECT_NE(s.find("[COL] title [VAL] The Sixth Sense"), std::string::npos);
  EXPECT_NE(s.find("[COL] genre [VAL] Thriller"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Taxonomy
// ---------------------------------------------------------------------------

Taxonomy MakeTax() {
  // root -> a -> b -> c ; root -> a -> b -> d
  Taxonomy tax;
  ConceptId root = tax.AddConcept("root");
  ConceptId a = tax.AddConcept("a", root);
  ConceptId b = tax.AddConcept("b", a);
  tax.AddConcept("c", b);
  tax.AddConcept("d", b);
  return tax;
}

TEST(TaxonomyTest, PathFromRoot) {
  Taxonomy tax = MakeTax();
  auto path = tax.PathFromRoot(3);  // c
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(tax.label(path[0]), "root");
  EXPECT_EQ(tax.label(path[3]), "c");
  EXPECT_EQ(tax.Depth(3), 4u);
  EXPECT_EQ(tax.Depth(0), 1u);
}

TEST(TaxonomyTest, Children) {
  Taxonomy tax = MakeTax();
  auto kids = tax.Children(2);  // b
  EXPECT_EQ(kids.size(), 2u);
  EXPECT_TRUE(tax.Children(3).empty());
}

TEST(TaxonomyTest, NodeScorePaperExample) {
  // r1: a->b->c, r2: a->b->c->d. After stripping two general levels:
  // r1: c, r2: c->d, Node = 1/2 (the worked example of §V-B).
  Taxonomy tax;
  ConceptId a = tax.AddConcept("a");
  ConceptId b = tax.AddConcept("b", a);
  ConceptId c = tax.AddConcept("c", b);
  ConceptId d = tax.AddConcept("d", c);
  EXPECT_DOUBLE_EQ(Taxonomy::NodeScore(tax, c, d), 0.5);
}

TEST(TaxonomyTest, NodeScoreIdenticalIsOne) {
  Taxonomy tax = MakeTax();
  EXPECT_DOUBLE_EQ(Taxonomy::NodeScore(tax, 3, 3), 1.0);
}

TEST(TaxonomyTest, NodeScoreDisjointIsZero) {
  Taxonomy tax;
  ConceptId r1 = tax.AddConcept("r1");
  ConceptId a = tax.AddConcept("a", r1);
  ConceptId b = tax.AddConcept("b", a);
  ConceptId c = tax.AddConcept("c", b);
  ConceptId r2 = tax.AddConcept("r2");
  ConceptId x = tax.AddConcept("x", r2);
  ConceptId y = tax.AddConcept("y", x);
  ConceptId z = tax.AddConcept("z", y);
  EXPECT_DOUBLE_EQ(Taxonomy::NodeScore(tax, c, z), 0.0);
}

TEST(TaxonomyTest, NodeScoreShallowPathsKeepLeaf) {
  // Paths shorter than the stripped levels still compare by leaf.
  Taxonomy tax;
  ConceptId r = tax.AddConcept("r");
  ConceptId s = tax.AddConcept("s", r);
  EXPECT_DOUBLE_EQ(Taxonomy::NodeScore(tax, s, s), 1.0);
  EXPECT_DOUBLE_EQ(Taxonomy::NodeScore(tax, r, s), 0.0);
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

TEST(CorpusTest, TextCorpus) {
  Corpus c = Corpus::FromTexts(
      "docs", {{"p1", "hello world"}, {"p2", "second paragraph"}});
  EXPECT_EQ(c.type(), CorpusType::kText);
  EXPECT_EQ(c.NumDocs(), 2u);
  EXPECT_EQ(c.DocId(0), "p1");
  EXPECT_EQ(c.DocText(1), "second paragraph");
  EXPECT_EQ(c.ParentOf(0), -1);
  EXPECT_NE(c.texts(), nullptr);
  EXPECT_EQ(c.table(), nullptr);
}

TEST(CorpusTest, TableCorpus) {
  Corpus c = Corpus::FromTable(MakeMovies());
  EXPECT_EQ(c.type(), CorpusType::kTable);
  EXPECT_EQ(c.NumDocs(), 2u);
  EXPECT_EQ(c.DocText(0), "The Sixth Sense Shyamalan Thriller");
  EXPECT_NE(c.table(), nullptr);
}

TEST(CorpusTest, TaxonomyCorpusExposesParents) {
  Corpus c = Corpus::FromTaxonomy("tax", MakeTax());
  EXPECT_EQ(c.type(), CorpusType::kStructuredText);
  EXPECT_EQ(c.NumDocs(), 5u);
  EXPECT_EQ(c.DocText(2), "b");
  EXPECT_EQ(c.ParentOf(0), -1);
  EXPECT_EQ(c.ParentOf(2), 1);
}

TEST(CorpusTest, CheapCopySharesPayload) {
  Corpus a = Corpus::FromTable(MakeMovies());
  Corpus b = a;
  EXPECT_EQ(a.table(), b.table());
}

TEST(CorpusTest, TypeNames) {
  EXPECT_STREQ(CorpusTypeToString(CorpusType::kText), "text");
  EXPECT_STREQ(CorpusTypeToString(CorpusType::kTable), "table");
  EXPECT_STREQ(CorpusTypeToString(CorpusType::kStructuredText), "structured");
}

}  // namespace
}  // namespace corpus
}  // namespace tdmatch
