#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "graph/builder.h"

namespace tdmatch {
namespace graph {
namespace {

corpus::Corpus ReviewCorpus() {
  return corpus::Corpus::FromTexts(
      "reviews",
      {{"p1", "A comedy by Tarantino where Willis shines"},
       {"p2", "Shyamalan directs a thriller with Bruce Willis"}});
}

corpus::Corpus MovieCorpus() {
  corpus::Table t("movies", {"title", "director", "actor", "genre"});
  EXPECT_TRUE(
      t.AddRow({"The Sixth Sense", "Shyamalan", "Bruce Willis", "Thriller"})
          .ok());
  EXPECT_TRUE(
      t.AddRow({"Pulp Fiction", "Tarantino", "Bruce Willis", "Drama"}).ok());
  return corpus::Corpus::FromTable(t);
}

TEST(BuilderTest, CreatesMetadataNodesForBothCorpora) {
  GraphBuilder builder{BuilderOptions{}};
  auto g = builder.Build(ReviewCorpus(), MovieCorpus());
  ASSERT_TRUE(g.ok());
  EXPECT_NE(g->FindNode(GraphBuilder::MetaDocLabel(0, 0)), kInvalidNode);
  EXPECT_NE(g->FindNode(GraphBuilder::MetaDocLabel(0, 1)), kInvalidNode);
  EXPECT_NE(g->FindNode(GraphBuilder::MetaDocLabel(1, 0)), kInvalidNode);
  EXPECT_NE(g->FindNode(GraphBuilder::MetaDocLabel(1, 1)), kInvalidNode);
}

TEST(BuilderTest, CreatesColumnNodesForTables) {
  GraphBuilder builder{BuilderOptions{}};
  auto g = builder.Build(ReviewCorpus(), MovieCorpus());
  ASSERT_TRUE(g.ok());
  NodeId genre_col = g->FindNode(GraphBuilder::MetaColumnLabel(1, "genre"));
  ASSERT_NE(genre_col, kInvalidNode);
  EXPECT_EQ(g->node(genre_col).type, NodeType::kMetadataColumn);
  // The genre column must connect to its active-domain terms.
  NodeId thriller = g->FindNode("thriller");
  ASSERT_NE(thriller, kInvalidNode);
  EXPECT_TRUE(g->HasEdge(genre_col, thriller));
}

TEST(BuilderTest, SharedTermBridgesCorpora) {
  GraphBuilder builder{BuilderOptions{}};
  auto g = builder.Build(ReviewCorpus(), MovieCorpus());
  ASSERT_TRUE(g.ok());
  NodeId willis = g->FindNode("willi");  // stemmed
  ASSERT_NE(willis, kInvalidNode);
  NodeId p1 = g->FindNode(GraphBuilder::MetaDocLabel(0, 0));
  NodeId t2 = g->FindNode(GraphBuilder::MetaDocLabel(1, 1));
  EXPECT_TRUE(g->HasEdge(p1, willis));
  EXPECT_TRUE(g->HasEdge(t2, willis));
}

TEST(BuilderTest, IntersectFiltersSecondCorpusOnlyTerms) {
  // With kIntersect, terms appearing only in the larger-vocabulary corpus
  // must not become nodes.
  corpus::Corpus small = corpus::Corpus::FromTexts(
      "small", {{"a", "alpha beta"}});
  corpus::Corpus big = corpus::Corpus::FromTexts(
      "big", {{"b", "alpha gamma delta epsilon zeta eta theta"}});
  BuilderOptions opts;
  opts.filter = FilterMode::kIntersect;
  GraphBuilder builder(opts);
  auto g = builder.Build(small, big);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasNode("alpha"));
  EXPECT_TRUE(g->HasNode("beta"));       // from the creator corpus
  EXPECT_FALSE(g->HasNode("gamma"));     // filtered out (§II-B)
  EXPECT_FALSE(g->HasNode("epsilon"));
}

TEST(BuilderTest, NoFilterKeepsBothVocabularies) {
  corpus::Corpus small = corpus::Corpus::FromTexts("s", {{"a", "alpha"}});
  corpus::Corpus big =
      corpus::Corpus::FromTexts("b", {{"b", "alpha gamma delta"}});
  BuilderOptions opts;
  opts.filter = FilterMode::kNone;
  GraphBuilder builder(opts);
  auto g = builder.Build(small, big);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasNode("gamma"));
}

TEST(BuilderTest, NGramTermsDoNotCrossCellBoundaries) {
  corpus::Table t("t", {"c1", "c2"});
  ASSERT_TRUE(t.AddRow({"alpha beta", "gamma"}).ok());
  corpus::Corpus text =
      corpus::Corpus::FromTexts("x", {{"p", "alpha beta gamma"}});
  BuilderOptions opts;
  opts.filter = FilterMode::kNone;
  GraphBuilder builder(opts);
  auto g = builder.Build(text, corpus::Corpus::FromTable(t));
  ASSERT_TRUE(g.ok());
  // "alpha beta" is a term of both; "beta gamma" only exists in the text
  // (cell boundary in the table).
  NodeId ab = g->FindNode("alpha beta");
  ASSERT_NE(ab, kInvalidNode);
  NodeId tuple = g->FindNode(GraphBuilder::MetaDocLabel(1, 0));
  EXPECT_TRUE(g->HasEdge(tuple, ab));
  NodeId bg = g->FindNode("beta gamma");
  ASSERT_NE(bg, kInvalidNode);
  EXPECT_FALSE(g->HasEdge(tuple, bg));
}

TEST(BuilderTest, StructuredParentEdges) {
  corpus::Taxonomy tax;
  auto root = tax.AddConcept("audit programme");
  tax.AddConcept("iso nineteen", root);
  corpus::Corpus docs = corpus::Corpus::FromTexts(
      "d", {{"p", "the audit programme follows iso nineteen"}});
  GraphBuilder builder{BuilderOptions{}};
  auto g = builder.Build(docs, corpus::Corpus::FromTaxonomy("tax", tax));
  ASSERT_TRUE(g.ok());
  NodeId n_root = g->FindNode(GraphBuilder::MetaDocLabel(1, 0));
  NodeId n_child = g->FindNode(GraphBuilder::MetaDocLabel(1, 1));
  ASSERT_NE(n_root, kInvalidNode);
  ASSERT_NE(n_child, kInvalidNode);
  EXPECT_TRUE(g->HasEdge(n_root, n_child));
}

TEST(BuilderTest, StructuredParentEdgesCanBeDisabled) {
  corpus::Taxonomy tax;
  auto root = tax.AddConcept("alpha");
  tax.AddConcept("beta", root);
  corpus::Corpus docs =
      corpus::Corpus::FromTexts("d", {{"p", "alpha beta"}});
  BuilderOptions opts;
  opts.connect_structured_parents = false;
  GraphBuilder builder(opts);
  auto g = builder.Build(docs, corpus::Corpus::FromTaxonomy("tax", tax));
  ASSERT_TRUE(g.ok());
  NodeId n_root = g->FindNode(GraphBuilder::MetaDocLabel(1, 0));
  NodeId n_child = g->FindNode(GraphBuilder::MetaDocLabel(1, 1));
  EXPECT_FALSE(g->HasEdge(n_root, n_child));
}

TEST(BuilderTest, MergeMapCanonicalizesVariants) {
  MergeMap merge;
  merge["b willi"] = "bruce willi";
  BuilderOptions opts;
  opts.filter = FilterMode::kNone;
  opts.merge_map = &merge;
  GraphBuilder builder(opts);
  corpus::Corpus reviews =
      corpus::Corpus::FromTexts("r", {{"p", "B Willis shines"}});
  auto g = builder.Build(reviews, MovieCorpus());
  ASSERT_TRUE(g.ok());
  // The review's "b willi" bigram collapses onto the canonical node.
  EXPECT_FALSE(g->HasNode("b willi"));
  NodeId canon = g->FindNode("bruce willi");
  ASSERT_NE(canon, kInvalidNode);
  NodeId p = g->FindNode(GraphBuilder::MetaDocLabel(0, 0));
  EXPECT_TRUE(g->HasEdge(p, canon));
}

TEST(BuilderTest, BucketingMergesNumericCells) {
  corpus::Table t("t", {"country", "cases"});
  ASSERT_TRUE(t.AddRow({"france", "1000"}).ok());
  ASSERT_TRUE(t.AddRow({"spain", "9000"}).ok());
  corpus::Corpus claims =
      corpus::Corpus::FromTexts("c", {{"p", "france reported 1003 cases"}});
  BuilderOptions opts;
  opts.filter = FilterMode::kNone;
  opts.bucket_numbers = true;
  opts.fixed_buckets = 4;
  GraphBuilder builder(opts);
  auto g = builder.Build(claims, corpus::Corpus::FromTable(t));
  ASSERT_TRUE(g.ok());
  // 1000 and 1003 fall in the same bucket: the claim and the france tuple
  // share a numeric node; the raw literals are gone.
  EXPECT_FALSE(g->HasNode("1000"));
  EXPECT_FALSE(g->HasNode("1003"));
  NodeId p = g->FindNode(GraphBuilder::MetaDocLabel(0, 0));
  NodeId row0 = g->FindNode(GraphBuilder::MetaDocLabel(1, 0));
  NodeId row1 = g->FindNode(GraphBuilder::MetaDocLabel(1, 1));
  // Find the shared bucket node among p's neighbors.
  bool shares_with_row0 = false;
  bool shares_with_row1 = false;
  for (NodeId nb : g->Neighbors(p)) {
    if (g->node(nb).type != NodeType::kData) continue;
    if (g->node(nb).label.rfind("num[", 0) == 0) {
      shares_with_row0 |= g->HasEdge(row0, nb);
      shares_with_row1 |= g->HasEdge(row1, nb);
    }
  }
  EXPECT_TRUE(shares_with_row0);
  EXPECT_FALSE(shares_with_row1);
}

TEST(BuilderTest, EmptyCorpusRejected) {
  GraphBuilder builder{BuilderOptions{}};
  corpus::Corpus empty = corpus::Corpus::FromTexts("e", {});
  auto g = builder.Build(empty, MovieCorpus());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(BuilderTest, NormalizeLabelMatchesTermSpace) {
  text::Preprocessor pp;
  EXPECT_EQ(GraphBuilder::NormalizeLabel(pp, "Bruce Willis"), "bruce willi");
  EXPECT_EQ(GraphBuilder::NormalizeLabel(pp, "The Planning"), "plan");
}

// Property sweep: across filter modes, every metadata doc node exists and
// no edge connects two metadata doc nodes of *different* corpora.
class BuilderFilterPropertyTest
    : public ::testing::TestWithParam<FilterMode> {};

TEST_P(BuilderFilterPropertyTest, MetadataInvariants) {
  BuilderOptions opts;
  opts.filter = GetParam();
  GraphBuilder builder(opts);
  auto g = builder.Build(ReviewCorpus(), MovieCorpus());
  ASSERT_TRUE(g.ok());
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_NE(g->FindNode(GraphBuilder::MetaDocLabel(0, d)), kInvalidNode);
    EXPECT_NE(g->FindNode(GraphBuilder::MetaDocLabel(1, d)), kInvalidNode);
  }
  for (NodeId m : g->MetadataDocNodes(0)) {
    for (NodeId nb : g->Neighbors(m)) {
      const NodeInfo& info = g->node(nb);
      EXPECT_FALSE(info.type == NodeType::kMetadataDoc && info.corpus == 1)
          << "cross-corpus metadata edge (never created by Alg. 1)";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FilterModes, BuilderFilterPropertyTest,
                         ::testing::Values(FilterMode::kNone,
                                           FilterMode::kIntersect,
                                           FilterMode::kTfIdf));

// ---------------------------------------------------------------------------
// Parallel build determinism
// ---------------------------------------------------------------------------

/// A corpus pair big enough that the parallel preprocessing phase actually
/// splits into several per-thread blocks.
std::pair<corpus::Corpus, corpus::Corpus> WideCorpora() {
  std::vector<corpus::TextDoc> docs;
  for (int i = 0; i < 37; ++i) {
    docs.push_back({"p" + std::to_string(i),
                    "review " + std::to_string(i) +
                        " praises actor number " + std::to_string(i % 7) +
                        " in a thriller about auditing"});
  }
  corpus::Table t("movies", {"title", "actor", "genre"});
  for (int i = 0; i < 29; ++i) {
    EXPECT_TRUE(t.AddRow({"movie " + std::to_string(i),
                          "actor number " + std::to_string(i % 7),
                          i % 2 == 0 ? "thriller" : "comedy"})
                    .ok());
  }
  return {corpus::Corpus::FromTexts("reviews", std::move(docs)),
          corpus::Corpus::FromTable(std::move(t))};
}

TEST(BuilderTest, BuildIsThreadCountInvariant) {
  auto [reviews, movies] = WideCorpora();
  std::vector<Graph> graphs;
  for (size_t threads : {1, 4, 8}) {
    BuilderOptions opts;
    opts.threads = threads;
    GraphBuilder builder(opts);
    auto g = builder.Build(reviews, movies);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    graphs.push_back(std::move(*g));
  }
  const Graph& base = graphs[0];
  for (size_t v = 1; v < graphs.size(); ++v) {
    const Graph& other = graphs[v];
    ASSERT_EQ(base.NumNodes(), other.NumNodes());
    ASSERT_EQ(base.NumEdges(), other.NumEdges());
    for (NodeId id = 0; id < static_cast<NodeId>(base.NumNodes()); ++id) {
      // Same label at the same id (node creation order is canonical)...
      EXPECT_EQ(base.node(id).label, other.node(id).label);
      // ...and the same neighbors in the same order (walk determinism
      // depends on neighbor order, not just the edge set).
      EXPECT_EQ(base.Neighbors(id).ToVector(),
                other.Neighbors(id).ToVector())
          << "neighbor order differs at node " << id;
    }
  }
}

}  // namespace
}  // namespace graph
}  // namespace tdmatch
