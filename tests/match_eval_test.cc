#include <gtest/gtest.h>

#include <algorithm>

#include "eval/kfold.h"
#include "eval/metrics.h"
#include "eval/taxonomy_metrics.h"
#include "match/combine.h"
#include "match/top_k.h"
#include "util/rng.h"

namespace tdmatch {
namespace {

using eval::GoldSet;
using eval::Ranking;

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

TEST(TopKTest, SelectOrdersByScore) {
  auto top = match::TopK::Select({0.1, 0.9, 0.5}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].index, 1);
  EXPECT_DOUBLE_EQ(top[0].score, 0.9);
  EXPECT_EQ(top[1].index, 2);
}

TEST(TopKTest, SelectTieBreaksByIndex) {
  auto top = match::TopK::Select({0.5, 0.5, 0.5}, 3);
  EXPECT_EQ(top[0].index, 0);
  EXPECT_EQ(top[1].index, 1);
  EXPECT_EQ(top[2].index, 2);
}

TEST(TopKTest, SelectTieBreaksByIndexUnderBoundedHeap) {
  // Regression test for the heap implementation: many duplicate scores,
  // k small relative to n so the heap path is taken. The documented
  // stable lower-index-wins order must survive heap reordering.
  std::vector<double> scores(64);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = (i % 2 == 0) ? 0.75 : 0.25;  // 32-way ties on both levels
  }
  auto top = match::TopK::Select(scores, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top[i].index, static_cast<int32_t>(2 * i)) << "rank " << i;
    EXPECT_DOUBLE_EQ(top[i].score, 0.75);
  }
  // Ties at the heap displacement boundary: once the heap holds k=2
  // entries of score 0.5 (indices 0, 1), the equal-scored candidate 2
  // must NOT displace the root (lower index wins), while the
  // better-scored candidate 4 must.
  auto boundary = match::TopK::Select({0.5, 0.5, 0.5, 0.1, 0.6, 0.1, 0.1,
                                       0.1, 0.1},
                                      2);
  ASSERT_EQ(boundary.size(), 2u);
  EXPECT_EQ(boundary[0].index, 4);
  EXPECT_DOUBLE_EQ(boundary[0].score, 0.6);
  EXPECT_EQ(boundary[1].index, 0);
}

TEST(TopKTest, SelectClampsK) {
  EXPECT_EQ(match::TopK::Select({0.1}, 10).size(), 1u);
  EXPECT_TRUE(match::TopK::Select({}, 5).empty());
}

TEST(TopKTest, HeapAndPartialSortPathsAgree) {
  // Property check: for random scores with deliberate duplicates, the
  // small-k heap path must produce exactly the ranking of a full sort
  // under the documented order (score desc, index asc).
  util::Rng rng(17);
  std::vector<double> scores(600);
  for (auto& s : scores) {
    s = static_cast<double>(rng.UniformInt(50ULL)) / 50.0;  // many ties
  }
  auto reference = [&](size_t k) {
    std::vector<int32_t> idx(scores.size());
    for (size_t i = 0; i < scores.size(); ++i) {
      idx[i] = static_cast<int32_t>(i);
    }
    std::sort(idx.begin(), idx.end(), [&](int32_t a, int32_t b) {
      if (scores[static_cast<size_t>(a)] != scores[static_cast<size_t>(b)]) {
        return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
      }
      return a < b;
    });
    idx.resize(k);
    return idx;
  };
  for (size_t k : {1u, 5u, 20u, 140u, 599u, 600u}) {
    auto got = match::TopK::Select(scores, k);
    auto want = reference(k);
    ASSERT_EQ(got.size(), want.size()) << "k=" << k;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].index, want[i]) << "k=" << k << " rank " << i;
    }
  }
}

TEST(TopKTest, FullRankingIsPermutation) {
  auto r = match::TopK::FullRanking({0.3, 0.9, 0.1, 0.5});
  EXPECT_EQ(r, (std::vector<int32_t>{1, 3, 0, 2}));
}

TEST(TopKTest, ScoreAllCosine) {
  std::vector<float> q{1.0f, 0.0f};
  std::vector<std::vector<float>> cands{{1.0f, 0.0f}, {0.0f, 1.0f}, {}};
  auto s = match::TopK::ScoreAll(q, cands);
  EXPECT_NEAR(s[0], 1.0, 1e-9);
  EXPECT_NEAR(s[1], 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s[2], 0.0);  // empty candidate scores zero
}

// ---------------------------------------------------------------------------
// ScoreCombiner
// ---------------------------------------------------------------------------

TEST(CombineTest, AverageElementwise) {
  auto avg = match::ScoreCombiner::Average({0.0, 1.0}, {1.0, 0.0});
  EXPECT_EQ(avg, (std::vector<double>{0.5, 0.5}));
}

TEST(CombineTest, MinMaxNormalize) {
  auto n = match::ScoreCombiner::MinMaxNormalize({2.0, 4.0, 6.0});
  EXPECT_EQ(n, (std::vector<double>{0.0, 0.5, 1.0}));
  auto flat = match::ScoreCombiner::MinMaxNormalize({3.0, 3.0});
  EXPECT_EQ(flat, (std::vector<double>{0.0, 0.0}));
}

TEST(CombineTest, CombinationCanFixOneMethodsMistake) {
  // Method A ranks candidate 1 first; method B strongly prefers 0. The
  // normalized average puts 0 first.
  auto combined = match::ScoreCombiner::AverageNormalized(
      {0.48, 0.52, 0.0}, {1.0, 0.1, 0.0});
  auto ranking = match::TopK::FullRanking(combined);
  EXPECT_EQ(ranking[0], 0);
}

// ---------------------------------------------------------------------------
// RankingMetrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, MrrBasic) {
  std::vector<Ranking> rankings{{2, 0, 1}, {0, 1, 2}};
  std::vector<GoldSet> gold{{0}, {0}};
  // Query 0: first correct at rank 2 → 1/2; query 1: rank 1 → 1.
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MRR(rankings, gold), 0.75);
}

TEST(MetricsTest, MrrSkipsEmptyGold) {
  std::vector<Ranking> rankings{{0, 1}, {1, 0}};
  std::vector<GoldSet> gold{{}, {1}};
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MRR(rankings, gold), 1.0);
}

TEST(MetricsTest, MrrZeroWhenNeverFound) {
  std::vector<Ranking> rankings{{0, 1}};
  std::vector<GoldSet> gold{{5}};
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MRR(rankings, gold), 0.0);
}

TEST(MetricsTest, AveragePrecisionSingleGold) {
  // Gold at rank 3 of k=5: AP@5 = (1/3)/min(1,5) = 1/3.
  EXPECT_NEAR(
      eval::RankingMetrics::AveragePrecisionAtK({7, 8, 3, 9, 1}, {3}, 5),
      1.0 / 3, 1e-9);
}

TEST(MetricsTest, AveragePrecisionMultiGold) {
  // Gold {0,1}; ranking hits at positions 1 and 3.
  // AP@5 = (1/1 + 2/3) / 2.
  EXPECT_NEAR(eval::RankingMetrics::AveragePrecisionAtK({0, 9, 1}, {0, 1}, 5),
              (1.0 + 2.0 / 3) / 2, 1e-9);
}

TEST(MetricsTest, MapAtKTruncates) {
  // Gold at rank 3 but k=2 → AP@2 = 0.
  std::vector<Ranking> rankings{{7, 8, 3}};
  std::vector<GoldSet> gold{{3}};
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MAPAtK(rankings, gold, 2), 0.0);
  EXPECT_GT(eval::RankingMetrics::MAPAtK(rankings, gold, 3), 0.0);
}

TEST(MetricsTest, HasPositiveAtK) {
  std::vector<Ranking> rankings{{2, 0}, {1, 0}};
  std::vector<GoldSet> gold{{0}, {9}};
  EXPECT_DOUBLE_EQ(
      eval::RankingMetrics::HasPositiveAtK(rankings, gold, 1), 0.0);
  EXPECT_DOUBLE_EQ(
      eval::RankingMetrics::HasPositiveAtK(rankings, gold, 2), 0.5);
}

TEST(MetricsTest, PerfectRankingScoresOne) {
  std::vector<Ranking> rankings{{0, 1, 2}};
  std::vector<GoldSet> gold{{0}};
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MRR(rankings, gold), 1.0);
  EXPECT_DOUBLE_EQ(eval::RankingMetrics::MAPAtK(rankings, gold, 1), 1.0);
  EXPECT_DOUBLE_EQ(
      eval::RankingMetrics::HasPositiveAtK(rankings, gold, 1), 1.0);
}

TEST(MetricsTest, F1Harmonic) {
  EXPECT_DOUBLE_EQ(eval::F1(0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(eval::F1(0.0, 0.9), 0.0);
  EXPECT_NEAR(eval::F1(1.0, 0.5), 2.0 / 3, 1e-9);
}

TEST(MetricsTest, ExactSetScores) {
  // Query: top-2 predictions {0, 5}; gold {0, 1, 2}.
  std::vector<Ranking> rankings{{0, 5, 1}};
  std::vector<GoldSet> gold{{0, 1, 2}};
  auto prf = eval::ExactSetScores(rankings, gold, 2);
  EXPECT_DOUBLE_EQ(prf.precision, 0.5);       // 1 of 2 predictions correct
  EXPECT_NEAR(prf.recall, 1.0 / 3, 1e-9);     // 1 of 3 gold found
  EXPECT_NEAR(prf.f1, eval::F1(0.5, 1.0 / 3), 1e-9);
}

// ---------------------------------------------------------------------------
// TaxonomyMetrics
// ---------------------------------------------------------------------------

corpus::Taxonomy DeepTax() {
  // root -> l1 -> l2a -> l3a
  //              l2a -> l3b
  //        l1 -> l2b
  corpus::Taxonomy tax;
  auto root = tax.AddConcept("root");
  auto l1 = tax.AddConcept("l1", root);
  auto l2a = tax.AddConcept("l2a", l1);
  tax.AddConcept("l3a", l2a);
  tax.AddConcept("l3b", l2a);
  tax.AddConcept("l2b", l1);
  return tax;
}

TEST(TaxonomyMetricsTest, ExactMatchesById) {
  corpus::Taxonomy tax = DeepTax();
  std::vector<Ranking> rankings{{3, 5}};
  std::vector<GoldSet> gold{{3}};
  auto prf = eval::TaxonomyMetrics::ExactScores(tax, rankings, gold, 1);
  EXPECT_DOUBLE_EQ(prf.precision, 1.0);
  EXPECT_DOUBLE_EQ(prf.recall, 1.0);
}

TEST(TaxonomyMetricsTest, NodeScoresRewardSiblingPaths) {
  corpus::Taxonomy tax = DeepTax();
  // Predicted l3b (id 4) for gold l3a (id 3): stripped paths share l2a.
  std::vector<Ranking> rankings{{4}};
  std::vector<GoldSet> gold{{3}};
  auto exact = eval::TaxonomyMetrics::ExactScores(tax, rankings, gold, 1);
  auto node = eval::TaxonomyMetrics::NodeScores(tax, rankings, gold, 1);
  EXPECT_DOUBLE_EQ(exact.f1, 0.0);
  EXPECT_GT(node.f1, 0.0);  // partial path credit
  EXPECT_LT(node.f1, 1.0);
}

TEST(TaxonomyMetricsTest, NodePerfectForExactPrediction) {
  corpus::Taxonomy tax = DeepTax();
  std::vector<Ranking> rankings{{3}};
  std::vector<GoldSet> gold{{3}};
  auto node = eval::TaxonomyMetrics::NodeScores(tax, rankings, gold, 1);
  EXPECT_DOUBLE_EQ(node.precision, 1.0);
  EXPECT_DOUBLE_EQ(node.recall, 1.0);
}

TEST(TaxonomyMetricsTest, RecallGrowsWithK) {
  corpus::Taxonomy tax = DeepTax();
  std::vector<Ranking> rankings{{3, 5, 4}};
  std::vector<GoldSet> gold{{3, 4}};
  auto k1 = eval::TaxonomyMetrics::ExactScores(tax, rankings, gold, 1);
  auto k3 = eval::TaxonomyMetrics::ExactScores(tax, rankings, gold, 3);
  EXPECT_LT(k1.recall, k3.recall);
  EXPECT_GE(k1.precision, k3.precision);
}

// ---------------------------------------------------------------------------
// KFold
// ---------------------------------------------------------------------------

TEST(KFoldTest, PartitionsAllIndices) {
  auto folds = eval::KFold::Folds(23, 5, 1);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(23, 0);
  for (const auto& f : folds) {
    for (int32_t i : f.test) seen[static_cast<size_t>(i)]++;
    EXPECT_EQ(f.train.size() + f.test.size(), 23u);
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(KFoldTest, TrainTestDisjoint) {
  for (const auto& f : eval::KFold::Folds(20, 4, 2)) {
    for (int32_t t : f.test) {
      EXPECT_EQ(std::count(f.train.begin(), f.train.end(), t), 0);
    }
  }
}

TEST(KFoldTest, HoldOutFractions) {
  auto split = eval::KFold::HoldOut(100, 0.6, 3);
  EXPECT_EQ(split.train.size(), 60u);
  EXPECT_EQ(split.test.size(), 40u);
}

TEST(KFoldTest, DeterministicBySeed) {
  auto a = eval::KFold::Folds(30, 5, 7);
  auto b = eval::KFold::Folds(30, 5, 7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].test, b[i].test);
  }
}

}  // namespace
}  // namespace tdmatch
