#ifndef TDMATCH_BENCH_BENCH_REPORTER_H_
#define TDMATCH_BENCH_BENCH_REPORTER_H_

#include <string>
#include <vector>

#include "bench_cli.h"

namespace tdmatch {
namespace bench {

/// One machine-readable benchmark measurement. The (scenario, parameter,
/// metric) triple identifies a measurement across PRs so CI can track its
/// trajectory; `value` is the measurement and `wall_seconds` the wall time
/// spent producing it.
struct BenchRow {
  std::string scenario;   ///< e.g. "IMDb", "Corona", "IMDb-WT"
  std::string parameter;  ///< e.g. "walk_length=20", "method=W-RW"
  std::string metric;     ///< e.g. "map@5", "mrr", "train_seconds"
  double value = 0;
  double wall_seconds = 0;
};

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// and control characters).
std::string JsonEscape(const std::string& s);

/// Formats one JSON Lines record (no trailing newline). Non-finite numbers
/// serialise as null so the output is always valid JSON; the CI gate
/// (tools/check_bench.py) rejects null values.
std::string FormatJsonRow(const std::string& bench, const BenchRow& row);

/// \brief Collects benchmark rows and renders them either as the
/// paper-style tables (default) or as JSON Lines (--json / --out).
///
/// In table mode Note()/Title()/Print() go to stdout and Finish() only
/// writes rows when --out is set. In JSON mode all human-oriented text is
/// suppressed and Finish() emits one JSON object per row to stdout (or to
/// --out when given, leaving stdout silent).
class BenchReporter {
 public:
  BenchReporter(std::string bench_name, BenchOptions options);
  /// Flushes via Finish() as a safety net; call Finish() explicitly from
  /// main() so I/O errors can turn into a nonzero exit code.
  ~BenchReporter();

  const BenchOptions& options() const { return options_; }
  const std::string& bench_name() const { return bench_name_; }

  /// Human-facing prose; printed with a trailing newline in table mode.
  void Note(const std::string& text);
  /// "=== title ===" separator in table mode.
  void Title(const std::string& title);
  /// Raw preformatted table text in table mode (printed verbatim).
  void Print(const std::string& text);
  /// printf-style table text in table mode (what the bench mains use to
  /// build their paper-style rows).
  void Printf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));

  void Add(const std::string& scenario, const std::string& parameter,
           const std::string& metric, double value, double wall_seconds);
  void Add(BenchRow row);
  const std::vector<BenchRow>& rows() const { return rows_; }

  /// Emits the collected rows (see class comment). Idempotent; returns
  /// false when writing --out fails (or the --profile file cannot be
  /// written).
  bool Finish();

 private:
  std::string bench_name_;
  BenchOptions options_;
  std::vector<BenchRow> rows_;
  bool finished_ = false;
  /// --profile capture is running (started in the constructor).
  bool profiling_ = false;
};

}  // namespace bench
}  // namespace tdmatch

#endif  // TDMATCH_BENCH_BENCH_REPORTER_H_
