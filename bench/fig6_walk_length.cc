// Fig. 6: mean average precision (MAP@5) as the random-walk length grows
// {5, 10, 20, 30, 40, 50} for all five scenarios.

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("fig6_walk_length", opts);
  rep.Note("Reproduction of Fig. 6 (match quality vs walk length)");
  bench::RunMapSweep(rep, "walk_length", bench::MakeSweepScenarios(opts),
                     bench::NumericPoints(opts, {5, 10, 20, 30, 40, 50},
                                          [](core::TDmatchOptions& o,
                                             size_t v) {
                                            o.walks.walk_length = v;
                                          }));
  rep.Note(
      "\nExpected shape: quality rises up to ~length 20 and then plateaus\n"
      "(larger/denser graphs keep profiting from longer walks).");
  return rep.Finish() ? 0 : 1;
}
