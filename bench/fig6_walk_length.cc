// Fig. 6: mean average precision (MAP@5) as the random-walk length grows
// {5, 10, 20, 30, 40, 50} for all five scenarios.

#include <cstdio>

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Fig. 6 (match quality vs walk length)\n");
  auto scenarios = bench::MakeSweepScenarios();
  const size_t lengths[] = {5, 10, 20, 30, 40, 50};

  std::printf("\n%-6s", "len");
  for (const auto& sc : scenarios) std::printf("  %-6s", sc.name.c_str());
  std::printf("\n");
  for (size_t len : lengths) {
    std::printf("%-6zu", len);
    for (const auto& sc : scenarios) {
      core::TDmatchOptions o = sc.base_options;
      o.walks.walk_length = len;
      std::printf("  %.3f", bench::MapAt5(sc.data.scenario, o));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: quality rises up to ~length 20 and then plateaus\n"
      "(larger/denser graphs keep profiting from longer walks).\n");
  return 0;
}
