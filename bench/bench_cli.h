#ifndef TDMATCH_BENCH_BENCH_CLI_H_
#define TDMATCH_BENCH_BENCH_CLI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace tdmatch {
namespace bench {

/// Workload size of a bench run.
///  - kSmoke: CI scale — tiny scenarios and trimmed sweep grids so every
///    bench finishes in seconds on a single core.
///  - kSweep: the reduced scale the parameter-sweep figures have always
///    used (the default).
///  - kFull:  the generators' built-in defaults, closest to the paper's
///    setting (minutes for the heaviest benches).
enum class Scale { kSmoke, kSweep, kFull };

/// "smoke" / "sweep" / "full".
const char* ScaleName(Scale scale);

enum class OutputFormat { kTable, kJson };

/// \brief The shared command line of every bench binary.
///
///   --json           emit JSON Lines rows instead of paper-style tables
///   --out <path>     also write the JSON rows to <path> (any format)
///   --scale <s>      smoke | sweep (default) | full
///   --seed <n>       override generator + pipeline seeds (n > 0)
///   --filter <re>    only run scenarios/variants matching the regex
///   --profile <p>    sample the bench's CPU and write folded stacks to <p>
///   --profile-hz <n> profiler sampling frequency (default 99)
///   --help           print usage and exit
struct BenchOptions {
  OutputFormat format = OutputFormat::kTable;
  Scale scale = Scale::kSweep;
  /// When non-empty, JSON rows are written to this file regardless of the
  /// stdout format.
  std::string out_path;
  /// 0 = keep each generator's / the pipeline's built-in seed.
  uint64_t seed = 0;
  /// ECMAScript regex matched (unanchored) against scenario and variant
  /// names; empty matches everything.
  std::string filter;
  /// When non-empty, the sampling CPU profiler runs for the whole bench
  /// and its flamegraph.pl-style folded stacks are written here.
  std::string profile_path;
  /// Profiler sampling frequency (samples per second of CPU time).
  int profile_hz = 99;
  /// --help was passed; ParseArgsOrExit() handles it before returning.
  bool help = false;

  bool json() const { return format == OutputFormat::kJson; }
  bool table() const { return format == OutputFormat::kTable; }

  /// True when `name` passes --filter.
  bool Matches(const std::string& name) const;
};

/// Usage text shared by --help and parse errors.
std::string BenchUsage(const std::string& program);

/// Parses the shared bench flags; `args` excludes the program name.
/// Unknown flags, missing/extra values, bad --scale names, non-numeric
/// --seed values and invalid --filter regexes are InvalidArgument errors.
util::Result<BenchOptions> ParseBenchArgs(const std::vector<std::string>& args);

/// Parse-or-die wrapper for bench main()s: prints usage and exits 0 on
/// --help; prints the error plus usage to stderr and exits 2 on bad input.
BenchOptions ParseArgsOrExit(int argc, char** argv);

}  // namespace bench
}  // namespace tdmatch

#endif  // TDMATCH_BENCH_BENCH_CLI_H_
