// Table V: quality of match results for the Snopes scenario
// (text-to-text). Row set {S-BE, W-RW, W-RW-EX, RANK*}.

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table5_snopes", opts);
  rep.Note("Reproduction of Table V (Snopes scenario)");
  if (!opts.Matches("Snopes")) return rep.Finish() ? 0 : 1;

  auto data =
      datagen::ClaimsGenerator::Generate(bench::ScaledSnopesOptions(opts));
  // §II-C synonym merging through the pre-trained lexicon is part of the
  // default pipeline (the paper reports +1.5-1.7% on these corpora).
  auto lex = bench::MakeLexicon(data, opts);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  core::TDmatchOptions base = bench::TextTaskOptions(opts);
  base.use_synonym_merge = true;
  base.gamma = lex.gamma;
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", base, nullptr, lex.lexicon.get())});
  core::TDmatchOptions ex = base;
  ex.expand = true;
  methods.push_back(
      {"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                      "W-RW-EX", ex, data.kb.get(), lex.lexicon.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});

  bench::RunRankingTable(rep, "Table V — Snopes", "Snopes", data.scenario,
                         methods);
  return rep.Finish() ? 0 : 1;
}
