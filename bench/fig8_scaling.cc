// Fig. 8: total time to generate random walks and train the embeddings as
// the graph grows (STS-derived graphs of increasing size). The paper
// observes linear scaling in the number of nodes.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "embed/random_walk.h"
#include "embed/word2vec.h"
#include "graph/builder.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("fig8_scaling", opts);
  rep.Note("Reproduction of Fig. 8 (training time vs graph size)");
  rep.Printf("\n%-10s %-10s %-10s %-12s\n", "pairs", "nodes", "edges",
             "time (s)");

  const bool smoke = opts.scale == bench::Scale::kSmoke;
  for (size_t pairs : bench::ScaledPoints(opts, {200, 400, 800, 1600, 3200})) {
    datagen::StsOptions gen = bench::ScaledStsOptions(opts);
    gen.num_pairs = pairs;
    gen.threshold = 0;  // keep all pairs: graph size is what matters here
    auto data = datagen::StsGenerator::Generate(gen);

    graph::GraphBuilder builder{graph::BuilderOptions{}};
    auto g = builder.Build(data.scenario.first, data.scenario.second);
    if (!g.ok()) {
      std::fprintf(stderr, "fig8_scaling: build at pairs=%zu FAILED: %s\n",
                   pairs, g.status().ToString().c_str());
      rep.Print("build failed: " + g.status().ToString() + "\n");
      continue;
    }
    util::StopWatch watch;
    embed::RandomWalkOptions walk_opts{.num_walks = smoke ? 6u : 12u,
                                       .walk_length = smoke ? 10u : 15u,
                                       .seed = opts.seed == 0 ? 1 : opts.seed,
                                       .threads = smoke ? 4u : 8u};
    embed::SentenceCorpus walks = embed::RandomWalker::GenerateCorpus(
        *g, walk_opts);
    // Word2Vec training is sequential-deterministic (the threads field no
    // longer affects it — see ROADMAP "Deterministic parallel training"),
    // so this bench measures graph-size scaling: walk sharding + one
    // training pass per size point.
    embed::Word2VecOptions w2v_opts;
    w2v_opts.epochs = smoke ? 1 : 2;
    if (opts.seed != 0) w2v_opts.seed = opts.seed;
    embed::Word2Vec w2v(w2v_opts);
    TDM_CHECK(w2v.Train(walks, g->NumNodes()).ok());
    const double seconds = watch.ElapsedSeconds();

    const std::string param = "pairs=" + std::to_string(pairs);
    rep.Add("STS", param, "nodes", static_cast<double>(g->NumNodes()), seconds);
    rep.Add("STS", param, "edges", static_cast<double>(g->NumEdges()), seconds);
    rep.Add("STS", param, "walk_train_seconds", seconds, seconds);
    rep.Printf("%-10zu %-10zu %-10zu %-12.3f\n", pairs, g->NumNodes(),
               g->NumEdges(), seconds);
  }
  rep.Note("\nExpected shape: time grows linearly with node count.");
  return rep.Finish() ? 0 : 1;
}
