// Fig. 8: total time to generate random walks and train the embeddings as
// the graph grows (STS-derived graphs of increasing size). The paper
// observes linear scaling in the number of nodes.

#include <cstdio>

#include "bench_common.h"
#include "datagen/sts.h"
#include "embed/random_walk.h"
#include "embed/word2vec.h"
#include "graph/builder.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Fig. 8 (training time vs graph size)\n");
  std::printf("\n%-10s %-10s %-10s %-12s\n", "pairs", "nodes", "edges",
              "time (s)");
  for (size_t pairs : {200, 400, 800, 1600, 3200}) {
    datagen::StsOptions gen;
    gen.num_pairs = pairs;
    gen.threshold = 0;  // keep all pairs: graph size is what matters here
    auto data = datagen::StsGenerator::Generate(gen);

    graph::GraphBuilder builder{graph::BuilderOptions{}};
    auto g = builder.Build(data.scenario.first, data.scenario.second);
    if (!g.ok()) {
      std::printf("build failed: %s\n", g.status().ToString().c_str());
      continue;
    }
    util::StopWatch watch;
    embed::RandomWalkOptions walk_opts{.num_walks = 12, .walk_length = 15,
                                       .seed = 1, .threads = 8};
    auto walks = embed::RandomWalker::Generate(*g, walk_opts);
    embed::Word2VecOptions w2v_opts;
    w2v_opts.threads = 8;
    w2v_opts.epochs = 2;
    embed::Word2Vec w2v(w2v_opts);
    TDM_CHECK(w2v.Train(walks, g->NumNodes()).ok());
    std::printf("%-10zu %-10zu %-10zu %-12.3f\n", pairs, g->NumNodes(),
                g->NumEdges(), watch.ElapsedSeconds());
  }
  std::printf("\nExpected shape: time grows linearly with node count.\n");
  return 0;
}
