// Fig. 8: total time to generate random walks and train the embeddings as
// the graph grows (STS-derived graphs of increasing size). The paper
// observes linear scaling in the number of nodes.
//
// Also reports `threads_speedup` — the 8-thread vs 1-thread wall-clock
// ratio of the walk+train stage on the largest size point. The block
// schedule guarantees both runs produce bit-identical embeddings, so the
// ratio isolates pure parallel efficiency; tools/check_bench.py can gate
// on it with --min-threads-speedup.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "embed/random_walk.h"
#include "embed/word2vec.h"
#include "graph/builder.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

/// One timed walk+train pass; returns elapsed seconds.
double WalkAndTrain(const graph::Graph& g, uint64_t seed, size_t threads,
                    bool smoke) {
  util::StopWatch watch;
  embed::RandomWalkOptions walk_opts{.num_walks = smoke ? 6u : 12u,
                                     .walk_length = smoke ? 10u : 15u,
                                     .seed = seed,
                                     .threads = threads};
  embed::SentenceCorpus walks =
      embed::RandomWalker::GenerateCorpus(g, walk_opts);
  embed::Word2VecOptions w2v_opts;
  w2v_opts.epochs = smoke ? 1 : 2;
  w2v_opts.seed = seed;
  w2v_opts.threads = threads;
  embed::Word2Vec w2v(w2v_opts);
  TDM_CHECK(w2v.Train(walks, g.NumNodes()).ok());
  return watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("fig8_scaling", opts);
  rep.Note("Reproduction of Fig. 8 (training time vs graph size)");
  rep.Printf("\n%-10s %-10s %-10s %-12s\n", "pairs", "nodes", "edges",
             "time (s)");

  const bool smoke = opts.scale == bench::Scale::kSmoke;
  // One resolved seed drives BOTH the walker and Word2Vec. (Previously
  // only the walker substituted 1 for --seed 0 while Word2Vec silently
  // kept its default, so the two stages ran from unrelated seeds.)
  const uint64_t seed = opts.seed == 0 ? 1 : opts.seed;
  const size_t threads = smoke ? 4u : 8u;

  size_t largest_pairs = 0;
  const graph::Graph* largest_graph = nullptr;
  std::vector<graph::Graph> graphs;  // keep alive for the speedup pass
  graphs.reserve(8);

  for (size_t pairs : bench::ScaledPoints(opts, {200, 400, 800, 1600, 3200})) {
    datagen::StsOptions gen = bench::ScaledStsOptions(opts);
    gen.num_pairs = pairs;
    gen.threshold = 0;  // keep all pairs: graph size is what matters here
    auto data = datagen::StsGenerator::Generate(gen);

    graph::GraphBuilder builder{graph::BuilderOptions{}};
    auto g = builder.Build(data.scenario.first, data.scenario.second);
    if (!g.ok()) {
      std::fprintf(stderr, "fig8_scaling: build at pairs=%zu FAILED: %s\n",
                   pairs, g.status().ToString().c_str());
      rep.Print("build failed: " + g.status().ToString() + "\n");
      continue;
    }
    const double seconds = WalkAndTrain(*g, seed, threads, smoke);

    const std::string param = "pairs=" + std::to_string(pairs);
    rep.Add("STS", param, "nodes", static_cast<double>(g->NumNodes()), seconds);
    rep.Add("STS", param, "edges", static_cast<double>(g->NumEdges()), seconds);
    rep.Add("STS", param, "walk_train_seconds", seconds, seconds);
    rep.Printf("%-10zu %-10zu %-10zu %-12.3f\n", pairs, g->NumNodes(),
               g->NumEdges(), seconds);

    if (pairs >= largest_pairs) {
      largest_pairs = pairs;
      graphs.push_back(std::move(*g));
      largest_graph = &graphs.back();
    }
  }

  if (largest_graph != nullptr) {
    // Parallel-efficiency probe on the largest point: identical work at
    // threads=1 and threads=8 (outputs are bit-identical by the block
    // schedule; only the wall time may differ).
    const double t1 = WalkAndTrain(*largest_graph, seed, 1, smoke);
    const double t8 = WalkAndTrain(*largest_graph, seed, 8, smoke);
    const double speedup = t8 > 0.0 ? t1 / t8 : 0.0;
    const std::string param = "pairs=" + std::to_string(largest_pairs);
    rep.Add("STS", param, "threads_speedup", speedup, t1 + t8);
    rep.Printf("\nthreads_speedup (8 vs 1 threads, pairs=%zu): %.2fx\n",
               largest_pairs, speedup);
  }

  rep.Note("\nExpected shape: time grows linearly with node count.");
  return rep.Finish() ? 0 : 1;
}
