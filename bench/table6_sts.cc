// Table VI: quality of match results for the STS scenario at similarity
// thresholds k=2 and k=3. Row set {S-BE, W-RW, W-RW-EX, RANK*}.

#include <cstdio>

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "datagen/sts.h"

using namespace tdmatch;  // NOLINT

namespace {

void RunThreshold(int threshold) {
  datagen::StsOptions gen;
  gen.threshold = threshold;
  auto data = datagen::StsGenerator::Generate(gen);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", bench::TextTaskOptions())});
  core::TDmatchOptions ex = bench::TextTaskOptions();
  ex.expand = true;
  methods.push_back({"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                                    "W-RW-EX", ex, data.kb.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});

  bench::RunRankingTable(
      std::string("Table VI — STS k=") + std::to_string(threshold),
      data.scenario, &methods);
}

}  // namespace

int main() {
  std::printf("Reproduction of Table VI (STS scenario)\n");
  RunThreshold(2);
  RunThreshold(3);
  return 0;
}
