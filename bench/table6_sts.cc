// Table VI: quality of match results for the STS scenario at similarity
// thresholds k=2 and k=3. Row set {S-BE, W-RW, W-RW-EX, RANK*}.

#include <string>

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"

using namespace tdmatch;  // NOLINT

namespace {

void RunThreshold(bench::BenchReporter& rep, int threshold) {
  const bench::BenchOptions& opts = rep.options();
  const std::string label = "STS-k" + std::to_string(threshold);
  if (!opts.Matches(label)) return;

  datagen::StsOptions gen = bench::ScaledStsOptions(opts);
  gen.threshold = threshold;
  auto data = datagen::StsGenerator::Generate(gen);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", bench::TextTaskOptions(opts))});
  core::TDmatchOptions ex = bench::TextTaskOptions(opts);
  ex.expand = true;
  methods.push_back({"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                                    "W-RW-EX", ex, data.kb.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});

  bench::RunRankingTable(
      rep, std::string("Table VI — STS k=") + std::to_string(threshold),
      label, data.scenario, methods);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table6_sts", opts);
  rep.Note("Reproduction of Table VI (STS scenario)");
  RunThreshold(rep, 2);
  RunThreshold(rep, 3);
  return rep.Finish() ? 0 : 1;
}
