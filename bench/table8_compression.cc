// Table VIII: compression performance — number of nodes (#N) and edges
// (#E) of the graph vs matching quality (MRR) for: the original graph, the
// expanded graph, MSP(0.5), MSP(0.25) and the SSumm-style baseline (0.1).

#include <cstdio>
#include <limits>
#include <string>

#include "bench_common.h"
#include "eval/metrics.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

struct Cell {
  size_t nodes = 0;
  size_t edges = 0;
  double mrr = 0;
  double wall = 0;
};

Cell RunConfig(bench::BenchReporter& rep, const bench::SweepScenario& sc,
               const std::string& config, bool expand,
               core::CompressionMode mode, double beta) {
  core::TDmatchOptions o = sc.base_options;
  o.expand = expand;
  o.compression = mode;
  o.compression_beta = beta;
  core::TDmatchMethod m("cfg", o, sc.data.kb.get());
  util::StopWatch watch;
  auto run = core::Experiment::Run(&m, sc.data.scenario);
  Cell c;
  c.wall = bench::InstrumentedWallSeconds(m.last_result(),
                                          watch.ElapsedSeconds());
  const std::string param = "config=" + config;
  if (!run.ok()) {
    // NaN rows (-> null in JSON) so the CI gate flags the broken config
    // instead of the measurement silently vanishing from the trajectory.
    std::fprintf(stderr, "table8_compression: %s/%s FAILED: %s\n",
                 sc.name.c_str(), config.c_str(),
                 run.status().ToString().c_str());
    rep.Print("config failed: " + run.status().ToString() + "\n");
    const double nan = std::numeric_limits<double>::quiet_NaN();
    rep.Add(sc.name, param, "nodes", nan, c.wall);
    rep.Add(sc.name, param, "edges", nan, c.wall);
    rep.Add(sc.name, param, "mrr", nan, c.wall);
    return c;
  }
  c.nodes = m.last_result().compressed.nodes;
  c.edges = m.last_result().compressed.edges;
  c.mrr = eval::RankingMetrics::MRR(run->rankings, sc.data.scenario.gold);
  rep.Add(sc.name, param, "nodes", static_cast<double>(c.nodes), c.wall);
  rep.Add(sc.name, param, "edges", static_cast<double>(c.edges), c.wall);
  rep.Add(sc.name, param, "mrr", c.mrr, c.wall);
  return c;
}

void PrintCell(bench::BenchReporter& rep, const Cell& c) {
  rep.Printf("  %6zu %7zu %.3f |", c.nodes, c.edges, c.mrr);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table8_compression", opts);
  rep.Note("Reproduction of Table VIII (compression performance)");
  rep.Printf("\n%-10s | %-21s | %-21s | %-21s | %-21s | %-21s\n", "Data",
             "Original (#N #E MRR)", "Expanded", "MSP(0.5)", "MSP(0.25)",
             "SSuM(0.1)");
  for (const auto& sc : bench::MakeSweepScenarios(opts)) {
    rep.Printf("%-10s |", sc.name.c_str());
    PrintCell(rep, RunConfig(rep, sc, "Original", /*expand=*/false,
                             core::CompressionMode::kNone, 0));
    PrintCell(rep, RunConfig(rep, sc, "Expanded", /*expand=*/true,
                             core::CompressionMode::kNone, 0));
    PrintCell(rep, RunConfig(rep, sc, "MSP(0.5)", /*expand=*/true,
                             core::CompressionMode::kMsp, 0.5));
    PrintCell(rep, RunConfig(rep, sc, "MSP(0.25)", /*expand=*/true,
                             core::CompressionMode::kMsp, 0.25));
    PrintCell(rep, RunConfig(rep, sc, "SSumm(0.1)", /*expand=*/true,
                             core::CompressionMode::kSsumm, 0.1));
    rep.Printf("\n");
  }
  rep.Note(
      "\nExpected shape: expansion raises MRR; MSP(0.5) stays close to the\n"
      "expanded graph with fewer nodes (best on table scenarios); MSP(0.25)\n"
      "compresses harder at some quality cost; SSumm shrinks well but\n"
      "degrades matching (it ignores the metadata/data distinction).");
  return rep.Finish() ? 0 : 1;
}
