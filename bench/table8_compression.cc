// Table VIII: compression performance — number of nodes (#N) and edges
// (#E) of the graph vs matching quality (MRR) for: the original graph, the
// expanded graph, MSP(0.5), MSP(0.25) and the SSumm-style baseline (0.1).

#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"

using namespace tdmatch;  // NOLINT

namespace {

struct Cell {
  size_t nodes = 0;
  size_t edges = 0;
  double mrr = 0;
};

Cell RunConfig(const bench::SweepScenario& sc, bool expand,
               core::CompressionMode mode, double beta) {
  core::TDmatchOptions o = sc.base_options;
  o.expand = expand;
  o.compression = mode;
  o.compression_beta = beta;
  core::TDmatchMethod m("cfg", o, sc.data.kb.get());
  auto run = core::Experiment::Run(&m, sc.data.scenario);
  Cell c;
  if (!run.ok()) {
    std::printf("config failed: %s\n", run.status().ToString().c_str());
    return c;
  }
  c.nodes = m.last_result().compressed.nodes;
  c.edges = m.last_result().compressed.edges;
  c.mrr = eval::RankingMetrics::MRR(run->rankings, sc.data.scenario.gold);
  return c;
}

void PrintCell(const Cell& c) {
  std::printf("  %6zu %7zu %.3f |", c.nodes, c.edges, c.mrr);
}

}  // namespace

int main() {
  std::printf("Reproduction of Table VIII (compression performance)\n");
  std::printf(
      "\n%-6s | %-21s | %-21s | %-21s | %-21s | %-21s\n", "Data",
      "Original (#N #E MRR)", "Expanded", "MSP(0.5)", "MSP(0.25)",
      "SSuM(0.1)");
  for (const auto& sc : bench::MakeSweepScenarios()) {
    std::printf("%-6s |", sc.name.c_str());
    PrintCell(RunConfig(sc, /*expand=*/false, core::CompressionMode::kNone,
                        0));
    PrintCell(RunConfig(sc, /*expand=*/true, core::CompressionMode::kNone,
                        0));
    PrintCell(RunConfig(sc, /*expand=*/true, core::CompressionMode::kMsp,
                        0.5));
    PrintCell(RunConfig(sc, /*expand=*/true, core::CompressionMode::kMsp,
                        0.25));
    PrintCell(RunConfig(sc, /*expand=*/true, core::CompressionMode::kSsumm,
                        0.1));
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: expansion raises MRR; MSP(0.5) stays close to the\n"
      "expanded graph with fewer nodes (best on table scenarios); MSP(0.25)\n"
      "compresses harder at some quality cost; SSumm shrinks well but\n"
      "degrades matching (it ignores the metadata/data distinction).\n");
  return 0;
}
