// Table VII: train and test execution times (seconds) per method, averaged
// over the three task families. Test time is per single match query, as in
// the paper.

#include <cstdio>
#include <functional>

#include "baselines/embedding_baselines.h"
#include "baselines/lbert.h"
#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "datagen/audit.h"
#include "datagen/claims.h"
#include "datagen/imdb.h"

using namespace tdmatch;  // NOLINT

namespace {

struct Timing {
  double train = -1;
  double test = -1;  // per query
};

Timing TimeMethod(match::MatchMethod* m, const corpus::Scenario& s) {
  auto run = core::Experiment::Run(m, s);
  if (!run.ok()) return {};
  return {run->train_seconds, run->test_seconds_per_query};
}

using Factory = std::function<std::unique_ptr<match::MatchMethod>(
    const datagen::GeneratedScenario&, bool text_task)>;

}  // namespace

int main() {
  std::printf("Reproduction of Table VII (train/test execution times, s)\n");

  datagen::ImdbOptions imdb_opts;
  imdb_opts.num_reviewed_movies = 40;
  imdb_opts.num_distractor_movies = 60;
  auto imdb = datagen::ImdbGenerator::Generate(imdb_opts);
  datagen::AuditOptions audit_opts;
  audit_opts.num_concepts = 120;
  audit_opts.num_documents = 200;
  auto audit = datagen::AuditGenerator::Generate(audit_opts);
  datagen::ClaimsOptions claims_opts =
      datagen::ClaimsGenerator::SnopesPreset();
  claims_opts.num_facts = 600;
  claims_opts.num_queries = 80;
  auto claims = datagen::ClaimsGenerator::Generate(claims_opts);

  struct Row {
    std::string name;
    Factory make;
  };
  std::vector<Row> rows = {
      {"W2VEC",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::Word2VecBaseline>();
       }},
      {"D2VEC",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::Doc2VecBaseline>();
       }},
      {"S-BE",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::HashSentenceEncoder>();
       }},
      {"W-RW",
       [](const datagen::GeneratedScenario&, bool text_task)
           -> std::unique_ptr<match::MatchMethod> {
         return std::make_unique<core::TDmatchMethod>(
             "W-RW",
             text_task ? bench::TextTaskOptions() : bench::DataTaskOptions());
       }},
      {"RANK*",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::PairwiseRanker>();
       }},
      {"L-BE*",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::LBertProxy>();
       }},
  };

  std::printf("\n%-8s  %-17s  %-17s  %-17s\n", "Method", "Text-to-data",
              "Structured text", "Text-to-text");
  std::printf("%-8s  %-8s %-8s  %-8s %-8s  %-8s %-8s\n", "", "Train", "Test",
              "Train", "Test", "Train", "Test");
  for (const auto& row : rows) {
    auto m1 = row.make(imdb, false);
    Timing t1 = TimeMethod(m1.get(), imdb.scenario);
    auto m2 = row.make(audit, true);
    Timing t2 = TimeMethod(m2.get(), audit.scenario);
    auto m3 = row.make(claims, true);
    Timing t3 = TimeMethod(m3.get(), claims.scenario);
    std::printf("%-8s  %-8.3f %-8.5f  %-8.3f %-8.5f  %-8.3f %-8.5f\n",
                row.name.c_str(), t1.train, t1.test, t2.train, t2.test,
                t3.train, t3.test);
  }
  std::printf(
      "\nNote: shapes to compare with the paper — S-BE has (near) zero\n"
      "train; W-RW trains longer than shallow embeddings but tests fastest\n"
      "among embedding methods; supervised methods pay per-fold training.\n");
  return 0;
}
