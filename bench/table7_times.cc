// Table VII: train and test execution times (seconds) per method, averaged
// over the three task families. Test time is per single match query, as in
// the paper.

#include <cstdio>
#include <functional>
#include <limits>
#include <string>

#include "baselines/embedding_baselines.h"
#include "baselines/lbert.h"
#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

struct Timing {
  double train = 0;
  double test = 0;  // per query
  double wall = 0;
};

Timing TimeMethod(match::MatchMethod* m, const corpus::Scenario& s) {
  util::StopWatch watch;
  auto run = core::Experiment::Run(m, s);
  if (!run.ok()) {
    // NaN serialises as null in the JSON rows, which the CI gate
    // (tools/check_bench.py) rejects — a broken method fails ci-bench
    // instead of polluting the trajectory with fake finite timings.
    std::fprintf(stderr, "table7_times: %s FAILED: %s\n", m->name().c_str(),
                 run.status().ToString().c_str());
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan, watch.ElapsedSeconds()};
  }
  return {run->train_seconds, run->test_seconds_per_query,
          watch.ElapsedSeconds()};
}

using Factory = std::function<std::unique_ptr<match::MatchMethod>(
    const datagen::GeneratedScenario&, bool text_task)>;

struct Family {
  std::string label;   // column header (task family)
  std::string name;    // row scenario name for JSON rows
  datagen::GeneratedScenario data;
  bool text_task = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table7_times", opts);
  rep.Note("Reproduction of Table VII (train/test execution times, s)");

  std::vector<Family> families;
  if (opts.Matches("IMDb")) {
    families.push_back({"Text-to-data", "IMDb",
                        datagen::ImdbGenerator::Generate(
                            bench::ScaledImdbOptions(opts)),
                        false});
  }
  if (opts.Matches("Audit")) {
    families.push_back({"Structured text", "Audit",
                        datagen::AuditGenerator::Generate(
                            bench::ScaledAuditOptions(opts)),
                        true});
  }
  if (opts.Matches("Snopes")) {
    families.push_back({"Text-to-text", "Snopes",
                        datagen::ClaimsGenerator::Generate(
                            bench::ScaledSnopesOptions(opts)),
                        true});
  }

  struct Row {
    std::string name;
    Factory make;
  };
  std::vector<Row> rows = {
      {"W2VEC",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::Word2VecBaseline>();
       }},
      {"D2VEC",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::Doc2VecBaseline>();
       }},
      {"S-BE",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::HashSentenceEncoder>();
       }},
      {"W-RW",
       [&opts](const datagen::GeneratedScenario&, bool text_task)
           -> std::unique_ptr<match::MatchMethod> {
         return std::make_unique<core::TDmatchMethod>(
             "W-RW", text_task ? bench::TextTaskOptions(opts)
                               : bench::DataTaskOptions(opts));
       }},
      {"RANK*",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::PairwiseRanker>();
       }},
      {"L-BE*",
       [](const datagen::GeneratedScenario&, bool) {
         return std::make_unique<baselines::LBertProxy>();
       }},
  };

  rep.Printf("\n%-8s", "Method");
  for (const auto& fam : families) rep.Printf("  %-17s", fam.label.c_str());
  rep.Printf("\n%-8s", "");
  for (size_t i = 0; i < families.size(); ++i) {
    rep.Printf("  %-8s %-8s", "Train", "Test");
  }
  rep.Printf("\n");

  for (const auto& row : rows) {
    rep.Printf("%-8s", row.name.c_str());
    for (const auto& fam : families) {
      auto m = row.make(fam.data, fam.text_task);
      Timing t = TimeMethod(m.get(), fam.data.scenario);
      const std::string param = "method=" + row.name;
      // The pipeline method carries its own phase timers: its wall comes
      // from instrumentation (not the harness stopwatch), and the Table
      // VII breakdown is emitted per phase — plus one row per training
      // epoch — straight from the profile.
      if (const auto* td = dynamic_cast<const core::TDmatchMethod*>(m.get())) {
        const util::obs::PhaseProfile& profile = td->last_result().profile;
        t.wall = bench::InstrumentedWallSeconds(td->last_result(), t.wall);
        for (const char* phase : {"graph_build", "expand", "compress",
                                  "walks", "train", "match", "export"}) {
          const double s = profile.Seconds(phase);
          if (s <= 0.0) continue;
          rep.Add(fam.name, param,
                  std::string("phase_") + phase + "_seconds", s, s);
        }
        size_t epoch = 0;
        for (const auto& p : profile.phases()) {
          if (p.name != "train_epoch") continue;
          rep.Add(fam.name, param + ",epoch=" + std::to_string(epoch++),
                  "train_epoch_seconds", p.seconds, p.seconds);
        }
      }
      rep.Add(fam.name, param, "train_seconds", t.train, t.wall);
      rep.Add(fam.name, param, "test_seconds_per_query", t.test, t.wall);
      rep.Printf("  %-8.3f %-8.5f", t.train, t.test);
    }
    rep.Printf("\n");
  }
  rep.Note(
      "\nNote: shapes to compare with the paper — S-BE has (near) zero\n"
      "train; W-RW trains longer than shallow embeddings but tests fastest\n"
      "among embedding methods; supervised methods pay per-fold training.");
  return rep.Finish() ? 0 : 1;
}
