// Table IV: quality of match results for the Politifact scenario
// (text-to-text). Row set {S-BE, W-RW, W-RW-EX, RANK*}.

#include <cstdio>

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "datagen/claims.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Table IV (Politifact scenario)\n");
  auto data = datagen::ClaimsGenerator::Generate(
      datagen::ClaimsGenerator::PolitifactPreset());
  // §II-C synonym merging through the pre-trained lexicon is part of the
  // default pipeline (the paper reports +1.5-1.7% on these corpora).
  auto lex = bench::MakeLexicon(data);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  core::TDmatchOptions base = bench::TextTaskOptions();
  base.use_synonym_merge = true;
  base.gamma = lex.gamma;
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", base, nullptr, lex.lexicon.get())});
  core::TDmatchOptions ex = base;
  ex.expand = true;
  methods.push_back(
      {"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                      "W-RW-EX", ex, data.kb.get(), lex.lexicon.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});

  bench::RunRankingTable("Table IV — Politifact", data.scenario, &methods);
  return 0;
}
