// Table I: quality of match results for the IMDb scenario (WT = with the
// title attribute, NT = without). Reproduces the row set
// {S-BE, W-RW, W-RW-EX, RANK*, DITTO*, TAPAS*} and the metric columns
// MRR / MAP@{1,5,20} / HasPositive@{1,5,20}.

#include <string>

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"

using namespace tdmatch;  // NOLINT

namespace {

void RunVariant(bench::BenchReporter& rep, bool with_title) {
  const bench::BenchOptions& opts = rep.options();
  const std::string label = std::string("IMDb-") + (with_title ? "WT" : "NT");
  if (!opts.Matches(label)) return;

  datagen::ImdbOptions gen = bench::ScaledImdbOptions(opts);
  gen.with_title = with_title;
  auto data = datagen::ImdbGenerator::Generate(gen);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  core::TDmatchOptions base = bench::DataTaskOptions(opts);
  methods.push_back(
      {"W-RW", std::make_unique<core::TDmatchMethod>("W-RW", base)});
  core::TDmatchOptions ex = base;
  ex.expand = true;
  methods.push_back({"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                                    "W-RW-EX", ex, data.kb.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});
  methods.push_back({"DITTO*", std::make_unique<baselines::DittoProxy>()});
  methods.push_back({"TAPAS*", std::make_unique<baselines::TapasProxy>()});

  bench::RunRankingTable(
      rep, std::string("Table I — IMDb ") + (with_title ? "WT" : "NT"), label,
      data.scenario, methods);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table1_imdb", opts);
  rep.Note("Reproduction of Table I (IMDb scenario)");
  RunVariant(rep, /*with_title=*/true);
  RunVariant(rep, /*with_title=*/false);
  return rep.Finish() ? 0 : 1;
}
