// Scatter-gather serving benchmark: qps/latency vs shard count, offered
// load past saturation over real HTTP, and deterministic models of the
// admission gate and the result cache.
//
// Row classes (tools/check_bench.py):
//   * qps / *_ms / *_seconds rows are timings — never value-compared,
//     gated only through the per-scenario wall-time aggregate;
//   * `identity`, `shed_rate`, and `cache_hit_rate` rows are exact-gated:
//     identity is the fraction of sharded exact-mode answers bit-identical
//     to the unsharded engine (must stay 1.0), and the shed/cache rates
//     come from seeded simulations of the real AdmissionController /
//     ResultCache — pure functions of (seed, grid), so any drift is a
//     behavior change, not noise.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/admission.h"
#include "serve/http/client.h"
#include "serve/http/server.h"
#include "serve/http/service.h"
#include "serve/result_cache.h"
#include "serve/sharded_engine.h"
#include "serve/snapshot.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

double Percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = std::min(
      ms.size() - 1, static_cast<size_t>(p * static_cast<double>(ms.size())));
  return ms[idx];
}

/// Clustered unit vectors, same construction as bench/serve_qps.
std::vector<std::vector<float>> MakeClusteredVectors(size_t n, int dim,
                                                     size_t centers,
                                                     util::Rng* rng) {
  std::vector<std::vector<float>> anchor(centers);
  for (auto& c : anchor) {
    c.resize(static_cast<size_t>(dim));
    for (auto& x : c) x = static_cast<float>(rng->Gaussian());
  }
  std::vector<std::vector<float>> out(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = anchor[i % centers];
    out[i].resize(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      out[i][static_cast<size_t>(d)] =
          c[static_cast<size_t>(d)] +
          0.35f * static_cast<float>(rng->Gaussian());
    }
  }
  return out;
}

serve::Snapshot MakeSnapshot(size_t n, int dim, uint64_t seed) {
  util::Rng rng(seed);
  const auto vectors = MakeClusteredVectors(n, dim, 64, &rng);
  serve::Snapshot snap;
  snap.meta.scenario = "ShardScaling";
  snap.meta.Set("candidate_prefix", "v");
  snap.table = embed::EmbeddingTable(dim);
  for (size_t i = 0; i < n; ++i) {
    snap.table.Put("v" + std::to_string(i), vectors[i]);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// ShardScaling: qps / p99 / bit-identity vs shard count
// ---------------------------------------------------------------------------

void RunShardScaling(bench::BenchReporter& rep,
                     const bench::BenchOptions& opts) {
  if (!opts.Matches("ShardScaling")) return;
  const char* scenario = "ShardScaling";
  size_t n = 20000;
  double seconds = 0.4;
  size_t identity_queries = 400;
  if (opts.scale == bench::Scale::kSmoke) {
    n = 4000;
    seconds = 0.2;
    identity_queries = 150;
  }
  if (opts.scale == bench::Scale::kFull) {
    n = 50000;
    seconds = 0.8;
  }
  const int dim = 32;
  const uint64_t seed = opts.seed == 0 ? 7 : opts.seed;
  const size_t k = 10;

  rep.Printf("\nShard scaling: n=%zu dim=%d k=%zu, fixed %.2fs per "
             "throughput cell\n",
             n, dim, k, seconds);
  rep.Printf("%-10s %-12s %-10s %-10s %-10s %-9s\n", "shards",
             "build_s", "qps", "p50_ms", "p99_ms", "identity");

  // The unsharded reference every shard count must reproduce bit-exactly
  // in exact mode.
  serve::ShardedEngineOptions ref_opts;
  ref_opts.shards = 1;
  ref_opts.engine.ivf.seed = seed;
  auto reference =
      serve::ShardedQueryEngine::Build(MakeSnapshot(n, dim, seed), "v",
                                       ref_opts);
  TDM_CHECK(reference.ok()) << reference.status().ToString();

  util::Rng pick(seed + 17);
  std::vector<std::string> batch_labels;
  for (size_t i = 0; i < 512; ++i) {
    batch_labels.push_back("v" + std::to_string(pick.UniformInt(n)));
  }

  for (const size_t shards :
       {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    serve::ShardedEngineOptions sopts;
    sopts.shards = shards;
    sopts.engine.ivf.seed = seed;
    util::StopWatch watch;
    auto engine = serve::ShardedQueryEngine::Build(
        MakeSnapshot(n, dim, seed), "v", sopts);
    TDM_CHECK(engine.ok()) << engine.status().ToString();
    const double build_seconds = watch.ElapsedSeconds();

    // Bit-identity vs the unsharded reference, exact mode: labels,
    // global candidate ids, and score bits must all agree.
    size_t identical = 0;
    for (size_t q = 0; q < identity_queries; ++q) {
      const std::string label =
          "v" + std::to_string(q * (n / identity_queries));
      auto want = reference->Query(label, k, serve::SearchMode::kExact);
      auto got = engine->Query(label, k, serve::SearchMode::kExact);
      TDM_CHECK(want.ok() && got.ok());
      bool same = want->size() == got->size();
      for (size_t r = 0; same && r < want->size(); ++r) {
        same = (*want)[r].label == (*got)[r].label &&
               (*want)[r].candidate == (*got)[r].candidate &&
               (*want)[r].score == (*got)[r].score;
      }
      identical += same ? 1 : 0;
    }
    const double identity = static_cast<double>(identical) /
                            static_cast<double>(identity_queries);

    // Throughput: threaded QueryBatch over a fixed label set for a fixed
    // wall budget (machine-independent scenario wall by construction).
    watch.Reset();
    uint64_t done = 0;
    while (watch.ElapsedSeconds() < seconds) {
      auto results = engine->QueryBatch(batch_labels, k);
      TDM_CHECK(results.size() == batch_labels.size());
      done += results.size();
    }
    const double qps = static_cast<double>(done) / watch.ElapsedSeconds();

    // Single-query latency distribution (approx mode, the serving
    // default), one caller.
    std::vector<double> lat_ms;
    lat_ms.reserve(256);
    for (size_t q = 0; q < 256; ++q) {
      const std::string& label = batch_labels[q % batch_labels.size()];
      util::StopWatch one;
      auto r = engine->Query(label, k);
      TDM_CHECK(r.ok());
      lat_ms.push_back(one.ElapsedMillis());
    }
    const double p50 = Percentile(lat_ms, 0.5);
    const double p99 = Percentile(lat_ms, 0.99);

    const std::string param = "shards=" + std::to_string(shards);
    rep.Add(scenario, param, "build_seconds", build_seconds, build_seconds);
    rep.Add(scenario, param, "qps", qps, seconds);
    rep.Add(scenario, param, "p50_ms", p50, 0.0);
    rep.Add(scenario, param, "p99_ms", p99, 0.0);
    rep.Add(scenario, param, "identity", identity, 0.0);
    rep.Printf("%-10zu %-12.3f %-10.0f %-10.4f %-10.4f %-9.3f\n", shards,
               build_seconds, qps, p50, p99, identity);
  }
}

// ---------------------------------------------------------------------------
// Overload: offered load past saturation over real HTTP
// ---------------------------------------------------------------------------

void RunOverload(bench::BenchReporter& rep, const bench::BenchOptions& opts) {
  if (!opts.Matches("Overload")) return;
  const char* scenario = "Overload";
  size_t n = 4000;
  double seconds = 0.3;
  if (opts.scale == bench::Scale::kSmoke) {
    n = 1500;
    seconds = 0.2;
  }
  const int dim = 32;
  const uint64_t seed = opts.seed == 0 ? 7 : opts.seed;

  std::string path = "serve_shard_bench.tds";
  if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr) {
    path = std::string(tmp) + "/" + path;
  } else {
    path = "/tmp/" + path;
  }
  {
    serve::Snapshot snap = MakeSnapshot(n, dim, seed);
    TDM_CHECK(serve::SnapshotIo::Write(snap.table, snap.meta, path).ok());
  }

  // A 1 ms debug delay per admitted query gives the server a real
  // capacity ceiling (~threads kqps) that loopback clients can actually
  // exceed, so "offered load past saturation" means something on any
  // machine; --max-inflight 8 makes the excess shed instead of queue.
  serve::http::ServiceOptions sopts;
  sopts.engine.ivf.seed = seed;
  sopts.shards = 4;
  sopts.max_inflight = 8;
  sopts.allow_debug_delay = true;
  serve::http::MatchService service(sopts);
  {
    const util::Status st = service.LoadInitial(path);
    TDM_CHECK(st.ok()) << st.ToString();
  }
  serve::http::HttpServerOptions hopts;
  hopts.threads = 16;  // accept every offered connection; admission sheds
  serve::http::HttpServer server(hopts);
  service.Register(&server);
  {
    const util::Status st = server.Start();
    TDM_CHECK(st.ok()) << st.ToString();
  }

  rep.Printf("\nOverload: shards=4, max_inflight=8, 1ms simulated work, "
             "%.2fs per offered-load cell\n", seconds);
  rep.Printf("%-10s %-14s %-10s %-14s\n", "conn", "achieved_qps", "p99_ms",
             "observed_shed");
  const std::string body = "{\"label\": \"v1\", \"k\": 5, \"delay_ms\": 1}";
  for (const size_t connections : {size_t{2}, size_t{8}, size_t{24}}) {
    std::atomic<bool> stop{false};
    std::vector<uint64_t> ok_count(connections, 0);
    std::vector<uint64_t> shed_count(connections, 0);
    std::vector<std::vector<double>> lat(connections);
    std::vector<std::thread> threads;
    for (size_t t = 0; t < connections; ++t) {
      threads.emplace_back([&, t] {
        auto client =
            serve::http::HttpClient::Connect("127.0.0.1", server.port());
        if (!client.ok()) return;
        while (!stop.load(std::memory_order_relaxed)) {
          util::StopWatch one;
          auto r = client->Post("/v1/query", body);
          if (!r.ok()) continue;
          if (r->status == 200) {
            ++ok_count[t];
            lat[t].push_back(one.ElapsedMillis());
          } else if (r->status == 429) {
            ++shed_count[t];
          }
        }
      });
    }
    util::StopWatch watch;
    while (watch.ElapsedSeconds() < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true);
    for (auto& t : threads) t.join();

    uint64_t ok = 0, sheds = 0;
    std::vector<double> all_ms;
    for (size_t t = 0; t < connections; ++t) {
      ok += ok_count[t];
      sheds += shed_count[t];
      all_ms.insert(all_ms.end(), lat[t].begin(), lat[t].end());
    }
    const double achieved = static_cast<double>(ok) / seconds;
    const double p99 = Percentile(all_ms, 0.99);
    // Machine-dependent, so informational (not exact-gated like the
    // AdmissionModel rows): the fraction of responses that were 429s.
    const double observed_shed =
        ok + sheds == 0
            ? 0.0
            : static_cast<double>(sheds) / static_cast<double>(ok + sheds);
    const std::string param = "conn=" + std::to_string(connections);
    rep.Add(scenario, param, "achieved_qps", achieved, seconds);
    rep.Add(scenario, param, "p99_ms", p99, 0.0);
    rep.Add(scenario, param, "observed_shed", observed_shed, 0.0);
    rep.Printf("%-10zu %-14.0f %-10.3f %-14.3f\n", connections, achieved,
               p99, observed_shed);
  }
  server.Stop();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// AdmissionModel / CacheModel: deterministic, exact-gated rates
// ---------------------------------------------------------------------------

void RunAdmissionModel(bench::BenchReporter& rep,
                       const bench::BenchOptions& opts) {
  if (!opts.Matches("AdmissionModel")) return;
  const char* scenario = "AdmissionModel";
  rep.Printf("\nAdmission model (deterministic burst replay):\n");
  rep.Printf("%-18s %-10s\n", "config", "shed_rate");
  struct Grid { size_t capacity, burst; };
  for (const Grid g : {Grid{2, 4}, Grid{4, 4}, Grid{4, 8}, Grid{8, 32}}) {
    serve::AdmissionController gate(
        serve::AdmissionOptions{g.capacity, 1, 30});
    const size_t rounds = 1000;
    util::StopWatch watch;
    for (size_t round = 0; round < rounds; ++round) {
      // A burst of overlapping arrivals: every request is in flight until
      // the whole burst has been answered — the worst case the in-flight
      // budget exists for.
      std::vector<serve::AdmissionController::Ticket> tickets;
      tickets.reserve(g.burst);
      for (size_t i = 0; i < g.burst; ++i) tickets.emplace_back(&gate);
      TDM_CHECK(gate.RetryAfterSeconds(5.0) >= 1);
      TDM_CHECK(gate.RetryAfterSeconds(5.0) <= 30);
    }
    const uint64_t total = gate.admitted() + gate.shed();
    const double shed_rate =
        static_cast<double>(gate.shed()) / static_cast<double>(total);
    const std::string param = "cap=" + std::to_string(g.capacity) +
                              ",burst=" + std::to_string(g.burst);
    rep.Add(scenario, param, "shed_rate", shed_rate, watch.ElapsedSeconds());
    rep.Printf("%-18s %-10.4f\n", param.c_str(), shed_rate);
  }
}

void RunCacheModel(bench::BenchReporter& rep,
                   const bench::BenchOptions& opts) {
  if (!opts.Matches("CacheModel")) return;
  const char* scenario = "CacheModel";
  const uint64_t seed = opts.seed == 0 ? 7 : opts.seed;
  rep.Printf("\nResult-cache model (seeded key stream, capacity sweep):\n");
  rep.Printf("%-22s %-16s %-10s\n", "config", "cache_hit_rate",
             "evictions");
  struct Grid { size_t entries, keyspace; };
  for (const Grid g :
       {Grid{64, 64}, Grid{64, 256}, Grid{256, 1024}}) {
    serve::ResultCache cache(serve::ResultCacheOptions{g.entries, 8});
    // Clustered popularity: half the lookups hit an 8x smaller hot set,
    // the shape a result cache exists for. Seeded, so the hit rate is a
    // pure function of (seed, grid) and exact-gated in CI.
    util::Rng rng(seed + 1);
    const size_t lookups = 20000;
    util::StopWatch watch;
    for (size_t i = 0; i < lookups; ++i) {
      const size_t universe =
          rng.UniformInt(2) == 0 ? std::max<size_t>(1, g.keyspace / 8)
                                 : g.keyspace;
      const std::string key =
          "q" + std::to_string(rng.UniformInt(universe)) + "|k=5|m=a|np=4";
      std::string body;
      if (!cache.Get(key, 1, &body)) {
        cache.Put(key, 1, "{\"matches\":[]}");
      }
    }
    const double hit_rate =
        static_cast<double>(cache.hits()) /
        static_cast<double>(cache.hits() + cache.misses());
    const std::string param = "entries=" + std::to_string(g.entries) +
                              ",keys=" + std::to_string(g.keyspace);
    rep.Add(scenario, param, "cache_hit_rate", hit_rate,
            watch.ElapsedSeconds());
    rep.Add(scenario, param, "evictions",
            static_cast<double>(cache.evictions()), 0.0);
    rep.Printf("%-22s %-16.4f %-10zu\n", param.c_str(), hit_rate,
               static_cast<size_t>(cache.evictions()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("serve_shard", opts);
  rep.Note("Sharded scatter-gather serving: qps/p99 vs shard count "
           "(exact-mode bit-identity gated), offered load past saturation, "
           "deterministic admission + cache models");
  RunShardScaling(rep, opts);
  RunOverload(rep, opts);
  RunAdmissionModel(rep, opts);
  RunCacheModel(rep, opts);
  return rep.Finish() ? 0 : 1;
}
