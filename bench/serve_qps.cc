// Serving benchmark: the online subsystem (serve/) against the brute-force
// scan it replaces.
//
// Two scenarios:
//  * "IMDb"      — the end-to-end demo: train the smoke pipeline, write a
//                  binary snapshot, reload it, build a QueryEngine, and
//                  measure IVF recall@5 vs the exact index over the real
//                  query docs (plus snapshot size / load time).
//  * "Synthetic" — a clustered vector corpus big enough for the ANN
//                  trade-off to show (smoke: 4k vectors): single-query
//                  latency p50/p99 for exact vs IVF, QPS vs batch size
//                  through QueryEngine::QueryBatch, recall@5 vs nprobe,
//                  the headline speedup (exact wall / IVF wall at the
//                  serving nprobe), and the PQ sweep — recall@5 /
//                  memory_bytes / list-bytes compression for
//                  pq_m ∈ {4, 8, 16}.
//
// Quality rows (recall@5) are seed-deterministic and regression-gated by
// tools/check_bench.py; latency/qps/speedup rows are informational (their
// cost is gated through the per-scenario wall-time aggregate).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

/// The nprobe the latency/speedup rows use — the smallest value whose
/// measured recall@5 clears 0.95 on the synthetic corpus (see the sweep
/// rows this bench emits).
constexpr size_t kServingNprobe = 8;

double Percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = std::min(
      ms.size() - 1, static_cast<size_t>(p * static_cast<double>(ms.size())));
  return ms[idx];
}

/// Clustered unit vectors: `n` points around `centers` Gaussian anchors —
/// the structure an inverted-file index exploits (uniform random vectors
/// have no cluster signal and every ANN index degrades to a scan).
std::vector<std::vector<float>> MakeClusteredVectors(size_t n, int dim,
                                                     size_t centers,
                                                     util::Rng* rng) {
  std::vector<std::vector<float>> anchor(centers);
  for (auto& c : anchor) {
    c.resize(static_cast<size_t>(dim));
    for (auto& x : c) x = static_cast<float>(rng->Gaussian());
  }
  std::vector<std::vector<float>> out(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = anchor[i % centers];
    out[i].resize(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      out[i][static_cast<size_t>(d)] =
          c[static_cast<size_t>(d)] + 0.35f * static_cast<float>(
                                                  rng->Gaussian());
    }
  }
  return out;
}

void RunSynthetic(bench::BenchReporter& rep, const bench::BenchOptions& opts) {
  if (!opts.Matches("Synthetic")) return;
  const char* scenario = "Synthetic";
  size_t n = 20000;
  if (opts.scale == bench::Scale::kSmoke) n = 4000;
  if (opts.scale == bench::Scale::kFull) n = 100000;
  const int dim = 48;
  const size_t num_queries = 200;
  const uint64_t seed = opts.seed == 0 ? 7 : opts.seed;

  util::Rng rng(seed);
  util::StopWatch watch;
  const auto vectors = MakeClusteredVectors(n, dim, 64, &rng);
  std::vector<const std::vector<float>*> rows;
  rows.reserve(n);
  for (const auto& v : vectors) rows.push_back(&v);
  auto matrix = std::make_shared<const serve::VectorMatrix>(
      serve::VectorMatrix::FromRows(rows, dim));
  // Queries: perturbed corpus members, so every query has dense true
  // neighbors.
  std::vector<std::vector<float>> queries(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    queries[q] = vectors[rng.UniformInt(n)];
    for (auto& x : queries[q]) {
      x += 0.1f * static_cast<float>(rng.Gaussian());
    }
  }
  const double gen_seconds = watch.ElapsedSeconds();

  watch.Reset();
  serve::ExactIndex exact(matrix);
  serve::IvfOptions ivf_opts;
  ivf_opts.seed = seed;
  ivf_opts.nprobe = kServingNprobe;
  serve::IvfIndex ivf(matrix, ivf_opts);
  const double build_seconds = watch.ElapsedSeconds();
  rep.Printf("\nSynthetic corpus: n=%zu dim=%d nlist=%zu (gen %.2fs, "
             "index build %.2fs)\n",
             n, dim, ivf.nlist(), gen_seconds, build_seconds);
  rep.Add(scenario, "index=ivf", "build_seconds", build_seconds,
          build_seconds);

  // --- recall@5 vs nprobe (the knob) -------------------------------------
  rep.Printf("%-12s %-10s\n", "nprobe", "recall@5");
  for (size_t nprobe : {1, 2, 4, 8, 16}) {
    ivf.set_nprobe(nprobe);
    watch.Reset();
    const double recall = serve::MeasureRecallAtK(ivf, exact, queries, 5);
    rep.Add(scenario, "nprobe=" + std::to_string(nprobe), "recall@5",
            recall, watch.ElapsedSeconds());
    rep.Printf("%-12zu %-10.4f\n", nprobe, recall);
  }
  ivf.set_nprobe(kServingNprobe);

  // --- single-query latency + the headline speedup -----------------------
  const size_t reps = opts.scale == bench::Scale::kFull ? 1 : 5;
  auto measure = [&](const serve::Index& index, std::vector<double>* lat) {
    util::StopWatch total;
    for (size_t r = 0; r < reps; ++r) {
      for (const auto& q : queries) {
        util::StopWatch one;
        index.SearchVec(q, 5);
        lat->push_back(one.ElapsedMillis());
      }
    }
    return total.ElapsedSeconds();
  };
  std::vector<double> exact_ms, ivf_ms;
  const double exact_wall = measure(exact, &exact_ms);
  const double ivf_wall = measure(ivf, &ivf_ms);
  const double speedup = exact_wall / std::max(ivf_wall, 1e-9);
  rep.Printf("%-12s p50=%.3fms p99=%.3fms\n", "exact",
             Percentile(exact_ms, 0.5), Percentile(exact_ms, 0.99));
  rep.Printf("%-12s p50=%.3fms p99=%.3fms  speedup=%.1fx (nprobe=%zu)\n",
             "ivf", Percentile(ivf_ms, 0.5), Percentile(ivf_ms, 0.99),
             speedup, ivf.nprobe());
  rep.Add(scenario, "index=exact", "p50_ms", Percentile(exact_ms, 0.5),
          exact_wall);
  rep.Add(scenario, "index=exact", "p99_ms", Percentile(exact_ms, 0.99),
          exact_wall);
  rep.Add(scenario, "index=ivf", "p50_ms", Percentile(ivf_ms, 0.5),
          ivf_wall);
  rep.Add(scenario, "index=ivf", "p99_ms", Percentile(ivf_ms, 0.99),
          ivf_wall);
  rep.Add(scenario, "index=ivf", "speedup", speedup, ivf_wall);
  rep.Add(scenario, "index=ivf", "memory_bytes",
          static_cast<double>(ivf.MemoryBytes()), 0.0);

  // --- PQ: recall@5 vs compression ---------------------------------------
  // Product-quantized lists trade list bytes for approximation error; the
  // exact re-rank (pq_rerank) recovers most of the recall. Compression is
  // the ratio of *list* bytes (flat f32 lists vs u8 codes + codebook) —
  // the part PQ actually shrinks; centroids/offsets/ids are identical
  // between the two layouts. recall@5 rows are seed-deterministic and
  // regression-gated; ci-bench additionally enforces an absolute floor
  // via check_bench --min-recall.
  rep.Printf("%-12s %-10s %-14s %-13s %-10s\n", "pq_m", "recall@5",
             "memory_bytes", "compression", "p50_ms");
  for (size_t m : {4, 8, 16}) {
    serve::IvfOptions pq_opts = ivf_opts;
    pq_opts.pq_m = m;
    watch.Reset();
    serve::IvfIndex pq(matrix, pq_opts);
    const double pq_build = watch.ElapsedSeconds();
    watch.Reset();
    const double recall = serve::MeasureRecallAtK(pq, exact, queries, 5);
    const double recall_wall = watch.ElapsedSeconds();
    const double compression = static_cast<double>(ivf.ListBytes()) /
                               static_cast<double>(pq.ListBytes());
    std::vector<double> pq_ms;
    const double pq_wall = measure(pq, &pq_ms);
    const std::string param = "pq_m=" + std::to_string(m);
    rep.Add(scenario, param, "recall@5", recall, pq_build + recall_wall);
    rep.Add(scenario, param, "memory_bytes",
            static_cast<double>(pq.MemoryBytes()), 0.0);
    rep.Add(scenario, param, "compression", compression, 0.0);
    rep.Add(scenario, param, "p50_ms", Percentile(pq_ms, 0.5), pq_wall);
    rep.Printf("%-12zu %-10.4f %-14zu %-13.2f %-10.3f\n", m, recall,
               pq.MemoryBytes(), compression, Percentile(pq_ms, 0.5));
  }

  // --- QPS vs batch size through the QueryEngine -------------------------
  // The engine path includes label lookup + result materialization, i.e.
  // what a frontend actually pays. Labels are synthetic v<i> names.
  serve::Snapshot snap;
  snap.meta.scenario = scenario;
  snap.table = embed::EmbeddingTable(dim);
  for (size_t i = 0; i < n; ++i) {
    snap.table.Put("v" + std::to_string(i), vectors[i]);
  }
  serve::QueryEngineOptions eopts;
  eopts.threads = 4;
  eopts.ivf.seed = seed;
  eopts.ivf.nprobe = kServingNprobe;
  auto engine = serve::QueryEngine::BuildForPrefix(std::move(snap), "v",
                                                   eopts);
  TDM_CHECK(engine.ok()) << engine.status().ToString();
  rep.Printf("%-12s %-10s  (threads=%zu; on a single-core box batching "
             "only pays dispatch overhead)\n",
             "batch", "qps", eopts.threads);
  for (size_t batch : {1, 16, 64}) {
    std::vector<std::string> labels(batch);
    for (size_t i = 0; i < batch; ++i) {
      labels[i] = "v" + std::to_string(rng.UniformInt(n));
    }
    // Repeat until ~0.2s of work so tiny batches aren't pure timer noise.
    size_t total_queries = 0;
    watch.Reset();
    do {
      auto results = engine->QueryBatch(labels, 5);
      TDM_CHECK(results.size() == batch);
      total_queries += batch;
    } while (watch.ElapsedSeconds() < 0.2);
    const double qps =
        static_cast<double>(total_queries) /
        std::max(watch.ElapsedSeconds(), 1e-9);
    rep.Add(scenario, "batch=" + std::to_string(batch), "qps", qps,
            watch.ElapsedSeconds());
    rep.Printf("%-12zu %-10.0f\n", batch, qps);
  }
}

void RunTrainedScenario(bench::BenchReporter& rep,
                        const bench::BenchOptions& opts) {
  // The end-to-end demo on the real pipeline: train → snapshot → reload →
  // query. IMDb at smoke scale has only a few dozen candidates, so this
  // scenario gates correctness (recall, snapshot round-trip) while the
  // synthetic corpus above carries the latency story.
  bench::BenchOptions gen_opts = opts;
  gen_opts.filter = "^IMDb$";
  if (!opts.Matches("IMDb")) return;
  auto scenarios = bench::MakeSweepScenarios(gen_opts);
  if (scenarios.empty()) return;
  auto& sc = scenarios.front();

  util::StopWatch watch;
  core::TDmatchOptions options = sc.base_options;
  options.export_embeddings = true;
  core::TDmatch engine(options);
  auto run = engine.Run(sc.data.scenario.first, sc.data.scenario.second);
  if (!run.ok()) {
    std::fprintf(stderr, "serve_qps: IMDb pipeline FAILED: %s\n",
                 run.status().ToString().c_str());
    return;
  }
  const double train_seconds = watch.ElapsedSeconds();

  // Snapshot round-trip through a temp file, like a serving deployment.
  std::string path = "serve_qps_imdb.tds";
  if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr) {
    path = std::string(tmp) + "/" + path;
  } else {
    path = "/tmp/" + path;
  }
  serve::SnapshotMeta meta;
  meta.scenario = sc.name;
  meta.Set("candidate_prefix", "__D1:");
  watch.Reset();
  TDM_CHECK(serve::SnapshotIo::Write(run->embeddings, meta, path).ok());
  auto snap = serve::SnapshotIo::Read(path);
  TDM_CHECK(snap.ok()) << snap.status().ToString();
  const double roundtrip_seconds = watch.ElapsedSeconds();
  std::remove(path.c_str());

  serve::QueryEngineOptions eopts;
  eopts.threads = 4;
  eopts.ivf.seed = opts.seed == 0 ? 7 : opts.seed;
  auto qe = serve::QueryEngine::BuildForPrefix(std::move(*snap), "__D1:",
                                               eopts);
  TDM_CHECK(qe.ok()) << qe.status().ToString();

  // Queries: every query doc that got an embedding.
  std::vector<std::vector<float>> queries;
  for (const auto& label : qe->table().Labels()) {
    if (label.rfind("__D0:", 0) == 0) queries.push_back(*qe->table().Get(label));
  }
  rep.Printf("\nIMDb (trained, %zu candidates, %zu queries): train %.2fs, "
             "snapshot round-trip %.3fs\n",
             qe->num_candidates(), queries.size(), train_seconds,
             roundtrip_seconds);
  rep.Add("IMDb", "snapshot", "roundtrip_seconds", roundtrip_seconds,
          train_seconds + roundtrip_seconds);

  rep.Printf("%-12s %-10s\n", "nprobe", "recall@5");
  for (size_t nprobe : {1, 2, 4}) {
    qe->ivf_index()->set_nprobe(nprobe);
    watch.Reset();
    const double recall = serve::MeasureRecallAtK(
        *qe->ivf_index(), qe->exact_index(), queries, 5);
    rep.Add("IMDb", "nprobe=" + std::to_string(nprobe), "recall@5", recall,
            watch.ElapsedSeconds());
    rep.Printf("%-12zu %-10.4f\n", nprobe, recall);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("serve_qps", opts);
  rep.Note("Online serving: IVF ANN index + QueryEngine vs brute-force "
           "scan");
  RunTrainedScenario(rep, opts);
  RunSynthetic(rep, opts);
  return rep.Finish() ? 0 : 1;
}
