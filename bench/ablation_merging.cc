// §V-F2 "Merging nodes": effect of the two merge mechanisms —
// (a) numeric bucketing on CoronaCheck (paper: +0.04 MAP with 7 buckets),
// (b) γ-threshold synonym merging with the pre-trained lexicon on IMDb
//     (paper: +2.5% from merging name variants).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "embed/pretrained_lexicon.h"

using namespace tdmatch;  // NOLINT

namespace {

void PrintLine(bench::BenchReporter& rep, const char* label, double value) {
  rep.Printf("  %-18s %.3f\n", label, value);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("ablation_merging", opts);
  rep.Note("Ablation: node merging (§V-F2)");

  // (a) Numeric bucketing on CoronaCheck.
  if (opts.Matches("Corona")) {
    auto data = datagen::CoronaGenerator::Generate(
        bench::ScaledCoronaOptions(opts));

    core::TDmatchOptions off = bench::DataTaskOptions(opts);
    off.builder.bucket_numbers = false;
    core::TDmatchOptions fd = bench::DataTaskOptions(opts);
    fd.builder.bucket_numbers = true;  // Freedman–Diaconis width
    core::TDmatchOptions fixed7 = bench::DataTaskOptions(opts);
    fixed7.builder.bucket_numbers = true;
    fixed7.builder.fixed_buckets = 7;

    rep.Print("\nCoronaCheck numeric bucketing (MAP@5):\n");
    PrintLine(rep, "no bucketing",
              bench::MapAt5(rep, "Corona", "bucketing=off", data.scenario,
                            off));
    PrintLine(rep, "Freedman-Diaconis",
              bench::MapAt5(rep, "Corona", "bucketing=fd", data.scenario, fd));
    PrintLine(rep, "7 equal buckets",
              bench::MapAt5(rep, "Corona", "bucketing=fixed7", data.scenario,
                            fixed7));
  }

  // (b) Synonym/variant merging with the pre-trained lexicon on IMDb.
  if (opts.Matches("IMDb")) {
    auto data =
        datagen::ImdbGenerator::Generate(bench::ScaledImdbOptions(opts));

    auto lex = bench::MakeLexicon(data, opts);
    rep.Printf("\nIMDb synonym merging (calibrated gamma = %.2f):\n",
               lex.gamma);
    rep.Add("IMDb", "merge=gamma", "gamma", lex.gamma, 0.0);

    core::TDmatchOptions off = bench::DataTaskOptions(opts);
    PrintLine(rep, "no merging",
              bench::MapAt5(rep, "IMDb", "merge=off", data.scenario, off));
    core::TDmatchOptions on = bench::DataTaskOptions(opts);
    on.use_synonym_merge = true;
    on.gamma = lex.gamma;
    PrintLine(rep, "gamma merge",
              bench::MapAt5(rep, "IMDb", "merge=gamma", data.scenario, on,
                            nullptr, lex.lexicon.get()));
  }

  rep.Note(
      "\nExpected shape: bucketing helps the numeric-heavy CoronaCheck;\n"
      "gamma merging gives a small lift on IMDb (name variants).");
  return rep.Finish() ? 0 : 1;
}
