// §V-F2 "Merging nodes": effect of the two merge mechanisms —
// (a) numeric bucketing on CoronaCheck (paper: +0.04 MAP with 7 buckets),
// (b) γ-threshold synonym merging with the pre-trained lexicon on IMDb
//     (paper: +2.5% from merging name variants).

#include <cstdio>

#include "bench_common.h"
#include "datagen/corona.h"
#include "datagen/imdb.h"
#include "embed/pretrained_lexicon.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Ablation: node merging (§V-F2)\n");

  // (a) Numeric bucketing on CoronaCheck.
  {
    datagen::CoronaOptions gen;
    gen.num_countries = 15;
    gen.num_months = 8;
    gen.num_generated_claims = 120;
    auto data = datagen::CoronaGenerator::Generate(gen);

    core::TDmatchOptions off = bench::DataTaskOptions();
    off.builder.bucket_numbers = false;
    core::TDmatchOptions fd = bench::DataTaskOptions();
    fd.builder.bucket_numbers = true;  // Freedman–Diaconis width
    core::TDmatchOptions fixed7 = bench::DataTaskOptions();
    fixed7.builder.bucket_numbers = true;
    fixed7.builder.fixed_buckets = 7;

    std::printf("\nCoronaCheck numeric bucketing (MAP@5):\n");
    std::printf("  no bucketing       %.3f\n",
                bench::MapAt5(data.scenario, off));
    std::printf("  Freedman-Diaconis  %.3f\n",
                bench::MapAt5(data.scenario, fd));
    std::printf("  7 equal buckets    %.3f\n",
                bench::MapAt5(data.scenario, fixed7));
  }

  // (b) Synonym/variant merging with the pre-trained lexicon on IMDb.
  {
    datagen::ImdbOptions gen;
    gen.num_reviewed_movies = 30;
    gen.num_distractor_movies = 40;
    auto data = datagen::ImdbGenerator::Generate(gen);

    embed::PretrainedLexicon lexicon;
    TDM_CHECK(lexicon.Train(data.generic_corpus).ok());
    const double gamma = lexicon.CalibrateGamma(data.synonym_pairs);
    std::printf("\nIMDb synonym merging (calibrated gamma = %.2f):\n", gamma);

    core::TDmatchOptions off = bench::DataTaskOptions();
    std::printf("  no merging   %.3f\n", bench::MapAt5(data.scenario, off));
    core::TDmatchOptions on = bench::DataTaskOptions();
    on.use_synonym_merge = true;
    on.gamma = gamma;
    std::printf("  gamma merge  %.3f\n",
                bench::MapAt5(data.scenario, on, nullptr, &lexicon));
  }

  std::printf(
      "\nExpected shape: bucketing helps the numeric-heavy CoronaCheck;\n"
      "gamma merging gives a small lift on IMDb (name variants).\n");
  return 0;
}
