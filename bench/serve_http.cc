// End-to-end benchmark of the HTTP serving front end: a MatchService +
// HttpServer pair serving a synthetic snapshot in-process, driven by
// concurrent serve::http::HttpClient threads over persistent connections.
//
// Measures what a caller actually pays — JSON parse, engine query, JSON
// serialize, and a real TCP round trip on loopback — as qps and latency
// percentiles across a (connections × batch size) grid, plus the cost of
// a live snapshot hot-reload under load.
//
// Every metric here is a timing (qps / _ms): tools/check_bench.py never
// value-compares them, it only gates that the rows keep existing and that
// the per-scenario wall time stays within budget. Each grid cell runs for
// a fixed wall duration, so the scenario's total wall is machine-
// independent by construction.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/http/client.h"
#include "serve/http/server.h"
#include "serve/http/service.h"
#include "serve/snapshot.h"
#include "util/logging.h"
#include "util/obs/jsonlog.h"
#include "util/obs/profiler.h"
#include "util/obs/slo.h"
#include "util/obs/timeseries.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

double Percentile(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const size_t idx = std::min(
      ms.size() - 1, static_cast<size_t>(p * static_cast<double>(ms.size())));
  return ms[idx];
}

std::string TempSnapshotPath() {
  std::string path = "serve_http_bench.tds";
  if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr) {
    return std::string(tmp) + "/" + path;
  }
  return "/tmp/" + path;
}

/// Clustered unit vectors, same construction as bench/serve_qps.
std::vector<std::vector<float>> MakeClusteredVectors(size_t n, int dim,
                                                     size_t centers,
                                                     util::Rng* rng) {
  std::vector<std::vector<float>> anchor(centers);
  for (auto& c : anchor) {
    c.resize(static_cast<size_t>(dim));
    for (auto& x : c) x = static_cast<float>(rng->Gaussian());
  }
  std::vector<std::vector<float>> out(n);
  for (size_t i = 0; i < n; ++i) {
    const auto& c = anchor[i % centers];
    out[i].resize(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      out[i][static_cast<size_t>(d)] =
          c[static_cast<size_t>(d)] +
          0.35f * static_cast<float>(rng->Gaussian());
    }
  }
  return out;
}

struct LoadResult {
  uint64_t queries = 0;
  uint64_t errors = 0;
  std::vector<double> request_ms;
};

/// Drives the server with `connections` client threads, each posting
/// `batch`-label /v1/query requests for `seconds` of wall time.
LoadResult DriveLoad(uint16_t port, size_t n_vectors, size_t connections,
                     size_t batch, double seconds, uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<LoadResult> per_thread(connections);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      LoadResult& mine = per_thread[t];
      auto client = serve::http::HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++mine.errors;
        return;
      }
      util::Rng rng(seed + 1000 + t);
      std::string body = "{\"k\": 5, \"labels\": [";
      for (size_t i = 0; i < batch; ++i) {
        if (i > 0) body += ", ";
        body += "\"v" + std::to_string(rng.UniformInt(n_vectors)) + "\"";
      }
      body += "]}";
      while (!stop.load(std::memory_order_relaxed)) {
        util::StopWatch one;
        auto r = client->Post("/v1/query", body);
        if (!r.ok() || r->status != 200) {
          ++mine.errors;
          continue;
        }
        mine.request_ms.push_back(one.ElapsedMillis());
        mine.queries += batch;
      }
    });
  }
  util::StopWatch watch;
  while (watch.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  LoadResult total;
  for (auto& r : per_thread) {
    total.queries += r.queries;
    total.errors += r.errors;
    total.request_ms.insert(total.request_ms.end(), r.request_ms.begin(),
                            r.request_ms.end());
  }
  return total;
}

void RunHttpSynthetic(bench::BenchReporter& rep,
                      const bench::BenchOptions& opts) {
  if (!opts.Matches("HttpSynthetic")) return;
  const char* scenario = "HttpSynthetic";
  size_t n = 10000;
  double seconds = 0.5;
  if (opts.scale == bench::Scale::kSmoke) {
    n = 2000;
    seconds = 0.25;
  }
  if (opts.scale == bench::Scale::kFull) {
    n = 50000;
    seconds = 1.0;
  }
  const int dim = 32;
  const uint64_t seed = opts.seed == 0 ? 7 : opts.seed;

  // --- snapshot on disk, served over mmap --------------------------------
  util::Rng rng(seed);
  util::StopWatch watch;
  const auto vectors = MakeClusteredVectors(n, dim, 64, &rng);
  embed::EmbeddingTable table(dim);
  for (size_t i = 0; i < n; ++i) {
    table.Put("v" + std::to_string(i), vectors[i]);
  }
  serve::SnapshotMeta meta;
  meta.scenario = scenario;
  meta.Set("candidate_prefix", "v");
  const std::string path = TempSnapshotPath();
  TDM_CHECK(serve::SnapshotIo::Write(table, meta, path).ok());
  const double gen_seconds = watch.ElapsedSeconds();

  watch.Reset();
  serve::http::ServiceOptions sopts;
  sopts.engine.ivf.seed = seed;
  serve::http::MatchService service(sopts);
  {
    const util::Status st = service.LoadInitial(path);
    TDM_CHECK(st.ok()) << st.ToString();
  }
  const double load_seconds = watch.ElapsedSeconds();

  serve::http::HttpServerOptions hopts;
  hopts.threads = 6;  // max connections below + one for the reload client
  serve::http::HttpServer server(hopts);
  service.Register(&server);
  {
    const util::Status st = server.Start();
    TDM_CHECK(st.ok()) << st.ToString();
  }
  rep.Printf("\nHTTP serving: n=%zu dim=%d (gen+write %.2fs, mmap load + "
             "engine build %.3fs), %zu worker threads, fixed %.2fs per "
             "cell\n",
             n, dim, gen_seconds, load_seconds, hopts.threads, seconds);
  rep.Add(scenario, "snapshot", "load_seconds", load_seconds, load_seconds);

  // --- the (connections × batch) grid ------------------------------------
  rep.Printf("%-20s %-10s %-10s %-10s\n", "config", "qps", "p50_ms",
             "p99_ms");
  for (const size_t connections : {size_t{1}, size_t{4}}) {
    for (const size_t batch : {size_t{1}, size_t{16}}) {
      const LoadResult load =
          DriveLoad(server.port(), n, connections, batch, seconds, seed);
      TDM_CHECK(load.errors == 0) << load.errors << " request errors";
      const double qps = static_cast<double>(load.queries) / seconds;
      const double p50 = Percentile(load.request_ms, 0.5);
      const double p99 = Percentile(load.request_ms, 0.99);
      const std::string param = "conn=" + std::to_string(connections) +
                                ",batch=" + std::to_string(batch);
      rep.Add(scenario, param, "qps", qps, seconds);
      rep.Add(scenario, param, "p50_ms", p50, 0.0);
      rep.Add(scenario, param, "p99_ms", p99, 0.0);
      rep.Printf("%-20s %-10.0f %-10.3f %-10.3f\n", param.c_str(), qps, p50,
                 p99);
    }
  }

  // --- observability overhead ---------------------------------------------
  // Same snapshot served by a second service with production-rate tracing
  // (10% of requests carry per-stage spans + histograms + one JSONL line
  // into a counting sink; the other 90% pay one sampler branch) against
  // the untraced server above. Alternating best-of-3 rounds on a
  // single-label config — where per-request overhead is least amortized —
  // feed the obs_overhead_ratio row check_bench gates with
  // --max-obs-overhead (<= 5%: tracing must stay cheap enough to leave on).
  {
    serve::http::ServiceOptions tr_opts;
    tr_opts.engine.ivf.seed = seed;
    tr_opts.trace_sample = 0.1;
    util::obs::JsonLogger trace_log;
    uint64_t trace_lines = 0;
    trace_log.set_sink([&trace_lines](const std::string&) { ++trace_lines; });
    tr_opts.logger = &trace_log;
    serve::http::MatchService traced(tr_opts);
    {
      const util::Status st = traced.LoadInitial(path);
      TDM_CHECK(st.ok()) << st.ToString();
    }
    serve::http::HttpServerOptions tr_hopts;
    tr_hopts.threads = 6;
    serve::http::HttpServer traced_server(tr_hopts);
    traced.Register(&traced_server);
    {
      const util::Status st = traced_server.Start();
      TDM_CHECK(st.ok()) << st.ToString();
    }

    // Loopback qps at these short cells is noisy (+-10% round to round),
    // which would swamp a single-shot ratio. Each round runs off and on
    // back to back under near-identical machine conditions and yields a
    // paired ratio; the gate takes the minimum over rounds. Noise that
    // happens to slow the traced side inflates some rounds but rarely all
    // of them, while a real tracing regression inflates every round — so
    // the minimum stays a tight upper-bound estimate of true overhead.
    constexpr int kRounds = 5;
    double qps_off = 0.0;
    double qps_on = 0.0;
    double overhead = 1e9;
    for (int round = 0; round < kRounds; ++round) {
      const LoadResult off =
          DriveLoad(server.port(), n, 2, 1, seconds, seed + 31 * round);
      const LoadResult on = DriveLoad(traced_server.port(), n, 2, 1, seconds,
                                      seed + 31 * round);
      TDM_CHECK(off.errors == 0 && on.errors == 0);
      const double off_qps = static_cast<double>(off.queries) / seconds;
      const double on_qps = static_cast<double>(on.queries) / seconds;
      qps_off = std::max(qps_off, off_qps);
      qps_on = std::max(qps_on, on_qps);
      overhead = std::min(overhead, off_qps / std::max(on_qps, 1e-9));
    }
    traced_server.Stop();
    TDM_CHECK(trace_lines > 0) << "traced server emitted no JSONL lines";
    const double obs_wall = 2 * kRounds * seconds;
    rep.Add(scenario, "obs=off", "qps", qps_off, obs_wall);
    rep.Add(scenario, "obs=on", "qps", qps_on, 0.0);
    rep.Add(scenario, "obs=on", "obs_overhead_ratio", overhead, 0.0);
    rep.Printf("%-20s off %-8.0f on %-8.0f ratio %.3f (%llu trace lines)\n",
               "obs qps", qps_off, qps_on, overhead,
               static_cast<unsigned long long>(trace_lines));
  }

  // --- profiler overhead ---------------------------------------------------
  // Same paired-rounds design as the tracing section: the same server is
  // driven with the sampling CPU profiler disarmed and then armed at the
  // production default 99 Hz, and the gate takes the minimum qps ratio
  // over rounds. check_bench gates profiler_overhead_ratio with
  // --max-profiler-overhead (<= 5%: a 99 Hz SIGPROF + frame-pointer walk
  // must be cheap enough to capture on a live server).
  {
    constexpr int kRounds = 5;
    double qps_off = 0.0;
    double qps_on = 0.0;
    double overhead = 1e9;
    uint64_t profile_samples = 0;
    if (util::obs::CpuProfiler::Supported()) {
      for (int round = 0; round < kRounds; ++round) {
        const LoadResult off =
            DriveLoad(server.port(), n, 2, 1, seconds, seed + 47 * round);
        {
          const util::Status st = util::obs::CpuProfiler::Global().Start(99);
          TDM_CHECK(st.ok()) << st.ToString();
        }
        const LoadResult on =
            DriveLoad(server.port(), n, 2, 1, seconds, seed + 47 * round);
        const util::obs::CpuProfile profile =
            util::obs::CpuProfiler::Global().Stop();
        profile_samples += profile.samples;
        TDM_CHECK(off.errors == 0 && on.errors == 0);
        const double off_qps = static_cast<double>(off.queries) / seconds;
        const double on_qps = static_cast<double>(on.queries) / seconds;
        qps_off = std::max(qps_off, off_qps);
        qps_on = std::max(qps_on, on_qps);
        overhead = std::min(overhead, off_qps / std::max(on_qps, 1e-9));
      }
    } else {
      // Keep the row (check_bench requires rows to persist) with a
      // truthful no-op value on platforms without the profiler.
      overhead = 1.0;
    }
    const double prof_wall = 2 * kRounds * seconds;
    rep.Add(scenario, "profile=off", "qps", qps_off, prof_wall);
    rep.Add(scenario, "profile=on", "qps", qps_on, 0.0);
    rep.Add(scenario, "profile=on", "profiler_overhead_ratio", overhead, 0.0);
    rep.Printf("%-20s off %-8.0f on %-8.0f ratio %.3f (%llu samples)\n",
               "profiler qps", qps_off, qps_on, overhead,
               static_cast<unsigned long long>(profile_samples));
  }

  // --- metric history + SLO cost ------------------------------------------
  // What continuous observability costs at steady state: ring memory for
  // the service's tdmatch_* families across sampling cadences (capacity
  // sized for a fixed 60 s retention), the cost of one sample, of one
  // trailing-window query, and of one SLO burn-rate evaluation. All
  // timings; check_bench only gates that the rows persist.
  {
    const double kRetention = 60.0;
    for (const double interval : {0.1, 1.0}) {
      util::obs::TimeSeriesOptions topts;
      topts.interval_seconds = interval;
      topts.capacity = static_cast<size_t>(kRetention / interval);
      topts.name_prefix = "tdmatch_";
      util::obs::TimeSeriesStore store(service.registry(), topts);
      const size_t samples = topts.capacity;
      watch.Reset();
      for (size_t i = 0; i < samples; ++i) {
        store.SampleOnce(static_cast<double>(i) * interval);
      }
      const double sample_ms = watch.ElapsedMillis() /
                               static_cast<double>(samples);
      watch.Reset();
      constexpr int kWindowReps = 100;
      size_t series_seen = 0;
      for (int i = 0; i < kWindowReps; ++i) {
        series_seen = store.Window(kRetention,
                                   static_cast<double>(samples) * interval)
                          .size();
      }
      const double window_ms = watch.ElapsedMillis() / kWindowReps;
      TDM_CHECK(series_seen > 0) << "history captured no series";
      const std::string param =
          "interval=" + std::to_string(interval).substr(0, 3) + "s";
      rep.Add(scenario, param, "history_memory_bytes",
              static_cast<double>(store.MemoryBytes()), 0.0);
      rep.Add(scenario, param, "history_sample_ms", sample_ms, 0.0);
      rep.Add(scenario, param, "history_window_ms", window_ms, 0.0);
      rep.Printf("%-20s %zu series, %.0f KiB, sample %.4f ms, window "
                 "%.4f ms\n",
                 param.c_str(), series_seen,
                 static_cast<double>(store.MemoryBytes()) / 1024.0, sample_ms,
                 window_ms);
    }

    util::obs::SloOptions slopts;
    slopts.latency_budget_ms = 5.0;
    util::obs::SloTracker slo(slopts);
    constexpr int kRecords = 200000;
    watch.Reset();
    for (int i = 0; i < kRecords; ++i) {
      slo.Record(static_cast<double>(i) * 0.001, i % 97 != 0, i % 11 != 0);
    }
    const double record_ns =
        watch.ElapsedMillis() * 1e6 / static_cast<double>(kRecords);
    watch.Reset();
    constexpr int kEvals = 1000;
    for (int i = 0; i < kEvals; ++i) {
      (void)slo.Evaluate(static_cast<double>(kRecords) * 0.001);
    }
    const double eval_ms = watch.ElapsedMillis() / kEvals;
    rep.Add(scenario, "slo", "slo_record_ns", record_ns, 0.0);
    rep.Add(scenario, "slo", "slo_eval_ms", eval_ms, 0.0);
    rep.Printf("%-20s record %.0f ns, evaluate %.4f ms\n", "slo",
               record_ns, eval_ms);
  }

  // --- hot reload under load ----------------------------------------------
  {
    std::atomic<bool> stop{false};
    std::thread background([&] {
      auto client = serve::http::HttpClient::Connect("127.0.0.1",
                                                     server.port());
      if (!client.ok()) return;
      while (!stop.load(std::memory_order_relaxed)) {
        client->Post("/v1/query", "{\"label\": \"v1\", \"k\": 5}");
      }
    });
    auto reloader = serve::http::HttpClient::Connect("127.0.0.1",
                                                     server.port());
    TDM_CHECK(reloader.ok());
    watch.Reset();
    auto r = reloader->Post("/v1/reload", "{}");
    const double reload_ms = watch.ElapsedMillis();
    TDM_CHECK(r.ok() && r->status == 200) << "reload failed";
    stop.store(true);
    background.join();
    rep.Add(scenario, "reload", "reload_ms", reload_ms, reload_ms / 1e3);
    rep.Printf("%-20s %-10.1f (swap under live traffic)\n", "reload_ms",
               reload_ms);
  }

  server.Stop();
  std::remove(path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("serve_http", opts);
  rep.Note("HTTP front end: end-to-end qps + latency over loopback, "
           "mmap-loaded snapshot, live hot-reload");
  RunHttpSynthetic(rep, opts);
  return rep.Finish() ? 0 : 1;
}
