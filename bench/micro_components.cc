// Component micro-benchmarks (google-benchmark): the hot paths of the
// pipeline — tokenization, stemming, n-grams, BFS, walk generation,
// Word2Vec steps and top-k selection.
//
// The walk / negative-sampling / top-k groups carry explicit before/after
// pairs for the CSR hot-path overhaul: the `…Ref` variants replicate the
// pre-CSR implementations (nested per-walk vectors over the building-state
// adjacency, the 4 MB materialized unigram table, full partial_sort
// selection) so the speedup of the shipped code is measurable in one run:
//
//   ./micro_components --benchmark_filter='WalkGen|NegSample|TopK'

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "embed/negative_sampler.h"
#include "embed/random_walk.h"
#include "embed/sentence_corpus.h"
#include "embed/word2vec.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "match/top_k.h"
#include "text/ngram.h"
#include "text/preprocess.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace tdmatch;  // NOLINT

const char kSampleText[] =
    "Shyamalan directed this brilliant thriller about a quiet kid and a "
    "gentle doctor; Bruce Willis delivers a stunning performance in 1999.";

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Tokenize(kSampleText));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Stem(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::PorterStemmer::Stem("relational"));
  }
}
BENCHMARK(BM_Stem);

void BM_Preprocess(benchmark::State& state) {
  text::Preprocessor pp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pp.Terms(kSampleText));
  }
}
BENCHMARK(BM_Preprocess);

void BM_NGrams(benchmark::State& state) {
  text::NGramGenerator g(static_cast<size_t>(state.range(0)));
  std::vector<std::string> tokens(20, "tok");
  for (size_t i = 0; i < tokens.size(); ++i) tokens[i] += std::to_string(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.GenerateUnique(tokens));
  }
}
BENCHMARK(BM_NGrams)->Arg(1)->Arg(2)->Arg(3);

graph::Graph RandomGraph(size_t n, size_t avg_degree, uint64_t seed) {
  graph::Graph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode("n" + std::to_string(i));
  }
  util::Rng rng(seed);
  for (size_t e = 0; e < n * avg_degree / 2; ++e) {
    g.AddEdge(static_cast<graph::NodeId>(rng.UniformInt(n)),
              static_cast<graph::NodeId>(rng.UniformInt(n)));
  }
  return g;
}

void BM_BfsDistances(benchmark::State& state) {
  auto g = RandomGraph(static_cast<size_t>(state.range(0)), 6, 1);
  g.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Bfs::Distances(g, 0));
  }
}
BENCHMARK(BM_BfsDistances)->Arg(1000)->Arg(10000);

void BM_ShortestPathDag(benchmark::State& state) {
  auto g = RandomGraph(5000, 6, 2);
  g.Finalize();
  util::Rng rng(3);
  for (auto _ : state) {
    auto a = static_cast<graph::NodeId>(rng.UniformInt(5000ULL));
    auto b = static_cast<graph::NodeId>(rng.UniformInt(5000ULL));
    benchmark::DoNotOptimize(graph::Bfs::ShortestPathDagEdges(g, a, b));
  }
}
BENCHMARK(BM_ShortestPathDag);

// ---------------------------------------------------------------------------
// Walk generation: before (nested vectors over per-node adjacency vectors)
// vs after (flat corpus over the CSR layout).
// ---------------------------------------------------------------------------

constexpr size_t kWalkGraphNodes = 2000;
const embed::RandomWalkOptions kWalkOpts{.num_walks = 5, .walk_length = 15,
                                         .seed = 5, .threads = 1};

/// Replica of the pre-CSR walk generator: one heap-allocated vector per
/// walk, neighbor lookups through the building-state representation.
std::vector<std::vector<int32_t>> RefGenerateNested(
    const graph::Graph& g, const embed::RandomWalkOptions& options) {
  const size_t n = g.NumNodes();
  std::vector<std::vector<int32_t>> walks(n * options.num_walks);
  for (size_t v = 0; v < n; ++v) {
    util::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
    for (size_t w = 0; w < options.num_walks; ++w) {
      std::vector<int32_t>& walk = walks[v * options.num_walks + w];
      walk.reserve(options.walk_length);
      graph::NodeId cur = static_cast<graph::NodeId>(v);
      walk.push_back(cur);
      for (size_t step = 1; step < options.walk_length; ++step) {
        const auto nbs = g.Neighbors(cur);
        if (nbs.empty()) break;
        cur = nbs[static_cast<size_t>(rng.UniformInt(nbs.size()))];
        walk.push_back(cur);
      }
    }
  }
  return walks;
}

void BM_WalkGenRef(benchmark::State& state) {
  auto g = RandomGraph(kWalkGraphNodes, 6, 4);  // building-state adjacency
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefGenerateNested(g, kWalkOpts));
  }
}
BENCHMARK(BM_WalkGenRef);

void BM_WalkGenCsr(benchmark::State& state) {
  auto g = RandomGraph(kWalkGraphNodes, 6, 4);
  g.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed::RandomWalker::GenerateCorpus(g,
                                                                 kWalkOpts));
  }
}
BENCHMARK(BM_WalkGenCsr);

// Kept name from the seed suite: the shipped nested-API wrapper.
void BM_RandomWalks(benchmark::State& state) {
  auto g = RandomGraph(kWalkGraphNodes, 6, 4);
  g.Finalize();
  embed::RandomWalkOptions opts = kWalkOpts;
  opts.threads = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed::RandomWalker::Generate(g, opts));
  }
}
BENCHMARK(BM_RandomWalks);

// ---------------------------------------------------------------------------
// Negative sampling: before (4 MB materialized table, one random read per
// sample) vs after (boundary binary search over a vocab-sized array).
// ---------------------------------------------------------------------------

constexpr size_t kNegVocab = 20000;
constexpr size_t kNegTableSize = 1 << 20;

std::vector<uint64_t> ZipfCounts(size_t vocab) {
  std::vector<uint64_t> counts(vocab);
  for (size_t i = 0; i < vocab; ++i) {
    counts[i] = static_cast<uint64_t>(1e6 / static_cast<double>(i + 1)) + 1;
  }
  return counts;
}

constexpr int kNegDim = 48;

/// The trainer's access pattern: every sampled id is immediately used to
/// touch that word's output row (syn1neg). Benchmarking the bare lookup
/// instead would let out-of-order execution hide the 4 MB table's cache
/// misses behind the RNG chain — in the real gradient loop they stall the
/// dot product, and the table evicts the weight rows on top. The row
/// matrix is part of the working set here for exactly that reason.
std::vector<float> NegRowMatrix() {
  std::vector<float> rows(kNegVocab * kNegDim);
  util::Rng rng(12);
  for (auto& v : rows) v = static_cast<float>(rng.Uniform());
  return rows;
}

void BM_NegSampleTableRef(benchmark::State& state) {
  // Replica of the pre-overhaul sampler: the full materialized table.
  auto counts = ZipfCounts(kNegVocab);
  std::vector<int32_t> table(kNegTableSize, 0);
  double norm = 0.0;
  for (uint64_t c : counts) norm += std::pow(static_cast<double>(c), 0.75);
  size_t i = 0;
  double cum = std::pow(static_cast<double>(counts[0]), 0.75) / norm;
  for (size_t t = 0; t < kNegTableSize; ++t) {
    table[t] = static_cast<int32_t>(i);
    if (static_cast<double>(t) / kNegTableSize > cum && i + 1 < kNegVocab) {
      ++i;
      cum += std::pow(static_cast<double>(counts[i]), 0.75) / norm;
    }
  }
  auto rows = NegRowMatrix();
  util::Rng rng(11);
  for (auto _ : state) {
    const int32_t target = table[rng.Next() & (kNegTableSize - 1)];
    float sum = 0.0f;
    const float* row = rows.data() + static_cast<size_t>(target) * kNegDim;
    for (int d = 0; d < kNegDim; ++d) sum += row[d];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NegSampleTableRef);

void BM_NegSampleBounds(benchmark::State& state) {
  embed::NegativeSampler sampler;
  sampler.Build(ZipfCounts(kNegVocab), kNegTableSize);
  auto rows = NegRowMatrix();
  util::Rng rng(11);
  for (auto _ : state) {
    const int32_t target =
        sampler.Sample(rng.Next() & (kNegTableSize - 1));
    float sum = 0.0f;
    const float* row = rows.data() + static_cast<size_t>(target) * kNegDim;
    for (int d = 0; d < kNegDim; ++d) sum += row[d];
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_NegSampleBounds);

// ---------------------------------------------------------------------------
// Word2Vec epoch over the shipped trainer (nested input vs flat corpus).
// ---------------------------------------------------------------------------

std::vector<std::vector<int32_t>> SyntheticSentences() {
  // 500 sentences of 20 tokens over a 1k vocab.
  util::Rng rng(6);
  std::vector<std::vector<int32_t>> sentences(500);
  for (auto& s : sentences) {
    for (int i = 0; i < 20; ++i) {
      s.push_back(static_cast<int32_t>(rng.UniformInt(1000ULL)));
    }
  }
  return sentences;
}

embed::Word2VecOptions EpochOptions() {
  embed::Word2VecOptions o;
  o.dim = 48;
  o.epochs = 1;
  o.subsample = 1e-3;
  return o;
}

void BM_Word2VecEpoch(benchmark::State& state) {
  auto sentences = SyntheticSentences();
  for (auto _ : state) {
    embed::Word2Vec w2v(EpochOptions());
    benchmark::DoNotOptimize(w2v.Train(sentences, 1000));
  }
}
BENCHMARK(BM_Word2VecEpoch);

void BM_Word2VecEpochFlat(benchmark::State& state) {
  auto corpus = embed::SentenceCorpus::FromNested(SyntheticSentences());
  for (auto _ : state) {
    embed::Word2Vec w2v(EpochOptions());
    benchmark::DoNotOptimize(w2v.Train(corpus, 1000));
  }
}
BENCHMARK(BM_Word2VecEpochFlat);

// ---------------------------------------------------------------------------
// Top-k selection: before (partial_sort over the full index array) vs
// after (bounded heap for small k). Same output, different work.
// ---------------------------------------------------------------------------

std::vector<double> RandomScores(size_t n) {
  util::Rng rng(7);
  std::vector<double> scores(n);
  for (auto& s : scores) s = rng.Uniform();
  return scores;
}

/// Replica of the pre-overhaul Select: partial_sort over all candidates.
std::vector<match::Match> RefSelectPartialSort(
    const std::vector<double>& scores, size_t k) {
  k = std::min(k, scores.size());
  std::vector<int32_t> idx(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) idx[i] = static_cast<int32_t>(i);
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](int32_t a, int32_t b) {
                      double sa = scores[static_cast<size_t>(a)];
                      double sb = scores[static_cast<size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });
  std::vector<match::Match> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.push_back(match::Match{idx[i], scores[static_cast<size_t>(idx[i])]});
  }
  return out;
}

void BM_TopKSelectRef(benchmark::State& state) {
  auto scores = RandomScores(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefSelectPartialSort(scores, 20));
  }
}
BENCHMARK(BM_TopKSelectRef)->Arg(1000)->Arg(100000);

void BM_TopKSelect(benchmark::State& state) {
  auto scores = RandomScores(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::TopK::Select(scores, 20));
  }
}
BENCHMARK(BM_TopKSelect)->Arg(1000)->Arg(100000);

}  // namespace
