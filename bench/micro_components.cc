// Component micro-benchmarks (google-benchmark): the hot paths of the
// pipeline — tokenization, stemming, n-grams, BFS, walk generation,
// Word2Vec steps and top-k selection.

#include <benchmark/benchmark.h>

#include "embed/random_walk.h"
#include "embed/word2vec.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "match/top_k.h"
#include "text/ngram.h"
#include "text/preprocess.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

using namespace tdmatch;  // NOLINT

const char kSampleText[] =
    "Shyamalan directed this brilliant thriller about a quiet kid and a "
    "gentle doctor; Bruce Willis delivers a stunning performance in 1999.";

void BM_Tokenize(benchmark::State& state) {
  text::Tokenizer t;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Tokenize(kSampleText));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Stem(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::PorterStemmer::Stem("relational"));
  }
}
BENCHMARK(BM_Stem);

void BM_Preprocess(benchmark::State& state) {
  text::Preprocessor pp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pp.Terms(kSampleText));
  }
}
BENCHMARK(BM_Preprocess);

void BM_NGrams(benchmark::State& state) {
  text::NGramGenerator g(static_cast<size_t>(state.range(0)));
  std::vector<std::string> tokens(20, "tok");
  for (size_t i = 0; i < tokens.size(); ++i) tokens[i] += std::to_string(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.GenerateUnique(tokens));
  }
}
BENCHMARK(BM_NGrams)->Arg(1)->Arg(2)->Arg(3);

graph::Graph RandomGraph(size_t n, size_t avg_degree, uint64_t seed) {
  graph::Graph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode("n" + std::to_string(i));
  }
  util::Rng rng(seed);
  for (size_t e = 0; e < n * avg_degree / 2; ++e) {
    g.AddEdge(static_cast<graph::NodeId>(rng.UniformInt(n)),
              static_cast<graph::NodeId>(rng.UniformInt(n)));
  }
  return g;
}

void BM_BfsDistances(benchmark::State& state) {
  auto g = RandomGraph(static_cast<size_t>(state.range(0)), 6, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::Bfs::Distances(g, 0));
  }
}
BENCHMARK(BM_BfsDistances)->Arg(1000)->Arg(10000);

void BM_ShortestPathDag(benchmark::State& state) {
  auto g = RandomGraph(5000, 6, 2);
  util::Rng rng(3);
  for (auto _ : state) {
    auto a = static_cast<graph::NodeId>(rng.UniformInt(5000ULL));
    auto b = static_cast<graph::NodeId>(rng.UniformInt(5000ULL));
    benchmark::DoNotOptimize(graph::Bfs::ShortestPathDagEdges(g, a, b));
  }
}
BENCHMARK(BM_ShortestPathDag);

void BM_RandomWalks(benchmark::State& state) {
  auto g = RandomGraph(2000, 6, 4);
  embed::RandomWalkOptions opts{.num_walks = 5, .walk_length = 15,
                                .seed = 5, .threads = 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed::RandomWalker::Generate(g, opts));
  }
}
BENCHMARK(BM_RandomWalks);

void BM_Word2VecEpoch(benchmark::State& state) {
  // 500 sentences of 20 tokens over a 1k vocab.
  util::Rng rng(6);
  std::vector<std::vector<int32_t>> sentences(500);
  for (auto& s : sentences) {
    for (int i = 0; i < 20; ++i) {
      s.push_back(static_cast<int32_t>(rng.UniformInt(1000ULL)));
    }
  }
  for (auto _ : state) {
    embed::Word2VecOptions o;
    o.dim = 48;
    o.epochs = 1;
    o.threads = 8;
    embed::Word2Vec w2v(o);
    benchmark::DoNotOptimize(w2v.Train(sentences, 1000));
  }
}
BENCHMARK(BM_Word2VecEpoch);

void BM_TopKSelect(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<double> scores(static_cast<size_t>(state.range(0)));
  for (auto& s : scores) s = rng.Uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(match::TopK::Select(scores, 20));
  }
}
BENCHMARK(BM_TopKSelect)->Arg(1000)->Arg(100000);

}  // namespace
