// §V-F1 "Number of tokens in terms": MAP@5 as the maximum n-gram size of
// data nodes grows 1..4. The paper sees the biggest jump from 1 to 2 and
// diminishing returns after 3.

#include <cstdio>

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Ablation: number of tokens in terms (§V-F1)\n");
  auto scenarios = bench::MakeSweepScenarios();

  std::printf("\n%-6s", "n");
  for (const auto& sc : scenarios) std::printf("  %-6s", sc.name.c_str());
  std::printf("\n");
  for (size_t n : {1, 2, 3, 4}) {
    std::printf("%-6zu", n);
    for (const auto& sc : scenarios) {
      core::TDmatchOptions o = sc.base_options;
      o.builder.preprocess.max_ngram = n;
      std::printf("  %.3f", bench::MapAt5(sc.data.scenario, o));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: biggest gain from n=1 to n=2; little change\n"
      "after n=3 (the paper's Wikipedia-title profiling default).\n");
  return 0;
}
