// §V-F1 "Number of tokens in terms": MAP@5 as the maximum n-gram size of
// data nodes grows 1..4. The paper sees the biggest jump from 1 to 2 and
// diminishing returns after 3.

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("ablation_ngram", opts);
  rep.Note("Ablation: number of tokens in terms (§V-F1)");
  bench::RunMapSweep(rep, "max_ngram", bench::MakeSweepScenarios(opts),
                     bench::NumericPoints(opts, {1, 2, 3, 4},
                                          [](core::TDmatchOptions& o,
                                             size_t v) {
                                            o.builder.preprocess.max_ngram = v;
                                          }));
  rep.Note(
      "\nExpected shape: biggest gain from n=1 to n=2; little change\n"
      "after n=3 (the paper's Wikipedia-title profiling default).");
  return rep.Finish() ? 0 : 1;
}
