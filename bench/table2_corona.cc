// Table II: quality of match results for the CoronaCheck scenario
// (Gen = template-generated claims, Usr = noisy user claims). Row set
// {S-BE, W-RW, W-RW-EX, RANK*, DEEP-M*, DITTO*, TAPAS*}.

#include <cstdio>

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "datagen/corona.h"

using namespace tdmatch;  // NOLINT

namespace {

core::TDmatchOptions CoronaOptions() {
  // Numeric bucketing is on for CoronaCheck (§II-C); Freedman–Diaconis
  // width resolves rounded claim values without collapsing distinct days.
  core::TDmatchOptions o = bench::DataTaskOptions();
  o.builder.bucket_numbers = true;
  return o;
}

void RunVariant(bool user_variant) {
  datagen::CoronaOptions gen;
  gen.user_variant = user_variant;
  auto data = datagen::CoronaGenerator::Generate(gen);
  // §II-C typo merging via the pre-trained lexicon (the paper reports a
  // +3.4% CoronaCheck gain from merging user typos).
  auto lex = bench::MakeLexicon(data);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  core::TDmatchOptions base = CoronaOptions();
  base.use_synonym_merge = true;
  base.gamma = lex.gamma;
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", base, nullptr, lex.lexicon.get())});
  core::TDmatchOptions ex = base;
  ex.expand = true;
  methods.push_back(
      {"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                      "W-RW-EX", ex, data.kb.get(), lex.lexicon.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});
  methods.push_back(
      {"DEEP-M*", std::make_unique<baselines::DeepMatcherProxy>(
                      baselines::SupervisedOptions{}, /*max_columns=*/6)});
  methods.push_back({"DITTO*", std::make_unique<baselines::DittoProxy>()});
  methods.push_back({"TAPAS*", std::make_unique<baselines::TapasProxy>(
                                   baselines::SupervisedOptions{},
                                   /*max_columns=*/6)});

  bench::RunRankingTable(
      std::string("Table II — CoronaCheck ") + (user_variant ? "Usr" : "Gen"),
      data.scenario, &methods);
}

}  // namespace

int main() {
  std::printf("Reproduction of Table II (CoronaCheck scenario)\n");
  RunVariant(/*user_variant=*/false);
  RunVariant(/*user_variant=*/true);
  return 0;
}
