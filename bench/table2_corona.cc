// Table II: quality of match results for the CoronaCheck scenario
// (Gen = template-generated claims, Usr = noisy user claims). Row set
// {S-BE, W-RW, W-RW-EX, RANK*, DEEP-M*, DITTO*, TAPAS*}.

#include <string>

#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"

using namespace tdmatch;  // NOLINT

namespace {

core::TDmatchOptions CoronaOptions(const bench::BenchOptions& opts) {
  // Numeric bucketing is on for CoronaCheck (§II-C); Freedman–Diaconis
  // width resolves rounded claim values without collapsing distinct days.
  core::TDmatchOptions o = bench::DataTaskOptions(opts);
  o.builder.bucket_numbers = true;
  return o;
}

void RunVariant(bench::BenchReporter& rep, bool user_variant) {
  const bench::BenchOptions& opts = rep.options();
  const std::string label =
      std::string("Corona-") + (user_variant ? "Usr" : "Gen");
  if (!opts.Matches(label)) return;

  datagen::CoronaOptions gen = bench::ScaledCoronaOptions(opts);
  gen.user_variant = user_variant;
  auto data = datagen::CoronaGenerator::Generate(gen);
  // §II-C typo merging via the pre-trained lexicon (the paper reports a
  // +3.4% CoronaCheck gain from merging user typos).
  auto lex = bench::MakeLexicon(data, opts);

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  core::TDmatchOptions base = CoronaOptions(opts);
  base.use_synonym_merge = true;
  base.gamma = lex.gamma;
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", base, nullptr, lex.lexicon.get())});
  core::TDmatchOptions ex = base;
  ex.expand = true;
  methods.push_back(
      {"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                      "W-RW-EX", ex, data.kb.get(), lex.lexicon.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});
  methods.push_back(
      {"DEEP-M*", std::make_unique<baselines::DeepMatcherProxy>(
                      baselines::SupervisedOptions{}, /*max_columns=*/6)});
  methods.push_back({"DITTO*", std::make_unique<baselines::DittoProxy>()});
  methods.push_back({"TAPAS*", std::make_unique<baselines::TapasProxy>(
                                   baselines::SupervisedOptions{},
                                   /*max_columns=*/6)});

  bench::RunRankingTable(
      rep,
      std::string("Table II — CoronaCheck ") + (user_variant ? "Usr" : "Gen"),
      label, data.scenario, methods);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table2_corona", opts);
  rep.Note("Reproduction of Table II (CoronaCheck scenario)");
  RunVariant(rep, /*user_variant=*/false);
  RunVariant(rep, /*user_variant=*/true);
  return rep.Finish() ? 0 : 1;
}
