// Table III: Exact and Node P/R/F for the structured-text (Audit) scenario
// at K in {1, 3, 5, 10}. Row set {D2VEC, S-BE, W-RW, W-RW-EX, RANK*, L-BE*}.

#include <cstdio>

#include "baselines/embedding_baselines.h"
#include "baselines/lbert.h"
#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "datagen/audit.h"
#include "eval/taxonomy_metrics.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Table III (Audit scenario)\n");
  auto data = datagen::AuditGenerator::Generate({});
  const corpus::Scenario& s = data.scenario;
  const corpus::Taxonomy& tax = *s.second.taxonomy();

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"D2VEC", std::make_unique<baselines::Doc2VecBaseline>()});
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", bench::TextTaskOptions())});
  core::TDmatchOptions ex = bench::TextTaskOptions();
  ex.expand = true;
  methods.push_back({"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                                    "W-RW-EX", ex, data.kb.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});
  methods.push_back({"L-BE*", std::make_unique<baselines::LBertProxy>()});

  // Run every method once; report per-K scores from the same rankings.
  struct Done {
    std::string name;
    core::MethodRun run;
  };
  std::vector<Done> runs;
  for (auto& nm : methods) {
    auto run = core::Experiment::Run(nm.method.get(), s);
    if (!run.ok()) {
      std::printf("%-8s FAILED: %s\n", nm.name.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    runs.push_back({nm.name, std::move(*run)});
  }

  for (size_t k : {1, 3, 5, 10}) {
    std::printf("\n--- K=%zu ---\n", k);
    std::printf("%-8s  %-22s  %-22s\n", "Method", "Exact P / R / F",
                "Node P / R / F");
    for (const auto& d : runs) {
      auto exact =
          eval::TaxonomyMetrics::ExactScores(tax, d.run.rankings, s.gold, k);
      auto node =
          eval::TaxonomyMetrics::NodeScores(tax, d.run.rankings, s.gold, k);
      std::printf("%-8s  %.3f %.3f %.3f      %.3f %.3f %.3f\n",
                  d.name.c_str(), exact.precision, exact.recall, exact.f1,
                  node.precision, node.recall, node.f1);
    }
  }
  return 0;
}
