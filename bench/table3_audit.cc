// Table III: Exact and Node P/R/F for the structured-text (Audit) scenario
// at K in {1, 3, 5, 10}. Row set {D2VEC, S-BE, W-RW, W-RW-EX, RANK*, L-BE*}.

#include <cstdio>
#include <string>

#include "baselines/embedding_baselines.h"
#include "baselines/lbert.h"
#include "baselines/sbe.h"
#include "baselines/supervised.h"
#include "bench_common.h"
#include "eval/taxonomy_metrics.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("table3_audit", opts);
  rep.Note("Reproduction of Table III (Audit scenario)");
  if (!opts.Matches("Audit")) return rep.Finish() ? 0 : 1;

  auto data = datagen::AuditGenerator::Generate(bench::ScaledAuditOptions(opts));
  const corpus::Scenario& s = data.scenario;
  const corpus::Taxonomy& tax = *s.second.taxonomy();

  std::vector<bench::NamedMethod> methods;
  methods.push_back({"D2VEC", std::make_unique<baselines::Doc2VecBaseline>()});
  methods.push_back({"S-BE",
                     std::make_unique<baselines::HashSentenceEncoder>()});
  methods.push_back({"W-RW", std::make_unique<core::TDmatchMethod>(
                                 "W-RW", bench::TextTaskOptions(opts))});
  core::TDmatchOptions ex = bench::TextTaskOptions(opts);
  ex.expand = true;
  methods.push_back({"W-RW-EX", std::make_unique<core::TDmatchMethod>(
                                    "W-RW-EX", ex, data.kb.get())});
  methods.push_back({"RANK*", std::make_unique<baselines::PairwiseRanker>()});
  methods.push_back({"L-BE*", std::make_unique<baselines::LBertProxy>()});

  // Run every method once; report per-K scores from the same rankings.
  struct Done {
    std::string name;
    core::MethodRun run;
    double wall = 0;
  };
  std::vector<Done> runs;
  for (auto& nm : methods) {
    util::StopWatch watch;
    auto run = core::Experiment::Run(nm.method.get(), s);
    if (!run.ok()) {
      std::fprintf(stderr, "table3_audit: %s FAILED: %s\n", nm.name.c_str(),
                   run.status().ToString().c_str());
      rep.Print(nm.name + " FAILED: " + run.status().ToString() + "\n");
      continue;
    }
    runs.push_back({nm.name, std::move(*run), watch.ElapsedSeconds()});
  }

  for (size_t k : {1, 3, 5, 10}) {
    rep.Printf("\n--- K=%zu ---\n", k);
    rep.Printf("%-8s  %-22s  %-22s\n", "Method", "Exact P / R / F",
               "Node P / R / F");
    const std::string suffix = "@" + std::to_string(k);
    for (const auto& d : runs) {
      auto exact =
          eval::TaxonomyMetrics::ExactScores(tax, d.run.rankings, s.gold, k);
      auto node =
          eval::TaxonomyMetrics::NodeScores(tax, d.run.rankings, s.gold, k);
      const std::string param = "method=" + d.name;
      rep.Add("Audit", param, "exact_p" + suffix, exact.precision, d.wall);
      rep.Add("Audit", param, "exact_r" + suffix, exact.recall, d.wall);
      rep.Add("Audit", param, "exact_f" + suffix, exact.f1, d.wall);
      rep.Add("Audit", param, "node_p" + suffix, node.precision, d.wall);
      rep.Add("Audit", param, "node_r" + suffix, node.recall, d.wall);
      rep.Add("Audit", param, "node_f" + suffix, node.f1, d.wall);
      rep.Printf("%-8s  %.3f %.3f %.3f      %.3f %.3f %.3f\n",
                 d.name.c_str(), exact.precision, exact.recall, exact.f1,
                 node.precision, node.recall, node.f1);
    }
  }
  return rep.Finish() ? 0 : 1;
}
