#include "bench_common.h"

#include <cstdio>
#include <limits>
#include <utility>

#include "eval/metrics.h"
#include "match/top_k.h"
#include "util/timer.h"

namespace tdmatch {
namespace bench {

namespace {

uint64_t SeedOr(const BenchOptions& opts, uint64_t fallback, uint64_t offset) {
  return opts.seed == 0 ? fallback : opts.seed + offset;
}

/// Shrinks walks/dims/epochs to the CI smoke budget (shared by both task
/// families so they always run at the same smoke scale).
void ApplySmokeScale(const BenchOptions& opts, core::TDmatchOptions* o) {
  if (opts.scale != Scale::kSmoke) return;
  o->walks.num_walks = 10;
  o->walks.walk_length = 12;
  o->walks.threads = 4;
  o->w2v.dim = 48;
  // 4 epochs, not 2: with the LR decay stall fixed the schedule actually
  // anneals to the floor, and on the small smoke walk corpora 2 epochs sits
  // below the convergence knee once hub subsampling thins the updates
  // (IMDb W-RW map@5 collapses to ~0.04 at 2 epochs, recovers to ~0.90 at
  // 4). Full/sweep scales have 4x the walk tokens and stay at 3 epochs.
  o->w2v.epochs = 4;
  o->w2v.threads = 4;
}

}  // namespace

core::TDmatchOptions DataTaskOptions(const BenchOptions& opts) {
  core::TDmatchOptions o;
  o.walks.num_walks = 25;
  o.walks.walk_length = 20;
  o.walks.threads = 8;
  o.w2v.dim = 64;
  o.w2v.threads = 8;
  o.w2v.epochs = 3;
  // Frequency subsampling downweights hub nodes (ubiquitous terms) in the
  // walks — the weighting mechanism of the paper's challenge 2.
  o.w2v.subsample = 1e-3;
  ApplySmokeScale(opts, &o);
  ApplySeed(opts, &o);
  return o;
}

core::TDmatchOptions TextTaskOptions(const BenchOptions& opts) {
  core::TDmatchOptions o = core::TDmatchOptions::TextTaskDefaults();
  o.walks.num_walks = 25;
  o.walks.walk_length = 20;
  o.walks.threads = 8;
  o.w2v.dim = 64;
  o.w2v.threads = 8;
  o.w2v.epochs = 3;
  o.w2v.subsample = 1e-3;
  ApplySmokeScale(opts, &o);
  ApplySeed(opts, &o);
  return o;
}

void ApplySeed(const BenchOptions& opts, core::TDmatchOptions* o) {
  if (opts.seed == 0) return;
  o->seed = opts.seed;
  o->walks.seed = opts.seed;
  o->w2v.seed = opts.seed;
}

datagen::ImdbOptions ScaledImdbOptions(const BenchOptions& opts) {
  datagen::ImdbOptions o;  // kFull: generator defaults (60/90 movies)
  if (opts.scale == Scale::kSweep) {
    o.num_reviewed_movies = 30;
    o.num_distractor_movies = 40;
  } else if (opts.scale == Scale::kSmoke) {
    o.num_reviewed_movies = 12;
    o.num_distractor_movies = 16;
  }
  o.seed = SeedOr(opts, o.seed, 1);
  return o;
}

datagen::CoronaOptions ScaledCoronaOptions(const BenchOptions& opts) {
  datagen::CoronaOptions o;  // kFull: 20 countries × 10 months, 240 claims
  if (opts.scale == Scale::kSweep) {
    o.num_countries = 15;
    o.num_months = 8;
    o.num_generated_claims = 120;
  } else if (opts.scale == Scale::kSmoke) {
    o.num_countries = 8;
    o.num_months = 4;
    o.num_generated_claims = 48;
    o.num_user_claims = 20;
  }
  o.seed = SeedOr(opts, o.seed, 2);
  return o;
}

datagen::AuditOptions ScaledAuditOptions(const BenchOptions& opts) {
  datagen::AuditOptions o;  // kFull: 160 concepts / 320 documents
  if (opts.scale == Scale::kSweep) {
    o.num_concepts = 90;
    o.num_documents = 150;
  } else if (opts.scale == Scale::kSmoke) {
    o.num_concepts = 40;
    o.num_documents = 60;
  }
  o.seed = SeedOr(opts, o.seed, 3);
  return o;
}

datagen::ClaimsOptions ScaledPolitifactOptions(const BenchOptions& opts) {
  datagen::ClaimsOptions o = datagen::ClaimsGenerator::PolitifactPreset();
  if (opts.scale == Scale::kSweep) {
    o.num_facts = 700;
    o.num_queries = 80;
  } else if (opts.scale == Scale::kSmoke) {
    o.num_facts = 200;
    o.num_queries = 24;
    o.num_topics = 12;
  }
  o.seed = SeedOr(opts, o.seed, 4);
  return o;
}

datagen::ClaimsOptions ScaledSnopesOptions(const BenchOptions& opts) {
  datagen::ClaimsOptions o = datagen::ClaimsGenerator::SnopesPreset();
  if (opts.scale == Scale::kSweep) {
    o.num_facts = 500;
    o.num_queries = 80;
  } else if (opts.scale == Scale::kSmoke) {
    o.num_facts = 160;
    o.num_queries = 24;
    o.num_topics = 12;
  }
  o.seed = SeedOr(opts, o.seed, 5);
  return o;
}

datagen::StsOptions ScaledStsOptions(const BenchOptions& opts) {
  datagen::StsOptions o;  // kFull: 500 pairs
  if (opts.scale == Scale::kSweep) {
    o.num_pairs = 350;
  } else if (opts.scale == Scale::kSmoke) {
    o.num_pairs = 120;
  }
  o.seed = SeedOr(opts, o.seed, 6);
  return o;
}

LexiconBundle MakeLexicon(const datagen::GeneratedScenario& data,
                          const BenchOptions& opts) {
  LexiconBundle out;
  embed::PretrainedLexicon::Options o;
  o.w2v.threads = opts.scale == Scale::kSmoke ? 4 : 8;
  o.w2v.epochs = opts.scale == Scale::kSmoke ? 2 : 4;
  o.w2v.seed = SeedOr(opts, o.w2v.seed, 100);
  out.lexicon = std::make_shared<embed::PretrainedLexicon>(o);
  if (!data.generic_corpus.empty()) {
    TDM_CHECK(out.lexicon->Train(data.generic_corpus).ok());
    out.gamma = out.lexicon->CalibrateGamma(data.synonym_pairs);
  }
  return out;
}

std::vector<SweepScenario> MakeSweepScenarios(const BenchOptions& opts) {
  std::vector<SweepScenario> out;
  auto add = [&out](std::string name, datagen::GeneratedScenario data,
                    core::TDmatchOptions base) {
    SweepScenario s;
    s.name = std::move(name);
    s.data = std::move(data);
    s.base_options = std::move(base);
    out.push_back(std::move(s));
  };

  if (opts.Matches("IMDb")) {
    add("IMDb", datagen::ImdbGenerator::Generate(ScaledImdbOptions(opts)),
        DataTaskOptions(opts));
  }
  if (opts.Matches("Corona")) {
    core::TDmatchOptions base = DataTaskOptions(opts);
    base.builder.bucket_numbers = true;
    base.builder.fixed_buckets = 7;
    add("Corona",
        datagen::CoronaGenerator::Generate(ScaledCoronaOptions(opts)),
        std::move(base));
  }
  if (opts.Matches("Audit")) {
    add("Audit", datagen::AuditGenerator::Generate(ScaledAuditOptions(opts)),
        TextTaskOptions(opts));
  }
  if (opts.Matches("Politifact")) {
    add("Politifact",
        datagen::ClaimsGenerator::Generate(ScaledPolitifactOptions(opts)),
        TextTaskOptions(opts));
  }
  if (opts.Matches("Snopes")) {
    add("Snopes",
        datagen::ClaimsGenerator::Generate(ScaledSnopesOptions(opts)),
        TextTaskOptions(opts));
  }
  return out;
}

void RunRankingTable(BenchReporter& reporter, const std::string& title,
                     const std::string& scenario_name,
                     const corpus::Scenario& s,
                     const std::vector<NamedMethod>& methods) {
  reporter.Title(title);
  reporter.Print(core::Experiment::Header() + "\n");
  for (const auto& nm : methods) {
    util::StopWatch watch;
    auto run = core::Experiment::Run(nm.method.get(), s);
    double wall = watch.ElapsedSeconds();
    // Pipeline methods report their own instrumented wall clock; the
    // stopwatch stays as the measurement for baselines (and the fallback).
    if (const auto* td =
            dynamic_cast<const core::TDmatchMethod*>(nm.method.get())) {
      wall = InstrumentedWallSeconds(td->last_result(), wall);
    }
    if (!run.ok()) {
      // stderr so the failure is visible in --json mode too (CI swallows
      // table output there); the row simply goes missing from the JSON.
      std::fprintf(stderr, "%s: %s on %s FAILED: %s\n",
                   reporter.bench_name().c_str(), nm.name.c_str(),
                   scenario_name.c_str(), run.status().ToString().c_str());
      reporter.Printf("%-10s  FAILED: %s\n", nm.name.c_str(),
                      run.status().ToString().c_str());
      continue;
    }
    auto report = core::Experiment::Report(nm.name, *run, s);
    reporter.Print(core::Experiment::FormatRow(report) + "\n");
    const std::string param = "method=" + nm.name;
    reporter.Add(scenario_name, param, "mrr", report.mrr, wall);
    reporter.Add(scenario_name, param, "map@1", report.map1, wall);
    reporter.Add(scenario_name, param, "map@5", report.map5, wall);
    reporter.Add(scenario_name, param, "map@20", report.map20, wall);
    reporter.Add(scenario_name, param, "hp@1", report.hp1, wall);
    reporter.Add(scenario_name, param, "hp@5", report.hp5, wall);
    reporter.Add(scenario_name, param, "hp@20", report.hp20, wall);
  }
}

double MapAt5(const corpus::Scenario& s, const core::TDmatchOptions& options,
              const kb::ExternalResource* resource,
              const embed::PretrainedLexicon* lexicon) {
  core::TDmatchMethod method("W-RW", options, resource, lexicon);
  auto run = core::Experiment::Run(&method, s);
  if (!run.ok()) {
    // NaN, not 0.0: a broken config must be distinguishable from a true
    // zero. The JSON writer turns NaN into null, which the CI gate
    // (tools/check_bench.py) rejects, failing ci-bench.
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return std::numeric_limits<double>::quiet_NaN();
  }
  return eval::RankingMetrics::MAPAtK(run->rankings, s.gold, 5);
}

double MapAt5(BenchReporter& reporter, const std::string& scenario,
              const std::string& parameter, const corpus::Scenario& s,
              const core::TDmatchOptions& options,
              const kb::ExternalResource* resource,
              const embed::PretrainedLexicon* lexicon) {
  core::TDmatchMethod method("W-RW", options, resource, lexicon);
  util::StopWatch watch;
  auto run = core::Experiment::Run(&method, s);
  const double fallback = watch.ElapsedSeconds();
  const double wall = InstrumentedWallSeconds(method.last_result(), fallback);
  double value = std::numeric_limits<double>::quiet_NaN();
  if (!run.ok()) {
    // NaN, not 0.0: a broken config must be distinguishable from a true
    // zero (NaN -> null in JSON, rejected by tools/check_bench.py).
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
  } else {
    value = eval::RankingMetrics::MAPAtK(run->rankings, s.gold, 5);
  }
  reporter.Add(scenario, parameter, "map@5", value, wall);
  return value;
}

double InstrumentedWallSeconds(const core::TDmatchResult& result,
                               double fallback_seconds) {
  if (result.profile.empty()) return fallback_seconds;
  double total = 0.0;
  for (const auto& phase : result.profile.phases()) {
    if (phase.name != "train_epoch") total += phase.seconds;
  }
  return total;
}

std::vector<size_t> ScaledPoints(const BenchOptions& opts,
                                 std::vector<size_t> full_points) {
  if (opts.scale != Scale::kSmoke || full_points.size() <= 2) {
    return full_points;
  }
  return {full_points.front(), full_points[full_points.size() / 2]};
}

std::vector<SweepPoint> NumericPoints(
    const BenchOptions& opts, std::vector<size_t> full_points,
    const std::function<void(core::TDmatchOptions&, size_t)>& apply) {
  std::vector<SweepPoint> out;
  for (size_t v : ScaledPoints(opts, std::move(full_points))) {
    SweepPoint p;
    p.label = std::to_string(v);
    p.apply = [apply, v](core::TDmatchOptions& o) { apply(o, v); };
    out.push_back(std::move(p));
  }
  return out;
}

void RunMapSweep(BenchReporter& reporter, const std::string& param_name,
                 const std::vector<SweepScenario>& scenarios,
                 const std::vector<SweepPoint>& points) {
  reporter.Printf("\n%-12s", param_name.c_str());
  for (const auto& sc : scenarios) reporter.Printf("  %-10s", sc.name.c_str());
  reporter.Printf("\n");
  for (const auto& p : points) {
    reporter.Printf("%-12s", p.label.c_str());
    for (const auto& sc : scenarios) {
      core::TDmatchOptions o = sc.base_options;
      p.apply(o);
      const double v = MapAt5(reporter, sc.name, param_name + "=" + p.label,
                              sc.data.scenario, o);
      reporter.Printf("  %-10.3f", v);
    }
    reporter.Printf("\n");
  }
}

}  // namespace bench
}  // namespace tdmatch
