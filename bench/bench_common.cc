#include "bench_common.h"

#include <cstdio>

#include "datagen/audit.h"
#include "datagen/claims.h"
#include "datagen/corona.h"
#include "datagen/imdb.h"
#include "eval/metrics.h"
#include "match/top_k.h"

namespace tdmatch {
namespace bench {

core::TDmatchOptions DataTaskOptions() {
  core::TDmatchOptions o;
  o.walks.num_walks = 25;
  o.walks.walk_length = 20;
  o.walks.threads = 8;
  o.w2v.dim = 64;
  o.w2v.threads = 8;
  o.w2v.epochs = 3;
  // Frequency subsampling downweights hub nodes (ubiquitous terms) in the
  // walks — the weighting mechanism of the paper's challenge 2.
  o.w2v.subsample = 1e-3;
  return o;
}

core::TDmatchOptions TextTaskOptions() {
  core::TDmatchOptions o = core::TDmatchOptions::TextTaskDefaults();
  o.walks.num_walks = 25;
  o.walks.walk_length = 20;
  o.walks.threads = 8;
  o.w2v.dim = 64;
  o.w2v.threads = 8;
  o.w2v.epochs = 3;
  o.w2v.subsample = 1e-3;
  return o;
}

void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

LexiconBundle MakeLexicon(const datagen::GeneratedScenario& data) {
  LexiconBundle out;
  embed::PretrainedLexicon::Options o;
  o.w2v.threads = 8;
  o.w2v.epochs = 4;
  out.lexicon = std::make_shared<embed::PretrainedLexicon>(o);
  if (!data.generic_corpus.empty()) {
    TDM_CHECK(out.lexicon->Train(data.generic_corpus).ok());
    out.gamma = out.lexicon->CalibrateGamma(data.synonym_pairs);
  }
  return out;
}

void RunRankingTable(const std::string& title, const corpus::Scenario& s,
                     std::vector<NamedMethod>* methods) {
  PrintTitle(title);
  std::printf("%s\n", core::Experiment::Header().c_str());
  for (auto& nm : *methods) {
    auto run = core::Experiment::Run(nm.method.get(), s);
    if (!run.ok()) {
      std::printf("%-10s  FAILED: %s\n", nm.name.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    auto report = core::Experiment::Report(nm.name, *run, s);
    std::printf("%s\n", core::Experiment::FormatRow(report).c_str());
  }
}

double MapAt5(const corpus::Scenario& s, const core::TDmatchOptions& options,
              const kb::ExternalResource* resource,
              const embed::PretrainedLexicon* lexicon) {
  core::TDmatchMethod method("W-RW", options, resource, lexicon);
  auto run = core::Experiment::Run(&method, s);
  if (!run.ok()) {
    std::printf("run failed: %s\n", run.status().ToString().c_str());
    return 0.0;
  }
  return eval::RankingMetrics::MAPAtK(run->rankings, s.gold, 5);
}

std::vector<SweepScenario> MakeSweepScenarios() {
  std::vector<SweepScenario> out;

  {
    datagen::ImdbOptions o;
    o.num_reviewed_movies = 30;
    o.num_distractor_movies = 40;
    SweepScenario s;
    s.name = "IMDb";
    s.data = datagen::ImdbGenerator::Generate(o);
    s.base_options = DataTaskOptions();
    out.push_back(std::move(s));
  }
  {
    datagen::CoronaOptions o;
    o.num_countries = 15;
    o.num_months = 8;
    o.num_generated_claims = 120;
    SweepScenario s;
    s.name = "Coro.";
    s.data = datagen::CoronaGenerator::Generate(o);
    s.base_options = DataTaskOptions();
    s.base_options.builder.bucket_numbers = true;
    s.base_options.builder.fixed_buckets = 7;
    out.push_back(std::move(s));
  }
  {
    datagen::AuditOptions o;
    o.num_concepts = 90;
    o.num_documents = 150;
    SweepScenario s;
    s.name = "Audit";
    s.data = datagen::AuditGenerator::Generate(o);
    s.base_options = TextTaskOptions();
    out.push_back(std::move(s));
  }
  {
    datagen::ClaimsOptions o = datagen::ClaimsGenerator::PolitifactPreset();
    o.num_facts = 700;
    o.num_queries = 80;
    SweepScenario s;
    s.name = "Poli.";
    s.data = datagen::ClaimsGenerator::Generate(o);
    s.base_options = TextTaskOptions();
    out.push_back(std::move(s));
  }
  {
    datagen::ClaimsOptions o = datagen::ClaimsGenerator::SnopesPreset();
    o.num_facts = 500;
    o.num_queries = 80;
    SweepScenario s;
    s.name = "Snop.";
    s.data = datagen::ClaimsGenerator::Generate(o);
    s.base_options = TextTaskOptions();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace bench
}  // namespace tdmatch
