// Fig. 9: impact of data-node filtering on MAP@5 — Normal (no filter) vs
// TF-IDF top-k vs the paper's Intersect filter, for all five scenarios.

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("fig9_filtering", opts);
  rep.Note("Reproduction of Fig. 9 (impact of data node filtering)");
  const std::vector<bench::SweepPoint> points = {
      {"Normal",
       [](core::TDmatchOptions& o) { o.builder.filter = graph::FilterMode::kNone; }},
      {"TFIDF",
       [](core::TDmatchOptions& o) { o.builder.filter = graph::FilterMode::kTfIdf; }},
      {"Intersect",
       [](core::TDmatchOptions& o) {
         o.builder.filter = graph::FilterMode::kIntersect;
       }}};
  bench::RunMapSweep(rep, "filter", bench::MakeSweepScenarios(opts), points);
  rep.Note(
      "\nExpected shape: Intersect >= TFIDF >= Normal in most scenarios\n"
      "(the paper's Intersect wins everywhere; TF-IDF helps except IMDb).");
  return rep.Finish() ? 0 : 1;
}
