// Fig. 9: impact of data-node filtering on MAP@5 — Normal (no filter) vs
// TF-IDF top-k vs the paper's Intersect filter, for all five scenarios.

#include <cstdio>

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Fig. 9 (impact of data node filtering)\n");
  auto scenarios = bench::MakeSweepScenarios();

  struct Mode {
    const char* name;
    graph::FilterMode mode;
  };
  const Mode modes[] = {{"Normal", graph::FilterMode::kNone},
                        {"TFIDF", graph::FilterMode::kTfIdf},
                        {"Intersect", graph::FilterMode::kIntersect}};

  std::printf("\n%-10s", "Scenario");
  for (const auto& m : modes) std::printf("  %-9s", m.name);
  std::printf("\n");
  for (const auto& sc : scenarios) {
    std::printf("%-10s", sc.name.c_str());
    for (const auto& m : modes) {
      core::TDmatchOptions o = sc.base_options;
      o.builder.filter = m.mode;
      std::printf("  %-9.3f", bench::MapAt5(sc.data.scenario, o));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: Intersect >= TFIDF >= Normal in most scenarios\n"
      "(the paper's Intersect wins everywhere; TF-IDF helps except IMDb).\n");
  return 0;
}
