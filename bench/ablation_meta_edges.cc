// §V-F2 "Connecting metadata nodes": Node F-score on the Audit scenario
// with and without the parent/child edges between taxonomy metadata nodes.
// The paper reports drops of .08/.04/.02/.01 at K = 1/3/5/10 without them.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "eval/taxonomy_metrics.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

namespace {

constexpr size_t kKs[] = {1, 3, 5, 10};

std::vector<double> NodeFAtKs(bench::BenchReporter& rep,
                              const datagen::GeneratedScenario& data,
                              bool connect_parents) {
  core::TDmatchOptions o = bench::TextTaskOptions(rep.options());
  o.builder.connect_structured_parents = connect_parents;
  core::TDmatchMethod m("W-RW", o);
  util::StopWatch watch;
  auto run = core::Experiment::Run(&m, data.scenario);
  const double wall = watch.ElapsedSeconds();
  std::vector<double> out;
  if (!run.ok()) {
    std::fprintf(stderr, "ablation_meta_edges: run FAILED: %s\n",
                 run.status().ToString().c_str());
    rep.Print("run failed: " + run.status().ToString() + "\n");
    return {0, 0, 0, 0};
  }
  const corpus::Taxonomy& tax = *data.scenario.second.taxonomy();
  const std::string param =
      std::string("meta_edges=") + (connect_parents ? "with" : "without");
  for (size_t k : kKs) {
    const double f = eval::TaxonomyMetrics::NodeScores(tax, run->rankings,
                                                       data.scenario.gold, k)
                         .f1;
    rep.Add("Audit", param, "node_f@" + std::to_string(k), f, wall);
    out.push_back(f);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("ablation_meta_edges", opts);
  rep.Note("Ablation: metadata-to-metadata edges (§V-F2, Audit)");
  if (!opts.Matches("Audit")) return rep.Finish() ? 0 : 1;
  auto data = datagen::AuditGenerator::Generate(bench::ScaledAuditOptions(opts));

  auto with_edges = NodeFAtKs(rep, data, /*connect_parents=*/true);
  auto without = NodeFAtKs(rep, data, /*connect_parents=*/false);

  rep.Printf("\n%-10s  %-8s %-8s %-8s %-8s\n", "", "K=1", "K=3", "K=5",
             "K=10");
  rep.Printf("%-10s  %-8.3f %-8.3f %-8.3f %-8.3f\n", "with", with_edges[0],
             with_edges[1], with_edges[2], with_edges[3]);
  rep.Printf("%-10s  %-8.3f %-8.3f %-8.3f %-8.3f\n", "without", without[0],
             without[1], without[2], without[3]);
  rep.Printf("%-10s  %+-8.3f %+-8.3f %+-8.3f %+-8.3f\n", "delta",
             without[0] - with_edges[0], without[1] - with_edges[1],
             without[2] - with_edges[2], without[3] - with_edges[3]);
  rep.Note(
      "\nExpected shape: removing the taxonomy edges lowers Node F,\n"
      "most at small K (paper: -.08 at K=1 shrinking to -.01 at K=10).");
  return rep.Finish() ? 0 : 1;
}
