// §V-F2 "Connecting metadata nodes": Node F-score on the Audit scenario
// with and without the parent/child edges between taxonomy metadata nodes.
// The paper reports drops of .08/.04/.02/.01 at K = 1/3/5/10 without them.

#include <cstdio>

#include "bench_common.h"
#include "datagen/audit.h"
#include "eval/taxonomy_metrics.h"

using namespace tdmatch;  // NOLINT

namespace {

std::vector<double> NodeFAtKs(const datagen::GeneratedScenario& data,
                              bool connect_parents) {
  core::TDmatchOptions o = bench::TextTaskOptions();
  o.builder.connect_structured_parents = connect_parents;
  core::TDmatchMethod m("W-RW", o);
  auto run = core::Experiment::Run(&m, data.scenario);
  std::vector<double> out;
  if (!run.ok()) {
    std::printf("run failed: %s\n", run.status().ToString().c_str());
    return {0, 0, 0, 0};
  }
  const corpus::Taxonomy& tax = *data.scenario.second.taxonomy();
  for (size_t k : {1, 3, 5, 10}) {
    out.push_back(eval::TaxonomyMetrics::NodeScores(tax, run->rankings,
                                                    data.scenario.gold, k)
                      .f1);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: metadata-to-metadata edges (§V-F2, Audit)\n");
  auto data = datagen::AuditGenerator::Generate({});

  auto with_edges = NodeFAtKs(data, /*connect_parents=*/true);
  auto without = NodeFAtKs(data, /*connect_parents=*/false);

  std::printf("\n%-10s  %-8s %-8s %-8s %-8s\n", "", "K=1", "K=3", "K=5",
              "K=10");
  std::printf("%-10s  %-8.3f %-8.3f %-8.3f %-8.3f\n", "with",
              with_edges[0], with_edges[1], with_edges[2], with_edges[3]);
  std::printf("%-10s  %-8.3f %-8.3f %-8.3f %-8.3f\n", "without",
              without[0], without[1], without[2], without[3]);
  std::printf("%-10s  %+-8.3f %+-8.3f %+-8.3f %+-8.3f\n", "delta",
              without[0] - with_edges[0], without[1] - with_edges[1],
              without[2] - with_edges[2], without[3] - with_edges[3]);
  std::printf(
      "\nExpected shape: removing the taxonomy edges lowers Node F,\n"
      "most at small K (paper: -.08 at K=1 shrinking to -.01 at K=10).\n");
  return 0;
}
