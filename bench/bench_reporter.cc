#include "bench_reporter.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "util/obs/profiler.h"

namespace tdmatch {
namespace bench {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string FormatJsonRow(const std::string& bench, const BenchRow& row) {
  std::string out = "{\"bench\":\"";
  out += JsonEscape(bench);
  out += "\",\"scenario\":\"";
  out += JsonEscape(row.scenario);
  out += "\",\"parameter\":\"";
  out += JsonEscape(row.parameter);
  out += "\",\"metric\":\"";
  out += JsonEscape(row.metric);
  out += "\",\"value\":";
  out += JsonNumber(row.value);
  out += ",\"wall_seconds\":";
  out += JsonNumber(row.wall_seconds);
  out += "}";
  return out;
}

BenchReporter::BenchReporter(std::string bench_name, BenchOptions options)
    : bench_name_(std::move(bench_name)), options_(std::move(options)) {
  if (!options_.profile_path.empty()) {
    const util::Status st =
        util::obs::CpuProfiler::Global().Start(options_.profile_hz);
    if (st.ok()) {
      profiling_ = true;
    } else {
      std::fprintf(stderr, "warning: --profile disabled: %s\n",
                   st.ToString().c_str());
    }
  }
}

BenchReporter::~BenchReporter() { Finish(); }

void BenchReporter::Note(const std::string& text) {
  if (options_.table()) std::printf("%s\n", text.c_str());
}

void BenchReporter::Title(const std::string& title) {
  if (options_.table()) std::printf("\n=== %s ===\n", title.c_str());
}

void BenchReporter::Print(const std::string& text) {
  if (options_.table()) std::fputs(text.c_str(), stdout);
}

void BenchReporter::Printf(const char* fmt, ...) {
  if (!options_.table()) return;
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stdout, fmt, ap);
  va_end(ap);
}

void BenchReporter::Add(const std::string& scenario,
                        const std::string& parameter, const std::string& metric,
                        double value, double wall_seconds) {
  Add(BenchRow{scenario, parameter, metric, value, wall_seconds});
}

void BenchReporter::Add(BenchRow row) { rows_.push_back(std::move(row)); }

bool BenchReporter::Finish() {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (profiling_) {
    profiling_ = false;
    const util::obs::CpuProfile profile =
        util::obs::CpuProfiler::Global().Stop();
    std::FILE* f = std::fopen(options_.profile_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open --profile file %s\n",
                   options_.profile_path.c_str());
      ok = false;
    } else {
      const std::string folded = profile.FoldedText();
      std::fwrite(folded.data(), 1, folded.size(), f);
      if (std::fclose(f) != 0) {
        std::fprintf(stderr, "error: failed writing --profile file %s\n",
                     options_.profile_path.c_str());
        ok = false;
      } else if (options_.table()) {
        std::printf("profile: %llu samples @ %d Hz over %.1fs -> %s\n",
                    static_cast<unsigned long long>(profile.samples),
                    profile.hz, profile.seconds,
                    options_.profile_path.c_str());
      }
    }
  }
  if (!options_.out_path.empty()) {
    std::FILE* f = std::fopen(options_.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open --out file %s\n",
                   options_.out_path.c_str());
      ok = false;
    } else {
      for (const auto& row : rows_) {
        std::fprintf(f, "%s\n", FormatJsonRow(bench_name_, row).c_str());
      }
      if (std::fclose(f) != 0) {
        std::fprintf(stderr, "error: failed writing --out file %s\n",
                     options_.out_path.c_str());
        ok = false;
      }
    }
  }
  if (options_.json() && options_.out_path.empty()) {
    for (const auto& row : rows_) {
      std::printf("%s\n", FormatJsonRow(bench_name_, row).c_str());
    }
  }
  return ok;
}

}  // namespace bench
}  // namespace tdmatch
