#ifndef TDMATCH_BENCH_BENCH_COMMON_H_
#define TDMATCH_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/generated.h"
#include "match/method.h"

namespace tdmatch {
namespace bench {

/// A named matching method owned by the bench harness.
struct NamedMethod {
  std::string name;
  std::unique_ptr<match::MatchMethod> method;
};

/// TDmatch options tuned for bench scale (24-core box, seconds per run):
/// text-to-data defaults (Skip-gram window 3).
core::TDmatchOptions DataTaskOptions();

/// Builds the scenario's "pre-trained" lexicon (trained on its generic
/// corpus) and returns it with the calibrated γ; used to enable the §II-C
/// synonym merging that is part of the default TDmatch pipeline.
struct LexiconBundle {
  std::shared_ptr<embed::PretrainedLexicon> lexicon;
  double gamma = 0.57;
};
LexiconBundle MakeLexicon(const datagen::GeneratedScenario& data);

/// Text-task variant (CBOW window 15).
core::TDmatchOptions TextTaskOptions();

/// Runs every method on the scenario and prints a paper-style block:
///   Method  MRR  MAP@{1,5,20}  HasPositive@{1,5,20}
void RunRankingTable(const std::string& title, const corpus::Scenario& s,
                     std::vector<NamedMethod>* methods);

/// Runs one TDmatch configuration and returns MAP@5 — the workhorse of the
/// Fig. 6/7/9 and ablation sweeps.
double MapAt5(const corpus::Scenario& s, const core::TDmatchOptions& options,
              const kb::ExternalResource* resource = nullptr,
              const embed::PretrainedLexicon* lexicon = nullptr);

/// The five standard scenarios of the evaluation (IMDb, Corona, Audit,
/// Politifact, Snopes), generated at reduced "sweep" scale for the
/// parameter-sweep figures.
struct SweepScenario {
  std::string name;
  datagen::GeneratedScenario data;
  /// Task-appropriate base options (data vs text defaults; bucketing for
  /// Corona).
  core::TDmatchOptions base_options;
};
std::vector<SweepScenario> MakeSweepScenarios();

/// Prints a Markdown-ish separator headline.
void PrintTitle(const std::string& title);

}  // namespace bench
}  // namespace tdmatch

#endif  // TDMATCH_BENCH_BENCH_COMMON_H_
