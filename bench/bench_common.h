#ifndef TDMATCH_BENCH_BENCH_COMMON_H_
#define TDMATCH_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_cli.h"
#include "bench_reporter.h"
#include "core/experiment.h"
#include "core/tdmatch.h"
#include "datagen/audit.h"
#include "datagen/claims.h"
#include "datagen/corona.h"
#include "datagen/generated.h"
#include "datagen/imdb.h"
#include "datagen/sts.h"
#include "match/method.h"

namespace tdmatch {
namespace bench {

/// A named matching method owned by the bench harness.
struct NamedMethod {
  std::string name;
  std::unique_ptr<match::MatchMethod> method;
};

/// TDmatch options for the text-to-data task family (Skip-gram window 3),
/// sized by --scale. Full and sweep use the 24-core-box settings the
/// benches always had; smoke shrinks walks/dims/epochs for CI.
core::TDmatchOptions DataTaskOptions(const BenchOptions& opts);

/// Text-task variant (CBOW window 15), sized by --scale.
core::TDmatchOptions TextTaskOptions(const BenchOptions& opts);

/// Overrides the walk/word2vec/pipeline seeds with --seed (no-op when the
/// flag was not given).
void ApplySeed(const BenchOptions& opts, core::TDmatchOptions* o);

/// Scenario generator options sized by --scale: kFull keeps the
/// generator's defaults (the original table-bench setting), kSweep matches
/// the reduced sizes the figure sweeps always used, kSmoke is CI scale.
/// --seed replaces the generator's built-in seed (offset per scenario so
/// scenarios stay distinct).
datagen::ImdbOptions ScaledImdbOptions(const BenchOptions& opts);
datagen::CoronaOptions ScaledCoronaOptions(const BenchOptions& opts);
datagen::AuditOptions ScaledAuditOptions(const BenchOptions& opts);
datagen::ClaimsOptions ScaledPolitifactOptions(const BenchOptions& opts);
datagen::ClaimsOptions ScaledSnopesOptions(const BenchOptions& opts);
datagen::StsOptions ScaledStsOptions(const BenchOptions& opts);

/// Builds the scenario's "pre-trained" lexicon (trained on its generic
/// corpus) and returns it with the calibrated γ; used to enable the §II-C
/// synonym merging that is part of the default TDmatch pipeline.
struct LexiconBundle {
  std::shared_ptr<embed::PretrainedLexicon> lexicon;
  double gamma = 0.57;
};
LexiconBundle MakeLexicon(const datagen::GeneratedScenario& data,
                          const BenchOptions& opts);

/// The five standard scenarios of the evaluation (IMDb, Corona, Audit,
/// Politifact, Snopes), generated at --scale size. Scenarios whose name
/// does not pass --filter are skipped (and never generated).
struct SweepScenario {
  std::string name;
  datagen::GeneratedScenario data;
  /// Task-appropriate base options (data vs text defaults; bucketing for
  /// Corona).
  core::TDmatchOptions base_options;
};
std::vector<SweepScenario> MakeSweepScenarios(const BenchOptions& opts);

/// Runs every method on the scenario, prints a paper-style block in table
/// mode and records one row per (method, metric) under `scenario_name`:
///   Method  MRR  MAP@{1,5,20}  HasPositive@{1,5,20}
void RunRankingTable(BenchReporter& reporter, const std::string& title,
                     const std::string& scenario_name,
                     const corpus::Scenario& s,
                     const std::vector<NamedMethod>& methods);

/// Runs one TDmatch configuration and returns MAP@5 — the workhorse of the
/// Fig. 6/7/9 and ablation sweeps.
double MapAt5(const corpus::Scenario& s, const core::TDmatchOptions& options,
              const kb::ExternalResource* resource = nullptr,
              const embed::PretrainedLexicon* lexicon = nullptr);

/// Reporter-aware overload: times the run and records a "map@5" row.
double MapAt5(BenchReporter& reporter, const std::string& scenario,
              const std::string& parameter, const corpus::Scenario& s,
              const core::TDmatchOptions& options,
              const kb::ExternalResource* resource = nullptr,
              const embed::PretrainedLexicon* lexicon = nullptr);

/// Instrumented wall clock of a TDmatch pipeline run: the sum of its
/// recorded phase timers ("train_epoch" entries subdivide "train" and are
/// skipped). This is what `wall_seconds` rows should carry for pipeline
/// work — a stopwatch around a whole sweep iteration also counts scenario
/// setup/teardown and smears it into whichever row closes the watch.
/// Falls back to `fallback_seconds` when the profile is empty (failed or
/// pre-profiling runs).
double InstrumentedWallSeconds(const core::TDmatchResult& result,
                               double fallback_seconds);

/// One point of a parameter sweep: a short label ("20", "Intersect") and
/// the option mutation it stands for.
struct SweepPoint {
  std::string label;
  std::function<void(core::TDmatchOptions&)> apply;
};

/// Trims a sweep grid for --scale smoke (keeps the first and the middle
/// point); sweep/full keep the full grid.
std::vector<size_t> ScaledPoints(const BenchOptions& opts,
                                 std::vector<size_t> full_points);

/// Builds SweepPoints from a numeric grid (labels are the numbers), trimmed
/// by ScaledPoints().
std::vector<SweepPoint> NumericPoints(
    const BenchOptions& opts, std::vector<size_t> full_points,
    const std::function<void(core::TDmatchOptions&, size_t)>& apply);

/// The declarative core of the Fig. 6/7/9 and ablation sweeps: for every
/// point × scenario, applies the point to the scenario's base options,
/// measures MAP@5, records a row ("<param_name>=<label>") and prints the
/// usual points-as-rows / scenarios-as-columns grid in table mode.
void RunMapSweep(BenchReporter& reporter, const std::string& param_name,
                 const std::vector<SweepScenario>& scenarios,
                 const std::vector<SweepPoint>& points);

}  // namespace bench
}  // namespace tdmatch

#endif  // TDMATCH_BENCH_BENCH_COMMON_H_
