#include "bench_cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <regex>

namespace tdmatch {
namespace bench {

const char* ScaleName(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kSweep:
      return "sweep";
    case Scale::kFull:
      return "full";
  }
  return "sweep";
}

bool BenchOptions::Matches(const std::string& name) const {
  if (filter.empty()) return true;
  try {
    return std::regex_search(name, std::regex(filter));
  } catch (const std::regex_error&) {
    // ParseBenchArgs validates the regex; an invalid one here means the
    // options were built by hand — fail closed.
    return false;
  }
}

std::string BenchUsage(const std::string& program) {
  return "Usage: " + program +
         " [flags]\n"
         "\n"
         "Shared TDmatch bench flags:\n"
         "  --json           emit machine-readable JSON Lines rows on stdout\n"
         "                   instead of the paper-style tables\n"
         "  --table          paper-style tables on stdout (the default)\n"
         "  --out <path>     also write the JSON rows to <path> (in either\n"
         "                   output format)\n"
         "  --scale <s>      workload size: smoke (CI, seconds), sweep\n"
         "                   (default), full (generator defaults)\n"
         "  --seed <n>       override the generator and pipeline seeds with\n"
         "                   n (> 0); 0 keeps the built-in defaults\n"
         "  --filter <re>    only run scenarios/variants whose name matches\n"
         "                   the ECMAScript regex <re>\n"
         "  --profile <p>    run the sampling CPU profiler for the whole\n"
         "                   bench and write folded stacks (flamegraph.pl\n"
         "                   input) to <p>\n"
         "  --profile-hz <n> profiler sampling frequency, 1..1000 (default\n"
         "                   99)\n"
         "  --help, -h       show this message and exit\n";
}

namespace {

util::Status ParseSeed(const std::string& value, uint64_t* out) {
  if (value.empty() || value[0] == '-' || value[0] == '+') {
    return util::Status::InvalidArgument("--seed expects a non-negative integer, got \"" + value + "\"");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return util::Status::InvalidArgument("--seed expects a non-negative integer, got \"" + value + "\"");
  }
  *out = static_cast<uint64_t>(parsed);
  return util::Status::OK();
}

util::Status ParseScale(const std::string& value, Scale* out) {
  if (value == "smoke") {
    *out = Scale::kSmoke;
  } else if (value == "sweep") {
    *out = Scale::kSweep;
  } else if (value == "full") {
    *out = Scale::kFull;
  } else {
    return util::Status::InvalidArgument(
        "--scale expects smoke|sweep|full, got \"" + value + "\"");
  }
  return util::Status::OK();
}

}  // namespace

util::Result<BenchOptions> ParseBenchArgs(const std::vector<std::string>& args) {
  BenchOptions out;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string flag = arg;
    std::string value;
    bool has_value = false;
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      flag = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    // Fetches the flag's value from "--flag=value" or the next argument.
    auto take_value = [&]() -> util::Status {
      if (has_value) return util::Status::OK();
      if (i + 1 >= args.size()) {
        return util::Status::InvalidArgument(flag + " requires a value");
      }
      value = args[++i];
      has_value = true;
      return util::Status::OK();
    };
    auto reject_value = [&]() -> util::Status {
      if (has_value) {
        return util::Status::InvalidArgument(flag + " takes no value");
      }
      return util::Status::OK();
    };

    if (flag == "--json") {
      TDM_RETURN_NOT_OK(reject_value());
      out.format = OutputFormat::kJson;
    } else if (flag == "--table") {
      TDM_RETURN_NOT_OK(reject_value());
      out.format = OutputFormat::kTable;
    } else if (flag == "--help" || flag == "-h") {
      TDM_RETURN_NOT_OK(reject_value());
      out.help = true;
    } else if (flag == "--scale") {
      TDM_RETURN_NOT_OK(take_value());
      TDM_RETURN_NOT_OK(ParseScale(value, &out.scale));
    } else if (flag == "--out") {
      TDM_RETURN_NOT_OK(take_value());
      if (value.empty()) {
        return util::Status::InvalidArgument("--out expects a non-empty path");
      }
      out.out_path = value;
    } else if (flag == "--seed") {
      TDM_RETURN_NOT_OK(take_value());
      TDM_RETURN_NOT_OK(ParseSeed(value, &out.seed));
    } else if (flag == "--filter") {
      TDM_RETURN_NOT_OK(take_value());
      try {
        std::regex probe(value);
        (void)probe;
      } catch (const std::regex_error& e) {
        return util::Status::InvalidArgument("--filter regex \"" + value +
                                             "\" is invalid: " + e.what());
      }
      out.filter = value;
    } else if (flag == "--profile") {
      TDM_RETURN_NOT_OK(take_value());
      if (value.empty()) {
        return util::Status::InvalidArgument(
            "--profile expects a non-empty path");
      }
      out.profile_path = value;
    } else if (flag == "--profile-hz") {
      TDM_RETURN_NOT_OK(take_value());
      errno = 0;
      char* end = nullptr;
      const long hz = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE || hz < 1 ||
          hz > 1000) {
        return util::Status::InvalidArgument(
            "--profile-hz expects an integer in 1..1000, got \"" + value +
            "\"");
      }
      out.profile_hz = static_cast<int>(hz);
    } else {
      return util::Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  return out;
}

BenchOptions ParseArgsOrExit(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  const std::string program = argc > 0 ? argv[0] : "bench";
  auto parsed = ParseBenchArgs(args);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s",
                 parsed.status().message().c_str(),
                 BenchUsage(program).c_str());
    std::exit(2);
  }
  if (parsed->help) {
    std::printf("%s", BenchUsage(program).c_str());
    std::exit(0);
  }
  return std::move(parsed).ValueOrDie();
}

}  // namespace bench
}  // namespace tdmatch
