// Fig. 10: combining the graph embeddings with the pre-trained sentence
// encoder — MAP@5 of W-RW alone vs the per-query average of W-RW and S-BE
// scores, for all five scenarios.

#include <cstdio>
#include <string>

#include "baselines/sbe.h"
#include "bench_common.h"
#include "eval/metrics.h"
#include "match/combine.h"
#include "match/top_k.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("fig10_combination", opts);
  rep.Note("Reproduction of Fig. 10 (combination with SentenceBERT)");

  rep.Printf("\n%-10s  %-8s  %-10s\n", "Scenario", "W-RW", "W-RW&S-BE");
  for (const auto& sc : bench::MakeSweepScenarios(opts)) {
    const corpus::Scenario& s = sc.data.scenario;
    util::StopWatch watch;
    core::TDmatchMethod wrw("W-RW", sc.base_options);
    auto wrw_run = core::Experiment::Run(&wrw, s);
    // Instrumented pipeline wall for the W-RW row; the combined row adds
    // the (stopwatch-timed) S-BE + combine work on top instead of
    // re-counting the W-RW run from a watch spanning the whole iteration.
    const double wrw_wall = bench::InstrumentedWallSeconds(
        wrw.last_result(), watch.ElapsedSeconds());
    watch.Reset();
    baselines::HashSentenceEncoder sbe;
    auto sbe_run = core::Experiment::Run(&sbe, s);
    if (!wrw_run.ok() || !sbe_run.ok()) {
      std::fprintf(stderr, "fig10_combination: %s FAILED: %s\n",
                   sc.name.c_str(),
                   (!wrw_run.ok() ? wrw_run.status() : sbe_run.status())
                       .ToString()
                       .c_str());
      rep.Print(sc.name + "  FAILED\n");
      continue;
    }
    core::MethodRun combined;
    combined.rankings.resize(s.first.NumDocs());
    for (size_t q = 0; q < s.first.NumDocs(); ++q) {
      auto scores = match::ScoreCombiner::AverageNormalized(
          wrw_run->scores[q], sbe_run->scores[q]);
      combined.rankings[q] = match::TopK::FullRanking(scores);
    }
    const double total_wall = wrw_wall + watch.ElapsedSeconds();
    const double wrw_map =
        eval::RankingMetrics::MAPAtK(wrw_run->rankings, s.gold, 5);
    const double combined_map =
        eval::RankingMetrics::MAPAtK(combined.rankings, s.gold, 5);
    rep.Add(sc.name, "method=W-RW", "map@5", wrw_map, wrw_wall);
    rep.Add(sc.name, "method=W-RW&S-BE", "map@5", combined_map, total_wall);
    rep.Printf("%-10s  %-8.3f  %-10.3f\n", sc.name.c_str(), wrw_map,
               combined_map);
  }
  rep.Note(
      "\nExpected shape: the combination matches or improves W-RW in all\n"
      "scenarios (domain-specific + generic signals are complementary).");
  return rep.Finish() ? 0 : 1;
}
