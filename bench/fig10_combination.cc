// Fig. 10: combining the graph embeddings with the pre-trained sentence
// encoder — MAP@5 of W-RW alone vs the per-query average of W-RW and S-BE
// scores, for all five scenarios.

#include <cstdio>

#include "baselines/sbe.h"
#include "bench_common.h"
#include "eval/metrics.h"
#include "match/combine.h"
#include "match/top_k.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Fig. 10 (combination with SentenceBERT)\n");
  auto scenarios = bench::MakeSweepScenarios();

  std::printf("\n%-10s  %-8s  %-10s\n", "Scenario", "W-RW", "W-RW&S-BE");
  for (const auto& sc : scenarios) {
    const corpus::Scenario& s = sc.data.scenario;
    core::TDmatchMethod wrw("W-RW", sc.base_options);
    auto wrw_run = core::Experiment::Run(&wrw, s);
    baselines::HashSentenceEncoder sbe;
    auto sbe_run = core::Experiment::Run(&sbe, s);
    if (!wrw_run.ok() || !sbe_run.ok()) {
      std::printf("%-10s  FAILED\n", sc.name.c_str());
      continue;
    }
    core::MethodRun combined;
    combined.rankings.resize(s.first.NumDocs());
    for (size_t q = 0; q < s.first.NumDocs(); ++q) {
      auto scores = match::ScoreCombiner::AverageNormalized(
          wrw_run->scores[q], sbe_run->scores[q]);
      combined.rankings[q] = match::TopK::FullRanking(scores);
    }
    std::printf("%-10s  %-8.3f  %-10.3f\n", sc.name.c_str(),
                eval::RankingMetrics::MAPAtK(wrw_run->rankings, s.gold, 5),
                eval::RankingMetrics::MAPAtK(combined.rankings, s.gold, 5));
  }
  std::printf(
      "\nExpected shape: the combination matches or improves W-RW in all\n"
      "scenarios (domain-specific + generic signals are complementary).\n");
  return 0;
}
