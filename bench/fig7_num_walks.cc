// Fig. 7: mean average precision (MAP@5) as the number of random walks per
// node grows {5, 10, 20, 30, 40, 50} for all five scenarios.

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("fig7_num_walks", opts);
  rep.Note("Reproduction of Fig. 7 (match quality vs number of walks)");
  bench::RunMapSweep(rep, "num_walks", bench::MakeSweepScenarios(opts),
                     bench::NumericPoints(opts, {5, 10, 20, 30, 40, 50},
                                          [](core::TDmatchOptions& o,
                                             size_t v) {
                                            o.walks.num_walks = v;
                                          }));
  rep.Note(
      "\nExpected shape: improving with more walks with diminishing\n"
      "returns; sparse graphs saturate earliest.");
  return rep.Finish() ? 0 : 1;
}
