// Fig. 7: mean average precision (MAP@5) as the number of random walks per
// node grows {5, 10, 20, 30, 40, 50} for all five scenarios.

#include <cstdio>

#include "bench_common.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Reproduction of Fig. 7 (match quality vs number of walks)\n");
  auto scenarios = bench::MakeSweepScenarios();
  const size_t counts[] = {5, 10, 20, 30, 40, 50};

  std::printf("\n%-6s", "walks");
  for (const auto& sc : scenarios) std::printf("  %-6s", sc.name.c_str());
  std::printf("\n");
  for (size_t n : counts) {
    std::printf("%-6zu", n);
    for (const auto& sc : scenarios) {
      core::TDmatchOptions o = sc.base_options;
      o.walks.num_walks = n;
      std::printf("  %.3f", bench::MapAt5(sc.data.scenario, o));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: improving with more walks with diminishing\n"
      "returns; sparse graphs saturate earliest.\n");
  return 0;
}
