// §VII lists blocking as planned future work "to speed up performance".
// This ablation measures what token blocking would buy: the fraction of
// candidates a query's block retains (work saved) against the recall of
// the gold match inside the block (quality ceiling).

#include <cstdio>

#include "bench_common.h"
#include "match/blocking.h"

using namespace tdmatch;  // NOLINT

int main() {
  std::printf("Ablation: candidate blocking (§VII future work)\n");
  std::printf("\n%-10s  %-14s  %-12s\n", "Scenario", "avg block frac",
              "gold recall");
  for (const auto& sc : bench::MakeSweepScenarios()) {
    const corpus::Scenario& s = sc.data.scenario;
    match::TokenBlocker blocker;
    blocker.Index(s.second);
    size_t eligible = 0;
    size_t recalled = 0;
    for (size_t q = 0; q < s.first.NumDocs(); ++q) {
      if (s.gold[q].empty()) continue;
      ++eligible;
      auto block = blocker.Block(s.first.DocText(q));
      for (int32_t g : s.gold[q]) {
        if (std::find(block.begin(), block.end(), g) != block.end()) {
          ++recalled;
          break;
        }
      }
    }
    std::printf("%-10s  %-14.3f  %-12.3f\n", sc.name.c_str(),
                blocker.AverageBlockFraction(s.first),
                eligible == 0
                    ? 0.0
                    : static_cast<double>(recalled) /
                          static_cast<double>(eligible));
  }
  std::printf(
      "\nExpected shape: blocks retain a small fraction of the candidates\n"
      "while keeping gold recall high — the precondition for the paper's\n"
      "planned blocking speed-up.\n");
  return 0;
}
