// §VII lists blocking as planned future work "to speed up performance".
// This ablation measures what token blocking would buy: the fraction of
// candidates a query's block retains (work saved) against the recall of
// the gold match inside the block (quality ceiling).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "match/blocking.h"
#include "util/timer.h"

using namespace tdmatch;  // NOLINT

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseArgsOrExit(argc, argv);
  bench::BenchReporter rep("ablation_blocking", opts);
  rep.Note("Ablation: candidate blocking (§VII future work)");
  rep.Printf("\n%-10s  %-14s  %-12s\n", "Scenario", "avg block frac",
             "gold recall");
  for (const auto& sc : bench::MakeSweepScenarios(opts)) {
    const corpus::Scenario& s = sc.data.scenario;
    util::StopWatch watch;
    match::TokenBlocker blocker;
    blocker.Index(s.second);
    size_t eligible = 0;
    size_t recalled = 0;
    for (size_t q = 0; q < s.first.NumDocs(); ++q) {
      if (s.gold[q].empty()) continue;
      ++eligible;
      auto block = blocker.Block(s.first.DocText(q));
      for (int32_t g : s.gold[q]) {
        if (std::find(block.begin(), block.end(), g) != block.end()) {
          ++recalled;
          break;
        }
      }
    }
    const double frac = blocker.AverageBlockFraction(s.first);
    const double recall = eligible == 0
                              ? 0.0
                              : static_cast<double>(recalled) /
                                    static_cast<double>(eligible);
    const double wall = watch.ElapsedSeconds();
    rep.Add(sc.name, "blocker=token", "block_fraction", frac, wall);
    rep.Add(sc.name, "blocker=token", "gold_recall", recall, wall);
    rep.Printf("%-10s  %-14.3f  %-12.3f\n", sc.name.c_str(), frac, recall);
  }
  rep.Note(
      "\nExpected shape: blocks retain a small fraction of the candidates\n"
      "while keeping gold recall high — the precondition for the paper's\n"
      "planned blocking speed-up.");
  return rep.Finish() ? 0 : 1;
}
