#!/usr/bin/env python3
"""Validate, merge, and regression-gate bench --json output.

Reads one or more JSON Lines files produced by the bench binaries
(`<bench> --json --out rows.jsonl`), validates every row, and merges them
into a single JSON document (the CI `BENCH_pr.json` artifact).

The validation gate fails (exit 1) when:
  * a line is not a JSON object with the expected keys,
  * a `value` or `wall_seconds` is missing, non-numeric, NaN/inf, or null
    (the C++ writer serialises non-finite measurements as null),
  * an input file contributes no rows (a bench that silently produced
    nothing), or no rows exist at all.

With `--baseline BASELINE.json` (a document previously written by this
script, e.g. the committed `BENCH_baseline.json`) it additionally enforces
the perf/quality regression gate:
  * a quality metric (mrr/map@K/hp@K/precision/recall/F and friends) may
    not drop more than `--max-quality-drop` (default 0.02) below the
    baseline — the embedding pipeline is deterministic for a fixed seed,
    so same-machine same-seed runs reproduce quality values exactly and
    the tolerance only absorbs cross-toolchain libm differences;
  * a memory metric (`*_bytes`) may not exceed `--max-memory-ratio`
    (default 1.1) times the baseline value — index layouts are
    deterministic, so growth is a real footprint regression, with a
    small allowance for intentional layout tweaks;
  * the per-(bench, scenario) sum of `wall_seconds` may not exceed
    `--max-wall-ratio` (default 1.5) times the baseline sum, for
    scenarios whose baseline sum is at least `--min-wall-seconds`
    (default 0.25 s; smaller sums are timing noise);
  * every baseline row key must still be present (lost coverage fails).
Timing-valued metrics (`*seconds*`, `*_ms`, `*qps`) are never
value-compared — their cost shows up in the wall-time aggregate instead.
Exactly-reproducible rates (`identity`, `shed_rate`, `cache_hit_rate`
from serve_shard) are compared symmetrically with a near-zero tolerance:
they are pure functions of the seed, so any drift fails.

`--min-recall X` additionally enforces an absolute floor (no baseline
needed): every `recall@K` row whose parameter names a PQ configuration
(contains `pq`) must be at least X. This is the compressed-index
quality bar — PQ may trade memory for recall only down to the floor.

Usage:
  tools/check_bench.py bench-json/*.jsonl --out BENCH_pr.json \
      [--baseline BENCH_baseline.json]
"""

import argparse
import json
import math
import re
import sys

REQUIRED_STRING_KEYS = ("bench", "scenario", "parameter", "metric")
REQUIRED_NUMBER_KEYS = ("value", "wall_seconds")

# Metrics gated on value drops: ranking/classification quality, where
# higher is better and a fixed seed reproduces the value exactly. This
# includes the serving bench's recall@k rows (IVF recall is a pure
# function of the seeded index build, so drops are real regressions).
QUALITY_METRIC_RE = re.compile(
    r"^(mrr|map@|hp@|exact_[prf]@|node_[prf]@|gold_recall|spearman"
    r"|accuracy|precision|recall|f1)")
# Memory-footprint metrics: deterministic byte counts (index layout is a
# pure function of n/dim/options), gated on growth vs baseline.
MEMORY_METRIC_RE = re.compile(r"_bytes$")
# Metrics that are themselves timings or machine-dependent throughput
# (serve_qps/serve_http latency percentiles, qps and serve_shard's
# achieved_qps, reload_ms, and speedup ratios like fig8_scaling's
# threads_speedup); never value-compared — their cost is gated through
# the per-scenario wall-time aggregate (or --min-threads-speedup), and
# coverage gating still requires the rows to exist.
TIMING_METRIC_RE = re.compile(r"seconds|_ms$|qps$|speedup$")
# Exactly-reproducible rates: serve_shard's sharded-vs-unsharded
# bit-identity fraction and its seeded admission/cache simulations are
# pure functions of (seed, grid) — any change vs baseline, in either
# direction, is a behavior change, gated with a symmetric tolerance
# that only absorbs float formatting.
EXACT_METRIC_RE = re.compile(r"^(identity|shed_rate|cache_hit_rate)$")
EXACT_TOLERANCE = 1e-9


def validate_row(row, where, errors):
    """Appends problems with one parsed row to `errors`."""
    if not isinstance(row, dict):
        errors.append(f"{where}: row is not a JSON object")
        return False
    ok = True
    for key in REQUIRED_STRING_KEYS:
        v = row.get(key)
        if not isinstance(v, str) or not v:
            errors.append(f"{where}: {key!r} missing or not a non-empty string")
            ok = False
    for key in REQUIRED_NUMBER_KEYS:
        v = row.get(key)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            errors.append(f"{where}: {key!r} missing or non-numeric: {v!r}")
            ok = False
        elif not math.isfinite(v):
            errors.append(f"{where}: {key!r} is not finite: {v!r}")
            ok = False
    return ok


def read_rows(paths, errors):
    rows = []
    for path in paths:
        file_rows = 0
        try:
            fh = open(path, encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: cannot open: {exc}")
            continue
        with fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"{where}: unparseable JSON: {exc}")
                    continue
                if validate_row(row, where, errors):
                    rows.append(row)
                    file_rows += 1
        if file_rows == 0:
            errors.append(f"{path}: no valid benchmark rows (empty metrics)")
    return rows


def row_key(row):
    return (row["bench"], row["scenario"], row["parameter"], row["metric"])


def scenario_wall_sums(rows):
    sums = {}
    for row in rows:
        key = (row["bench"], row["scenario"])
        sums[key] = sums.get(key, 0.0) + row["wall_seconds"]
    return sums


def compare_to_baseline(rows, baseline_doc, args, errors):
    """Appends regression-gate failures to `errors`."""
    base_rows = baseline_doc.get("rows", [])
    if not base_rows:
        errors.append(f"{args.baseline}: baseline document has no rows")
        return

    pr_by_key = {}
    for row in rows:
        pr_by_key[row_key(row)] = row

    # --- quality drops + lost coverage -----------------------------------
    compared = 0
    for base in base_rows:
        key = row_key(base)
        pr = pr_by_key.get(key)
        if pr is None:
            errors.append(
                "baseline coverage lost: no PR row for "
                f"{'/'.join(key)} (bench removed a measurement?)")
            continue
        metric = base["metric"]
        if EXACT_METRIC_RE.match(metric):
            if abs(pr["value"] - base["value"]) > EXACT_TOLERANCE:
                errors.append(
                    f"determinism regression: {'/'.join(key)} changed "
                    f"{base['value']:.6f} -> {pr['value']:.6f} (this metric "
                    "is a pure function of the seed; an intentional "
                    "algorithm change needs a regenerated "
                    "BENCH_baseline.json, see README)")
            compared += 1
            continue
        if TIMING_METRIC_RE.search(metric):
            continue  # timings gate via the wall aggregate below
        if MEMORY_METRIC_RE.search(metric):
            if base["value"] > 0 and \
                    pr["value"] > base["value"] * args.max_memory_ratio:
                errors.append(
                    f"memory regression: {'/'.join(key)} grew "
                    f"{base['value']:.0f} -> {pr['value']:.0f} bytes "
                    f"(allowed ratio {args.max_memory_ratio}; if the index "
                    "layout changed on purpose regenerate "
                    "BENCH_baseline.json, see README)")
            continue
        if not QUALITY_METRIC_RE.match(metric):
            continue  # structural metrics (nodes/edges/...) are informational
        drop = base["value"] - pr["value"]
        compared += 1
        if drop > args.max_quality_drop:
            errors.append(
                f"quality regression: {'/'.join(key)} dropped "
                f"{base['value']:.4f} -> {pr['value']:.4f} "
                f"(allowed drop {args.max_quality_drop})")
    if compared == 0:
        errors.append("baseline comparison matched no quality metrics "
                      "(wrong baseline file?)")

    # --- wall-time regressions -------------------------------------------
    base_walls = scenario_wall_sums(base_rows)
    pr_walls = scenario_wall_sums(rows)
    for key, base_wall in sorted(base_walls.items()):
        if base_wall < args.min_wall_seconds:
            continue
        pr_wall = pr_walls.get(key)
        if pr_wall is None:
            continue  # lost coverage already reported per row
        if pr_wall > base_wall * args.max_wall_ratio:
            errors.append(
                f"wall-time regression: {'/'.join(key)} took {pr_wall:.2f}s "
                f"vs baseline {base_wall:.2f}s "
                f"(allowed ratio {args.max_wall_ratio}; if every scenario "
                "regressed at once the runner hardware likely changed — "
                "regenerate BENCH_baseline.json, see README)")


def check_min_recall(rows, min_recall, errors):
    """Fails any PQ-configuration `recall@K` row below `min_recall`
    (absolute gate, no baseline needed — recall against the same-run
    exact index is meaningful on its own). Only rows whose parameter
    names a PQ setup (contains "pq") are held to the floor; plain IVF
    rows sweep nprobe down to deliberately lossy settings."""
    checked = 0
    for row in rows:
        if "pq" not in row["parameter"]:
            continue
        if not row["metric"].startswith("recall@"):
            continue
        checked += 1
        if row["value"] < min_recall:
            errors.append(
                f"compressed-index quality: {'/'.join(row_key(row))} "
                f"= {row['value']:.4f}, below --min-recall {min_recall}")
    if checked == 0:
        errors.append(
            "--min-recall given but no pq recall@K rows found "
            "(serve_qps Synthetic scenario not run?)")


def check_obs_overhead(rows, max_ratio, errors):
    """Fails any `obs_overhead_ratio` row (serve_http's untraced-vs-traced
    qps ratio, best-of-N each side) above `max_ratio` (absolute gate, no
    baseline needed — the ratio is a same-run comparison). A ratio of 1.05
    means tracing every request costs 5% of throughput."""
    checked = 0
    for row in rows:
        if row["metric"] != "obs_overhead_ratio":
            continue
        checked += 1
        if row["value"] > max_ratio:
            errors.append(
                f"observability overhead: {'/'.join(row_key(row))} "
                f"= {row['value']:.3f}, above --max-obs-overhead {max_ratio} "
                "(tracing/metrics cost too much throughput)")
    if checked == 0:
        errors.append(
            "--max-obs-overhead given but no obs_overhead_ratio rows found "
            "(serve_http HttpSynthetic scenario not run?)")


def check_profiler_overhead(rows, max_ratio, errors):
    """Fails any `profiler_overhead_ratio` row (serve_http's profiler-off
    vs profiler-armed qps ratio, min over paired rounds) above `max_ratio`
    (absolute gate, no baseline needed). A ratio of 1.05 means a 99 Hz
    capture costs 5% of throughput."""
    checked = 0
    for row in rows:
        if row["metric"] != "profiler_overhead_ratio":
            continue
        checked += 1
        if row["value"] > max_ratio:
            errors.append(
                f"profiler overhead: {'/'.join(row_key(row))} "
                f"= {row['value']:.3f}, above --max-profiler-overhead "
                f"{max_ratio} (sampling profiler costs too much throughput "
                "to arm on a live server)")
    if checked == 0:
        errors.append(
            "--max-profiler-overhead given but no profiler_overhead_ratio "
            "rows found (serve_http HttpSynthetic scenario not run?)")


def check_threads_speedup(rows, min_speedup, errors):
    """Fails any `threads_speedup` row below `min_speedup` (absolute gate,
    no baseline needed — the metric is a same-run 1-thread vs N-thread
    ratio, so it is meaningful on its own). Intended for multi-core CI
    runners; single-core machines cannot pass a gate above 1.0."""
    checked = 0
    for row in rows:
        if row["metric"] != "threads_speedup":
            continue
        checked += 1
        if row["value"] < min_speedup:
            errors.append(
                f"parallel-efficiency regression: {'/'.join(row_key(row))} "
                f"= {row['value']:.2f}x, below --min-threads-speedup "
                f"{min_speedup}")
    if checked == 0:
        errors.append(
            "--min-threads-speedup given but no threads_speedup rows found "
            "(fig8_scaling not run?)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="JSON Lines row files")
    parser.add_argument("--out", help="write the merged JSON document here")
    parser.add_argument(
        "--baseline",
        help="merged baseline document to regression-gate against")
    parser.add_argument(
        "--max-quality-drop", type=float, default=0.02,
        help="max allowed drop of a quality metric vs baseline "
             "(default %(default)s)")
    parser.add_argument(
        "--max-memory-ratio", type=float, default=1.1,
        help="max allowed growth ratio of a *_bytes metric vs baseline "
             "(default %(default)s)")
    parser.add_argument(
        "--min-recall", type=float, default=0.0,
        help="fail if any PQ recall@K row is below this absolute floor; "
             "0 disables (default %(default)s)")
    parser.add_argument(
        "--max-wall-ratio", type=float, default=1.5,
        help="max allowed per-scenario wall_seconds ratio vs baseline "
             "(default %(default)s)")
    parser.add_argument(
        "--min-wall-seconds", type=float, default=0.25,
        help="ignore wall regressions for scenarios whose baseline sum is "
             "below this (timing noise; default %(default)s)")
    parser.add_argument(
        "--max-obs-overhead", type=float, default=0.0,
        help="fail if any obs_overhead_ratio row (serve_http's untraced vs "
             "fully-traced qps ratio) exceeds this; 0 disables "
             "(default %(default)s). 1.05 allows 5%% tracing overhead.")
    parser.add_argument(
        "--max-profiler-overhead", type=float, default=0.0,
        help="fail if any profiler_overhead_ratio row (serve_http's "
             "profiler-off vs profiler-armed qps ratio) exceeds this; 0 "
             "disables (default %(default)s). 1.05 allows 5%% capture "
             "overhead.")
    parser.add_argument(
        "--min-threads-speedup", type=float, default=0.0,
        help="fail if any threads_speedup row (fig8_scaling's 8-thread vs "
             "1-thread walk+train wall ratio) is below this; 0 disables "
             "(default %(default)s). Only meaningful on multi-core runners.")
    args = parser.parse_args()

    errors = []
    rows = read_rows(args.inputs, errors)

    if not rows:
        errors.append("no benchmark rows found across all inputs")

    if args.min_threads_speedup > 0 and rows:
        check_threads_speedup(rows, args.min_threads_speedup, errors)

    if args.max_obs_overhead > 0 and rows:
        check_obs_overhead(rows, args.max_obs_overhead, errors)

    if args.max_profiler_overhead > 0 and rows:
        check_profiler_overhead(rows, args.max_profiler_overhead, errors)

    if args.min_recall > 0 and rows:
        check_min_recall(rows, args.min_recall, errors)

    if args.baseline and rows:
        try:
            with open(args.baseline, encoding="utf-8") as fh:
                baseline_doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{args.baseline}: cannot read baseline: {exc}")
        else:
            compare_to_baseline(rows, baseline_doc, args, errors)

    if errors:
        for err in errors:
            print(f"check_bench: {err}", file=sys.stderr)
        print(f"check_bench: FAILED with {len(errors)} error(s)",
              file=sys.stderr)
        return 1

    benches = {}
    for row in rows:
        benches[row["bench"]] = benches.get(row["bench"], 0) + 1
    doc = {
        "schema_version": 1,
        "row_count": len(rows),
        "benches": dict(sorted(benches.items())),
        "rows": rows,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    gated = f" (gated against {args.baseline})" if args.baseline else ""
    print(f"check_bench: OK — {len(rows)} rows from {len(benches)} benches"
          + (f" -> {args.out}" if args.out else "") + gated)
    return 0


if __name__ == "__main__":
    sys.exit(main())
