#!/usr/bin/env python3
"""Validate and merge bench --json output into one BENCH document.

Reads one or more JSON Lines files produced by the bench binaries
(`<bench> --json --out rows.jsonl`), validates every row, and merges them
into a single JSON document (the CI `BENCH_pr.json` artifact).

The gate fails (exit 1) when:
  * a line is not a JSON object with the expected keys,
  * a `value` or `wall_seconds` is missing, non-numeric, NaN/inf, or null
    (the C++ writer serialises non-finite measurements as null),
  * an input file contributes no rows (a bench that silently produced
    nothing), or no rows exist at all.

Usage:
  tools/check_bench.py bench-json/*.jsonl --out BENCH_pr.json
"""

import argparse
import json
import math
import sys

REQUIRED_STRING_KEYS = ("bench", "scenario", "parameter", "metric")
REQUIRED_NUMBER_KEYS = ("value", "wall_seconds")


def validate_row(row, where, errors):
    """Appends problems with one parsed row to `errors`."""
    if not isinstance(row, dict):
        errors.append(f"{where}: row is not a JSON object")
        return False
    ok = True
    for key in REQUIRED_STRING_KEYS:
        v = row.get(key)
        if not isinstance(v, str) or not v:
            errors.append(f"{where}: {key!r} missing or not a non-empty string")
            ok = False
    for key in REQUIRED_NUMBER_KEYS:
        v = row.get(key)
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            errors.append(f"{where}: {key!r} missing or non-numeric: {v!r}")
            ok = False
        elif not math.isfinite(v):
            errors.append(f"{where}: {key!r} is not finite: {v!r}")
            ok = False
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+", help="JSON Lines row files")
    parser.add_argument("--out", help="write the merged JSON document here")
    args = parser.parse_args()

    rows = []
    errors = []
    for path in args.inputs:
        file_rows = 0
        try:
            fh = open(path, encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: cannot open: {exc}")
            continue
        with fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"{where}: unparseable JSON: {exc}")
                    continue
                if validate_row(row, where, errors):
                    rows.append(row)
                    file_rows += 1
        if file_rows == 0:
            errors.append(f"{path}: no valid benchmark rows (empty metrics)")

    if not rows:
        errors.append("no benchmark rows found across all inputs")

    if errors:
        for err in errors:
            print(f"check_bench: {err}", file=sys.stderr)
        print(f"check_bench: FAILED with {len(errors)} error(s)",
              file=sys.stderr)
        return 1

    benches = {}
    for row in rows:
        benches[row["bench"]] = benches.get(row["bench"], 0) + 1
    doc = {
        "schema_version": 1,
        "row_count": len(rows),
        "benches": dict(sorted(benches.items())),
        "rows": rows,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    print(f"check_bench: OK — {len(rows)} rows from {len(benches)} benches"
          + (f" -> {args.out}" if args.out else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
