#!/usr/bin/env bash
# Shared HTTP serving smoke driver for CI. One script owns the
# server-start / healthz-wait / query / drain choreography that used to be
# copy-pasted into every workflow job.
#
# Usage:
#   tools/http_smoke.sh <mode> <tdmatch_serve-binary> <snapshot.tds>
#
# Modes:
#   basic      full endpoint tour: query, batch, hot reload, stats, and a
#              SIGTERM that must drain and exit 0 (the build-and-test leg).
#   sanitized  the lighter tour the ASan/UBSan job runs (longer healthz
#              budget: sanitized startup is slow).
#   sharded    two servers, one unsharded and one --shards 4: exact-mode
#              responses must be byte-identical; then a flood against
#              --max-inflight 2 must produce at least one 429 with a
#              well-formed Retry-After while /v1/healthz stays green and
#              the /v1/stats shed counter advances.
set -euo pipefail

mode=${1:?usage: http_smoke.sh <basic|sanitized|sharded> <serve-binary> <snapshot.tds>}
serve_bin=${2:?missing tdmatch_serve binary path}
snapshot=${3:?missing snapshot path}

tmp_dir=$(mktemp -d)
pids=()
cleanup() {
  if [ "${#pids[@]}" -gt 0 ]; then
    for pid in "${pids[@]}"; do
      kill "$pid" 2>/dev/null || true
    done
  fi
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

fail() {
  echo "::error::http_smoke($mode): $*" >&2
  exit 1
}

# start_server <port> [extra serve flags...] — sets `last_pid` (no command
# substitution: a $(...) subshell could not append to the pids array).
start_server() {
  local port=$1
  shift
  "$serve_bin" serve --snapshot "$snapshot" --port "$port" "$@" &
  last_pid=$!
  pids+=("$last_pid")
}

# wait_healthy <port> <tries> — polls /v1/healthz every 0.2s.
wait_healthy() {
  local port=$1 tries=$2 i
  for ((i = 0; i < tries; i++)); do
    if curl -sf "http://127.0.0.1:$port/v1/healthz" > /dev/null; then
      return 0
    fi
    sleep 0.2
  done
  fail "server on port $port never became healthy ($tries tries)"
}

# drain <pid> — SIGTERM must exit 0 (clean drain; under the sanitizers a
# leak or OOB turns this exit non-zero).
drain() {
  kill -TERM "$1"
  wait "$1"
}

post() {
  # post <port> <json-body>: echoes the response body, fails on transport
  # or non-2xx status.
  curl -sf -X POST "http://127.0.0.1:$1/v1/query" -d "$2"
}

case "$mode" in
  basic)
    port=18080
    # Full tracing + a result cache so the metrics scrape below covers the
    # trace and cache counters too; fast history sampling and a JSONL log
    # file so the continuous-observability endpoints have data to show.
    start_server "$port" --trace-sample 1 --cache 64 \
      --history-interval-ms 100 --log-file "$tmp_dir/serve.jsonl"
    server_pid=$last_pid
    wait_healthy "$port" 50
    post "$port" '{"label": "q:0", "k": 3}' | tee "$tmp_dir/q1.json"
    grep -q '"matches"' "$tmp_dir/q1.json"
    post "$port" '{"labels": ["q:0", "q:1"], "k": 3}' | grep -q '"results"'
    cp "$snapshot" "$tmp_dir/reload.tds"
    curl -sf -X POST "http://127.0.0.1:$port/v1/reload" \
      -d "{\"snapshot\": \"$tmp_dir/reload.tds\"}" \
      | grep -q '"snapshot_version":2'
    post "$port" '{"label": "q:0", "k": 3}' | grep -q '"snapshot_version":2'
    curl -sf "http://127.0.0.1:$port/v1/stats" | grep -q '"reloads":1'

    # The same single-label query twice: the second hit must come from the
    # result cache, so the scrape below can assert the hit counter moved.
    post "$port" '{"label": "q:1", "k": 3}' > /dev/null
    post "$port" '{"label": "q:1", "k": 3}' > /dev/null

    # Prometheus scrape: structurally valid exposition (python checker),
    # request/trace/reload/cache counters advanced by the traffic above.
    curl -sf "http://127.0.0.1:$port/v1/metrics" > "$tmp_dir/metrics.txt"
    python3 "$(dirname "$0")/check_metrics.py" "$tmp_dir/metrics.txt" \
      --require tdmatch_request_latency_ms \
      --require tdmatch_request_stage_latency_ms \
      --require tdmatch_admission_admitted_total \
      --require tdmatch_snapshot_version \
      --require tdmatch_build_info \
      --min tdmatch_queries_total:6 \
      --min tdmatch_traces_total:5 \
      --min tdmatch_reloads_total:1 \
      --min tdmatch_cache_hits_total:1 \
      || fail "metrics exposition check failed"

    # Metric history: a scripted burst of 8 more queries, then the
    # windowed view must show the counter's delta (the run started with a
    # pre-traffic sample, so the whole burst is visible) and internally
    # consistent delta/rate arithmetic (validated by --history).
    for i in 0 1 2 3; do
      post "$port" '{"labels": ["q:0", "q:1"], "k": 3}' > /dev/null
    done
    sleep 0.5
    curl -sf "http://127.0.0.1:$port/v1/metrics/history?window=120&series=tdmatch_queries" \
      > "$tmp_dir/history.json"
    python3 "$(dirname "$0")/check_metrics.py" "$tmp_dir/history.json" \
      --history \
      --history-require tdmatch_queries_total \
      --history-min-delta tdmatch_queries_total:8 \
      || fail "metrics history check failed"

    # SLO burn rates: clean traffic must report healthy objectives.
    curl -sf "http://127.0.0.1:$port/v1/slo" > "$tmp_dir/slo.json"
    grep -q '"degraded":false' "$tmp_dir/slo.json" \
      || fail "slo reports degraded on clean traffic"
    grep -q '"name":"availability"' "$tmp_dir/slo.json" \
      || fail "slo lacks the availability objective"
    curl -sf "http://127.0.0.1:$port/v1/healthz" | grep -q '"status":"ok"' \
      || fail "healthz lacks the ok status"

    # CPU profile under live load: the folded stacks must be non-empty
    # and name the query kernels (flamegraph.pl-ready output).
    (
      for ((i = 0; i < 400; i++)); do
        post "$port" '{"labels": ["q:0", "q:1", "q:2", "q:3"], "k": 5}' \
          > /dev/null 2>&1 || true
      done
    ) &
    load_pid=$!
    curl -sf "http://127.0.0.1:$port/v1/debug/profile?seconds=1&hz=300" \
      > "$tmp_dir/profile.folded"
    kill "$load_pid" 2>/dev/null || true
    wait "$load_pid" 2>/dev/null || true
    [ -s "$tmp_dir/profile.folded" ] \
      || fail "profile endpoint returned empty folded output"
    grep -qE 'QueryEngine|Ivf|Exact|simd|tdmatch' "$tmp_dir/profile.folded" \
      || fail "profile has no query-kernel frames"
    curl -sf "http://127.0.0.1:$port/v1/debug/profile?seconds=0.2&format=json" \
      | grep -q '"samples"' || fail "profile json format failed"

    # The --log-file sink captured the run as parseable JSONL.
    [ -s "$tmp_dir/serve.jsonl" ] || fail "--log-file produced no output"
    python3 -c "import json, sys; [json.loads(l) for l in open(sys.argv[1])]" \
      "$tmp_dir/serve.jsonl" || fail "log file lines are not valid JSON"

    drain "$server_pid"
    ;;

  sanitized)
    port=18081
    start_server "$port"
    server_pid=$last_pid
    wait_healthy "$port" 100
    post "$port" '{"label": "q:0", "k": 3}' | grep -q '"matches"'
    curl -sf -X POST "http://127.0.0.1:$port/v1/reload" -d '{}' \
      | grep -q '"snapshot_version":2'
    drain "$server_pid"
    ;;

  sharded)
    plain_port=18090
    shard_port=18091
    start_server "$plain_port"
    plain_pid=$last_pid
    start_server "$shard_port" --shards 4 --max-inflight 2 --allow-delay
    shard_pid=$last_pid
    wait_healthy "$plain_port" 50
    wait_healthy "$shard_port" 50

    # Exact-mode bit-identity from outside the process: the sharded
    # scatter-gather must render byte-identical bodies (same matches,
    # same %.17g score spellings) for every query.
    for label in "q:0" "q:1" "q:2" "q:3"; do
      body="{\"label\": \"$label\", \"k\": 5, \"mode\": \"exact\"}"
      post "$plain_port" "$body" > "$tmp_dir/plain.json"
      post "$shard_port" "$body" > "$tmp_dir/shard.json"
      cmp "$tmp_dir/plain.json" "$tmp_dir/shard.json" \
        || fail "sharded response for $label differs from unsharded"
    done

    # Overload: flood past --max-inflight 2 with a debug delay holding
    # each admitted query in flight. At least one 429 with a well-formed
    # Retry-After must come back, health must stay green, and the shed
    # counter must advance — fail fast, never fall over.
    flood=8
    flood_pids=()
    for ((i = 0; i < flood; i++)); do
      curl -s -X POST "http://127.0.0.1:$shard_port/v1/query" \
        -d '{"label": "q:0", "k": 3, "delay_ms": 500}' \
        -D "$tmp_dir/headers.$i" -o "$tmp_dir/body.$i" \
        -w '%{http_code}' > "$tmp_dir/status.$i" &
      flood_pids+=("$!")
    done
    # Wait for the flood only — a bare `wait` would block on the servers.
    for pid in "${flood_pids[@]}"; do
      wait "$pid" || true
    done
    sheds=0
    for ((i = 0; i < flood; i++)); do
      status=$(cat "$tmp_dir/status.$i")
      case "$status" in
        200) ;;
        429)
          sheds=$((sheds + 1))
          grep -qiE '^retry-after: *[0-9]+' "$tmp_dir/headers.$i" \
            || fail "429 without a well-formed Retry-After header"
          grep -q '"retry_after_seconds"' "$tmp_dir/body.$i" \
            || fail "429 body lacks retry_after_seconds"
          ;;
        *) fail "unexpected status $status under flood (crash?)" ;;
      esac
    done
    [ "$sheds" -ge 1 ] || fail "flood of $flood produced no 429 shed"
    curl -sf "http://127.0.0.1:$shard_port/v1/healthz" > /dev/null \
      || fail "healthz went red under overload"
    curl -sf "http://127.0.0.1:$shard_port/v1/stats" > "$tmp_dir/stats.json"
    grep -q '"shed":0' "$tmp_dir/stats.json" \
      && fail "stats shed counter did not advance"
    grep -q '"configured":4' "$tmp_dir/stats.json" \
      || fail "stats does not report 4 configured shards"

    drain "$plain_pid"
    drain "$shard_pid"
    ;;

  *)
    fail "unknown mode '$mode' (expected basic|sanitized|sharded)"
    ;;
esac

echo "http_smoke($mode): OK"
