// tdmatch_serve: the online serving entry point.
//
// The offline pipeline (core::TDmatch) trains once and `build-snapshot`
// persists the document embeddings as a binary snapshot; `query` / `batch`
// load that snapshot in a fresh process and answer top-k match queries
// through serve::QueryEngine (IVF ANN with exact re-rank, or brute force
// with --exact). `info` inspects a snapshot, `convert` bridges the text
// vector format.
//
//   tdmatch_serve build-snapshot --scenario IMDb --out model.tds
//                 [--scale smoke|sweep|full] [--seed N]
//   tdmatch_serve info     --snapshot model.tds
//   tdmatch_serve query    --snapshot model.tds [--k N] [--nprobe N]
//                 [--exact] [--threads N]          # REPL over stdin
//   tdmatch_serve batch    --snapshot model.tds --queries q.txt|q.jsonl
//                 [--field query] [--k N] [--nprobe N] [--exact]
//                 [--threads N]
//   tdmatch_serve convert  --in vectors.txt --out model.tds  (or reverse;
//                 direction is sniffed from the input file's magic)
//   tdmatch_serve serve    --snapshot model.tds [--port N] [--bind ADDR]
//                 [--threads N] [--http-threads N] [--k N] [--nprobe N]
//                 [--exact] [--no-mmap] [--no-reload]
//                 [--trace-sample F] [--slow-query-ms X] [--log-level L]
//                          # HTTP front end: POST /v1/query, GET
//                          # /v1/healthz, GET /v1/stats, GET /v1/metrics
//                          # (Prometheus), POST /v1/reload;
//                          # SIGTERM/SIGINT drain and exit 0
//
// Query labels are the snapshot's embedding labels (the graph's metadata
// doc labels). The REPL, batch mode, and the HTTP API accept the
// shorthands `q:<i>` and `c:<i>` for query/candidate doc i of the trained
// scenario.

#include <csignal>
#include <cstring>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "corpus/loader.h"
#include "graph/builder.h"
#include "serve/http/server.h"
#include "serve/http/service.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/obs/jsonlog.h"
#include "util/obs/metrics.h"
#include "util/obs/phase_profile.h"
#include "util/result.h"
#include "util/simd/kernels.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tdmatch {
namespace {

constexpr char kCandidatePrefix[] = "__D1:";
constexpr char kQueryPrefix[] = "__D0:";

struct ServeArgs {
  std::string mode;
  std::string scenario = "IMDb";
  std::string out_path;
  std::string in_path;
  std::string snapshot_path;
  std::string queries_path;
  std::string field = "query";
  bench::Scale scale = bench::Scale::kSmoke;
  uint64_t seed = 0;
  size_t k = 5;
  size_t nprobe = 4;
  size_t pq_m = 0;
  size_t threads = 4;
  bool exact = false;
  // serve mode
  std::string bind = "127.0.0.1";
  size_t port = 8080;
  size_t http_threads = 4;
  bool no_mmap = false;
  bool no_reload = false;
  size_t shards = 1;
  /// SIZE_MAX = no admission limit; 0 is valid and sheds every query.
  size_t max_inflight = std::numeric_limits<size_t>::max();
  double latency_budget_ms = 0.0;
  size_t cache_entries = 0;
  bool allow_delay = false;
  /// Fraction of queries traced with per-stage spans (0 = off, 1 = all).
  double trace_sample = 0.0;
  /// Trace + JSONL-log any query slower than this (ms); 0 disables.
  double slow_query_ms = 0.0;
  /// Minimum JSONL log level: debug|info|warn|error.
  std::string log_level = "info";
  /// JSONL log file (empty = stderr) with size-based keep-one rotation.
  std::string log_file;
  size_t log_max_bytes = 64 * 1024 * 1024;
  /// Metric-history sampling cadence (ms; 0 disables) and ring size.
  double history_interval_ms = 1000.0;
  size_t history_points = 600;
  /// SLO availability/latency target (the latency objective activates
  /// with --latency-budget-ms) and burn-rate window tuning: the short
  /// fast/slow windows in seconds; long windows are 10x the short ones.
  double slo_target = 0.999;
  double slo_fast_window_s = 60.0;
  double slo_slow_window_s = 300.0;
  double slo_fast_burn = 14.4;
  double slo_slow_burn = 6.0;
  /// Disable GET /v1/debug/profile.
  bool no_profile = false;
  size_t profile_hz = 99;
};

int Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <mode> [flags]\n"
      "modes:\n"
      "  build-snapshot --scenario <IMDb|Corona|Audit|Politifact|Snopes>\n"
      "                 --out <model.tds> [--scale smoke|sweep|full]\n"
      "                 [--seed N] [--pq-m N]   (embeds a trained index\n"
      "                 section; --pq-m turns on product quantization)\n"
      "  info           --snapshot <model.tds>\n"
      "  isa            (print the SIMD dispatch decision and exit)\n"
      "  query          --snapshot <model.tds> [--k N] [--nprobe N]\n"
      "                 [--exact] [--threads N]\n"
      "  batch          --snapshot <model.tds> --queries <file.txt|.jsonl>\n"
      "                 [--field <name>] [--k N] [--nprobe N] [--exact]\n"
      "                 [--threads N]\n"
      "  convert        --in <file> --out <file>   (text <-> snapshot)\n"
      "  serve          --snapshot <model.tds> [--port N] [--bind ADDR]\n"
      "                 [--threads N] [--http-threads N] [--k N]\n"
      "                 [--nprobe N] [--exact] [--no-mmap] [--no-reload]\n"
      "                 [--shards N] [--max-inflight N]\n"
      "                 [--latency-budget-ms X] [--cache N] [--allow-delay]\n"
      "                 [--trace-sample F] [--slow-query-ms X]\n"
      "                 [--log-level debug|info|warn|error]\n"
      "                 [--log-file PATH] [--log-max-bytes N]\n"
      "                 [--history-interval-ms N] [--history-points N]\n"
      "                 [--slo-target F] [--slo-fast-window-s S]\n"
      "                 [--slo-slow-window-s S] [--slo-fast-burn X]\n"
      "                 [--slo-slow-burn X] [--no-profile]\n"
      "                 [--profile-hz N]\n"
      "                 (--shards: scatter-gather shard count;\n"
      "                  --max-inflight: shed 429 + Retry-After past N\n"
      "                  in-flight queries (0 sheds all); --latency-budget-ms:\n"
      "                  auto-tune nprobe to a p99 target + the latency\n"
      "                  SLO threshold; --cache: LRU\n"
      "                  result-cache entries; --allow-delay: honor the\n"
      "                  debug 'delay_ms' query field; --trace-sample:\n"
      "                  fraction of queries traced with per-stage spans;\n"
      "                  --slow-query-ms: JSONL-log queries slower than X;\n"
      "                  --log-file: JSONL log to PATH, rotated keep-one\n"
      "                  past --log-max-bytes; --history-interval-ms:\n"
      "                  metric-history sampling for GET\n"
      "                  /v1/metrics/history (0 disables); --slo-*: burn-\n"
      "                  rate windows/thresholds for GET /v1/slo and the\n"
      "                  degraded healthz state; metrics at GET\n"
      "                  /v1/metrics; CPU profile at GET /v1/debug/profile)\n",
      prog);
  return 2;
}

bool ParseSize(const std::string& s, size_t* out) {
  double d = 0;
  // The range check must precede the cast: converting a double outside
  // size_t's range (1e30, inf) is undefined behavior. 2^53 bounds the
  // exactly-representable integers, far beyond any flag this tool takes.
  if (!util::ParseDouble(s, &d) || d < 0 || d > 9007199254740992.0 ||
      d != static_cast<double>(static_cast<size_t>(d))) {
    return false;
  }
  *out = static_cast<size_t>(d);
  return true;
}

/// `q:3` / `c:7` → metadata doc labels; anything else passes through.
std::string ResolveLabel(const std::string& raw) {
  const std::string_view s = util::Trim(raw);
  size_t idx = 0;
  if (s.size() > 2 && (s[0] == 'q' || s[0] == 'c') && s[1] == ':' &&
      ParseSize(std::string(s.substr(2)), &idx)) {
    return graph::GraphBuilder::MetaDocLabel(s[0] == 'q' ? 0 : 1, idx);
  }
  return std::string(s);
}

void PrintMatches(const std::string& query,
                  const util::Result<std::vector<serve::ScoredMatch>>& r) {
  if (!r.ok()) {
    std::printf("%s\tERROR\t%s\n", query.c_str(),
                r.status().ToString().c_str());
    return;
  }
  size_t rank = 1;
  for (const auto& m : *r) {
    std::printf("%s\t%zu\t%s\t%.6f\n", query.c_str(), rank++,
                m.label.c_str(), m.score);
  }
}

int RunBuildSnapshot(const ServeArgs& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "build-snapshot: --out is required\n");
    return 2;
  }
  bench::BenchOptions bopts;
  bopts.scale = args.scale;
  bopts.seed = args.seed;
  bopts.filter = "^" + args.scenario + "$";

  util::StopWatch watch;
  std::vector<bench::SweepScenario> scenarios =
      bench::MakeSweepScenarios(bopts);
  if (scenarios.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'\n", args.scenario.c_str());
    return 2;
  }
  bench::SweepScenario& sc = scenarios.front();
  const double gen_seconds = watch.ElapsedSeconds();

  watch.Reset();
  core::TDmatchOptions options = sc.base_options;
  options.export_embeddings = true;
  core::TDmatch engine(options);
  auto run = engine.Run(sc.data.scenario.first, sc.data.scenario.second);
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const double train_seconds = watch.ElapsedSeconds();

  serve::SnapshotMeta meta;
  meta.scenario = sc.name;
  meta.Set("scale", bench::ScaleName(args.scale));
  meta.Set("seed", util::StrFormat("%llu",
                                   static_cast<unsigned long long>(args.seed)));
  meta.Set("dim", util::StrFormat("%d", run->embeddings.dim()));
  meta.Set("num_queries",
           util::StrFormat("%zu", sc.data.scenario.first.NumDocs()));
  meta.Set("num_candidates",
           util::StrFormat("%zu", sc.data.scenario.second.NumDocs()));
  meta.Set("query_prefix", kQueryPrefix);
  meta.Set("candidate_prefix", kCandidatePrefix);

  // Offline phase timings travel with the snapshot: the serving process
  // republishes every `phase_<name>_seconds` key as a
  // tdmatch_snapshot_phase_seconds{phase="<name>"} gauge, so a scrape of
  // /v1/metrics shows what the build this snapshot came from cost.
  meta.Set("phase_generate_seconds", util::StrFormat("%.6f", gen_seconds));
  for (const char* phase : {"graph_build", "expand", "compress", "walks",
                            "train", "match", "export"}) {
    const double s = run->profile.Seconds(phase);
    if (s > 0.0) {
      meta.Set(util::StrFormat("phase_%s_seconds", phase),
               util::StrFormat("%.6f", s));
    }
  }

  // Train the serving index once at build time and embed it as a
  // snapshot section: serving processes adopt it (QueryEngineOptions::
  // use_snapshot_index) instead of re-running k-means at every startup.
  // --pq-m additionally product-quantizes the inverted lists.
  watch.Reset();
  serve::QueryEngineOptions eopts;
  eopts.threads = args.threads;
  eopts.use_snapshot_index = false;  // nothing to adopt; we produce it
  eopts.ivf.pq_m = args.pq_m;
  serve::Snapshot snap;
  snap.meta = meta;
  snap.table = std::move(run->embeddings);
  auto qe = serve::QueryEngine::BuildForPrefix(std::move(snap),
                                               kCandidatePrefix, eopts);
  if (!qe.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 qe.status().ToString().c_str());
    return 1;
  }
  const double index_seconds = watch.ElapsedSeconds();
  meta.Set("phase_index_seconds", util::StrFormat("%.6f", index_seconds));
  std::vector<std::pair<std::string, std::string>> sections;
  sections.emplace_back(serve::QueryEngine::kIvfSectionTag,
                        qe->SerializeIvfSection());

  watch.Reset();
  util::Status st = serve::SnapshotIo::Write(qe->table(), meta,
                                             sections, args.out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::ifstream probe(args.out_path,
                      std::ios::binary | std::ios::ate);
  std::printf(
      "wrote %s: scenario=%s vectors=%zu dim=%d bytes=%lld\n"
      "index section: %s, %zu bytes (%zu candidates)\n"
      "timings: generate=%.2fs train=%.2fs index=%.2fs write=%.3fs\n",
      args.out_path.c_str(), sc.name.c_str(), qe->table().size(),
      qe->table().dim(),
      static_cast<long long>(probe ? static_cast<long long>(probe.tellg())
                                   : -1),
      qe->ivf_index()->name().c_str(), sections.front().second.size(),
      qe->num_candidates(), gen_seconds, train_seconds, index_seconds,
      watch.ElapsedSeconds());
  return 0;
}

util::Result<serve::QueryEngine> LoadEngine(const ServeArgs& args) {
  TDM_ASSIGN_OR_RETURN(serve::Snapshot snap,
                       serve::SnapshotIo::Read(args.snapshot_path));
  std::string prefix = snap.meta.Find("candidate_prefix");
  if (prefix.empty()) prefix = kCandidatePrefix;
  serve::QueryEngineOptions opts;
  opts.threads = args.threads;
  opts.default_k = args.k;
  opts.build_ivf = !args.exact;
  opts.ivf.nprobe = args.nprobe;
  opts.ivf.pq_m = args.pq_m;
  return serve::QueryEngine::BuildForPrefix(std::move(snap), prefix, opts);
}

/// `tdmatch_serve isa`: one line for CI logs — which kernel set queries
/// will actually run on this machine, and why.
int RunIsa() {
  std::printf("active ISA: %s (cpu avx2+fma: %s, compiled avx2: %s, "
              "TDMATCH_FORCE_SCALAR: %s)\n",
              simd::IsaName(simd::ActiveIsa()),
              simd::CpuHasAvx2Fma() ? "yes" : "no",
              simd::BuildHasAvx2() ? "yes" : "no",
              simd::ForcedScalarByEnv() ? "set" : "unset");
  return 0;
}

int RunInfo(const ServeArgs& args) {
  auto snap = serve::SnapshotIo::Read(args.snapshot_path);
  if (!snap.ok()) {
    std::fprintf(stderr, "%s\n", snap.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot %s\n  scenario: %s\n  vectors: %zu  dim: %d\n",
              args.snapshot_path.c_str(), snap->meta.scenario.c_str(),
              snap->table.size(), snap->table.dim());
  for (const auto& kv : snap->meta.extra) {
    std::printf("  %s: %s\n", kv.first.c_str(), kv.second.c_str());
  }
  for (const auto& sec : snap->sections) {
    std::printf("  section %s: %zu bytes\n", sec.first.c_str(),
                sec.second.size());
  }
  return 0;
}

int RunQueryRepl(const ServeArgs& args) {
  util::StopWatch watch;
  auto engine = LoadEngine(args);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "loaded %s: %zu candidates, %s index, %.3fs; enter a label "
               "(or q:<i> / c:<i>), empty line quits\n",
               args.snapshot_path.c_str(), engine->num_candidates(),
               engine->has_ivf() ? "ivf+exact" : "exact",
               watch.ElapsedSeconds());
  std::string line;
  size_t failed = 0;
  while (std::getline(std::cin, line)) {
    const std::string label = ResolveLabel(line);
    if (label.empty()) break;
    util::StopWatch qwatch;
    auto result = engine->Query(label, args.k,
                                args.exact ? serve::SearchMode::kExact
                                           : serve::SearchMode::kApprox);
    const double ms = qwatch.ElapsedMillis();
    if (!result.ok() || result->empty()) ++failed;
    PrintMatches(label, result);
    std::fprintf(stderr, "  (%.3f ms)\n", ms);
  }
  // Failures must surface in the exit code: the CI end-to-end smoke pipes
  // queries through this path and has no other way to notice a broken
  // snapshot → query handoff.
  return failed == 0 ? 0 : 1;
}

int RunBatch(const ServeArgs& args) {
  if (args.queries_path.empty()) {
    std::fprintf(stderr, "batch: --queries is required\n");
    return 2;
  }
  auto engine = LoadEngine(args);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  // .jsonl files go through the JSONL corpus loader (one record per line,
  // the --field field holds the query label); anything else is one label
  // per line.
  std::vector<std::string> labels;
  if (util::EndsWith(args.queries_path, ".jsonl")) {
    corpus::JsonlTextOptions jopts;
    jopts.text_field = args.field;
    auto queries = corpus::Loader::TextsFromJsonl(args.queries_path,
                                                  "queries", jopts);
    if (!queries.ok()) {
      std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < queries->NumDocs(); ++i) {
      labels.push_back(ResolveLabel(queries->DocText(i)));
    }
  } else {
    std::ifstream in(args.queries_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", args.queries_path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::string label = ResolveLabel(line);
      if (!label.empty()) labels.push_back(label);
    }
  }
  if (labels.empty()) {
    std::fprintf(stderr, "%s contains no queries\n",
                 args.queries_path.c_str());
    return 1;
  }

  util::StopWatch watch;
  auto results = engine->QueryBatch(labels, args.k,
                                    args.exact ? serve::SearchMode::kExact
                                               : serve::SearchMode::kApprox);
  const double seconds = watch.ElapsedSeconds();
  size_t failed = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (!results[i].ok()) ++failed;
    PrintMatches(labels[i], results[i]);
  }
  std::fprintf(stderr,
               "%zu queries in %.3fs (%.0f qps, %zu threads, %s index), "
               "%zu failed\n",
               labels.size(), seconds,
               static_cast<double>(labels.size()) / std::max(seconds, 1e-9),
               args.threads, engine->has_ivf() && !args.exact ? "ivf"
                                                              : "exact",
               failed);
  return failed == 0 ? 0 : 1;
}

int RunServe(const ServeArgs& args) {
  if (args.snapshot_path.empty()) {
    std::fprintf(stderr, "serve: --snapshot is required\n");
    return 2;
  }
  if (args.port > 65535) {
    std::fprintf(stderr, "serve: --port must be <= 65535\n");
    return 2;
  }

  serve::http::ServiceOptions sopts;
  sopts.engine.threads = args.threads;
  sopts.engine.default_k = args.k;
  sopts.engine.build_ivf = !args.exact;
  sopts.engine.ivf.nprobe = args.nprobe;
  sopts.engine.ivf.pq_m = args.pq_m;
  sopts.use_mmap = !args.no_mmap;
  sopts.allow_reload = !args.no_reload;
  sopts.shards = args.shards;
  sopts.max_inflight = args.max_inflight;
  sopts.latency_budget_ms = args.latency_budget_ms;
  sopts.cache_entries = args.cache_entries;
  sopts.allow_debug_delay = args.allow_delay;
  sopts.trace_sample = args.trace_sample;
  sopts.slow_query_ms = args.slow_query_ms;
  sopts.history_interval_s = args.history_interval_ms / 1000.0;
  sopts.history_points = args.history_points;
  sopts.allow_profile = !args.no_profile;
  sopts.profile_hz = static_cast<int>(args.profile_hz);
  sopts.slo_availability_target = args.slo_target;
  sopts.slo_latency_target = args.slo_target;
  sopts.slo_fast = {args.slo_fast_window_s, args.slo_fast_window_s * 10.0,
                    args.slo_fast_burn};
  sopts.slo_slow = {args.slo_slow_window_s, args.slo_slow_window_s * 10.0,
                    args.slo_slow_burn};
  // The server binary is the one place that publishes into the
  // process-global registry: /v1/metrics is the whole-process view.
  sopts.registry = &util::obs::Registry::Global();

  util::obs::JsonLogger& log = util::obs::JsonLogger::Global();
  log.set_min_level(util::obs::ParseLogLevel(args.log_level));
  if (!args.log_file.empty()) {
    util::Status log_st = log.OpenFile(args.log_file, args.log_max_bytes);
    if (!log_st.ok()) {
      std::fprintf(stderr, "%s\n", log_st.ToString().c_str());
      return 1;
    }
  }
  sopts.logger = &log;

  serve::http::MatchService service(sopts);
  util::Status st = service.LoadInitial(args.snapshot_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  serve::http::HttpServerOptions hopts;
  hopts.bind_address = args.bind;
  hopts.port = static_cast<uint16_t>(args.port);
  hopts.threads = args.http_threads;
  serve::http::HttpServer server(hopts);
  service.Register(&server);

  // Block the shutdown signals before spawning the server threads (they
  // inherit the mask), then wait for one synchronously: the signal is the
  // shutdown command, handled on the main thread with no async-signal-
  // safety gymnastics.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto state = service.state();
  log.Log(util::obs::LogLevel::kInfo, "serve_start")
      .Str("snapshot", args.snapshot_path)
      .Str("scenario", state->engine->meta().scenario)
      .Uint("candidates", state->engine->num_candidates())
      .Uint("shards", state->engine->num_shards())
      .Str("loader", state->mmap ? "mmap" : "copy")
      .Num("load_seconds", state->load_seconds)
      .Str("bind", args.bind)
      .Uint("port", server.port())
      .Num("trace_sample", args.trace_sample)
      .Num("slow_query_ms", args.slow_query_ms);

  int sig = 0;
  while (sigwait(&signals, &sig) != 0) {
  }
  log.Log(util::obs::LogLevel::kInfo, "serve_drain").Int("signal", sig);
  server.Stop();
  log.Log(util::obs::LogLevel::kInfo, "serve_stop")
      .Uint("requests_served", server.requests_served());
  return 0;
}

int RunConvert(const ServeArgs& args) {
  if (args.in_path.empty() || args.out_path.empty()) {
    std::fprintf(stderr, "convert: --in and --out are required\n");
    return 2;
  }
  // Sniff the direction from the input's magic.
  char magic[4] = {0, 0, 0, 0};
  {
    std::ifstream probe(args.in_path, std::ios::binary);
    if (!probe) {
      std::fprintf(stderr, "cannot open %s\n", args.in_path.c_str());
      return 1;
    }
    probe.read(magic, sizeof(magic));
  }
  util::Status st;
  if (std::string(magic, 4) == "TDMS") {
    st = serve::SnapshotIo::ConvertSnapshotToText(args.in_path,
                                                  args.out_path);
  } else {
    serve::SnapshotMeta meta;
    meta.scenario = args.scenario;
    meta.Set("source", args.in_path);
    st = serve::SnapshotIo::ConvertTextToSnapshot(args.in_path, meta,
                                                  args.out_path);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("converted %s -> %s\n", args.in_path.c_str(),
              args.out_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  ServeArgs args;
  args.mode = argv[1];

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--exact") {
      args.exact = true;
    } else if (flag == "--no-mmap") {
      args.no_mmap = true;
    } else if (flag == "--no-reload") {
      args.no_reload = true;
    } else if (flag == "--bind" && (v = next())) {
      args.bind = v;
    } else if (flag == "--port" && (v = next())) {
      if (!ParseSize(v, &args.port)) {
        std::fprintf(stderr, "bad --port '%s'\n", v);
        return 2;
      }
    } else if (flag == "--http-threads" && (v = next())) {
      if (!ParseSize(v, &args.http_threads) || args.http_threads == 0) {
        std::fprintf(stderr, "bad --http-threads '%s'\n", v);
        return 2;
      }
    } else if (flag == "--scenario" && (v = next())) {
      args.scenario = v;
    } else if (flag == "--out" && (v = next())) {
      args.out_path = v;
    } else if (flag == "--in" && (v = next())) {
      args.in_path = v;
    } else if (flag == "--snapshot" && (v = next())) {
      args.snapshot_path = v;
    } else if (flag == "--queries" && (v = next())) {
      args.queries_path = v;
    } else if (flag == "--field" && (v = next())) {
      args.field = v;
    } else if (flag == "--scale" && (v = next())) {
      const std::string s = v;
      if (s == "smoke") args.scale = bench::Scale::kSmoke;
      else if (s == "sweep") args.scale = bench::Scale::kSweep;
      else if (s == "full") args.scale = bench::Scale::kFull;
      else { std::fprintf(stderr, "bad --scale '%s'\n", v); return 2; }
    } else if (flag == "--seed" && (v = next())) {
      size_t seed = 0;
      if (!ParseSize(v, &seed)) {
        std::fprintf(stderr, "bad --seed '%s'\n", v);
        return 2;
      }
      args.seed = seed;
    } else if (flag == "--k" && (v = next())) {
      if (!ParseSize(v, &args.k) || args.k == 0) {
        std::fprintf(stderr, "bad --k '%s'\n", v);
        return 2;
      }
    } else if (flag == "--nprobe" && (v = next())) {
      if (!ParseSize(v, &args.nprobe) || args.nprobe == 0) {
        std::fprintf(stderr, "bad --nprobe '%s'\n", v);
        return 2;
      }
    } else if (flag == "--pq-m" && (v = next())) {
      if (!ParseSize(v, &args.pq_m)) {
        std::fprintf(stderr, "bad --pq-m '%s'\n", v);
        return 2;
      }
    } else if (flag == "--threads" && (v = next())) {
      if (!ParseSize(v, &args.threads) || args.threads == 0) {
        std::fprintf(stderr, "bad --threads '%s'\n", v);
        return 2;
      }
    } else if (flag == "--shards" && (v = next())) {
      if (!ParseSize(v, &args.shards) || args.shards == 0) {
        std::fprintf(stderr, "bad --shards '%s'\n", v);
        return 2;
      }
    } else if (flag == "--max-inflight" && (v = next())) {
      // 0 is deliberate: shed everything (drain mode).
      if (!ParseSize(v, &args.max_inflight)) {
        std::fprintf(stderr, "bad --max-inflight '%s'\n", v);
        return 2;
      }
    } else if (flag == "--latency-budget-ms" && (v = next())) {
      if (!util::ParseDouble(v, &args.latency_budget_ms) ||
          args.latency_budget_ms < 0.0) {
        std::fprintf(stderr, "bad --latency-budget-ms '%s'\n", v);
        return 2;
      }
    } else if (flag == "--cache" && (v = next())) {
      if (!ParseSize(v, &args.cache_entries)) {
        std::fprintf(stderr, "bad --cache '%s'\n", v);
        return 2;
      }
    } else if (flag == "--allow-delay") {
      args.allow_delay = true;
    } else if (flag == "--trace-sample" && (v = next())) {
      if (!util::ParseDouble(v, &args.trace_sample) ||
          args.trace_sample < 0.0 || args.trace_sample > 1.0) {
        std::fprintf(stderr, "bad --trace-sample '%s'\n", v);
        return 2;
      }
    } else if (flag == "--slow-query-ms" && (v = next())) {
      if (!util::ParseDouble(v, &args.slow_query_ms) ||
          args.slow_query_ms < 0.0) {
        std::fprintf(stderr, "bad --slow-query-ms '%s'\n", v);
        return 2;
      }
    } else if (flag == "--log-level" && (v = next())) {
      args.log_level = v;
    } else if (flag == "--log-file" && (v = next())) {
      args.log_file = v;
    } else if (flag == "--log-max-bytes" && (v = next())) {
      if (!ParseSize(v, &args.log_max_bytes)) {
        std::fprintf(stderr, "bad --log-max-bytes '%s'\n", v);
        return 2;
      }
    } else if (flag == "--history-interval-ms" && (v = next())) {
      if (!util::ParseDouble(v, &args.history_interval_ms) ||
          args.history_interval_ms < 0.0) {
        std::fprintf(stderr, "bad --history-interval-ms '%s'\n", v);
        return 2;
      }
    } else if (flag == "--history-points" && (v = next())) {
      if (!ParseSize(v, &args.history_points) || args.history_points == 0) {
        std::fprintf(stderr, "bad --history-points '%s'\n", v);
        return 2;
      }
    } else if (flag == "--slo-target" && (v = next())) {
      if (!util::ParseDouble(v, &args.slo_target) || args.slo_target <= 0.0 ||
          args.slo_target >= 1.0) {
        std::fprintf(stderr, "bad --slo-target '%s' (want 0 < F < 1)\n", v);
        return 2;
      }
    } else if (flag == "--slo-fast-window-s" && (v = next())) {
      if (!util::ParseDouble(v, &args.slo_fast_window_s) ||
          args.slo_fast_window_s <= 0.0) {
        std::fprintf(stderr, "bad --slo-fast-window-s '%s'\n", v);
        return 2;
      }
    } else if (flag == "--slo-slow-window-s" && (v = next())) {
      if (!util::ParseDouble(v, &args.slo_slow_window_s) ||
          args.slo_slow_window_s <= 0.0) {
        std::fprintf(stderr, "bad --slo-slow-window-s '%s'\n", v);
        return 2;
      }
    } else if (flag == "--slo-fast-burn" && (v = next())) {
      if (!util::ParseDouble(v, &args.slo_fast_burn) ||
          args.slo_fast_burn <= 0.0) {
        std::fprintf(stderr, "bad --slo-fast-burn '%s'\n", v);
        return 2;
      }
    } else if (flag == "--slo-slow-burn" && (v = next())) {
      if (!util::ParseDouble(v, &args.slo_slow_burn) ||
          args.slo_slow_burn <= 0.0) {
        std::fprintf(stderr, "bad --slo-slow-burn '%s'\n", v);
        return 2;
      }
    } else if (flag == "--no-profile") {
      args.no_profile = true;
    } else if (flag == "--profile-hz" && (v = next())) {
      if (!ParseSize(v, &args.profile_hz) || args.profile_hz == 0 ||
          args.profile_hz > 1000) {
        std::fprintf(stderr, "bad --profile-hz '%s' (want 1..1000)\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return Usage(argv[0]);
    }
  }

  if (args.mode == "build-snapshot") return RunBuildSnapshot(args);
  if (args.mode == "info") return RunInfo(args);
  if (args.mode == "isa") return RunIsa();
  if (args.mode == "query") return RunQueryRepl(args);
  if (args.mode == "batch") return RunBatch(args);
  if (args.mode == "convert") return RunConvert(args);
  if (args.mode == "serve") return RunServe(args);
  std::fprintf(stderr, "unknown mode '%s'\n", args.mode.c_str());
  return Usage(argv[0]);
}

}  // namespace
}  // namespace tdmatch

int main(int argc, char** argv) { return tdmatch::Main(argc, argv); }
