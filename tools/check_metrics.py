#!/usr/bin/env python3
"""Validates a Prometheus text-exposition scrape (format 0.0.4).

Structural checks on the whole file:
  * every sample belongs to a family announced by # TYPE (and # HELP);
    # HELP / # TYPE precede the family's samples and appear once
  * metric and label names are legal, label blocks parse (escaped quotes,
    backslashes, newlines), values parse as floats (NaN/+Inf/-Inf allowed)
  * no duplicate sample (same name + label set)
  * histograms: per label set, cumulative le buckets are non-decreasing,
    the +Inf bucket exists and equals <name>_count, and <name>_sum exists
  * counter samples are non-negative

Assertions for CI (both repeatable):
  --require NAME      fail unless family NAME has at least one sample
  --min NAME:VALUE    fail unless the sum of NAME's samples is >= VALUE

With --history the input is instead a GET /v1/metrics/history JSON
document: the envelope, per-series shape, point ordering, counter
monotonicity-after-clamp, and the delta/rate arithmetic are validated,
plus the repeatable assertions
  --history-require NAME        fail unless series NAME is present
  --history-min-delta NAME:V    fail unless NAME's delta is >= V

Usage: check_metrics.py scrape.txt [--require tdmatch_queries_total]
                                   [--min tdmatch_cache_hits_total:1]
       check_metrics.py history.json --history
                                   [--history-require tdmatch_queries_total]
                                   [--history-min-delta tdmatch_queries_total:6]
Exits non-zero listing every violation.
"""

import argparse
import json
import math
import re
import sys
from collections import defaultdict

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(block, errors, lineno):
    """Parses '{k="v",...}' (without the braces) into a sorted tuple."""
    labels = []
    i = 0
    n = len(block)
    while i < n:
        eq = block.find("=", i)
        if eq < 0:
            errors.append(f"line {lineno}: malformed label block")
            return None
        name = block[i:eq]
        if not LABEL_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad label name {name!r}")
            return None
        if eq + 1 >= n or block[eq + 1] != '"':
            errors.append(f"line {lineno}: label value must be quoted")
            return None
        i = eq + 2
        value = []
        while i < n and block[i] != '"':
            if block[i] == "\\":
                if i + 1 >= n:
                    errors.append(f"line {lineno}: dangling escape")
                    return None
                esc = block[i + 1]
                value.append({"n": "\n", "\\": "\\", '"': '"'}.get(esc, esc))
                i += 2
            else:
                value.append(block[i])
                i += 1
        if i >= n:
            errors.append(f"line {lineno}: unterminated label value")
            return None
        i += 1  # closing quote
        labels.append((name, "".join(value)))
        if i < n:
            if block[i] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return None
            i += 1
    return tuple(sorted(labels))


def parse_value(text, errors, lineno):
    special = {"NaN": math.nan, "+Inf": math.inf, "-Inf": -math.inf}
    if text in special:
        return special[text]
    try:
        return float(text)
    except ValueError:
        errors.append(f"line {lineno}: unparseable value {text!r}")
        return None


def base_family(name, families):
    """Maps histogram series names back to their announced family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return name


def check_history(text, require, min_delta):
    """Validates a /v1/metrics/history JSON document; returns errors."""
    errors = []
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return [f"history: body is not JSON: {e}"]
    for key in ("now", "window_seconds", "interval_seconds",
                "retention_seconds", "samples_taken"):
        if not isinstance(doc.get(key), (int, float)):
            errors.append(f"history: missing numeric field {key!r}")
    series_list = doc.get("series")
    if not isinstance(series_list, list):
        return errors + ["history: 'series' is not an array"]

    by_name = defaultdict(list)
    for i, s in enumerate(series_list):
        where = f"series[{i}]"
        if not isinstance(s, dict):
            errors.append(f"history: {where} is not an object")
            continue
        name = s.get("name")
        if not isinstance(name, str) or not METRIC_NAME_RE.match(name):
            errors.append(f"history: {where} has bad name {name!r}")
            continue
        where = f"series {name}{s.get('labels', '')}"
        by_name[name].append(s)
        if s.get("type") not in ("counter", "gauge"):
            errors.append(f"history: {where}: bad type {s.get('type')!r}")
        for key in ("points_count", "first_ts", "last_ts", "last", "delta",
                    "rate_per_sec"):
            if not isinstance(s.get(key), (int, float)):
                errors.append(f"history: {where}: missing numeric {key!r}")
                break
        else:
            if s["first_ts"] > s["last_ts"]:
                errors.append(f"history: {where}: first_ts > last_ts")
            if s["points_count"] < 1:
                errors.append(f"history: {where}: empty series reported")
            if s["type"] == "counter" and s["delta"] < 0:
                errors.append(f"history: {where}: counter delta "
                              f"{s['delta']} is negative")
            span = s["last_ts"] - s["first_ts"]
            if span > 0:
                want_rate = s["delta"] / span
                if not math.isclose(s["rate_per_sec"], want_rate,
                                    rel_tol=1e-6, abs_tol=1e-9):
                    errors.append(
                        f"history: {where}: rate_per_sec "
                        f"{s['rate_per_sec']} != delta/span {want_rate}")
            elif s["rate_per_sec"] != 0:
                errors.append(f"history: {where}: nonzero rate over an "
                              f"empty time span")
            points = s.get("points")
            if points is not None:
                if (not isinstance(points, list)
                        or len(points) != s["points_count"]):
                    errors.append(f"history: {where}: points/points_count "
                                  f"mismatch")
                else:
                    ts = [p[0] for p in points]
                    if ts != sorted(ts):
                        errors.append(f"history: {where}: points not in "
                                      f"time order")
                    if points and (points[0][0] != s["first_ts"]
                                   or points[-1][0] != s["last_ts"]):
                        errors.append(f"history: {where}: first/last_ts "
                                      f"disagree with points")
                    if points and points[-1][1] != s["last"]:
                        errors.append(f"history: {where}: last disagrees "
                                      f"with final point")

    distinct = {(s["name"], s.get("labels", "")) for n in by_name
                for s in by_name[n]}
    if len(distinct) != sum(len(v) for v in by_name.values()):
        errors.append("history: duplicate (name, labels) series")

    for name in require:
        if name not in by_name:
            errors.append(f"history: required series {name} is absent")
    for spec in min_delta:
        name, _, floor_text = spec.rpartition(":")
        try:
            floor = float(floor_text)
        except ValueError:
            errors.append(f"--history-min-delta {spec!r}: not a number")
            continue
        total = sum(s["delta"] for s in by_name.get(name, [])
                    if isinstance(s.get("delta"), (int, float)))
        if name not in by_name or total < floor:
            errors.append(f"--history-min-delta {name}: delta {total} < "
                          f"{floor}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("scrape", help="exposition text file ('-' for stdin)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME", help="family that must have samples")
    ap.add_argument("--min", action="append", default=[], metavar="NAME:V",
                    help="family whose summed samples must be >= V")
    ap.add_argument("--history", action="store_true",
                    help="input is a /v1/metrics/history JSON document")
    ap.add_argument("--history-require", action="append", default=[],
                    metavar="NAME", help="series that must be present")
    ap.add_argument("--history-min-delta", action="append", default=[],
                    metavar="NAME:V", help="series whose delta must be >= V")
    args = ap.parse_args()

    text = (sys.stdin.read() if args.scrape == "-"
            else open(args.scrape, encoding="utf-8").read())

    if args.history:
        errors = check_history(text, args.history_require,
                               args.history_min_delta)
        if errors:
            for e in errors:
                print(f"check_metrics: {e}", file=sys.stderr)
            sys.exit(1)
        doc = json.loads(text)
        print(f"check_metrics: history OK ({len(doc['series'])} series, "
              f"{doc['samples_taken']:.0f} samples)")
        return

    errors = []
    families = {}  # name -> type
    helped = set()
    seen_samples = set()
    family_samples = defaultdict(list)  # family -> [(labels, value)]
    samples_started = set()  # families that already emitted samples

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if name in helped:
                errors.append(f"line {lineno}: duplicate # HELP for {name}")
            helped.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                errors.append(f"line {lineno}: malformed # TYPE")
                continue
            name, mtype = parts
            if mtype not in VALID_TYPES:
                errors.append(f"line {lineno}: invalid type {mtype!r}")
            if name in families:
                errors.append(f"line {lineno}: duplicate # TYPE for {name}")
            if name in samples_started:
                errors.append(
                    f"line {lineno}: # TYPE for {name} after its samples")
            families[name] = mtype
            continue
        if line.startswith("#"):
            continue  # comment

        # Sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([^{\s]+)(\{.*\})?\s+(\S+)(\s+-?\d+)?$", line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, label_block, value_text = m.group(1), m.group(2), m.group(3)
        if not METRIC_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
            continue
        labels = (parse_labels(label_block[1:-1], errors, lineno)
                  if label_block else ())
        if labels is None:
            continue
        value = parse_value(value_text, errors, lineno)
        if value is None:
            continue

        family = base_family(name, families)
        if family not in families:
            errors.append(f"line {lineno}: sample {name} has no # TYPE")
            continue
        samples_started.add(family)
        key = (name, labels)
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}{labels}")
        seen_samples.add(key)
        family_samples[family].append((name, labels, value))
        if families[family] == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name} is negative")

    # Histogram shape: per label set (minus le), buckets are cumulative,
    # +Inf exists and matches _count, _sum exists.
    for family, mtype in families.items():
        if mtype != "histogram":
            continue
        buckets = defaultdict(list)  # base labels -> [(le, value)]
        counts = {}
        sums = {}
        for name, labels, value in family_samples[family]:
            base = tuple(kv for kv in labels if kv[0] != "le")
            if name == family + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"{family}: bucket without le label")
                    continue
                buckets[base].append((math.inf if le == "+Inf"
                                      else float(le), value))
            elif name == family + "_count":
                counts[base] = value
            elif name == family + "_sum":
                sums[base] = value
        for base, series in buckets.items():
            series.sort()
            values = [v for _, v in series]
            if values != sorted(values):
                errors.append(f"{family}{dict(base)}: buckets not cumulative")
            if not series or not math.isinf(series[-1][0]):
                errors.append(f"{family}{dict(base)}: missing +Inf bucket")
            elif base in counts and series[-1][1] != counts[base]:
                errors.append(
                    f"{family}{dict(base)}: +Inf bucket {series[-1][1]} != "
                    f"_count {counts[base]}")
            if base not in sums:
                errors.append(f"{family}{dict(base)}: missing _sum")
            if base not in counts:
                errors.append(f"{family}{dict(base)}: missing _count")

    for name in args.require:
        if not family_samples.get(name):
            errors.append(f"required family {name} has no samples")
    for spec in args.min:
        name, _, floor_text = spec.rpartition(":")
        try:
            floor = float(floor_text)
        except ValueError:
            errors.append(f"--min {spec!r}: value is not a number")
            continue
        total = sum(v for _, _, v in family_samples.get(name, []))
        if not family_samples.get(name) or total < floor:
            errors.append(
                f"--min {name}: sum {total} < {floor} "
                f"({len(family_samples.get(name, []))} samples)")

    if errors:
        for e in errors:
            print(f"check_metrics: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_metrics: OK ({len(seen_samples)} samples, "
          f"{len(families)} families)")


if __name__ == "__main__":
    main()
