#!/usr/bin/env bash
# Unified bench driver: runs every paper bench binary with the shared CLI
# and collects one JSON Lines file per bench in <out-dir>. Extra arguments
# are forwarded to every bench (e.g. --scale smoke --seed 4242).
#
# Usage:
#   tools/run_benches.sh <build-dir> <out-dir> [bench flags...]
# Typical CI invocation:
#   tools/run_benches.sh build bench-json --scale smoke --seed 4242
set -euo pipefail

build_dir=${1:?usage: run_benches.sh <build-dir> <out-dir> [bench flags...]}
out_dir=${2:?usage: run_benches.sh <build-dir> <out-dir> [bench flags...]}
shift 2

benches=(
  ablation_blocking
  ablation_merging
  ablation_meta_edges
  ablation_ngram
  fig6_walk_length
  fig7_num_walks
  fig8_scaling
  fig9_filtering
  fig10_combination
  serve_http
  serve_qps
  serve_shard
  table1_imdb
  table2_corona
  table3_audit
  table4_politifact
  table5_snopes
  table6_sts
  table7_times
  table8_compression
)

mkdir -p "$out_dir"
for bench in "${benches[@]}"; do
  bin="$build_dir/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "run_benches: missing bench binary $bin (build the bench_all target)" >&2
    exit 1
  fi
  echo "== $bench $*"
  start=$SECONDS
  "$bin" --json --out "$out_dir/$bench.jsonl" "$@"
  echo "   $((SECONDS - start))s, $(wc -l < "$out_dir/$bench.jsonl") rows"
done
