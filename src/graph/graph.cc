#include "graph/graph.h"

#include <utility>

namespace tdmatch {
namespace graph {

NodeId Graph::AddNode(const std::string& label, NodeType type,
                      CorpusTag corpus, int32_t doc_index) {
  auto it = label_index_.find(label);
  if (it != label_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeInfo{label, type, corpus, doc_index});
  if (finalized_) {
    // A fresh node has no neighbors: the CSR stays valid by repeating the
    // end offset, no definalization needed.
    offsets_.push_back(offsets_.back());
  } else {
    adj_.emplace_back();
  }
  label_index_.emplace(label, id);
  return id;
}

NodeId Graph::FindNode(const std::string& label) const {
  auto it = label_index_.find(label);
  return it == label_index_.end() ? kInvalidNode : it->second;
}

bool Graph::AddEdge(NodeId a, NodeId b) {
  TDM_DCHECK(a >= 0 && static_cast<size_t>(a) < nodes_.size());
  TDM_DCHECK(b >= 0 && static_cast<size_t>(b) < nodes_.size());
  if (a == b) return false;
  if (!edge_set_.insert(EdgeKey(a, b)).second) return false;
  if (finalized_) Definalize();
  adj_[static_cast<size_t>(a)].push_back(b);
  adj_[static_cast<size_t>(b)].push_back(a);
  ++num_edges_;
  return true;
}

bool Graph::HasEdge(NodeId a, NodeId b) const {
  if (a == b) return false;
  return edge_set_.count(EdgeKey(a, b)) > 0;
}

void Graph::Finalize() {
  if (finalized_) return;
  offsets_.assign(nodes_.size() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < adj_.size(); ++i) {
    offsets_[i] = total;
    total += adj_[i].size();
  }
  offsets_[nodes_.size()] = total;
  targets_.clear();
  targets_.reserve(total);
  for (const auto& nbs : adj_) {
    targets_.insert(targets_.end(), nbs.begin(), nbs.end());
  }
  std::vector<std::vector<NodeId>>().swap(adj_);
  finalized_ = true;
}

void Graph::Definalize() {
  if (!finalized_) return;
  adj_.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    adj_[i].assign(targets_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]),
                   targets_.begin() +
                       static_cast<std::ptrdiff_t>(offsets_[i + 1]));
  }
  std::vector<size_t>().swap(offsets_);
  std::vector<NodeId>().swap(targets_);
  finalized_ = false;
}

std::vector<NodeId> Graph::MetadataDocNodes(CorpusTag corpus) const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == NodeType::kMetadataDoc &&
        (corpus == kNoCorpus || nodes_[i].corpus == corpus)) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

std::vector<NodeId> Graph::DataNodes() const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == NodeType::kData) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

Graph Graph::InducedSubgraph(const std::vector<bool>& keep) const {
  TDM_CHECK_EQ(keep.size(), nodes_.size());
  Graph out;
  std::vector<NodeId> remap(nodes_.size(), kInvalidNode);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (keep[i]) {
      remap[i] = out.AddNode(nodes_[i].label, nodes_[i].type,
                             nodes_[i].corpus, nodes_[i].doc_index);
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!keep[i]) continue;
    for (NodeId nb : Neighbors(static_cast<NodeId>(i))) {
      if (nb > static_cast<NodeId>(i) && keep[static_cast<size_t>(nb)]) {
        out.AddEdge(remap[i], remap[static_cast<size_t>(nb)]);
      }
    }
  }
  if (finalized_) out.Finalize();
  return out;
}

Graph Graph::RemoveSinkNodes() const {
  // Iteratively peel degree-<=1 non-metadata nodes.
  std::vector<bool> keep(nodes_.size(), true);
  std::vector<size_t> degree(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    degree[i] = Degree(static_cast<NodeId>(i));
  }

  std::vector<NodeId> stack;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type == NodeType::kData && degree[i] <= 1) {
      stack.push_back(static_cast<NodeId>(i));
    }
  }
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    size_t vi = static_cast<size_t>(v);
    if (!keep[vi] || degree[vi] > 1 || nodes_[vi].type != NodeType::kData) {
      continue;
    }
    keep[vi] = false;
    for (NodeId nb : Neighbors(v)) {
      size_t ni = static_cast<size_t>(nb);
      if (!keep[ni]) continue;
      if (degree[ni] > 0) --degree[ni];
      if (nodes_[ni].type == NodeType::kData && degree[ni] <= 1) {
        stack.push_back(nb);
      }
    }
  }
  return InducedSubgraph(keep);
}

Graph::TypeCounts Graph::CountByType() const {
  TypeCounts c;
  for (const auto& n : nodes_) {
    switch (n.type) {
      case NodeType::kData:
        ++c.data;
        break;
      case NodeType::kMetadataDoc:
        ++c.metadata_doc;
        break;
      case NodeType::kMetadataColumn:
        ++c.metadata_col;
        break;
    }
  }
  return c;
}

}  // namespace graph
}  // namespace tdmatch
