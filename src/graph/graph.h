#ifndef TDMATCH_GRAPH_GRAPH_H_
#define TDMATCH_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace tdmatch {
namespace graph {

/// Dense node identifier.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Kind of graph node (§II: data vs metadata; columns are metadata too).
enum class NodeType : uint8_t {
  kData = 0,          ///< a term (word n-gram) from either corpus
  kMetadataDoc = 1,   ///< a document: tuple, paragraph, taxonomy concept
  kMetadataColumn = 2 ///< a table attribute
};

/// Which corpus a metadata node belongs to (0 = first, 1 = second,
/// -1 = not applicable, e.g. data nodes shared by both).
using CorpusTag = int8_t;
inline constexpr CorpusTag kNoCorpus = -1;

/// Node payload.
struct NodeInfo {
  std::string label;
  NodeType type = NodeType::kData;
  CorpusTag corpus = kNoCorpus;
  /// Index of the document in its corpus for kMetadataDoc nodes, else -1.
  int32_t doc_index = -1;
};

/// \brief Non-owning view of a node's neighbor list.
///
/// Valid for both graph states: while building it aliases the node's
/// adjacency vector, after Finalize() it aliases the node's slice of the
/// flat CSR target array. Invalidated by any graph mutation.
class NeighborSpan {
 public:
  using value_type = NodeId;
  using const_iterator = const NodeId*;

  constexpr NeighborSpan() = default;
  constexpr NeighborSpan(const NodeId* data, size_t size)
      : data_(data), size_(size) {}

  constexpr const NodeId* begin() const { return data_; }
  constexpr const NodeId* end() const { return data_ + size_; }
  constexpr const NodeId* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr NodeId operator[](size_t i) const { return data_[i]; }

  /// Materializes the span (test/diagnostic convenience).
  std::vector<NodeId> ToVector() const {
    return std::vector<NodeId>(begin(), end());
  }

 private:
  const NodeId* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Undirected, unweighted multigraph-free graph over data and
/// metadata nodes (§II).
///
/// Nodes are interned by label (labels are unique graph-wide; the builder
/// prefixes metadata labels so they cannot collide with terms). The graph
/// has two storage states:
///
///  * **building** — adjacency as per-node vectors, cheap to mutate;
///  * **finalized** — a flat CSR layout (`offsets_`/`targets_`), one
///    contiguous allocation, which the random-walk and BFS hot paths
///    traverse without per-node pointer chasing.
///
/// `Finalize()` switches to CSR preserving per-node neighbor order (so all
/// seeded random choices are unchanged); mutations after finalization fall
/// back to the building representation transparently. `InducedSubgraph`
/// of a finalized graph is finalized. An edge-set provides O(1) duplicate
/// rejection in both states.
class Graph {
 public:
  /// Interns a node; returns the existing id when the label is present.
  NodeId AddNode(const std::string& label, NodeType type = NodeType::kData,
                 CorpusTag corpus = kNoCorpus, int32_t doc_index = -1);

  /// Looks up a node id by label, or kInvalidNode.
  NodeId FindNode(const std::string& label) const;

  /// True when a node with this label exists.
  bool HasNode(const std::string& label) const {
    return FindNode(label) != kInvalidNode;
  }

  /// Adds an undirected edge (no-op for duplicates and self-loops).
  /// Returns true when a new edge was inserted. Reverts a finalized graph
  /// to the building representation.
  bool AddEdge(NodeId a, NodeId b);

  /// True when the edge exists.
  bool HasEdge(NodeId a, NodeId b) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const NodeInfo& node(NodeId id) const {
    TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return nodes_[static_cast<size_t>(id)];
  }

  /// Neighbor view of a node; per-node order is identical in both storage
  /// states (insertion order).
  NeighborSpan Neighbors(NodeId id) const {
    const size_t i = static_cast<size_t>(id);
    TDM_DCHECK(id >= 0 && i < nodes_.size());
    if (finalized_) {
      return NeighborSpan(targets_.data() + offsets_[i],
                          offsets_[i + 1] - offsets_[i]);
    }
    return NeighborSpan(adj_[i].data(), adj_[i].size());
  }

  size_t Degree(NodeId id) const { return Neighbors(id).size(); }

  /// Converts adjacency to the flat CSR layout (idempotent; cheap on an
  /// already-finalized graph). Neighbor order per node is preserved, so
  /// seeded walks are bit-identical before and after.
  void Finalize();

  /// True when adjacency lives in the flat CSR arrays.
  bool finalized() const { return finalized_; }

  /// Ids of all metadata document nodes, optionally restricted to a corpus.
  std::vector<NodeId> MetadataDocNodes(CorpusTag corpus = kNoCorpus) const;

  /// Ids of all data nodes.
  std::vector<NodeId> DataNodes() const;

  /// Returns a new graph containing only nodes with keep[id] == true,
  /// with edges restricted accordingly (ids are re-densified). The result
  /// is finalized when this graph is finalized.
  Graph InducedSubgraph(const std::vector<bool>& keep) const;

  /// Removes non-metadata nodes whose degree is <= 1, repeatedly until a
  /// fixpoint (Alg. 2 cleanup). Returns the compacted graph.
  Graph RemoveSinkNodes() const;

  /// Per-type node counts {data, metadata_doc, metadata_col}.
  struct TypeCounts {
    size_t data = 0;
    size_t metadata_doc = 0;
    size_t metadata_col = 0;
  };
  TypeCounts CountByType() const;

 private:
  static uint64_t EdgeKey(NodeId a, NodeId b) {
    NodeId lo = a < b ? a : b;
    NodeId hi = a < b ? b : a;
    return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
           static_cast<uint32_t>(hi);
  }

  /// Rebuilds the per-node adjacency vectors from CSR (mutation support).
  void Definalize();

  std::vector<NodeInfo> nodes_;
  /// Building-state adjacency; empty once finalized.
  std::vector<std::vector<NodeId>> adj_;
  /// CSR: neighbors of node i are targets_[offsets_[i] .. offsets_[i+1]).
  std::vector<size_t> offsets_;
  std::vector<NodeId> targets_;
  bool finalized_ = false;
  std::unordered_map<std::string, NodeId> label_index_;
  std::unordered_set<uint64_t> edge_set_;
  size_t num_edges_ = 0;
};

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_GRAPH_H_
