#ifndef TDMATCH_GRAPH_GRAPH_H_
#define TDMATCH_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace tdmatch {
namespace graph {

/// Dense node identifier.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Kind of graph node (§II: data vs metadata; columns are metadata too).
enum class NodeType : uint8_t {
  kData = 0,          ///< a term (word n-gram) from either corpus
  kMetadataDoc = 1,   ///< a document: tuple, paragraph, taxonomy concept
  kMetadataColumn = 2 ///< a table attribute
};

/// Which corpus a metadata node belongs to (0 = first, 1 = second,
/// -1 = not applicable, e.g. data nodes shared by both).
using CorpusTag = int8_t;
inline constexpr CorpusTag kNoCorpus = -1;

/// Node payload.
struct NodeInfo {
  std::string label;
  NodeType type = NodeType::kData;
  CorpusTag corpus = kNoCorpus;
  /// Index of the document in its corpus for kMetadataDoc nodes, else -1.
  int32_t doc_index = -1;
};

/// \brief Undirected, unweighted multigraph-free graph over data and
/// metadata nodes (§II).
///
/// Nodes are interned by label (labels are unique graph-wide; the builder
/// prefixes metadata labels so they cannot collide with terms). Adjacency is
/// stored as per-node neighbor vectors with an edge-set for O(1) duplicate
/// rejection, supporting the random-walk access pattern (uniform neighbor
/// choice) directly.
class Graph {
 public:
  /// Interns a node; returns the existing id when the label is present.
  NodeId AddNode(const std::string& label, NodeType type = NodeType::kData,
                 CorpusTag corpus = kNoCorpus, int32_t doc_index = -1);

  /// Looks up a node id by label, or kInvalidNode.
  NodeId FindNode(const std::string& label) const;

  /// True when a node with this label exists.
  bool HasNode(const std::string& label) const {
    return FindNode(label) != kInvalidNode;
  }

  /// Adds an undirected edge (no-op for duplicates and self-loops).
  /// Returns true when a new edge was inserted.
  bool AddEdge(NodeId a, NodeId b);

  /// True when the edge exists.
  bool HasEdge(NodeId a, NodeId b) const;

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const NodeInfo& node(NodeId id) const {
    TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return nodes_[static_cast<size_t>(id)];
  }

  const std::vector<NodeId>& Neighbors(NodeId id) const {
    TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < adj_.size());
    return adj_[static_cast<size_t>(id)];
  }

  size_t Degree(NodeId id) const { return Neighbors(id).size(); }

  /// Ids of all metadata document nodes, optionally restricted to a corpus.
  std::vector<NodeId> MetadataDocNodes(CorpusTag corpus = kNoCorpus) const;

  /// Ids of all data nodes.
  std::vector<NodeId> DataNodes() const;

  /// Returns a new graph containing only nodes with keep[id] == true,
  /// with edges restricted accordingly (ids are re-densified).
  Graph InducedSubgraph(const std::vector<bool>& keep) const;

  /// Removes non-metadata nodes whose degree is <= 1, repeatedly until a
  /// fixpoint (Alg. 2 cleanup). Returns the compacted graph.
  Graph RemoveSinkNodes() const;

  /// Per-type node counts {data, metadata_doc, metadata_col}.
  struct TypeCounts {
    size_t data = 0;
    size_t metadata_doc = 0;
    size_t metadata_col = 0;
  };
  TypeCounts CountByType() const;

 private:
  static uint64_t EdgeKey(NodeId a, NodeId b) {
    NodeId lo = a < b ? a : b;
    NodeId hi = a < b ? b : a;
    return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
           static_cast<uint32_t>(hi);
  }

  std::vector<NodeInfo> nodes_;
  std::vector<std::vector<NodeId>> adj_;
  std::unordered_map<std::string, NodeId> label_index_;
  std::unordered_set<uint64_t> edge_set_;
  size_t num_edges_ = 0;
};

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_GRAPH_H_
