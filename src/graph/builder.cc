#include "graph/builder.h"

#include <algorithm>
#include <unordered_set>

#include "text/tfidf.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace graph {

namespace {

/// Per-document preprocessed view: base tokens per unit. For tables a unit
/// is a cell (n-grams must not cross cell boundaries); for text/taxonomy
/// documents there is a single unit.
struct DocUnits {
  std::vector<std::vector<std::string>> units;
};

/// Tokenizes every document, sharded per document block: each worker owns
/// a contiguous doc range and writes only its own slots, and the
/// preprocessor is stateless-const, so the output is identical for any
/// thread count.
std::vector<DocUnits> PreprocessCorpus(const corpus::Corpus& c,
                                       const text::Preprocessor& pp,
                                       size_t threads) {
  std::vector<DocUnits> out(c.NumDocs());
  if (c.type() == corpus::CorpusType::kTable) {
    const corpus::Table& t = *c.table();
    util::ThreadPool::ParallelFor(
        t.NumRows(), threads,
        [&](size_t begin, size_t end, size_t /*thread_idx*/) {
          for (size_t r = begin; r < end; ++r) {
            out[r].units.resize(t.NumColumns());
            for (size_t col = 0; col < t.NumColumns(); ++col) {
              out[r].units[col] = pp.Tokens(t.cell(r, col));
            }
          }
        });
  } else {
    util::ThreadPool::ParallelFor(
        c.NumDocs(), threads,
        [&](size_t begin, size_t end, size_t /*thread_idx*/) {
          for (size_t i = begin; i < end; ++i) {
            out[i].units.push_back(pp.Tokens(c.DocText(i)));
          }
        });
  }
  return out;
}

size_t CountDistinct(const std::vector<DocUnits>& docs) {
  std::unordered_set<std::string> distinct;
  for (const auto& d : docs) {
    for (const auto& u : d.units) {
      distinct.insert(u.begin(), u.end());
    }
  }
  return distinct.size();
}

/// Applies the TF-IDF top-k filter in place (Fig. 9 baseline).
void ApplyTfIdfFilter(std::vector<DocUnits>* docs, size_t k) {
  text::TfIdf tfidf;
  std::vector<std::vector<std::string>> flat;
  flat.reserve(docs->size());
  for (const auto& d : *docs) {
    std::vector<std::string> all;
    for (const auto& u : d.units) all.insert(all.end(), u.begin(), u.end());
    flat.push_back(std::move(all));
  }
  tfidf.Fit(flat);
  for (size_t i = 0; i < docs->size(); ++i) {
    // Keep tokens that survive the per-document top-k selection.
    auto kept = tfidf.TopK(flat[i], k);
    std::unordered_set<std::string> keep(kept.begin(), kept.end());
    for (auto& u : (*docs)[i].units) {
      std::vector<std::string> filtered;
      for (auto& tok : u) {
        if (keep.count(tok) > 0) filtered.push_back(std::move(tok));
      }
      u = std::move(filtered);
    }
  }
}

}  // namespace

GraphBuilder::GraphBuilder(BuilderOptions options)
    : options_(options), preprocessor_(options.preprocess) {}

std::string GraphBuilder::MetaDocLabel(int corpus_idx, size_t doc) {
  return util::StrFormat("__D%d:%zu__", corpus_idx, doc);
}

std::string GraphBuilder::MetaColumnLabel(int corpus_idx,
                                          const std::string& column) {
  return util::StrFormat("__C%d:%s__", corpus_idx, column.c_str());
}

std::string GraphBuilder::NormalizeLabel(const text::Preprocessor& pp,
                                         const std::string& raw) {
  return util::Join(pp.Tokens(raw), " ");
}

size_t GraphBuilder::DistinctTokens(const corpus::Corpus& c) const {
  auto docs = PreprocessCorpus(c, preprocessor_, options_.threads);
  return CountDistinct(docs);
}

util::Result<Graph> GraphBuilder::Build(const corpus::Corpus& first,
                                        const corpus::Corpus& second) const {
  if (first.NumDocs() == 0 || second.NumDocs() == 0) {
    return util::Status::InvalidArgument("both corpora must be non-empty");
  }
  Graph g;
  const corpus::Corpus* corpora[2] = {&first, &second};
  std::vector<DocUnits> pre[2] = {
      PreprocessCorpus(first, preprocessor_, options_.threads),
      PreprocessCorpus(second, preprocessor_, options_.threads)};

  if (options_.filter == FilterMode::kTfIdf) {
    ApplyTfIdfFilter(&pre[0], options_.tfidf_top_k);
    ApplyTfIdfFilter(&pre[1], options_.tfidf_top_k);
  }

  // §II-B: with the Intersect filter, data nodes are created from the corpus
  // with fewer distinct tokens; the other corpus only links existing nodes.
  int creator = 0;
  if (options_.filter == FilterMode::kIntersect) {
    creator = CountDistinct(pre[0]) <= CountDistinct(pre[1]) ? 0 : 1;
  }

  // Optional numeric bucketing fitted over single tokens of both corpora.
  NumericBucketer bucketer;
  if (options_.bucket_numbers) {
    std::vector<std::string> all_tokens;
    for (int ci = 0; ci < 2; ++ci) {
      for (const auto& d : pre[ci]) {
        for (const auto& u : d.units) {
          all_tokens.insert(all_tokens.end(), u.begin(), u.end());
        }
      }
    }
    if (options_.fixed_buckets > 0) {
      bucketer.FitFixedBuckets(all_tokens, options_.fixed_buckets);
    } else {
      bucketer.Fit(all_tokens);
    }
  }

  const text::NGramGenerator ngrams(options_.preprocess.max_ngram);

  // Canonicalizes a term: bucket numeric singles, then apply the merge map.
  auto canonical = [&](const std::string& term) -> std::string {
    std::string t = term;
    if (options_.bucket_numbers && bucketer.fitted()) {
      t = bucketer.BucketLabel(t);
    }
    if (options_.merge_map != nullptr) {
      auto it = options_.merge_map->find(t);
      if (it != options_.merge_map->end()) t = it->second;
    }
    return t;
  };

  // Per-document work is pipelined in blocks: n-gram generation +
  // canonicalization — the dominant cost of Alg. 1 and a pure
  // per-document map (the bucketer and merge map are read-only here) —
  // runs sharded across the pool for one block of documents, then the
  // graph mutation consumes that block sequentially in canonical document
  // order before the next block's terms are generated. The resulting
  // graph is identical for every thread count, and the materialized term
  // strings never exceed one block.
  constexpr size_t kDocBlock = 2048;

  // Processes one corpus: metadata nodes always; data nodes created when
  // `create_nodes`, otherwise only edges to pre-existing nodes (Alg. 1
  // lines 27-34).
  auto process = [&](int ci, bool create_nodes) {
    const corpus::Corpus& c = *corpora[ci];
    const bool is_table = c.type() == corpus::CorpusType::kTable;
    const bool is_structured =
        c.type() == corpus::CorpusType::kStructuredText;

    // Column metadata nodes (Alg. 1 lines 5-10).
    std::vector<NodeId> col_nodes;
    if (is_table) {
      const corpus::Table& t = *c.table();
      for (const auto& col : t.column_names()) {
        col_nodes.push_back(g.AddNode(MetaColumnLabel(ci, col),
                                      NodeType::kMetadataColumn,
                                      static_cast<CorpusTag>(ci)));
      }
    }

    // block_terms[i][u]: canonical terms of unit u of doc block_start + i.
    std::vector<std::vector<std::vector<std::string>>> block_terms;
    for (size_t block_start = 0; block_start < c.NumDocs();
         block_start += kDocBlock) {
      const size_t block_end = std::min(c.NumDocs(), block_start + kDocBlock);
      block_terms.assign(block_end - block_start, {});
      util::ThreadPool::ParallelFor(
          block_end - block_start, options_.threads,
          [&](size_t begin, size_t end, size_t /*thread_idx*/) {
            for (size_t i = begin; i < end; ++i) {
              const DocUnits& units = pre[ci][block_start + i];
              block_terms[i].resize(units.units.size());
              for (size_t u = 0; u < units.units.size(); ++u) {
                for (const std::string& raw_term :
                     ngrams.GenerateUnique(units.units[u])) {
                  std::string term = canonical(raw_term);
                  if (term.empty()) continue;
                  block_terms[i][u].push_back(std::move(term));
                }
              }
            }
          });

      for (size_t d = block_start; d < block_end; ++d) {
        NodeId doc_node =
            g.AddNode(MetaDocLabel(ci, d), NodeType::kMetadataDoc,
                      static_cast<CorpusTag>(ci), static_cast<int32_t>(d));

        // Structured text: connect to parent metadata node (lines 12-15).
        if (is_structured && options_.connect_structured_parents) {
          int32_t parent = c.ParentOf(d);
          if (parent >= 0) {
            NodeId pn =
                g.FindNode(MetaDocLabel(ci, static_cast<size_t>(parent)));
            if (pn != kInvalidNode) g.AddEdge(doc_node, pn);
          }
        }

        const auto& units = block_terms[d - block_start];
        for (size_t u = 0; u < units.size(); ++u) {
          for (const std::string& term : units[u]) {
            NodeId tn;
            if (create_nodes) {
              tn = g.AddNode(term, NodeType::kData);
            } else {
              tn = g.FindNode(term);
              if (tn == kInvalidNode) continue;  // filtered out (§II-B)
            }
            g.AddEdge(doc_node, tn);
            if (is_table) g.AddEdge(col_nodes[u], tn);
          }
        }
      }
    }
  };

  if (options_.filter == FilterMode::kIntersect) {
    process(creator, /*create_nodes=*/true);
    process(1 - creator, /*create_nodes=*/false);
  } else {
    process(0, /*create_nodes=*/true);
    process(1, /*create_nodes=*/true);
  }
  // Hand downstream consumers (walker, BFS) the flat CSR adjacency.
  g.Finalize();
  return g;
}

}  // namespace graph
}  // namespace tdmatch
