#ifndef TDMATCH_GRAPH_STATS_H_
#define TDMATCH_GRAPH_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace tdmatch {
namespace graph {

/// Aggregate structural statistics of a graph (§V reports node/edge counts,
/// density and metadata-path lengths when discussing the scenarios).
struct GraphStatistics {
  size_t nodes = 0;
  size_t edges = 0;
  size_t data_nodes = 0;
  size_t metadata_doc_nodes = 0;
  size_t metadata_column_nodes = 0;
  double avg_degree = 0.0;
  size_t max_degree = 0;
  size_t isolated_nodes = 0;
  size_t connected_components = 0;
  /// Average shortest-path length between sampled cross-corpus metadata
  /// pairs (unreachable pairs excluded) and the fraction of sampled pairs
  /// that were reachable.
  double avg_metadata_distance = 0.0;
  double metadata_reachability = 0.0;
};

/// \brief Computes GraphStatistics; metadata distances are estimated from
/// `metadata_pair_samples` random cross-corpus pairs.
GraphStatistics ComputeStatistics(const Graph& g,
                                  size_t metadata_pair_samples = 64,
                                  uint64_t seed = 7);

/// Renders the statistics as a human-readable multi-line string.
std::string FormatStatistics(const GraphStatistics& stats);

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_STATS_H_
