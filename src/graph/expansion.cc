#include "graph/expansion.h"

namespace tdmatch {
namespace graph {

Graph ExpandGraph(const Graph& g, const kb::ExternalResource& resource,
                  const ExpansionOptions& options,
                  const LabelNormalizer& normalize) {
  Graph out;
  // Copy nodes (ids are preserved because insertion order is identical).
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    const NodeInfo& n = g.node(static_cast<NodeId>(i));
    out.AddNode(n.label, n.type, n.corpus, n.doc_index);
  }
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    for (NodeId nb : g.Neighbors(static_cast<NodeId>(i))) {
      if (nb > static_cast<NodeId>(i)) {
        out.AddEdge(static_cast<NodeId>(i), nb);
      }
    }
  }

  // Alg. 2 lines 2-12: fetch relations for every (pre-existing) data node.
  const size_t original_nodes = g.NumNodes();
  for (size_t i = 0; i < original_nodes; ++i) {
    const NodeInfo& n = g.node(static_cast<NodeId>(i));
    if (n.type != NodeType::kData) continue;
    std::vector<std::string> related = resource.Related(n.label);
    size_t added = 0;
    for (const std::string& m : related) {
      if (added >= options.max_relations_per_node) break;
      const std::string label = normalize ? normalize(m) : m;
      if (label.empty() || label == n.label) continue;
      NodeId mn = out.AddNode(label, NodeType::kData);
      if (out.AddEdge(static_cast<NodeId>(i), mn)) ++added;
    }
  }

  // Alg. 2 lines 13-17: prune sink nodes.
  if (options.remove_sinks) {
    return out.RemoveSinkNodes();
  }
  return out;
}

}  // namespace graph
}  // namespace tdmatch
