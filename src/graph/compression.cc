#include "graph/compression.h"

#include <algorithm>
#include <unordered_map>

#include "graph/bfs.h"

namespace tdmatch {
namespace graph {

namespace {

/// Copies node `id` of `src` into `dst` (interning by label) and returns the
/// new id.
NodeId CopyNode(const Graph& src, NodeId id, Graph* dst) {
  const NodeInfo& n = src.node(id);
  return dst->AddNode(n.label, n.type, n.corpus, n.doc_index);
}

/// Adds every edge of `edges` (given in `src` ids) to `dst`.
void CopyEdges(const Graph& src,
               const std::vector<std::pair<NodeId, NodeId>>& edges,
               Graph* dst) {
  for (const auto& [a, b] : edges) {
    NodeId na = CopyNode(src, a, dst);
    NodeId nb = CopyNode(src, b, dst);
    dst->AddEdge(na, nb);
  }
}

void CopyPath(const Graph& src, const std::vector<NodeId>& path, Graph* dst) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    NodeId a = CopyNode(src, path[i], dst);
    NodeId b = CopyNode(src, path[i + 1], dst);
    dst->AddEdge(a, b);
  }
  if (path.size() == 1) CopyNode(src, path[0], dst);
}

}  // namespace

void ConnectAllMetadata(const Graph& full, Graph* compressed,
                        util::Rng* rng) {
  std::vector<NodeId> meta0 = full.MetadataDocNodes(0);
  std::vector<NodeId> meta1 = full.MetadataDocNodes(1);
  if (meta0.empty() || meta1.empty()) return;
  auto ensure = [&](NodeId v, const std::vector<NodeId>& others) {
    const std::string& label = full.node(v).label;
    NodeId in_cg = compressed->FindNode(label);
    if (in_cg != kInvalidNode && compressed->Degree(in_cg) > 0) return;
    // Try a few random partners until one is reachable.
    for (int attempt = 0; attempt < 8; ++attempt) {
      NodeId partner = rng->Choice(others);
      std::vector<NodeId> path = Bfs::ShortestPath(full, v, partner);
      if (!path.empty()) {
        CopyPath(full, path, compressed);
        return;
      }
    }
    // Disconnected in the full graph too: keep the bare node.
    CopyNode(full, v, compressed);
  };
  for (NodeId v : meta0) ensure(v, meta1);
  for (NodeId v : meta1) ensure(v, meta0);
}

Graph MspCompress(const Graph& g, double beta, util::Rng* rng) {
  Graph cg;
  std::vector<NodeId> meta0 = g.MetadataDocNodes(0);
  std::vector<NodeId> meta1 = g.MetadataDocNodes(1);
  if (meta0.empty() || meta1.empty()) return cg;
  const size_t iterations =
      static_cast<size_t>(beta * static_cast<double>(g.NumNodes()));
  for (size_t i = 0; i < iterations; ++i) {
    NodeId first = rng->Choice(meta0);
    NodeId second = rng->Choice(meta1);
    auto dag_edges = Bfs::ShortestPathDagEdges(g, first, second);
    CopyEdges(g, dag_edges, &cg);
  }
  ConnectAllMetadata(g, &cg, rng);
  return cg;
}

Graph SspCompress(const Graph& g, double beta, util::Rng* rng) {
  Graph cg;
  if (g.NumNodes() == 0) return cg;
  const size_t iterations =
      static_cast<size_t>(beta * static_cast<double>(g.NumNodes()));
  const NodeId n = static_cast<NodeId>(g.NumNodes());
  for (size_t i = 0; i < iterations; ++i) {
    NodeId a = static_cast<NodeId>(rng->UniformInt(static_cast<uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng->UniformInt(static_cast<uint64_t>(n)));
    if (a == b) continue;
    std::vector<NodeId> path = Bfs::ShortestPath(g, a, b);
    CopyPath(g, path, &cg);
  }
  ConnectAllMetadata(g, &cg, rng);
  return cg;
}

Graph SsummCompress(const Graph& g, double ratio, util::Rng* rng) {
  const size_t target =
      std::max<size_t>(1, static_cast<size_t>(
                              ratio * static_cast<double>(g.NumNodes())));
  // Greedy merge of data nodes with equal coarse neighborhood signatures.
  // Pass 1 signature: hash of the full sorted neighbor list (lossless-ish).
  // Pass 2 signature: (degree bucket, min neighbor) — aggressively lossy.
  std::vector<NodeId> owner(g.NumNodes());
  for (size_t i = 0; i < g.NumNodes(); ++i) owner[i] = static_cast<NodeId>(i);

  auto count_groups = [&]() {
    std::unordered_map<NodeId, size_t> uniq;
    for (size_t i = 0; i < g.NumNodes(); ++i) ++uniq[owner[i]];
    return uniq.size();
  };

  auto merge_by = [&](auto&& signature) {
    std::unordered_map<uint64_t, NodeId> rep;
    for (size_t i = 0; i < g.NumNodes(); ++i) {
      NodeId id = static_cast<NodeId>(i);
      if (g.node(id).type != NodeType::kData) continue;
      if (owner[i] != id) continue;  // already merged
      uint64_t sig = signature(id);
      auto [it, inserted] = rep.emplace(sig, id);
      if (!inserted) owner[i] = it->second;
    }
  };

  merge_by([&](NodeId id) {
    std::vector<NodeId> nbs = g.Neighbors(id).ToVector();
    std::sort(nbs.begin(), nbs.end());
    uint64_t h = 1469598103934665603ULL;
    for (NodeId nb : nbs) {
      h ^= static_cast<uint64_t>(nb) + 0x9e3779b9ULL;
      h *= 1099511628211ULL;
    }
    return h;
  });

  if (count_groups() > target) {
    merge_by([&](NodeId id) {
      const auto nbs = g.Neighbors(id);
      uint64_t deg_bucket = 0;
      size_t d = nbs.size();
      while (d > 1) {
        d >>= 1;
        ++deg_bucket;
      }
      NodeId min_nb = nbs.empty() ? kInvalidNode
                                  : *std::min_element(nbs.begin(), nbs.end());
      return (deg_bucket << 32) ^ static_cast<uint64_t>(
                                      static_cast<uint32_t>(min_nb));
    });
  }

  // If still above target, randomly fold remaining data supernodes together.
  {
    std::vector<NodeId> reps;
    for (size_t i = 0; i < g.NumNodes(); ++i) {
      if (owner[i] == static_cast<NodeId>(i) &&
          g.node(static_cast<NodeId>(i)).type == NodeType::kData) {
        reps.push_back(static_cast<NodeId>(i));
      }
    }
    size_t groups = count_groups();
    rng->Shuffle(&reps);
    // Fold surplus supernodes into the first representative until the
    // target is met (metadata nodes are never in `reps`).
    for (size_t j = 1; groups > target && j < reps.size(); ++j) {
      owner[static_cast<size_t>(reps[j])] = reps[0];
      --groups;
    }
  }

  // Path-compress ownership.
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    NodeId cur = static_cast<NodeId>(i);
    while (owner[static_cast<size_t>(cur)] != cur) {
      cur = owner[static_cast<size_t>(cur)];
    }
    owner[i] = cur;
  }

  // Build the summary graph: supernodes keep the representative's label.
  Graph out;
  std::unordered_map<NodeId, NodeId> remap;
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    NodeId rep = owner[i];
    if (remap.count(rep) == 0) {
      remap[rep] = CopyNode(g, rep, &out);
    }
  }
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    for (NodeId nb : g.Neighbors(static_cast<NodeId>(i))) {
      if (nb <= static_cast<NodeId>(i)) continue;
      NodeId a = remap[owner[i]];
      NodeId b = remap[owner[static_cast<size_t>(nb)]];
      if (a != b) out.AddEdge(a, b);
    }
  }
  return out;
}

Graph RandomNodeSample(const Graph& g, double ratio, util::Rng* rng) {
  std::vector<bool> keep(g.NumNodes(), false);
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    const NodeInfo& n = g.node(static_cast<NodeId>(i));
    keep[i] = n.type != NodeType::kData || rng->Bernoulli(ratio);
  }
  return g.InducedSubgraph(keep);
}

}  // namespace graph
}  // namespace tdmatch
