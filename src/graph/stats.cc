#include "graph/stats.h"

#include <algorithm>

#include "graph/bfs.h"
#include "util/string_util.h"

namespace tdmatch {
namespace graph {

GraphStatistics ComputeStatistics(const Graph& g,
                                  size_t metadata_pair_samples,
                                  uint64_t seed) {
  GraphStatistics s;
  s.nodes = g.NumNodes();
  s.edges = g.NumEdges();
  auto counts = g.CountByType();
  s.data_nodes = counts.data;
  s.metadata_doc_nodes = counts.metadata_doc;
  s.metadata_column_nodes = counts.metadata_col;

  size_t degree_sum = 0;
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    const size_t d = g.Degree(static_cast<NodeId>(i));
    degree_sum += d;
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.isolated_nodes;
  }
  s.avg_degree = s.nodes == 0 ? 0.0
                              : static_cast<double>(degree_sum) /
                                    static_cast<double>(s.nodes);

  // Connected components via repeated BFS.
  std::vector<bool> seen(g.NumNodes(), false);
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    if (seen[i]) continue;
    ++s.connected_components;
    auto dist = Bfs::Distances(g, static_cast<NodeId>(i));
    for (size_t j = 0; j < dist.size(); ++j) {
      if (dist[j] != kUnreachable) seen[j] = true;
    }
  }

  // Sampled cross-corpus metadata distances.
  auto meta0 = g.MetadataDocNodes(0);
  auto meta1 = g.MetadataDocNodes(1);
  if (!meta0.empty() && !meta1.empty() && metadata_pair_samples > 0) {
    util::Rng rng(seed);
    double total = 0.0;
    size_t reachable = 0;
    for (size_t k = 0; k < metadata_pair_samples; ++k) {
      NodeId a = rng.Choice(meta0);
      NodeId b = rng.Choice(meta1);
      int32_t d = Bfs::Distance(g, a, b);
      if (d != kUnreachable) {
        total += d;
        ++reachable;
      }
    }
    s.metadata_reachability = static_cast<double>(reachable) /
                              static_cast<double>(metadata_pair_samples);
    s.avg_metadata_distance =
        reachable == 0 ? 0.0 : total / static_cast<double>(reachable);
  }
  return s;
}

std::string FormatStatistics(const GraphStatistics& s) {
  return util::StrFormat(
      "nodes=%zu (data=%zu, docs=%zu, cols=%zu) edges=%zu\n"
      "avg_degree=%.2f max_degree=%zu isolated=%zu components=%zu\n"
      "metadata: avg_distance=%.2f reachability=%.2f",
      s.nodes, s.data_nodes, s.metadata_doc_nodes, s.metadata_column_nodes,
      s.edges, s.avg_degree, s.max_degree, s.isolated_nodes,
      s.connected_components, s.avg_metadata_distance,
      s.metadata_reachability);
}

}  // namespace graph
}  // namespace tdmatch
