#ifndef TDMATCH_GRAPH_COMPRESSION_H_
#define TDMATCH_GRAPH_COMPRESSION_H_

#include "graph/graph.h"
#include "util/rng.h"

namespace tdmatch {
namespace graph {

/// \brief Metadata-Shortest-Path compression (Algorithm 3, "MSP").
///
/// Runs β·|V| iterations; each samples a metadata document node from each
/// corpus and copies *all* shortest paths between them (the s→t shortest-
/// path DAG) into the output. Afterwards every metadata node is guaranteed
/// to be connected by at least one shortest path.
Graph MspCompress(const Graph& g, double beta, util::Rng* rng);

/// \brief SSP baseline (Rezvanian & Meybodi): like MSP but node pairs are
/// sampled uniformly from *all* nodes and only one concrete shortest path
/// per pair is kept. Metadata nodes are still force-connected at the end so
/// the matching task remains well-defined.
Graph SspCompress(const Graph& g, double beta, util::Rng* rng);

/// \brief SSumm-style summarization baseline (Lee et al., SIGKDD'20,
/// simplified): data nodes are greedily merged into super-nodes by
/// neighborhood similarity until only `ratio`·|V| nodes remain; parallel
/// edges collapse (sparsification). Type-agnostic on purpose — the paper's
/// point is that generic summarizers ignore the metadata/data distinction
/// and hurt matching quality.
Graph SsummCompress(const Graph& g, double ratio, util::Rng* rng);

/// \brief Uniform random node sampling baseline (keeps all metadata nodes;
/// keeps `ratio` of the data nodes).
Graph RandomNodeSample(const Graph& g, double ratio, util::Rng* rng);

/// Ensures every metadata doc node of either corpus has at least one
/// shortest path (in `full`) present in `compressed`; called by the
/// compressors, exposed for tests.
void ConnectAllMetadata(const Graph& full, Graph* compressed,
                        util::Rng* rng);

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_COMPRESSION_H_
