#include "graph/bucketing.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace tdmatch {
namespace graph {

namespace {
std::vector<double> ParseNumerics(const std::vector<std::string>& values) {
  std::vector<double> nums;
  for (const auto& v : values) {
    double d = 0.0;
    if (util::IsNumeric(v) && util::ParseDouble(v, &d)) nums.push_back(d);
  }
  return nums;
}
}  // namespace

void NumericBucketer::Fit(const std::vector<std::string>& values) {
  std::vector<double> nums = ParseNumerics(values);
  if (nums.empty()) {
    fitted_ = false;
    return;
  }
  std::sort(nums.begin(), nums.end());
  min_ = nums.front();
  max_ = nums.back();
  fitted_ = true;
  const size_t n = nums.size();
  if (n < 4 || min_ == max_) {
    width_ = std::max(1.0, (max_ - min_));
    return;
  }
  // Freedman–Diaconis: width = 2 * IQR / n^(1/3).
  auto quantile = [&](double q) {
    double pos = q * static_cast<double>(n - 1);
    size_t lo = static_cast<size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= n) return nums[n - 1];
    return nums[lo] * (1.0 - frac) + nums[lo + 1] * frac;
  };
  const double iqr = quantile(0.75) - quantile(0.25);
  double w = 2.0 * iqr / std::cbrt(static_cast<double>(n));
  if (w <= 0.0) {
    // Degenerate IQR: fall back to ~sqrt(n) buckets.
    w = (max_ - min_) / std::max(1.0, std::sqrt(static_cast<double>(n)));
  }
  width_ = w > 0.0 ? w : 1.0;
}

void NumericBucketer::FitFixedBuckets(const std::vector<std::string>& values,
                                      size_t num_buckets) {
  std::vector<double> nums = ParseNumerics(values);
  if (nums.empty() || num_buckets == 0) {
    fitted_ = false;
    return;
  }
  auto [mn, mx] = std::minmax_element(nums.begin(), nums.end());
  min_ = *mn;
  max_ = *mx;
  fitted_ = true;
  width_ = max_ > min_ ? (max_ - min_) / static_cast<double>(num_buckets)
                       : 1.0;
}

std::string NumericBucketer::BucketLabel(const std::string& value) const {
  double d = 0.0;
  if (!fitted_ || !util::IsNumeric(value) || !util::ParseDouble(value, &d)) {
    return value;
  }
  double idx = std::floor((d - min_) / width_);
  if (idx < 0) idx = 0;
  const double max_idx =
      std::max(0.0, std::floor((max_ - min_) / width_));
  if (idx > max_idx) idx = max_idx;
  return util::StrFormat("num[%lld]", static_cast<long long>(idx));
}

size_t NumericBucketer::NumBuckets() const {
  if (!fitted_) return 0;
  return static_cast<size_t>(std::floor((max_ - min_) / width_)) + 1;
}

}  // namespace graph
}  // namespace tdmatch
