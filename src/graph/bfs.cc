#include "graph/bfs.h"

#include <algorithm>
#include <queue>

namespace tdmatch {
namespace graph {

std::vector<int32_t> Bfs::Distances(const Graph& g, NodeId source) {
  std::vector<int32_t> dist(g.NumNodes(), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    int32_t dv = dist[static_cast<size_t>(v)];
    for (NodeId nb : g.Neighbors(v)) {
      if (dist[static_cast<size_t>(nb)] == kUnreachable) {
        dist[static_cast<size_t>(nb)] = dv + 1;
        q.push(nb);
      }
    }
  }
  return dist;
}

int32_t Bfs::Distance(const Graph& g, NodeId source, NodeId target) {
  if (source == target) return 0;
  std::vector<int32_t> dist(g.NumNodes(), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    int32_t dv = dist[static_cast<size_t>(v)];
    for (NodeId nb : g.Neighbors(v)) {
      if (dist[static_cast<size_t>(nb)] == kUnreachable) {
        if (nb == target) return dv + 1;
        dist[static_cast<size_t>(nb)] = dv + 1;
        q.push(nb);
      }
    }
  }
  return kUnreachable;
}

std::vector<std::pair<NodeId, NodeId>> Bfs::ShortestPathDagEdges(
    const Graph& g, NodeId source, NodeId target) {
  std::vector<std::pair<NodeId, NodeId>> out;
  if (source == target) return out;
  // Forward BFS from source, bounded by the target's level.
  std::vector<int32_t> dist(g.NumNodes(), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(source)] = 0;
  q.push(source);
  int32_t target_dist = kUnreachable;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    int32_t dv = dist[static_cast<size_t>(v)];
    if (target_dist != kUnreachable && dv >= target_dist) break;
    for (NodeId nb : g.Neighbors(v)) {
      if (dist[static_cast<size_t>(nb)] == kUnreachable) {
        dist[static_cast<size_t>(nb)] = dv + 1;
        if (nb == target) target_dist = dv + 1;
        q.push(nb);
      }
    }
  }
  if (target_dist == kUnreachable) return out;

  // Walk backwards from target: an edge (u, v) with dist[u] + 1 == dist[v]
  // lies on a shortest path iff v is reachable backwards from target.
  std::vector<bool> on_path(g.NumNodes(), false);
  on_path[static_cast<size_t>(target)] = true;
  std::queue<NodeId> back;
  back.push(target);
  while (!back.empty()) {
    NodeId v = back.front();
    back.pop();
    int32_t dv = dist[static_cast<size_t>(v)];
    for (NodeId nb : g.Neighbors(v)) {
      if (dist[static_cast<size_t>(nb)] == dv - 1) {
        out.emplace_back(nb, v);
        if (!on_path[static_cast<size_t>(nb)]) {
          on_path[static_cast<size_t>(nb)] = true;
          back.push(nb);
        }
      }
    }
  }
  return out;
}

std::vector<NodeId> Bfs::ShortestPath(const Graph& g, NodeId source,
                                      NodeId target) {
  if (source == target) return {source};
  std::vector<NodeId> parent(g.NumNodes(), kInvalidNode);
  std::vector<int32_t> dist(g.NumNodes(), kUnreachable);
  std::queue<NodeId> q;
  dist[static_cast<size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    for (NodeId nb : g.Neighbors(v)) {
      if (dist[static_cast<size_t>(nb)] == kUnreachable) {
        dist[static_cast<size_t>(nb)] = dist[static_cast<size_t>(v)] + 1;
        parent[static_cast<size_t>(nb)] = v;
        if (nb == target) {
          std::vector<NodeId> path;
          for (NodeId cur = target; cur != kInvalidNode;
               cur = parent[static_cast<size_t>(cur)]) {
            path.push_back(cur);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        q.push(nb);
      }
    }
  }
  return {};
}

}  // namespace graph
}  // namespace tdmatch
