#ifndef TDMATCH_GRAPH_BUCKETING_H_
#define TDMATCH_GRAPH_BUCKETING_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace tdmatch {
namespace graph {

/// \brief Equal-width binning of numeric values with the Freedman–Diaconis
/// rule (§II-C "Bucketing").
///
/// Numeric data nodes ("1423", "1427.0") that fall into the same bucket are
/// merged into one node labeled `num[<idx>]`, shortening paths between
/// metadata nodes that mention nearby quantities (the CoronaCheck case).
class NumericBucketer {
 public:
  /// Fits bucket boundaries from the numeric values found in `values`
  /// (non-numeric strings are ignored). With fewer than 4 numeric values or
  /// zero IQR, a single-bucket fallback of fixed width is used.
  void Fit(const std::vector<std::string>& values);

  /// Overrides the Freedman–Diaconis width with a fixed bucket count
  /// (the paper reports its best CoronaCheck result with 7 equal-width
  /// buckets).
  void FitFixedBuckets(const std::vector<std::string>& values,
                       size_t num_buckets);

  /// True when Fit has seen at least one numeric value.
  bool fitted() const { return fitted_; }

  /// Bucket label for a numeric string, or the input unchanged when it is
  /// not numeric / the bucketer is not fitted.
  std::string BucketLabel(const std::string& value) const;

  /// Number of buckets implied by the fitted width.
  size_t NumBuckets() const;

  double bucket_width() const { return width_; }
  double min_value() const { return min_; }

 private:
  bool fitted_ = false;
  double min_ = 0.0;
  double max_ = 0.0;
  double width_ = 1.0;
};

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_BUCKETING_H_
