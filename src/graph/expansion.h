#ifndef TDMATCH_GRAPH_EXPANSION_H_
#define TDMATCH_GRAPH_EXPANSION_H_

#include <functional>
#include <string>

#include "graph/graph.h"
#include "kb/external_resource.h"

namespace tdmatch {
namespace graph {

/// Options for graph expansion (Alg. 2).
struct ExpansionOptions {
  /// Cap on relations fetched per data node; guards against hub entities
  /// ("more than 800 relations for Quentin Tarantino").
  size_t max_relations_per_node = 64;
  /// Remove degree-<=1 non-metadata nodes afterwards (Alg. 2 lines 13-17).
  bool remove_sinks = true;
};

/// Normalizes a KB surface label into the graph's term space (same function
/// the builder used, so KB nodes unify with existing data nodes).
using LabelNormalizer = std::function<std::string(const std::string&)>;

/// \brief Expands the graph with an external resource (Algorithm 2): for
/// every data node, all its KB relations become new nodes and edges; sink
/// nodes are pruned afterwards.
///
/// Returns a new graph (input is not modified).
Graph ExpandGraph(const Graph& g, const kb::ExternalResource& resource,
                  const ExpansionOptions& options,
                  const LabelNormalizer& normalize);

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_EXPANSION_H_
