#ifndef TDMATCH_GRAPH_BUILDER_H_
#define TDMATCH_GRAPH_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.h"
#include "graph/bucketing.h"
#include "graph/graph.h"
#include "text/preprocess.h"
#include "util/result.h"

namespace tdmatch {
namespace graph {

/// Data-node filtering strategy (§II-B and Fig. 9 ablation).
enum class FilterMode {
  /// No filtering: data nodes from both corpora ("Normal" in Fig. 9).
  kNone,
  /// Paper default ("Intersect"): nodes created from the corpus with fewer
  /// distinct tokens; the other corpus only connects to existing nodes.
  kIntersect,
  /// TF-IDF baseline: keep the top-k TF-IDF tokens per document, then build
  /// nodes from both corpora.
  kTfIdf,
};

/// A label→canonical-label mapping produced by the synonym-merge step
/// (§II-C); computed externally (embed::PretrainedLexicon) to keep this
/// module independent of the embedding code.
using MergeMap = std::unordered_map<std::string, std::string>;

/// Options for graph creation (Alg. 1 + §II-B/C/D).
struct BuilderOptions {
  text::PreprocessOptions preprocess;
  FilterMode filter = FilterMode::kIntersect;
  /// k for the TF-IDF filter baseline.
  size_t tfidf_top_k = 10;
  /// Merge numeric data nodes with Freedman–Diaconis equal-width buckets.
  bool bucket_numbers = false;
  /// If > 0, use this many equal-width buckets instead of Freedman–Diaconis.
  size_t fixed_buckets = 0;
  /// Optional synonym/variant merge map (term → canonical term).
  const MergeMap* merge_map = nullptr;
  /// Add edges between parent/child metadata nodes of structured texts.
  bool connect_structured_parents = true;
  /// Worker threads for the per-document preprocessing / term-generation
  /// phase of Build (Alg. 1's dominant cost). Node and edge insertion
  /// stays sequential in canonical document order, so the built graph —
  /// node ids, labels, neighbor order — is identical for every thread
  /// count.
  size_t threads = 4;
};

/// \brief Builds the joint graph over two corpora (Algorithm 1).
///
/// Metadata-node labels are prefixed so they can never collide with term
/// labels; use MetaDocLabel / MetaColumnLabel to address them.
class GraphBuilder {
 public:
  explicit GraphBuilder(BuilderOptions options = {});

  /// Runs Algorithm 1 over the two corpora of `scenario` (first, second).
  util::Result<Graph> Build(const corpus::Corpus& first,
                            const corpus::Corpus& second) const;

  /// Label of the metadata node of document `doc` in corpus `corpus_idx`.
  static std::string MetaDocLabel(int corpus_idx, size_t doc);

  /// Label of the metadata node of column `column` of corpus `corpus_idx`.
  static std::string MetaColumnLabel(int corpus_idx,
                                     const std::string& column);

  /// The canonical term-normalization used across the system (preprocess a
  /// raw label and join its stemmed tokens) — KB keys and expansion labels
  /// go through this too so everything lines up.
  static std::string NormalizeLabel(const text::Preprocessor& pp,
                                    const std::string& raw);

  const BuilderOptions& options() const { return options_; }
  const text::Preprocessor& preprocessor() const { return preprocessor_; }

 private:
  /// Distinct base-token count of a corpus (decides creation order for
  /// kIntersect).
  size_t DistinctTokens(const corpus::Corpus& c) const;

  BuilderOptions options_;
  text::Preprocessor preprocessor_;
};

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_BUILDER_H_
