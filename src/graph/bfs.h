#ifndef TDMATCH_GRAPH_BFS_H_
#define TDMATCH_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tdmatch {
namespace graph {

/// Distance value for unreachable nodes.
inline constexpr int32_t kUnreachable = -1;

/// \brief Breadth-first-search utilities shared by compression (Alg. 3) and
/// the test suite.
class Bfs {
 public:
  /// Hop distances from `source` to every node (kUnreachable when
  /// disconnected).
  static std::vector<int32_t> Distances(const Graph& g, NodeId source);

  /// Hop distance between two nodes, kUnreachable when disconnected.
  /// Early-exits once `target` is settled.
  static int32_t Distance(const Graph& g, NodeId source, NodeId target);

  /// Edges lying on at least one shortest path from `source` to `target`
  /// (the shortest-path DAG restricted to s→t). Adding *these* edges to the
  /// compressed graph is exactly "add all shortest paths" of Alg. 3 without
  /// enumerating the (possibly exponential) path set.
  /// Returns an empty vector when disconnected.
  static std::vector<std::pair<NodeId, NodeId>> ShortestPathDagEdges(
      const Graph& g, NodeId source, NodeId target);

  /// One concrete shortest path (node sequence) or empty when disconnected.
  static std::vector<NodeId> ShortestPath(const Graph& g, NodeId source,
                                          NodeId target);
};

}  // namespace graph
}  // namespace tdmatch

#endif  // TDMATCH_GRAPH_BFS_H_
