#include "corpus/table.h"

#include <unordered_set>

#include "util/string_util.h"

namespace tdmatch {
namespace corpus {

Table::Table(std::string name, std::vector<std::string> column_names)
    : name_(std::move(name)), column_names_(std::move(column_names)) {}

util::Status Table::AddRow(std::vector<std::string> row) {
  if (row.size() != column_names_.size()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "row has %zu values, table '%s' has %zu columns", row.size(),
        name_.c_str(), column_names_.size()));
  }
  rows_.push_back(std::move(row));
  return util::Status::OK();
}

util::Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return i;
  }
  return util::Status::NotFound("no column named " + name);
}

util::Result<Table> Table::DropColumns(
    const std::vector<std::string>& names) const {
  std::unordered_set<size_t> drop;
  for (const auto& n : names) {
    TDM_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(n));
    drop.insert(idx);
  }
  std::vector<std::string> kept_names;
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (drop.count(i) == 0) kept_names.push_back(column_names_[i]);
  }
  Table out(name_, std::move(kept_names));
  for (const auto& row : rows_) {
    std::vector<std::string> kept;
    kept.reserve(row.size());
    for (size_t i = 0; i < row.size(); ++i) {
      if (drop.count(i) == 0) kept.push_back(row[i]);
    }
    TDM_RETURN_NOT_OK(out.AddRow(std::move(kept)));
  }
  return out;
}

std::string Table::TupleText(size_t row) const {
  std::string out;
  for (size_t c = 0; c < column_names_.size(); ++c) {
    if (c > 0) out.push_back(' ');
    out += rows_[row][c];
  }
  return out;
}

std::string Table::SerializeTuple(size_t row) const {
  std::string out;
  for (size_t c = 0; c < column_names_.size(); ++c) {
    if (c > 0) out.push_back(' ');
    out += "[COL] ";
    out += column_names_[c];
    out += " [VAL] ";
    out += rows_[row][c];
  }
  return out;
}

}  // namespace corpus
}  // namespace tdmatch
