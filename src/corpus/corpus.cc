#include "corpus/corpus.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace tdmatch {
namespace corpus {

const char* CorpusTypeToString(CorpusType t) {
  switch (t) {
    case CorpusType::kText:
      return "text";
    case CorpusType::kTable:
      return "table";
    case CorpusType::kStructuredText:
      return "structured";
  }
  return "?";
}

Corpus Corpus::FromTexts(std::string name, std::vector<TextDoc> docs) {
  Corpus c;
  c.type_ = CorpusType::kText;
  c.name_ = std::move(name);
  c.texts_ = std::make_shared<const std::vector<TextDoc>>(std::move(docs));
  return c;
}

Corpus Corpus::FromTable(Table table) {
  Corpus c;
  c.type_ = CorpusType::kTable;
  c.name_ = table.name();
  c.table_ = std::make_shared<const Table>(std::move(table));
  return c;
}

Corpus Corpus::FromTaxonomy(std::string name, Taxonomy taxonomy) {
  Corpus c;
  c.type_ = CorpusType::kStructuredText;
  c.name_ = std::move(name);
  c.taxonomy_ = std::make_shared<const Taxonomy>(std::move(taxonomy));
  return c;
}

size_t Corpus::NumDocs() const {
  switch (type_) {
    case CorpusType::kText:
      return texts_->size();
    case CorpusType::kTable:
      return table_->NumRows();
    case CorpusType::kStructuredText:
      return taxonomy_->NumConcepts();
  }
  return 0;
}

std::string Corpus::DocId(size_t i) const {
  switch (type_) {
    case CorpusType::kText:
      return (*texts_)[i].id;
    case CorpusType::kTable:
      return util::StrFormat("%s#%zu", name_.c_str(), i);
    case CorpusType::kStructuredText:
      return util::StrFormat("%s@%zu", name_.c_str(), i);
  }
  return "";
}

std::string Corpus::DocText(size_t i) const {
  switch (type_) {
    case CorpusType::kText:
      return (*texts_)[i].text;
    case CorpusType::kTable:
      return table_->TupleText(i);
    case CorpusType::kStructuredText:
      return taxonomy_->label(static_cast<ConceptId>(i));
  }
  return "";
}

int32_t Corpus::ParentOf(size_t i) const {
  if (type_ != CorpusType::kStructuredText) return -1;
  return taxonomy_->parent(static_cast<ConceptId>(i));
}

}  // namespace corpus
}  // namespace tdmatch
