#ifndef TDMATCH_CORPUS_LOADER_H_
#define TDMATCH_CORPUS_LOADER_H_

#include <string>

#include "corpus/corpus.h"
#include "util/result.h"

namespace tdmatch {
namespace corpus {

/// Field mapping for JSONL text corpora.
struct JsonlTextOptions {
  /// Record field holding the document id; records without it get a
  /// `<name>:<line>` id like the plain-text loader.
  std::string id_field = "id";
  /// Record field holding the document text (required per record).
  std::string text_field = "text";
};

/// \brief File-backed corpus I/O so real datasets can be plugged into the
/// pipeline (the generators cover the benchmarks; users bring CSVs or
/// JSONL dumps).
class Loader {
 public:
  /// Loads a table from a CSV file whose first row is the header.
  static util::Result<Table> TableFromCsv(const std::string& path,
                                          const std::string& table_name);

  /// Loads a table from a JSON Lines file: one flat JSON object per line.
  /// The first record's fields (in appearance order) become the columns —
  /// the same header-row-defines-the-schema rule as the CSV path. Later
  /// records may omit fields (empty cell) but may not introduce new ones.
  /// Values must be scalars (string/number/bool/null); nested containers
  /// are an error.
  static util::Result<Table> TableFromJsonl(const std::string& path,
                                            const std::string& table_name);

  /// Loads a text corpus from a JSON Lines file using the field mapping in
  /// `options`. Blank lines are skipped; every record needs `text_field`.
  static util::Result<Corpus> TextsFromJsonl(const std::string& path,
                                             const std::string& corpus_name,
                                             const JsonlTextOptions& options =
                                                 {});

  /// Writes a table to CSV (header + rows).
  static util::Status TableToCsv(const Table& table, const std::string& path);

  /// Loads a text corpus: one document per line; the line number becomes
  /// the id ("<name>:<line>"). Empty lines are skipped.
  static util::Result<Corpus> TextsFromFile(const std::string& path,
                                            const std::string& corpus_name);

  /// Loads a taxonomy from a CSV with header `label,parent` where `parent`
  /// is a 0-based row index of an earlier concept or empty for roots.
  static util::Result<Taxonomy> TaxonomyFromCsv(const std::string& path);
};

}  // namespace corpus
}  // namespace tdmatch

#endif  // TDMATCH_CORPUS_LOADER_H_
