#ifndef TDMATCH_CORPUS_LOADER_H_
#define TDMATCH_CORPUS_LOADER_H_

#include <string>

#include "corpus/corpus.h"
#include "util/result.h"

namespace tdmatch {
namespace corpus {

/// \brief File-backed corpus I/O so real datasets can be plugged into the
/// pipeline (the generators cover the benchmarks; users bring CSVs).
class Loader {
 public:
  /// Loads a table from a CSV file whose first row is the header.
  static util::Result<Table> TableFromCsv(const std::string& path,
                                          const std::string& table_name);

  /// Writes a table to CSV (header + rows).
  static util::Status TableToCsv(const Table& table, const std::string& path);

  /// Loads a text corpus: one document per line; the line number becomes
  /// the id ("<name>:<line>"). Empty lines are skipped.
  static util::Result<Corpus> TextsFromFile(const std::string& path,
                                            const std::string& corpus_name);

  /// Loads a taxonomy from a CSV with header `label,parent` where `parent`
  /// is a 0-based row index of an earlier concept or empty for roots.
  static util::Result<Taxonomy> TaxonomyFromCsv(const std::string& path);
};

}  // namespace corpus
}  // namespace tdmatch

#endif  // TDMATCH_CORPUS_LOADER_H_
