#ifndef TDMATCH_CORPUS_TABLE_H_
#define TDMATCH_CORPUS_TABLE_H_

#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace corpus {

/// \brief A relational table: named columns and string-valued rows.
///
/// Cells are strings; numeric cells are detected lazily where needed
/// (bucketing, TAPAS-proxy features). A tuple is the matchable document of a
/// table corpus.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<std::string> column_names);

  /// Appends a row; must have exactly one value per column.
  util::Status AddRow(std::vector<std::string> row);

  const std::string& name() const { return name_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return column_names_.size(); }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  const std::string& cell(size_t row, size_t col) const {
    return rows_[row][col];
  }
  const std::vector<std::string>& row(size_t r) const { return rows_[r]; }

  /// Index of a column by name, or error.
  util::Result<size_t> ColumnIndex(const std::string& name) const;

  /// Returns a copy of this table without the named columns (used to build
  /// the IMDb "NT" variant that drops the title attribute).
  util::Result<Table> DropColumns(const std::vector<std::string>& names) const;

  /// Plain-text rendering of a tuple: cell values joined by spaces. This is
  /// what graph construction tokenizes.
  std::string TupleText(size_t row) const;

  /// The [COL] c [VAL] v serialization used by the sequence baselines
  /// (Ditto-style; §V "Matching results").
  std::string SerializeTuple(size_t row) const;

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace corpus
}  // namespace tdmatch

#endif  // TDMATCH_CORPUS_TABLE_H_
