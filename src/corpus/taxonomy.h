#ifndef TDMATCH_CORPUS_TAXONOMY_H_
#define TDMATCH_CORPUS_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tdmatch {
namespace corpus {

/// Identifier of a taxonomy concept (index into the node array).
using ConceptId = int32_t;
inline constexpr ConceptId kNoConcept = -1;

/// A single concept in the taxonomy.
struct Concept {
  std::string label;
  ConceptId parent = kNoConcept;
};

/// \brief A concept hierarchy ("structured text" corpus, §II / Example 2).
///
/// Every concept is a matchable document whose text is its label; the
/// parent edge is the structural relation modeled by metadata-to-metadata
/// edges in the graph (Alg. 1, lines 12-15). The Node score of Table III is
/// computed over root-to-node paths (Eq. 1).
class Taxonomy {
 public:
  /// Adds a concept under `parent` (kNoConcept for a root); returns its id.
  ConceptId AddConcept(std::string label, ConceptId parent = kNoConcept);

  size_t NumConcepts() const { return nodes_.size(); }
  const Concept& concept_at(ConceptId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  const std::string& label(ConceptId id) const {
    return nodes_[static_cast<size_t>(id)].label;
  }
  ConceptId parent(ConceptId id) const {
    return nodes_[static_cast<size_t>(id)].parent;
  }

  /// Children ids of a concept.
  std::vector<ConceptId> Children(ConceptId id) const;

  /// Path from the root down to `id` (inclusive), root first.
  std::vector<ConceptId> PathFromRoot(ConceptId id) const;

  /// Depth of the node (root = 1).
  size_t Depth(ConceptId id) const;

  /// The paper's Node score (Eq. 1): intersection over maximum of the two
  /// root paths after removing the `strip_levels` most general levels
  /// (paper strips the root and the first level, i.e. strip_levels = 2).
  static double NodeScore(const Taxonomy& tax, ConceptId a, ConceptId b,
                          size_t strip_levels = 2);

 private:
  std::vector<Concept> nodes_;
};

}  // namespace corpus
}  // namespace tdmatch

#endif  // TDMATCH_CORPUS_TAXONOMY_H_
