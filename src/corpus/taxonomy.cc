#include "corpus/taxonomy.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace tdmatch {
namespace corpus {

ConceptId Taxonomy::AddConcept(std::string label, ConceptId parent) {
  TDM_CHECK(parent == kNoConcept ||
            static_cast<size_t>(parent) < nodes_.size())
      << "invalid parent id " << parent;
  ConceptId id = static_cast<ConceptId>(nodes_.size());
  nodes_.push_back(Concept{std::move(label), parent});
  return id;
}

std::vector<ConceptId> Taxonomy::Children(ConceptId id) const {
  std::vector<ConceptId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == id) out.push_back(static_cast<ConceptId>(i));
  }
  return out;
}

std::vector<ConceptId> Taxonomy::PathFromRoot(ConceptId id) const {
  std::vector<ConceptId> path;
  ConceptId cur = id;
  while (cur != kNoConcept) {
    path.push_back(cur);
    cur = nodes_[static_cast<size_t>(cur)].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t Taxonomy::Depth(ConceptId id) const { return PathFromRoot(id).size(); }

double Taxonomy::NodeScore(const Taxonomy& tax, ConceptId a, ConceptId b,
                           size_t strip_levels) {
  std::vector<ConceptId> pa = tax.PathFromRoot(a);
  std::vector<ConceptId> pb = tax.PathFromRoot(b);
  auto strip = [strip_levels](std::vector<ConceptId>* p) {
    if (p->size() <= strip_levels) {
      // Keep at least the leaf so shallow paths still compare.
      ConceptId leaf = p->back();
      p->assign(1, leaf);
    } else {
      p->erase(p->begin(),
               p->begin() + static_cast<std::ptrdiff_t>(strip_levels));
    }
  };
  strip(&pa);
  strip(&pb);
  std::unordered_set<ConceptId> sa(pa.begin(), pa.end());
  size_t inter = 0;
  for (ConceptId c : pb) inter += sa.count(c);
  size_t maxlen = std::max(pa.size(), pb.size());
  return maxlen == 0 ? 0.0
                     : static_cast<double>(inter) / static_cast<double>(maxlen);
}

}  // namespace corpus
}  // namespace tdmatch
