#ifndef TDMATCH_CORPUS_CORPUS_H_
#define TDMATCH_CORPUS_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/table.h"
#include "corpus/taxonomy.h"

namespace tdmatch {
namespace corpus {

/// Kind of corpus, matching the three input types of §II.
enum class CorpusType { kText, kTable, kStructuredText };

const char* CorpusTypeToString(CorpusType t);

/// A plain text document (sentence or paragraph — the granularity is the
/// caller's choice, §II).
struct TextDoc {
  std::string id;
  std::string text;
};

/// \brief A corpus of matchable documents: free text, a relational table,
/// or a structured text (taxonomy).
///
/// Provides a uniform document view: every corpus is a sequence of
/// documents with an id and a textual rendering; tables additionally expose
/// columns, taxonomies expose the parent relation. Cheap to copy via the
/// shared immutable payload.
class Corpus {
 public:
  Corpus() = default;

  static Corpus FromTexts(std::string name, std::vector<TextDoc> docs);
  static Corpus FromTable(Table table);
  static Corpus FromTaxonomy(std::string name, Taxonomy taxonomy);

  CorpusType type() const { return type_; }
  const std::string& name() const { return name_; }

  /// Number of matchable documents (rows / paragraphs / concepts).
  size_t NumDocs() const;

  /// Stable document identifier.
  std::string DocId(size_t i) const;

  /// Textual content of document i; for tuples this is the space-joined
  /// cell values, for concepts the label.
  std::string DocText(size_t i) const;

  /// Parent document index (structured text only), or -1.
  int32_t ParentOf(size_t i) const;

  /// Underlying table; null unless type() == kTable.
  const Table* table() const { return table_.get(); }
  /// Underlying taxonomy; null unless type() == kStructuredText.
  const Taxonomy* taxonomy() const { return taxonomy_.get(); }
  /// Underlying text docs; null unless type() == kText.
  const std::vector<TextDoc>* texts() const { return texts_.get(); }

 private:
  CorpusType type_ = CorpusType::kText;
  std::string name_;
  std::shared_ptr<const std::vector<TextDoc>> texts_;
  std::shared_ptr<const Table> table_;
  std::shared_ptr<const Taxonomy> taxonomy_;
};

/// \brief A complete matching task: two corpora plus ground truth.
///
/// `gold[i]` lists the indices of the documents in `second` that are correct
/// matches for document i of `first`. Queries run from `first` to `second`.
struct Scenario {
  std::string name;
  Corpus first;
  Corpus second;
  std::vector<std::vector<int32_t>> gold;
};

}  // namespace corpus
}  // namespace tdmatch

#endif  // TDMATCH_CORPUS_CORPUS_H_
