#include "corpus/loader.h"

#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace tdmatch {
namespace corpus {

util::Result<Table> Loader::TableFromCsv(const std::string& path,
                                         const std::string& table_name) {
  TDM_ASSIGN_OR_RETURN(auto rows, util::Csv::ReadFile(path));
  if (rows.empty()) {
    return util::Status::InvalidArgument(path + " has no header row");
  }
  Table table(table_name, rows[0]);
  for (size_t r = 1; r < rows.size(); ++r) {
    TDM_RETURN_NOT_OK(table.AddRow(std::move(rows[r])));
  }
  return table;
}

util::Status Loader::TableToCsv(const Table& table, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(table.column_names());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    rows.push_back(table.row(r));
  }
  return util::Csv::WriteFile(path, rows);
}

util::Result<Corpus> Loader::TextsFromFile(const std::string& path,
                                           const std::string& corpus_name) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  std::vector<TextDoc> docs;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    docs.push_back(TextDoc{util::StrFormat("%s:%zu", corpus_name.c_str(),
                                           lineno),
                           std::string(trimmed)});
  }
  if (docs.empty()) {
    return util::Status::InvalidArgument(path + " contains no documents");
  }
  return Corpus::FromTexts(corpus_name, std::move(docs));
}

util::Result<Taxonomy> Loader::TaxonomyFromCsv(const std::string& path) {
  TDM_ASSIGN_OR_RETURN(auto rows, util::Csv::ReadFile(path));
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "label") {
    return util::Status::InvalidArgument(
        path + " must have a 'label,parent' header");
  }
  Taxonomy tax;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() < 2) {
      return util::Status::InvalidArgument(
          util::StrFormat("%s row %zu: expected 2 fields", path.c_str(), r));
    }
    ConceptId parent = kNoConcept;
    const std::string& pfield = rows[r][1];
    if (!pfield.empty()) {
      double pd = 0;
      if (!util::ParseDouble(pfield, &pd) || pd < 0 ||
          static_cast<size_t>(pd) >= tax.NumConcepts()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s row %zu: bad parent '%s'", path.c_str(), r, pfield.c_str()));
      }
      parent = static_cast<ConceptId>(pd);
    }
    tax.AddConcept(rows[r][0], parent);
  }
  return tax;
}

}  // namespace corpus
}  // namespace tdmatch
