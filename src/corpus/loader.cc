#include "corpus/loader.h"

#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/csv.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tdmatch {
namespace corpus {

namespace {

/// One parsed JSONL record: top-level scalar fields in appearance order
/// (order matters — the first record defines the table schema). Parsing
/// lives in util/json (shared with the HTTP serving front end); the flat
/// semantics — scalars as strings, null → empty, nested values rejected —
/// are JsonParseFlatRecord's contract.
using JsonRecord = util::JsonFlatRecord;

/// Applies `fn(lineno, record)` to every non-blank line of a JSONL file.
template <typename Fn>
util::Status ForEachJsonlRecord(const std::string& path, Fn fn) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    JsonRecord record;
    util::Status st = util::JsonParseFlatRecord(trimmed, &record);
    if (!st.ok()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%zu: %s", path.c_str(), lineno, st.message().c_str()));
    }
    TDM_RETURN_NOT_OK(fn(lineno, record));
  }
  return util::Status::OK();
}

}  // namespace

util::Result<Table> Loader::TableFromCsv(const std::string& path,
                                         const std::string& table_name) {
  TDM_ASSIGN_OR_RETURN(auto rows, util::Csv::ReadFile(path));
  if (rows.empty()) {
    return util::Status::InvalidArgument(path + " has no header row");
  }
  Table table(table_name, rows[0]);
  for (size_t r = 1; r < rows.size(); ++r) {
    TDM_RETURN_NOT_OK(table.AddRow(std::move(rows[r])));
  }
  return table;
}

util::Status Loader::TableToCsv(const Table& table, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(table.column_names());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    rows.push_back(table.row(r));
  }
  return util::Csv::WriteFile(path, rows);
}

util::Result<Corpus> Loader::TextsFromFile(const std::string& path,
                                           const std::string& corpus_name) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  std::vector<TextDoc> docs;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    docs.push_back(TextDoc{util::StrFormat("%s:%zu", corpus_name.c_str(),
                                           lineno),
                           std::string(trimmed)});
  }
  if (docs.empty()) {
    return util::Status::InvalidArgument(path + " contains no documents");
  }
  return Corpus::FromTexts(corpus_name, std::move(docs));
}

util::Result<Table> Loader::TableFromJsonl(const std::string& path,
                                           const std::string& table_name) {
  Table table;
  std::vector<std::string> columns;
  util::Status st = ForEachJsonlRecord(
      path, [&](size_t lineno, const JsonRecord& record) -> util::Status {
        if (columns.empty()) {
          for (const auto& kv : record) columns.push_back(kv.first);
          if (columns.empty()) {
            return util::Status::InvalidArgument(util::StrFormat(
                "%s:%zu: first record has no fields", path.c_str(), lineno));
          }
          table = Table(table_name, columns);
        }
        std::vector<std::string> row(columns.size());
        std::vector<bool> seen(columns.size(), false);
        for (const auto& kv : record) {
          size_t col = columns.size();
          for (size_t c = 0; c < columns.size(); ++c) {
            if (columns[c] == kv.first) { col = c; break; }
          }
          if (col == columns.size()) {
            return util::Status::InvalidArgument(util::StrFormat(
                "%s:%zu: field '%s' not in the schema defined by the first "
                "record",
                path.c_str(), lineno, kv.first.c_str()));
          }
          if (seen[col]) {
            return util::Status::InvalidArgument(
                util::StrFormat("%s:%zu: duplicate field '%s'", path.c_str(),
                                lineno, kv.first.c_str()));
          }
          seen[col] = true;
          row[col] = kv.second;
        }
        return table.AddRow(std::move(row));
      });
  TDM_RETURN_NOT_OK(st);
  if (columns.empty()) {
    return util::Status::InvalidArgument(path + " contains no records");
  }
  return table;
}

util::Result<Corpus> Loader::TextsFromJsonl(const std::string& path,
                                            const std::string& corpus_name,
                                            const JsonlTextOptions& options) {
  std::vector<TextDoc> docs;
  util::Status st = ForEachJsonlRecord(
      path, [&](size_t lineno, const JsonRecord& record) -> util::Status {
        TextDoc doc;
        for (const auto& kv : record) {
          if (kv.first == options.id_field) doc.id = kv.second;
          if (kv.first == options.text_field) doc.text = kv.second;
        }
        if (doc.text.empty()) {
          return util::Status::InvalidArgument(util::StrFormat(
              "%s:%zu: record has no (non-empty) '%s' field", path.c_str(),
              lineno, options.text_field.c_str()));
        }
        if (doc.id.empty()) {
          doc.id = util::StrFormat("%s:%zu", corpus_name.c_str(), lineno);
        }
        docs.push_back(std::move(doc));
        return util::Status::OK();
      });
  TDM_RETURN_NOT_OK(st);
  if (docs.empty()) {
    return util::Status::InvalidArgument(path + " contains no records");
  }
  return Corpus::FromTexts(corpus_name, std::move(docs));
}

util::Result<Taxonomy> Loader::TaxonomyFromCsv(const std::string& path) {
  TDM_ASSIGN_OR_RETURN(auto rows, util::Csv::ReadFile(path));
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "label") {
    return util::Status::InvalidArgument(
        path + " must have a 'label,parent' header");
  }
  Taxonomy tax;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() < 2) {
      return util::Status::InvalidArgument(
          util::StrFormat("%s row %zu: expected 2 fields", path.c_str(), r));
    }
    ConceptId parent = kNoConcept;
    const std::string& pfield = rows[r][1];
    if (!pfield.empty()) {
      double pd = 0;
      if (!util::ParseDouble(pfield, &pd) || pd < 0 ||
          static_cast<size_t>(pd) >= tax.NumConcepts()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s row %zu: bad parent '%s'", path.c_str(), r, pfield.c_str()));
      }
      parent = static_cast<ConceptId>(pd);
    }
    tax.AddConcept(rows[r][0], parent);
  }
  return tax;
}

}  // namespace corpus
}  // namespace tdmatch
