#include "corpus/loader.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/csv.h"
#include "util/string_util.h"

namespace tdmatch {
namespace corpus {

namespace {

/// One parsed JSONL record: top-level scalar fields in appearance order
/// (order matters — the first record defines the table schema).
using JsonRecord = std::vector<std::pair<std::string, std::string>>;

/// Minimal JSON parser for flat records — just enough for JSONL dataset
/// dumps and query files, with no third-party dependency. Strings support
/// the standard escapes (\uXXXX decodes to UTF-8); numbers keep their
/// source spelling (cells are strings; numeric parsing happens downstream
/// where needed, as with CSV); null becomes the empty string. Nested
/// arrays/objects are rejected: records must be flat like CSV rows.
class JsonLineParser {
 public:
  explicit JsonLineParser(std::string_view line) : s_(line) {}

  util::Status Parse(JsonRecord* out) {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return CheckEnd();
    for (;;) {
      SkipSpace();
      std::string key;
      TDM_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipSpace();
      std::string value;
      TDM_RETURN_NOT_OK(ParseScalar(&value));
      out->emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return CheckEnd();
      return Error("expected ',' or '}'");
    }
  }

 private:
  util::Status Error(const std::string& what) {
    return util::Status::InvalidArgument(
        util::StrFormat("%s at offset %zu", what.c_str(), pos_));
  }

  util::Status CheckEnd() {
    SkipSpace();
    if (pos_ != s_.size()) return Error("trailing content after record");
    return util::Status::OK();
  }

  void SkipSpace() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (s_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  /// The four hex digits of a \uXXXX escape (cursor already past "\u").
  util::Status ParseHex4(uint32_t* cp) {
    if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
    *cp = 0;
    for (int i = 0; i < 4; ++i) {
      char h = s_[pos_++];
      *cp <<= 4;
      if (h >= '0' && h <= '9') *cp |= static_cast<uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f')
        *cp |= static_cast<uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        *cp |= static_cast<uint32_t>(h - 'A' + 10);
      else return Error("bad \\u escape");
    }
    return util::Status::OK();
  }

  util::Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return util::Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          TDM_RETURN_NOT_OK(ParseHex4(&cp));
          // Non-BMP characters arrive as UTF-16 surrogate pairs (that is
          // how json.dumps escapes an emoji); decode the pair to one code
          // point rather than emitting invalid CESU-8, and reject lone
          // surrogates like every other malformed input.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u') {
              return Error("high surrogate without a \\u low surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            TDM_RETURN_NOT_OK(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("high surrogate followed by a non-low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error(util::StrFormat("bad escape '\\%c'", esc));
      }
    }
    return Error("unterminated string");
  }

  util::Status ParseScalar(std::string* out) {
    if (pos_ >= s_.size()) return Error("expected a value");
    char c = s_[pos_];
    if (c == '"') return ParseString(out);
    if (c == '{' || c == '[') {
      return Error("nested values are not supported (records must be flat)");
    }
    if (ConsumeWord("true")) { *out = "true"; return util::Status::OK(); }
    if (ConsumeWord("false")) { *out = "false"; return util::Status::OK(); }
    if (ConsumeWord("null")) { out->clear(); return util::Status::OK(); }
    // Number: keep the source spelling, validate the character set.
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    *out = std::string(s_.substr(start, pos_ - start));
    double ignored = 0;
    if (!util::ParseDouble(*out, &ignored)) return Error("malformed number");
    return util::Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

/// Applies `fn(lineno, record)` to every non-blank line of a JSONL file.
template <typename Fn>
util::Status ForEachJsonlRecord(const std::string& path, Fn fn) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    JsonRecord record;
    util::Status st = JsonLineParser(trimmed).Parse(&record);
    if (!st.ok()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%zu: %s", path.c_str(), lineno, st.message().c_str()));
    }
    TDM_RETURN_NOT_OK(fn(lineno, record));
  }
  return util::Status::OK();
}

}  // namespace

util::Result<Table> Loader::TableFromCsv(const std::string& path,
                                         const std::string& table_name) {
  TDM_ASSIGN_OR_RETURN(auto rows, util::Csv::ReadFile(path));
  if (rows.empty()) {
    return util::Status::InvalidArgument(path + " has no header row");
  }
  Table table(table_name, rows[0]);
  for (size_t r = 1; r < rows.size(); ++r) {
    TDM_RETURN_NOT_OK(table.AddRow(std::move(rows[r])));
  }
  return table;
}

util::Status Loader::TableToCsv(const Table& table, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back(table.column_names());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    rows.push_back(table.row(r));
  }
  return util::Csv::WriteFile(path, rows);
}

util::Result<Corpus> Loader::TextsFromFile(const std::string& path,
                                           const std::string& corpus_name) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  std::vector<TextDoc> docs;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    docs.push_back(TextDoc{util::StrFormat("%s:%zu", corpus_name.c_str(),
                                           lineno),
                           std::string(trimmed)});
  }
  if (docs.empty()) {
    return util::Status::InvalidArgument(path + " contains no documents");
  }
  return Corpus::FromTexts(corpus_name, std::move(docs));
}

util::Result<Table> Loader::TableFromJsonl(const std::string& path,
                                           const std::string& table_name) {
  Table table;
  std::vector<std::string> columns;
  util::Status st = ForEachJsonlRecord(
      path, [&](size_t lineno, const JsonRecord& record) -> util::Status {
        if (columns.empty()) {
          for (const auto& kv : record) columns.push_back(kv.first);
          if (columns.empty()) {
            return util::Status::InvalidArgument(util::StrFormat(
                "%s:%zu: first record has no fields", path.c_str(), lineno));
          }
          table = Table(table_name, columns);
        }
        std::vector<std::string> row(columns.size());
        std::vector<bool> seen(columns.size(), false);
        for (const auto& kv : record) {
          size_t col = columns.size();
          for (size_t c = 0; c < columns.size(); ++c) {
            if (columns[c] == kv.first) { col = c; break; }
          }
          if (col == columns.size()) {
            return util::Status::InvalidArgument(util::StrFormat(
                "%s:%zu: field '%s' not in the schema defined by the first "
                "record",
                path.c_str(), lineno, kv.first.c_str()));
          }
          if (seen[col]) {
            return util::Status::InvalidArgument(
                util::StrFormat("%s:%zu: duplicate field '%s'", path.c_str(),
                                lineno, kv.first.c_str()));
          }
          seen[col] = true;
          row[col] = kv.second;
        }
        return table.AddRow(std::move(row));
      });
  TDM_RETURN_NOT_OK(st);
  if (columns.empty()) {
    return util::Status::InvalidArgument(path + " contains no records");
  }
  return table;
}

util::Result<Corpus> Loader::TextsFromJsonl(const std::string& path,
                                            const std::string& corpus_name,
                                            const JsonlTextOptions& options) {
  std::vector<TextDoc> docs;
  util::Status st = ForEachJsonlRecord(
      path, [&](size_t lineno, const JsonRecord& record) -> util::Status {
        TextDoc doc;
        for (const auto& kv : record) {
          if (kv.first == options.id_field) doc.id = kv.second;
          if (kv.first == options.text_field) doc.text = kv.second;
        }
        if (doc.text.empty()) {
          return util::Status::InvalidArgument(util::StrFormat(
              "%s:%zu: record has no (non-empty) '%s' field", path.c_str(),
              lineno, options.text_field.c_str()));
        }
        if (doc.id.empty()) {
          doc.id = util::StrFormat("%s:%zu", corpus_name.c_str(), lineno);
        }
        docs.push_back(std::move(doc));
        return util::Status::OK();
      });
  TDM_RETURN_NOT_OK(st);
  if (docs.empty()) {
    return util::Status::InvalidArgument(path + " contains no records");
  }
  return Corpus::FromTexts(corpus_name, std::move(docs));
}

util::Result<Taxonomy> Loader::TaxonomyFromCsv(const std::string& path) {
  TDM_ASSIGN_OR_RETURN(auto rows, util::Csv::ReadFile(path));
  if (rows.empty() || rows[0].size() < 2 || rows[0][0] != "label") {
    return util::Status::InvalidArgument(
        path + " must have a 'label,parent' header");
  }
  Taxonomy tax;
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() < 2) {
      return util::Status::InvalidArgument(
          util::StrFormat("%s row %zu: expected 2 fields", path.c_str(), r));
    }
    ConceptId parent = kNoConcept;
    const std::string& pfield = rows[r][1];
    if (!pfield.empty()) {
      double pd = 0;
      if (!util::ParseDouble(pfield, &pd) || pd < 0 ||
          static_cast<size_t>(pd) >= tax.NumConcepts()) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s row %zu: bad parent '%s'", path.c_str(), r, pfield.c_str()));
      }
      parent = static_cast<ConceptId>(pd);
    }
    tax.AddConcept(rows[r][0], parent);
  }
  return tax;
}

}  // namespace corpus
}  // namespace tdmatch
