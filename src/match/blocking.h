#ifndef TDMATCH_MATCH_BLOCKING_H_
#define TDMATCH_MATCH_BLOCKING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.h"
#include "text/preprocess.h"

namespace tdmatch {
namespace match {

/// \brief Token-based candidate blocking (§VII lists blocking as the
/// planned speed-up for the matching step).
///
/// An inverted index from terms to candidate documents; a query's candidate
/// block is every document sharing at least `min_shared_terms` terms with
/// it. Scoring then only touches the block instead of the full corpus —
/// the classic ER blocking trade-off (possible recall loss for speed).
class TokenBlocker {
 public:
  struct Options {
    /// Minimum shared terms for a candidate to enter the block.
    size_t min_shared_terms = 1;
    /// Terms appearing in more than ceil(fraction · |candidates|)
    /// candidates are treated as stop-terms and ignored (hub control).
    double max_term_frequency = 0.5;
    text::PreprocessOptions preprocess;
  };

  TokenBlocker();  // default options
  explicit TokenBlocker(Options options);

  /// Indexes the candidate corpus.
  void Index(const corpus::Corpus& candidates);

  /// Candidate indices sharing enough terms with `query_text`, unsorted.
  std::vector<int32_t> Block(const std::string& query_text) const;

  /// Fraction of the corpus a block covers on average (diagnostics).
  double AverageBlockFraction(const corpus::Corpus& queries) const;

  size_t num_candidates() const { return num_candidates_; }

 private:
  Options options_;
  text::Preprocessor preprocessor_;
  std::unordered_map<std::string, std::vector<int32_t>> index_;
  size_t num_candidates_ = 0;
};

}  // namespace match
}  // namespace tdmatch

#endif  // TDMATCH_MATCH_BLOCKING_H_
