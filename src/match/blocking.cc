#include "match/blocking.h"

#include <cmath>
#include <unordered_set>

namespace tdmatch {
namespace match {

TokenBlocker::TokenBlocker() : TokenBlocker(Options{}) {}

TokenBlocker::TokenBlocker(Options options)
    : options_(options), preprocessor_(options.preprocess) {}

void TokenBlocker::Index(const corpus::Corpus& candidates) {
  index_.clear();
  num_candidates_ = candidates.NumDocs();
  for (size_t c = 0; c < num_candidates_; ++c) {
    for (const auto& term : preprocessor_.Terms(candidates.DocText(c))) {
      index_[term].push_back(static_cast<int32_t>(c));
    }
  }
  // Drop hub terms.
  const size_t cap = static_cast<size_t>(std::ceil(
      options_.max_term_frequency * static_cast<double>(num_candidates_)));
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.size() > std::max<size_t>(1, cap)) {
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<int32_t> TokenBlocker::Block(const std::string& query_text) const {
  std::unordered_map<int32_t, size_t> shared;
  for (const auto& term : preprocessor_.Terms(query_text)) {
    auto it = index_.find(term);
    if (it == index_.end()) continue;
    for (int32_t c : it->second) ++shared[c];
  }
  std::vector<int32_t> block;
  block.reserve(shared.size());
  for (const auto& [c, n] : shared) {
    if (n >= options_.min_shared_terms) block.push_back(c);
  }
  return block;
}

double TokenBlocker::AverageBlockFraction(
    const corpus::Corpus& queries) const {
  if (num_candidates_ == 0 || queries.NumDocs() == 0) return 0.0;
  double total = 0.0;
  for (size_t q = 0; q < queries.NumDocs(); ++q) {
    total += static_cast<double>(Block(queries.DocText(q)).size()) /
             static_cast<double>(num_candidates_);
  }
  return total / static_cast<double>(queries.NumDocs());
}

}  // namespace match
}  // namespace tdmatch
