#ifndef TDMATCH_MATCH_COMBINE_H_
#define TDMATCH_MATCH_COMBINE_H_

#include <vector>

namespace tdmatch {
namespace match {

/// \brief Score combination (Fig. 10): averages per-candidate cosine scores
/// of two methods, optionally after per-query min-max normalization so the
/// scales are comparable.
class ScoreCombiner {
 public:
  /// Element-wise mean of two score vectors (sizes must match).
  static std::vector<double> Average(const std::vector<double>& a,
                                     const std::vector<double>& b);

  /// Min-max normalizes scores into [0, 1] per query (constant vectors map
  /// to all-zeros).
  static std::vector<double> MinMaxNormalize(const std::vector<double>& s);

  /// Average of the normalized score vectors — the Fig. 10 combination of
  /// W-RW with S-BE.
  static std::vector<double> AverageNormalized(const std::vector<double>& a,
                                               const std::vector<double>& b);
};

}  // namespace match
}  // namespace tdmatch

#endif  // TDMATCH_MATCH_COMBINE_H_
