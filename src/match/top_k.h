#ifndef TDMATCH_MATCH_TOP_K_H_
#define TDMATCH_MATCH_TOP_K_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdmatch {
namespace match {

/// One ranked candidate.
struct Match {
  int32_t index;
  double score;
};

/// \brief Ranking utilities: cosine scoring against a candidate matrix and
/// heap-based top-k selection (§IV-B).
class TopK {
 public:
  /// Cosine of `query` against every row of `candidates` (rows may be
  /// empty ⇒ score 0).
  static std::vector<double> ScoreAll(
      const std::vector<float>& query,
      const std::vector<std::vector<float>>& candidates);

  /// Indices of the k highest scores, ties broken by lower index
  /// (deterministic). Small k uses a bounded max-heap over the candidate
  /// stream; large k falls back to a partial sort — both produce the
  /// identical ranking.
  static std::vector<Match> Select(const std::vector<double>& scores,
                                   size_t k);

  /// Full ranking (Select with k = scores.size()).
  static std::vector<int32_t> FullRanking(const std::vector<double>& scores);
};

}  // namespace match
}  // namespace tdmatch

#endif  // TDMATCH_MATCH_TOP_K_H_
