#ifndef TDMATCH_MATCH_METHOD_H_
#define TDMATCH_MATCH_METHOD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "util/status.h"

namespace tdmatch {
namespace match {

/// \brief Common interface of every matching method in the evaluation —
/// TDmatch itself and all baselines.
///
/// A method is (optionally) fitted on a scenario and then asked to score
/// every candidate document (second corpus) for a query document (first
/// corpus). The experiment harness turns scores into rankings and computes
/// the metrics; supervised methods receive the training query ids and their
/// gold labels through the scenario, unsupervised methods must ignore them.
class MatchMethod {
 public:
  virtual ~MatchMethod() = default;

  /// Prepares the method for `scenario`. `train_queries` lists the query
  /// indices whose gold labels may be used (empty for unsupervised
  /// methods, which see only the raw corpora).
  virtual util::Status Fit(const corpus::Scenario& scenario,
                           const std::vector<int32_t>& train_queries) = 0;

  /// Scores all second-corpus documents for query `query_index`; higher is
  /// better. Called after Fit.
  virtual std::vector<double> ScoreCandidates(size_t query_index) const = 0;

  /// Display name used in benchmark tables ("W-RW", "S-BE", "RANK*", ...).
  virtual std::string name() const = 0;

  /// True when the method needs gold labels (marked * in the paper).
  virtual bool supervised() const { return false; }
};

}  // namespace match
}  // namespace tdmatch

#endif  // TDMATCH_MATCH_METHOD_H_
