#include "match/combine.h"

#include <algorithm>

#include "util/logging.h"

namespace tdmatch {
namespace match {

std::vector<double> ScoreCombiner::Average(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  TDM_CHECK_EQ(a.size(), b.size());
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = 0.5 * (a[i] + b[i]);
  return out;
}

std::vector<double> ScoreCombiner::MinMaxNormalize(
    const std::vector<double>& s) {
  if (s.empty()) return {};
  auto [mn, mx] = std::minmax_element(s.begin(), s.end());
  std::vector<double> out(s.size(), 0.0);
  const double range = *mx - *mn;
  if (range <= 0.0) return out;
  for (size_t i = 0; i < s.size(); ++i) out[i] = (s[i] - *mn) / range;
  return out;
}

std::vector<double> ScoreCombiner::AverageNormalized(
    const std::vector<double>& a, const std::vector<double>& b) {
  return Average(MinMaxNormalize(a), MinMaxNormalize(b));
}

}  // namespace match
}  // namespace tdmatch
