#include "match/top_k.h"

#include <algorithm>

#include "embed/embedding_table.h"

namespace tdmatch {
namespace match {

namespace {

/// The ranking order: descending score, ties broken by lower index. This
/// is a strict total order (indices are unique), so every selection
/// strategy below produces the same, deterministic result.
struct RankBefore {
  const double* scores;
  bool operator()(int32_t a, int32_t b) const {
    const double sa = scores[static_cast<size_t>(a)];
    const double sb = scores[static_cast<size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  }
};

}  // namespace

std::vector<double> TopK::ScoreAll(
    const std::vector<float>& query,
    const std::vector<std::vector<float>>& candidates) {
  std::vector<double> scores(candidates.size(), 0.0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].empty() || query.empty()) continue;
    scores[i] = embed::EmbeddingTable::CosineVec(query, candidates[i]);
  }
  return scores;
}

std::vector<Match> TopK::Select(const std::vector<double>& scores, size_t k) {
  const size_t n = scores.size();
  k = std::min(k, n);
  if (k == 0) return {};
  const RankBefore before{scores.data()};

  std::vector<int32_t> idx;
  if (k * 4 >= n) {
    // Large k: sorting (most of) the index array outright beats heap
    // maintenance.
    idx.resize(n);
    for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int32_t>(i);
    std::partial_sort(idx.begin(),
                      idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                      before);
    idx.resize(k);
  } else {
    // Small k (the match::TopK hot path: k in the tens against thousands
    // of candidates): a bounded heap of the k best seen so far. With
    // `before` as the heap's less-than, the root is the *worst* kept
    // candidate. The root's score is kept in a register so the common
    // case — candidate does not displace anything — is one comparison
    // with no memory traffic; heap work is O(log k) and rare. No O(n)
    // index array is materialized.
    idx.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      idx.push_back(static_cast<int32_t>(i));
      std::push_heap(idx.begin(), idx.end(), before);
    }
    int32_t worst = idx.front();
    double worst_score = scores[static_cast<size_t>(worst)];
    for (size_t i = k; i < n; ++i) {
      const double s = scores[i];
      if (s < worst_score ||
          (s == worst_score && static_cast<int32_t>(i) > worst)) {
        continue;
      }
      std::pop_heap(idx.begin(), idx.end(), before);
      idx.back() = static_cast<int32_t>(i);
      std::push_heap(idx.begin(), idx.end(), before);
      worst = idx.front();
      worst_score = scores[static_cast<size_t>(worst)];
    }
    std::sort(idx.begin(), idx.end(), before);
  }

  std::vector<Match> out;
  out.reserve(k);
  for (int32_t i : idx) {
    out.push_back(Match{i, scores[static_cast<size_t>(i)]});
  }
  return out;
}

std::vector<int32_t> TopK::FullRanking(const std::vector<double>& scores) {
  std::vector<int32_t> idx(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) idx[i] = static_cast<int32_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](int32_t a, int32_t b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  return idx;
}

}  // namespace match
}  // namespace tdmatch
