#include "match/top_k.h"

#include <algorithm>

#include "embed/embedding_table.h"

namespace tdmatch {
namespace match {

std::vector<double> TopK::ScoreAll(
    const std::vector<float>& query,
    const std::vector<std::vector<float>>& candidates) {
  std::vector<double> scores(candidates.size(), 0.0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].empty() || query.empty()) continue;
    scores[i] = embed::EmbeddingTable::CosineVec(query, candidates[i]);
  }
  return scores;
}

std::vector<Match> TopK::Select(const std::vector<double>& scores, size_t k) {
  k = std::min(k, scores.size());
  std::vector<int32_t> idx(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) idx[i] = static_cast<int32_t>(i);
  // partial_sort by descending score; stable tie-break on lower index keeps
  // rankings deterministic.
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                    [&](int32_t a, int32_t b) {
                      double sa = scores[static_cast<size_t>(a)];
                      double sb = scores[static_cast<size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });
  std::vector<Match> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.push_back(Match{idx[i], scores[static_cast<size_t>(idx[i])]});
  }
  return out;
}

std::vector<int32_t> TopK::FullRanking(const std::vector<double>& scores) {
  std::vector<int32_t> idx(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) idx[i] = static_cast<int32_t>(i);
  std::stable_sort(idx.begin(), idx.end(), [&](int32_t a, int32_t b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  return idx;
}

}  // namespace match
}  // namespace tdmatch
