#ifndef TDMATCH_EMBED_PRETRAINED_LEXICON_H_
#define TDMATCH_EMBED_PRETRAINED_LEXICON_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "embed/word2vec.h"
#include "graph/builder.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace tdmatch {
namespace embed {

/// \brief Stand-in for a pre-trained word embedding (Wikipedia2Vec in the
/// paper) used by the γ-threshold synonym merge (§II-C).
///
/// Trained once on a *generic* corpus (datagen::GenericCorpus — independent
/// of any matching scenario, which is what "pre-trained" means here).
/// Out-of-vocabulary robustness comes from a character-3-gram hashing
/// component blended into every word vector, so name variants and typos
/// ("untied states") land close to their intended form — mirroring how the
/// paper merges typos and abbreviations with external resources.
class PretrainedLexicon {
 public:
  struct Options {
    Word2VecOptions w2v;
    /// Weight of the char-ngram component in the blended vector [0, 1].
    double char_weight = 0.4;
    /// Dimensionality of the char-hash space (== w2v.dim for blending).
    uint64_t hash_seed = 0x5eed;
  };

  PretrainedLexicon();  // default options
  explicit PretrainedLexicon(Options options);

  /// Trains the word component on tokenized sentences.
  util::Status Train(const std::vector<std::vector<std::string>>& sentences);

  bool trained() const { return trained_; }

  /// Blended vector for a (possibly multi-token) label; never fails —
  /// unknown words fall back to the char-ngram component alone.
  std::vector<float> Vector(const std::string& label) const;

  /// Cosine similarity of two labels' blended vectors.
  double Cosine(const std::string& a, const std::string& b) const;

  /// γ calibration (§II-C): the average cosine over a list of known synonym
  /// pairs (the paper uses 17K WordNet pairs and obtains γ = 0.57).
  double CalibrateGamma(
      const std::vector<std::pair<std::string, std::string>>& synonym_pairs)
      const;

  /// Builds a term → canonical-term merge map over `labels`: candidate
  /// pairs (bucketed by shared token / prefix so this stays near-linear)
  /// with cosine >= gamma are union-found together; each class maps to its
  /// lexicographically smallest member. This is the input for
  /// graph::BuilderOptions::merge_map.
  graph::MergeMap BuildMergeMap(const std::vector<std::string>& labels,
                                double gamma) const;

 private:
  std::vector<float> CharVector(const std::string& word) const;
  std::vector<float> WordVector(const std::string& word) const;

  Options options_;
  bool trained_ = false;
  text::Vocabulary vocab_;
  Word2Vec w2v_;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_PRETRAINED_LEXICON_H_
