#include "embed/sentence_corpus.h"

#include <utility>

namespace tdmatch {
namespace embed {

SentenceCorpus SentenceCorpus::FromNested(
    const std::vector<std::vector<int32_t>>& sentences) {
  SentenceCorpus out;
  size_t total = 0;
  for (const auto& s : sentences) total += s.size();
  out.Reserve(sentences.size(), total);
  for (const auto& s : sentences) out.Append(s);
  return out;
}

std::vector<std::vector<int32_t>> SentenceCorpus::ToNested() const {
  std::vector<std::vector<int32_t>> out(NumSentences());
  for (size_t i = 0; i < out.size(); ++i) {
    TokenSpan s = sentence(i);
    out[i].assign(s.begin(), s.end());
  }
  return out;
}

SentenceCorpus SentenceCorpus::FromFlat(std::vector<int32_t> tokens,
                                        std::vector<size_t> offsets) {
  TDM_CHECK(!offsets.empty());
  TDM_CHECK_EQ(offsets.front(), 0u);
  TDM_CHECK_EQ(offsets.back(), tokens.size());
  SentenceCorpus out;
  out.tokens_ = std::move(tokens);
  out.offsets_ = std::move(offsets);
  return out;
}

}  // namespace embed
}  // namespace tdmatch
