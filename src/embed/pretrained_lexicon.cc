#include "embed/pretrained_lexicon.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "embed/embedding_table.h"
#include "util/string_util.h"

namespace tdmatch {
namespace embed {

namespace {

/// Disjoint-set for merge classes.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

uint64_t HashNGram(const std::string& word, size_t pos, size_t n,
                   uint64_t seed) {
  uint64_t h = seed ^ 1469598103934665603ULL;
  for (size_t i = pos; i < pos + n; ++i) {
    h ^= static_cast<uint8_t>(word[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

PretrainedLexicon::PretrainedLexicon() : PretrainedLexicon(Options{}) {}

PretrainedLexicon::PretrainedLexicon(Options options)
    : options_(options), w2v_(options.w2v) {}

util::Status PretrainedLexicon::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  std::vector<std::vector<int32_t>> ids;
  ids.reserve(sentences.size());
  for (const auto& s : sentences) {
    std::vector<int32_t> row;
    row.reserve(s.size());
    for (const auto& w : s) row.push_back(vocab_.Add(w));
    ids.push_back(std::move(row));
  }
  if (vocab_.size() == 0) {
    return util::Status::InvalidArgument("empty pretraining corpus");
  }
  TDM_RETURN_NOT_OK(w2v_.Train(ids, vocab_.size()));
  trained_ = true;
  return util::Status::OK();
}

std::vector<float> PretrainedLexicon::CharVector(
    const std::string& word) const {
  const int dim = options_.w2v.dim;
  std::vector<float> v(static_cast<size_t>(dim), 0.0f);
  // Pad so even 1-2 char words produce 3-grams.
  std::string padded = "^" + word + "$";
  size_t count = 0;
  for (size_t n = 2; n <= 3; ++n) {
    if (padded.size() < n) continue;
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      uint64_t h = HashNGram(padded, i, n, options_.hash_seed);
      const size_t d = static_cast<size_t>(h % static_cast<uint64_t>(dim));
      const float sign = (h >> 32) & 1 ? 1.0f : -1.0f;
      v[d] += sign;
      ++count;
    }
  }
  if (count > 0) EmbeddingTable::Normalize(&v);
  return v;
}

std::vector<float> PretrainedLexicon::WordVector(
    const std::string& word) const {
  const int dim = options_.w2v.dim;
  int32_t id = vocab_.Lookup(word);
  if (!trained_ || id == text::kInvalidTokenId) {
    return std::vector<float>(static_cast<size_t>(dim), 0.0f);
  }
  std::vector<float> v = w2v_.VectorCopy(id);
  EmbeddingTable::Normalize(&v);
  return v;
}

std::vector<float> PretrainedLexicon::Vector(const std::string& label) const {
  const int dim = options_.w2v.dim;
  const double cw = options_.char_weight;
  std::vector<std::string> tokens = util::SplitWhitespace(label);
  std::vector<float> out(static_cast<size_t>(dim), 0.0f);
  if (tokens.empty()) return out;
  for (const auto& tok : tokens) {
    std::vector<float> wv = WordVector(tok);
    std::vector<float> cv = CharVector(tok);
    const bool has_word =
        std::any_of(wv.begin(), wv.end(), [](float x) { return x != 0.0f; });
    // Unknown words rely fully on the char component.
    const double wweight = has_word ? 1.0 - cw : 0.0;
    const double cweight = has_word ? cw : 1.0;
    for (int d = 0; d < dim; ++d) {
      out[static_cast<size_t>(d)] += static_cast<float>(
          wweight * wv[static_cast<size_t>(d)] +
          cweight * cv[static_cast<size_t>(d)]);
    }
  }
  EmbeddingTable::Normalize(&out);
  return out;
}

double PretrainedLexicon::Cosine(const std::string& a,
                                 const std::string& b) const {
  return EmbeddingTable::CosineVec(Vector(a), Vector(b));
}

double PretrainedLexicon::CalibrateGamma(
    const std::vector<std::pair<std::string, std::string>>& synonym_pairs)
    const {
  if (synonym_pairs.empty()) return 0.57;  // paper's Wikipedia2Vec value
  double sum = 0.0;
  for (const auto& [a, b] : synonym_pairs) sum += Cosine(a, b);
  return sum / static_cast<double>(synonym_pairs.size());
}

graph::MergeMap PretrainedLexicon::BuildMergeMap(
    const std::vector<std::string>& labels, double gamma) const {
  // Bucket labels by each of their tokens and by short prefixes, so
  // variants ("b willi" / "bruce willi") and typos share at least one
  // bucket. Pairs are only scored inside buckets — near-linear overall.
  // Numeric labels never merge here (that is the bucketing mechanism's
  // job and string similarity between numbers is meaningless).
  std::unordered_map<std::string, std::vector<size_t>> buckets;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (util::IsNumeric(labels[i])) continue;
    for (const auto& tok : util::SplitWhitespace(labels[i])) {
      buckets["t:" + tok].push_back(i);
      if (tok.size() >= 3) buckets["p:" + tok.substr(0, 3)].push_back(i);
      if (tok.size() >= 4) buckets["q:" + tok.substr(0, 2)].push_back(i);
    }
  }

  std::vector<std::vector<float>> vecs(labels.size());
  std::vector<bool> have(labels.size(), false);
  auto vec_of = [&](size_t i) -> const std::vector<float>& {
    if (!have[i]) {
      vecs[i] = Vector(labels[i]);
      have[i] = true;
    }
    return vecs[i];
  };

  // Plausibility guard before the cosine test: a candidate pair must be a
  // typo-level variant, an abbreviation of the same name, or a synonym the
  // *trained word component* recognizes — pure char-ngram coincidence
  // between unrelated words must not merge them.
  auto plausible = [&](size_t a, size_t b) {
    const size_t dist = util::EditDistance(labels[a], labels[b]);
    if (dist <= 2 && std::max(labels[a].size(), labels[b].size()) >= 4) {
      return true;  // typo variant
    }
    auto ta = util::SplitWhitespace(labels[a]);
    auto tb = util::SplitWhitespace(labels[b]);
    if (ta.size() >= 2 && ta.size() == tb.size() &&
        ta.back() == tb.back()) {
      // Abbreviation pattern ("b willi" / "bruce willi"): same final token
      // and every leading token a prefix of its counterpart.
      bool prefixes = true;
      for (size_t k = 0; k + 1 < ta.size(); ++k) {
        if (!util::StartsWith(ta[k], tb[k]) &&
            !util::StartsWith(tb[k], ta[k])) {
          prefixes = false;
          break;
        }
      }
      if (prefixes) return true;
    }
    if (trained_ && ta.size() == 1 && tb.size() == 1) {
      const int32_t ia = vocab_.Lookup(ta[0]);
      const int32_t ib = vocab_.Lookup(tb[0]);
      if (ia != text::kInvalidTokenId && ib != text::kInvalidTokenId) {
        return w2v_.CosineIds(ia, ib) >= gamma;
      }
    }
    return false;
  };

  UnionFind uf(labels.size());
  constexpr size_t kMaxBucket = 64;  // skip hub buckets (ubiquitous tokens)
  for (const auto& [key, members] : buckets) {
    if (members.size() < 2 || members.size() > kMaxBucket) continue;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        const size_t a = members[i];
        const size_t b = members[j];
        if (labels[a] == labels[b]) continue;
        if (uf.Find(a) == uf.Find(b)) continue;
        if (!plausible(a, b)) continue;
        if (EmbeddingTable::CosineVec(vec_of(a), vec_of(b)) >= gamma) {
          uf.Union(a, b);
        }
      }
    }
  }

  // Canonical member: lexicographically smallest label of the class.
  std::unordered_map<size_t, size_t> canon;
  for (size_t i = 0; i < labels.size(); ++i) {
    size_t root = uf.Find(i);
    auto it = canon.find(root);
    if (it == canon.end() || labels[i] < labels[it->second]) {
      canon[root] = i;
    }
  }
  graph::MergeMap map;
  for (size_t i = 0; i < labels.size(); ++i) {
    size_t c = canon[uf.Find(i)];
    if (c != i) map[labels[i]] = labels[c];
  }
  return map;
}

}  // namespace embed
}  // namespace tdmatch
