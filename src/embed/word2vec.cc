#include "embed/word2vec.h"

#include <atomic>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace embed {

namespace {

constexpr int kSigmoidTableSize = 1024;
constexpr float kMaxExp = 6.0f;

/// Precomputed sigmoid lookup, shared by all trainers.
const float* SigmoidTable() {
  static float table[kSigmoidTableSize];
  static bool init = [] {
    for (int i = 0; i < kSigmoidTableSize; ++i) {
      float x = (static_cast<float>(i) / kSigmoidTableSize * 2.0f - 1.0f) *
                kMaxExp;
      table[i] = 1.0f / (1.0f + std::exp(-x));
    }
    return true;
  }();
  (void)init;
  return table;
}

inline float FastSigmoid(float x) {
  if (x >= kMaxExp) return 1.0f;
  if (x <= -kMaxExp) return 0.0f;
  int idx = static_cast<int>((x / kMaxExp + 1.0f) / 2.0f *
                             (kSigmoidTableSize - 1));
  return SigmoidTable()[idx];
}

constexpr size_t kUnigramTableSize = 1 << 20;

}  // namespace

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {
  TDM_CHECK_GT(options_.dim, 0);
  TDM_CHECK_GT(options_.window, 0);
  TDM_CHECK_GE(options_.negative, 1);
  if (options_.threads == 0) options_.threads = 1;
}

util::Status Word2Vec::Train(
    const std::vector<std::vector<int32_t>>& sentences, size_t vocab_size) {
  if (vocab_size == 0) {
    return util::Status::InvalidArgument("vocab_size must be > 0");
  }
  vocab_size_ = vocab_size;
  const int dim = options_.dim;

  // Frequency counts for the negative-sampling unigram table and
  // subsampling.
  std::vector<uint64_t> counts(vocab_size, 0);
  uint64_t total_words = 0;
  for (const auto& s : sentences) {
    for (int32_t w : s) {
      if (w < 0 || static_cast<size_t>(w) >= vocab_size) {
        return util::Status::OutOfRange("token id out of vocab range");
      }
      ++counts[static_cast<size_t>(w)];
      ++total_words;
    }
  }
  if (total_words == 0) {
    return util::Status::InvalidArgument("no training tokens");
  }

  // Unigram table with the classic 3/4 power smoothing.
  unigram_table_.assign(kUnigramTableSize, 0);
  double norm = 0.0;
  for (uint64_t c : counts) norm += std::pow(static_cast<double>(c), 0.75);
  {
    size_t i = 0;
    double cum = std::pow(static_cast<double>(counts[0]), 0.75) / norm;
    for (size_t t = 0; t < kUnigramTableSize; ++t) {
      unigram_table_[t] = static_cast<int32_t>(i);
      if (static_cast<double>(t) / kUnigramTableSize > cum &&
          i + 1 < vocab_size) {
        ++i;
        cum += std::pow(static_cast<double>(counts[i]), 0.75) / norm;
      }
    }
  }

  // Weight init: syn0 uniform in [-0.5/dim, 0.5/dim], syn1neg zero.
  util::Rng init_rng(options_.seed);
  syn0_.resize(vocab_size * static_cast<size_t>(dim));
  syn1neg_.assign(vocab_size * static_cast<size_t>(dim), 0.0f);
  for (float& v : syn0_) {
    v = static_cast<float>((init_rng.Uniform() - 0.5) / dim);
  }

  const uint64_t total_steps =
      total_words * static_cast<uint64_t>(options_.epochs);
  std::atomic<uint64_t> words_done{0};
  const float initial_lr = static_cast<float>(options_.initial_lr);
  const float min_lr = initial_lr * 1e-4f;
  const double subsample = options_.subsample;
  float* syn0 = syn0_.data();
  float* syn1 = syn1neg_.data();
  const int32_t* table = unigram_table_.data();
  const int negative = options_.negative;
  const int window = options_.window;
  const bool cbow = options_.cbow;

  auto train_range = [&](size_t begin, size_t end, size_t thread_idx) {
    util::Rng rng(options_.seed + 0x9e3779b9ULL * (thread_idx + 1));
    std::vector<float> neu1(static_cast<size_t>(dim));
    std::vector<float> neu1e(static_cast<size_t>(dim));
    std::vector<int32_t> sent;
    uint64_t local_count = 0;

    for (int epoch = 0; epoch < options_.epochs; ++epoch) {
      for (size_t si = begin; si < end; ++si) {
        // Subsample frequent tokens.
        sent.clear();
        for (int32_t w : sentences[si]) {
          if (subsample > 0.0) {
            double f = static_cast<double>(counts[static_cast<size_t>(w)]) /
                       static_cast<double>(total_words);
            double keep = (std::sqrt(f / subsample) + 1.0) * subsample / f;
            if (keep < 1.0 && rng.Uniform() > keep) continue;
          }
          sent.push_back(w);
        }
        local_count += sentences[si].size();
        if ((local_count & 0x3ff) == 0) {
          words_done.fetch_add(local_count, std::memory_order_relaxed);
          local_count = 0;
        }
        const uint64_t done = words_done.load(std::memory_order_relaxed);
        float lr = initial_lr *
                   (1.0f - static_cast<float>(done) /
                               static_cast<float>(total_steps + 1));
        if (lr < min_lr) lr = min_lr;

        const int slen = static_cast<int>(sent.size());
        for (int pos = 0; pos < slen; ++pos) {
          const int32_t center = sent[static_cast<size_t>(pos)];
          const int reduced =
              1 + static_cast<int>(rng.UniformInt(
                      static_cast<uint64_t>(window)));
          const int lo = std::max(0, pos - reduced);
          const int hi = std::min(slen - 1, pos + reduced);

          if (cbow) {
            // Average context -> predict center.
            int cw = 0;
            std::fill(neu1.begin(), neu1.end(), 0.0f);
            std::fill(neu1e.begin(), neu1e.end(), 0.0f);
            for (int p = lo; p <= hi; ++p) {
              if (p == pos) continue;
              const float* v =
                  syn0 + static_cast<size_t>(sent[static_cast<size_t>(p)]) *
                             static_cast<size_t>(dim);
              for (int d = 0; d < dim; ++d) neu1[static_cast<size_t>(d)] += v[d];
              ++cw;
            }
            if (cw == 0) continue;
            for (int d = 0; d < dim; ++d) {
              neu1[static_cast<size_t>(d)] /= static_cast<float>(cw);
            }
            for (int n = 0; n <= negative; ++n) {
              int32_t target;
              float label;
              if (n == 0) {
                target = center;
                label = 1.0f;
              } else {
                target = table[rng.Next() & (kUnigramTableSize - 1)];
                if (target == center) continue;
                label = 0.0f;
              }
              float* out = syn1 + static_cast<size_t>(target) *
                                      static_cast<size_t>(dim);
              float dot = 0.0f;
              for (int d = 0; d < dim; ++d) {
                dot += neu1[static_cast<size_t>(d)] * out[d];
              }
              const float grad = (label - FastSigmoid(dot)) * lr;
              for (int d = 0; d < dim; ++d) {
                neu1e[static_cast<size_t>(d)] += grad * out[d];
                out[d] += grad * neu1[static_cast<size_t>(d)];
              }
            }
            for (int p = lo; p <= hi; ++p) {
              if (p == pos) continue;
              float* v =
                  syn0 + static_cast<size_t>(sent[static_cast<size_t>(p)]) *
                             static_cast<size_t>(dim);
              for (int d = 0; d < dim; ++d) {
                v[d] += neu1e[static_cast<size_t>(d)];
              }
            }
          } else {
            // Skip-gram: center predicts each context word.
            float* vin = syn0 + static_cast<size_t>(center) *
                                    static_cast<size_t>(dim);
            for (int p = lo; p <= hi; ++p) {
              if (p == pos) continue;
              const int32_t context = sent[static_cast<size_t>(p)];
              std::fill(neu1e.begin(), neu1e.end(), 0.0f);
              for (int n = 0; n <= negative; ++n) {
                int32_t target;
                float label;
                if (n == 0) {
                  target = context;
                  label = 1.0f;
                } else {
                  target = table[rng.Next() & (kUnigramTableSize - 1)];
                  if (target == context) continue;
                  label = 0.0f;
                }
                float* out = syn1 + static_cast<size_t>(target) *
                                        static_cast<size_t>(dim);
                float dot = 0.0f;
                for (int d = 0; d < dim; ++d) dot += vin[d] * out[d];
                const float grad = (label - FastSigmoid(dot)) * lr;
                for (int d = 0; d < dim; ++d) {
                  neu1e[static_cast<size_t>(d)] += grad * out[d];
                  out[d] += grad * vin[d];
                }
              }
              for (int d = 0; d < dim; ++d) {
                vin[d] += neu1e[static_cast<size_t>(d)];
              }
            }
          }
        }
      }
    }
  };

  util::ThreadPool::ParallelFor(sentences.size(), options_.threads,
                                train_range);
  trained_ = true;
  return util::Status::OK();
}

const float* Word2Vec::Vector(int32_t id) const {
  TDM_DCHECK(trained_);
  TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < vocab_size_);
  return syn0_.data() + static_cast<size_t>(id) * static_cast<size_t>(dim());
}

std::vector<float> Word2Vec::VectorCopy(int32_t id) const {
  const float* v = Vector(id);
  return std::vector<float>(v, v + dim());
}

double Word2Vec::Cosine(const float* a, const float* b, int dim) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int d = 0; d < dim; ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    na += static_cast<double>(a[d]) * a[d];
    nb += static_cast<double>(b[d]) * b[d];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Word2Vec::CosineIds(int32_t a, int32_t b) const {
  return Cosine(Vector(a), Vector(b), dim());
}

}  // namespace embed
}  // namespace tdmatch
