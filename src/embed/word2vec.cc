#include "embed/word2vec.h"

#include <algorithm>
#include <cmath>

#include "embed/block_sharder.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/simd/kernels.h"
#include "util/timer.h"

namespace tdmatch {
namespace embed {

namespace {

/// Slot count of the (virtual) unigram table; the boundary sampler
/// reproduces the classic table of this size bit-for-bit.
constexpr size_t kUnigramTableSize = 1 << 20;

/// Stream salt separating Word2Vec block streams from Doc2Vec's (see
/// BlockSeed).
constexpr uint64_t kW2vStreamSalt = 0x77327665635f5347ULL;

/// Per-worker scratch reused across all blocks a worker computes.
struct WorkerScratch {
  std::vector<int32_t> slot_syn0;  // row -> block slot, -1 = untouched
  std::vector<int32_t> slot_syn1;
  std::vector<float> neu1;         // CBOW context average
  std::vector<float> neu1e;        // accumulated input gradient
  std::vector<int32_t> filtered;   // subsampling buffer
};

/// Per-block delta buffers for the two weight matrices.
struct BlockDelta {
  SparseDelta syn0;
  SparseDelta syn1;
};

}  // namespace

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {
  TDM_CHECK_GT(options_.dim, 0);
  TDM_CHECK_GT(options_.window, 0);
  TDM_CHECK_GE(options_.negative, 1);
  if (options_.threads == 0) options_.threads = 1;
}

util::Status Word2Vec::Train(const SentenceCorpus& corpus, size_t vocab_size) {
  std::vector<TokenSpan> spans(corpus.NumSentences());
  for (size_t i = 0; i < spans.size(); ++i) spans[i] = corpus.sentence(i);
  return TrainSpans(spans.data(), spans.size(), vocab_size);
}

util::Status Word2Vec::Train(
    const std::vector<std::vector<int32_t>>& sentences, size_t vocab_size) {
  std::vector<TokenSpan> spans(sentences.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    spans[i] = TokenSpan(sentences[i].data(), sentences[i].size());
  }
  return TrainSpans(spans.data(), spans.size(), vocab_size);
}

util::Status Word2Vec::TrainSpans(const TokenSpan* sentences,
                                  size_t num_sentences, size_t vocab_size) {
  if (vocab_size == 0) {
    return util::Status::InvalidArgument("vocab_size must be > 0");
  }
  vocab_size_ = vocab_size;
  const int dim = options_.dim;

  // Frequency counts for the negative-sampling distribution and
  // subsampling, plus the exact per-sentence prefix word counts the LR
  // schedule decays on.
  std::vector<uint64_t> counts(vocab_size, 0);
  std::vector<uint64_t> word_prefix(num_sentences + 1, 0);
  for (size_t si = 0; si < num_sentences; ++si) {
    for (int32_t w : sentences[si]) {
      if (w < 0 || static_cast<size_t>(w) >= vocab_size) {
        return util::Status::OutOfRange("token id out of vocab range");
      }
      ++counts[static_cast<size_t>(w)];
    }
    word_prefix[si + 1] = word_prefix[si] + sentences[si].size();
  }
  const uint64_t total_words = word_prefix[num_sentences];
  if (total_words == 0) {
    return util::Status::InvalidArgument("no training tokens");
  }

  sampler_.Build(counts, kUnigramTableSize);

  // Weight init: syn0 uniform in [-0.5/dim, 0.5/dim], syn1neg zero.
  util::Rng init_rng(options_.seed);
  syn0_.resize(vocab_size * static_cast<size_t>(dim));
  syn1neg_.assign(vocab_size * static_cast<size_t>(dim), 0.0f);
  for (float& v : syn0_) {
    v = static_cast<float>((init_rng.Uniform() - 0.5) / dim);
  }

  // Per-word keep probability for frequency subsampling, hoisted out of
  // the token loop. Sentinel 2 means "always keep, draw nothing".
  const double subsample = options_.subsample;
  std::vector<double> keep_prob;
  if (subsample > 0.0) {
    keep_prob.assign(vocab_size, 2.0);
    for (size_t w = 0; w < vocab_size; ++w) {
      if (counts[w] == 0) continue;
      const double f = static_cast<double>(counts[w]) /
                       static_cast<double>(total_words);
      keep_prob[w] = (std::sqrt(f / subsample) + 1.0) * subsample / f;
    }
  }

  const uint64_t total_steps =
      total_words * static_cast<uint64_t>(options_.epochs);
  const float initial_lr = static_cast<float>(options_.initial_lr);
  float* const syn0 = syn0_.data();
  float* const syn1 = syn1neg_.data();
  const int negative = options_.negative;
  const int window = options_.window;
  const bool cbow = options_.cbow;
  const uint64_t seed = options_.seed;

  // Inner loops below call simd::scalar:: kernels, NOT the dispatched
  // simd:: wrappers: training is pinned to the sequential reference
  // kernels (inline, so codegen matches the historical open-coded loops)
  // because the goldens and the thread-matrix tests assert bit-identical
  // embeddings, and AVX2 reductions reassociate. SIMD dispatch is a
  // serving-side play; see util/simd/kernels.h.
  const size_t dn = static_cast<size_t>(dim);

  // Deterministic block-parallel SGD (see the contract in the header and
  // block_sharder.h): workers train fixed sentence blocks against the
  // group-start weights into sparse delta buffers; deltas merge in
  // canonical block order, so the result is independent of the thread
  // count.
  BlockScheduler sched(num_sentences, options_.threads);
  std::vector<WorkerScratch> scratch(sched.num_workers());
  for (auto& ws : scratch) {
    ws.slot_syn0.assign(vocab_size, -1);
    ws.slot_syn1.assign(vocab_size, -1);
    ws.neu1.resize(static_cast<size_t>(dim));
    ws.neu1e.resize(static_cast<size_t>(dim));
  }
  std::vector<BlockDelta> deltas(
      std::min<size_t>(sched.num_blocks(), kBlocksPerGroup));
  // Per-row touch counts for the weighted merge; zeroed between groups by
  // walking the same touched lists, so steady state is O(touched).
  std::vector<uint32_t> touch0(vocab_size, 0);
  std::vector<uint32_t> touch1(vocab_size, 0);

  epoch_seconds_.clear();
  epoch_seconds_.reserve(static_cast<size_t>(options_.epochs));
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    util::StopWatch epoch_watch;
    const uint64_t epoch_words =
        static_cast<uint64_t>(epoch) * total_words;

    auto compute = [&](size_t block, size_t worker) {
      WorkerScratch& ws = scratch[worker];
      BlockDelta& bd = deltas[block % kBlocksPerGroup];
      bd.syn0.Reset(syn0, dim);
      bd.syn1.Reset(syn1, dim);
      int32_t* const slot0 = ws.slot_syn0.data();
      int32_t* const slot1 = ws.slot_syn1.data();
      float* const neu1e = ws.neu1e.data();
      // The block's private stream: subsampling, window reduction, and
      // negative draws are consumed from it and nothing else.
      util::Rng rng(BlockSeed(seed, kW2vStreamSalt,
                              static_cast<uint64_t>(epoch), block));

      const size_t s_begin = sched.block_begin(block);
      const size_t s_end = sched.block_end(block);
      for (size_t si = s_begin; si < s_end; ++si) {
        const TokenSpan& sentence = sentences[si];
        // Subsample frequent tokens into the reusable buffer; without
        // subsampling the sentence span is trained on in place.
        const int32_t* sent = sentence.data();
        int slen = static_cast<int>(sentence.size());
        if (subsample > 0.0) {
          ws.filtered.clear();
          for (int32_t w : sentence) {
            const double keep = keep_prob[static_cast<size_t>(w)];
            if (keep < 1.0 && rng.Uniform() > keep) continue;
            ws.filtered.push_back(w);
          }
          sent = ws.filtered.data();
          slen = static_cast<int>(ws.filtered.size());
        }
        // Exact per-sentence decay (the old code only refreshed its word
        // counter on exact 1024-token multiples, stalling the schedule on
        // fixed-length walk corpora).
        const float lr =
            DecayedLr(initial_lr, epoch_words + word_prefix[si], total_steps);

        for (int pos = 0; pos < slen; ++pos) {
          const int32_t center = sent[pos];
          const int reduced =
              1 + static_cast<int>(rng.UniformInt(
                      static_cast<uint64_t>(window)));
          const int lo = pos - reduced < 0 ? 0 : pos - reduced;
          const int hi = pos + reduced > slen - 1 ? slen - 1 : pos + reduced;

          if (cbow) {
            // Average context -> predict center.
            int cw = 0;
            std::fill(ws.neu1.begin(), ws.neu1.end(), 0.0f);
            for (int p = lo; p <= hi; ++p) {
              if (p == pos) continue;
              simd::scalar::Add(bd.syn0.Row(sent[p], slot0), ws.neu1.data(),
                                dn);
              ++cw;
            }
            if (cw == 0) continue;
            for (int d = 0; d < dim; ++d) {
              ws.neu1[static_cast<size_t>(d)] /= static_cast<float>(cw);
            }
            const float* const ctx = ws.neu1.data();
            for (int n = 0; n <= negative; ++n) {
              int32_t target;
              float label;
              if (n == 0) {
                target = center;
                label = 1.0f;
              } else {
                target =
                    sampler_.Sample(rng.Next() & (kUnigramTableSize - 1));
                if (target == center) continue;
                label = 0.0f;
              }
              float* const out = bd.syn1.Row(target, slot1);
              const float dot = simd::scalar::Dot(ctx, out, dn);
              const float grad = (label - FastSigmoid(dot)) * lr;
              // n == 0 always runs (no continue path), so assigning there
              // replaces the upfront zero-fill of the scratch gradient.
              if (n == 0) {
                simd::scalar::ScaleInto(grad, out, neu1e, dn);
              } else {
                simd::scalar::Axpy(grad, out, neu1e, dn);
              }
              simd::scalar::Axpy(grad, ctx, out, dn);
            }
            for (int p = lo; p <= hi; ++p) {
              if (p == pos) continue;
              simd::scalar::Add(neu1e, bd.syn0.Row(sent[p], slot0), dn);
            }
          } else {
            // Skip-gram: center predicts each context word.
            float* const vin = bd.syn0.Row(center, slot0);
            for (int p = lo; p <= hi; ++p) {
              if (p == pos) continue;
              const int32_t context = sent[p];
              for (int n = 0; n <= negative; ++n) {
                int32_t target;
                float label;
                if (n == 0) {
                  target = context;
                  label = 1.0f;
                } else {
                  target =
                      sampler_.Sample(rng.Next() & (kUnigramTableSize - 1));
                  if (target == context) continue;
                  label = 0.0f;
                }
                float* const out = bd.syn1.Row(target, slot1);
                const float dot = simd::scalar::Dot(vin, out, dn);
                const float grad = (label - FastSigmoid(dot)) * lr;
                if (n == 0) {
                  simd::scalar::ScaleInto(grad, out, neu1e, dn);
                } else {
                  simd::scalar::Axpy(grad, out, neu1e, dn);
                }
                // syn1 and syn0 deltas live in distinct buffers, so `out`
                // never aliases `vin` and the kernel vectorizes cleanly.
                simd::scalar::Axpy(grad, vin, out, dn);
              }
              simd::scalar::Add(neu1e, vin, dn);
            }
          }
        }
      }
      bd.syn0.Capture(slot0);
      bd.syn1.Capture(slot1);
    };

    // Weighted group merge: each row's delta is averaged over the blocks
    // of the group that touched it (see block_sharder.h on why a plain
    // sum diverges on walk corpora).
    auto merge = [&](size_t group_begin, size_t group_end) {
      for (size_t b = group_begin; b < group_end; ++b) {
        const BlockDelta& bd = deltas[b % kBlocksPerGroup];
        for (int32_t row : bd.syn0.touched()) ++touch0[row];
        for (int32_t row : bd.syn1.touched()) ++touch1[row];
      }
      for (size_t b = group_begin; b < group_end; ++b) {
        const BlockDelta& bd = deltas[b % kBlocksPerGroup];
        bd.syn0.MergeWeighted(touch0.data());
        bd.syn1.MergeWeighted(touch1.data());
      }
      for (size_t b = group_begin; b < group_end; ++b) {
        const BlockDelta& bd = deltas[b % kBlocksPerGroup];
        for (int32_t row : bd.syn0.touched()) touch0[row] = 0;
        for (int32_t row : bd.syn1.touched()) touch1[row] = 0;
      }
    };

    sched.RunEpoch(compute, merge);
    epoch_seconds_.push_back(epoch_watch.ElapsedSeconds());
  }

  trained_ = true;
  return util::Status::OK();
}

const float* Word2Vec::Vector(int32_t id) const {
  TDM_DCHECK(trained_);
  TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < vocab_size_);
  return syn0_.data() + static_cast<size_t>(id) * static_cast<size_t>(dim());
}

std::vector<float> Word2Vec::VectorCopy(int32_t id) const {
  const float* v = Vector(id);
  return std::vector<float>(v, v + dim());
}

double Word2Vec::Cosine(const float* a, const float* b, int dim) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int d = 0; d < dim; ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    na += static_cast<double>(a[d]) * a[d];
    nb += static_cast<double>(b[d]) * b[d];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Word2Vec::CosineIds(int32_t a, int32_t b) const {
  return Cosine(Vector(a), Vector(b), dim());
}

}  // namespace embed
}  // namespace tdmatch
