#include "embed/word2vec.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace tdmatch {
namespace embed {

namespace {

constexpr int kSigmoidTableSize = 1024;
constexpr float kMaxExp = 6.0f;

/// Precomputed sigmoid lookup, shared by all trainers.
const float* SigmoidTable() {
  static float table[kSigmoidTableSize];
  static bool init = [] {
    for (int i = 0; i < kSigmoidTableSize; ++i) {
      float x = (static_cast<float>(i) / kSigmoidTableSize * 2.0f - 1.0f) *
                kMaxExp;
      table[i] = 1.0f / (1.0f + std::exp(-x));
    }
    return true;
  }();
  (void)init;
  return table;
}

inline float FastSigmoid(float x) {
  if (x >= kMaxExp) return 1.0f;
  if (x <= -kMaxExp) return 0.0f;
  int idx = static_cast<int>((x / kMaxExp + 1.0f) / 2.0f *
                             (kSigmoidTableSize - 1));
  return SigmoidTable()[idx];
}

/// Slot count of the (virtual) unigram table; the boundary sampler
/// reproduces the classic table of this size bit-for-bit.
constexpr size_t kUnigramTableSize = 1 << 20;

}  // namespace

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {
  TDM_CHECK_GT(options_.dim, 0);
  TDM_CHECK_GT(options_.window, 0);
  TDM_CHECK_GE(options_.negative, 1);
  if (options_.threads == 0) options_.threads = 1;
}

util::Status Word2Vec::Train(const SentenceCorpus& corpus, size_t vocab_size) {
  std::vector<TokenSpan> spans(corpus.NumSentences());
  for (size_t i = 0; i < spans.size(); ++i) spans[i] = corpus.sentence(i);
  return TrainSpans(spans.data(), spans.size(), vocab_size);
}

util::Status Word2Vec::Train(
    const std::vector<std::vector<int32_t>>& sentences, size_t vocab_size) {
  std::vector<TokenSpan> spans(sentences.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    spans[i] = TokenSpan(sentences[i].data(), sentences[i].size());
  }
  return TrainSpans(spans.data(), spans.size(), vocab_size);
}

util::Status Word2Vec::TrainSpans(const TokenSpan* sentences,
                                  size_t num_sentences, size_t vocab_size) {
  if (vocab_size == 0) {
    return util::Status::InvalidArgument("vocab_size must be > 0");
  }
  vocab_size_ = vocab_size;
  const int dim = options_.dim;

  // Frequency counts for the negative-sampling distribution and
  // subsampling.
  std::vector<uint64_t> counts(vocab_size, 0);
  uint64_t total_words = 0;
  for (size_t si = 0; si < num_sentences; ++si) {
    for (int32_t w : sentences[si]) {
      if (w < 0 || static_cast<size_t>(w) >= vocab_size) {
        return util::Status::OutOfRange("token id out of vocab range");
      }
      ++counts[static_cast<size_t>(w)];
      ++total_words;
    }
  }
  if (total_words == 0) {
    return util::Status::InvalidArgument("no training tokens");
  }

  sampler_.Build(counts, kUnigramTableSize);

  // Weight init: syn0 uniform in [-0.5/dim, 0.5/dim], syn1neg zero.
  util::Rng init_rng(options_.seed);
  syn0_.resize(vocab_size * static_cast<size_t>(dim));
  syn1neg_.assign(vocab_size * static_cast<size_t>(dim), 0.0f);
  for (float& v : syn0_) {
    v = static_cast<float>((init_rng.Uniform() - 0.5) / dim);
  }

  // Per-word keep probability for frequency subsampling, hoisted out of
  // the token loop (same double arithmetic as the classic per-token
  // computation, so the RNG consumption pattern is unchanged). Sentinel 2
  // means "always keep, draw nothing".
  const double subsample = options_.subsample;
  std::vector<double> keep_prob;
  if (subsample > 0.0) {
    keep_prob.assign(vocab_size, 2.0);
    for (size_t w = 0; w < vocab_size; ++w) {
      if (counts[w] == 0) continue;
      const double f = static_cast<double>(counts[w]) /
                       static_cast<double>(total_words);
      keep_prob[w] = (std::sqrt(f / subsample) + 1.0) * subsample / f;
    }
  }

  const uint64_t total_steps =
      total_words * static_cast<uint64_t>(options_.epochs);
  const float initial_lr = static_cast<float>(options_.initial_lr);
  const float min_lr = initial_lr * 1e-4f;
  float* const syn0 = syn0_.data();
  float* const syn1 = syn1neg_.data();
  const int negative = options_.negative;
  const int window = options_.window;
  const bool cbow = options_.cbow;

  // Canonical-order sequential SGD (see determinism contract in the
  // header). The RNG stream and counter flushing replicate the previous
  // implementation's first worker exactly, so fixed-seed output is
  // unchanged.
  util::Rng rng(options_.seed + 0x9e3779b9ULL * 1);
  std::vector<float> neu1(static_cast<size_t>(dim));
  std::vector<float> neu1e_v(static_cast<size_t>(dim));
  float* const neu1e = neu1e_v.data();
  std::vector<int32_t> filtered;  // reusable subsampling buffer
  uint64_t words_done = 0;
  uint64_t local_count = 0;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (size_t si = 0; si < num_sentences; ++si) {
      const TokenSpan& sentence = sentences[si];
      // Subsample frequent tokens into the reusable buffer; without
      // subsampling the sentence span is trained on in place.
      const int32_t* sent = sentence.data();
      int slen = static_cast<int>(sentence.size());
      if (subsample > 0.0) {
        filtered.clear();
        for (int32_t w : sentence) {
          const double keep = keep_prob[static_cast<size_t>(w)];
          if (keep < 1.0 && rng.Uniform() > keep) continue;
          filtered.push_back(w);
        }
        sent = filtered.data();
        slen = static_cast<int>(filtered.size());
      }
      local_count += sentence.size();
      if ((local_count & 0x3ff) == 0) {
        words_done += local_count;
        local_count = 0;
      }
      float lr = initial_lr *
                 (1.0f - static_cast<float>(words_done) /
                             static_cast<float>(total_steps + 1));
      if (lr < min_lr) lr = min_lr;

      for (int pos = 0; pos < slen; ++pos) {
        const int32_t center = sent[pos];
        const int reduced =
            1 + static_cast<int>(rng.UniformInt(
                    static_cast<uint64_t>(window)));
        const int lo = pos - reduced < 0 ? 0 : pos - reduced;
        const int hi = pos + reduced > slen - 1 ? slen - 1 : pos + reduced;

        if (cbow) {
          // Average context -> predict center.
          int cw = 0;
          std::fill(neu1.begin(), neu1.end(), 0.0f);
          for (int p = lo; p <= hi; ++p) {
            if (p == pos) continue;
            const float* const v =
                syn0 + static_cast<size_t>(sent[p]) *
                           static_cast<size_t>(dim);
            for (int d = 0; d < dim; ++d) neu1[static_cast<size_t>(d)] += v[d];
            ++cw;
          }
          if (cw == 0) continue;
          for (int d = 0; d < dim; ++d) {
            neu1[static_cast<size_t>(d)] /= static_cast<float>(cw);
          }
          const float* const ctx = neu1.data();
          for (int n = 0; n <= negative; ++n) {
            int32_t target;
            float label;
            if (n == 0) {
              target = center;
              label = 1.0f;
            } else {
              target = sampler_.Sample(rng.Next() & (kUnigramTableSize - 1));
              if (target == center) continue;
              label = 0.0f;
            }
            float* const out = syn1 + static_cast<size_t>(target) *
                                          static_cast<size_t>(dim);
            float dot = 0.0f;
            for (int d = 0; d < dim; ++d) dot += ctx[d] * out[d];
            const float grad = (label - FastSigmoid(dot)) * lr;
            // n == 0 always runs (no continue path), so assigning there
            // replaces the upfront zero-fill of the scratch gradient.
            if (n == 0) {
              for (int d = 0; d < dim; ++d) neu1e[d] = grad * out[d];
            } else {
              for (int d = 0; d < dim; ++d) neu1e[d] += grad * out[d];
            }
            for (int d = 0; d < dim; ++d) out[d] += grad * ctx[d];
          }
          for (int p = lo; p <= hi; ++p) {
            if (p == pos) continue;
            float* const v =
                syn0 + static_cast<size_t>(sent[p]) *
                           static_cast<size_t>(dim);
            for (int d = 0; d < dim; ++d) v[d] += neu1e[d];
          }
        } else {
          // Skip-gram: center predicts each context word.
          float* const vin = syn0 + static_cast<size_t>(center) *
                                        static_cast<size_t>(dim);
          for (int p = lo; p <= hi; ++p) {
            if (p == pos) continue;
            const int32_t context = sent[p];
            for (int n = 0; n <= negative; ++n) {
              int32_t target;
              float label;
              if (n == 0) {
                target = context;
                label = 1.0f;
              } else {
                target =
                    sampler_.Sample(rng.Next() & (kUnigramTableSize - 1));
                if (target == context) continue;
                label = 0.0f;
              }
              float* const out = syn1 + static_cast<size_t>(target) *
                                            static_cast<size_t>(dim);
              float dot = 0.0f;
              for (int d = 0; d < dim; ++d) dot += vin[d] * out[d];
              const float grad = (label - FastSigmoid(dot)) * lr;
              if (n == 0) {
                for (int d = 0; d < dim; ++d) neu1e[d] = grad * out[d];
              } else {
                for (int d = 0; d < dim; ++d) neu1e[d] += grad * out[d];
              }
              // syn1 and syn0 are distinct allocations, so `out` never
              // aliases `vin` and this loop vectorizes cleanly.
              for (int d = 0; d < dim; ++d) out[d] += grad * vin[d];
            }
            for (int d = 0; d < dim; ++d) vin[d] += neu1e[d];
          }
        }
      }
    }
  }

  trained_ = true;
  return util::Status::OK();
}

const float* Word2Vec::Vector(int32_t id) const {
  TDM_DCHECK(trained_);
  TDM_DCHECK(id >= 0 && static_cast<size_t>(id) < vocab_size_);
  return syn0_.data() + static_cast<size_t>(id) * static_cast<size_t>(dim());
}

std::vector<float> Word2Vec::VectorCopy(int32_t id) const {
  const float* v = Vector(id);
  return std::vector<float>(v, v + dim());
}

double Word2Vec::Cosine(const float* a, const float* b, int dim) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int d = 0; d < dim; ++d) {
    dot += static_cast<double>(a[d]) * b[d];
    na += static_cast<double>(a[d]) * a[d];
    nb += static_cast<double>(b[d]) * b[d];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Word2Vec::CosineIds(int32_t a, int32_t b) const {
  return Cosine(Vector(a), Vector(b), dim());
}

}  // namespace embed
}  // namespace tdmatch
