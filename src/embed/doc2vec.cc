#include "embed/doc2vec.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace tdmatch {
namespace embed {

namespace {
constexpr size_t kTableSize = 1 << 18;

inline float Sigmoid(float x) {
  if (x > 6.0f) return 1.0f;
  if (x < -6.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}
}  // namespace

Doc2Vec::Doc2Vec(Doc2VecOptions options) : options_(options) {
  TDM_CHECK_GT(options_.dim, 0);
  if (options_.threads == 0) options_.threads = 1;
}

util::Status Doc2Vec::Train(const std::vector<std::vector<int32_t>>& docs,
                            size_t word_vocab_size) {
  if (word_vocab_size == 0) {
    return util::Status::InvalidArgument("word_vocab_size must be > 0");
  }
  num_docs_ = docs.size();
  word_vocab_size_ = word_vocab_size;
  const int dim = options_.dim;

  std::vector<uint64_t> counts(word_vocab_size, 0);
  uint64_t total = 0;
  for (const auto& d : docs) {
    for (int32_t w : d) {
      if (w < 0 || static_cast<size_t>(w) >= word_vocab_size) {
        return util::Status::OutOfRange("word id out of range");
      }
      ++counts[static_cast<size_t>(w)];
      ++total;
    }
  }
  if (total == 0) return util::Status::InvalidArgument("no tokens");

  sampler_.Build(counts, kTableSize);

  util::Rng init(options_.seed);
  doc_vecs_.resize(num_docs_ * static_cast<size_t>(dim));
  word_out_.assign(word_vocab_size * static_cast<size_t>(dim), 0.0f);
  for (float& v : doc_vecs_) {
    v = static_cast<float>((init.Uniform() - 0.5) / dim);
  }

  const float lr0 = static_cast<float>(options_.initial_lr);
  float* const dvec = doc_vecs_.data();
  float* const wout = word_out_.data();

  // Canonical-order sequential SGD; the RNG stream replicates the previous
  // implementation's first worker so fixed-seed output is unchanged.
  util::Rng rng(options_.seed + 77777ULL * 1);
  std::vector<float> grad_v(static_cast<size_t>(dim));
  float* const grad = grad_v.data();
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const float lr = lr0 * (1.0f - static_cast<float>(epoch) /
                                       static_cast<float>(options_.epochs));
    for (size_t di = 0; di < num_docs_; ++di) {
      float* const v = dvec + di * static_cast<size_t>(dim);
      for (int32_t w : docs[di]) {
        for (int n = 0; n <= options_.negative; ++n) {
          int32_t target;
          float label;
          if (n == 0) {
            target = w;
            label = 1.0f;
          } else {
            target = sampler_.Sample(rng.Next() & (kTableSize - 1));
            if (target == w) continue;
            label = 0.0f;
          }
          float* const out =
              wout + static_cast<size_t>(target) * static_cast<size_t>(dim);
          float dot = 0.0f;
          for (int d = 0; d < dim; ++d) dot += v[d] * out[d];
          const float gr = (label - Sigmoid(dot)) * lr;
          // n == 0 always runs, so assignment replaces the zero-fill.
          if (n == 0) {
            for (int d = 0; d < dim; ++d) grad[d] = gr * out[d];
          } else {
            for (int d = 0; d < dim; ++d) grad[d] += gr * out[d];
          }
          for (int d = 0; d < dim; ++d) out[d] += gr * v[d];
        }
        for (int d = 0; d < dim; ++d) v[d] += grad[d];
      }
    }
  }
  trained_ = true;
  return util::Status::OK();
}

std::vector<float> Doc2Vec::DocVector(size_t doc) const {
  TDM_DCHECK(trained_);
  TDM_DCHECK_LT(doc, num_docs_);
  const float* v = doc_vecs_.data() + doc * static_cast<size_t>(options_.dim);
  return std::vector<float>(v, v + options_.dim);
}

std::vector<float> Doc2Vec::Infer(const std::vector<int32_t>& doc,
                                  int steps) const {
  TDM_DCHECK(trained_);
  const int dim = options_.dim;
  util::Rng rng(options_.seed ^ 0xabcdef);
  std::vector<float> v(static_cast<size_t>(dim));
  for (float& x : v) x = static_cast<float>((rng.Uniform() - 0.5) / dim);
  const float lr = static_cast<float>(options_.initial_lr);
  std::vector<float> grad(static_cast<size_t>(dim));
  for (int s = 0; s < steps; ++s) {
    for (int32_t w : doc) {
      if (w < 0 || static_cast<size_t>(w) >= word_vocab_size_) continue;
      std::fill(grad.begin(), grad.end(), 0.0f);
      for (int n = 0; n <= options_.negative; ++n) {
        int32_t target;
        float label;
        if (n == 0) {
          target = w;
          label = 1.0f;
        } else {
          target = sampler_.Sample(rng.Next() & (kTableSize - 1));
          if (target == w) continue;
          label = 0.0f;
        }
        const float* out = word_out_.data() +
                           static_cast<size_t>(target) *
                               static_cast<size_t>(dim);
        float dot = 0.0f;
        for (int d = 0; d < dim; ++d) dot += v[static_cast<size_t>(d)] * out[d];
        const float gr = (label - Sigmoid(dot)) * lr;
        for (int d = 0; d < dim; ++d) {
          grad[static_cast<size_t>(d)] += gr * out[d];
        }
      }
      for (int d = 0; d < dim; ++d) {
        v[static_cast<size_t>(d)] += grad[static_cast<size_t>(d)];
      }
    }
  }
  return v;
}

}  // namespace embed
}  // namespace tdmatch
