#include "embed/doc2vec.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace embed {

namespace {
constexpr size_t kTableSize = 1 << 18;

inline float Sigmoid(float x) {
  if (x > 6.0f) return 1.0f;
  if (x < -6.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}
}  // namespace

Doc2Vec::Doc2Vec(Doc2VecOptions options) : options_(options) {
  TDM_CHECK_GT(options_.dim, 0);
  if (options_.threads == 0) options_.threads = 1;
}

util::Status Doc2Vec::Train(const std::vector<std::vector<int32_t>>& docs,
                            size_t word_vocab_size) {
  if (word_vocab_size == 0) {
    return util::Status::InvalidArgument("word_vocab_size must be > 0");
  }
  num_docs_ = docs.size();
  word_vocab_size_ = word_vocab_size;
  const int dim = options_.dim;

  std::vector<uint64_t> counts(word_vocab_size, 0);
  uint64_t total = 0;
  for (const auto& d : docs) {
    for (int32_t w : d) {
      if (w < 0 || static_cast<size_t>(w) >= word_vocab_size) {
        return util::Status::OutOfRange("word id out of range");
      }
      ++counts[static_cast<size_t>(w)];
      ++total;
    }
  }
  if (total == 0) return util::Status::InvalidArgument("no tokens");

  unigram_table_.assign(kTableSize, 0);
  double norm = 0.0;
  for (uint64_t c : counts) norm += std::pow(static_cast<double>(c), 0.75);
  size_t wi = 0;
  double cum = std::pow(static_cast<double>(counts[0]), 0.75) / norm;
  for (size_t t = 0; t < kTableSize; ++t) {
    unigram_table_[t] = static_cast<int32_t>(wi);
    if (static_cast<double>(t) / kTableSize > cum &&
        wi + 1 < word_vocab_size) {
      ++wi;
      cum += std::pow(static_cast<double>(counts[wi]), 0.75) / norm;
    }
  }

  util::Rng init(options_.seed);
  doc_vecs_.resize(num_docs_ * static_cast<size_t>(dim));
  word_out_.assign(word_vocab_size * static_cast<size_t>(dim), 0.0f);
  for (float& v : doc_vecs_) {
    v = static_cast<float>((init.Uniform() - 0.5) / dim);
  }

  const float lr0 = static_cast<float>(options_.initial_lr);
  float* dvec = doc_vecs_.data();
  float* wout = word_out_.data();
  const int32_t* table = unigram_table_.data();

  util::ThreadPool::ParallelFor(
      num_docs_, options_.threads,
      [&](size_t begin, size_t end, size_t tid) {
        util::Rng rng(options_.seed + 77777ULL * (tid + 1));
        std::vector<float> grad(static_cast<size_t>(dim));
        for (int epoch = 0; epoch < options_.epochs; ++epoch) {
          const float lr =
              lr0 * (1.0f - static_cast<float>(epoch) /
                                static_cast<float>(options_.epochs));
          for (size_t di = begin; di < end; ++di) {
            float* v = dvec + di * static_cast<size_t>(dim);
            for (int32_t w : docs[di]) {
              std::fill(grad.begin(), grad.end(), 0.0f);
              for (int n = 0; n <= options_.negative; ++n) {
                int32_t target;
                float label;
                if (n == 0) {
                  target = w;
                  label = 1.0f;
                } else {
                  target = table[rng.Next() & (kTableSize - 1)];
                  if (target == w) continue;
                  label = 0.0f;
                }
                float* out =
                    wout + static_cast<size_t>(target) *
                               static_cast<size_t>(dim);
                float dot = 0.0f;
                for (int d = 0; d < dim; ++d) dot += v[d] * out[d];
                const float gr = (label - Sigmoid(dot)) * lr;
                for (int d = 0; d < dim; ++d) {
                  grad[static_cast<size_t>(d)] += gr * out[d];
                  out[d] += gr * v[d];
                }
              }
              for (int d = 0; d < dim; ++d) {
                v[d] += grad[static_cast<size_t>(d)];
              }
            }
          }
        }
      });
  trained_ = true;
  return util::Status::OK();
}

std::vector<float> Doc2Vec::DocVector(size_t doc) const {
  TDM_DCHECK(trained_);
  TDM_DCHECK_LT(doc, num_docs_);
  const float* v = doc_vecs_.data() + doc * static_cast<size_t>(options_.dim);
  return std::vector<float>(v, v + options_.dim);
}

std::vector<float> Doc2Vec::Infer(const std::vector<int32_t>& doc,
                                  int steps) const {
  TDM_DCHECK(trained_);
  const int dim = options_.dim;
  util::Rng rng(options_.seed ^ 0xabcdef);
  std::vector<float> v(static_cast<size_t>(dim));
  for (float& x : v) x = static_cast<float>((rng.Uniform() - 0.5) / dim);
  const float lr = static_cast<float>(options_.initial_lr);
  for (int s = 0; s < steps; ++s) {
    for (int32_t w : doc) {
      if (w < 0 || static_cast<size_t>(w) >= word_vocab_size_) continue;
      std::vector<float> grad(static_cast<size_t>(dim), 0.0f);
      for (int n = 0; n <= options_.negative; ++n) {
        int32_t target;
        float label;
        if (n == 0) {
          target = w;
          label = 1.0f;
        } else {
          target = unigram_table_[rng.Next() & (kTableSize - 1)];
          if (target == w) continue;
          label = 0.0f;
        }
        const float* out = word_out_.data() +
                           static_cast<size_t>(target) *
                               static_cast<size_t>(dim);
        float dot = 0.0f;
        for (int d = 0; d < dim; ++d) dot += v[static_cast<size_t>(d)] * out[d];
        const float gr = (label - Sigmoid(dot)) * lr;
        for (int d = 0; d < dim; ++d) {
          grad[static_cast<size_t>(d)] += gr * out[d];
        }
      }
      for (int d = 0; d < dim; ++d) {
        v[static_cast<size_t>(d)] += grad[static_cast<size_t>(d)];
      }
    }
  }
  return v;
}

}  // namespace embed
}  // namespace tdmatch
