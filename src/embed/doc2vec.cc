#include "embed/doc2vec.h"

#include <algorithm>
#include <cmath>

#include "embed/block_sharder.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/simd/kernels.h"

namespace tdmatch {
namespace embed {

namespace {
constexpr size_t kTableSize = 1 << 18;

/// Stream salt separating Doc2Vec block streams from Word2Vec's.
constexpr uint64_t kD2vStreamSalt = 0x64327665635f5347ULL;

/// Exact sigmoid (Doc2Vec trains few enough pairs that the table lookup
/// is not worth the grid coupling).
inline float Sigmoid(float x) {
  if (x > 6.0f) return 1.0f;
  if (x < -6.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

struct WorkerScratch {
  std::vector<int32_t> slot_docs;   // doc row -> block slot
  std::vector<int32_t> slot_words;  // word_out row -> block slot
  std::vector<float> grad;
};

struct BlockDelta {
  SparseDelta docs;
  SparseDelta words;
};

}  // namespace

Doc2Vec::Doc2Vec(Doc2VecOptions options) : options_(options) {
  TDM_CHECK_GT(options_.dim, 0);
  if (options_.threads == 0) options_.threads = 1;
}

util::Status Doc2Vec::Train(const std::vector<std::vector<int32_t>>& docs,
                            size_t word_vocab_size) {
  if (word_vocab_size == 0) {
    return util::Status::InvalidArgument("word_vocab_size must be > 0");
  }
  num_docs_ = docs.size();
  word_vocab_size_ = word_vocab_size;
  const int dim = options_.dim;

  std::vector<uint64_t> counts(word_vocab_size, 0);
  uint64_t total = 0;
  for (const auto& d : docs) {
    for (int32_t w : d) {
      if (w < 0 || static_cast<size_t>(w) >= word_vocab_size) {
        return util::Status::OutOfRange("word id out of range");
      }
      ++counts[static_cast<size_t>(w)];
      ++total;
    }
  }
  if (total == 0) return util::Status::InvalidArgument("no tokens");

  sampler_.Build(counts, kTableSize);

  util::Rng init(options_.seed);
  doc_vecs_.resize(num_docs_ * static_cast<size_t>(dim));
  word_out_.assign(word_vocab_size * static_cast<size_t>(dim), 0.0f);
  for (float& v : doc_vecs_) {
    v = static_cast<float>((init.Uniform() - 0.5) / dim);
  }

  const float lr0 = static_cast<float>(options_.initial_lr);
  float* const dvec = doc_vecs_.data();
  float* const wout = word_out_.data();
  const int negative = options_.negative;
  const uint64_t seed = options_.seed;

  // Inner loops call the simd::scalar:: reference kernels, not the
  // dispatched wrappers: training is golden-locked to bit-identical
  // embeddings and the inline scalar kernels compile to the historical
  // loops exactly (see util/simd/kernels.h).
  const size_t dn = static_cast<size_t>(dim);

  // Deterministic block-parallel SGD over doc blocks (same schedule and
  // contract as Word2Vec, see block_sharder.h). A doc's vector is only
  // ever touched by its own block; the shared word-output matrix merges
  // through the per-block deltas in canonical order.
  BlockScheduler sched(num_docs_, options_.threads);
  std::vector<WorkerScratch> scratch(sched.num_workers());
  for (auto& ws : scratch) {
    ws.slot_docs.assign(num_docs_, -1);
    ws.slot_words.assign(word_vocab_size, -1);
    ws.grad.resize(static_cast<size_t>(dim));
  }
  std::vector<BlockDelta> deltas(
      std::min<size_t>(sched.num_blocks(), kBlocksPerGroup));
  // Per-row touch counts for the weighted merge. Doc rows are block-local
  // (count 1, full update); word-output rows are shared and averaged.
  std::vector<uint32_t> touch_docs(num_docs_, 0);
  std::vector<uint32_t> touch_words(word_vocab_size, 0);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    const float lr = lr0 * (1.0f - static_cast<float>(epoch) /
                                       static_cast<float>(options_.epochs));

    auto compute = [&](size_t block, size_t worker) {
      WorkerScratch& ws = scratch[worker];
      BlockDelta& bd = deltas[block % kBlocksPerGroup];
      bd.docs.Reset(dvec, dim);
      bd.words.Reset(wout, dim);
      int32_t* const slot_docs = ws.slot_docs.data();
      int32_t* const slot_words = ws.slot_words.data();
      float* const grad = ws.grad.data();
      util::Rng rng(BlockSeed(seed, kD2vStreamSalt,
                              static_cast<uint64_t>(epoch), block));

      const size_t d_begin = sched.block_begin(block);
      const size_t d_end = sched.block_end(block);
      for (size_t di = d_begin; di < d_end; ++di) {
        float* const v = bd.docs.Row(static_cast<int32_t>(di), slot_docs);
        for (int32_t w : docs[di]) {
          for (int n = 0; n <= negative; ++n) {
            int32_t target;
            float label;
            if (n == 0) {
              target = w;
              label = 1.0f;
            } else {
              target = sampler_.Sample(rng.Next() & (kTableSize - 1));
              if (target == w) continue;
              label = 0.0f;
            }
            float* const out = bd.words.Row(target, slot_words);
            const float dot = simd::scalar::Dot(v, out, dn);
            const float gr = (label - Sigmoid(dot)) * lr;
            // n == 0 always runs, so assignment replaces the zero-fill.
            if (n == 0) {
              simd::scalar::ScaleInto(gr, out, grad, dn);
            } else {
              simd::scalar::Axpy(gr, out, grad, dn);
            }
            simd::scalar::Axpy(gr, v, out, dn);
          }
          simd::scalar::Add(grad, v, dn);
        }
      }
      bd.docs.Capture(slot_docs);
      bd.words.Capture(slot_words);
    };

    auto merge = [&](size_t group_begin, size_t group_end) {
      for (size_t b = group_begin; b < group_end; ++b) {
        const BlockDelta& bd = deltas[b % kBlocksPerGroup];
        for (int32_t row : bd.docs.touched()) ++touch_docs[row];
        for (int32_t row : bd.words.touched()) ++touch_words[row];
      }
      for (size_t b = group_begin; b < group_end; ++b) {
        const BlockDelta& bd = deltas[b % kBlocksPerGroup];
        bd.docs.MergeWeighted(touch_docs.data());
        bd.words.MergeWeighted(touch_words.data());
      }
      for (size_t b = group_begin; b < group_end; ++b) {
        const BlockDelta& bd = deltas[b % kBlocksPerGroup];
        for (int32_t row : bd.docs.touched()) touch_docs[row] = 0;
        for (int32_t row : bd.words.touched()) touch_words[row] = 0;
      }
    };

    sched.RunEpoch(compute, merge);
  }
  trained_ = true;
  return util::Status::OK();
}

std::vector<float> Doc2Vec::DocVector(size_t doc) const {
  TDM_DCHECK(trained_);
  TDM_DCHECK_LT(doc, num_docs_);
  const float* v = doc_vecs_.data() + doc * static_cast<size_t>(options_.dim);
  return std::vector<float>(v, v + options_.dim);
}

std::vector<float> Doc2Vec::Infer(const std::vector<int32_t>& doc,
                                  int steps) const {
  TDM_DCHECK(trained_);
  const int dim = options_.dim;
  util::Rng rng(options_.seed ^ 0xabcdef);
  std::vector<float> v(static_cast<size_t>(dim));
  for (float& x : v) x = static_cast<float>((rng.Uniform() - 0.5) / dim);
  const float lr = static_cast<float>(options_.initial_lr);
  std::vector<float> grad(static_cast<size_t>(dim));
  for (int s = 0; s < steps; ++s) {
    for (int32_t w : doc) {
      if (w < 0 || static_cast<size_t>(w) >= word_vocab_size_) continue;
      std::fill(grad.begin(), grad.end(), 0.0f);
      for (int n = 0; n <= options_.negative; ++n) {
        int32_t target;
        float label;
        if (n == 0) {
          target = w;
          label = 1.0f;
        } else {
          target = sampler_.Sample(rng.Next() & (kTableSize - 1));
          if (target == w) continue;
          label = 0.0f;
        }
        const float* out = word_out_.data() +
                           static_cast<size_t>(target) *
                               static_cast<size_t>(dim);
        // Inference pins the scalar kernels too: Infer must stay
        // bit-stable for a fixed seed regardless of serving dispatch.
        const float dot =
            simd::scalar::Dot(v.data(), out, static_cast<size_t>(dim));
        const float gr = (label - Sigmoid(dot)) * lr;
        simd::scalar::Axpy(gr, out, grad.data(), static_cast<size_t>(dim));
      }
      simd::scalar::Add(grad.data(), v.data(), static_cast<size_t>(dim));
    }
  }
  return v;
}

}  // namespace embed
}  // namespace tdmatch
