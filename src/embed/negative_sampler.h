#ifndef TDMATCH_EMBED_NEGATIVE_SAMPLER_H_
#define TDMATCH_EMBED_NEGATIVE_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdmatch {
namespace embed {

/// \brief Unigram^0.75 negative sampler in boundary form.
///
/// The classic word2vec sampler materializes a table of `table_size`
/// word ids and indexes it with a uniform draw. That table is megabytes
/// (1<<20 entries here), so every negative sample is a random read into
/// cold memory — measured at roughly half of all Word2Vec training time
/// in this codebase. The table is a nondecreasing step function of the
/// slot index, so it is fully described by one boundary offset per word:
/// `bounds_[i]` is the first slot the classic construction would assign
/// to word i. Sampling becomes a branchless binary search over a
/// vocab-sized, cache-resident array and returns **bit-identical** ids to
/// the table it replaces (goldens in embed tests lock this in).
class NegativeSampler {
 public:
  NegativeSampler() = default;

  /// Builds the boundary table with the classic 3/4-power smoothing,
  /// replicating the incremental table construction of word2vec.c (and of
  /// the previous in-repo implementation) exactly.
  void Build(const std::vector<uint64_t>& counts, size_t table_size);

  /// Word id for table slot `slot` (must be < table_size). Equivalent to
  /// `table[slot]` of the materialized table.
  int32_t Sample(uint64_t slot) const {
    // Last i with bounds_[i] <= slot, branchless binary search.
    const uint32_t s = static_cast<uint32_t>(slot);
    const uint32_t* b = bounds_.data();
    size_t lo = 0;
    size_t len = bounds_.size();
    while (len > 1) {
      const size_t half = len / 2;
      lo += (b[lo + half] <= s) ? half : 0;
      len -= half;
    }
    return static_cast<int32_t>(lo);
  }

  size_t table_size() const { return table_size_; }
  bool built() const { return !bounds_.empty(); }

 private:
  /// bounds_[i] = first slot of word i; words the classic construction
  /// never reaches keep the sentinel table_size_ (never sampled).
  std::vector<uint32_t> bounds_;
  size_t table_size_ = 0;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_NEGATIVE_SAMPLER_H_
