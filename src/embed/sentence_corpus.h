#ifndef TDMATCH_EMBED_SENTENCE_CORPUS_H_
#define TDMATCH_EMBED_SENTENCE_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace tdmatch {
namespace embed {

/// \brief Non-owning view of one token sentence.
class TokenSpan {
 public:
  using value_type = int32_t;
  using const_iterator = const int32_t*;

  constexpr TokenSpan() = default;
  constexpr TokenSpan(const int32_t* data, size_t size)
      : data_(data), size_(size) {}

  constexpr const int32_t* begin() const { return data_; }
  constexpr const int32_t* end() const { return data_ + size_; }
  constexpr const int32_t* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr int32_t operator[](size_t i) const { return data_[i]; }

 private:
  const int32_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Flat training corpus: all sentences in one contiguous token
/// array plus an offsets array (CSR over sentences).
///
/// This is the hand-off format between the random-walk generator and the
/// Word2Vec trainer: one allocation instead of one vector per walk, and
/// the trainer streams tokens sequentially (cache-friendly) instead of
/// chasing a pointer per sentence.
class SentenceCorpus {
 public:
  SentenceCorpus() { offsets_.push_back(0); }

  size_t NumSentences() const { return offsets_.size() - 1; }
  size_t NumTokens() const { return tokens_.size(); }
  bool empty() const { return NumSentences() == 0; }

  TokenSpan sentence(size_t i) const {
    TDM_DCHECK_LT(i, NumSentences());
    return TokenSpan(tokens_.data() + offsets_[i],
                     offsets_[i + 1] - offsets_[i]);
  }

  /// Appends one sentence (copies the tokens).
  void Append(const int32_t* data, size_t n) {
    tokens_.insert(tokens_.end(), data, data + n);
    offsets_.push_back(tokens_.size());
  }
  void Append(const std::vector<int32_t>& sentence) {
    Append(sentence.data(), sentence.size());
  }

  /// Pre-sizes the backing arrays.
  void Reserve(size_t num_sentences, size_t num_tokens) {
    offsets_.reserve(num_sentences + 1);
    tokens_.reserve(num_tokens);
  }

  /// Builds a corpus from nested sentence vectors.
  static SentenceCorpus FromNested(
      const std::vector<std::vector<int32_t>>& sentences);

  /// Expands back into nested vectors (tests / legacy callers).
  std::vector<std::vector<int32_t>> ToNested() const;

  /// Direct access for bulk writers (the random-walk generator fills the
  /// token array in place after sizing it).
  const std::vector<int32_t>& tokens() const { return tokens_; }
  const std::vector<size_t>& offsets() const { return offsets_; }

  /// Takes ownership of pre-built flat storage. `offsets` must be a valid
  /// CSR index over `tokens` (monotone, first 0, last == tokens.size()).
  static SentenceCorpus FromFlat(std::vector<int32_t> tokens,
                                 std::vector<size_t> offsets);

  bool operator==(const SentenceCorpus& other) const {
    return tokens_ == other.tokens_ && offsets_ == other.offsets_;
  }
  bool operator!=(const SentenceCorpus& other) const {
    return !(*this == other);
  }

 private:
  std::vector<int32_t> tokens_;
  std::vector<size_t> offsets_;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_SENTENCE_CORPUS_H_
