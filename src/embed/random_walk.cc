#include "embed/random_walk.h"

#include "util/rng.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace embed {

std::vector<std::vector<int32_t>> RandomWalker::Generate(
    const graph::Graph& g, const RandomWalkOptions& options) {
  const size_t n = g.NumNodes();
  std::vector<std::vector<int32_t>> walks(n * options.num_walks);

  util::ThreadPool::ParallelFor(
      n, options.threads,
      [&](size_t begin, size_t end, size_t /*thread_idx*/) {
        for (size_t v = begin; v < end; ++v) {
          // Seed per start node: output is independent of threading.
          util::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
          for (size_t w = 0; w < options.num_walks; ++w) {
            std::vector<int32_t>& walk = walks[v * options.num_walks + w];
            walk.reserve(options.walk_length);
            graph::NodeId cur = static_cast<graph::NodeId>(v);
            walk.push_back(cur);
            for (size_t step = 1; step < options.walk_length; ++step) {
              const auto& nbs = g.Neighbors(cur);
              if (nbs.empty()) break;
              cur = nbs[static_cast<size_t>(rng.UniformInt(nbs.size()))];
              walk.push_back(cur);
            }
          }
        }
      });
  return walks;
}

}  // namespace embed
}  // namespace tdmatch
