#include "embed/random_walk.h"

#include <algorithm>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace embed {

SentenceCorpus RandomWalker::GenerateCorpus(const graph::Graph& g,
                                            const RandomWalkOptions& options) {
  const size_t n = g.NumNodes();
  const size_t num_walks = options.num_walks;
  const size_t total_walks = n * num_walks;
  // Fixed-stride scratch: each walk owns a walk_length-sized slot, so
  // threads write disjoint ranges of one buffer and no walk ever
  // allocates. Walks that dead-end early record a shorter length and the
  // compaction pass below squeezes the slack out.
  const size_t stride = std::max<size_t>(options.walk_length, 1);
  std::vector<int32_t> slots(total_walks * stride);
  std::vector<uint32_t> lengths(total_walks, 0);

  util::ThreadPool::ParallelFor(
      n, options.threads,
      [&](size_t begin, size_t end, size_t /*thread_idx*/) {
        for (size_t v = begin; v < end; ++v) {
          // Seed per start node: output is independent of threading.
          util::Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
          for (size_t w = 0; w < num_walks; ++w) {
            const size_t walk_index = v * num_walks + w;
            int32_t* walk = slots.data() + walk_index * stride;
            graph::NodeId cur = static_cast<graph::NodeId>(v);
            walk[0] = cur;
            size_t len = 1;
            for (size_t step = 1; step < options.walk_length; ++step) {
              const graph::NeighborSpan nbs = g.Neighbors(cur);
              if (nbs.empty()) break;
              cur = nbs[static_cast<size_t>(rng.UniformInt(nbs.size()))];
              walk[len++] = cur;
            }
            lengths[walk_index] = static_cast<uint32_t>(len);
          }
        }
      });

  std::vector<size_t> offsets(total_walks + 1, 0);
  for (size_t i = 0; i < total_walks; ++i) {
    offsets[i + 1] = offsets[i] + lengths[i];
  }
  std::vector<int32_t> tokens(offsets[total_walks]);
  for (size_t i = 0; i < total_walks; ++i) {
    std::copy_n(slots.data() + i * stride, lengths[i],
                tokens.data() + offsets[i]);
  }
  return SentenceCorpus::FromFlat(std::move(tokens), std::move(offsets));
}

std::vector<std::vector<int32_t>> RandomWalker::Generate(
    const graph::Graph& g, const RandomWalkOptions& options) {
  return GenerateCorpus(g, options).ToNested();
}

}  // namespace embed
}  // namespace tdmatch
