#ifndef TDMATCH_EMBED_BLOCK_SHARDER_H_
#define TDMATCH_EMBED_BLOCK_SHARDER_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace tdmatch {
namespace embed {

/// \file
/// Shared machinery for deterministic block-parallel SGD, used by the
/// Word2Vec and Doc2Vec trainers.
///
/// The schedule: sentences/docs are partitioned into fixed-size *blocks*
/// (kItemsPerBlock items), blocks into fixed-size *groups*
/// (kBlocksPerGroup blocks). Within a group, workers claim blocks with a
/// lock-free ticket counter and train each block against the shared
/// weights *frozen at group start*, accumulating all updates in a
/// per-block sparse delta buffer (SparseDelta). When every block of the
/// group has finished, the deltas are merged into the shared weights in
/// canonical block order. Each block draws subsampling / window /
/// negative samples exclusively from its own seed-derived RNG stream
/// (BlockSeed).
///
/// The merge damps the sum: each row's delta is scaled by
/// 1/sqrt(blocks of the group that touched the row). A plain sum
/// multiplies the effective learning rate on hot rows by the group size
/// — every block pushes the same frozen weights in the same direction
/// with none of sequential SGD's saturation feedback — which
/// demonstrably diverges to NaN on walk corpora (small vocab, every row
/// hot). A full average (1/count) is stable but under-trains hot rows
/// by the group size, measurably hurting end-to-end match quality. The
/// square root is the classic variance-style compromise: rows touched
/// by a single block keep their full update, hot rows keep most of
/// their per-group progress while staying inside the stable step-size
/// regime (both end-to-end MRR and divergence were verified
/// empirically).
///
/// Because the block geometry, the per-block streams, and the merge order
/// are all independent of the thread count, the trained weights are
/// bit-identical for `threads = 1..N`, across runs, and across machines
/// with the same toolchain. Unlike the classic chunked SYNC_SGD design
/// (a mutex around every chunk's weight update), no lock is ever taken on
/// the weights: the group barrier separates the read phase from the
/// ordered merge phase.

/// Items (sentences / docs) per block. Small enough that within-group
/// staleness (blocks of one group never see each other's updates) stays
/// negligible, large enough that copy-on-touch row copies amortize.
constexpr size_t kItemsPerBlock = 4;

/// Blocks per merge group — the unit of parallelism. Fixed (never derived
/// from the thread count) so the schedule is thread-count invariant. Kept
/// small (one group = 32 items) because SGD quality degrades with group
/// staleness: on corpora that fit in a single group every block of an
/// epoch would otherwise train against the same frozen weights.
constexpr size_t kBlocksPerGroup = 8;

/// Derives the RNG seed of one block's private stream. `stream_salt`
/// separates trainers (Word2Vec vs Doc2Vec) so they never share streams
/// even under the same user seed.
inline uint64_t BlockSeed(uint64_t seed, uint64_t stream_salt, uint64_t epoch,
                          uint64_t block) {
  uint64_t x = seed ^ stream_salt;
  x += 0x9e3779b97f4a7c15ULL * (epoch + 1);
  x += 0xbf58476d1ce4e5b9ULL * (block + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Linearly decayed learning rate after `words_done` of `total_steps`
/// training words, clamped at 1e-4 of the initial rate (the classic
/// word2vec floor). Monotone non-increasing in `words_done`; the trainers
/// evaluate it once per sentence from an exact prefix count (the previous
/// implementation only refreshed the count when it crossed an exact
/// 1024-token multiple, which stalled the decay on fixed-length walk
/// corpora).
inline float DecayedLr(float initial_lr, uint64_t words_done,
                       uint64_t total_steps) {
  float lr = initial_lr * (1.0f - static_cast<float>(words_done) /
                                      static_cast<float>(total_steps + 1));
  const float min_lr = initial_lr * 1e-4f;
  return lr < min_lr ? min_lr : lr;
}

/// Sigmoid lookup-table grid: kSigmoidTableSize centers spanning
/// [-kMaxExp, kMaxExp] *inclusive*. The count is odd so the middle center
/// sits exactly at 0 and FastSigmoid(0) == 0.5. Build and lookup share
/// this one grid (the seed implementation built centers on an
/// endpoint-exclusive grid but indexed on an inclusive one, shifting
/// every lookup by up to one cell).
constexpr int kSigmoidTableSize = 1025;
constexpr float kMaxExp = 6.0f;

/// The precomputed table; entry i is sigmoid of the i-th grid center.
const float* SigmoidTable();

/// Table sigmoid: nearest-center lookup on the SigmoidTable grid. The
/// negated-comparison clamp also routes NaN to 0 instead of indexing the
/// table out of bounds.
inline float FastSigmoid(float x) {
  if (x >= kMaxExp) return 1.0f;
  if (!(x > -kMaxExp)) return 0.0f;
  const int idx = static_cast<int>(
      (x / kMaxExp + 1.0f) * (0.5f * (kSigmoidTableSize - 1)) + 0.5f);
  return SigmoidTable()[idx];
}

/// \brief Per-block sparse overlay of one shared weight matrix.
///
/// During block training every row access goes through Row(), which
/// copies the shared row into block-local storage on first touch — the
/// block then trains on its private copies, so within-block SGD stays
/// fully sequential while the shared weights are only ever *read*.
/// Capture() turns the local copies into deltas (local − shared) and
/// Merge() adds them back; row storage is chunked so returned pointers
/// stay valid across later touches.
class SparseDelta {
 public:
  /// Rows per storage chunk; chunks are retained across Reset() so steady
  /// state allocates nothing.
  static constexpr size_t kRowsPerChunk = 256;

  /// Binds the buffer to a shared matrix for one block. `slot_map` state
  /// is owned by the caller (see Row).
  void Reset(float* shared, int dim) {
    if (dim != dim_) chunks_.clear();
    shared_ = shared;
    dim_ = dim;
    touched_.clear();
  }

  /// Block-local working copy of `row`. `slot_map` is the caller's
  /// row→slot scratch (one per worker, sized to the matrix rows,
  /// initialized to -1); Capture() resets the entries this block used.
  float* Row(int32_t row, int32_t* slot_map) {
    const int32_t s = slot_map[row];
    if (s >= 0) return SlotPtr(static_cast<size_t>(s));
    const size_t slot = touched_.size();
    slot_map[row] = static_cast<int32_t>(slot);
    touched_.push_back(row);
    if (slot >= chunks_.size() * kRowsPerChunk) {
      chunks_.emplace_back(
          new float[kRowsPerChunk * static_cast<size_t>(dim_)]);
    }
    float* p = SlotPtr(slot);
    std::memcpy(p, shared_ + static_cast<size_t>(row) * dim_,
                static_cast<size_t>(dim_) * sizeof(float));
    return p;
  }

  /// Converts every touched local row into a delta against the shared
  /// weights (still frozen at group start) and clears the caller's slot
  /// map for the next block.
  void Capture(int32_t* slot_map) {
    for (size_t i = 0; i < touched_.size(); ++i) {
      float* p = SlotPtr(i);
      const float* base =
          shared_ + static_cast<size_t>(touched_[i]) * dim_;
      for (int d = 0; d < dim_; ++d) p[d] -= base[d];
      slot_map[touched_[i]] = -1;
    }
  }

  /// Adds the captured deltas into the shared matrix, each row scaled by
  /// 1/sqrt(counts[row]) where counts[row] is the number of blocks in the
  /// merge group that touched the row — see the file comment on why the
  /// sum must be damped. Called in canonical block order by the merge
  /// phase.
  void MergeWeighted(const uint32_t* counts) const {
    for (size_t i = 0; i < touched_.size(); ++i) {
      const float* p = SlotPtr(i);
      const int32_t row = touched_[i];
      float* base = shared_ + static_cast<size_t>(row) * dim_;
      const float inv =
          1.0f / std::sqrt(static_cast<float>(counts[row]));
      for (int d = 0; d < dim_; ++d) base[d] += p[d] * inv;
    }
  }

  /// Rows this block copied (and possibly updated), in first-touch order.
  const std::vector<int32_t>& touched() const { return touched_; }

  size_t touched_rows() const { return touched_.size(); }

 private:
  float* SlotPtr(size_t slot) {
    return chunks_[slot / kRowsPerChunk].get() +
           (slot % kRowsPerChunk) * static_cast<size_t>(dim_);
  }
  const float* SlotPtr(size_t slot) const {
    return chunks_[slot / kRowsPerChunk].get() +
           (slot % kRowsPerChunk) * static_cast<size_t>(dim_);
  }

  float* shared_ = nullptr;
  int dim_ = 0;
  std::vector<int32_t> touched_;
  std::vector<std::unique_ptr<float[]>> chunks_;
};

/// \brief Runs the deterministic block schedule over a corpus.
///
/// Owns the worker pool (created only when both threads > 1 and there is
/// more than one block) and the group loop; the trainer supplies two
/// callbacks per epoch:
///   compute(block, worker) — train one block into its delta buffers,
///     using the worker-indexed scratch; invoked concurrently, blocks
///     claimed by a lock-free ticket counter;
///   merge(group_begin, group_end) — fold the group's deltas into the
///     shared weights in canonical block order; invoked once per group
///     after every compute of the group has finished (the trainer needs
///     the whole group at once to compute per-row touch counts for the
///     weighted merge).
class BlockScheduler {
 public:
  BlockScheduler(size_t num_items, size_t threads);

  size_t num_blocks() const { return num_blocks_; }
  /// Number of distinct worker indices compute() may see.
  size_t num_workers() const { return pool_ ? threads_ : 1; }
  /// Item range [begin, end) of one block.
  size_t block_begin(size_t block) const { return block * kItemsPerBlock; }
  size_t block_end(size_t block) const;

  /// One full pass over all blocks (group-by-group compute + merge).
  void RunEpoch(
      const std::function<void(size_t block, size_t worker)>& compute,
      const std::function<void(size_t group_begin, size_t group_end)>& merge);

 private:
  size_t num_items_;
  size_t num_blocks_;
  size_t threads_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_BLOCK_SHARDER_H_
