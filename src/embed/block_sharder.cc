#include "embed/block_sharder.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace tdmatch {
namespace embed {

const float* SigmoidTable() {
  static float table[kSigmoidTableSize];
  static bool init = [] {
    for (int i = 0; i < kSigmoidTableSize; ++i) {
      const float x = (static_cast<float>(i) / (kSigmoidTableSize - 1) *
                           2.0f - 1.0f) * kMaxExp;
      table[i] = 1.0f / (1.0f + std::exp(-x));
    }
    return true;
  }();
  (void)init;
  return table;
}

BlockScheduler::BlockScheduler(size_t num_items, size_t threads)
    : num_items_(num_items),
      num_blocks_((num_items + kItemsPerBlock - 1) / kItemsPerBlock),
      threads_(threads == 0 ? 1 : threads) {
  if (threads_ > 1 && num_blocks_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(threads_);
  }
}

size_t BlockScheduler::block_end(size_t block) const {
  return std::min(num_items_, (block + 1) * kItemsPerBlock);
}

void BlockScheduler::RunEpoch(
    const std::function<void(size_t block, size_t worker)>& compute,
    const std::function<void(size_t group_begin, size_t group_end)>& merge) {
  for (size_t group = 0; group < num_blocks_; group += kBlocksPerGroup) {
    const size_t group_end = std::min(num_blocks_, group + kBlocksPerGroup);
    if (pool_ == nullptr) {
      // Sequential execution of the identical schedule: all computes of
      // the group read the same group-start weights because the merges
      // are still deferred to the end of the group.
      for (size_t b = group; b < group_end; ++b) compute(b, 0);
    } else {
      std::atomic<size_t> ticket{group};
      for (size_t t = 0; t < threads_; ++t) {
        pool_->Submit([&, t] {
          for (;;) {
            const size_t b = ticket.fetch_add(1, std::memory_order_relaxed);
            if (b >= group_end) break;
            compute(b, t);
          }
        });
      }
      // Group barrier: no merge may run while any block still reads the
      // shared weights, or the read state would depend on timing.
      pool_->Wait();
    }
    merge(group, group_end);
  }
}

}  // namespace embed
}  // namespace tdmatch
