#include "embed/negative_sampler.h"

#include <cmath>

#include "util/logging.h"

namespace tdmatch {
namespace embed {

void NegativeSampler::Build(const std::vector<uint64_t>& counts,
                            size_t table_size) {
  TDM_CHECK(!counts.empty());
  TDM_CHECK_GT(table_size, 0u);
  table_size_ = table_size;
  const size_t vocab_size = counts.size();
  bounds_.assign(vocab_size + 1, static_cast<uint32_t>(table_size));

  double norm = 0.0;
  for (uint64_t c : counts) norm += std::pow(static_cast<double>(c), 0.75);

  // Mirror of the classic loop
  //   for t: table[t] = i; if (t/T > cum && i+1 < V) { ++i; cum += ...; }
  // recording only the first slot of each word. The double arithmetic is
  // kept identical so the step boundaries land on the same slots.
  size_t i = 0;
  bounds_[0] = 0;
  double cum = std::pow(static_cast<double>(counts[0]), 0.75) / norm;
  for (size_t t = 0; t < table_size; ++t) {
    if (static_cast<double>(t) / static_cast<double>(table_size) > cum &&
        i + 1 < vocab_size) {
      ++i;
      bounds_[i] = static_cast<uint32_t>(t + 1);
      cum += std::pow(static_cast<double>(counts[i]), 0.75) / norm;
    }
  }
}

}  // namespace embed
}  // namespace tdmatch
