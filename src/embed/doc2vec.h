#ifndef TDMATCH_EMBED_DOC2VEC_H_
#define TDMATCH_EMBED_DOC2VEC_H_

#include <cstdint>
#include <vector>

#include "embed/negative_sampler.h"
#include "util/status.h"

namespace tdmatch {
namespace embed {

/// Doc2Vec (PV-DBOW) training configuration — the D2VEC baseline uses DBOW,
/// matching the paper's setup (§V "Baselines").
struct Doc2VecOptions {
  int dim = 64;
  int negative = 5;
  double initial_lr = 0.025;
  int epochs = 10;
  /// Worker threads for block-parallel training (0 → 1). Changes only
  /// the wall time, never the trained vectors (see class comment).
  size_t threads = 4;
  uint64_t seed = 42;
};

/// \brief Distributed Bag-of-Words paragraph vectors (Le & Mikolov, 2014).
///
/// Each document vector is trained to predict the (unordered) words of the
/// document via negative sampling; words share an output matrix.
///
/// **Determinism contract:** training runs the fixed block schedule of
/// block_sharder.h — docs are partitioned into fixed-size blocks, each
/// block draws its negative samples only from its own seed-derived RNG
/// stream, workers train blocks against the weights frozen at group start
/// into sparse delta buffers, and deltas merge in canonical block order
/// (damped by 1/sqrt of each row's per-group touch count — see
/// block_sharder.h). Fixed-seed output is therefore bit-identical across
/// runs and for any `threads` setting; `threads` only changes the wall
/// time.
class Doc2Vec {
 public:
  explicit Doc2Vec(Doc2VecOptions options = {});

  /// Trains on documents of word ids in [0, word_vocab_size).
  util::Status Train(const std::vector<std::vector<int32_t>>& docs,
                     size_t word_vocab_size);

  int dim() const { return options_.dim; }
  size_t num_docs() const { return num_docs_; }
  bool trained() const { return trained_; }

  /// Document vector (valid after Train).
  std::vector<float> DocVector(size_t doc) const;

  /// Infers a vector for an unseen document by gradient steps against the
  /// frozen word matrix (standard Doc2Vec inference).
  std::vector<float> Infer(const std::vector<int32_t>& doc,
                           int steps = 20) const;

 private:
  Doc2VecOptions options_;
  size_t num_docs_ = 0;
  size_t word_vocab_size_ = 0;
  bool trained_ = false;
  std::vector<float> doc_vecs_;
  std::vector<float> word_out_;
  NegativeSampler sampler_;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_DOC2VEC_H_
