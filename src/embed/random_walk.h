#ifndef TDMATCH_EMBED_RANDOM_WALK_H_
#define TDMATCH_EMBED_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "embed/sentence_corpus.h"
#include "graph/graph.h"

namespace tdmatch {
namespace embed {

/// Random-walk parameters (Alg. 4; paper default 100 walks of length 30 per
/// node, §V).
struct RandomWalkOptions {
  size_t num_walks = 100;
  size_t walk_length = 30;
  uint64_t seed = 42;
  size_t threads = 4;
};

/// \brief Generates uniform random walks over the graph (Algorithm 4).
///
/// Each walk starts at a node and repeatedly moves to a uniformly random
/// neighbor; the node-id sequence is one training "sentence" for Word2Vec.
/// Isolated nodes yield single-node sentences so every node receives a
/// vector.
///
/// Walks are generated per start node with a node-seeded RNG, so the output
/// is deterministic and independent of the thread count. The hot path is
/// `GenerateCorpus`, which walks over the graph's CSR neighbor spans and
/// writes into one preallocated flat buffer (no per-walk allocation);
/// `Generate` is a compatibility wrapper producing the same walks as nested
/// vectors.
class RandomWalker {
 public:
  /// num_walks walks of up to walk_length nodes from every node of `g`,
  /// returned as a flat corpus (walk i of node v is sentence
  /// v * num_walks + i).
  static SentenceCorpus GenerateCorpus(const graph::Graph& g,
                                       const RandomWalkOptions& options);

  /// Same walks as nested vectors (compatibility/test surface).
  static std::vector<std::vector<int32_t>> Generate(
      const graph::Graph& g, const RandomWalkOptions& options);
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_RANDOM_WALK_H_
