#ifndef TDMATCH_EMBED_RANDOM_WALK_H_
#define TDMATCH_EMBED_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tdmatch {
namespace embed {

/// Random-walk parameters (Alg. 4; paper default 100 walks of length 30 per
/// node, §V).
struct RandomWalkOptions {
  size_t num_walks = 100;
  size_t walk_length = 30;
  uint64_t seed = 42;
  size_t threads = 4;
};

/// \brief Generates uniform random walks over the graph (Algorithm 4).
///
/// Each walk starts at a node and repeatedly moves to a uniformly random
/// neighbor; the node-id sequence is one training "sentence" for Word2Vec.
/// Isolated nodes yield single-node sentences so every node receives a
/// vector.
class RandomWalker {
 public:
  /// num_walks walks of walk_length nodes from every node of `g`;
  /// deterministic for a fixed seed (walks are generated per start node,
  /// seeded by node id, so the thread count does not change the output).
  static std::vector<std::vector<int32_t>> Generate(
      const graph::Graph& g, const RandomWalkOptions& options);
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_RANDOM_WALK_H_
