#ifndef TDMATCH_EMBED_EMBEDDING_TABLE_H_
#define TDMATCH_EMBED_EMBEDDING_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace tdmatch {
namespace embed {

/// \brief Label-keyed dense vector store with cosine utilities.
///
/// Bridges trained models (Word2Vec over graph nodes, sentence encoders,
/// Doc2Vec) and the matcher, which only needs "vector for this label".
class EmbeddingTable {
 public:
  EmbeddingTable() = default;
  explicit EmbeddingTable(int dim) : dim_(dim) {}

  /// Inserts or overwrites a vector (its size fixes/must match dim).
  void Put(const std::string& label, std::vector<float> vec);

  /// Vector for a label, or nullptr.
  const std::vector<float>* Get(const std::string& label) const;

  bool Contains(const std::string& label) const {
    return index_.count(label) > 0;
  }

  int dim() const { return dim_; }
  size_t size() const { return vectors_.size(); }

  /// Cosine similarity of two stored labels (error when either missing).
  util::Result<double> Cosine(const std::string& a,
                              const std::string& b) const;

  /// Cosine of two raw vectors (0 when either has zero norm).
  static double CosineVec(const std::vector<float>& a,
                          const std::vector<float>& b);

  /// L2-normalizes a vector in place (no-op for the zero vector).
  static void Normalize(std::vector<float>* v);

  /// Mean of a set of vectors (empty input → zero vector of `dim`).
  static std::vector<float> Mean(const std::vector<const std::vector<float>*>&
                                     vecs,
                                 int dim);

  /// All stored labels (unspecified order).
  std::vector<std::string> Labels() const;

 private:
  int dim_ = 0;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<float>> vectors_;
  std::vector<std::string> labels_;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_EMBEDDING_TABLE_H_
