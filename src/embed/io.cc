#include "embed/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace tdmatch {
namespace embed {

namespace {

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c == ' ') {
      out += "\\_";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (size_t i = 0; i < label.size(); ++i) {
    if (label[i] == '\\' && i + 1 < label.size() && label[i + 1] == '_') {
      out.push_back(' ');
      ++i;
    } else {
      out.push_back(label[i]);
    }
  }
  return out;
}

}  // namespace

util::Status EmbeddingIo::Save(const EmbeddingTable& table,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IOError("cannot open " + path);
  out << table.size() << " " << table.dim() << "\n";
  for (const auto& label : table.Labels()) {
    const std::vector<float>* vec = table.Get(label);
    out << EscapeLabel(label);
    for (float v : *vec) out << " " << v;
    out << "\n";
  }
  if (!out) return util::Status::IOError("write failed for " + path);
  return util::Status::OK();
}

util::Result<EmbeddingTable> EmbeddingIo::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return util::Status::InvalidArgument("bad header in " + path);
  }
  size_t count = 0;
  int dim = 0;
  {
    std::istringstream header(line);
    if (!(header >> count >> dim) || dim <= 0) {
      return util::Status::InvalidArgument("bad header in " + path);
    }
    std::string extra;
    if (header >> extra) {
      return util::Status::InvalidArgument(
          util::StrFormat("%s: header has trailing content '%s'",
                          path.c_str(), extra.c_str()));
    }
  }

  // One entry per line, parsed strictly against the header: a row whose
  // value count disagrees with `dim`, or a file whose row count disagrees
  // with `count`, is a descriptive error — never a silently truncated (or
  // misaligned) table. Blank lines are ignored, matching the writer's
  // trailing newline.
  EmbeddingTable table(dim);
  size_t rows = 0;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<std::string> fields = util::SplitWhitespace(line);
    if (fields.empty()) continue;
    if (rows == count) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%zu: vocab size mismatch: header promises %zu entries but the "
          "file has more (extra row starts with '%s')",
          path.c_str(), lineno, count, fields[0].c_str()));
    }
    if (fields.size() != static_cast<size_t>(dim) + 1) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s:%zu: dimension mismatch for '%s': header dim is %d but the "
          "row has %zu values",
          path.c_str(), lineno, fields[0].c_str(), dim, fields.size() - 1));
    }
    std::vector<float> vec(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      const std::string& field = fields[static_cast<size_t>(d) + 1];
      char* end = nullptr;
      vec[static_cast<size_t>(d)] = std::strtof(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s:%zu: non-numeric value '%s' for '%s'", path.c_str(), lineno,
            field.c_str(), fields[0].c_str()));
      }
    }
    table.Put(UnescapeLabel(fields[0]), std::move(vec));
    ++rows;
  }
  if (rows != count) {
    return util::Status::InvalidArgument(util::StrFormat(
        "%s: vocab size mismatch: header promises %zu entries, file has %zu",
        path.c_str(), count, rows));
  }
  return table;
}

}  // namespace embed
}  // namespace tdmatch
