#include "embed/io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace tdmatch {
namespace embed {

namespace {

std::string EscapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char c : label) {
    if (c == ' ') {
      out += "\\_";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeLabel(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (size_t i = 0; i < label.size(); ++i) {
    if (label[i] == '\\' && i + 1 < label.size() && label[i + 1] == '_') {
      out.push_back(' ');
      ++i;
    } else {
      out.push_back(label[i]);
    }
  }
  return out;
}

}  // namespace

util::Status EmbeddingIo::Save(const EmbeddingTable& table,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IOError("cannot open " + path);
  out << table.size() << " " << table.dim() << "\n";
  for (const auto& label : table.Labels()) {
    const std::vector<float>* vec = table.Get(label);
    out << EscapeLabel(label);
    for (float v : *vec) out << " " << v;
    out << "\n";
  }
  if (!out) return util::Status::IOError("write failed for " + path);
  return util::Status::OK();
}

util::Result<EmbeddingTable> EmbeddingIo::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IOError("cannot open " + path);
  size_t count = 0;
  int dim = 0;
  if (!(in >> count >> dim) || dim <= 0) {
    return util::Status::InvalidArgument("bad header in " + path);
  }
  EmbeddingTable table(dim);
  for (size_t i = 0; i < count; ++i) {
    std::string label;
    if (!(in >> label)) {
      return util::Status::InvalidArgument(
          util::StrFormat("%s: truncated at entry %zu", path.c_str(), i));
    }
    std::vector<float> vec(static_cast<size_t>(dim));
    for (int d = 0; d < dim; ++d) {
      if (!(in >> vec[static_cast<size_t>(d)])) {
        return util::Status::InvalidArgument(util::StrFormat(
            "%s: truncated vector for '%s'", path.c_str(), label.c_str()));
      }
    }
    table.Put(UnescapeLabel(label), std::move(vec));
  }
  return table;
}

}  // namespace embed
}  // namespace tdmatch
