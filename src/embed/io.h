#ifndef TDMATCH_EMBED_IO_H_
#define TDMATCH_EMBED_IO_H_

#include <string>

#include "embed/embedding_table.h"
#include "util/result.h"

namespace tdmatch {
namespace embed {

/// \brief Persistence for embedding tables in the classic word2vec text
/// format: a `<count> <dim>` header line followed by `<label> v1 .. vd`
/// lines. Labels containing spaces are supported by quoting rules below:
/// inner spaces are escaped as `\_` on write and unescaped on read.
///
/// The text format is the debug/interop path; production serving loads
/// the binary snapshot format instead (serve/snapshot.h, which also has
/// the text ↔ snapshot conversion helpers).
class EmbeddingIo {
 public:
  /// Writes the table; overwrites the file.
  static util::Status Save(const EmbeddingTable& table,
                           const std::string& path);

  /// Reads a table written by Save (or a real word2vec .txt file without
  /// escaped labels). Strict: a row whose value count disagrees with the
  /// header dim, or a file whose row count disagrees with the header
  /// count, is an InvalidArgument error, never a silent truncation.
  static util::Result<EmbeddingTable> Load(const std::string& path);
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_IO_H_
