#ifndef TDMATCH_EMBED_WORD2VEC_H_
#define TDMATCH_EMBED_WORD2VEC_H_

#include <cstdint>
#include <vector>

#include "embed/negative_sampler.h"
#include "embed/sentence_corpus.h"
#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace embed {

/// Training configuration (defaults follow the paper's text-to-data setup:
/// Skip-gram, window 3; text tasks switch to CBOW window 15, §V).
struct Word2VecOptions {
  int dim = 64;
  int window = 3;
  /// false = Skip-gram, true = CBOW.
  bool cbow = false;
  /// Negative samples per positive example.
  int negative = 5;
  double initial_lr = 0.025;
  int epochs = 5;
  /// Frequency subsampling threshold (0 disables; word2vec's `-sample`).
  double subsample = 0.0;
  /// Worker threads for block-parallel training (0 → 1). Changes only the
  /// wall time, never the trained vectors (see class comment).
  size_t threads = 4;
  uint64_t seed = 42;
};

/// \brief From-scratch Word2Vec over integer token sequences, trained with
/// SGD + negative sampling.
///
/// Operating on dense int32 ids lets the same trainer embed graph nodes
/// (random-walk sentences, Alg. 4) and word tokens (the W2VEC baseline)
/// without string overhead. The preferred input is a flat
/// `SentenceCorpus` (the random-walk generator's native output); nested
/// vectors are accepted through a span adapter.
///
/// **Determinism contract:** training runs the fixed block schedule of
/// block_sharder.h — sentences are partitioned into fixed-size blocks,
/// each block consumes subsampling / window-reduction / negative draws
/// only from its own seed-derived RNG stream, workers train blocks
/// against the weights frozen at group start into sparse delta buffers,
/// and the deltas merge in canonical block order (damped by 1/sqrt of
/// each row's per-group touch count — see block_sharder.h). Because none
/// of that depends on the thread count, for a fixed seed the trained
/// vectors are
/// bit-identical across runs, across machines with the same toolchain,
/// and for any `threads` setting; `threads` only changes the wall time.
/// The block-ordered RNG consumption intentionally differs from the
/// pre-parallel single-stream sequence, so goldens were recaptured when
/// the schedule landed (tests/golden_embed_test.cc pins it).
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {});

  /// Trains on a flat corpus whose tokens are ids in [0, vocab_size).
  /// Frequencies for the negative-sampling distribution are counted
  /// internally.
  util::Status Train(const SentenceCorpus& corpus, size_t vocab_size);

  /// Nested-vector adapter for the same training loop (identical output
  /// for identical sentence content).
  util::Status Train(const std::vector<std::vector<int32_t>>& sentences,
                     size_t vocab_size);

  int dim() const { return options_.dim; }
  size_t vocab_size() const { return vocab_size_; }
  bool trained() const { return trained_; }

  /// Input vector of a token id (valid after Train).
  const float* Vector(int32_t id) const;

  /// Copy of the vector.
  std::vector<float> VectorCopy(int32_t id) const;

  /// Cosine similarity of two raw vectors.
  static double Cosine(const float* a, const float* b, int dim);

  /// Cosine between two token ids.
  double CosineIds(int32_t a, int32_t b) const;

  const Word2VecOptions& options() const { return options_; }

  /// Wall seconds per completed training epoch (size == options().epochs
  /// after Train). Timing-only observability — never feeds back into the
  /// schedule, so trained vectors stay bit-identical.
  const std::vector<double>& epoch_seconds() const { return epoch_seconds_; }

 private:
  util::Status TrainSpans(const TokenSpan* sentences, size_t num_sentences,
                          size_t vocab_size);

  Word2VecOptions options_;
  size_t vocab_size_ = 0;
  bool trained_ = false;
  std::vector<float> syn0_;     // input vectors, vocab_size x dim
  std::vector<float> syn1neg_;  // output vectors, vocab_size x dim
  std::vector<double> epoch_seconds_;
  /// Boundary-form unigram^0.75 sampler (replaces the 4 MB table).
  NegativeSampler sampler_;
};

}  // namespace embed
}  // namespace tdmatch

#endif  // TDMATCH_EMBED_WORD2VEC_H_
