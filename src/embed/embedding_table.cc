#include "embed/embedding_table.h"

#include <cmath>

#include "util/logging.h"
#include "util/status.h"

namespace tdmatch {
namespace embed {

void EmbeddingTable::Put(const std::string& label, std::vector<float> vec) {
  if (dim_ == 0) dim_ = static_cast<int>(vec.size());
  TDM_CHECK_EQ(static_cast<int>(vec.size()), dim_);
  auto it = index_.find(label);
  if (it != index_.end()) {
    vectors_[it->second] = std::move(vec);
    return;
  }
  index_.emplace(label, vectors_.size());
  vectors_.push_back(std::move(vec));
  labels_.push_back(label);
}

const std::vector<float>* EmbeddingTable::Get(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? nullptr : &vectors_[it->second];
}

util::Result<double> EmbeddingTable::Cosine(const std::string& a,
                                            const std::string& b) const {
  const std::vector<float>* va = Get(a);
  const std::vector<float>* vb = Get(b);
  if (va == nullptr) return util::Status::NotFound("no vector for " + a);
  if (vb == nullptr) return util::Status::NotFound("no vector for " + b);
  return CosineVec(*va, *vb);
}

double EmbeddingTable::CosineVec(const std::vector<float>& a,
                                 const std::vector<float>& b) {
  TDM_DCHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void EmbeddingTable::Normalize(std::vector<float>* v) {
  double norm = 0.0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm == 0.0) return;
  for (float& x : *v) x = static_cast<float>(x / norm);
}

std::vector<float> EmbeddingTable::Mean(
    const std::vector<const std::vector<float>*>& vecs, int dim) {
  std::vector<float> out(static_cast<size_t>(dim), 0.0f);
  if (vecs.empty()) return out;
  for (const auto* v : vecs) {
    TDM_DCHECK_EQ(static_cast<int>(v->size()), dim);
    for (int d = 0; d < dim; ++d) {
      out[static_cast<size_t>(d)] += (*v)[static_cast<size_t>(d)];
    }
  }
  for (float& x : out) x /= static_cast<float>(vecs.size());
  return out;
}

std::vector<std::string> EmbeddingTable::Labels() const { return labels_; }

}  // namespace embed
}  // namespace tdmatch
