#ifndef TDMATCH_SERVE_ADMISSION_H_
#define TDMATCH_SERVE_ADMISSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace tdmatch {
namespace serve {

struct AdmissionOptions {
  /// Queries allowed in flight at once. Requests past the budget are shed
  /// with 429 + Retry-After instead of queueing — fail fast, never fall
  /// over. SIZE_MAX (the default) never sheds; 0 sheds everything (the
  /// drain/maintenance switch, and the capacity-0 edge the tests pin).
  size_t max_inflight = std::numeric_limits<size_t>::max();
  /// Retry-After clamp, in whole seconds (RFC 9110 delta-seconds).
  int min_retry_after_s = 1;
  int max_retry_after_s = 30;
};

/// \brief Lock-free in-flight admission gate for the serving front door.
///
/// TryAcquire is a CAS loop against max_inflight: it either takes a slot
/// (the caller must Release — use Ticket for RAII) or refuses without
/// blocking. Shed requests cost one atomic read-modify-write and an error
/// response; admitted work is never queued behind refused work, so an
/// overloaded server keeps its latency budget for the requests it accepts
/// and /v1/healthz stays green past saturation.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  /// Takes an in-flight slot if one is free. Never blocks. A refusal
  /// advances the shed counter.
  bool TryAcquire();

  void Release() { inflight_.fetch_sub(1, std::memory_order_acq_rel); }

  /// RAII slot: acquires on construction, releases on destruction when
  /// admitted. Move-only.
  class Ticket {
   public:
    explicit Ticket(AdmissionController* controller)
        : controller_(controller != nullptr && controller->TryAcquire()
                          ? controller
                          : nullptr) {}
    ~Ticket() {
      if (controller_ != nullptr) controller_->Release();
    }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&&) = delete;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool admitted() const { return controller_ != nullptr; }

   private:
    AdmissionController* controller_;
  };

  /// Retry-After hint for a shed response: roughly how long the current
  /// in-flight backlog needs to drain at `typical_ms` per query, clamped
  /// to [min, max] whole seconds so the header is always well-formed.
  int RetryAfterSeconds(double typical_ms) const;

  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  bool unlimited() const {
    return options_.max_inflight == std::numeric_limits<size_t>::max();
  }
  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
};

struct NprobeTunerOptions {
  /// p99 latency target in milliseconds; <= 0 disables tuning.
  double budget_ms = 0.0;
  size_t min_nprobe = 1;
  /// Ceiling — the serving layer passes the largest shard nlist.
  size_t max_nprobe = 64;
  size_t initial_nprobe = 4;
  /// Observations between adjustments. One window must contain enough
  /// queries for the histogram p99 to move before the next decision.
  uint64_t window = 64;
};

/// \brief AIMD auto-tuner for the IVF nprobe knob against a p99 budget.
///
/// The serving loop feeds each query's current histogram p99
/// (LatencyHistogram::PercentileMs(0.99)); once per window the tuner
/// reacts: over budget ⇒ halve nprobe (fast multiplicative backoff —
/// latency is what pages people), under half the budget ⇒ +1 (slow
/// additive recovery of recall headroom). In between it holds. The current
/// value is a relaxed atomic the query path reads per request; no locks
/// anywhere.
class NprobeTuner {
 public:
  explicit NprobeTuner(NprobeTunerOptions options = {});

  bool enabled() const { return options_.budget_ms > 0.0; }

  /// The nprobe the next query should use.
  size_t nprobe() const { return nprobe_.load(std::memory_order_relaxed); }

  /// Feed the current p99 estimate; at window boundaries this adjusts
  /// nprobe. Safe from concurrent threads (a race can at worst run two
  /// adjustments on one window — both read consistent atomics).
  void Observe(double p99_ms);

  uint64_t observed() const {
    return observed_.load(std::memory_order_relaxed);
  }
  uint64_t adjustments() const {
    return adjustments_.load(std::memory_order_relaxed);
  }
  const NprobeTunerOptions& options() const { return options_; }

 private:
  NprobeTunerOptions options_;
  std::atomic<size_t> nprobe_{1};
  std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> adjustments_{0};
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_ADMISSION_H_
