#include "serve/sharded_engine.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <utility>

#include "serve/mmap_snapshot.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tdmatch {
namespace serve {

util::Result<ShardedQueryEngine> ShardedQueryEngine::Build(
    Snapshot snapshot, const std::string& prefix,
    ShardedEngineOptions options) {
  ShardedQueryEngine sharded(options);
  if (sharded.delegate()) {
    TDM_ASSIGN_OR_RETURN(QueryEngine engine,
                         QueryEngine::BuildForPrefix(std::move(snapshot),
                                                     prefix, options.engine));
    sharded.AdoptDelegate(std::move(engine));
    return sharded;
  }
  std::vector<std::string> labels;
  for (const auto& label : snapshot.table.Labels()) {
    if (util::StartsWith(label, prefix)) labels.push_back(label);
  }
  if (labels.empty()) {
    return util::Status::NotFound(util::StrFormat(
        "snapshot '%s' has no labels with candidate prefix '%s'",
        snapshot.meta.scenario.c_str(), prefix.c_str()));
  }
  sharded.snapshot_ = std::move(snapshot);
  sharded.meta_ = sharded.snapshot_.meta;
  sharded.dim_ = sharded.snapshot_.table.dim();
  const embed::EmbeddingTable& table = sharded.snapshot_.table;
  TDM_RETURN_NOT_OK(sharded.BuildShards(
      labels, [&table, &labels](const std::vector<size_t>& global_ids) {
        std::vector<const std::vector<float>*> rows;
        rows.reserve(global_ids.size());
        for (const size_t g : global_ids) rows.push_back(table.Get(labels[g]));
        return VectorMatrix::FromRows(rows, table.dim());
      }));
  return sharded;
}

util::Result<ShardedQueryEngine> ShardedQueryEngine::BuildFromView(
    std::shared_ptr<const SnapshotView> view, const std::string& prefix,
    ShardedEngineOptions options) {
  if (view == nullptr) {
    return util::Status::InvalidArgument("snapshot view is null");
  }
  ShardedQueryEngine sharded(options);
  if (sharded.delegate()) {
    TDM_ASSIGN_OR_RETURN(QueryEngine engine,
                         QueryEngine::BuildFromView(std::move(view), prefix,
                                                    options.engine));
    sharded.AdoptDelegate(std::move(engine));
    return sharded;
  }
  // Global candidate order = view scan order, exactly as the unsharded
  // BuildFromView resolves it — the order the bit-identity proof leans on.
  std::vector<std::string> labels;
  std::vector<size_t> view_rows;
  for (size_t i = 0; i < view->size(); ++i) {
    const std::string_view label = view->label(i);
    if (!util::StartsWith(label, prefix)) continue;
    labels.emplace_back(label);
    view_rows.push_back(i);
  }
  if (view_rows.empty()) {
    return util::Status::NotFound(util::StrFormat(
        "snapshot '%s' has no labels with candidate prefix '%s'",
        view->meta().scenario.c_str(), prefix.c_str()));
  }
  sharded.meta_ = view->meta();
  sharded.dim_ = view->dim();
  sharded.view_ = std::move(view);
  const SnapshotView& v = *sharded.view_;
  TDM_RETURN_NOT_OK(sharded.BuildShards(
      labels, [&v, &view_rows](const std::vector<size_t>& global_ids) {
        std::vector<size_t> rows;
        rows.reserve(global_ids.size());
        for (const size_t g : global_ids) rows.push_back(view_rows[g]);
        return VectorMatrix::FromRawRows(v.payload(), rows, v.dim());
      }));
  return sharded;
}

void ShardedQueryEngine::AdoptDelegate(QueryEngine engine) {
  dim_ = engine.table().dim();
  num_candidates_ = engine.num_candidates();
  if (engine.has_ivf()) max_nprobe_ = engine.ivf_index()->nlist();
  shards_.push_back(std::move(engine));
}

util::Status ShardedQueryEngine::BuildShards(
    const std::vector<std::string>& labels,
    const std::function<VectorMatrix(const std::vector<size_t>&)>& gather) {
  num_candidates_ = labels.size();
  // Partition in global candidate order: each shard's local ids ascend
  // with global ids, so the shard-local TopK tie-break (lower local
  // index) agrees with the global one (lower global index).
  std::vector<std::vector<size_t>> members(options_.shards);
  for (size_t i = 0; i < labels.size(); ++i) {
    members[sharder_.ShardFor(labels[i])].push_back(i);
  }
  std::vector<std::vector<size_t>> pending;
  for (auto& m : members) {
    if (!m.empty()) pending.push_back(std::move(m));
  }

  // Shard engines are built single-threaded (the shard is the unit of
  // parallelism — at build time across shards here, at query time across
  // the scatter) and never consult snapshot index sections (those
  // fingerprint the full candidate set).
  QueryEngineOptions shard_opts = options_.engine;
  shard_opts.threads = 1;
  shard_opts.use_snapshot_index = false;

  std::vector<util::Result<QueryEngine>> built;
  built.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    built.emplace_back(util::Status::Internal("shard not built"));
  }
  const size_t build_threads = std::max<size_t>(
      1, std::min(options_.engine.threads, pending.size()));
  util::ThreadPool::ParallelFor(
      pending.size(), build_threads,
      [&](size_t begin, size_t end, size_t) {
        for (size_t i = begin; i < end; ++i) {
          std::vector<std::string> shard_labels;
          shard_labels.reserve(pending[i].size());
          for (const size_t g : pending[i]) shard_labels.push_back(labels[g]);
          built[i] = QueryEngine::BuildOverMatrix(
              std::make_shared<VectorMatrix>(gather(pending[i])),
              std::move(shard_labels), meta_, shard_opts);
        }
      });
  for (size_t i = 0; i < pending.size(); ++i) {
    if (!built[i].ok()) return built[i].status();
    QueryEngine engine = std::move(built[i]).ValueOrDie();
    if (engine.has_ivf()) {
      max_nprobe_ = std::max(max_nprobe_, engine.ivf_index()->nlist());
    }
    shards_.push_back(std::move(engine));
    std::vector<int32_t> global_ids;
    global_ids.reserve(pending[i].size());
    for (const size_t g : pending[i]) {
      global_ids.push_back(static_cast<int32_t>(g));
    }
    shard_global_ids_.push_back(std::move(global_ids));
  }
  if (options_.engine.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(options_.engine.threads);
  }
  return util::Status::OK();
}

const SnapshotMeta& ShardedQueryEngine::meta() const {
  return delegate() ? shards_[0].meta() : meta_;
}

int ShardedQueryEngine::dim() const { return dim_; }

size_t ShardedQueryEngine::num_candidates() const { return num_candidates_; }

bool ShardedQueryEngine::has_ivf() const {
  return !shards_.empty() && shards_[0].has_ivf();
}

const float* ShardedQueryEngine::LookupVector(
    const std::string& label, std::vector<float>* scratch) const {
  if (view_ != nullptr) {
    const int64_t row = view_->FindRow(label);
    if (row < 0) return nullptr;
    if (view_->aligned()) return view_->row(static_cast<size_t>(row));
    scratch->resize(static_cast<size_t>(view_->dim()));
    view_->CopyRow(static_cast<size_t>(row), scratch->data());
    return scratch->data();
  }
  const std::vector<float>* vec = snapshot_.table.Get(label);
  return vec == nullptr ? nullptr : vec->data();
}

util::Result<std::vector<ScoredMatch>> ShardedQueryEngine::ScatterVector(
    const std::vector<float>& vec, size_t k, SearchMode mode, size_t nprobe,
    const std::vector<std::string>* allowed, bool use_pool,
    QueryTiming* timing) const {
  if (vec.size() != static_cast<size_t>(dim_)) {
    return util::Status::InvalidArgument(
        util::StrFormat("query vector has dim %zu, snapshot dim is %d",
                        vec.size(), dim_));
  }
  if (k == 0) k = options_.engine.default_k;
  const size_t s = shards_.size();
  std::vector<util::Result<std::vector<ScoredMatch>>> per(
      s, util::Status::Internal("shard not queried"));
  auto run_shard = [&](size_t i) {
    per[i] = allowed != nullptr
                 ? shards_[i].QueryVectorFiltered(vec, *allowed, k)
                 : shards_[i].QueryVector(vec, k, mode, nprobe);
  };
  util::StopWatch stage_watch;
  if (use_pool && pool_ != nullptr && s > 1) {
    // Leaf-task scatter with its own completion latch (the QueryBatch
    // pattern): shard tasks never submit further work, so concurrent
    // scatters share the pool without deadlock.
    size_t remaining = s;
    std::mutex mu;
    std::condition_variable done;
    for (size_t i = 0; i < s; ++i) {
      pool_->Submit([&, i] {
        run_shard(i);
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining == 0) done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [&remaining] { return remaining == 0; });
  } else {
    for (size_t i = 0; i < s; ++i) run_shard(i);
  }
  const double scatter_ms = stage_watch.ElapsedMillis();

  // Gather: map shard-local candidate ids to global ones and re-rank the
  // union of the per-shard top-k heaps under TopK's strict total order
  // (score desc, ties to the lower global id). Every global top-k member
  // is inside its own shard's top-k, so the union always contains the
  // exact answer.
  std::vector<ScoredMatch> merged;
  merged.reserve(s * k);
  for (size_t i = 0; i < s; ++i) {
    if (!per[i].ok()) return per[i].status();
    for (const ScoredMatch& m : *per[i]) {
      merged.push_back(ScoredMatch{
          m.label, shard_global_ids_[i][static_cast<size_t>(m.candidate)],
          m.score});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const ScoredMatch& a, const ScoredMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.candidate < b.candidate;
            });
  if (merged.size() > k) merged.resize(k);
  if (timing != nullptr) {
    timing->scatter_ms = scatter_ms;
    timing->merge_ms = stage_watch.ElapsedMillis() - scatter_ms;
  }
  return merged;
}

namespace {

/// Delegate-mode timing: the single engine call is the scatter stage and
/// there is nothing to merge.
template <typename Fn>
auto TimeAsScatter(ShardedQueryEngine::QueryTiming* timing, Fn&& fn) {
  if (timing == nullptr) return fn();
  util::StopWatch watch;
  auto result = fn();
  timing->scatter_ms = watch.ElapsedMillis();
  timing->merge_ms = 0.0;
  return result;
}

}  // namespace

util::Result<std::vector<ScoredMatch>> ShardedQueryEngine::Query(
    const std::string& label, size_t k, SearchMode mode, size_t nprobe,
    QueryTiming* timing) const {
  if (delegate()) {
    return TimeAsScatter(
        timing, [&] { return shards_[0].Query(label, k, mode, nprobe); });
  }
  std::vector<float> scratch;
  const float* vec = LookupVector(label, &scratch);
  if (vec == nullptr) {
    return util::Status::NotFound("no embedding for label '" + label + "'");
  }
  std::vector<float> q(vec, vec + static_cast<size_t>(dim_));
  return ScatterVector(q, k, mode, nprobe, nullptr, /*use_pool=*/true,
                       timing);
}

util::Result<std::vector<ScoredMatch>> ShardedQueryEngine::QueryVector(
    const std::vector<float>& vec, size_t k, SearchMode mode, size_t nprobe,
    QueryTiming* timing) const {
  if (delegate()) {
    return TimeAsScatter(
        timing, [&] { return shards_[0].QueryVector(vec, k, mode, nprobe); });
  }
  return ScatterVector(vec, k, mode, nprobe, nullptr, /*use_pool=*/true,
                       timing);
}

util::Result<std::vector<ScoredMatch>> ShardedQueryEngine::QueryFiltered(
    const std::string& label, const std::vector<std::string>& allowed,
    size_t k, QueryTiming* timing) const {
  if (delegate()) {
    return TimeAsScatter(timing, [&] {
      return shards_[0].QueryFiltered(label, allowed, k);
    });
  }
  std::vector<float> scratch;
  const float* vec = LookupVector(label, &scratch);
  if (vec == nullptr) {
    return util::Status::NotFound("no embedding for label '" + label + "'");
  }
  std::vector<float> q(vec, vec + static_cast<size_t>(dim_));
  return ScatterVector(q, k, SearchMode::kExact, 0, &allowed,
                       /*use_pool=*/true, timing);
}

std::vector<util::Result<std::vector<ScoredMatch>>>
ShardedQueryEngine::QueryBatch(const std::vector<std::string>& labels,
                               size_t k, SearchMode mode,
                               size_t nprobe) const {
  if (delegate()) return shards_[0].QueryBatch(labels, k, mode, nprobe);
  const size_t n = labels.size();
  std::vector<util::Result<std::vector<ScoredMatch>>> results(
      n, util::Status::Internal("query not executed"));
  // Parallelism is over the queries; each worker runs its queries' shard
  // fan-out inline (a pooled scatter inside a pooled batch would be a
  // blocking submit from a worker — the classic self-deadlock).
  auto run_query = [&](size_t i) {
    std::vector<float> scratch;
    const float* vec = LookupVector(labels[i], &scratch);
    if (vec == nullptr) {
      results[i] = util::Status::NotFound("no embedding for label '" +
                                          labels[i] + "'");
      return;
    }
    std::vector<float> q(vec, vec + static_cast<size_t>(dim_));
    results[i] = ScatterVector(q, k, mode, nprobe, nullptr,
                               /*use_pool=*/false);
  };
  const size_t workers = std::min(options_.engine.threads, n);
  if (pool_ == nullptr || workers <= 1) {
    for (size_t i = 0; i < n; ++i) run_query(i);
    return results;
  }
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t begin = 0; begin < n; begin += chunk) {
    ranges.emplace_back(begin, std::min(n, begin + chunk));
  }
  size_t remaining = ranges.size();
  std::mutex mu;
  std::condition_variable done;
  for (const auto& range : ranges) {
    pool_->Submit([&, range] {
      for (size_t i = range.first; i < range.second; ++i) run_query(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&remaining] { return remaining == 0; });
  return results;
}

}  // namespace serve
}  // namespace tdmatch
