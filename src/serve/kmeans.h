#ifndef TDMATCH_SERVE_KMEANS_H_
#define TDMATCH_SERVE_KMEANS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace tdmatch {
namespace serve {

/// Build parameters of the seeded Lloyd trainer shared by the IVF coarse
/// quantizer (spherical, over full normalized vectors) and the PQ
/// subquantizer codebooks (Euclidean, over dim/m-sized subspaces).
struct KMeansOptions {
  /// Cluster count; must be in [1, n].
  size_t k = 1;
  /// Lloyd iterations.
  size_t iters = 8;
  /// Seed for the k-means++-style distinct-member init (util::Rng).
  uint64_t seed = 42;
  /// Threads for the assignment map (util::ThreadPool::ParallelFor).
  size_t threads = 1;
  /// Spherical mode: centroids are L2-normalized after every update and
  /// points rank cells by plain dot product (the IVF coarse quantizer
  /// over normalized vectors). Euclidean mode ranks by
  /// dot(x, c) - ||c||^2 / 2, the argmin-distance equivalence.
  bool spherical = false;
};

struct KMeansResult {
  /// k * d, row-major.
  std::vector<float> centroids;
  /// n entries; the assignment against the *final* centroids (one extra
  /// assignment pass after the last update, so encodings built from this
  /// are consistent with `centroids`).
  std::vector<int32_t> assign;
};

/// Accessor for point i's `d` floats. Rows may alias into a larger matrix
/// (the PQ trainer passes strided sub-slices).
using KMeansRowFn = std::function<const float*(size_t)>;

/// Seeded deterministic Lloyd iterations over `n` points of `d` dims.
///
/// The result is identical for any thread count: assignments are a pure
/// map over points (sharded in disjoint ranges; the 8-point × 1-centroid
/// simd::Dot8 tile computes each lane independently, so tile placement
/// never changes a value) and centroid updates accumulate sequentially in
/// id order in double precision. Assignment values may differ between
/// SIMD dispatch levels (reassociated dots can flip near-ties) — callers
/// assert behavioral quality (recall), not structural identity, across
/// ISAs. Ties rank to the lowest centroid id on every path.
KMeansResult TrainKMeans(const KMeansRowFn& row, size_t n, size_t d,
                         const KMeansOptions& options);

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_KMEANS_H_
