#ifndef TDMATCH_SERVE_RESULT_CACHE_H_
#define TDMATCH_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tdmatch {
namespace serve {

struct ResultCacheOptions {
  /// Total cached responses across all stripes; 0 disables the cache
  /// entirely (Get always misses, Put is a no-op).
  size_t capacity = 0;
  /// Lock stripes. Keys hash to a stripe; each stripe is an independent
  /// mutex + LRU list, so hot-query lookups from N server workers contend
  /// 1/stripes as often as a single-lock cache.
  size_t stripes = 8;
};

/// \brief Striped LRU cache of rendered query responses for hot queries.
///
/// Keyed by the full query identity (resolved label + k + mode + effective
/// nprobe — the serving layer builds the key) and stamped with the
/// snapshot version the response was computed from: Get refuses an entry
/// whose stamp differs from the current epoch, and Clear() drops
/// everything on reload, so a cached body can never outlive the snapshot
/// it answered for. Hit/miss/eviction counters feed /v1/stats.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  bool enabled() const { return options_.capacity > 0; }

  /// Copies the cached body into `*body` and returns true on a
  /// same-version hit; bumps the entry to most-recently-used. A version
  /// mismatch erases the stale entry and misses.
  bool Get(const std::string& key, uint64_t version, std::string* body);

  /// Inserts (or refreshes) `key` → `body` stamped with `version`,
  /// evicting the stripe's least-recently-used entries past capacity.
  void Put(const std::string& key, uint64_t version, std::string body);

  /// Drops every entry (snapshot swap invalidation).
  void Clear();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Entries currently cached (sums the stripes; O(stripes)).
  size_t size() const;
  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    uint64_t version;
    std::string body;
  };
  struct Stripe {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Stripe& StripeFor(const std::string& key);

  ResultCacheOptions options_;
  /// Per-stripe entry budget (capacity distributed evenly, min 1).
  size_t stripe_capacity_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_RESULT_CACHE_H_
