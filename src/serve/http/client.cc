#include "serve/http/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace tdmatch {
namespace serve {
namespace http {

namespace {

util::Result<int> OpenSocket(const std::string& host, uint16_t port,
                             int timeout_ms) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = util::StrFormat("%u", port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return util::Status::IOError(util::StrFormat(
        "cannot resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }

  int fd = -1;
  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return util::Status::IOError(
        util::StrFormat("cannot connect to %s:%u: %s", host.c_str(), port,
                        std::strerror(last_errno)));
  }
  return fd;
}

}  // namespace

util::Result<HttpClient> HttpClient::Connect(const std::string& host,
                                             uint16_t port, int timeout_ms) {
  HttpClient client;
  client.host_ = host;
  client.port_ = port;
  client.timeout_ms_ = timeout_ms;
  TDM_ASSIGN_OR_RETURN(client.fd_, OpenSocket(host, port, timeout_ms));
  return client;
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_ms_(other.timeout_ms_),
      fd_(other.fd_),
      used_(other.used_) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    timeout_ms_ = other.timeout_ms_;
    fd_ = other.fd_;
    used_ = other.used_;
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  used_ = false;
}

util::Status HttpClient::Reconnect() {
  Close();
  TDM_ASSIGN_OR_RETURN(fd_, OpenSocket(host_, port_, timeout_ms_));
  return util::Status::OK();
}

util::Result<HttpResponse> HttpClient::RoundTrip(const std::string& wire,
                                                 bool* retryable) {
  *retryable = false;
  size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The peer tore the connection down before taking the request —
      // the stale keep-alive race; nothing was processed.
      *retryable = errno == EPIPE || errno == ECONNRESET;
      return util::Status::IOError(std::string("send: ") +
                                   std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }

  HttpParser parser(HttpParser::Mode::kResponse);
  char buf[8192];
  bool saw_bytes = false;
  while (!parser.Done()) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A timeout (EAGAIN) is NOT retryable: the server may be executing
      // the request right now, and re-sending would run it twice.
      *retryable = !saw_bytes && errno == ECONNRESET;
      return util::Status::IOError(std::string("recv: ") +
                                   std::strerror(errno));
    }
    if (n == 0) {
      // EOF before any response byte ⇒ the server closed the idle
      // connection without reading the request; safe to replay.
      *retryable = !saw_bytes;
      return util::Status::IOError("server closed the connection mid-"
                                   "response");
    }
    saw_bytes = true;
    TDM_RETURN_NOT_OK(parser.Feed(std::string_view(
        buf, static_cast<size_t>(n))));
  }

  HttpResponse response;
  response.status = parser.response_status();
  response.headers = std::move(parser.request().headers);
  response.body = std::move(parser.request().body);
  return response;
}

util::Result<HttpResponse> HttpClient::Request(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  if (fd_ < 0) TDM_RETURN_NOT_OK(Reconnect());
  const std::string wire = SerializeRequest(
      method, target, util::StrFormat("%s:%u", host_.c_str(), port_), body,
      content_type, /*keep_alive=*/true, extra_headers);

  bool retryable = false;
  auto result = RoundTrip(wire, &retryable);
  if (!result.ok() && used_ && retryable) {
    // The server dropped the idle keep-alive connection between requests
    // without reading this request (RoundTrip proved no byte of it was
    // processed), so replaying — even a POST — cannot double-execute;
    // retry exactly once on a fresh connection. A failure there is real.
    TDM_RETURN_NOT_OK(Reconnect());
    used_ = false;
    result = RoundTrip(wire, &retryable);
  }
  if (result.ok()) {
    used_ = true;
    if (result->Header("connection") == "close") Close();
  } else {
    Close();
  }
  return result;
}

}  // namespace http
}  // namespace serve
}  // namespace tdmatch
