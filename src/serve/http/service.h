#ifndef TDMATCH_SERVE_HTTP_SERVICE_H_
#define TDMATCH_SERVE_HTTP_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>

#include "serve/admission.h"
#include "serve/http/http.h"
#include "serve/http/server.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/sharded_engine.h"
#include "util/obs/jsonlog.h"
#include "util/obs/metrics.h"
#include "util/obs/profiler.h"
#include "util/obs/slo.h"
#include "util/obs/timeseries.h"
#include "util/obs/trace.h"
#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace serve {
namespace http {

/// One immutable serving epoch: a built engine plus the identity of the
/// snapshot it came from. Swapped wholesale on reload.
struct EngineState {
  uint64_t version = 0;
  std::string snapshot_path;
  bool mmap = false;
  double load_seconds = 0.0;
  /// On-disk format version of the loaded snapshot (1 = plain, 2 = with
  /// sections), surfaced in build_info.
  uint32_t snapshot_format = 1;
  std::shared_ptr<ShardedQueryEngine> engine;
};

struct ServiceOptions {
  QueryEngineOptions engine;
  /// Load snapshots through the zero-copy mmap view (SnapshotView) rather
  /// than the copying loader.
  bool use_mmap = true;
  /// Expose POST /v1/reload. Off ⇒ the route is not registered at all.
  bool allow_reload = true;
  /// Per-request cap on batch "labels" length.
  size_t max_batch = 1024;
  /// Scatter-gather shard count for the serving engine. 1 = the classic
  /// unsharded engine (exact-mode results are bit-identical either way).
  size_t shards = 1;
  /// Admission budget for /v1/query: requests past this many in flight
  /// get 429 + Retry-After. SIZE_MAX never sheds; 0 sheds everything.
  size_t max_inflight = std::numeric_limits<size_t>::max();
  /// p99 latency budget (ms) the nprobe auto-tuner steers approx queries
  /// toward; <= 0 disables tuning.
  double latency_budget_ms = 0.0;
  /// LRU result-cache capacity in responses; 0 disables the cache.
  size_t cache_entries = 0;
  /// Honor a debug "delay_ms" field on /v1/query (sleeps inside the
  /// admission window). Only for tests/CI: it makes in-flight overlap —
  /// and therefore 429s — deterministic under a flood.
  bool allow_debug_delay = false;
  /// Fraction of /v1/query requests traced with per-stage spans (0 =
  /// never, 1 = every request). Traced requests feed the per-stage
  /// histograms and emit one JSONL "trace" line.
  double trace_sample = 0.0;
  /// Trace (and log) any query slower than this many milliseconds, on
  /// top of the sample; <= 0 disables the slow-query path.
  double slow_query_ms = 0.0;
  /// Metrics registry to publish into. Null ⇒ the service creates a
  /// private registry (safe for many services per process, as tests do);
  /// a server binary passes &util::obs::Registry::Global() so /v1/metrics
  /// is the process-wide view.
  util::obs::Registry* registry = nullptr;
  /// Structured logger for trace/slow-query lines. Null ⇒ the process
  /// JsonLogger::Global().
  util::obs::JsonLogger* logger = nullptr;
  /// Metric-history sampling interval (seconds). > 0 starts a background
  /// sampler at LoadInitial that snapshots the registry into fixed rings;
  /// <= 0 disables the sampler (the /v1/metrics/history endpoint still
  /// exists but stays empty unless something samples manually).
  double history_interval_s = 1.0;
  /// Ring capacity per series — retention is points * interval.
  size_t history_points = 600;
  /// Expose GET /v1/debug/profile (the sampling CPU profiler). The
  /// endpoint blocks one worker for the capture window.
  bool allow_profile = true;
  /// Cap on a single /v1/debug/profile capture ("seconds" param).
  double profile_max_seconds = 30.0;
  /// Default sampling frequency for /v1/debug/profile (overridable per
  /// request with "hz").
  int profile_hz = 99;
  /// Availability SLO target (fraction of requests that are not 5xx).
  double slo_availability_target = 0.999;
  /// Latency SLO target: this fraction of requests must finish within
  /// latency_budget_ms. Tracked only when latency_budget_ms > 0 (the
  /// budget doubles as the objective threshold).
  double slo_latency_target = 0.999;
  /// Fast pair drives /v1/healthz "degraded"; slow pair is report-only.
  util::obs::SloWindowPair slo_fast{60.0, 600.0, 14.4};
  util::obs::SloWindowPair slo_slow{300.0, 3600.0, 6.0};
};

/// \brief The JSON endpoints of the serving front end, bound to an
/// HttpServer:
///
///   POST /v1/query    single ({"label"}), batch ({"labels": [...]}),
///                     raw vector ({"vector": [...]}); optional "k",
///                     "mode" ("approx"/"exact"), and — single-label
///                     only — a blocking filter {"allowed": [...]}
///                     mirroring QueryEngine::QueryFiltered.
///   GET  /v1/healthz  liveness + current snapshot version
///   GET  /v1/stats    counters, qps, latency percentiles, snapshot id
///   GET  /v1/metrics  Prometheus text exposition of the same registry
///   POST /v1/reload   atomically swap in a new snapshot (optional
///                     {"snapshot": path}; defaults to re-reading the
///                     current path)
///
/// Every service counter lives in an obs::Registry (striped counters,
/// one relaxed atomic bump on the hot path); /v1/stats and /v1/metrics
/// are two renderings of the same data. A request that wins the trace
/// sample (or any request when --slow-query-ms is set) carries an
/// obs::Trace whose spans — parse, cache, admission, scatter, merge,
/// serialize — aggregate into per-stage histograms and emit one JSONL
/// line. Untraced requests pay one branch per would-be span; tracing is
/// read-only on results (exact-mode bodies stay bit-identical).
///
/// Hot reload is an RCU epoch swap: every request pins the current
/// EngineState via a shared_ptr read with std::atomic_load, reload builds
/// the new state off to the side and publishes it with std::atomic_store.
/// In-flight queries keep serving the old engine until they drop their
/// pin; the old snapshot (and its mmap) is unmapped when the last reader
/// drains. No request ever observes a half-swapped state, and every
/// response is stamped with the snapshot_version it was answered from.
/// A failed reload leaves the old state serving and reports the error.
class MatchService {
 public:
  explicit MatchService(ServiceOptions options = {});
  ~MatchService();

  /// Builds the first serving state (version 1). Must succeed before
  /// Register/serving.
  util::Status LoadInitial(const std::string& snapshot_path);

  /// Registers the routes on `server` (before server.Start()).
  void Register(HttpServer* server);

  /// The current epoch (never null after LoadInitial). Callers holding
  /// the returned shared_ptr keep that epoch's engine + mapping alive.
  std::shared_ptr<const EngineState> state() const;

  /// Swaps in `path` (empty ⇒ current path). Serialized; concurrent
  /// queries are unaffected until the atomic publish.
  util::Result<std::shared_ptr<const EngineState>> Reload(
      const std::string& path);

  // Endpoint handlers (exposed for in-process tests).
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleHealth(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleReload(const HttpRequest& request);
  HttpResponse HandleHistory(const HttpRequest& request);
  HttpResponse HandleSlo(const HttpRequest& request);
  HttpResponse HandleProfile(const HttpRequest& request);

  const ServiceOptions& options() const { return options_; }
  const AdmissionController& admission() const { return admission_; }
  const ResultCache& cache() const { return cache_; }
  /// Null until LoadInitial; disabled unless latency_budget_ms > 0.
  const NprobeTuner* tuner() const { return tuner_.get(); }
  /// The registry this service publishes into (its own unless injected).
  util::obs::Registry* registry() const { return registry_; }
  /// Metric-history rings (never null). The background sampler runs only
  /// when history_interval_s > 0; tests drive SampleOnce directly.
  util::obs::TimeSeriesStore* history() const { return history_.get(); }
  /// Objective tracker (never null).
  util::obs::SloTracker* slo() const { return slo_.get(); }

 private:
  util::Result<std::shared_ptr<const EngineState>> BuildState(
      const std::string& path, uint64_t version) const;
  /// The 429 + Retry-After response for a refused query.
  HttpResponse ShedResponse();
  /// The traced body of HandleQuery (`trace` may be null).
  HttpResponse HandleQueryTraced(const HttpRequest& request,
                                 util::obs::Trace* trace);
  /// Trace-decision dispatch (the pre-SLO body of HandleQuery).
  HttpResponse HandleQueryDispatch(const HttpRequest& request);
  /// Seconds on the steady clock — the SLO tracker's time base.
  static double NowSeconds();
  /// Stage histograms + the JSONL trace/slow-query line.
  void FinishRequestTrace(util::obs::Trace* trace, bool sampled, int status,
                          uint64_t snapshot_version);
  /// Registers/refreshes the state-dependent callback metrics
  /// (build_info labels, snapshot phase gauges) for `state`.
  void PublishStateMetrics(const EngineState& state);

  ServiceOptions options_;
  /// Current epoch; read with std::atomic_load, published with
  /// std::atomic_store (the C++17 shared_ptr atomic free functions).
  std::shared_ptr<const EngineState> state_;
  /// Serializes reloads (readers never take it).
  std::mutex reload_mu_;

  std::chrono::steady_clock::time_point start_time_;
  /// Owns the registry when none was injected.
  std::unique_ptr<util::obs::Registry> owned_registry_;
  util::obs::Registry* registry_ = nullptr;
  util::obs::JsonLogger* logger_ = nullptr;

  // Registry-owned instruments (resolved once; pointers are stable).
  util::obs::Counter* queries_ = nullptr;
  util::obs::Counter* errors_ = nullptr;
  util::obs::Counter* reloads_ = nullptr;
  util::obs::Counter* traces_ = nullptr;
  util::obs::Counter* slow_queries_ = nullptr;
  util::obs::Histogram* latency_ = nullptr;
  /// Per-stage latency histograms, parallel to kStageNames.
  static constexpr size_t kStages = 6;
  static const char* const kStageNames[kStages];
  util::obs::Histogram* stage_latency_[kStages] = {};

  util::obs::TraceSampler sampler_;
  AdmissionController admission_;
  ResultCache cache_;
  std::unique_ptr<NprobeTuner> tuner_;

  std::unique_ptr<util::obs::TimeSeriesStore> history_;
  std::unique_ptr<util::obs::TimeSeriesSampler> history_sampler_;
  std::unique_ptr<util::obs::SloTracker> slo_;
};

}  // namespace http
}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_HTTP_SERVICE_H_
