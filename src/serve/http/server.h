#ifndef TDMATCH_SERVE_HTTP_SERVER_H_
#define TDMATCH_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/http/http.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tdmatch {
namespace serve {
namespace http {

struct HttpServerOptions {
  /// Address to bind. Loopback by default: exposing the server beyond the
  /// host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// 0 ⇒ an ephemeral port; read the outcome from port() after Start().
  uint16_t port = 0;
  /// Connection worker threads (the acceptor runs on its own thread). A
  /// worker owns one connection at a time for its keep-alive lifetime;
  /// accepted connections beyond `threads` wait in the pool queue.
  size_t threads = 4;
  /// Close keep-alive connections that sit idle this long. Also bounds how
  /// long a worker can be held by a silent client.
  int idle_timeout_ms = 30000;
  int backlog = 128;
  HttpLimits limits;
};

/// \brief Minimal multi-threaded HTTP/1.1 server on POSIX sockets: one
/// acceptor thread plus a fixed-size util::ThreadPool of connection
/// workers. Persistent connections, Content-Length framing, hard
/// header/body limits, graceful Stop() that drains in-flight requests.
///
/// Routing is exact-match on (method, path). Handlers run on worker
/// threads and must be thread-safe; they receive the parsed request and
/// return a response. Malformed input never reaches a handler — the
/// parser answers 400/413/431/505 and closes.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact (method, path). Must happen before
  /// Start().
  void Handle(std::string method, std::string path, Handler handler);

  /// Binds, listens, and spawns the acceptor + workers.
  util::Status Start();

  /// Stops accepting, wakes every connection worker, and joins them after
  /// in-flight requests finish. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (resolves option port = 0 to the real one).
  uint16_t port() const { return port_; }
  bool running() const { return started_ && !stopping_.load(); }

  /// Total requests answered (including error responses). Diagnostics.
  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  struct Route {
    std::string method;
    std::string path;
    Handler handler;
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Routes a parsed request: handler result, 405 for a known path with
  /// the wrong method, 404 otherwise.
  HttpResponse Dispatch(const HttpRequest& request) const;

  HttpServerOptions options_;
  std::vector<Route> routes_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  bool started_ = false;
  std::mutex stop_mu_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread acceptor_;
  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace http
}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_HTTP_SERVER_H_
