#include "serve/http/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/json.h"
#include "util/string_util.h"

namespace tdmatch {
namespace serve {
namespace http {

namespace {

/// Worker poll granularity: how quickly an idle connection notices
/// Stop(). Short enough for a snappy shutdown, long enough to not spin.
constexpr int kPollSliceMs = 100;

std::string ErrorBody(const std::string& message) {
  util::JsonWriter w;
  w.BeginObject().Key("error").Value(message).EndObject();
  return w.str();
}

/// send() the whole buffer, riding out partial writes and EINTR.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.threads == 0) options_.threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string method, std::string path,
                        Handler handler) {
  routes_.push_back(
      Route{std::move(method), std::move(path), std::move(handler)});
}

util::Status HttpServer::Start() {
  if (started_) return util::Status::Internal("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return util::Status::IOError(std::string("socket: ") +
                                 std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("bad bind address '" +
                                         options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IOError(util::StrFormat(
        "bind %s:%u failed: %s", options_.bind_address.c_str(),
        options_.port, std::strerror(err)));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::IOError(std::string("listen: ") +
                                 std::strerror(err));
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  workers_ = std::make_unique<util::ThreadPool>(options_.threads);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return util::Status::OK();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!started_) return;
  stopping_.store(true);
  // Closing the listen socket pops the acceptor out of accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  // Connection workers notice stopping_ within one poll slice, finish the
  // response they are writing, and drain; the pool destructor joins them.
  workers_.reset();
  listen_fd_ = -1;
  started_ = false;
  stopping_.store(false);
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL: Stop() closed the socket — normal shutdown.
      return;
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    workers_->Submit([this, fd] { ServeConnection(fd); });
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  bool path_known = false;
  for (const auto& route : routes_) {
    if (route.path != request.path) continue;
    path_known = true;
    if (route.method == request.method) return route.handler(request);
  }
  if (path_known) {
    return HttpResponse::Json(
        405, ErrorBody("method " + request.method + " not allowed for " +
                       request.path));
  }
  return HttpResponse::Json(404, ErrorBody("no route for " + request.path));
}

void HttpServer::ServeConnection(int fd) {
  HttpParser parser(HttpParser::Mode::kRequest, options_.limits);
  char buf[8192];

  for (;;) {  // one iteration per request on this connection
    util::Status st = parser.Feed("");  // pick up pipelined leftover
    bool received_bytes = false;
    int idle_ms = 0;
    bool peer_closed = false;

    while (st.ok() && !parser.Done()) {
      if (stopping_.load()) {
        ::close(fd);
        return;
      }
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, kPollSliceMs);
      if (rc < 0) {
        if (errno == EINTR) continue;
        peer_closed = true;
        break;
      }
      if (rc == 0) {
        idle_ms += kPollSliceMs;
        if (idle_ms >= options_.idle_timeout_ms) break;
        continue;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (n <= 0) {
        peer_closed = true;
        break;
      }
      idle_ms = 0;
      received_bytes = true;
      st = parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }

    if (!st.ok()) {
      // Protocol violation: answer with the parser's verdict and close —
      // after a framing error the byte stream cannot be trusted.
      const int code = parser.http_status() == 0 ? 400 : parser.http_status();
      SendAll(fd, SerializeResponse(
                      HttpResponse::Json(code, ErrorBody(st.message())),
                      /*keep_alive=*/false));
      ::close(fd);
      return;
    }
    if (!parser.Done()) {
      // Timeout or peer disconnect. A half-sent request earns a 408; a
      // silent idle close (the normal keep-alive end) gets nothing.
      if (!peer_closed && received_bytes) {
        SendAll(fd, SerializeResponse(
                        HttpResponse::Json(408, ErrorBody("request timed "
                                                          "out")),
                        /*keep_alive=*/false));
      }
      ::close(fd);
      return;
    }

    const HttpRequest& request = parser.request();
    const bool keep_alive = request.KeepAlive() && !stopping_.load();
    HttpResponse response = Dispatch(request);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (!SendAll(fd, SerializeResponse(response, keep_alive)) ||
        !keep_alive) {
      ::close(fd);
      return;
    }
    parser.Reset();
  }
}

}  // namespace http
}  // namespace serve
}  // namespace tdmatch
