#include "serve/http/service.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "serve/mmap_snapshot.h"
#include "serve/snapshot.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tdmatch {
namespace serve {
namespace http {

namespace {

int StatusToHttp(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kInvalidArgument: return 400;
    case util::StatusCode::kNotFound: return 404;
    case util::StatusCode::kIOError: return 500;
    default: return 500;
  }
}

HttpResponse ErrorResponse(int http_status, const std::string& message) {
  util::JsonWriter w;
  w.BeginObject().Key("error").Value(message).EndObject();
  return HttpResponse::Json(http_status, w.str());
}

HttpResponse ErrorResponse(const util::Status& status) {
  return ErrorResponse(StatusToHttp(status), status.ToString());
}

/// `q:3` / `c:7` → the snapshot's metadata-doc labels, using the prefixes
/// recorded in the snapshot meta (the same shorthand the REPL speaks).
/// Anything else passes through untouched.
std::string ResolveLabel(const std::string& raw, const SnapshotMeta& meta) {
  if (raw.size() < 3 || (raw[0] != 'q' && raw[0] != 'c') || raw[1] != ':') {
    return raw;
  }
  for (size_t i = 2; i < raw.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(raw[i])) == 0) return raw;
  }
  std::string prefix =
      meta.Find(raw[0] == 'q' ? "query_prefix" : "candidate_prefix");
  if (prefix.empty()) prefix = raw[0] == 'q' ? "__D0:" : "__D1:";
  return prefix + raw.substr(2) + "__";
}

void AppendMatches(const std::vector<ScoredMatch>& matches,
                   util::JsonWriter* w) {
  w->Key("matches").BeginArray();
  for (const auto& m : matches) {
    w->BeginObject()
        .Key("label").Value(m.label)
        .Key("candidate").Value(static_cast<int64_t>(m.candidate))
        .Key("score").Value(m.score)
        .EndObject();
  }
  w->EndArray();
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

void LatencyHistogram::Record(double ms) {
  uint64_t us = ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1000.0);
  size_t idx = 0;
  while (us > 1 && idx + 1 < kBuckets) {
    us >>= 1;
    ++idx;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

double LatencyHistogram::PercentileMs(double p) const {
  const uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                p * static_cast<double>(total))));
  uint64_t cum = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      // Upper bound of bucket i: 2^(i+1) microseconds.
      return static_cast<double>(uint64_t{1} << (i + 1)) / 1000.0;
    }
  }
  return static_cast<double>(uint64_t{1} << kBuckets) / 1000.0;
}

// ---------------------------------------------------------------------------
// MatchService
// ---------------------------------------------------------------------------

MatchService::MatchService(ServiceOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()),
      admission_(AdmissionOptions{options_.max_inflight, 1, 30}),
      cache_(ResultCacheOptions{options_.cache_entries, 8}) {}

util::Result<std::shared_ptr<const EngineState>> MatchService::BuildState(
    const std::string& path, uint64_t version) const {
  util::StopWatch watch;
  auto state = std::make_shared<EngineState>();
  state->version = version;
  state->snapshot_path = path;
  state->mmap = options_.use_mmap;
  ShardedEngineOptions sharded;
  sharded.shards = options_.shards;
  sharded.engine = options_.engine;
  if (options_.use_mmap) {
    TDM_ASSIGN_OR_RETURN(std::shared_ptr<const SnapshotView> view,
                         SnapshotView::Open(path));
    std::string prefix = view->meta().Find("candidate_prefix");
    if (prefix.empty()) prefix = "__D1:";
    TDM_ASSIGN_OR_RETURN(
        ShardedQueryEngine engine,
        ShardedQueryEngine::BuildFromView(std::move(view), prefix, sharded));
    state->engine = std::make_shared<ShardedQueryEngine>(std::move(engine));
  } else {
    TDM_ASSIGN_OR_RETURN(Snapshot snap, SnapshotIo::Read(path));
    std::string prefix = snap.meta.Find("candidate_prefix");
    if (prefix.empty()) prefix = "__D1:";
    TDM_ASSIGN_OR_RETURN(
        ShardedQueryEngine engine,
        ShardedQueryEngine::Build(std::move(snap), prefix, sharded));
    state->engine = std::make_shared<ShardedQueryEngine>(std::move(engine));
  }
  state->load_seconds = watch.ElapsedSeconds();
  return std::shared_ptr<const EngineState>(std::move(state));
}

util::Status MatchService::LoadInitial(const std::string& snapshot_path) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  TDM_ASSIGN_OR_RETURN(std::shared_ptr<const EngineState> state,
                       BuildState(snapshot_path, 1));
  // The tuner's ceiling is the loaded engine's largest shard nlist —
  // probing more cells than exist buys nothing. Created once here (before
  // serving starts); reloads clamp at use instead of resetting the
  // tuner's learned position.
  NprobeTunerOptions tuning;
  tuning.budget_ms = options_.latency_budget_ms;
  tuning.initial_nprobe = options_.engine.ivf.nprobe;
  tuning.max_nprobe =
      state->engine->has_ivf() ? state->engine->max_nprobe() : 1;
  tuner_ = std::make_unique<NprobeTuner>(tuning);
  std::atomic_store(&state_, std::move(state));
  return util::Status::OK();
}

std::shared_ptr<const EngineState> MatchService::state() const {
  return std::atomic_load(&state_);
}

util::Result<std::shared_ptr<const EngineState>> MatchService::Reload(
    const std::string& path) {
  // One reload at a time; queries never wait on this lock — they read the
  // published epoch pointer and carry on against it.
  std::lock_guard<std::mutex> lock(reload_mu_);
  const std::shared_ptr<const EngineState> current = state();
  if (current == nullptr) {
    return util::Status::Internal("service has no initial snapshot");
  }
  const std::string target = path.empty() ? current->snapshot_path : path;
  TDM_ASSIGN_OR_RETURN(std::shared_ptr<const EngineState> fresh,
                       BuildState(target, current->version + 1));
  // Publish. Readers that already pinned `current` finish on it; the old
  // engine (and its mmap) is destroyed when the last pin drops.
  std::atomic_store(&state_, fresh);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  // Cached responses are stamped with the version they answered for (Get
  // refuses a stale stamp on its own); clearing on swap also frees the
  // dead epoch's bodies immediately.
  cache_.Clear();
  return fresh;
}

void MatchService::Register(HttpServer* server) {
  server->Handle("POST", "/v1/query",
                 [this](const HttpRequest& r) { return HandleQuery(r); });
  server->Handle("GET", "/v1/healthz",
                 [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Handle("GET", "/v1/stats",
                 [this](const HttpRequest& r) { return HandleStats(r); });
  if (options_.allow_reload) {
    server->Handle("POST", "/v1/reload",
                   [this](const HttpRequest& r) { return HandleReload(r); });
  }
}

HttpResponse MatchService::ShedResponse() {
  // Retry-After scales with the backlog at a typical (p50) per-query
  // cost; the header is always an integer in [1, 30] seconds.
  const int retry_s = admission_.RetryAfterSeconds(latency_.PercentileMs(0.5));
  util::JsonWriter w;
  w.BeginObject()
      .Key("error").Value(util::StrFormat(
          "overloaded: %zu queries in flight at capacity %zu",
          admission_.inflight(), admission_.options().max_inflight))
      .Key("retry_after_seconds").Value(static_cast<int64_t>(retry_s))
      .EndObject();
  HttpResponse response = HttpResponse::Json(429, w.str());
  response.headers.emplace_back("Retry-After", std::to_string(retry_s));
  return response;
}

HttpResponse MatchService::HandleQuery(const HttpRequest& request) {
  util::StopWatch watch;
  const std::shared_ptr<const EngineState> state = this->state();
  if (state == nullptr) {
    return ErrorResponse(503, "no snapshot loaded");
  }
  const ShardedQueryEngine& engine = *state->engine;

  auto parsed = util::JsonParse(request.body);
  if (!parsed.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "bad request body: " +
                                  parsed.status().message());
  }
  const util::JsonValue& root = *parsed;
  if (!root.is_object()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "request body must be a JSON object");
  }

  // --- common knobs -------------------------------------------------------
  size_t k = 0;
  if (const util::JsonValue* kv = root.Find("k"); kv != nullptr) {
    const double kd = kv->number_value();
    if (!kv->is_number() || kd < 0 || kd > 1e6 ||
        kd != std::floor(kd)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, "'k' must be an integer in [0, 1e6]");
    }
    k = static_cast<size_t>(kd);
  }
  SearchMode mode = SearchMode::kApprox;
  if (const util::JsonValue* mv = root.Find("mode"); mv != nullptr) {
    if (!mv->is_string() || (mv->string_value() != "approx" &&
                             mv->string_value() != "exact")) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, "'mode' must be \"approx\" or \"exact\"");
    }
    if (mv->string_value() == "exact") mode = SearchMode::kExact;
  }

  const util::JsonValue* label = root.Find("label");
  const util::JsonValue* labels = root.Find("labels");
  const util::JsonValue* vector = root.Find("vector");
  const util::JsonValue* allowed = root.Find("allowed");
  const int selectors = (label != nullptr) + (labels != nullptr) +
                        (vector != nullptr);
  if (selectors != 1) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "provide exactly one of 'label', 'labels', "
                              "'vector'");
  }
  if (allowed != nullptr && label == nullptr) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(400, "'allowed' requires a single 'label' query");
  }

  // --- debug delay (only honored with allow_debug_delay) -----------------
  double delay_ms = 0.0;
  if (const util::JsonValue* dv = root.Find("delay_ms");
      dv != nullptr && options_.allow_debug_delay) {
    if (!dv->is_number() || dv->number_value() < 0.0 ||
        dv->number_value() > 10000.0) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, "'delay_ms' must be a number in [0, 10000]");
    }
    delay_ms = dv->number_value();
  }

  // --- per-query nprobe from the latency-budget auto-tuner ----------------
  size_t nprobe = 0;
  if (tuner_ != nullptr && tuner_->enabled() &&
      mode == SearchMode::kApprox && engine.has_ivf()) {
    nprobe = std::max<size_t>(
        1, std::min(tuner_->nprobe(), engine.max_nprobe()));
  }

  // --- result cache (single-label queries; the hot-query shape) -----------
  // A hit is served before admission: it costs one striped-map lookup, no
  // engine work, so shedding it would protect nothing.
  std::string cache_key;
  if (cache_.enabled() && label != nullptr && label->is_string() &&
      allowed == nullptr) {
    cache_key = util::StrFormat(
        "%s|k=%zu|m=%c|np=%zu",
        ResolveLabel(label->string_value(), engine.meta()).c_str(), k,
        mode == SearchMode::kExact ? 'e' : 'a', nprobe);
    std::string cached;
    if (cache_.Get(cache_key, state->version, &cached)) {
      queries_.fetch_add(1, std::memory_order_relaxed);
      latency_.Record(watch.ElapsedMillis());
      return HttpResponse::Json(200, std::move(cached));
    }
  }

  // --- admission: shed instead of queueing past the in-flight budget ------
  AdmissionController::Ticket ticket(&admission_);
  if (!ticket.admitted()) {
    return ShedResponse();
  }
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }

  util::JsonWriter w;
  w.BeginObject()
      .Key("snapshot_version").Value(state->version)
      .Key("scenario").Value(engine.meta().scenario);

  if (labels != nullptr) {
    // --- batch ------------------------------------------------------------
    if (!labels->is_array()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, "'labels' must be an array of strings");
    }
    if (labels->items().size() > options_.max_batch) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(
          400, util::StrFormat("batch of %zu exceeds the %zu query limit",
                               labels->items().size(), options_.max_batch));
    }
    std::vector<std::string> names;
    names.reserve(labels->items().size());
    for (const auto& item : labels->items()) {
      if (!item.is_string()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(400, "'labels' must be an array of strings");
      }
      names.push_back(ResolveLabel(item.string_value(), engine.meta()));
    }
    const auto results = engine.QueryBatch(names, k, mode, nprobe);
    queries_.fetch_add(names.size(), std::memory_order_relaxed);
    w.Key("results").BeginArray();
    for (size_t i = 0; i < results.size(); ++i) {
      w.BeginObject().Key("label").Value(names[i]);
      if (results[i].ok()) {
        AppendMatches(*results[i], &w);
      } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
        w.Key("error").Value(results[i].status().ToString());
      }
      w.EndObject();
    }
    w.EndArray();
  } else if (label != nullptr) {
    // --- single, optionally blocked --------------------------------------
    if (!label->is_string()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, "'label' must be a string");
    }
    const std::string name =
        ResolveLabel(label->string_value(), engine.meta());
    util::Result<std::vector<ScoredMatch>> result =
        std::vector<ScoredMatch>{};
    if (allowed != nullptr) {
      if (!allowed->is_array()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(400, "'allowed' must be an array of strings");
      }
      std::vector<std::string> block;
      block.reserve(allowed->items().size());
      for (const auto& item : allowed->items()) {
        if (!item.is_string()) {
          errors_.fetch_add(1, std::memory_order_relaxed);
          return ErrorResponse(400,
                               "'allowed' must be an array of strings");
        }
        block.push_back(ResolveLabel(item.string_value(), engine.meta()));
      }
      result = engine.QueryFiltered(name, block, k);
    } else {
      result = engine.Query(name, k, mode, nprobe);
    }
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(result.status());
    }
    w.Key("label").Value(name);
    AppendMatches(*result, &w);
  } else {
    // --- raw vector -------------------------------------------------------
    if (!vector->is_array() || vector->items().empty()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(400, "'vector' must be a non-empty number "
                                "array");
    }
    std::vector<float> q;
    q.reserve(vector->items().size());
    for (const auto& item : vector->items()) {
      if (!item.is_number()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return ErrorResponse(400, "'vector' must be a non-empty number "
                                  "array");
      }
      q.push_back(static_cast<float>(item.number_value()));
    }
    const auto result = engine.QueryVector(q, k, mode, nprobe);
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponse(result.status());
    }
    AppendMatches(*result, &w);
  }

  w.EndObject();
  std::string body = w.str();
  if (!cache_key.empty()) cache_.Put(cache_key, state->version, body);
  latency_.Record(watch.ElapsedMillis());
  // Feed the tuner after recording: it reacts to the p99 including this
  // query. Cache hits and shed requests never reach here — the tuner only
  // learns from queries the engine actually executed.
  if (tuner_ != nullptr) tuner_->Observe(latency_.PercentileMs(0.99));
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse MatchService::HandleHealth(const HttpRequest&) {
  const std::shared_ptr<const EngineState> state = this->state();
  if (state == nullptr) {
    return ErrorResponse(503, "no snapshot loaded");
  }
  util::JsonWriter w;
  w.BeginObject()
      .Key("status").Value("ok")
      .Key("snapshot_version").Value(state->version)
      .EndObject();
  return HttpResponse::Json(200, w.str());
}

HttpResponse MatchService::HandleStats(const HttpRequest&) {
  const std::shared_ptr<const EngineState> state = this->state();
  if (state == nullptr) {
    return ErrorResponse(503, "no snapshot loaded");
  }
  const ShardedQueryEngine& engine = *state->engine;
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const uint64_t queries = queries_.load(std::memory_order_relaxed);
  const uint64_t cache_hits = cache_.hits();
  const uint64_t cache_lookups = cache_hits + cache_.misses();
  util::JsonWriter w;
  w.BeginObject()
      .Key("snapshot_version").Value(state->version)
      .Key("snapshot_path").Value(state->snapshot_path)
      .Key("scenario").Value(engine.meta().scenario)
      .Key("snapshot_loader").Value(state->mmap ? "mmap" : "copy")
      .Key("load_seconds").Value(state->load_seconds)
      .Key("candidates").Value(static_cast<uint64_t>(
          engine.num_candidates()))
      .Key("dim").Value(static_cast<int64_t>(engine.dim()))
      .Key("index").Value(engine.has_ivf() ? "ivf+exact" : "exact")
      .Key("uptime_seconds").Value(uptime)
      .Key("queries").Value(queries)
      .Key("errors").Value(errors_.load(std::memory_order_relaxed))
      .Key("reloads").Value(reloads_.load(std::memory_order_relaxed))
      .Key("qps").Value(uptime > 0
                            ? static_cast<double>(queries) / uptime
                            : 0.0)
      .Key("latency_ms").BeginObject()
      .Key("count").Value(latency_.count())
      .Key("p50").Value(latency_.PercentileMs(0.50))
      .Key("p90").Value(latency_.PercentileMs(0.90))
      .Key("p99").Value(latency_.PercentileMs(0.99))
      .EndObject()
      .Key("shards").BeginObject()
      .Key("configured").Value(static_cast<uint64_t>(engine.num_shards()))
      .Key("active").Value(static_cast<uint64_t>(engine.active_shards()))
      .EndObject()
      // max_inflight: -1 encodes "unlimited" (SIZE_MAX is not a JSON-safe
      // integer).
      .Key("admission").BeginObject()
      .Key("max_inflight").Value(
          admission_.unlimited()
              ? int64_t{-1}
              : static_cast<int64_t>(admission_.options().max_inflight))
      .Key("inflight").Value(static_cast<uint64_t>(admission_.inflight()))
      .Key("admitted").Value(admission_.admitted())
      .Key("shed").Value(admission_.shed())
      .EndObject()
      .Key("cache").BeginObject()
      .Key("enabled").Value(cache_.enabled())
      .Key("entries").Value(static_cast<uint64_t>(cache_.size()))
      .Key("hits").Value(cache_hits)
      .Key("misses").Value(cache_.misses())
      .Key("evictions").Value(cache_.evictions())
      .Key("hit_rate").Value(cache_lookups > 0
                                 ? static_cast<double>(cache_hits) /
                                       static_cast<double>(cache_lookups)
                                 : 0.0)
      .EndObject()
      .Key("autotune").BeginObject()
      .Key("enabled").Value(tuner_ != nullptr && tuner_->enabled())
      .Key("budget_ms").Value(options_.latency_budget_ms)
      .Key("nprobe").Value(static_cast<uint64_t>(
          tuner_ != nullptr ? tuner_->nprobe() : 0))
      .Key("adjustments").Value(tuner_ != nullptr ? tuner_->adjustments()
                                                  : uint64_t{0})
      .EndObject()
      .EndObject();
  return HttpResponse::Json(200, w.str());
}

HttpResponse MatchService::HandleReload(const HttpRequest& request) {
  std::string path;
  if (!util::Trim(request.body).empty()) {
    auto parsed = util::JsonParse(request.body);
    if (!parsed.ok() || !parsed->is_object()) {
      return ErrorResponse(400, "reload body must be a JSON object");
    }
    if (const util::JsonValue* p = parsed->Find("snapshot"); p != nullptr) {
      if (!p->is_string()) {
        return ErrorResponse(400, "'snapshot' must be a path string");
      }
      path = p->string_value();
    }
  }
  const std::shared_ptr<const EngineState> before = state();
  auto fresh = Reload(path);
  if (!fresh.ok()) {
    // The old snapshot keeps serving; the caller learns why the new one
    // was rejected.
    errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(fresh.status());
  }
  util::JsonWriter w;
  w.BeginObject()
      .Key("status").Value("ok")
      .Key("snapshot_version").Value((*fresh)->version)
      .Key("previous_version").Value(before == nullptr ? uint64_t{0}
                                                       : before->version)
      .Key("snapshot_path").Value((*fresh)->snapshot_path)
      .Key("scenario").Value((*fresh)->engine->meta().scenario)
      .Key("load_seconds").Value((*fresh)->load_seconds)
      .EndObject();
  return HttpResponse::Json(200, w.str());
}

}  // namespace http
}  // namespace serve
}  // namespace tdmatch
