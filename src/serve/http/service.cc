#include "serve/http/service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "serve/mmap_snapshot.h"
#include "serve/snapshot.h"
#include "util/json.h"
#include "util/simd/kernels.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tdmatch {
namespace serve {
namespace http {

namespace {

int StatusToHttp(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kInvalidArgument: return 400;
    case util::StatusCode::kNotFound: return 404;
    case util::StatusCode::kIOError: return 500;
    default: return 500;
  }
}

HttpResponse ErrorResponse(int http_status, const std::string& message) {
  util::JsonWriter w;
  w.BeginObject().Key("error").Value(message).EndObject();
  return HttpResponse::Json(http_status, w.str());
}

HttpResponse ErrorResponse(const util::Status& status) {
  return ErrorResponse(StatusToHttp(status), status.ToString());
}

/// `q:3` / `c:7` → the snapshot's metadata-doc labels, using the prefixes
/// recorded in the snapshot meta (the same shorthand the REPL speaks).
/// Anything else passes through untouched.
std::string ResolveLabel(const std::string& raw, const SnapshotMeta& meta) {
  if (raw.size() < 3 || (raw[0] != 'q' && raw[0] != 'c') || raw[1] != ':') {
    return raw;
  }
  for (size_t i = 2; i < raw.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(raw[i])) == 0) return raw;
  }
  std::string prefix =
      meta.Find(raw[0] == 'q' ? "query_prefix" : "candidate_prefix");
  if (prefix.empty()) prefix = raw[0] == 'q' ? "__D0:" : "__D1:";
  return prefix + raw.substr(2) + "__";
}

void AppendMatches(const std::vector<ScoredMatch>& matches,
                   util::JsonWriter* w) {
  w->Key("matches").BeginArray();
  for (const auto& m : matches) {
    w->BeginObject()
        .Key("label").Value(m.label)
        .Key("candidate").Value(static_cast<int64_t>(m.candidate))
        .Key("score").Value(m.score)
        .EndObject();
  }
  w->EndArray();
}

std::string CompilerId() {
#if defined(__clang__)
  return util::StrFormat("clang-%d.%d.%d", __clang_major__, __clang_minor__,
                         __clang_patchlevel__);
#elif defined(__GNUC__)
  return util::StrFormat("gcc-%d.%d.%d", __GNUC__, __GNUC_MINOR__,
                         __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// MatchService
// ---------------------------------------------------------------------------

const char* const MatchService::kStageNames[MatchService::kStages] = {
    "parse", "cache", "admission", "scatter", "merge", "serialize"};

MatchService::MatchService(ServiceOptions options)
    : options_(std::move(options)),
      start_time_(std::chrono::steady_clock::now()),
      sampler_(options_.trace_sample),
      admission_(AdmissionOptions{options_.max_inflight, 1, 30}),
      cache_(ResultCacheOptions{options_.cache_entries, 8}) {
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    owned_registry_ = std::make_unique<util::obs::Registry>();
    registry_ = owned_registry_.get();
  }
  logger_ = options_.logger != nullptr ? options_.logger
                                       : &util::obs::JsonLogger::Global();

  // Owned instruments: the hot path bumps these directly (one relaxed
  // atomic per event); /v1/stats and /v1/metrics read them back.
  queries_ = registry_->GetCounter("tdmatch_queries_total",
                                   "Queries answered (batch items count "
                                   "individually; includes cache hits)");
  errors_ = registry_->GetCounter("tdmatch_query_errors_total",
                                  "Requests or batch items rejected or "
                                  "failed");
  reloads_ = registry_->GetCounter("tdmatch_reloads_total",
                                   "Successful snapshot hot reloads");
  traces_ = registry_->GetCounter("tdmatch_traces_total",
                                  "Requests that carried a span trace");
  slow_queries_ = registry_->GetCounter(
      "tdmatch_slow_queries_total",
      "Traced requests slower than --slow-query-ms");
  latency_ = registry_->GetHistogram(
      "tdmatch_request_latency_ms", "End-to-end /v1/query latency (ms)",
      util::obs::Histogram::LatencyBoundsMs());
  for (size_t i = 0; i < kStages; ++i) {
    stage_latency_[i] = registry_->GetHistogram(
        "tdmatch_request_stage_latency_ms",
        "Per-stage latency of traced /v1/query requests (ms)",
        util::obs::Histogram::LatencyBoundsMs(),
        {{"stage", kStageNames[i]}});
  }

  // Components that keep their own counters (admission, cache, tuner,
  // shards) publish through render-time callbacks: the registry is the
  // single exposition surface without double-counting state.
  using util::obs::MetricType;
  registry_->RegisterCallback(
      MetricType::kCounter, "tdmatch_admission_admitted_total",
      "Queries admitted past the in-flight budget check", {},
      [this] { return static_cast<double>(admission_.admitted()); });
  registry_->RegisterCallback(
      MetricType::kCounter, "tdmatch_admission_shed_total",
      "Queries shed with 429 at the admission gate", {},
      [this] { return static_cast<double>(admission_.shed()); });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_admission_inflight",
      "Queries currently inside the admission window", {},
      [this] { return static_cast<double>(admission_.inflight()); });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_admission_max_inflight",
      "Admission budget (-1 = unlimited)", {}, [this] {
        return admission_.unlimited()
                   ? -1.0
                   : static_cast<double>(admission_.options().max_inflight);
      });
  registry_->RegisterCallback(
      MetricType::kCounter, "tdmatch_cache_hits_total",
      "Result-cache hits", {},
      [this] { return static_cast<double>(cache_.hits()); });
  registry_->RegisterCallback(
      MetricType::kCounter, "tdmatch_cache_misses_total",
      "Result-cache misses", {},
      [this] { return static_cast<double>(cache_.misses()); });
  registry_->RegisterCallback(
      MetricType::kCounter, "tdmatch_cache_evictions_total",
      "Result-cache LRU evictions", {},
      [this] { return static_cast<double>(cache_.evictions()); });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_cache_entries",
      "Resident result-cache entries", {},
      [this] { return static_cast<double>(cache_.size()); });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_autotune_nprobe",
      "Current auto-tuned IVF nprobe (0 = tuner off)", {}, [this] {
        return tuner_ != nullptr ? static_cast<double>(tuner_->nprobe())
                                 : 0.0;
      });
  registry_->RegisterCallback(
      MetricType::kCounter, "tdmatch_autotune_adjustments_total",
      "AIMD nprobe adjustments made by the latency-budget tuner", {},
      [this] {
        return tuner_ != nullptr ? static_cast<double>(tuner_->adjustments())
                                 : 0.0;
      });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_shards_configured",
      "Configured scatter-gather shard count", {}, [this] {
        const auto s = state();
        return s != nullptr ? static_cast<double>(s->engine->num_shards())
                            : 0.0;
      });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_shards_active",
      "Shards that own candidates", {}, [this] {
        const auto s = state();
        return s != nullptr ? static_cast<double>(s->engine->active_shards())
                            : 0.0;
      });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_snapshot_version",
      "Serving epoch of the loaded snapshot", {}, [this] {
        const auto s = state();
        return s != nullptr ? static_cast<double>(s->version) : 0.0;
      });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_snapshot_load_seconds",
      "Wall seconds the current snapshot took to load + index", {},
      [this] {
        const auto s = state();
        return s != nullptr ? s->load_seconds : 0.0;
      });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_uptime_seconds",
      "Seconds since the service constructed", {}, [this] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_time_)
            .count();
      });

  // Continuous observability: metric-history rings over this registry
  // and the burn-rate SLO tracker. Both exist unconditionally (the
  // endpoints always answer); the background history sampler starts at
  // LoadInitial only when an interval is configured.
  util::obs::TimeSeriesOptions history_opts;
  history_opts.interval_seconds =
      options_.history_interval_s > 0 ? options_.history_interval_s : 1.0;
  history_opts.capacity = options_.history_points;
  history_opts.name_prefix = "tdmatch_";
  history_ =
      std::make_unique<util::obs::TimeSeriesStore>(registry_, history_opts);
  history_sampler_ =
      std::make_unique<util::obs::TimeSeriesSampler>(history_.get());

  util::obs::SloOptions slo_opts;
  slo_opts.availability_target = options_.slo_availability_target;
  slo_opts.latency_target = options_.slo_latency_target;
  slo_opts.latency_budget_ms = options_.latency_budget_ms;
  slo_opts.fast = options_.slo_fast;
  slo_opts.slow = options_.slo_slow;
  // Resolution fine enough that the fast-short window spans several
  // buckets (tests shrink the window to fractions of a second).
  slo_opts.bucket_seconds =
      std::min(5.0, std::max(0.05, options_.slo_fast.short_seconds / 4.0));
  slo_ = std::make_unique<util::obs::SloTracker>(slo_opts);

  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_history_series",
      "Metric series retained in the history rings", {},
      [this] { return static_cast<double>(history_->series_count()); });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_history_memory_bytes",
      "Resident bytes of the metric-history rings", {},
      [this] { return static_cast<double>(history_->MemoryBytes()); });
  registry_->RegisterCallback(
      MetricType::kGauge, "tdmatch_slo_degraded",
      "1 while any SLO fast-burn pair is firing", {},
      [this] { return slo_->Degraded(NowSeconds()) ? 1.0 : 0.0; });
}

MatchService::~MatchService() {
  if (history_sampler_ != nullptr) history_sampler_->Stop();
}

double MatchService::NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

util::Result<std::shared_ptr<const EngineState>> MatchService::BuildState(
    const std::string& path, uint64_t version) const {
  util::StopWatch watch;
  auto state = std::make_shared<EngineState>();
  state->version = version;
  state->snapshot_path = path;
  state->mmap = options_.use_mmap;
  ShardedEngineOptions sharded;
  sharded.shards = options_.shards;
  sharded.engine = options_.engine;
  if (options_.use_mmap) {
    TDM_ASSIGN_OR_RETURN(std::shared_ptr<const SnapshotView> view,
                         SnapshotView::Open(path));
    std::string prefix = view->meta().Find("candidate_prefix");
    if (prefix.empty()) prefix = "__D1:";
    state->snapshot_format = view->sections().empty()
                                 ? SnapshotIo::kVersion
                                 : SnapshotIo::kVersionSections;
    TDM_ASSIGN_OR_RETURN(
        ShardedQueryEngine engine,
        ShardedQueryEngine::BuildFromView(std::move(view), prefix, sharded));
    state->engine = std::make_shared<ShardedQueryEngine>(std::move(engine));
  } else {
    TDM_ASSIGN_OR_RETURN(Snapshot snap, SnapshotIo::Read(path));
    std::string prefix = snap.meta.Find("candidate_prefix");
    if (prefix.empty()) prefix = "__D1:";
    state->snapshot_format = snap.sections.empty()
                                 ? SnapshotIo::kVersion
                                 : SnapshotIo::kVersionSections;
    TDM_ASSIGN_OR_RETURN(
        ShardedQueryEngine engine,
        ShardedQueryEngine::Build(std::move(snap), prefix, sharded));
    state->engine = std::make_shared<ShardedQueryEngine>(std::move(engine));
  }
  state->load_seconds = watch.ElapsedSeconds();
  return std::shared_ptr<const EngineState>(std::move(state));
}

void MatchService::PublishStateMetrics(const EngineState& state) {
  // build_info: the conventional value-1 gauge whose labels carry the
  // identity — compiler, runtime SIMD dispatch decision, snapshot format,
  // shard count. Re-registered per epoch (the format can change across
  // reloads); identity is otherwise process-constant.
  registry_->ClearCallbacks("tdmatch_build_info");
  util::obs::LabelSet info = {
      {"compiler", CompilerId()},
      {"simd", simd::IsaName(simd::ActiveIsa())},
      {"forced_scalar", simd::ForcedScalarByEnv() ? "1" : "0"},
      {"snapshot_format", std::to_string(state.snapshot_format)},
      {"shards", std::to_string(options_.shards)},
  };
  registry_->RegisterCallback(util::obs::MetricType::kGauge,
                              "tdmatch_build_info",
                              "Build/runtime identity (always 1)", info,
                              [] { return 1.0; });

  // Offline pipeline phase timers travel inside the snapshot meta
  // (phase_<name>_seconds, written by build-snapshot); republish them so
  // the serving scrape covers the offline half too.
  registry_->ClearCallbacks("tdmatch_snapshot_phase_seconds");
  for (const auto& [key, value] : state.engine->meta().extra) {
    if (!util::StartsWith(key, "phase_") ||
        !util::EndsWith(key, "_seconds")) {
      continue;
    }
    const std::string phase =
        key.substr(6, key.size() - 6 - std::strlen("_seconds"));
    const double seconds = std::strtod(value.c_str(), nullptr);
    registry_->RegisterCallback(
        util::obs::MetricType::kGauge, "tdmatch_snapshot_phase_seconds",
        "Offline pipeline phase timings recorded at snapshot build",
        {{"phase", phase}}, [seconds] { return seconds; });
  }
}

util::Status MatchService::LoadInitial(const std::string& snapshot_path) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  TDM_ASSIGN_OR_RETURN(std::shared_ptr<const EngineState> state,
                       BuildState(snapshot_path, 1));
  // The tuner's ceiling is the loaded engine's largest shard nlist —
  // probing more cells than exist buys nothing. Created once here (before
  // serving starts); reloads clamp at use instead of resetting the
  // tuner's learned position.
  NprobeTunerOptions tuning;
  tuning.budget_ms = options_.latency_budget_ms;
  tuning.initial_nprobe = options_.engine.ivf.nprobe;
  tuning.max_nprobe =
      state->engine->has_ivf() ? state->engine->max_nprobe() : 1;
  tuner_ = std::make_unique<NprobeTuner>(tuning);
  PublishStateMetrics(*state);
  std::atomic_store(&state_, std::move(state));
  if (options_.history_interval_s > 0) history_sampler_->Start();
  return util::Status::OK();
}

std::shared_ptr<const EngineState> MatchService::state() const {
  return std::atomic_load(&state_);
}

util::Result<std::shared_ptr<const EngineState>> MatchService::Reload(
    const std::string& path) {
  // One reload at a time; queries never wait on this lock — they read the
  // published epoch pointer and carry on against it.
  std::lock_guard<std::mutex> lock(reload_mu_);
  const std::shared_ptr<const EngineState> current = state();
  if (current == nullptr) {
    return util::Status::Internal("service has no initial snapshot");
  }
  const std::string target = path.empty() ? current->snapshot_path : path;
  TDM_ASSIGN_OR_RETURN(std::shared_ptr<const EngineState> fresh,
                       BuildState(target, current->version + 1));
  // Publish. Readers that already pinned `current` finish on it; the old
  // engine (and its mmap) is destroyed when the last pin drops.
  PublishStateMetrics(*fresh);
  std::atomic_store(&state_, fresh);
  reloads_->Inc();
  // Cached responses are stamped with the version they answered for (Get
  // refuses a stale stamp on its own); clearing on swap also frees the
  // dead epoch's bodies immediately.
  cache_.Clear();
  return fresh;
}

void MatchService::Register(HttpServer* server) {
  server->Handle("POST", "/v1/query",
                 [this](const HttpRequest& r) { return HandleQuery(r); });
  server->Handle("GET", "/v1/healthz",
                 [this](const HttpRequest& r) { return HandleHealth(r); });
  server->Handle("GET", "/v1/stats",
                 [this](const HttpRequest& r) { return HandleStats(r); });
  server->Handle("GET", "/v1/metrics",
                 [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Handle("GET", "/v1/metrics/history",
                 [this](const HttpRequest& r) { return HandleHistory(r); });
  server->Handle("GET", "/v1/slo",
                 [this](const HttpRequest& r) { return HandleSlo(r); });
  if (options_.allow_profile) {
    server->Handle("GET", "/v1/debug/profile", [this](const HttpRequest& r) {
      return HandleProfile(r);
    });
  }
  if (options_.allow_reload) {
    server->Handle("POST", "/v1/reload",
                   [this](const HttpRequest& r) { return HandleReload(r); });
  }
}

HttpResponse MatchService::ShedResponse() {
  // Retry-After scales with the backlog at a typical (p50) per-query
  // cost; the header is always an integer in [1, 30] seconds.
  const int retry_s =
      admission_.RetryAfterSeconds(latency_->Percentile(0.5));
  util::JsonWriter w;
  w.BeginObject()
      .Key("error").Value(util::StrFormat(
          "overloaded: %zu queries in flight at capacity %zu",
          admission_.inflight(), admission_.options().max_inflight))
      .Key("retry_after_seconds").Value(static_cast<int64_t>(retry_s))
      .EndObject();
  HttpResponse response = HttpResponse::Json(429, w.str());
  response.headers.emplace_back("Retry-After", std::to_string(retry_s));
  return response;
}

HttpResponse MatchService::HandleQuery(const HttpRequest& request) {
  // SLO accounting wraps the whole request: availability counts 5xx
  // against the budget (4xx is the client's fault, 429 is protection
  // working), latency counts end-to-end wall time against the configured
  // budget. Shed and cache-hit requests count too — the user saw them.
  util::StopWatch watch;
  HttpResponse response = HandleQueryDispatch(request);
  slo_->Record(NowSeconds(), response.status < 500,
               options_.latency_budget_ms <= 0 ||
                   watch.ElapsedMillis() <= options_.latency_budget_ms);
  return response;
}

HttpResponse MatchService::HandleQueryDispatch(const HttpRequest& request) {
  // Trace decision up front: one sampler branch for the untraced fast
  // path. slow_query_ms arms tracing on every request (slowness is only
  // known after the fact), but emits a line solely for slow ones.
  const bool sampled = sampler_.ShouldSample();
  const bool traced = sampled || options_.slow_query_ms > 0.0;
  const std::string& client_id = request.Header("x-request-id");
  if (!traced) {
    HttpResponse response = HandleQueryTraced(request, nullptr);
    if (!client_id.empty()) {
      response.headers.emplace_back("X-Request-Id", client_id);
    }
    return response;
  }
  util::obs::Trace trace(client_id.empty() ? util::obs::GenerateTraceId()
                                           : client_id);
  const std::shared_ptr<const EngineState> pinned = state();
  HttpResponse response = HandleQueryTraced(request, &trace);
  FinishRequestTrace(&trace, sampled, response.status,
                     pinned != nullptr ? pinned->version : 0);
  response.headers.emplace_back("X-Request-Id", trace.id());
  return response;
}

void MatchService::FinishRequestTrace(util::obs::Trace* trace, bool sampled,
                                      int status,
                                      uint64_t snapshot_version) {
  const double total_ms = trace->Finish();
  traces_->Inc();
  for (const auto& span : trace->spans()) {
    for (size_t i = 0; i < kStages; ++i) {
      if (std::strcmp(span.name, kStageNames[i]) == 0) {
        stage_latency_[i]->Observe(span.ms);
        break;
      }
    }
  }
  const bool slow =
      options_.slow_query_ms > 0.0 && total_ms >= options_.slow_query_ms;
  if (slow) slow_queries_->Inc();
  // One JSONL line per sampled trace or slow query; armed-but-fast
  // requests fed the histograms above and stay silent.
  if (!sampled && !slow) return;
  auto ev = logger_->Log(util::obs::LogLevel::kInfo, "trace");
  if (!ev.active()) return;
  ev.Str("trace_id", trace->id())
      .Str("endpoint", "/v1/query")
      .Int("status", status)
      .Num("total_ms", total_ms)
      .Bool("slow", slow)
      .Bool("sampled", sampled)
      .Uint("snapshot_version", snapshot_version);
  util::JsonWriter& w = ev.writer();
  w.Key("spans").BeginArray();
  for (const auto& span : trace->spans()) {
    w.BeginObject()
        .Key("name").Value(span.name)
        .Key("start_ms").Value(span.start_ms)
        .Key("ms").Value(span.ms)
        .Key("depth").Value(static_cast<int64_t>(span.depth))
        .EndObject();
  }
  w.EndArray();
}

HttpResponse MatchService::HandleQueryTraced(const HttpRequest& request,
                                             util::obs::Trace* trace) {
  util::StopWatch watch;
  const std::shared_ptr<const EngineState> state = this->state();
  if (state == nullptr) {
    return ErrorResponse(503, "no snapshot loaded");
  }
  const ShardedQueryEngine& engine = *state->engine;

  // --- parse + validate ----------------------------------------------------
  util::obs::Trace::Span parse_span(trace, "parse");
  auto parsed = util::JsonParse(request.body);
  if (!parsed.ok()) {
    errors_->Inc();
    return ErrorResponse(400, "bad request body: " +
                                  parsed.status().message());
  }
  const util::JsonValue& root = *parsed;
  if (!root.is_object()) {
    errors_->Inc();
    return ErrorResponse(400, "request body must be a JSON object");
  }

  // --- common knobs -------------------------------------------------------
  size_t k = 0;
  if (const util::JsonValue* kv = root.Find("k"); kv != nullptr) {
    const double kd = kv->number_value();
    if (!kv->is_number() || kd < 0 || kd > 1e6 ||
        kd != std::floor(kd)) {
      errors_->Inc();
      return ErrorResponse(400, "'k' must be an integer in [0, 1e6]");
    }
    k = static_cast<size_t>(kd);
  }
  SearchMode mode = SearchMode::kApprox;
  if (const util::JsonValue* mv = root.Find("mode"); mv != nullptr) {
    if (!mv->is_string() || (mv->string_value() != "approx" &&
                             mv->string_value() != "exact")) {
      errors_->Inc();
      return ErrorResponse(400, "'mode' must be \"approx\" or \"exact\"");
    }
    if (mv->string_value() == "exact") mode = SearchMode::kExact;
  }

  const util::JsonValue* label = root.Find("label");
  const util::JsonValue* labels = root.Find("labels");
  const util::JsonValue* vector = root.Find("vector");
  const util::JsonValue* allowed = root.Find("allowed");
  const int selectors = (label != nullptr) + (labels != nullptr) +
                        (vector != nullptr);
  if (selectors != 1) {
    errors_->Inc();
    return ErrorResponse(400, "provide exactly one of 'label', 'labels', "
                              "'vector'");
  }
  if (allowed != nullptr && label == nullptr) {
    errors_->Inc();
    return ErrorResponse(400, "'allowed' requires a single 'label' query");
  }

  // --- debug delay (only honored with allow_debug_delay) -----------------
  double delay_ms = 0.0;
  if (const util::JsonValue* dv = root.Find("delay_ms");
      dv != nullptr && options_.allow_debug_delay) {
    if (!dv->is_number() || dv->number_value() < 0.0 ||
        dv->number_value() > 10000.0) {
      errors_->Inc();
      return ErrorResponse(400, "'delay_ms' must be a number in [0, 10000]");
    }
    delay_ms = dv->number_value();
  }

  // --- per-query nprobe from the latency-budget auto-tuner ----------------
  size_t nprobe = 0;
  if (tuner_ != nullptr && tuner_->enabled() &&
      mode == SearchMode::kApprox && engine.has_ivf()) {
    nprobe = std::max<size_t>(
        1, std::min(tuner_->nprobe(), engine.max_nprobe()));
  }
  parse_span.Close();

  // --- result cache (single-label queries; the hot-query shape) -----------
  // A hit is served before admission: it costs one striped-map lookup, no
  // engine work, so shedding it would protect nothing.
  std::string cache_key;
  if (cache_.enabled() && label != nullptr && label->is_string() &&
      allowed == nullptr) {
    util::obs::Trace::Span cache_span(trace, "cache");
    cache_key = util::StrFormat(
        "%s|k=%zu|m=%c|np=%zu",
        ResolveLabel(label->string_value(), engine.meta()).c_str(), k,
        mode == SearchMode::kExact ? 'e' : 'a', nprobe);
    std::string cached;
    if (cache_.Get(cache_key, state->version, &cached)) {
      queries_->Inc();
      latency_->Observe(watch.ElapsedMillis());
      return HttpResponse::Json(200, std::move(cached));
    }
  }

  // --- admission: shed instead of queueing past the in-flight budget ------
  util::obs::Trace::Span admission_span(trace, "admission");
  AdmissionController::Ticket ticket(&admission_);
  if (!ticket.admitted()) {
    return ShedResponse();
  }
  admission_span.Close();
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }

  // Scatter/merge stage timings come from inside the engine (pool fan-out
  // vs. global merge); only collected when this request is traced.
  ShardedQueryEngine::QueryTiming timing;
  ShardedQueryEngine::QueryTiming* timing_out =
      trace != nullptr ? &timing : nullptr;

  util::JsonWriter w;
  w.BeginObject()
      .Key("snapshot_version").Value(state->version)
      .Key("scenario").Value(engine.meta().scenario);

  if (labels != nullptr) {
    // --- batch ------------------------------------------------------------
    if (!labels->is_array()) {
      errors_->Inc();
      return ErrorResponse(400, "'labels' must be an array of strings");
    }
    if (labels->items().size() > options_.max_batch) {
      errors_->Inc();
      return ErrorResponse(
          400, util::StrFormat("batch of %zu exceeds the %zu query limit",
                               labels->items().size(), options_.max_batch));
    }
    std::vector<std::string> names;
    names.reserve(labels->items().size());
    for (const auto& item : labels->items()) {
      if (!item.is_string()) {
        errors_->Inc();
        return ErrorResponse(400, "'labels' must be an array of strings");
      }
      names.push_back(ResolveLabel(item.string_value(), engine.meta()));
    }
    util::obs::Trace::Span scatter_span(trace, "scatter");
    const auto results = engine.QueryBatch(names, k, mode, nprobe);
    scatter_span.Close();
    queries_->Inc(names.size());
    util::obs::Trace::Span serialize_span(trace, "serialize");
    w.Key("results").BeginArray();
    for (size_t i = 0; i < results.size(); ++i) {
      w.BeginObject().Key("label").Value(names[i]);
      if (results[i].ok()) {
        AppendMatches(*results[i], &w);
      } else {
        errors_->Inc();
        w.Key("error").Value(results[i].status().ToString());
      }
      w.EndObject();
    }
    w.EndArray();
  } else if (label != nullptr) {
    // --- single, optionally blocked --------------------------------------
    if (!label->is_string()) {
      errors_->Inc();
      return ErrorResponse(400, "'label' must be a string");
    }
    const std::string name =
        ResolveLabel(label->string_value(), engine.meta());
    util::Result<std::vector<ScoredMatch>> result =
        std::vector<ScoredMatch>{};
    if (allowed != nullptr) {
      if (!allowed->is_array()) {
        errors_->Inc();
        return ErrorResponse(400, "'allowed' must be an array of strings");
      }
      std::vector<std::string> block;
      block.reserve(allowed->items().size());
      for (const auto& item : allowed->items()) {
        if (!item.is_string()) {
          errors_->Inc();
          return ErrorResponse(400,
                               "'allowed' must be an array of strings");
        }
        block.push_back(ResolveLabel(item.string_value(), engine.meta()));
      }
      result = engine.QueryFiltered(name, block, k, timing_out);
    } else {
      result = engine.Query(name, k, mode, nprobe, timing_out);
    }
    if (trace != nullptr) {
      trace->AddSpan("scatter", timing.scatter_ms);
      trace->AddSpan("merge", timing.merge_ms);
    }
    queries_->Inc();
    if (!result.ok()) {
      errors_->Inc();
      return ErrorResponse(result.status());
    }
    util::obs::Trace::Span serialize_span(trace, "serialize");
    w.Key("label").Value(name);
    AppendMatches(*result, &w);
  } else {
    // --- raw vector -------------------------------------------------------
    if (!vector->is_array() || vector->items().empty()) {
      errors_->Inc();
      return ErrorResponse(400, "'vector' must be a non-empty number "
                                "array");
    }
    std::vector<float> q;
    q.reserve(vector->items().size());
    for (const auto& item : vector->items()) {
      if (!item.is_number()) {
        errors_->Inc();
        return ErrorResponse(400, "'vector' must be a non-empty number "
                                  "array");
      }
      q.push_back(static_cast<float>(item.number_value()));
    }
    const auto result = engine.QueryVector(q, k, mode, nprobe, timing_out);
    if (trace != nullptr) {
      trace->AddSpan("scatter", timing.scatter_ms);
      trace->AddSpan("merge", timing.merge_ms);
    }
    queries_->Inc();
    if (!result.ok()) {
      errors_->Inc();
      return ErrorResponse(result.status());
    }
    util::obs::Trace::Span serialize_span(trace, "serialize");
    AppendMatches(*result, &w);
  }

  util::obs::Trace::Span finish_span(trace, "serialize");
  w.EndObject();
  std::string body = w.str();
  finish_span.Close();
  if (!cache_key.empty()) cache_.Put(cache_key, state->version, body);
  latency_->Observe(watch.ElapsedMillis());
  // Feed the tuner after recording: it reacts to the p99 including this
  // query. Cache hits and shed requests never reach here — the tuner only
  // learns from queries the engine actually executed.
  if (tuner_ != nullptr) tuner_->Observe(latency_->Percentile(0.99));
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse MatchService::HandleHealth(const HttpRequest& request) {
  const std::shared_ptr<const EngineState> state = this->state();
  if (state == nullptr) {
    return ErrorResponse(503, "no snapshot loaded");
  }
  // Degraded is report-first: the process is alive and serving, it is
  // just burning error budget too fast — so the default answer stays 200
  // (load balancers must not evict a struggling-but-working replica).
  // `?strict=1` opts a prober into 503-on-degraded.
  const double now = NowSeconds();
  std::vector<std::string> burning;
  for (const auto& objective : slo_->Evaluate(now)) {
    if (objective.fast_burning) burning.push_back(objective.name);
  }
  const bool degraded = !burning.empty();
  util::JsonWriter w;
  w.BeginObject()
      .Key("status").Value(degraded ? "degraded" : "ok")
      .Key("snapshot_version").Value(state->version);
  if (degraded) {
    w.Key("burning_objectives").BeginArray();
    for (const auto& name : burning) w.Value(name);
    w.EndArray();
  }
  w.EndObject();
  const bool strict = QueryParam(request.query, "strict") == "1";
  return HttpResponse::Json(degraded && strict ? 503 : 200, w.str());
}

HttpResponse MatchService::HandleHistory(const HttpRequest& request) {
  double window_s = 300.0;
  const std::string window = QueryParam(request.query, "window");
  if (!window.empty()) {
    char* end = nullptr;
    window_s = std::strtod(window.c_str(), &end);
    if (end == window.c_str() || window_s <= 0 || !std::isfinite(window_s)) {
      return ErrorResponse(400, "'window' must be a positive number of "
                                "seconds");
    }
  }
  const std::string prefix = QueryParam(request.query, "series");
  // Points are heavy (every series × every sample); opt in explicitly.
  const bool with_points = QueryParam(request.query, "points") == "1";
  const double now = std::chrono::duration<double>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  const auto series = history_->Window(window_s, now, prefix);
  util::JsonWriter w;
  w.Reserve(4096);
  w.BeginObject()
      .Key("now").Value(now)
      .Key("window_seconds").Value(window_s)
      .Key("interval_seconds").Value(history_->options().interval_seconds)
      .Key("retention_seconds")
      .Value(history_->options().interval_seconds *
             static_cast<double>(history_->options().capacity))
      .Key("samples_taken").Value(history_->samples_taken())
      .Key("series").BeginArray();
  for (const auto& s : series) {
    w.BeginObject()
        .Key("name").Value(s.name)
        .Key("labels").Value(s.labels)
        .Key("type").Value(s.type == util::obs::MetricType::kCounter
                               ? "counter"
                               : "gauge")
        .Key("points_count").Value(static_cast<uint64_t>(s.points.size()))
        .Key("first_ts").Value(s.points.front().ts)
        .Key("last_ts").Value(s.points.back().ts)
        .Key("last").Value(s.last)
        .Key("delta").Value(s.delta)
        .Key("rate_per_sec").Value(s.rate_per_sec);
    if (with_points) {
      w.Key("points").BeginArray();
      for (const auto& p : s.points) {
        w.BeginArray().Value(p.ts).Value(p.value).EndArray();
      }
      w.EndArray();
    }
    w.EndObject();
  }
  w.EndArray().EndObject();
  return HttpResponse::Json(200, w.str());
}

namespace {

void AppendBurn(const char* role, const util::obs::SloTracker::WindowBurn& b,
                double threshold, util::JsonWriter* w) {
  w->BeginObject()
      .Key("role").Value(role)
      .Key("window_seconds").Value(b.window_seconds)
      .Key("good").Value(b.good)
      .Key("bad").Value(b.bad)
      .Key("error_rate").Value(b.error_rate)
      .Key("burn_rate").Value(b.burn_rate)
      .Key("threshold").Value(threshold)
      .EndObject();
}

}  // namespace

HttpResponse MatchService::HandleSlo(const HttpRequest&) {
  const double now = NowSeconds();
  const auto objectives = slo_->Evaluate(now);
  const auto& slo_opts = slo_->options();
  bool degraded = false;
  for (const auto& o : objectives) degraded |= o.fast_burning;
  util::JsonWriter w;
  w.BeginObject()
      .Key("degraded").Value(degraded)
      .Key("latency_budget_ms").Value(slo_opts.latency_budget_ms)
      .Key("objectives").BeginArray();
  for (const auto& o : objectives) {
    w.BeginObject()
        .Key("name").Value(o.name)
        .Key("target").Value(o.target)
        .Key("fast_burning").Value(o.fast_burning)
        .Key("slow_burning").Value(o.slow_burning)
        .Key("error_budget_remaining").Value(o.budget_remaining)
        .Key("windows").BeginArray();
    AppendBurn("fast_short", o.fast_short, slo_opts.fast.threshold, &w);
    AppendBurn("fast_long", o.fast_long, slo_opts.fast.threshold, &w);
    AppendBurn("slow_short", o.slow_short, slo_opts.slow.threshold, &w);
    AppendBurn("slow_long", o.slow_long, slo_opts.slow.threshold, &w);
    w.EndArray().EndObject();
  }
  w.EndArray().EndObject();
  return HttpResponse::Json(200, w.str());
}

HttpResponse MatchService::HandleProfile(const HttpRequest& request) {
  if (!util::obs::CpuProfiler::Supported()) {
    return ErrorResponse(501, "CPU profiling is not supported on this "
                              "platform");
  }
  double seconds = 1.0;
  const std::string seconds_param = QueryParam(request.query, "seconds");
  if (!seconds_param.empty()) {
    char* end = nullptr;
    seconds = std::strtod(seconds_param.c_str(), &end);
    if (end == seconds_param.c_str() || seconds <= 0 ||
        !std::isfinite(seconds)) {
      return ErrorResponse(400, "'seconds' must be a positive number");
    }
  }
  seconds = std::min(seconds, options_.profile_max_seconds);
  int hz = options_.profile_hz;
  const std::string hz_param = QueryParam(request.query, "hz");
  if (!hz_param.empty()) {
    hz = std::atoi(hz_param.c_str());
    if (hz < 1 || hz > 1000) {
      return ErrorResponse(400, "'hz' must be an integer in [1, 1000]");
    }
  }
  const std::string format = QueryParam(request.query, "format");
  if (!format.empty() && format != "folded" && format != "json") {
    return ErrorResponse(400, "'format' must be \"folded\" or \"json\"");
  }
  // The capture blocks this worker for the window — deliberate: the
  // profile IS the response body, and the blocked worker is one of many.
  auto profile =
      util::obs::CpuProfiler::Global().ProfileFor(seconds, hz);
  if (!profile.ok()) {
    if (profile.status().IsAlreadyExists()) {
      return ErrorResponse(409, "another profile capture is running");
    }
    return ErrorResponse(profile.status());
  }
  if (format == "json") {
    size_t top_n = 20;
    const std::string top = QueryParam(request.query, "top");
    if (!top.empty()) {
      const int parsed_top = std::atoi(top.c_str());
      if (parsed_top > 0) top_n = static_cast<size_t>(parsed_top);
    }
    return HttpResponse::Json(200, profile->ToJson(top_n));
  }
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; charset=utf-8";
  response.body = profile->FoldedText();
  return response;
}

HttpResponse MatchService::HandleMetrics(const HttpRequest&) {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = registry_->RenderPrometheus();
  return response;
}

HttpResponse MatchService::HandleStats(const HttpRequest&) {
  const std::shared_ptr<const EngineState> state = this->state();
  if (state == nullptr) {
    return ErrorResponse(503, "no snapshot loaded");
  }
  const ShardedQueryEngine& engine = *state->engine;
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const uint64_t queries = queries_->Value();
  const uint64_t cache_hits = cache_.hits();
  const uint64_t cache_lookups = cache_hits + cache_.misses();
  util::JsonWriter w;
  w.BeginObject()
      .Key("snapshot_version").Value(state->version)
      .Key("snapshot_path").Value(state->snapshot_path)
      .Key("scenario").Value(engine.meta().scenario)
      .Key("snapshot_loader").Value(state->mmap ? "mmap" : "copy")
      .Key("load_seconds").Value(state->load_seconds)
      .Key("candidates").Value(static_cast<uint64_t>(
          engine.num_candidates()))
      .Key("dim").Value(static_cast<int64_t>(engine.dim()))
      .Key("index").Value(engine.has_ivf() ? "ivf+exact" : "exact")
      .Key("uptime_seconds").Value(uptime)
      .Key("queries").Value(queries)
      .Key("errors").Value(errors_->Value())
      .Key("reloads").Value(reloads_->Value())
      .Key("qps").Value(uptime > 0
                            ? static_cast<double>(queries) / uptime
                            : 0.0)
      .Key("latency_ms").BeginObject()
      .Key("count").Value(latency_->count())
      .Key("p50").Value(latency_->Percentile(0.50))
      .Key("p90").Value(latency_->Percentile(0.90))
      .Key("p99").Value(latency_->Percentile(0.99))
      .EndObject()
      .Key("shards").BeginObject()
      .Key("configured").Value(static_cast<uint64_t>(engine.num_shards()))
      .Key("active").Value(static_cast<uint64_t>(engine.active_shards()))
      .EndObject()
      // max_inflight: -1 encodes "unlimited" (SIZE_MAX is not a JSON-safe
      // integer).
      .Key("admission").BeginObject()
      .Key("max_inflight").Value(
          admission_.unlimited()
              ? int64_t{-1}
              : static_cast<int64_t>(admission_.options().max_inflight))
      .Key("inflight").Value(static_cast<uint64_t>(admission_.inflight()))
      .Key("admitted").Value(admission_.admitted())
      .Key("shed").Value(admission_.shed())
      .EndObject()
      .Key("cache").BeginObject()
      .Key("enabled").Value(cache_.enabled())
      .Key("entries").Value(static_cast<uint64_t>(cache_.size()))
      .Key("hits").Value(cache_hits)
      .Key("misses").Value(cache_.misses())
      .Key("evictions").Value(cache_.evictions())
      .Key("hit_rate").Value(cache_lookups > 0
                                 ? static_cast<double>(cache_hits) /
                                       static_cast<double>(cache_lookups)
                                 : 0.0)
      .EndObject()
      .Key("autotune").BeginObject()
      .Key("enabled").Value(tuner_ != nullptr && tuner_->enabled())
      .Key("budget_ms").Value(options_.latency_budget_ms)
      .Key("nprobe").Value(static_cast<uint64_t>(
          tuner_ != nullptr ? tuner_->nprobe() : 0))
      .Key("adjustments").Value(tuner_ != nullptr ? tuner_->adjustments()
                                                  : uint64_t{0})
      .EndObject()
      .Key("tracing").BeginObject()
      .Key("sample").Value(options_.trace_sample)
      .Key("slow_query_ms").Value(options_.slow_query_ms)
      .Key("traced").Value(traces_->Value())
      .Key("slow").Value(slow_queries_->Value())
      .EndObject()
      .Key("build").BeginObject()
      .Key("compiler").Value(CompilerId())
      .Key("simd").Value(simd::IsaName(simd::ActiveIsa()))
      .Key("forced_scalar").Value(simd::ForcedScalarByEnv())
      .Key("snapshot_format").Value(static_cast<uint64_t>(
          state->snapshot_format))
      .Key("shards").Value(static_cast<uint64_t>(options_.shards))
      .EndObject()
      .EndObject();
  return HttpResponse::Json(200, w.str());
}

HttpResponse MatchService::HandleReload(const HttpRequest& request) {
  std::string path;
  if (!util::Trim(request.body).empty()) {
    auto parsed = util::JsonParse(request.body);
    if (!parsed.ok() || !parsed->is_object()) {
      return ErrorResponse(400, "reload body must be a JSON object");
    }
    if (const util::JsonValue* p = parsed->Find("snapshot"); p != nullptr) {
      if (!p->is_string()) {
        return ErrorResponse(400, "'snapshot' must be a path string");
      }
      path = p->string_value();
    }
  }
  const std::shared_ptr<const EngineState> before = state();
  auto fresh = Reload(path);
  if (!fresh.ok()) {
    // The old snapshot keeps serving; the caller learns why the new one
    // was rejected.
    errors_->Inc();
    return ErrorResponse(fresh.status());
  }
  util::JsonWriter w;
  w.BeginObject()
      .Key("status").Value("ok")
      .Key("snapshot_version").Value((*fresh)->version)
      .Key("previous_version").Value(before == nullptr ? uint64_t{0}
                                                       : before->version)
      .Key("snapshot_path").Value((*fresh)->snapshot_path)
      .Key("scenario").Value((*fresh)->engine->meta().scenario)
      .Key("load_seconds").Value((*fresh)->load_seconds)
      .EndObject();
  return HttpResponse::Json(200, w.str());
}

}  // namespace http
}  // namespace serve
}  // namespace tdmatch
