#ifndef TDMATCH_SERVE_HTTP_CLIENT_H_
#define TDMATCH_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/http/http.h"
#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace serve {
namespace http {

/// \brief Tiny blocking HTTP/1.1 client over one persistent connection —
/// enough for the test suite, the serving benchmark, and scripted ops
/// against tdmatch_serve. One request in flight at a time; not
/// thread-safe (give each thread its own client, as the bench does).
///
/// Reuses the keep-alive connection across requests and transparently
/// reconnects once when the server closed it in between (the normal
/// idle-timeout race of connection pooling). The retry only fires when
/// no byte of a response arrived and the connection was reset/EOF'd —
/// never on a timeout — so a non-idempotent request the server may
/// already be executing is never replayed.
class HttpClient {
 public:
  /// Connects to host:port (IPv4 literal or resolvable name).
  /// `timeout_ms` bounds connect, send, and receive individually.
  static util::Result<HttpClient> Connect(const std::string& host,
                                          uint16_t port,
                                          int timeout_ms = 10000);

  HttpClient() = default;
  ~HttpClient();

  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// One round trip. The response is fully buffered before returning.
  /// `extra_headers` ride along verbatim (e.g. an X-Request-Id).
  util::Result<HttpResponse> Request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::string& content_type = "application/json",
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  util::Result<HttpResponse> Get(const std::string& target) {
    return Request("GET", target);
  }
  util::Result<HttpResponse> Post(const std::string& target,
                                  const std::string& body) {
    return Request("POST", target, body);
  }

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  util::Status Reconnect();
  /// One send + fully-buffered receive. `*retryable` comes back true only
  /// when the failure proves the server never read the request (reset or
  /// EOF before any response byte).
  util::Result<HttpResponse> RoundTrip(const std::string& wire,
                                       bool* retryable);

  std::string host_;
  uint16_t port_ = 0;
  int timeout_ms_ = 10000;
  int fd_ = -1;
  /// True once a request succeeded on the current connection — governs
  /// the single stale-connection retry.
  bool used_ = false;
};

}  // namespace http
}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_HTTP_CLIENT_H_
