#ifndef TDMATCH_SERVE_HTTP_HTTP_H_
#define TDMATCH_SERVE_HTTP_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace serve {
namespace http {

/// \brief Dependency-free HTTP/1.1 message types and wire parsing, shared
/// by the server (requests in, responses out) and the blocking client
/// (the reverse). Supports what a JSON API front end needs: Content-Length
/// framed bodies, persistent connections, hard size limits. No chunked
/// transfer encoding, no TLS — this speaks plain HTTP behind whatever
/// terminates the edge.

/// Limits enforced while parsing. Oversized input maps to a specific
/// status code (431 for the header block, 413 for the body) so clients
/// can tell "too big" from "malformed" (400).
struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 4 * 1024 * 1024;
};

struct HttpRequest {
  std::string method;   // uppercase by convention of the sender
  std::string target;   // request target, e.g. "/v1/query?x=1"
  std::string path;     // target without the query string
  std::string query;    // the part after '?', possibly empty
  std::string version;  // "HTTP/1.1"
  /// Header (name, value) pairs in arrival order; names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lower-case), or "".
  const std::string& Header(const std::string& name) const;
  /// True when the connection should stay open after the response
  /// (HTTP/1.1 default keep-alive; "connection: close" opts out).
  bool KeepAlive() const;
};

struct HttpResponse {
  int status = 200;
  /// Extra headers; Content-Length, Content-Type and Connection are
  /// emitted by the serializer.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string content_type = "application/json";
  std::string body;

  const std::string& Header(const std::string& name) const;

  static HttpResponse Json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

/// Reason phrase for the status codes this server emits.
const char* StatusReason(int status);

/// Value of `key` in a query string ("seconds=2&format=json"): the part
/// between `key=` and the next '&', %XX-decoded with '+' as space.
/// Empty when the key is absent (or has an empty value).
std::string QueryParam(const std::string& query, std::string_view key);

/// \brief Incremental parser for one HTTP message read from a byte
/// stream. Feed() consumes bytes as they arrive; Done() flips once a full
/// message (head + Content-Length body) is buffered. Any protocol or
/// limit violation surfaces as a Status with an http_status() to answer
/// with — the parser never crashes on hostile bytes, it rejects them.
class HttpParser {
 public:
  enum class Mode { kRequest, kResponse };

  explicit HttpParser(Mode mode, HttpLimits limits = {})
      : mode_(mode), limits_(limits) {}

  /// Consumes `data`. Returns an error for malformed or oversized input;
  /// once Done(), extra bytes are retained in leftover() for the next
  /// message on the connection (pipelining / keep-alive).
  util::Status Feed(std::string_view data);

  bool Done() const { return state_ == State::kDone; }
  /// Bytes received after the current message ended.
  const std::string& leftover() const { return leftover_; }

  /// HTTP status code describing the last Feed error (400/413/431/505),
  /// 0 while healthy. Meaningful for kRequest mode.
  int http_status() const { return http_status_; }

  /// The parsed message; valid once Done(). Request fields are filled in
  /// kRequest mode; in kResponse mode method/target hold the status line
  /// pieces instead (see response()).
  HttpRequest& request() { return request_; }
  int response_status() const { return response_status_; }

  /// Resets for the next message on the same connection, seeding the
  /// buffer with the previous leftover.
  void Reset();

 private:
  enum class State { kHead, kBody, kDone };

  util::Status Fail(int http_status, const std::string& msg);
  util::Status ParseHead();

  Mode mode_;
  HttpLimits limits_;
  State state_ = State::kHead;
  std::string buffer_;
  std::string leftover_;
  HttpRequest request_;
  int response_status_ = 0;
  size_t body_expected_ = 0;
  int http_status_ = 0;
};

/// Serializes a response (server side). `keep_alive` controls the
/// Connection header.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Serializes a request (client side). `extra_headers` are emitted
/// verbatim after the standard ones (e.g. {"X-Request-Id", "t-..."}).
std::string SerializeRequest(
    const std::string& method, const std::string& target,
    const std::string& host, const std::string& body,
    const std::string& content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

}  // namespace http
}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_HTTP_HTTP_H_
