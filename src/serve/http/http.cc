#include "serve/http/http.h"

#include <cctype>

#include "util/string_util.h"

namespace tdmatch {
namespace serve {
namespace http {

namespace {

const std::string kEmpty;

bool IsTokenChar(char c) {
  // RFC 7230 token characters, the subset that matters for methods and
  // header names.
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty() || s.size() > 32) return false;
  for (char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

const std::string* FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& kv : headers) {
    if (kv.first == name) return &kv.second;
  }
  return nullptr;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  const std::string* v = FindHeader(headers, name);
  return v == nullptr ? kEmpty : *v;
}

const std::string& HttpResponse::Header(const std::string& name) const {
  const std::string* v = FindHeader(headers, name);
  return v == nullptr ? kEmpty : *v;
}

bool HttpRequest::KeepAlive() const {
  const std::string conn = util::ToLower(Header("connection"));
  if (conn.find("close") != std::string::npos) return false;
  if (version == "HTTP/1.0") {
    return conn.find("keep-alive") != std::string::npos;
  }
  return true;  // HTTP/1.1 defaults to persistent connections
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

util::Status HttpParser::Fail(int http_status, const std::string& msg) {
  http_status_ = http_status;
  return util::Status::InvalidArgument(msg);
}

util::Status HttpParser::Feed(std::string_view data) {
  if (state_ == State::kDone) {
    leftover_.append(data);
    return util::Status::OK();
  }
  buffer_.append(data);

  if (state_ == State::kHead) {
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(431, util::StrFormat(
                             "header block exceeds %zu bytes",
                             limits_.max_header_bytes));
      }
      return util::Status::OK();  // need more bytes
    }
    if (head_end > limits_.max_header_bytes) {
      return Fail(431, util::StrFormat("header block exceeds %zu bytes",
                                       limits_.max_header_bytes));
    }
    TDM_RETURN_NOT_OK(ParseHead());
    // ParseHead consumed [0, head_end + 4) logically; keep the rest as the
    // body prefix.
    buffer_.erase(0, head_end + 4);
    state_ = State::kBody;
  }

  if (state_ == State::kBody) {
    if (buffer_.size() >= body_expected_) {
      request_.body = buffer_.substr(0, body_expected_);
      leftover_ = buffer_.substr(body_expected_);
      buffer_.clear();
      state_ = State::kDone;
    }
  }
  return util::Status::OK();
}

util::Status HttpParser::ParseHead() {
  const size_t head_end = buffer_.find("\r\n\r\n");
  std::string_view head(buffer_.data(), head_end);

  // --- start line ---------------------------------------------------------
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  std::string_view line = head.substr(0, line_end);

  if (mode_ == Mode::kRequest) {
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string_view::npos
                           ? std::string_view::npos
                           : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      return Fail(400, "malformed request line");
    }
    request_.method = std::string(line.substr(0, sp1));
    request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(line.substr(sp2 + 1));
    if (!IsToken(request_.method)) {
      return Fail(400, "malformed method '" + request_.method + "'");
    }
    if (request_.target.empty() || request_.target[0] != '/') {
      return Fail(400, "request target must be an absolute path");
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      return Fail(505, "unsupported version '" + request_.version + "'");
    }
    const size_t q = request_.target.find('?');
    request_.path = request_.target.substr(0, q);
    request_.query =
        q == std::string::npos ? "" : request_.target.substr(q + 1);
  } else {
    // Status line: HTTP/1.1 SP 3DIGIT SP reason.
    const size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || line.substr(0, 5) != "HTTP/") {
      return Fail(400, "malformed status line");
    }
    const std::string_view code = line.substr(sp1 + 1, 3);
    if (code.size() != 3 ||
        std::isdigit(static_cast<unsigned char>(code[0])) == 0 ||
        std::isdigit(static_cast<unsigned char>(code[1])) == 0 ||
        std::isdigit(static_cast<unsigned char>(code[2])) == 0) {
      return Fail(400, "malformed status code");
    }
    response_status_ =
        (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
  }

  // --- header fields ------------------------------------------------------
  size_t pos = line_end;
  while (pos < head.size()) {
    pos += 2;  // skip the CRLF
    size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    std::string_view field = head.substr(pos, next - pos);
    pos = next;
    if (field.empty()) continue;
    if (field[0] == ' ' || field[0] == '\t') {
      return Fail(400, "obsolete header line folding is not supported");
    }
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return Fail(400, "header field without ':'");
    }
    std::string_view name = field.substr(0, colon);
    if (!IsToken(name)) {
      return Fail(400, "malformed header name");
    }
    std::string_view value = util::Trim(field.substr(colon + 1));
    request_.headers.emplace_back(util::ToLower(name), std::string(value));
  }

  // --- body framing -------------------------------------------------------
  if (!request_.Header("transfer-encoding").empty()) {
    return Fail(501, "transfer-encoding is not supported; use "
                     "Content-Length framing");
  }
  // Conflicting repeated Content-Length values are a request-smuggling
  // desync vector behind a proxy that picks the other one (RFC 7230
  // §3.3.2 requires rejection); identical repeats are collapsed.
  const std::string* content_length = nullptr;
  for (const auto& kv : request_.headers) {
    if (kv.first != "content-length") continue;
    if (content_length != nullptr && *content_length != kv.second) {
      return Fail(400, "conflicting Content-Length headers");
    }
    content_length = &kv.second;
  }
  const std::string& cl =
      content_length == nullptr ? kEmpty : *content_length;
  body_expected_ = 0;
  if (!cl.empty()) {
    uint64_t n = 0;
    for (char c : cl) {
      if (std::isdigit(static_cast<unsigned char>(c)) == 0) {
        return Fail(400, "malformed Content-Length '" + cl + "'");
      }
      if (n > (UINT64_MAX - 9) / 10) {
        return Fail(413, "Content-Length overflows");
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    if (n > limits_.max_body_bytes) {
      return Fail(413, util::StrFormat(
                           "body of %llu bytes exceeds the %zu byte limit",
                           static_cast<unsigned long long>(n),
                           limits_.max_body_bytes));
    }
    body_expected_ = static_cast<size_t>(n);
  }
  return util::Status::OK();
}

void HttpParser::Reset() {
  buffer_ = std::move(leftover_);
  leftover_.clear();
  request_ = HttpRequest();
  response_status_ = 0;
  body_expected_ = 0;
  http_status_ = 0;
  state_ = State::kHead;
  // A pipelined next message may already be buffered; re-run the state
  // machine over it. Errors (and Done) surface on the next Feed — the
  // caller's read loop always Feeds before inspecting, and Feed("") is a
  // no-op append.
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += util::StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                         StatusReason(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += util::StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& kv : response.headers) {
    out += kv.first + ": " + kv.second + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(
    const std::string& method, const std::string& target,
    const std::string& host, const std::string& body,
    const std::string& content_type, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(body.size() + 256);
  out += method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  if (!body.empty()) {
    out += "Content-Type: " + content_type + "\r\n";
  }
  out += util::StrFormat("Content-Length: %zu\r\n", body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string QueryParam(const std::string& query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        std::string_view(query).substr(pos, eq - pos) == key) {
      std::string out;
      out.reserve(amp - eq - 1);
      for (size_t i = eq + 1; i < amp; ++i) {
        const char c = query[i];
        if (c == '+') {
          out.push_back(' ');
        } else if (c == '%' && i + 2 < amp && std::isxdigit(static_cast<
                       unsigned char>(query[i + 1])) &&
                   std::isxdigit(static_cast<unsigned char>(query[i + 2]))) {
          out.push_back(static_cast<char>(
              std::stoi(query.substr(i + 1, 2), nullptr, 16)));
          i += 2;
        } else {
          out.push_back(c);
        }
      }
      return out;
    }
    pos = amp + 1;
  }
  return std::string();
}

}  // namespace http
}  // namespace serve
}  // namespace tdmatch
