#include "serve/admission.h"

namespace tdmatch {
namespace serve {

bool AdmissionController::TryAcquire() {
  size_t cur = inflight_.load(std::memory_order_relaxed);
  while (true) {
    if (cur >= options_.max_inflight) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // On CAS failure `cur` reloads the observed value and the capacity
    // check re-runs — a slot freed or taken between iterations is never
    // double-counted.
    if (inflight_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      admitted_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

int AdmissionController::RetryAfterSeconds(double typical_ms) const {
  const double backlog =
      static_cast<double>(inflight_.load(std::memory_order_relaxed));
  const double per_query_ms = typical_ms > 0.0 ? typical_ms : 1.0;
  const double seconds = backlog * per_query_ms / 1000.0;
  int s = static_cast<int>(seconds) + 1;  // round up, never 0
  if (s < options_.min_retry_after_s) s = options_.min_retry_after_s;
  if (s > options_.max_retry_after_s) s = options_.max_retry_after_s;
  return s;
}

NprobeTuner::NprobeTuner(NprobeTunerOptions options) : options_(options) {
  if (options_.min_nprobe < 1) options_.min_nprobe = 1;
  if (options_.max_nprobe < options_.min_nprobe) {
    options_.max_nprobe = options_.min_nprobe;
  }
  size_t start = options_.initial_nprobe;
  if (start < options_.min_nprobe) start = options_.min_nprobe;
  if (start > options_.max_nprobe) start = options_.max_nprobe;
  nprobe_.store(start, std::memory_order_relaxed);
  if (options_.window == 0) options_.window = 1;
}

void NprobeTuner::Observe(double p99_ms) {
  if (!enabled()) return;
  const uint64_t n = observed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % options_.window != 0) return;
  const size_t cur = nprobe_.load(std::memory_order_relaxed);
  size_t next = cur;
  if (p99_ms > options_.budget_ms) {
    next = cur / 2;  // multiplicative decrease
    if (next < options_.min_nprobe) next = options_.min_nprobe;
  } else if (p99_ms <= options_.budget_ms * 0.5 &&
             cur < options_.max_nprobe) {
    next = cur + 1;  // additive increase
  }
  if (next != cur) {
    nprobe_.store(next, std::memory_order_relaxed);
    adjustments_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace serve
}  // namespace tdmatch
