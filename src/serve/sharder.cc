#include "serve/sharder.h"

#include <algorithm>

#include "util/logging.h"

namespace tdmatch {
namespace serve {

uint64_t Sharder::Hash64(std::string_view bytes, uint64_t seed) {
  // FNV-1a 64-bit...
  uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  // ...plus a splitmix64 finalizer: FNV alone keeps short suffix edits in
  // nearby ring positions, which skews small rings.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

Sharder::Sharder(size_t num_shards, SharderOptions options)
    : num_shards_(num_shards), options_(options) {
  TDM_CHECK(num_shards >= 1) << "sharder needs at least one shard";
  const size_t points = std::max<size_t>(1, options_.virtual_nodes);
  ring_.reserve(num_shards * points);
  char key[2 * sizeof(uint64_t)];
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t v = 0; v < points; ++v) {
      // The ring point key is the (shard, virtual node) pair as raw
      // little-endian-ordered bytes — no string formatting on the build
      // path, and no way for two pairs to collide as keys.
      uint64_t a = static_cast<uint64_t>(s);
      uint64_t b = static_cast<uint64_t>(v);
      for (size_t i = 0; i < sizeof(uint64_t); ++i) {
        key[i] = static_cast<char>(a >> (8 * i));
        key[sizeof(uint64_t) + i] = static_cast<char>(b >> (8 * i));
      }
      ring_.push_back(RingPoint{
          Hash64(std::string_view(key, sizeof(key)), options_.seed),
          static_cast<uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
}

size_t Sharder::ShardFor(std::string_view label) const {
  if (num_shards_ == 1) return 0;
  const uint64_t h = Hash64(label, options_.seed);
  // First ring point clockwise from h (wrapping to the start).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const RingPoint& p, uint64_t pos) { return p.position < pos; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

}  // namespace serve
}  // namespace tdmatch
