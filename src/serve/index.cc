#include "serve/index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "util/logging.h"
#include "util/simd/kernels.h"

namespace tdmatch {
namespace serve {

namespace {

/// Scores below any cosine; marks filtered-out candidates so the TopK
/// heap never surfaces them.
constexpr double kExcluded = -2.0;

/// Drops kExcluded sentinels that survived Select when fewer than k
/// candidates were allowed.
std::vector<match::Match> StripExcluded(std::vector<match::Match> matches) {
  while (!matches.empty() && matches.back().score <= kExcluded + 0.5) {
    matches.pop_back();
  }
  return matches;
}

}  // namespace

void NormalizeSlice(float* row, int dim) {
  double norm = 0.0;
  for (int d = 0; d < dim; ++d) {
    norm += static_cast<double>(row[d]) * row[d];
  }
  norm = std::sqrt(norm);
  if (norm == 0.0) return;
  for (int d = 0; d < dim; ++d) {
    row[d] = static_cast<float>(row[d] / norm);
  }
}

VectorMatrix VectorMatrix::FromRows(
    const std::vector<const std::vector<float>*>& rows, int dim) {
  VectorMatrix m;
  m.dim_ = dim;
  m.n_ = rows.size();
  m.data_.resize(m.n_ * static_cast<size_t>(dim));
  for (size_t i = 0; i < rows.size(); ++i) {
    TDM_CHECK_EQ(rows[i]->size(), static_cast<size_t>(dim));
    float* dst = m.data_.data() + i * static_cast<size_t>(dim);
    std::copy(rows[i]->begin(), rows[i]->end(), dst);
    NormalizeSlice(dst, dim);
  }
  return m;
}

VectorMatrix VectorMatrix::FromRawRows(const char* payload,
                                       const std::vector<size_t>& rows,
                                       int dim) {
  VectorMatrix m;
  m.dim_ = dim;
  m.n_ = rows.size();
  m.data_.resize(m.n_ * static_cast<size_t>(dim));
  const size_t row_bytes = static_cast<size_t>(dim) * sizeof(float);
  for (size_t i = 0; i < rows.size(); ++i) {
    float* dst = m.data_.data() + i * static_cast<size_t>(dim);
    std::memcpy(dst, payload + rows[i] * row_bytes, row_bytes);
    NormalizeSlice(dst, dim);
  }
  return m;
}

float VectorMatrix::Dot(const float* query, size_t i) const {
  return simd::Dot(query, row(i), static_cast<size_t>(dim_));
}

std::vector<match::Match> Index::SearchVec(
    const std::vector<float>& query, size_t k,
    const std::vector<char>* allowed) const {
  TDM_CHECK_EQ(query.size(), static_cast<size_t>(dim()));
  std::vector<float> q = query;
  NormalizeSlice(q.data(), dim());
  return Search(q.data(), k, allowed);
}

std::vector<match::Match> ExactIndex::Search(
    const float* query, size_t k, const std::vector<char>* allowed) const {
  const size_t n = data_->size();
  std::vector<double> scores(n, kExcluded);
  for (size_t i = 0; i < n; ++i) {
    if (allowed != nullptr && (*allowed)[i] == 0) continue;
    scores[i] = data_->Dot(query, i);
  }
  return StripExcluded(match::TopK::Select(scores, k));
}

double MeasureRecallAtK(const Index& approx, const Index& exact,
                        const std::vector<std::vector<float>>& queries,
                        size_t k) {
  if (queries.empty() || k == 0) return 0.0;
  double total = 0.0;
  for (const auto& q : queries) {
    const auto truth = exact.SearchVec(q, k);
    if (truth.empty()) continue;
    std::unordered_set<int32_t> truth_ids;
    for (const auto& m : truth) truth_ids.insert(m.index);
    size_t hits = 0;
    for (const auto& m : approx.SearchVec(q, k)) {
      hits += truth_ids.count(m.index);
    }
    total += static_cast<double>(hits) / static_cast<double>(truth.size());
  }
  return total / static_cast<double>(queries.size());
}

}  // namespace serve
}  // namespace tdmatch
