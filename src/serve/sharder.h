#ifndef TDMATCH_SERVE_SHARDER_H_
#define TDMATCH_SERVE_SHARDER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tdmatch {
namespace serve {

struct SharderOptions {
  /// Ring points per shard. More points flatten the assignment (the
  /// classic consistent-hashing variance knob); 64 keeps the largest
  /// shard within a few percent of the mean on realistic label counts.
  size_t virtual_nodes = 64;
  /// Salt mixed into every ring-point hash, so two rings with the same
  /// shard count can still disagree (replica placement, tests).
  uint64_t seed = 0;
};

/// \brief Consistent-hash ring mapping doc labels to shards.
///
/// Each shard owns `virtual_nodes` points on a 64-bit ring; a label hashes
/// to a ring position and is assigned to the first point clockwise. The
/// assignment is a pure function of (label, num_shards, options) — stable
/// across processes and runs, independent of insertion order, and moving
/// from N to N+1 shards relocates only ~1/(N+1) of the labels (the reason
/// to prefer a ring over `hash % N` once shards can be added).
///
/// Immutable after construction; ShardFor is const and thread-safe.
class Sharder {
 public:
  Sharder(size_t num_shards, SharderOptions options = {});

  /// The shard owning `label`, in [0, num_shards).
  size_t ShardFor(std::string_view label) const;

  size_t num_shards() const { return num_shards_; }
  const SharderOptions& options() const { return options_; }

  /// FNV-1a 64-bit over the bytes, finished with a splitmix64-style
  /// avalanche so nearby labels ("doc1"/"doc2") land far apart on the
  /// ring. Exposed for tests and for hashing cache keys.
  static uint64_t Hash64(std::string_view bytes, uint64_t seed = 0);

 private:
  struct RingPoint {
    uint64_t position;
    uint32_t shard;
  };

  size_t num_shards_;
  SharderOptions options_;
  /// Sorted by position; ties broken by shard id so the ring is canonical.
  std::vector<RingPoint> ring_;
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_SHARDER_H_
