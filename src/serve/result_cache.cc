#include "serve/result_cache.h"

#include <algorithm>
#include <utility>

#include "serve/sharder.h"

namespace tdmatch {
namespace serve {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {
  if (!enabled()) return;
  size_t stripes = std::max<size_t>(1, options_.stripes);
  // No point striping wider than one entry per stripe.
  stripes = std::min(stripes, options_.capacity);
  options_.stripes = stripes;
  stripe_capacity_ = std::max<size_t>(1, options_.capacity / stripes);
  stripes_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

ResultCache::Stripe& ResultCache::StripeFor(const std::string& key) {
  return *stripes_[Sharder::Hash64(key) % stripes_.size()];
}

bool ResultCache::Get(const std::string& key, uint64_t version,
                      std::string* body) {
  if (!enabled()) return false;
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->version != version) {
    // Stale epoch: a reload happened between Put and this Get. Drop the
    // entry so the stripe never fills with unservable bodies.
    stripe.lru.erase(it->second);
    stripe.index.erase(it);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  *body = it->second->body;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Put(const std::string& key, uint64_t version,
                      std::string body) {
  if (!enabled()) return;
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    it->second->version = version;
    it->second->body = std::move(body);
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  stripe.lru.push_front(Entry{key, version, std::move(body)});
  stripe.index.emplace(key, stripe.lru.begin());
  while (stripe.lru.size() > stripe_capacity_) {
    stripe.index.erase(stripe.lru.back().key);
    stripe.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->lru.clear();
    stripe->index.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total += stripe->lru.size();
  }
  return total;
}

}  // namespace serve
}  // namespace tdmatch
