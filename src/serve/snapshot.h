#ifndef TDMATCH_SERVE_SNAPSHOT_H_
#define TDMATCH_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "embed/embedding_table.h"
#include "util/result.h"
#include "util/status.h"

namespace tdmatch {
namespace serve {

/// \brief Versioned binary persistence for trained models — the artifact
/// that crosses the offline/online boundary.
///
/// The offline pipeline trains once and writes a snapshot; any number of
/// serving processes load it and answer queries without re-training. The
/// text format (embed::EmbeddingIo) stays for interop and debugging;
/// snapshots are what production loads: single contiguous read, bit-exact
/// float round-trip, and integrity checking.
///
/// File layout (all integers little-or-big endian as written; the marker
/// detects foreign-endian files):
///
///   [0..4)   magic "TDMS"
///   [4..8)   u32 format version (kVersion or kVersionSections)
///   [8..12)  u32 endianness marker 0x01020304
///   [12..N)  body:
///              u32 dim, u64 vector count,
///              scenario name (u32 length + bytes),
///              u32 extra-metadata pair count, then (key, value) strings,
///              count label strings,
///              count * dim raw IEEE-754 f32 payload
///              -- version 2 only, after the payload: --
///              u32 section count, then per section a tag string
///              (u32 length + bytes), u64 byte length, and the bytes
///   [N..N+4) u32 CRC-32 of the body
///
/// Strings are u32 length + raw bytes. Readers parse from one in-memory
/// buffer with bounds-checked cursor reads; any overrun, bad magic, version
/// skew, foreign endianness, trailing garbage, or CRC mismatch is a
/// descriptive error — never a partially-loaded model.
///
/// Sections are opaque named blobs riding after the payload — the hook for
/// derived serving artifacts (the serialized IVF/PQ index uses tag
/// "ivfpq"). Writers emit version 1 when no sections are attached, so a
/// section-free file is byte-identical to what older builds wrote and
/// older readers still load it; readers accept both versions (a version-1
/// file is simply a snapshot with zero sections).
struct SnapshotMeta {
  /// Name of the scenario / deployment the model was trained for.
  std::string scenario;
  /// Free-form key/value pairs (seed, scale, corpus sizes, ...). Order is
  /// preserved by the round-trip.
  std::vector<std::pair<std::string, std::string>> extra;

  /// Value for `key` in `extra`, or an empty string.
  const std::string& Find(const std::string& key) const;

  void Set(std::string key, std::string value) {
    extra.emplace_back(std::move(key), std::move(value));
  }
};

/// A loaded snapshot: metadata plus the embedding table (labels keep their
/// written order, vectors are bit-identical to what was saved) plus any
/// named sections ((tag, bytes), written order preserved).
struct Snapshot {
  SnapshotMeta meta;
  embed::EmbeddingTable table;
  std::vector<std::pair<std::string, std::string>> sections;

  /// Bytes of the first section tagged `tag`, or nullptr.
  const std::string* Section(const std::string& tag) const;
};

/// Validates a declared (dim, vector count) geometry against the bytes
/// actually available, in overflow-checked 64-bit arithmetic. Shared by
/// the copying loader (SnapshotIo::Read) and the mmap view
/// (SnapshotView::Open): both must reject hostile headers — absurd counts,
/// dims beyond int range, payload sizes that would wrap 32-bit math —
/// before any allocation or pointer arithmetic uses them.
util::Status ValidateSnapshotGeometry(const std::string& path, uint32_t dim,
                                      uint64_t count, size_t remaining);

class SnapshotIo {
 public:
  static constexpr uint32_t kVersion = 1;
  /// Written instead of kVersion when the snapshot carries sections.
  static constexpr uint32_t kVersionSections = 2;

  /// Reserved metadata key. Write appends a 0–3 byte "_pad" pair sized so
  /// the f32 payload starts 4-byte aligned in the file (and therefore in
  /// any page-aligned mmap — serve::SnapshotView reads rows in place).
  /// Invisible to callers: Write replaces stale pads, Read drops them.
  static constexpr char kPadKey[] = "_pad";

  /// Serializes `table` + `meta`; overwrites `path` atomically (temp file
  /// + rename), so a serving process that has the previous snapshot
  /// mmap'ed keeps reading the old inode — in-place rewrites never tear a
  /// live SnapshotView.
  static util::Status Write(const embed::EmbeddingTable& table,
                            const SnapshotMeta& meta, const std::string& path);

  /// Same, attaching named sections after the payload. An empty `sections`
  /// writes a plain version-1 file (byte-identical to the overload above);
  /// any sections bump the file to kVersionSections.
  static util::Status Write(
      const embed::EmbeddingTable& table, const SnapshotMeta& meta,
      const std::vector<std::pair<std::string, std::string>>& sections,
      const std::string& path);

  /// Loads a snapshot written by Write. Rejects corrupted, truncated,
  /// foreign-endian, and version-skewed files.
  static util::Result<Snapshot> Read(const std::string& path);

  /// Conversion paths between the text format (embed::EmbeddingIo) and the
  /// binary snapshot format. Text → snapshot loses nothing the text file
  /// carried; snapshot → text drops the metadata block and rounds floats
  /// through decimal.
  static util::Status ConvertTextToSnapshot(const std::string& text_path,
                                            const SnapshotMeta& meta,
                                            const std::string& snapshot_path);
  static util::Status ConvertSnapshotToText(const std::string& snapshot_path,
                                            const std::string& text_path);
};

}  // namespace serve
}  // namespace tdmatch

#endif  // TDMATCH_SERVE_SNAPSHOT_H_
